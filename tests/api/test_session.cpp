// QuerySession (api/session.hpp): the always-on service layer. The
// contract under test is robustness under concurrency — every submitted
// query resolves exactly once (result or typed error), admission control
// sheds typed, deadlines and cancellation land typed, snapshot restore
// is validated, and the surviving answers are byte-identical to the
// one-shot engines. The whole file must run clean under TSan (CI runs
// the sanitizer matrix over the test suite).
#include "api/session.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "common/datagen.hpp"
#include "core/join.hpp"
#include "core/knn.hpp"
#include "core/self_join.hpp"
#include "core/snapshot.hpp"

namespace sj {
namespace {

// Brute-force reference for one range query: ids of data points within
// eps, ascending.
std::vector<std::uint32_t> brute_range(const Dataset& d,
                                       const std::vector<double>& q,
                                       double eps) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < d.size(); ++i) {
    double s = 0.0;
    for (std::size_t k = 0; k < d.dim(); ++k) {
      const double diff = d.pt(i)[k] - q[k];
      s += diff * diff;
    }
    if (std::sqrt(s) <= eps) out.push_back(static_cast<std::uint32_t>(i));
  }
  return out;
}

std::vector<double> point_of(const Dataset& d, std::size_t i) {
  return {d.pt(i), d.pt(i) + d.dim()};
}

TEST(QuerySession, RangeResultsMatchBruteForceAndAreSorted) {
  const auto data = datagen::gaussian_mixture(1200, 2, 5, 5.0, 0.0, 80.0, 3);
  const double eps = 2.0;
  api::QuerySession session(data, eps);

  std::vector<std::future<api::RangeResult>> futures;
  std::vector<std::vector<double>> queries;
  for (std::size_t q = 0; q < 32; ++q)
    queries.push_back(point_of(data, (q * 37) % data.size()));
  for (auto& q : queries) futures.push_back(session.range(q));
  for (std::size_t q = 0; q < queries.size(); ++q) {
    const auto r = futures[q].get();
    const auto expected = brute_range(data, queries[q], eps);
    EXPECT_EQ(r.neighbors, expected) << "query " << q;
    EXPECT_EQ(r.count, expected.size());
    EXPECT_TRUE(std::is_sorted(r.neighbors.begin(), r.neighbors.end()));
  }
}

TEST(QuerySession, CountOnlySkipsMaterialisationButCountsExactly) {
  const auto data = datagen::uniform(900, 2, 0.0, 40.0, 13);
  const double eps = 1.5;
  api::QuerySession session(data, eps);
  api::QueryOptions q;
  q.count_only = true;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto pt = point_of(data, i * 100);
    const auto r = session.range(pt, q).get();
    EXPECT_TRUE(r.neighbors.empty());
    EXPECT_EQ(r.count, brute_range(data, pt, eps).size());
  }
}

TEST(QuerySession, JoinSelfJoinAndKnnMatchOneShotEngines) {
  const auto data = datagen::uniform(1000, 2, 0.0, 40.0, 23);
  const auto queries = datagen::uniform(300, 2, 0.0, 40.0, 24);
  const double eps = 1.2;
  api::SessionOptions so;
  api::QuerySession session(data, eps, so);

  auto join_f = session.join(queries);
  auto self_f = session.self_join();
  auto knn_f = session.knn(queries, 4);

  auto join_ref = gpu_join(queries, data, eps);
  auto join_got = join_f.get();
  join_ref.pairs.normalize();
  join_got.pairs.normalize();
  EXPECT_EQ(join_ref.pairs.pairs(), join_got.pairs.pairs());

  GpuSelfJoinOptions sj_opt;
  sj_opt.unicomp = so.unicomp;
  auto self_ref = GpuSelfJoin(sj_opt).run(data, eps);
  auto self_got = self_f.get();
  self_ref.pairs.normalize();
  self_got.pairs.normalize();
  EXPECT_EQ(self_ref.pairs.pairs(), self_got.pairs.pairs());

  auto knn_ref = gpu_knn(queries, data, [] {
    KnnOptions o;
    o.k = 4;
    return o;
  }());
  auto knn_got = knn_f.get();
  ASSERT_EQ(knn_ref.num_queries(), knn_got.num_queries());
  for (std::size_t q = 0; q < knn_ref.num_queries(); ++q) {
    ASSERT_EQ(knn_ref.count(q), knn_got.count(q)) << "query " << q;
    for (int j = 0; j < knn_ref.count(q); ++j)
      EXPECT_EQ(knn_ref.neighbor(q, j), knn_got.neighbor(q, j));
  }
}

TEST(QuerySession, RejectsDimensionMismatch) {
  const auto data = datagen::uniform(200, 2, 0.0, 10.0, 33);
  api::QuerySession session(data, 1.0);
  EXPECT_THROW((void)session.range({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(QuerySession, FullQueueShedsTypedAtSubmitAndAnswersTheRest) {
  const auto data = datagen::uniform(3000, 2, 0.0, 30.0, 43);
  api::SessionOptions so;
  so.workers = 1;
  so.max_queue_depth = 2;
  so.coalesce_limit = 1;  // keep the worker busy one query at a time
  api::QuerySession session(data, 1.0, so);

  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (int q = 0; q < 20; ++q) {
        try {
          (void)session
              .range(point_of(data,
                              static_cast<std::size_t>(c * 20 + q) * 7 %
                                  data.size()))
              .get();
          ok.fetch_add(1);
        } catch (const exec::Overloaded&) {
          shed.fetch_add(1);
        } catch (const std::exception&) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  // Conservation: every query resolved exactly one way, none vanished.
  EXPECT_EQ(ok.load() + shed.load(), 120);
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(shed.load(), 0);  // a 2-deep queue cannot absorb 6 clients
  const auto st = session.stats();
  EXPECT_EQ(st.admitted, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(st.shed, static_cast<std::uint64_t>(shed.load()));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ok.load()));
}

TEST(QuerySession, ExpiredDeadlineFailsTypedThroughTheFuture) {
  const auto data = datagen::uniform(2000, 2, 0.0, 30.0, 53);
  api::QuerySession session(data, 1.0);
  api::QueryOptions q;
  q.deadline_ms = 1e-4;  // expires before any worker can pick it up
  auto f = session.range(point_of(data, 0), q);
  EXPECT_THROW((void)f.get(), exec::DeadlineExceeded);
  EXPECT_GE(session.stats().expired, 1u);
}

TEST(QuerySession, CancellationFailsTypedThroughTheFuture) {
  const auto data = datagen::uniform(2000, 2, 0.0, 30.0, 63);
  api::QuerySession session(data, 1.0);
  exec::CancelToken token;
  token.cancel();  // cancelled before submit: must never reach the device
  api::QueryOptions q;
  q.cancel = &token;
  auto f = session.self_join(q);
  EXPECT_THROW((void)f.get(), exec::Cancelled);
  EXPECT_GE(session.stats().cancelled, 1u);
}

TEST(QuerySession, QueueAgeSheddingExpiresStaleWork) {
  const auto data = datagen::uniform(4000, 2, 0.0, 30.0, 73);
  api::SessionOptions so;
  so.workers = 1;
  so.coalesce_limit = 1;
  so.max_queue_age_ms = 1e-4;  // everything is stale by the time it pops
  api::QuerySession session(data, 1.0, so);

  std::vector<std::future<api::RangeResult>> futures;
  for (int q = 0; q < 8; ++q)
    futures.push_back(session.range(point_of(data, 0)));
  int aged = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const exec::Overloaded&) {
      ++aged;
    }
  }
  // The first query may have been popped before it aged; the backlog
  // behind it cannot all have been fresh.
  EXPECT_GT(aged, 0);
}

TEST(QuerySession, DestructorShedsQueuedWorkTyped) {
  const auto data = datagen::uniform(3000, 2, 0.0, 30.0, 83);
  std::vector<std::future<api::RangeResult>> futures;
  {
    api::SessionOptions so;
    so.workers = 1;
    so.coalesce_limit = 1;
    api::QuerySession session(data, 1.0, so);
    for (int q = 0; q < 16; ++q)
      futures.push_back(session.range(point_of(data, 0)));
    // Session destroyed with most of the queue still pending.
  }
  int resolved = 0, shed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++resolved;
    } catch (const exec::Overloaded&) {
      ++shed;
    }
  }
  // No future may hang or be abandoned: all 16 resolved one way.
  EXPECT_EQ(resolved + shed, 16);
}

TEST(QuerySession, ConcurrentMixedStressEveryFutureResolvesTyped) {
  // The TSan satellite: many client threads, all four query kinds,
  // racing cancellations and tight deadlines, all against one session.
  // Success = every future resolves (no hang), only typed outcomes, the
  // counters add up, and untyped failures are zero.
  const auto data = datagen::gaussian_mixture(2000, 2, 4, 4.0, 0.0, 60.0, 93);
  const double eps = 1.5;
  api::SessionOptions so;
  so.workers = 3;
  so.max_queue_depth = 64;
  api::QuerySession session(data, eps, so);

  constexpr int kClients = 6;
  constexpr int kPerClient = 30;
  std::atomic<int> ok{0}, shed{0}, expired{0}, cancelled{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // One token per client, tripped halfway through its own stream so
      // cancellation races against execution of its in-flight queries.
      exec::CancelToken token;
      for (int q = 0; q < kPerClient; ++q) {
        api::QueryOptions qo;
        const int kind = (c * kPerClient + q) % 10;
        if (kind == 7) qo.deadline_ms = 1e-3;  // near-certain expiry
        if (q % 3 == 0) qo.cancel = &token;
        if (q == kPerClient / 2) token.cancel();
        try {
          const std::size_t idx =
              (static_cast<std::size_t>(c) * 2654435761ULL +
               static_cast<std::size_t>(q) * 40503ULL) %
              data.size();
          if (kind == 8) {
            Dataset qs(data.dim(), std::vector<double>(
                                       data.pt(idx), data.pt(idx) + data.dim()));
            (void)session.knn(qs, 3, qo).get();
          } else if (kind == 9) {
            (void)session.self_join(qo).get();
          } else {
            qo.count_only = (q % 2 == 0);
            (void)session.range(point_of(data, idx), qo).get();
          }
          ok.fetch_add(1);
        } catch (const exec::Cancelled&) {
          cancelled.fetch_add(1);
        } catch (const exec::DeadlineExceeded&) {
          expired.fetch_add(1);
        } catch (const exec::Overloaded&) {
          shed.fetch_add(1);
        } catch (const std::exception&) {
          other.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(other.load(), 0) << "untyped failures under concurrent stress";
  EXPECT_EQ(ok.load() + shed.load() + expired.load() + cancelled.load(),
            kClients * kPerClient);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(cancelled.load(), 0);  // the tripped tokens must have landed

  const auto st = session.stats();
  EXPECT_EQ(st.admitted,
            static_cast<std::uint64_t>(kClients * kPerClient - shed.load()));
  EXPECT_EQ(st.completed, static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(st.completed + st.expired + st.cancelled + st.failed,
            st.admitted);
  EXPECT_EQ(st.latency_samples == 0, st.p50_ms == 0.0);
}

TEST(QuerySession, CoalescedAnswersEqualUncoalescedAnswers) {
  // Force heavy coalescing (1 worker, many queued range queries) and
  // compare against a coalesce_limit=1 session: grouping queries into
  // shared launches must never change any individual answer.
  const auto data = datagen::uniform(1500, 2, 0.0, 40.0, 103);
  const double eps = 1.4;
  std::vector<std::vector<double>> queries;
  for (std::size_t q = 0; q < 48; ++q)
    queries.push_back(point_of(data, (q * 31) % data.size()));

  api::SessionOptions coalesced;
  coalesced.workers = 1;
  api::SessionOptions solo;
  solo.workers = 1;
  solo.coalesce_limit = 1;

  std::vector<api::RangeResult> a, b;
  {
    api::QuerySession s(data, eps, coalesced);
    std::vector<std::future<api::RangeResult>> fs;
    for (auto& q : queries) fs.push_back(s.range(q));
    for (auto& f : fs) a.push_back(f.get());
    EXPECT_GT(s.stats().coalesced_queries, 0u);
  }
  {
    api::QuerySession s(data, eps, solo);
    std::vector<std::future<api::RangeResult>> fs;
    for (auto& q : queries) fs.push_back(s.range(q));
    for (auto& f : fs) b.push_back(f.get());
  }
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].neighbors, b[q].neighbors) << "query " << q;
    EXPECT_EQ(a[q].count, b[q].count) << "query " << q;
  }
}

class SessionSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sj_session_snap_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(SessionSnapshotTest, ColdBootWritesSnapshotWarmBootRestoresIt) {
  const auto data = datagen::uniform(800, 2, 0.0, 30.0, 113);
  const double eps = 1.1;
  api::SessionOptions so;
  so.snapshot = path("s.snap");

  {
    api::QuerySession cold(data, eps, so);
    EXPECT_FALSE(cold.restored_from_snapshot());
    EXPECT_TRUE(std::filesystem::exists(so.snapshot));
  }
  api::QuerySession warm(data, eps, so);
  EXPECT_TRUE(warm.restored_from_snapshot());
  const auto pt = point_of(data, 7);
  EXPECT_EQ(warm.range(pt).get().neighbors, brute_range(data, pt, eps));
}

TEST_F(SessionSnapshotTest, MismatchedSnapshotIsRejectedAndRebuilt) {
  const auto data = datagen::uniform(600, 2, 0.0, 30.0, 123);
  api::SessionOptions so;
  so.snapshot = path("m.snap");
  { api::QuerySession seed(data, 1.0, so); }

  // Same file, different eps: the restore must be rejected (a grid built
  // for eps=1.0 is wrong for eps=2.0) and the session rebuilt cold.
  api::QuerySession other_eps(data, 2.0, so);
  EXPECT_FALSE(other_eps.restored_from_snapshot());
  const auto pt = point_of(data, 3);
  EXPECT_EQ(other_eps.range(pt).get().neighbors,
            brute_range(data, pt, 2.0));

  // Different dataset under the same path: also rejected.
  const auto foreign = datagen::uniform(600, 2, 0.0, 30.0, 124);
  api::QuerySession other_data(foreign, 2.0, so);
  EXPECT_FALSE(other_data.restored_from_snapshot());
}

TEST_F(SessionSnapshotTest, CorruptSnapshotDegradesToColdBuildAndRewrites) {
  const auto data = datagen::uniform(500, 2, 0.0, 30.0, 133);
  api::SessionOptions so;
  so.snapshot = path("c.snap");
  { api::QuerySession seed(data, 1.0, so); }

  // Truncate the snapshot to half: boot must warn, rebuild cold, serve
  // correctly, and leave a fresh valid snapshot behind.
  const auto full = std::filesystem::file_size(so.snapshot);
  std::filesystem::resize_file(so.snapshot, full / 2);
  {
    api::QuerySession recovered(data, 1.0, so);
    EXPECT_FALSE(recovered.restored_from_snapshot());
    const auto pt = point_of(data, 11);
    EXPECT_EQ(recovered.range(pt).get().neighbors,
              brute_range(data, pt, 1.0));
  }
  std::string why;
  EXPECT_TRUE(snapshot::try_load(so.snapshot, &why).has_value()) << why;
}

}  // namespace
}  // namespace sj
