// BackendRegistry semantics: built-in registration, lookup, aliases,
// error reporting, extension with external backends, and the RunConfig
// option plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/datagen.hpp"

namespace sj::api {
namespace {

TEST(BackendRegistry, BuiltinsAreRegistered) {
  const auto names = BackendRegistry::instance().names();
  for (const char* name :
       {"gpu", "gpu_unicomp", "ego", "rtree", "brute", "gpu_bf"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), name) != names.end())
        << name;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(BackendRegistry, FindReturnsNullForUnknown) {
  EXPECT_EQ(BackendRegistry::instance().find("no_such_backend"), nullptr);
}

TEST(BackendRegistry, AtThrowsListingRegisteredNames) {
  try {
    BackendRegistry::instance().at("no_such_backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_backend"), std::string::npos);
    for (const auto& name : BackendRegistry::instance().names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
  }
}

TEST(BackendRegistry, SuperegoAliasResolvesToEgo) {
  const auto& registry = BackendRegistry::instance();
  EXPECT_EQ(registry.find("superego"), registry.find("ego"));
  EXPECT_NE(registry.find("superego"), nullptr);
  // The alias is not a primary name.
  const auto names = registry.names();
  EXPECT_TRUE(std::find(names.begin(), names.end(), "superego") ==
              names.end());
  const auto aliases = registry.aliases();
  EXPECT_TRUE(std::find(aliases.begin(), aliases.end(), "superego -> ego") !=
              aliases.end());
}

TEST(BackendRegistry, CapabilitiesDistinguishEngines) {
  const auto& registry = BackendRegistry::instance();
  EXPECT_TRUE(registry.at("gpu").capabilities().gpu);
  EXPECT_TRUE(registry.at("gpu").capabilities().supports_knn);
  EXPECT_TRUE(registry.at("gpu_unicomp").capabilities().supports_join);
  EXPECT_FALSE(registry.at("ego").capabilities().gpu);
  EXPECT_FALSE(registry.at("rtree").capabilities().supports_knn);
  EXPECT_FALSE(registry.at("brute").capabilities().gpu);
}

TEST(BackendRegistry, DuplicateNameIsRejected) {
  class FakeGpu final : public SelfJoinBackend {
   public:
    std::string_view name() const override { return "gpu"; }
    std::string_view description() const override { return "dup"; }
    Capabilities capabilities() const override { return {}; }
    JoinOutcome run(const Dataset&, double,
                    const RunConfig&) const override {
      return {};
    }
  };
  EXPECT_THROW(BackendRegistry::instance().add(std::make_unique<FakeGpu>()),
               std::invalid_argument);
  EXPECT_THROW(BackendRegistry::instance().add(nullptr),
               std::invalid_argument);
}

TEST(BackendRegistry, AliasValidation) {
  auto& registry = BackendRegistry::instance();
  EXPECT_THROW(registry.add_alias("gpu", "brute"), std::invalid_argument);
  EXPECT_THROW(registry.add_alias("superego", "brute"),
               std::invalid_argument);
  EXPECT_THROW(registry.add_alias("fresh_alias", "no_such_target"),
               std::invalid_argument);
}

TEST(BackendRegistry, ExternalBackendExtendsTheSystem) {
  // The extension point future PRs (sharded/async/multi-GPU engines) use:
  // register, resolve by name, run through the uniform interface.
  class EchoBrute final : public SelfJoinBackend {
   public:
    std::string_view name() const override { return "test_echo"; }
    std::string_view description() const override { return "test double"; }
    Capabilities capabilities() const override { return {}; }
    JoinOutcome run(const Dataset& d, double eps,
                    const RunConfig& config) const override {
      return BackendRegistry::instance().at("brute").run(d, eps, config);
    }
  };
  auto& registry = BackendRegistry::instance();
  if (!registry.contains("test_echo")) {
    registry.add(std::make_unique<EchoBrute>());
  }
  const auto d = datagen::uniform(50, 2, 0.0, 10.0, 1);
  auto got = registry.at("test_echo").run(d, 1.0);
  auto want = registry.at("brute").run(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(RunConfig, TypedExtraAccessors) {
  RunConfig config;
  config.extra = {{"a", "1"}, {"b", "0"}, {"c", "2.5"}, {"d", "off"},
                  {"e", "text"}};
  EXPECT_TRUE(config.flag("a", false));
  EXPECT_FALSE(config.flag("b", true));
  EXPECT_FALSE(config.flag("d", true));
  EXPECT_TRUE(config.flag("missing", true));
  EXPECT_EQ(config.integer("a", 7), 1);
  EXPECT_EQ(config.integer("missing", 7), 7);
  EXPECT_DOUBLE_EQ(config.number("c", 0.0), 2.5);
  EXPECT_EQ(config.text("e", "def"), "text");
  EXPECT_EQ(config.text("missing", "def"), "def");
}

TEST(RunConfig, CheckKeysAcceptsKnownRejectsUnknown) {
  RunConfig config;
  config.extra = {{"block_size", "128"}};
  EXPECT_NO_THROW(config.check_keys("gpu", "block_size,min_batches"));
  EXPECT_THROW(config.check_keys("gpu", "min_batches,num_streams"),
               std::invalid_argument);
  // Key names must match whole tokens, not substrings.
  EXPECT_THROW(config.check_keys("gpu", "block_size_x,xblock_size"),
               std::invalid_argument);
}

TEST(RunConfig, UnknownExtraKeySurfacesFromBackends) {
  const auto d = datagen::uniform(20, 2, 0.0, 10.0, 2);
  RunConfig config;
  config.extra["definitely_not_a_knob"] = "1";
  for (const auto& name : BackendRegistry::instance().names()) {
    if (name == "test_echo") continue;  // registered by a test above
    EXPECT_THROW(BackendRegistry::instance().at(name).run(d, 1.0, config),
                 std::invalid_argument)
        << name;
  }
}

TEST(RunConfig, NonThreadedBackendsRejectThreads) {
  const auto d = datagen::uniform(30, 2, 0.0, 10.0, 5);
  const auto& registry = BackendRegistry::instance();
  RunConfig config;
  config.threads = 4;
  for (const char* name : {"gpu", "gpu_unicomp", "gpu_bf", "rtree"}) {
    EXPECT_THROW(registry.at(name).run(d, 1.0, config),
                 std::invalid_argument)
        << name;
  }
  for (const char* name : {"ego", "brute"}) {
    EXPECT_NO_THROW(registry.at(name).run(d, 1.0, config)) << name;
  }
}

TEST(RunConfig, NonPositiveGpuKnobsAreRejected) {
  const auto d = datagen::uniform(30, 2, 0.0, 10.0, 6);
  const auto& gpu = BackendRegistry::instance().at("gpu_unicomp");
  for (const char* bad : {"min_batches=-1", "block_size=0",
                          "num_streams=-3", "max_buffer_pairs=-1"}) {
    RunConfig config;
    const std::string spec(bad);
    const auto eq = spec.find('=');
    config.extra[spec.substr(0, eq)] = spec.substr(eq + 1);
    EXPECT_THROW(gpu.run(d, 1.0, config), std::invalid_argument) << bad;
  }
  // Malformed values name the offending key.
  RunConfig config;
  config.extra["block_size"] = "fast";
  try {
    gpu.run(d, 1.0, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("block_size"), std::string::npos);
  }
}

TEST(RunConfig, EngineKnobsChangeEngineBehaviour) {
  const auto d = datagen::uniform(400, 2, 0.0, 20.0, 3);
  const auto& registry = BackendRegistry::instance();

  // min_batches is honoured by the GPU engine.
  RunConfig config;
  config.extra["min_batches"] = "7";
  const auto r = registry.at("gpu_unicomp").run(d, 1.0, config);
  EXPECT_GE(r.stats.native_value("batches_run"), 7.0);

  // build_mode changes the R-tree construction (results stay identical).
  RunConfig str_config;
  str_config.extra["build_mode"] = "str";
  auto str_run = registry.at("rtree").run(d, 1.0, str_config);
  auto binned_run = registry.at("rtree").run(d, 1.0);
  EXPECT_TRUE(
      ResultSet::equal_normalized(str_run.pairs, binned_run.pairs));

  RunConfig bad_mode;
  bad_mode.extra["build_mode"] = "upside_down";
  EXPECT_THROW(registry.at("rtree").run(d, 1.0, bad_mode),
               std::invalid_argument);
}

TEST(BackendStats, NormalisedFieldsArePopulated) {
  const auto d = datagen::uniform(300, 2, 0.0, 20.0, 4);
  const auto& registry = BackendRegistry::instance();
  for (const auto& name : registry.names()) {
    if (name == "test_echo") continue;
    const auto r = registry.at(name).run(d, 1.5);
    EXPECT_GT(r.stats.seconds, 0.0) << name;
    EXPECT_GE(r.stats.total_seconds, r.stats.seconds * 0.999) << name;
    EXPECT_GT(r.stats.distance_calcs, 0u) << name;
  }
  // Native stats preserve engine-specific detail.
  const auto gpu = registry.at("gpu_unicomp").run(d, 1.5);
  EXPECT_GT(gpu.stats.native_value("batches_run"), 0.0);
  EXPECT_GT(gpu.stats.native_value("grid_nonempty_cells"), 0.0);
  const auto rt = registry.at("rtree").run(d, 1.5);
  EXPECT_GT(rt.stats.native_value("tree_height"), 0.0);
  const auto eg = registry.at("ego").run(d, 1.5);
  EXPECT_GT(eg.stats.native_value("sort_seconds"), 0.0);
}

}  // namespace
}  // namespace sj::api
