// Backend parity on edge cases: one parameterized sweep over EVERY
// registered backend asserting bit-identical sorted pair sets against the
// brute-force reference, on the inputs that historically break spatial
// join implementations — empty input, a single point, eps = 0, and
// all-duplicate points.
//
// This suite is also where the repo-wide pair convention is asserted
// ONCE, instead of per-engine comments: results are ordered pairs
// (a, b) AND (b, a), self pairs (a, a) included for every point.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "api/registry.hpp"
#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"

namespace sj {
namespace {

Dataset all_duplicates(int dim, std::size_t n) {
  Dataset d(dim);
  for (std::size_t i = 0; i < n; ++i) {
    double p[kMaxDims] = {7.0, -3.0, 2.5, 0.0, 1.0, -9.0};
    d.push_back(p);
  }
  return d;
}

class BackendParity : public ::testing::TestWithParam<std::string> {
 protected:
  const api::SelfJoinBackend& backend() const {
    return api::BackendRegistry::instance().at(GetParam());
  }

  /// Runs the backend, checks exact pair-set equality against the brute
  /// reference, and asserts the repo-wide pair convention.
  void expect_parity(const Dataset& d, double eps) {
    auto want = brute::self_join(d, eps).pairs;
    want.normalize();
    auto got = backend().run(d, eps).pairs;
    got.normalize();
    EXPECT_TRUE(ResultSet::equal_normalized(got, want))
        << GetParam() << " on n=" << d.size() << " eps=" << eps
        << " (got " << got.size() << " pairs, want " << want.size() << ")";

    // Convention: ordered pairs — symmetric set, self pair per point.
    EXPECT_TRUE(got.is_symmetric()) << GetParam();
    ASSERT_GE(got.size(), d.size()) << GetParam();
    const auto& pairs = got.pairs();
    for (std::uint32_t i = 0; i < d.size(); ++i) {
      EXPECT_TRUE(std::binary_search(pairs.begin(), pairs.end(),
                                     Pair{i, i}))
          << GetParam() << ": missing self pair for point " << i;
    }
  }
};

TEST_P(BackendParity, EmptyDataset) {
  const auto got = backend().run(Dataset(2), 1.0);
  EXPECT_TRUE(got.pairs.empty());
}

TEST_P(BackendParity, SinglePoint) {
  Dataset d(3, {1.0, 2.0, 3.0});
  expect_parity(d, 0.5);
  // The lone pair is the self pair.
  auto got = backend().run(d, 0.5).pairs;
  got.normalize();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.pairs()[0], (Pair{0, 0}));
}

TEST_P(BackendParity, EpsZero) {
  // eps = 0 keeps only co-located points (dist <= 0), including each
  // point's self pair.
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0});
  expect_parity(d, 0.0);
}

TEST_P(BackendParity, EpsZeroSinglePoint) {
  Dataset d(2, {4.0, -4.0});
  expect_parity(d, 0.0);
}

TEST_P(BackendParity, AllDuplicatePoints) {
  for (int dim : {2, 4}) {
    const auto d = all_duplicates(dim, 40);
    expect_parity(d, 0.5);
    auto got = backend().run(d, 0.5).pairs;
    EXPECT_EQ(got.size(), 40u * 40u) << "dim=" << dim;
  }
}

TEST_P(BackendParity, DuplicatesMixedWithRegularPoints) {
  auto d = datagen::uniform(120, 2, 0.0, 30.0, 17);
  for (int i = 0; i < 15; ++i) {
    double p[2] = {5.0, 5.0};
    d.push_back(p);
  }
  expect_parity(d, 1.0);
}

TEST_P(BackendParity, SkewedClusteredData) {
  // Strongly inhomogeneous density (IPPP-style bumps over a sparse
  // background): the stress case for batch load balance and for any
  // engine whose pruning assumes near-uniform cells.
  const auto d = datagen::ippp(600, 2, 32.0, 29);
  for (double eps : {0.5, 2.0}) {
    expect_parity(d, eps);
  }
}

TEST_P(BackendParity, SmallUniformSweep) {
  const auto d = datagen::uniform(250, 3, 0.0, 20.0, 19);
  for (double eps : {0.5, 2.0, 50.0}) {
    expect_parity(d, eps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendParity,
    ::testing::ValuesIn(api::BackendRegistry::instance().names()),
    [](const auto& info) { return info.param; });

// --- Data-layout parity: the cell-major layout must return byte-
// identical ordered pair sets to the legacy point-centric layout, across
// every GPU engine and both unicomp modes, edge cases included.

struct LayoutCase {
  std::string algo;
  std::map<std::string, std::string> extra;  // on top of layout=
  std::string label;
};

class LayoutParity : public ::testing::TestWithParam<LayoutCase> {
 protected:
  void expect_layout_parity(const Dataset& d, double eps) {
    const auto& backend =
        api::BackendRegistry::instance().at(GetParam().algo);
    api::RunConfig legacy_cfg, cell_cfg;
    legacy_cfg.extra = GetParam().extra;
    cell_cfg.extra = GetParam().extra;
    legacy_cfg.extra["layout"] = "legacy";
    cell_cfg.extra["layout"] = "cell";
    auto legacy = backend.run(d, eps, legacy_cfg).pairs;
    auto cell = backend.run(d, eps, cell_cfg).pairs;
    legacy.normalize();
    cell.normalize();
    // Byte-identical ordered pair sets, not just equal counts.
    EXPECT_EQ(legacy.pairs(), cell.pairs())
        << GetParam().label << " on n=" << d.size() << " eps=" << eps;
  }
};

TEST_P(LayoutParity, EdgeCases) {
  expect_layout_parity(Dataset(2), 1.0);
  expect_layout_parity(Dataset(3, {1.0, 2.0, 3.0}), 0.5);
  // eps = 0 and co-located points.
  expect_layout_parity(Dataset(2, {1.0, 1.0, 1.0, 1.0, 2.0, 2.0}), 0.0);
  expect_layout_parity(all_duplicates(4, 40), 0.5);
}

TEST_P(LayoutParity, UniformAndSkewedSweeps) {
  const auto uni = datagen::uniform(400, 3, 0.0, 20.0, 47);
  for (double eps : {0.5, 2.0, 50.0}) {
    expect_layout_parity(uni, eps);
  }
  const auto skew = datagen::ippp(800, 2, 32.0, 49);
  for (double eps : {0.5, 2.0}) {
    expect_layout_parity(skew, eps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    GpuEngines, LayoutParity,
    ::testing::Values(
        LayoutCase{"gpu", {}, "gpu"},
        LayoutCase{"gpu_unicomp", {}, "gpu_unicomp"},
        LayoutCase{"gpu_async", {}, "gpu_async"},
        LayoutCase{"gpu_async", {{"unicomp", "1"}}, "gpu_async_unicomp"}),
    [](const auto& info) { return info.param.label; });

}  // namespace
}  // namespace sj
