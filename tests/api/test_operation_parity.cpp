// Cross-backend parity for the operation facets (query/data join and
// kNN): one parameterized sweep over every backend advertising each
// capability, asserted against the brute-force oracle, on the inputs
// that historically break spatial search implementations — empty sides,
// single points, eps = 0, duplicate points, queries that are a subset of
// the data, fully disjoint query sets, queries outside the data bounds,
// and k >= n.
//
// This suite is also where the facet conventions are asserted once:
// join results are (query index, data index) pairs — NOT symmetric, no
// implicit self pairs — and kNN lists are ascending by distance, the
// query excluded from its own self-kNN list. Capability gating (the
// one-line error listing capable backends) is covered at the bottom.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "common/distance.hpp"

namespace sj {
namespace {

Dataset all_duplicates(int dim, std::size_t n, double value) {
  Dataset d(dim);
  for (std::size_t i = 0; i < n; ++i) {
    double p[kMaxDims] = {value, value, value, value, value, value};
    d.push_back(p);
  }
  return d;
}

Dataset shifted(const Dataset& d, double offset) {
  Dataset out(d.dim());
  for (std::size_t i = 0; i < d.size(); ++i) {
    double p[kMaxDims];
    for (int j = 0; j < d.dim(); ++j) p[j] = d.coord(i, j) + offset;
    out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------- join parity

class JoinParity : public ::testing::TestWithParam<std::string> {
 protected:
  const api::Backend& backend() const {
    return api::BackendRegistry::instance().at(GetParam(),
                                               api::Operation::kJoin);
  }

  void expect_parity(const Dataset& queries, const Dataset& data,
                     double eps) {
    auto want = brute::join(queries, data, eps).pairs;
    want.normalize();
    auto got = backend().join(queries, data, eps).pairs;
    got.normalize();
    EXPECT_TRUE(ResultSet::equal_normalized(got, want))
        << GetParam() << " on |Q|=" << queries.size()
        << " |D|=" << data.size() << " eps=" << eps << " (got "
        << got.size() << " pairs, want " << want.size() << ")";
  }
};

TEST_P(JoinParity, EmptySidesProduceEmptyResults) {
  const auto d = datagen::uniform(60, 2, 0.0, 10.0, 301);
  EXPECT_TRUE(backend().join(Dataset(2), d, 1.0).pairs.empty());
  EXPECT_TRUE(backend().join(d, Dataset(2), 1.0).pairs.empty());
  EXPECT_TRUE(backend().join(Dataset(2), Dataset(2), 1.0).pairs.empty());
}

TEST_P(JoinParity, SinglePointSidesAndConvention) {
  Dataset q(2, {0.0, 0.0});
  Dataset d(2, {0.1, 0.0, 50.0, 50.0});
  expect_parity(q, d, 1.0);
  auto got = backend().join(q, d, 1.0).pairs;
  got.normalize();
  // Asymmetric convention: the lone pair is (query 0, data 0) — no
  // mirrored (data, query) entry, no self pairs.
  ASSERT_EQ(got.size(), 1u) << GetParam();
  EXPECT_EQ(got.pairs()[0], (Pair{0, 0})) << GetParam();
}

TEST_P(JoinParity, EpsZeroKeepsCoLocatedPointsOnly) {
  Dataset q(2, {1.0, 1.0, 2.0, 2.0, 3.0, 3.0});
  Dataset d(2, {1.0, 1.0, 2.0, 2.0, 9.0, 9.0, 1.0, 1.0});
  expect_parity(q, d, 0.0);
  auto got = backend().join(q, d, 0.0).pairs;
  // q0 matches d0 and d3, q1 matches d1, q2 matches nothing.
  EXPECT_EQ(got.size(), 3u) << GetParam();
}

TEST_P(JoinParity, AllDuplicatePoints) {
  for (int dim : {2, 4}) {
    const auto q = all_duplicates(dim, 15, 7.0);
    const auto d = all_duplicates(dim, 25, 7.0);
    expect_parity(q, d, 0.5);
    EXPECT_EQ(backend().join(q, d, 0.5).pairs.size(), 15u * 25u)
        << GetParam() << " dim=" << dim;
  }
}

TEST_P(JoinParity, QueriesSubsetOfData) {
  const auto d = datagen::uniform(400, 2, 0.0, 30.0, 303);
  Dataset q(2);
  for (std::size_t i = 0; i < d.size(); i += 5) q.push_back(d.pt(i));
  expect_parity(q, d, 1.0);
  // Every query coincides with its source data point, so each has at
  // least one zero-distance match.
  auto got = backend().join(q, d, 1.0).pairs;
  got.normalize();
  const auto& pairs = got.pairs();
  for (std::uint32_t i = 0; i < q.size(); ++i) {
    EXPECT_TRUE(std::binary_search(pairs.begin(), pairs.end(),
                                   Pair{i, i * 5}))
        << GetParam() << ": query " << i
        << " missing its coincident data point";
  }
}

TEST_P(JoinParity, DisjointQuerySetFindsNothing) {
  const auto d = datagen::uniform(300, 3, 0.0, 10.0, 305);
  const auto q = datagen::uniform(200, 3, 50.0, 60.0, 306);
  expect_parity(q, d, 1.0);
  EXPECT_TRUE(backend().join(q, d, 1.0).pairs.empty()) << GetParam();
}

TEST_P(JoinParity, QueriesOutsideDataBounds) {
  // Queries straddle the data's bounding box (grid-based engines must
  // clamp external points into the grid without losing matches near the
  // boundary).
  const auto d = datagen::uniform(500, 2, 0.0, 10.0, 307);
  const auto q = datagen::uniform(300, 2, -5.0, 15.0, 308);
  for (double eps : {0.5, 2.0}) {
    expect_parity(q, d, eps);
  }
}

TEST_P(JoinParity, UniformSweep) {
  for (int dim : {1, 2, 3}) {
    const auto q = datagen::uniform(250, dim, 0.0, 20.0, 310 + dim);
    const auto d = datagen::gaussian_mixture(350, dim, 4, 3.0, 0.0, 20.0,
                                             320 + dim);
    for (double eps : {0.5, 2.0, 40.0}) {
      expect_parity(q, d, eps);
    }
  }
}

TEST_P(JoinParity, SkewedIpppQueriesOverUniformData) {
  // The workload the per-group weighted batching exists for: most of the
  // result volume concentrated in a few query home cells.
  const auto d = datagen::uniform(600, 2, 0.0, 32.0, 331);
  const auto q = datagen::ippp(500, 2, 32.0, 332);
  for (double eps : {0.5, 2.0}) {
    expect_parity(q, d, eps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    JoinBackends, JoinParity,
    ::testing::ValuesIn(api::BackendRegistry::instance().names_supporting(
        api::Operation::kJoin)),
    [](const auto& info) { return info.param; });

// ----------------------------------------------------------- kNN parity

class KnnParity : public ::testing::TestWithParam<std::string> {
 protected:
  const api::Backend& backend() const {
    return api::BackendRegistry::instance().at(GetParam(),
                                               api::Operation::kKnn);
  }

  /// Count + distance parity per query against the oracle lists, plus id
  /// consistency: tie-breaking may legitimately differ between engines,
  /// so ids are checked by re-evaluating their actual distances rather
  /// than by exact match.
  void expect_lists_match(const Dataset& queries, const Dataset& data,
                          const NeighborLists& got,
                          const NeighborLists& want) {
    ASSERT_EQ(got.num_queries(), want.num_queries()) << GetParam();
    for (std::size_t q = 0; q < got.num_queries(); ++q) {
      ASSERT_EQ(got.count(q), want.count(q))
          << GetParam() << " query " << q;
      for (int j = 0; j < got.count(q); ++j) {
        EXPECT_DOUBLE_EQ(got.distance(q, j), want.distance(q, j))
            << GetParam() << " query " << q << " rank " << j;
        const std::uint32_t id = got.neighbor(q, j);
        ASSERT_LT(id, data.size()) << GetParam();
        EXPECT_DOUBLE_EQ(
            std::sqrt(sq_dist(queries.pt(q), data.pt(id), data.dim())),
            got.distance(q, j))
            << GetParam() << " query " << q << " rank " << j
            << ": reported id does not lie at the reported distance";
      }
    }
  }

  void expect_self_parity(const Dataset& d, int k) {
    const auto want = brute::self_knn(d, k);
    const auto got = backend().self_knn(d, k);
    expect_lists_match(d, d, got.neighbors, want.neighbors);
  }

  void expect_two_set_parity(const Dataset& queries, const Dataset& data,
                             int k) {
    const auto want = brute::knn(queries, data, k);
    const auto got = backend().knn(queries, data, k);
    expect_lists_match(queries, data, got.neighbors, want.neighbors);
  }
};

TEST_P(KnnParity, SelfKnnMatchesOracle) {
  for (int dim : {2, 3}) {
    const auto d = datagen::uniform(500, dim, 0.0, 50.0, 340 + dim);
    for (int k : {1, 4, 16}) {
      expect_self_parity(d, k);
    }
  }
}

TEST_P(KnnParity, SelfKnnExcludesSelf) {
  const auto d = datagen::uniform(200, 2, 0.0, 50.0, 350);
  const auto got = backend().self_knn(d, 3);
  for (std::size_t q = 0; q < d.size(); ++q) {
    for (int j = 0; j < got.neighbors.count(q); ++j) {
      EXPECT_NE(got.neighbors.neighbor(q, j), q)
          << GetParam() << ": query " << q << " returned itself";
    }
  }
}

TEST_P(KnnParity, IncludeSelfKnobPutsQueryFirst) {
  const auto d = datagen::uniform(150, 2, 0.0, 50.0, 351);
  api::RunConfig config;
  config.extra["include_self"] = "1";
  const auto got = backend().self_knn(d, 4, config);
  for (std::size_t q = 0; q < d.size(); q += 10) {
    EXPECT_DOUBLE_EQ(got.neighbors.distance(q, 0), 0.0) << GetParam();
  }
}

TEST_P(KnnParity, KGreaterThanDatasetReturnsEverything) {
  const auto d = datagen::uniform(9, 2, 0.0, 10.0, 352);
  expect_self_parity(d, 50);
  const auto got = backend().self_knn(d, 50);
  for (std::size_t q = 0; q < d.size(); ++q) {
    EXPECT_EQ(got.neighbors.count(q), 8) << GetParam();  // all but self
  }
  const auto q2 = datagen::uniform(5, 2, 0.0, 10.0, 353);
  expect_two_set_parity(q2, d, 50);
  const auto two = backend().knn(q2, d, 50);
  for (std::size_t q = 0; q < q2.size(); ++q) {
    EXPECT_EQ(two.neighbors.count(q), 9) << GetParam();  // whole data set
  }
}

TEST_P(KnnParity, DuplicatePointsAreValidNeighbors) {
  const auto d = all_duplicates(2, 20, 5.0);
  expect_self_parity(d, 4);
  const auto got = backend().self_knn(d, 4);
  for (int j = 0; j < got.neighbors.count(0); ++j) {
    EXPECT_DOUBLE_EQ(got.neighbors.distance(0, j), 0.0) << GetParam();
  }
}

TEST_P(KnnParity, QueriesSubsetOfData) {
  const auto d = datagen::uniform(300, 2, 0.0, 30.0, 354);
  Dataset q(2);
  for (std::size_t i = 0; i < d.size(); i += 7) q.push_back(d.pt(i));
  expect_two_set_parity(q, d, 5);
  // Two-set mode never excludes coincident points: rank 0 is the query's
  // own source point at distance zero.
  const auto got = backend().knn(q, d, 5);
  for (std::size_t i = 0; i < q.size(); ++i) {
    ASSERT_GE(got.neighbors.count(i), 1) << GetParam();
    EXPECT_DOUBLE_EQ(got.neighbors.distance(i, 0), 0.0) << GetParam();
  }
}

TEST_P(KnnParity, DisjointQuerySetStillFindsNeighbors) {
  // kNN has no range cutoff: far-away queries still get k neighbours.
  const auto d = datagen::uniform(400, 2, 0.0, 10.0, 355);
  const auto q = datagen::uniform(60, 2, 80.0, 90.0, 356);
  expect_two_set_parity(q, d, 3);
}

TEST_P(KnnParity, SkewedIpppData) {
  const auto d = datagen::ippp(700, 2, 32.0, 357);
  expect_self_parity(d, 8);
}

TEST_P(KnnParity, EmptySides) {
  const auto d = datagen::uniform(50, 2, 0.0, 10.0, 358);
  const auto no_data = backend().knn(d, Dataset(2), 3);
  ASSERT_EQ(no_data.neighbors.num_queries(), d.size()) << GetParam();
  for (std::size_t q = 0; q < d.size(); ++q) {
    EXPECT_EQ(no_data.neighbors.count(q), 0) << GetParam();
  }
  EXPECT_EQ(backend().knn(Dataset(2), d, 3).neighbors.num_queries(), 0u);
  EXPECT_EQ(backend().self_knn(Dataset(2), 3).neighbors.num_queries(), 0u);
}

TEST_P(KnnParity, RejectsBadK) {
  EXPECT_THROW(backend().self_knn(Dataset(2), 0), std::invalid_argument);
  EXPECT_THROW(backend().knn(Dataset(2), Dataset(2), -3),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    KnnBackends, KnnParity,
    ::testing::ValuesIn(api::BackendRegistry::instance().names_supporting(
        api::Operation::kKnn)),
    [](const auto& info) { return info.param; });

// ------------------------------------------------ sharded parity sweep
// gpu_shard already rides the JoinParity sweep above (it advertises the
// join capability); this battery additionally pins BYTE-IDENTICAL
// normalized pair sets against the single-device gpu backend across
// shard counts, for both operations.

class ShardCountParity : public ::testing::TestWithParam<int> {
 protected:
  api::RunConfig shard_config() const {
    api::RunConfig config;
    config.extra["shards"] = std::to_string(GetParam());
    return config;
  }
};

TEST_P(ShardCountParity, SelfJoinIsByteIdenticalToGpu) {
  const auto& registry = api::BackendRegistry::instance();
  const auto d = datagen::uniform(700, 2, 0.0, 25.0, 601);
  auto want = registry.at("gpu").run(d, 1.2).pairs;
  want.normalize();
  auto got = registry.at("gpu_shard").run(d, 1.2, shard_config()).pairs;
  got.normalize();
  ASSERT_EQ(got.size(), want.size()) << "shards=" << GetParam();
  EXPECT_TRUE(got.pairs() == want.pairs()) << "shards=" << GetParam();
}

TEST_P(ShardCountParity, JoinIsByteIdenticalToGpu) {
  const auto& registry = api::BackendRegistry::instance();
  const auto q = datagen::uniform(300, 2, -2.0, 12.0, 607);  // overhangs d
  const auto d = datagen::uniform(500, 2, 0.0, 10.0, 613);
  auto want = registry.at("gpu").join(q, d, 0.8).pairs;
  want.normalize();
  auto got =
      registry.at("gpu_shard").join(q, d, 0.8, shard_config()).pairs;
  got.normalize();
  ASSERT_EQ(got.size(), want.size()) << "shards=" << GetParam();
  EXPECT_TRUE(got.pairs() == want.pairs()) << "shards=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountParity,
                         ::testing::Values(1, 2, 3, 7));

// --------------------------------------------------- result-mode parity
// Every backend honors pairs/count/histogram; sink is additionally gated
// (gpu_shard's shard pipelines run concurrently and cannot stream batches
// in the global deterministic order). This battery pins the cross-mode
// invariants on EVERY registered backend: total_pairs is the exact pair
// count in every mode, the histogram equals counts_per_key of the
// pairs-mode result, and the sink-batch concatenation is byte-identical
// to the pairs-mode output.

class ResultModeParity : public ::testing::TestWithParam<std::string> {
 protected:
  const api::Backend& backend() const {
    return api::BackendRegistry::instance().at(GetParam());
  }

  // The one backend that cannot stream; asserted (not assumed) by
  // SinkGating below so the design decision stays pinned.
  bool expect_sink_support() const { return GetParam() != "gpu_shard"; }

  static Dataset test_data() {
    return datagen::gaussian_mixture(900, 2, 5, 2.0, 0.0, 25.0, 701);
  }
  static constexpr double kEps = 1.1;

  static api::RunConfig mode_config(ResultMode mode) {
    api::RunConfig config;
    config.mode = mode;
    return config;
  }
};

TEST_P(ResultModeParity, CountOnlyMatchesPairsTotal) {
  const auto d = test_data();
  const auto full = backend().run(d, kEps);
  ASSERT_GT(full.pairs.size(), d.size()) << GetParam();
  EXPECT_EQ(full.total_pairs, full.pairs.size()) << GetParam();

  const auto counted =
      backend().run(d, kEps, mode_config(ResultMode::kCountOnly));
  EXPECT_EQ(counted.total_pairs, full.pairs.size()) << GetParam();
  // Non-pairs modes leave the untouched buffers empty.
  EXPECT_TRUE(counted.pairs.empty()) << GetParam();
  EXPECT_TRUE(counted.histogram.empty()) << GetParam();
}

TEST_P(ResultModeParity, HistogramMatchesCountsPerKey) {
  const auto d = test_data();
  auto full = backend().run(d, kEps);
  full.pairs.normalize();
  const auto want = full.pairs.counts_per_key(d.size());

  const auto got =
      backend().run(d, kEps, mode_config(ResultMode::kHistogram));
  ASSERT_EQ(got.histogram.size(), d.size()) << GetParam();
  EXPECT_TRUE(got.pairs.empty()) << GetParam();
  EXPECT_EQ(got.total_pairs, full.pairs.size()) << GetParam();
  EXPECT_EQ(got.histogram, want) << GetParam();
  // Degrees include the self pair, so every counter is >= 1 and the
  // histogram sums back to the exact pair count.
  const auto sum = std::accumulate(got.histogram.begin(), got.histogram.end(),
                                   std::uint64_t{0});
  EXPECT_EQ(sum, got.total_pairs) << GetParam();
  for (std::uint32_t c : got.histogram) ASSERT_GE(c, 1u) << GetParam();
}

TEST_P(ResultModeParity, SinkConcatenationIsByteIdenticalToPairs) {
  if (!expect_sink_support()) GTEST_SKIP() << "no sink on " << GetParam();
  const auto d = test_data();
  const auto full = backend().run(d, kEps);

  std::vector<Pair> streamed;
  api::RunConfig config = mode_config(ResultMode::kSink);
  config.sink = [&](const Pair* pairs, std::size_t count) {
    streamed.insert(streamed.end(), pairs, pairs + count);
  };
  const auto sunk = backend().run(d, kEps, config);
  EXPECT_TRUE(sunk.pairs.empty()) << GetParam();
  EXPECT_EQ(sunk.total_pairs, full.pairs.size()) << GetParam();
  // Not just the same set: the same bytes in the same order.
  EXPECT_TRUE(streamed == full.pairs.pairs()) << GetParam();
}

TEST_P(ResultModeParity, SinkGating) {
  api::RunConfig config = mode_config(ResultMode::kSink);
  config.sink = [](const Pair*, std::size_t) {};
  const auto d = datagen::uniform(80, 2, 0.0, 10.0, 702);
  if (expect_sink_support()) {
    EXPECT_NO_THROW(backend().run(d, 1.0, config)) << GetParam();
  } else {
    try {
      backend().run(d, 1.0, config);
      FAIL() << GetParam() << ": expected sink rejection";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find(GetParam()), std::string::npos) << msg;
      EXPECT_NE(msg.find("sink"), std::string::npos) << msg;
      EXPECT_EQ(msg.find('\n'), std::string::npos) << "not one line: " << msg;
    }
  }
  // Sink mode without a callback is rejected everywhere.
  config.sink = nullptr;
  EXPECT_THROW(backend().run(d, 1.0, config), std::invalid_argument)
      << GetParam();
}

TEST_P(ResultModeParity, EmptyDatasetAllModes) {
  const Dataset empty(2);
  for (ResultMode mode : {ResultMode::kPairs, ResultMode::kCountOnly,
                          ResultMode::kHistogram}) {
    const auto out = backend().run(empty, 1.0, mode_config(mode));
    EXPECT_EQ(out.total_pairs, 0u)
        << GetParam() << " mode=" << result_mode_name(mode);
    EXPECT_TRUE(out.pairs.empty()) << GetParam();
    EXPECT_TRUE(out.histogram.empty()) << GetParam();
  }
}

TEST_P(ResultModeParity, JoinModesUseQueryKeys) {
  if (!backend().capabilities().supports_join) {
    GTEST_SKIP() << GetParam() << " has no join facet";
  }
  const auto q = datagen::uniform(250, 2, 0.0, 12.0, 703);
  const auto d = datagen::uniform(400, 2, 0.0, 12.0, 704);
  auto full = backend().join(q, d, 0.9);
  ASSERT_GT(full.pairs.size(), 0u) << GetParam();

  const auto counted =
      backend().join(q, d, 0.9, mode_config(ResultMode::kCountOnly));
  EXPECT_EQ(counted.total_pairs, full.pairs.size()) << GetParam();

  // Histogram keys are QUERY indices: one counter per query point.
  const auto hist =
      backend().join(q, d, 0.9, mode_config(ResultMode::kHistogram));
  ASSERT_EQ(hist.histogram.size(), q.size()) << GetParam();
  full.pairs.normalize();
  EXPECT_EQ(hist.histogram, full.pairs.counts_per_key(q.size()))
      << GetParam();
  EXPECT_EQ(hist.total_pairs, full.pairs.size()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ResultModeParity,
    ::testing::ValuesIn(api::BackendRegistry::instance().names()),
    [](const auto& info) { return info.param; });

// Overflow stress: a 4096-pair device buffer (far below the result size,
// but still above any single cell's output, which cannot be split) forces
// the pipeline through many overflow splits — exactly where the sink
// watermark logic (deferred flushing until every earlier batch landed)
// earns its keep. Two sink runs must produce identical byte streams, both
// equal to the pairs-mode output under the same starved buffer.
TEST(ResultModeOverflow, SinkStaysDeterministicUnderBufferStarvation) {
  const auto d = datagen::gaussian_mixture(600, 2, 4, 1.5, 0.0, 20.0, 711);
  for (const std::string name : {"gpu", "gpu_unicomp", "gpu_async"}) {
    const auto& backend = api::BackendRegistry::instance().at(name);
    api::RunConfig config;
    config.extra["max_buffer_pairs"] = "4096";
    const auto full = backend.run(d, 1.2, config);
    ASSERT_GT(full.pairs.size(), 8000u) << name;

    std::size_t batches = 0;
    std::vector<Pair> first, second;
    config.mode = ResultMode::kSink;
    std::vector<Pair>* dest = &first;
    config.sink = [&](const Pair* pairs, std::size_t count) {
      ++batches;
      dest->insert(dest->end(), pairs, pairs + count);
    };
    const auto s1 = backend.run(d, 1.2, config);
    EXPECT_GT(batches, 1u) << name << ": starved buffer did not split";
    dest = &second;
    const auto s2 = backend.run(d, 1.2, config);

    EXPECT_EQ(s1.total_pairs, full.pairs.size()) << name;
    EXPECT_EQ(s2.total_pairs, full.pairs.size()) << name;
    EXPECT_TRUE(first == full.pairs.pairs()) << name;
    EXPECT_TRUE(first == second) << name << ": sink stream not reproducible";

    // The starved buffer must not change the count-only path either.
    config.mode = ResultMode::kCountOnly;
    config.sink = nullptr;
    EXPECT_EQ(backend.run(d, 1.2, config).total_pairs, full.pairs.size())
        << name;
  }
}

// ---------------------------------------------------- capability gating

TEST(OperationGating, AtLeastTwoBackendsPerFacet) {
  const auto& registry = api::BackendRegistry::instance();
  EXPECT_GE(registry.names_supporting(api::Operation::kJoin).size(), 2u);
  EXPECT_GE(registry.names_supporting(api::Operation::kKnn).size(), 2u);
  // Self-join is mandatory: everything qualifies.
  EXPECT_EQ(registry.names_supporting(api::Operation::kSelfJoin),
            registry.names());
}

TEST(OperationGating, UnsupportedJoinThrowsOneLinerListingCapable) {
  const auto& ego = api::BackendRegistry::instance().at("ego");
  ASSERT_FALSE(ego.capabilities().supports_join);
  try {
    ego.join(Dataset(2), Dataset(2), 1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'ego' does not support join"), std::string::npos)
        << msg;
    for (const auto& name :
         api::BackendRegistry::instance().names_supporting(
             api::Operation::kJoin)) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
    EXPECT_EQ(msg.find('\n'), std::string::npos) << "not one line: " << msg;
  }
}

TEST(OperationGating, UnsupportedKnnThrowsForEveryFacetEntryPoint) {
  const auto& rtree = api::BackendRegistry::instance().at("rtree");
  ASSERT_FALSE(rtree.capabilities().supports_knn);
  EXPECT_THROW(rtree.self_knn(Dataset(2), 3), std::invalid_argument);
  EXPECT_THROW(rtree.knn(Dataset(2), Dataset(2), 3), std::invalid_argument);
}

TEST(OperationGating, RegistryOperationLookup) {
  const auto& registry = api::BackendRegistry::instance();
  EXPECT_EQ(registry.at("gpu", api::Operation::kJoin).name(), "gpu");
  EXPECT_EQ(registry.at("superego", api::Operation::kSelfJoin).name(),
            "ego");
  EXPECT_THROW(registry.at("ego", api::Operation::kJoin),
               std::invalid_argument);
  EXPECT_THROW(registry.at("gpu_async", api::Operation::kKnn),
               std::invalid_argument);
  EXPECT_THROW(registry.at("nosuch", api::Operation::kJoin),
               std::invalid_argument);
}

TEST(OperationGating, UnknownNameErrorListsCapabilities) {
  try {
    api::BackendRegistry::instance().at("nosuch");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown backend 'nosuch'"), std::string::npos);
    EXPECT_NE(msg.find("gpu [self-join, join, knn, gpu]"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("ego [self-join]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rtree [self-join, join]"), std::string::npos) << msg;
  }
}

TEST(OperationGating, CapabilitySummaryShapes) {
  EXPECT_EQ(api::capability_summary({}), "self-join");
  EXPECT_EQ(api::capability_summary({.supports_join = true}),
            "self-join, join");
  EXPECT_EQ(api::capability_summary(
                {.supports_join = true, .supports_knn = true, .gpu = true}),
            "self-join, join, knn, gpu");
}

}  // namespace
}  // namespace sj
