// DBSCAN on the GPU self-join: semantics checked against a direct
// reference implementation that uses brute-force neighbourhoods.
#include "apps/dbscan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/datagen.hpp"
#include "common/distance.hpp"
#include "common/rng.hpp"

namespace sj::apps {
namespace {

/// Reference DBSCAN with brute-force neighbourhoods (standard textbook
/// expansion; identical label-partitioning semantics).
std::vector<int> reference_dbscan(const Dataset& d, double eps,
                                  std::size_t min_pts) {
  const double eps2 = eps * eps;
  const std::size_t n = d.size();
  std::vector<std::vector<std::uint32_t>> nbrs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (sq_dist(d.pt(i), d.pt(j), d.dim()) <= eps2) {
        nbrs[i].push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
  constexpr int kUnvisited = -2, kNoise = -1;
  std::vector<int> label(n, kUnvisited);
  int cluster = 0;
  std::vector<std::uint32_t> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    if (nbrs[i].size() < min_pts) {
      label[i] = kNoise;
      continue;
    }
    label[i] = cluster;
    frontier = nbrs[i];
    while (!frontier.empty()) {
      const std::uint32_t q = frontier.back();
      frontier.pop_back();
      if (label[q] == kNoise) {
        label[q] = cluster;
        continue;
      }
      if (label[q] != kUnvisited) continue;
      label[q] = cluster;
      if (nbrs[q].size() >= min_pts) {
        frontier.insert(frontier.end(), nbrs[q].begin(), nbrs[q].end());
      }
    }
    ++cluster;
  }
  return label;
}

/// Same partition up to cluster relabelling, with identical noise sets.
/// Border points reachable from two clusters may legitimately differ, so
/// the comparison checks core-point partitions exactly and border/noise
/// status loosely: noise-vs-cluster status must agree.
void expect_equivalent_clustering(const Dataset& d, double eps,
                                  std::size_t min_pts,
                                  const std::vector<int>& got,
                                  const std::vector<int>& want) {
  ASSERT_EQ(got.size(), want.size());
  // Noise exactly matches.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i] < 0, want[i] < 0) << "noise status of point " << i;
  }
  // Core points: the cluster partition must be identical up to renaming.
  const double eps2 = eps * eps;
  std::map<int, int> mapping;
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::size_t degree = 0;
    for (std::size_t j = 0; j < d.size(); ++j) {
      if (sq_dist(d.pt(i), d.pt(j), d.dim()) <= eps2) ++degree;
    }
    if (degree < min_pts) continue;  // border points may tie-break apart
    ASSERT_GE(got[i], 0);
    ASSERT_GE(want[i], 0);
    const auto it = mapping.find(want[i]);
    if (it == mapping.end()) {
      for (const auto& [w, g] : mapping) EXPECT_NE(g, got[i]);
      mapping[want[i]] = got[i];
    } else {
      EXPECT_EQ(it->second, got[i]) << "core point " << i;
    }
  }
}

TEST(Dbscan, MatchesReferenceOnBlobs) {
  const auto d = datagen::gaussian_mixture(1200, 2, 6, 1.0, 0.0, 100.0, 71);
  DbscanOptions opt;
  opt.eps = 1.5;
  opt.min_pts = 6;
  const auto r = dbscan(d, opt);
  const auto want = reference_dbscan(d, opt.eps, opt.min_pts);
  expect_equivalent_clustering(d, opt.eps, opt.min_pts, r.labels, want);
}

TEST(Dbscan, MatchesReferenceOnUniform) {
  const auto d = datagen::uniform(800, 2, 0.0, 100.0, 73);
  DbscanOptions opt;
  opt.eps = 3.0;
  opt.min_pts = 5;
  const auto r = dbscan(d, opt);
  const auto want = reference_dbscan(d, opt.eps, opt.min_pts);
  expect_equivalent_clustering(d, opt.eps, opt.min_pts, r.labels, want);
}

TEST(Dbscan, MatchesReference3D) {
  const auto d = datagen::gaussian_mixture(900, 3, 4, 2.0, 0.0, 100.0, 75);
  DbscanOptions opt;
  opt.eps = 4.0;
  opt.min_pts = 8;
  const auto r = dbscan(d, opt);
  const auto want = reference_dbscan(d, opt.eps, opt.min_pts);
  expect_equivalent_clustering(d, opt.eps, opt.min_pts, r.labels, want);
}

TEST(Dbscan, WellSeparatedBlobsGiveExactClusterCount) {
  // Three tight blobs far apart: exactly 3 clusters, no noise.
  Dataset d(2);
  Xoshiro256 rng(77);
  const double centers[3][2] = {{10, 10}, {50, 50}, {90, 10}};
  for (const auto& c : centers) {
    for (int i = 0; i < 60; ++i) {
      double p[2] = {c[0] + rng.normal(0.0, 0.5), c[1] + rng.normal(0.0, 0.5)};
      d.push_back(p);
    }
  }
  DbscanOptions opt;
  opt.eps = 2.0;
  opt.min_pts = 5;
  const auto r = dbscan(d, opt);
  EXPECT_EQ(r.num_clusters, 3);
  EXPECT_EQ(r.num_noise, 0u);
  const auto sizes = r.cluster_sizes();
  for (auto s : sizes) EXPECT_EQ(s, 60u);
}

TEST(Dbscan, AllNoiseWhenSparse) {
  const auto d = datagen::uniform(200, 2, 0.0, 1000.0, 79);
  DbscanOptions opt;
  opt.eps = 0.5;
  opt.min_pts = 4;
  const auto r = dbscan(d, opt);
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_EQ(r.num_noise, d.size());
}

TEST(Dbscan, SingleClusterWhenDense) {
  const auto d = datagen::uniform(500, 2, 0.0, 5.0, 81);
  DbscanOptions opt;
  opt.eps = 2.0;
  opt.min_pts = 4;
  const auto r = dbscan(d, opt);
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.num_noise, 0u);
}

TEST(Dbscan, EmptyDataset) {
  const auto r = dbscan(Dataset(2), DbscanOptions{});
  EXPECT_EQ(r.num_clusters, 0);
  EXPECT_TRUE(r.labels.empty());
}

TEST(Dbscan, StatsPopulated) {
  const auto d = datagen::gaussian_mixture(2000, 2, 5, 1.0, 0.0, 100.0, 83);
  DbscanOptions opt;
  opt.eps = 1.0;
  opt.min_pts = 5;
  const auto r = dbscan(d, opt);
  EXPECT_GT(r.join_seconds, 0.0);
  EXPECT_GT(r.traversal_seconds, 0.0);
  EXPECT_GT(r.num_core, 0u);
  EXPECT_EQ(r.labels.size(), d.size());
}

TEST(Dbscan, StreamsWithBoundedPairResidency) {
  // The point of the sink-mode clustering pass: peak host-side pair
  // residency is one pipeline buffer, not the full O(|result|) table.
  // Starve the device buffer to 4096 pairs and check the largest batch
  // the reducer ever held respects that cap while the clustering still
  // matches the reference.
  const auto d = datagen::gaussian_mixture(1500, 2, 5, 1.2, 0.0, 60.0, 87);
  DbscanOptions opt;
  opt.eps = 1.4;
  opt.min_pts = 6;
  opt.join_config.extra["max_buffer_pairs"] = "4096";
  const auto r = dbscan(d, opt);
  ASSERT_GT(r.total_pairs, 4096u) << "dataset too sparse to exercise splits";
  EXPECT_GT(r.peak_batch_pairs, 0u);
  EXPECT_LE(r.peak_batch_pairs, 4096u)
      << "sink pass held more than one starved pipeline buffer";
  const auto want = reference_dbscan(d, opt.eps, opt.min_pts);
  expect_equivalent_clustering(d, opt.eps, opt.min_pts, r.labels, want);
}

TEST(Dbscan, ShardBackendFallsBackToMaterialisedPass) {
  // gpu_shard rejects sink mode (concurrent shard pipelines); DBSCAN must
  // transparently fall back to one materialised pass — same clustering,
  // with peak residency honestly reporting the full result size.
  const auto d = datagen::gaussian_mixture(1000, 2, 4, 1.0, 0.0, 50.0, 89);
  DbscanOptions opt;
  opt.eps = 1.2;
  opt.min_pts = 5;
  opt.algo = "gpu_shard";
  opt.join_config.extra["shards"] = "3";
  const auto r = dbscan(d, opt);
  EXPECT_EQ(r.peak_batch_pairs, r.total_pairs)
      << "materialised fallback should see the whole result at once";
  const auto want = reference_dbscan(d, opt.eps, opt.min_pts);
  expect_equivalent_clustering(d, opt.eps, opt.min_pts, r.labels, want);
}

TEST(Dbscan, MinPtsOneMakesEveryPointCore) {
  const auto d = datagen::uniform(300, 2, 0.0, 100.0, 85);
  DbscanOptions opt;
  opt.eps = 0.5;
  opt.min_pts = 1;  // every point is core (self pair counts)
  const auto r = dbscan(d, opt);
  EXPECT_EQ(r.num_noise, 0u);
  EXPECT_EQ(r.num_core, d.size());
}

}  // namespace
}  // namespace sj::apps
