#include "gpusim/occupancy.hpp"

#include <gtest/gtest.h>

namespace sj::gpu {
namespace {

// The paper's Table II occupancies for the self-join kernels at 256
// threads/block on the TITAN X (Pascal): 100%/75% in 2-D (without/with
// UNICOMP) and 62.5%/50% in 5-6-D.
TEST(Occupancy, TableTwoValues2D) {
  const auto spec = DeviceSpec::titan_x_pascal();
  const auto base = theoretical_occupancy(
      spec, 256, self_join_regs_per_thread(2, false));
  const auto uni = theoretical_occupancy(
      spec, 256, self_join_regs_per_thread(2, true));
  EXPECT_DOUBLE_EQ(base.occupancy, 1.0);
  EXPECT_DOUBLE_EQ(uni.occupancy, 0.75);
}

TEST(Occupancy, TableTwoValues5D) {
  const auto spec = DeviceSpec::titan_x_pascal();
  EXPECT_DOUBLE_EQ(theoretical_occupancy(
                       spec, 256, self_join_regs_per_thread(5, false))
                       .occupancy,
                   0.625);
  EXPECT_DOUBLE_EQ(theoretical_occupancy(
                       spec, 256, self_join_regs_per_thread(5, true))
                       .occupancy,
                   0.5);
}

TEST(Occupancy, TableTwoValues6D) {
  const auto spec = DeviceSpec::titan_x_pascal();
  EXPECT_DOUBLE_EQ(theoretical_occupancy(
                       spec, 256, self_join_regs_per_thread(6, false))
                       .occupancy,
                   0.625);
  EXPECT_DOUBLE_EQ(theoretical_occupancy(
                       spec, 256, self_join_regs_per_thread(6, true))
                       .occupancy,
                   0.5);
}

TEST(Occupancy, UnicompAlwaysUsesMoreRegisters) {
  for (int dim = 1; dim <= 6; ++dim) {
    EXPECT_GT(self_join_regs_per_thread(dim, true),
              self_join_regs_per_thread(dim, false));
  }
}

TEST(Occupancy, ThreadLimitBoundsBlocks) {
  const auto spec = DeviceSpec::titan_x_pascal();
  // Tiny register usage: limited purely by threads per SM.
  const auto r = theoretical_occupancy(spec, 1024, 16);
  EXPECT_EQ(r.blocks_per_sm, 2);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
}

TEST(Occupancy, RegisterLimitKicksIn) {
  const auto spec = DeviceSpec::titan_x_pascal();
  // 255 regs/thread, 256-thread blocks: 255*32 = 8160 -> 8192 per warp
  // after granularity, * 8 warps = 65536 per block -> exactly 1 block.
  const auto r = theoretical_occupancy(spec, 256, 255);
  EXPECT_EQ(r.blocks_per_sm, 1);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.125);
}

TEST(Occupancy, SharedMemoryLimit) {
  const auto spec = DeviceSpec::titan_x_pascal();
  // 48 KiB smem per block with 96 KiB per SM: at most 2 blocks.
  const auto r = theoretical_occupancy(spec, 128, 16, 48 * 1024);
  EXPECT_EQ(r.blocks_per_sm, 2);
}

TEST(Occupancy, HardwareBlockLimit) {
  const auto spec = DeviceSpec::titan_x_pascal();
  // Tiny blocks: bounded by max_blocks_per_sm (32), not threads (64).
  const auto r = theoretical_occupancy(spec, 32, 8);
  EXPECT_EQ(r.blocks_per_sm, 32);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.5);
}

TEST(Occupancy, InvalidBlockSizeGivesZero) {
  const auto spec = DeviceSpec::titan_x_pascal();
  EXPECT_DOUBLE_EQ(theoretical_occupancy(spec, 0, 32).occupancy, 0.0);
  EXPECT_DOUBLE_EQ(theoretical_occupancy(spec, 2048, 32).occupancy, 0.0);
}

TEST(Occupancy, RegisterModelGrowsWithDimension) {
  EXPECT_EQ(self_join_regs_per_thread(2, false), 32);
  EXPECT_EQ(self_join_regs_per_thread(6, false), 48);
  EXPECT_EQ(self_join_regs_per_thread(2, true), 40);
  EXPECT_EQ(self_join_regs_per_thread(6, true), 56);
}

}  // namespace
}  // namespace sj::gpu
