#include "gpusim/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace sj::gpu {
namespace {

std::vector<Pair> random_pairs(std::size_t n, std::uint32_t key_range,
                               std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Pair> v(n);
  for (auto& p : v) {
    p.key = static_cast<std::uint32_t>(rng.below(key_range));
    p.value = static_cast<std::uint32_t>(rng.below(key_range));
  }
  return v;
}

TEST(DeviceSort, MatchesStdSort) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    auto v = random_pairs(10000, 1u << 20, seed);
    auto want = v;
    std::sort(want.begin(), want.end());
    std::vector<Pair> tmp(v.size());
    sort_pairs_by_key(v.data(), v.size(), tmp.data());
    EXPECT_EQ(v, want);
  }
}

TEST(DeviceSort, SmallKeyRangeTriggersPassElision) {
  // Keys/values below 2^16: the two high-digit passes are identities.
  auto v = random_pairs(20000, 1u << 12, 7);
  auto want = v;
  std::sort(want.begin(), want.end());
  std::vector<Pair> tmp(v.size());
  sort_pairs_by_key(v.data(), v.size(), tmp.data());
  EXPECT_EQ(v, want);
}

TEST(DeviceSort, LargeKeysUseAllPasses) {
  auto v = random_pairs(5000, 0xFFFFFFFFu, 11);
  auto want = v;
  std::sort(want.begin(), want.end());
  std::vector<Pair> tmp(v.size());
  sort_pairs_by_key(v.data(), v.size(), tmp.data());
  EXPECT_EQ(v, want);
}

TEST(DeviceSort, EmptyAndSingle) {
  std::vector<Pair> tmp(4);
  std::vector<Pair> empty;
  sort_pairs_by_key(empty.data(), 0, tmp.data());
  std::vector<Pair> one{{5, 6}};
  sort_pairs_by_key(one.data(), 1, tmp.data());
  EXPECT_EQ(one[0], (Pair{5, 6}));
}

TEST(DeviceSort, AlreadySorted) {
  std::vector<Pair> v;
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back({i, i * 2});
  auto want = v;
  std::vector<Pair> tmp(v.size());
  sort_pairs_by_key(v.data(), v.size(), tmp.data());
  EXPECT_EQ(v, want);
}

TEST(DeviceSort, AllEqual) {
  std::vector<Pair> v(500, Pair{3, 4});
  std::vector<Pair> tmp(v.size());
  sort_pairs_by_key(v.data(), v.size(), tmp.data());
  for (const auto& p : v) EXPECT_EQ(p, (Pair{3, 4}));
}

TEST(DeviceSort, StableGroupingByKey) {
  auto v = random_pairs(30000, 200, 13);  // many duplicates per key
  std::vector<Pair> tmp(v.size());
  sort_pairs_by_key(v.data(), v.size(), tmp.data());
  for (std::size_t i = 1; i < v.size(); ++i) {
    EXPECT_LE(v[i - 1], v[i]);
  }
}

}  // namespace
}  // namespace sj::gpu
