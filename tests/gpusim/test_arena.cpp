#include "gpusim/arena.hpp"

#include <gtest/gtest.h>

namespace sj::gpu {
namespace {

TEST(Arena, TracksUsedAndFree) {
  GlobalMemoryArena arena(1024);
  EXPECT_EQ(arena.capacity(), 1024u);
  arena.allocate(100);
  EXPECT_EQ(arena.used(), 100u);
  EXPECT_EQ(arena.free_bytes(), 924u);
  arena.release(100);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, ThrowsOnExhaustion) {
  GlobalMemoryArena arena(100);
  arena.allocate(60);
  EXPECT_THROW(arena.allocate(41), DeviceOutOfMemory);
  // The failed allocation must not change accounting.
  EXPECT_EQ(arena.used(), 60u);
  arena.allocate(40);  // exactly fits
  EXPECT_EQ(arena.free_bytes(), 0u);
}

TEST(Arena, ExceptionCarriesSizes) {
  GlobalMemoryArena arena(100);
  try {
    arena.allocate(200);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested, 200u);
    EXPECT_EQ(e.free_bytes, 100u);
  }
}

TEST(Arena, PeakTracksHighWatermark) {
  GlobalMemoryArena arena(1000);
  arena.allocate(400);
  arena.allocate(300);
  arena.release(500);
  arena.allocate(100);
  EXPECT_EQ(arena.peak_used(), 700u);
}

TEST(Arena, FromDeviceSpec) {
  GlobalMemoryArena arena(DeviceSpec::titan_x_pascal());
  EXPECT_EQ(arena.capacity(), 12ULL * 1024 * 1024 * 1024);
}

TEST(DeviceBuffer, ChargesAndReleasesArena) {
  GlobalMemoryArena arena(4096);
  {
    DeviceBuffer<double> buf(arena, 256);  // 2048 bytes
    EXPECT_EQ(arena.used(), 2048u);
    EXPECT_EQ(buf.size(), 256u);
    buf[0] = 1.5;
    EXPECT_DOUBLE_EQ(buf[0], 1.5);
  }
  EXPECT_EQ(arena.used(), 0u);
}

TEST(DeviceBuffer, ThrowsWhenTooLarge) {
  GlobalMemoryArena arena(100);
  EXPECT_THROW(DeviceBuffer<double>(arena, 100), DeviceOutOfMemory);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  GlobalMemoryArena arena(4096);
  DeviceBuffer<int> a(arena, 10);
  a[3] = 7;
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(b[3], 7);
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(arena.used(), 10 * sizeof(int));
  b.reset();
  EXPECT_EQ(arena.used(), 0u);
}

TEST(DeviceBuffer, MoveAssignReleasesOld) {
  GlobalMemoryArena arena(4096);
  DeviceBuffer<int> a(arena, 10);
  DeviceBuffer<int> b(arena, 20);
  EXPECT_EQ(arena.used(), 30 * sizeof(int));
  b = std::move(a);
  EXPECT_EQ(arena.used(), 10 * sizeof(int));
  EXPECT_EQ(b.size(), 10u);
}

TEST(DeviceSpec, TinyDeviceHasRequestedCapacity) {
  const auto tiny = DeviceSpec::tiny(12345);
  EXPECT_EQ(tiny.global_mem_bytes, 12345u);
  // Other resources keep the Pascal model.
  EXPECT_EQ(tiny.sm_count, 28);
}

}  // namespace
}  // namespace sj::gpu
