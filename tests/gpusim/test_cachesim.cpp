#include "gpusim/cachesim.hpp"

#include <gtest/gtest.h>

namespace sj::gpu {
namespace {

TEST(CacheSim, FirstAccessMissesThenHits) {
  CacheSim c(1024, 64, 2);
  EXPECT_FALSE(c.access(0, 8));
  EXPECT_TRUE(c.access(0, 8));
  EXPECT_TRUE(c.access(56, 8));  // same 64-byte line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheSim, StraddlingAccessTouchesTwoLines) {
  CacheSim c(1024, 64, 2);
  EXPECT_FALSE(c.access(60, 8));  // lines 0 and 1, both cold
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_TRUE(c.access(60, 8));
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // 2 sets, 2 ways, 64-byte lines: capacity = 256 bytes.
  CacheSim c(256, 64, 2);
  // Lines 0, 2, 4 all map to set 0 (even line numbers).
  c.access(0 * 64, 1);   // miss, set 0 way 0
  c.access(2 * 64, 1);   // miss, set 0 way 1
  c.access(0 * 64, 1);   // hit (line 0 now MRU)
  c.access(4 * 64, 1);   // miss, evicts line 2 (LRU)
  EXPECT_TRUE(c.access(0 * 64, 1));    // still resident
  EXPECT_FALSE(c.access(2 * 64, 1));   // was evicted
}

TEST(CacheSim, HitRate) {
  CacheSim c(4096, 64, 4);
  c.access(0, 4);
  c.access(0, 4);
  c.access(0, 4);
  c.access(0, 4);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.75);
  c.reset_counters();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.0);
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim c(1024, 64, 2);  // 16 lines
  // Cycle through 64 distinct lines twice: with LRU and round-robin
  // access, every access misses.
  for (int pass = 0; pass < 2; ++pass) {
    for (int line = 0; line < 64; ++line) {
      c.access(static_cast<std::uint64_t>(line) * 64, 1);
    }
  }
  EXPECT_EQ(c.misses(), 128u);
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheSim, WorkingSetSmallerThanCacheStaysResident) {
  CacheSim c(4096, 64, 4);  // 64 lines
  for (int pass = 0; pass < 10; ++pass) {
    for (int line = 0; line < 8; ++line) {
      c.access(static_cast<std::uint64_t>(line) * 64, 1);
    }
  }
  EXPECT_EQ(c.misses(), 8u);       // compulsory only
  EXPECT_EQ(c.hits(), 8u * 9);     // everything else hits
}

TEST(CacheSim, GeometryFromDeviceSpec) {
  const auto spec = DeviceSpec::titan_x_pascal();
  CacheSim c(spec);
  EXPECT_EQ(c.line_bytes(), spec.l1_line_bytes);
}

TEST(CacheSim, RejectsInvalidGeometry) {
  EXPECT_THROW(CacheSim(0, 64, 4), std::invalid_argument);
  EXPECT_THROW(CacheSim(1024, 0, 4), std::invalid_argument);
  EXPECT_THROW(CacheSim(1024, 64, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sj::gpu
