#include "gpusim/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace sj::gpu {
namespace {

TEST(Stream, ExecutesEnqueuedWork) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::atomic<int> x{0};
  s.enqueue([&] { x = 42; });
  s.synchronize();
  EXPECT_EQ(x.load(), 42);
}

TEST(Stream, FifoOrderWithinStream) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, MemcpyAsyncCopiesAndAccounts) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::vector<double> src(1000, 3.14);
  std::vector<double> dst(1000, 0.0);
  s.memcpy_async(dst.data(), src.data(), 1000 * sizeof(double));
  s.synchronize();
  EXPECT_DOUBLE_EQ(dst[999], 3.14);
  EXPECT_EQ(s.bytes_copied(), 1000 * sizeof(double));
  // Modelled PCIe time: bytes / (12 GB/s).
  EXPECT_NEAR(s.modeled_copy_seconds(), 8000.0 / 12e9, 1e-12);
}

TEST(Stream, SynchronizeIsIdempotent) {
  Stream s(DeviceSpec::titan_x_pascal());
  s.synchronize();
  s.enqueue([] {});
  s.synchronize();
  s.synchronize();
}

TEST(Stream, MultipleStreamsRunIndependently) {
  Stream a(DeviceSpec::titan_x_pascal());
  Stream b(DeviceSpec::titan_x_pascal());
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    a.enqueue([&] { count.fetch_add(1); });
    b.enqueue([&] { count.fetch_add(1); });
  }
  a.synchronize();
  b.synchronize();
  EXPECT_EQ(count.load(), 100);
}

TEST(Event, SignalsAfterRecordedWorkCompletes) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::atomic<int> x{0};
  s.enqueue([&] { x = 7; });
  Event ev;
  ev.record(s);
  ev.wait();
  EXPECT_EQ(x.load(), 7);
  EXPECT_TRUE(ev.query());
}

TEST(Event, NeverRecordedIsImmediatelyReady) {
  Event ev;
  EXPECT_TRUE(ev.query());
  ev.wait();  // must not block
}

TEST(Event, DoesNotWaitForLaterWork) {
  // The event marks a POINT in the FIFO: waiting on it must not require
  // work enqueued after the record to have run (unlike synchronize()).
  Stream s(DeviceSpec::titan_x_pascal());
  std::atomic<bool> release{false};
  std::atomic<int> after{0};
  Event ev;
  s.enqueue([] {});
  ev.record(s);
  s.enqueue([&] {
    while (!release.load()) std::this_thread::yield();
    after = 1;
  });
  ev.wait();  // completes while the later job still spins
  EXPECT_TRUE(ev.query());
  release = true;
  s.synchronize();
  EXPECT_EQ(after.load(), 1);
}

TEST(Event, RerecordReplacesCapturePoint) {
  Stream s(DeviceSpec::titan_x_pascal());
  Event ev;
  ev.record(s);
  ev.wait();
  std::atomic<int> x{0};
  s.enqueue([&] { x = 3; });
  ev.record(s);
  ev.wait();
  EXPECT_EQ(x.load(), 3);
}

TEST(Stream, DestructorDrainsGracefully) {
  std::atomic<int> done{0};
  {
    Stream s(DeviceSpec::titan_x_pascal());
    s.enqueue([&] { done = 1; });
    s.synchronize();
  }
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace sj::gpu
