#include "gpusim/stream.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace sj::gpu {
namespace {

TEST(Stream, ExecutesEnqueuedWork) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::atomic<int> x{0};
  s.enqueue([&] { x = 42; });
  s.synchronize();
  EXPECT_EQ(x.load(), 42);
}

TEST(Stream, FifoOrderWithinStream) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Stream, MemcpyAsyncCopiesAndAccounts) {
  Stream s(DeviceSpec::titan_x_pascal());
  std::vector<double> src(1000, 3.14);
  std::vector<double> dst(1000, 0.0);
  s.memcpy_async(dst.data(), src.data(), 1000 * sizeof(double));
  s.synchronize();
  EXPECT_DOUBLE_EQ(dst[999], 3.14);
  EXPECT_EQ(s.bytes_copied(), 1000 * sizeof(double));
  // Modelled PCIe time: bytes / (12 GB/s).
  EXPECT_NEAR(s.modeled_copy_seconds(), 8000.0 / 12e9, 1e-12);
}

TEST(Stream, SynchronizeIsIdempotent) {
  Stream s(DeviceSpec::titan_x_pascal());
  s.synchronize();
  s.enqueue([] {});
  s.synchronize();
  s.synchronize();
}

TEST(Stream, MultipleStreamsRunIndependently) {
  Stream a(DeviceSpec::titan_x_pascal());
  Stream b(DeviceSpec::titan_x_pascal());
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    a.enqueue([&] { count.fetch_add(1); });
    b.enqueue([&] { count.fetch_add(1); });
  }
  a.synchronize();
  b.synchronize();
  EXPECT_EQ(count.load(), 100);
}

TEST(Stream, DestructorDrainsGracefully) {
  std::atomic<int> done{0};
  {
    Stream s(DeviceSpec::titan_x_pascal());
    s.enqueue([&] { done = 1; });
    s.synchronize();
  }
  EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace sj::gpu
