#include "gpusim/kernel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "gpusim/atomic.hpp"

namespace sj::gpu {
namespace {

TEST(LaunchConfig, CoverRoundsUp) {
  auto cfg = LaunchConfig::cover(1000, 256);
  EXPECT_EQ(cfg.grid_dim, 4u);
  EXPECT_EQ(cfg.block_dim, 256);
  cfg = LaunchConfig::cover(1024, 256);
  EXPECT_EQ(cfg.grid_dim, 4u);
  cfg = LaunchConfig::cover(1025, 256);
  EXPECT_EQ(cfg.grid_dim, 5u);
  cfg = LaunchConfig::cover(0, 256);
  EXPECT_EQ(cfg.grid_dim, 0u);
}

TEST(ThreadCtx, GlobalIdMatchesCuda) {
  ThreadCtx ctx{3, 17, 256, 10};
  EXPECT_EQ(ctx.global_id(), 3u * 256 + 17);
}

TEST(Launch, EveryLogicalThreadRunsExactlyOnce) {
  const std::uint64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  auto cfg = LaunchConfig::cover(n, 128);
  const auto stats = launch(cfg, [&](const ThreadCtx& ctx) {
    const auto gid = ctx.global_id();
    if (gid < n) hits[gid].fetch_add(1);
  });
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(stats.threads_run, cfg.grid_dim * 128);
  EXPECT_GE(stats.threads_run, n);
}

TEST(Launch, SerialModeMatchesParallel) {
  const std::uint64_t n = 5000;
  DeviceCounter parallel_sum, serial_sum;
  auto body = [&](DeviceCounter& c) {
    return [&c, n](const ThreadCtx& ctx) {
      if (ctx.global_id() < n) c.fetch_add(ctx.global_id());
    };
  };
  launch(LaunchConfig::cover(n, 64), body(parallel_sum));
  launch(LaunchConfig::cover(n, 64), body(serial_sum), ExecMode::kSerial);
  EXPECT_EQ(parallel_sum.load(), serial_sum.load());
  EXPECT_EQ(serial_sum.load(), n * (n - 1) / 2);
}

TEST(Launch, SerialModeIsDeterministicOrder) {
  std::vector<std::uint64_t> order;
  launch(LaunchConfig::cover(100, 32),
         [&](const ThreadCtx& ctx) { order.push_back(ctx.global_id()); },
         ExecMode::kSerial);
  ASSERT_EQ(order.size(), 128u);  // 4 blocks * 32
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_EQ(order[i], order[i - 1] + 1);
  }
}

TEST(DeviceCounter, FetchAddReturnsOldValue) {
  DeviceCounter c;
  EXPECT_EQ(c.fetch_add(5), 0u);
  EXPECT_EQ(c.fetch_add(3), 5u);
  EXPECT_EQ(c.load(), 8u);
  c.store(100);
  EXPECT_EQ(c.load(), 100u);
}

TEST(DeviceCounter, ConcurrentAddsAreExact) {
  DeviceCounter c;
  launch(LaunchConfig::cover(100000, 256), [&](const ThreadCtx& ctx) {
    if (ctx.global_id() < 100000) c.fetch_add(1);
  });
  EXPECT_EQ(c.load(), 100000u);
}

}  // namespace
}  // namespace sj::gpu
