// Super-EGO option sweeps: the result must be invariant under the base-
// case threshold, thread count, reordering and precision knobs; the
// internal statistics must move the way the algorithm promises.
#include <gtest/gtest.h>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "ego/ego.hpp"

namespace sj::ego {
namespace {

class EgoThreshold : public ::testing::TestWithParam<int> {};

TEST_P(EgoThreshold, ResultInvariantUnderBaseCaseSize) {
  const int threshold = GetParam();
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 55);
  Options opt;
  opt.simple_threshold = threshold;
  auto got = self_join(d, 1.5, opt);
  const auto want = brute::self_join(d, 1.5);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
      << "threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Thresholds, EgoThreshold,
                         ::testing::Values(1, 2, 8, 32, 256, 4096));

class EgoThreads : public ::testing::TestWithParam<int> {};

TEST_P(EgoThreads, ResultInvariantUnderThreadCount) {
  const auto d = datagen::gaussian_mixture(2500, 3, 6, 4.0, 0.0, 100.0, 57);
  Options opt;
  opt.threads = GetParam();
  auto got = self_join(d, 3.0, opt);
  const auto want = brute::self_join(d, 3.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

INSTANTIATE_TEST_SUITE_P(Threads, EgoThreads, ::testing::Values(1, 2, 3, 8));

TEST(EgoInternals, SmallerThresholdMeansMorePruningOpportunities) {
  const auto d = datagen::uniform(4000, 2, 0.0, 100.0, 59);
  Options fine;
  fine.simple_threshold = 4;
  Options coarse;
  coarse.simple_threshold = 512;
  const auto f = self_join(d, 0.5, fine);
  const auto c = self_join(d, 0.5, coarse);
  // Finer recursion prunes more sequence pairs but runs more simple
  // joins; both must report consistent work.
  EXPECT_GT(f.stats.sequence_pairs_pruned, c.stats.sequence_pairs_pruned);
  EXPECT_GT(f.stats.simple_joins, 0u);
  // Coarser base cases compute more distances (less pruning inside).
  EXPECT_GE(c.stats.distance_calcs, f.stats.distance_calcs);
}

TEST(EgoInternals, DimReorderPicksSelectiveDimensionAndNeverAddsWork) {
  // Dimension 0 spans only a couple of eps-cells (weak selectivity);
  // dimension 1 is uniform over the full domain (strong). Reordering
  // must put dimension 1 first; with the segment bounding-box prune this
  // can only reduce (never increase) refinement work, and on this shape
  // it also prunes more sequence pairs.
  Dataset d(2);
  const auto base = datagen::uniform(4000, 2, 0.0, 100.0, 61);
  for (std::size_t i = 0; i < base.size(); ++i) {
    double p[2] = {base.coord(i, 0) * 0.012, base.coord(i, 1)};
    d.push_back(p);
  }
  Options on;
  on.reorder_dims = true;
  Options off;
  off.reorder_dims = false;
  const auto with = self_join(d, 0.5, on);
  const auto without = self_join(d, 0.5, off);
  EXPECT_TRUE(ResultSet::equal_normalized(ResultSet(with.pairs),
                                          ResultSet(without.pairs)));
  EXPECT_LE(with.stats.distance_calcs, without.stats.distance_calcs);
  EXPECT_EQ(with.stats.dim_order[0], 1);  // the selective dimension first
}

TEST(EgoFloat, FloatAndDoubleAgreeAwayFromBoundary) {
  // With eps chosen so no pair sits within float-rounding distance of
  // the threshold, 32-bit and 64-bit runs must produce identical sets.
  Dataset d(2);
  for (int x = 0; x < 40; ++x) {
    for (int y = 0; y < 40; ++y) {
      double p[2] = {x * 3.0, y * 3.0};
      d.push_back(p);
    }
  }
  Options f;
  f.use_float = true;
  auto a = self_join(d, 3.5, f);  // neighbours at 3.0, next at 4.24
  auto b = self_join(d, 3.5);
  EXPECT_TRUE(ResultSet::equal_normalized(a.pairs, b.pairs));
}

}  // namespace
}  // namespace sj::ego
