#include "ego/ego.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"

namespace sj::ego {
namespace {

class EgoEquality
    : public ::testing::TestWithParam<std::tuple<int, std::string>> {};

TEST_P(EgoEquality, MatchesBruteForce) {
  const auto [dim, kind] = GetParam();
  const double eps = std::pow(2.2, dim - 2);
  Dataset d;
  if (kind == "uniform") {
    d = datagen::uniform(1200, dim, 0.0, 100.0, 300 + dim);
  } else {
    d = datagen::gaussian_mixture(1200, dim, 6, 4.0, 0.0, 100.0, 300 + dim);
  }
  auto got = self_join(d, eps);
  const auto want = brute::self_join(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
      << "dim=" << dim << " kind=" << kind;
}

INSTANTIATE_TEST_SUITE_P(
    DimsKinds, EgoEquality,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values("uniform", "clustered")),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param);
    });

TEST(Ego, MultithreadedMatchesSerial) {
  const auto d = datagen::uniform(3000, 3, 0.0, 100.0, 31);
  Options serial;
  serial.threads = 1;
  Options parallel;
  parallel.threads = 4;
  auto a = self_join(d, 3.0, serial);
  auto b = self_join(d, 3.0, parallel);
  EXPECT_TRUE(ResultSet::equal_normalized(a.pairs, b.pairs));
}

TEST(Ego, ReorderingDoesNotChangeResult) {
  // Skewed per-dimension selectivity: one tight dimension, one wide.
  Dataset d(2);
  const auto base = datagen::uniform(2000, 2, 0.0, 100.0, 33);
  for (std::size_t i = 0; i < base.size(); ++i) {
    double p[2] = {base.coord(i, 0), base.coord(i, 1) * 0.01};
    d.push_back(p);
  }
  Options with_reorder;
  with_reorder.reorder_dims = true;
  Options without;
  without.reorder_dims = false;
  auto a = self_join(d, 1.0, with_reorder);
  auto b = self_join(d, 1.0, without);
  EXPECT_TRUE(ResultSet::equal_normalized(a.pairs, b.pairs));
}

TEST(Ego, ReorderingPutsSelectiveDimensionFirst) {
  // Dimension 1 is compressed into [0, 1] while dimension 0 spans
  // [0, 100]: dimension 0 is far more selective at eps = 1 and must be
  // ordered first.
  Dataset d(2);
  const auto base = datagen::uniform(5000, 2, 0.0, 100.0, 35);
  for (std::size_t i = 0; i < base.size(); ++i) {
    double p[2] = {base.coord(i, 0), base.coord(i, 1) * 0.01};
    d.push_back(p);
  }
  Options opt;
  opt.reorder_dims = true;
  const auto r = self_join(d, 1.0, opt);
  EXPECT_EQ(r.stats.dim_order[0], 0);
  EXPECT_EQ(r.stats.dim_order[1], 1);
}

TEST(Ego, FloatModeCountsCloseToDouble) {
  // 32-bit mode (the paper's Super-EGO configuration) may differ at the
  // eps boundary by rounding; with a boundary-safe dataset the pair count
  // must match the double run.
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 37);
  Options f;
  f.use_float = true;
  Options dd;
  dd.use_float = false;
  const auto a = self_join(d, 2.0, f);
  const auto b = self_join(d, 2.0, dd);
  const double rel =
      std::abs(static_cast<double>(a.pairs.size()) -
               static_cast<double>(b.pairs.size())) /
      static_cast<double>(b.pairs.size());
  EXPECT_LT(rel, 1e-3);
}

TEST(Ego, PruningActuallyFires) {
  const auto d = datagen::uniform(5000, 2, 0.0, 100.0, 39);
  const auto r = self_join(d, 1.0);
  EXPECT_GT(r.stats.sequence_pairs_pruned, 0u);
  // Pruning must beat brute force by a wide margin on spread-out data.
  EXPECT_LT(r.stats.distance_calcs, d.size() * d.size() / 10);
}

TEST(Ego, StatsTimingsPopulated) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 41);
  const auto r = self_join(d, 1.0);
  EXPECT_GT(r.stats.sort_seconds, 0.0);
  EXPECT_GT(r.stats.join_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.stats.total_seconds(),
                   r.stats.sort_seconds + r.stats.join_seconds);
}

TEST(Ego, EmptyAndSingleton) {
  EXPECT_TRUE(self_join(Dataset(2), 1.0).pairs.empty());
  Dataset one(2, {3.0, 4.0});
  auto r = self_join(one, 1.0);
  r.pairs.normalize();
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs.pairs()[0], (Pair{0, 0}));
}

TEST(Ego, IdenticalPointsAllPair) {
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  auto r = self_join(d, 0.5);
  r.pairs.normalize();
  EXPECT_EQ(r.pairs.size(), 16u);  // 4 x 4 ordered pairs
}

TEST(Ego, EpsZero) {
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 5.0, 5.0});
  auto r = self_join(d, 0.0);
  r.pairs.normalize();
  EXPECT_EQ(r.pairs.size(), 5u);
}

TEST(Ego, RejectsNegativeEps) {
  EXPECT_THROW(self_join(Dataset(2), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sj::ego
