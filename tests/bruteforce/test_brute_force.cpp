#include "bruteforce/brute_force.hpp"

#include <gtest/gtest.h>

#include "common/datagen.hpp"

namespace sj::brute {
namespace {

TEST(BruteForce, HandVerifiedTinyCase) {
  // Three collinear points at distance 1 apart; eps = 1 links neighbours
  // but not the endpoints.
  Dataset d(1, {0.0, 1.0, 2.0});
  auto r = self_join(d, 1.0);
  r.pairs.normalize();
  // (0,0),(0,1),(1,0),(1,1),(1,2),(2,1),(2,2)
  EXPECT_EQ(r.pairs.size(), 7u);
  EXPECT_TRUE(r.pairs.is_symmetric());
}

TEST(BruteForce, ParallelMatchesSerial) {
  const auto d = datagen::uniform(2000, 3, 0.0, 100.0, 3);
  auto serial = self_join(d, 4.0, 1);
  auto parallel = self_join(d, 4.0, 4);
  EXPECT_TRUE(ResultSet::equal_normalized(serial.pairs, parallel.pairs));
}

TEST(BruteForce, TriangleSweepCountsEveryUnorderedPairOnce) {
  const auto d = datagen::uniform(500, 2, 0.0, 100.0, 5);
  const auto r = self_join(d, 1.0);
  EXPECT_EQ(r.stats.distance_calcs, d.size() * (d.size() - 1) / 2);
}

TEST(BruteForce, SymmetricAndSelfComplete) {
  const auto d = datagen::uniform(800, 2, 0.0, 100.0, 7);
  auto r = self_join(d, 3.0);
  r.pairs.normalize();
  EXPECT_TRUE(r.pairs.is_symmetric());
  const auto counts = r.pairs.counts_per_key(d.size());
  for (auto c : counts) EXPECT_GE(c, 1u);
}

TEST(BruteForce, EmptyDataset) {
  EXPECT_TRUE(self_join(Dataset(3), 1.0).pairs.empty());
}

TEST(BruteForce, RejectsNegativeEps) {
  EXPECT_THROW(self_join(Dataset(2), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sj::brute
