// Cross-implementation integration tests: all five join implementations
// (GPU-SJ, GPU-SJ+UNICOMP, CPU-RTREE, SUPEREGO, brute force CPU/GPU) must
// produce the identical pair set on the same input — the validation the
// paper performs by comparing total neighbour counts, strengthened here
// to exact set equality.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"
#include "core/brute_force_gpu.hpp"
#include "core/self_join.hpp"
#include "ego/ego.hpp"
#include "rtree/rtree_self_join.hpp"

namespace sj {
namespace {

class AllAlgorithms
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(AllAlgorithms, IdenticalPairSets) {
  const auto [kind, dim] = GetParam();
  const double eps = 0.8 + 1.8 * (dim - 2);
  Dataset d;
  if (kind == "uniform") {
    d = datagen::uniform(900, dim, 0.0, 100.0, 40 + dim);
  } else if (kind == "clustered") {
    d = datagen::gaussian_mixture(900, dim, 5, 3.0, 0.0, 100.0, 40 + dim);
  } else {
    d = datagen::exponential_blob(900, dim, 0.1, 40 + dim);
  }

  auto want = brute::self_join(d, eps);
  want.pairs.normalize();

  GpuSelfJoinOptions base;
  base.unicomp = false;
  auto gpu = GpuSelfJoin(base).run(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(gpu.pairs, want.pairs)) << "GPU-SJ";

  GpuSelfJoinOptions uni;
  uni.unicomp = true;
  auto gpu_uni = GpuSelfJoin(uni).run(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(gpu_uni.pairs, want.pairs))
      << "GPU-SJ+UNICOMP";

  auto rt = rtree::self_join(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(rt.pairs, want.pairs))
      << "CPU-RTREE";

  auto eg = ego::self_join(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(eg.pairs, want.pairs))
      << "SUPEREGO";

  auto bf = gpu_brute_force(d, eps, /*materialize=*/true);
  EXPECT_TRUE(ResultSet::equal_normalized(bf.pairs, want.pairs))
      << "GPU brute force";
}

INSTANTIATE_TEST_SUITE_P(
    KindsDims, AllAlgorithms,
    ::testing::Combine(::testing::Values("uniform", "clustered",
                                         "exponential"),
                       ::testing::Values(2, 3, 4, 6)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_dim" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AllAlgorithmsNamed, TableOneDatasetsAgreeAtSmallScale) {
  // Scaled-down versions of representative Table I datasets.
  for (const std::string name :
       {"Syn2D2M", "Syn4D2M", "SW2DA", "SW3DA", "SDSS2DA"}) {
    const auto& info = datasets::info(name);
    const auto d = datasets::make(name, 0.08);
    const double eps = datasets::scale_eps(info, d.size(), info.bench_eps[1]);

    auto want = brute::self_join(d, eps);
    auto gpu = GpuSelfJoin().run(d, eps);
    auto eg = ego::self_join(d, eps);
    EXPECT_TRUE(ResultSet::equal_normalized(gpu.pairs, want.pairs)) << name;
    EXPECT_TRUE(ResultSet::equal_normalized(eg.pairs, want.pairs)) << name;
  }
}

TEST(AllAlgorithmsNamed, NeighborCountValidationLikePaper) {
  // The paper "validated consistency between our implementations by
  // comparing the total number of neighbors within eps".
  const auto d = datasets::make("SDSS2DA", 0.1);
  const double eps = 0.4;
  const auto gpu = GpuSelfJoin().run(d, eps);
  const auto rt = rtree::self_join(d, eps);
  const auto eg = ego::self_join(d, eps);
  auto g = gpu.pairs, r = rt.pairs, e = eg.pairs;
  g.normalize();
  r.normalize();
  e.normalize();
  EXPECT_EQ(g.size(), r.size());
  EXPECT_EQ(g.size(), e.size());
}

}  // namespace
}  // namespace sj
