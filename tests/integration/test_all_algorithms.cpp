// Cross-implementation integration tests: every backend registered in
// the BackendRegistry (GPU-SJ, GPU-SJ+UNICOMP, CPU-RTREE, SUPEREGO, brute
// force CPU/GPU) must produce the identical pair set on the same input —
// the validation the paper performs by comparing total neighbour counts,
// strengthened here to exact set equality. The sweep enumerates the
// registry, so a newly registered backend is covered automatically.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"

namespace sj {
namespace {

using api::BackendRegistry;

class AllAlgorithms
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(AllAlgorithms, IdenticalPairSets) {
  const auto [kind, dim] = GetParam();
  const double eps = 0.8 + 1.8 * (dim - 2);
  Dataset d;
  if (kind == "uniform") {
    d = datagen::uniform(900, dim, 0.0, 100.0, 40 + dim);
  } else if (kind == "clustered") {
    d = datagen::gaussian_mixture(900, dim, 5, 3.0, 0.0, 100.0, 40 + dim);
  } else {
    d = datagen::exponential_blob(900, dim, 0.1, 40 + dim);
  }

  const auto& registry = BackendRegistry::instance();
  auto want = registry.at("brute").run(d, eps);
  want.pairs.normalize();

  for (const auto& name : registry.names()) {
    if (name == "brute") continue;
    auto got = registry.at(name).run(d, eps);
    EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs)) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsDims, AllAlgorithms,
    ::testing::Combine(::testing::Values("uniform", "clustered",
                                         "exponential"),
                       ::testing::Values(2, 3, 4, 6)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_dim" +
             std::to_string(std::get<1>(info.param));
    });

TEST(AllAlgorithmsNamed, TableOneDatasetsAgreeAtSmallScale) {
  // Scaled-down versions of representative Table I datasets.
  const auto& registry = BackendRegistry::instance();
  for (const std::string name :
       {"Syn2D2M", "Syn4D2M", "SW2DA", "SW3DA", "SDSS2DA"}) {
    const auto& info = datasets::info(name);
    const auto d = datasets::make(name, 0.08);
    const double eps = datasets::scale_eps(info, d.size(), info.bench_eps[1]);

    auto want = registry.at("brute").run(d, eps);
    auto gpu = registry.at("gpu_unicomp").run(d, eps);
    auto eg = registry.at("ego").run(d, eps);
    EXPECT_TRUE(ResultSet::equal_normalized(gpu.pairs, want.pairs)) << name;
    EXPECT_TRUE(ResultSet::equal_normalized(eg.pairs, want.pairs)) << name;
  }
}

TEST(AllAlgorithmsNamed, NeighborCountValidationLikePaper) {
  // The paper "validated consistency between our implementations by
  // comparing the total number of neighbors within eps".
  const auto& registry = BackendRegistry::instance();
  const auto d = datasets::make("SDSS2DA", 0.1);
  const double eps = 0.4;
  auto g = registry.at("gpu_unicomp").run(d, eps).pairs;
  auto r = registry.at("rtree").run(d, eps).pairs;
  auto e = registry.at("ego").run(d, eps).pairs;
  g.normalize();
  r.normalize();
  e.normalize();
  EXPECT_EQ(g.size(), r.size());
  EXPECT_EQ(g.size(), e.size());
}

}  // namespace
}  // namespace sj
