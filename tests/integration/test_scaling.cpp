// Empirical validation of the DESIGN.md §5 scaling contract: rescaling
// eps by (N_big / N_small)^(1/dim) keeps the average neighbour count of
// uniform synthetic data approximately invariant — the property that
// keeps the scaled-down benches in the paper's operating regime.
#include <gtest/gtest.h>

#include <cmath>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"

namespace sj {
namespace {

class EpsScaling : public ::testing::TestWithParam<int> {};

TEST_P(EpsScaling, AvgNeighborsInvariantUnderSizeRescale) {
  const int dim = GetParam();
  const std::size_t n_small = 4000;
  const std::size_t n_big = 16000;
  // Choose eps so the small run has a meaningful neighbour count.
  const double eps_small = 2.2 * std::pow(4.0, (dim - 2) / 2.0);
  const double eps_big =
      eps_small * std::pow(static_cast<double>(n_small) /
                               static_cast<double>(n_big),
                           1.0 / dim);

  const auto small = datagen::uniform(n_small, dim, 0.0, 100.0, 1000 + dim);
  const auto big = datagen::uniform(n_big, dim, 0.0, 100.0, 2000 + dim);

  const auto& join = api::BackendRegistry::instance().at("gpu_unicomp");
  const auto rs = join.run(small, eps_small);
  const auto rb = join.run(big, eps_big);

  const double avg_small = rs.pairs.avg_neighbors(n_small) - 1.0;  // drop self
  const double avg_big = rb.pairs.avg_neighbors(n_big) - 1.0;
  ASSERT_GT(avg_small, 0.5) << "test needs a non-trivial neighbour count";
  // Statistical agreement within 15%.
  EXPECT_NEAR(avg_big / avg_small, 1.0, 0.15)
      << "dim=" << dim << " avg_small=" << avg_small
      << " avg_big=" << avg_big;
}

INSTANTIATE_TEST_SUITE_P(Dims, EpsScaling, ::testing::Values(2, 3, 4));

TEST(DatasetScaling, MakeHonorsScaleFactor) {
  const auto full = datasets::make("Syn2D2M", 0.5);
  EXPECT_EQ(full.size(), 10000u);
  const auto tiny = datasets::make("SW3DA", 0.05);
  EXPECT_EQ(tiny.size(), 1000u);
  EXPECT_EQ(tiny.dim(), 3);
}

TEST(DatasetScaling, ScaledEpsKeepsRegimeAcrossScales) {
  // Running the same dataset family at two scales with scaled_eps must
  // produce similar avg-neighbour counts.
  const auto& info = datasets::info("Syn2D2M");
  const auto small = datasets::make("Syn2D2M", 0.25);
  const auto big = datasets::make("Syn2D2M", 1.0);
  const double eps_small = datasets::scale_eps(info, small.size(),
                                               info.bench_eps[2]);
  const double eps_big = info.bench_eps[2];

  const auto& join = api::BackendRegistry::instance().at("gpu_unicomp");
  const double avg_small =
      join.run(small, eps_small).pairs.avg_neighbors(small.size());
  const double avg_big =
      join.run(big, eps_big).pairs.avg_neighbors(big.size());
  EXPECT_NEAR(avg_big / avg_small, 1.0, 0.15);
}

}  // namespace
}  // namespace sj
