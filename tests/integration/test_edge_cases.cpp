// Edge cases exercised uniformly across every registered backend.
#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "common/datagen.hpp"

namespace sj {
namespace {

void expect_all_equal(const Dataset& d, double eps) {
  const auto& registry = api::BackendRegistry::instance();
  auto want = registry.at("brute").run(d, eps);
  want.pairs.normalize();
  for (const auto& name : registry.names()) {
    if (name == "brute") continue;
    auto got = registry.at(name).run(d, eps);
    EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
        << name << " eps=" << eps;
  }
}

TEST(EdgeCases, TwoPointsExactlyEpsApart) {
  // Boundary inclusion: dist == eps must be reported (<=, not <).
  const auto& gpu = api::BackendRegistry::instance().at("gpu_unicomp");
  Dataset d(2, {0.0, 0.0, 3.0, 4.0});  // distance exactly 5
  auto r = gpu.run(d, 5.0);
  r.pairs.normalize();
  EXPECT_EQ(r.pairs.size(), 4u);
  auto r2 = gpu.run(d, 4.999999);
  r2.pairs.normalize();
  EXPECT_EQ(r2.pairs.size(), 2u);
  expect_all_equal(d, 5.0);
}

TEST(EdgeCases, PointsOnCellBoundaries) {
  // Integer coordinates with eps = 1: points sit exactly on grid lines.
  Dataset d(2);
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) {
      double p[2] = {static_cast<double>(x), static_cast<double>(y)};
      d.push_back(p);
    }
  }
  expect_all_equal(d, 1.0);
}

TEST(EdgeCases, NegativeCoordinates) {
  const auto base = datagen::uniform(800, 3, -50.0, 50.0, 3);
  expect_all_equal(base, 3.0);
}

TEST(EdgeCases, AllIdenticalPoints) {
  Dataset d(2);
  for (int i = 0; i < 40; ++i) {
    double p[2] = {7.0, -3.0};
    d.push_back(p);
  }
  expect_all_equal(d, 0.5);
  auto r = api::BackendRegistry::instance().at("gpu_unicomp").run(d, 0.5);
  r.pairs.normalize();
  EXPECT_EQ(r.pairs.size(), 40u * 40u);
}

TEST(EdgeCases, OneDimensionalData) {
  const auto d = datagen::uniform(1000, 1, 0.0, 100.0, 5);
  expect_all_equal(d, 0.3);
}

TEST(EdgeCases, EpsZeroAcrossAlgorithms) {
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0});
  expect_all_equal(d, 0.0);
}

TEST(EdgeCases, EpsLargerThanDomain) {
  const auto d = datagen::uniform(150, 2, 0.0, 10.0, 7);
  expect_all_equal(d, 100.0);
}

TEST(EdgeCases, VerySmallEps) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 9);
  expect_all_equal(d, 1e-6);
}

TEST(EdgeCases, ExtremeAspectRatio) {
  // One dimension a thousand times wider than the other.
  Dataset d(2);
  const auto base = datagen::uniform(800, 2, 0.0, 1.0, 11);
  for (std::size_t i = 0; i < base.size(); ++i) {
    double p[2] = {base.coord(i, 0) * 1000.0, base.coord(i, 1)};
    d.push_back(p);
  }
  expect_all_equal(d, 2.0);
}

TEST(EdgeCases, DegenerateDimension) {
  // A dimension in which every point has the same value.
  Dataset d(3);
  const auto base = datagen::uniform(600, 2, 0.0, 100.0, 13);
  for (std::size_t i = 0; i < base.size(); ++i) {
    double p[3] = {base.coord(i, 0), 42.0, base.coord(i, 1)};
    d.push_back(p);
  }
  expect_all_equal(d, 2.5);
}

TEST(EdgeCases, TwoPoints) {
  Dataset d(4, {1.0, 2.0, 3.0, 4.0, 1.1, 2.1, 3.1, 4.1});
  expect_all_equal(d, 0.5);
  expect_all_equal(d, 0.1);
}

}  // namespace
}  // namespace sj
