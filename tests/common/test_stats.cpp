#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/table.hpp"

#include <sstream>

namespace sj {
namespace {

TEST(Stats, MeanOfKnownValues) {
  EXPECT_DOUBLE_EQ(stats::mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Stats, GeomeanOfKnownValues) {
  EXPECT_NEAR(stats::geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(stats::geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats::geomean({}), 0.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(stats::min({3.0, 1.0, 2.0}), 1.0);
  EXPECT_DOUBLE_EQ(stats::max({3.0, 1.0, 2.0}), 3.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(stats::median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(stats::median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(TextTable, PrintsAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace sj
