#include "common/datagen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

namespace sj {
namespace {

TEST(DataGen, UniformSizeDimAndBounds) {
  const auto d = datagen::uniform(1000, 3, 0.0, 100.0, 1);
  EXPECT_EQ(d.size(), 1000u);
  EXPECT_EQ(d.dim(), 3);
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(lo[j], 0.0);
    EXPECT_LE(hi[j], 100.0);
  }
}

TEST(DataGen, UniformIsDeterministic) {
  const auto a = datagen::uniform(500, 2, 0.0, 1.0, 42);
  const auto b = datagen::uniform(500, 2, 0.0, 1.0, 42);
  EXPECT_EQ(a, b);
}

TEST(DataGen, UniformSeedChangesData) {
  const auto a = datagen::uniform(500, 2, 0.0, 1.0, 1);
  const auto b = datagen::uniform(500, 2, 0.0, 1.0, 2);
  EXPECT_FALSE(a == b);
}

TEST(DataGen, UniformCoversDomain) {
  const auto d = datagen::uniform(20000, 2, 0.0, 100.0, 3);
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  EXPECT_LT(lo[0], 2.0);   // some point near the low edge
  EXPECT_GT(hi[0], 98.0);  // some point near the high edge
}

TEST(DataGen, GaussianMixtureBoundsAndDeterminism) {
  const auto a = datagen::gaussian_mixture(2000, 4, 5, 2.0, 0.0, 100.0, 9);
  EXPECT_EQ(a.size(), 2000u);
  EXPECT_EQ(a.dim(), 4);
  const auto lo = a.min_bound();
  const auto hi = a.max_bound();
  for (int j = 0; j < 4; ++j) {
    EXPECT_GE(lo[j], 0.0);
    EXPECT_LE(hi[j], 100.0);
  }
  EXPECT_EQ(a, datagen::gaussian_mixture(2000, 4, 5, 2.0, 0.0, 100.0, 9));
}

TEST(DataGen, GaussianMixtureRejectsBadK) {
  EXPECT_THROW(datagen::gaussian_mixture(10, 2, 0, 1.0, 0.0, 1.0, 1),
               std::invalid_argument);
}

TEST(DataGen, SwLikeRejectsBadDim) {
  EXPECT_THROW(datagen::sw_like(100, 4, 1), std::invalid_argument);
  EXPECT_THROW(datagen::sw_like(100, 1, 1), std::invalid_argument);
}

TEST(DataGen, SwLikeShapes) {
  const auto d2 = datagen::sw_like(3000, 2, 11);
  const auto d3 = datagen::sw_like(3000, 3, 11);
  EXPECT_EQ(d2.dim(), 2);
  EXPECT_EQ(d3.dim(), 3);
  EXPECT_EQ(d2.size(), 3000u);
  EXPECT_EQ(d3.size(), 3000u);
}

TEST(DataGen, SwLikeIsSkewed) {
  // Station-structured data must be far more concentrated than uniform:
  // compare the fraction of points in the densest 1x1 bin.
  const auto sw = datagen::sw_like(20000, 2, 5);
  const auto uni = datagen::uniform(20000, 2, 0.0, 100.0, 5);
  auto densest_bin_count = [](const Dataset& d) {
    std::map<std::pair<int, int>, int> bins;
    int best = 0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      auto& c = bins[{static_cast<int>(d.coord(i, 0)),
                      static_cast<int>(d.coord(i, 1))}];
      best = std::max(best, ++c);
    }
    return best;
  };
  EXPECT_GT(densest_bin_count(sw), 4 * densest_bin_count(uni));
}

TEST(DataGen, SdssLikeShapeAndDeterminism) {
  const auto a = datagen::sdss_like(5000, 21);
  EXPECT_EQ(a.dim(), 2);
  EXPECT_EQ(a.size(), 5000u);
  EXPECT_EQ(a, datagen::sdss_like(5000, 21));
}

TEST(DataGen, ExponentialBlobWithinDomain) {
  const auto d = datagen::exponential_blob(5000, 3, 0.1, 13);
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  for (int j = 0; j < 3; ++j) {
    EXPECT_GE(lo[j], 0.0);
    EXPECT_LE(hi[j], 100.0);
  }
}

TEST(DataGen, IpppShapeBoundsAndDeterminism) {
  const auto a = datagen::ippp(2000, 2, 32.0, 7);
  const auto b = datagen::ippp(2000, 2, 32.0, 7);
  EXPECT_EQ(a.size(), 2000u);
  EXPECT_EQ(a.dim(), 2);
  EXPECT_EQ(a, b);
  const auto lo = a.min_bound();
  const auto hi = a.max_bound();
  for (int j = 0; j < 2; ++j) {
    EXPECT_GE(lo[j], 0.0);
    EXPECT_LE(hi[j], 100.0);
  }
}

TEST(DataGen, IpppIsStronglySkewed) {
  // Bin into a 10x10 grid: the densest cell of a contrast-32 IPPP must
  // hold far more than the uniform expectation (n/100 per cell).
  const auto d = datagen::ippp(20000, 2, 32.0, 9);
  std::map<std::pair<int, int>, int> cells;
  int peak = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    const double* p = d.pt(i);
    const int cx = std::min(9, static_cast<int>(p[0] / 10.0));
    const int cy = std::min(9, static_cast<int>(p[1] / 10.0));
    peak = std::max(peak, ++cells[{cx, cy}]);
  }
  EXPECT_GT(peak, 3 * 200);  // >3x the uniform per-cell expectation
}

TEST(DataGen, IpppRejectsBadArguments) {
  EXPECT_THROW(datagen::ippp(10, 0, 8.0, 1), std::invalid_argument);
  EXPECT_THROW(datagen::ippp(10, 2, 0.5, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sj
