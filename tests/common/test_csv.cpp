#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace sj {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("sj_csv_test_" + std::to_string(::getpid()) + ".csv");
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(CsvTest, RoundTrip) {
  csv::Table t({"dataset", "eps", "seconds"});
  t.add_row({"Syn2D2M", "0.5", "1.25"});
  t.add_row({"SW2DA", "0.3", "0.75"});
  t.write(path_.string());

  csv::Table r;
  ASSERT_TRUE(csv::Table::read(path_.string(), r));
  ASSERT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cell(0, "dataset"), "Syn2D2M");
  EXPECT_DOUBLE_EQ(r.num(1, "eps"), 0.3);
  EXPECT_DOUBLE_EQ(r.num(0, "seconds"), 1.25);
}

TEST_F(CsvTest, MissingFileReturnsFalse) {
  csv::Table r;
  EXPECT_FALSE(csv::Table::read("/nonexistent/path/x.csv", r));
}

TEST_F(CsvTest, WrongColumnCountThrows) {
  csv::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST_F(CsvTest, UnknownColumnThrows) {
  csv::Table t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.cell(0, "b"), std::out_of_range);
}

TEST_F(CsvTest, CreatesParentDirectories) {
  const auto nested = std::filesystem::temp_directory_path() /
                      "sj_csv_nested" / "deep" / "t.csv";
  csv::Table t({"x"});
  t.add_row({"1"});
  t.write(nested.string());
  EXPECT_TRUE(std::filesystem::exists(nested));
  std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                              "sj_csv_nested");
}

TEST_F(CsvTest, ReadNamesFileAndLineOnRaggedRow) {
  // A torn or truncated results file must be diagnosable: the error
  // names the file and the 1-based line of the short row.
  std::ofstream out(path_);
  out << "a,b\n1,2\n3\n";
  out.close();
  csv::Table r;
  try {
    (void)csv::Table::read(path_.string(), r);
    FAIL() << "expected rejection of ragged row";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path_.string() + ":3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 2"), std::string::npos) << msg;
  }
}

TEST_F(CsvTest, NumRejectsCorruptCellNamingRowAndColumn) {
  csv::Table t({"v"});
  t.add_row({"1.5abc"});  // numeric prefix — stod would accept silently
  try {
    (void)t.num(0, "v");
    FAIL() << "expected rejection of corrupt cell";
  } catch (const std::exception& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("row 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'v'"), std::string::npos) << msg;
  }
}

TEST(CsvFmt, CompactFormatting) {
  EXPECT_EQ(csv::fmt(0.3), "0.3");
  EXPECT_EQ(csv::fmt(2.0), "2");
}

}  // namespace
}  // namespace sj
