// Deadline / CancelToken / ExecControl semantics (common/cancel.hpp):
// the primitives the service layer and the pipeline checkpoints build on.
#include "common/cancel.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace sj::exec {
namespace {

TEST(Deadline, DefaultIsInfinite) {
  Deadline d;
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), std::numeric_limits<double>::infinity());
}

TEST(Deadline, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::after_ms(0.0);
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const Deadline d = Deadline::after_ms(60'000.0);
  EXPECT_TRUE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(CancelToken, IsMonotonic) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  t.cancel();  // idempotent
  EXPECT_TRUE(t.cancelled());
}

TEST(ExecControl, UnarmedCheckIsANoOp) {
  ExecControl ctl;
  EXPECT_FALSE(ctl.armed());
  EXPECT_NO_THROW(ctl.check("anywhere"));
}

TEST(ExecControl, ExpiredDeadlineThrowsTypedWithCheckpointName) {
  ExecControl ctl;
  ctl.deadline = Deadline::after_ms(0.0);
  EXPECT_TRUE(ctl.armed());
  try {
    ctl.check("pre-launch");
    FAIL() << "expected DeadlineExceeded";
  } catch (const DeadlineExceeded& e) {
    EXPECT_NE(std::string(e.what()).find("pre-launch"), std::string::npos);
  }
}

TEST(ExecControl, CancelledTokenThrowsTyped) {
  CancelToken token;
  token.cancel();
  ExecControl ctl;
  ctl.cancel = &token;
  EXPECT_TRUE(ctl.armed());
  EXPECT_THROW(ctl.check("queue pop"), Cancelled);
}

TEST(ExecControl, CancellationWinsOverExpiry) {
  // Both tripped: the client's explicit cancel is reported, not the
  // deadline — the client asked first.
  CancelToken token;
  token.cancel();
  ExecControl ctl;
  ctl.cancel = &token;
  ctl.deadline = Deadline::after_ms(0.0);
  EXPECT_THROW(ctl.check("entry"), Cancelled);
}

TEST(ExecErrors, AreFaultErrorsButNotRetryableOnes) {
  // The service errors must flow through the pipeline's failure path
  // (FaultError) WITHOUT triggering retry (Transient), failover
  // (DeviceLost) or batch splitting (ResourceExhausted).
  // Inspect through the erased base pointer, the way the pipeline's
  // error handler actually sees these exceptions.
  const DeadlineExceeded dl("x");
  const Cancelled cc("x");
  const Overloaded ov("x");
  for (const fault::FaultError* e :
       {static_cast<const fault::FaultError*>(&dl),
        static_cast<const fault::FaultError*>(&cc),
        static_cast<const fault::FaultError*>(&ov)}) {
    EXPECT_EQ(dynamic_cast<const fault::TransientDeviceError*>(e), nullptr);
    EXPECT_EQ(dynamic_cast<const fault::DeviceLost*>(e), nullptr);
    EXPECT_EQ(dynamic_cast<const fault::ResourceExhausted*>(e), nullptr);
  }
}

}  // namespace
}  // namespace sj::exec
