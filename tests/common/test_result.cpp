#include "common/result.hpp"

#include <gtest/gtest.h>

namespace sj {
namespace {

TEST(ResultSet, NormalizeSortsAndDeduplicates) {
  ResultSet rs;
  rs.add(2, 1);
  rs.add(0, 3);
  rs.add(2, 1);
  rs.add(0, 0);
  rs.normalize();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs.pairs()[0], (Pair{0, 0}));
  EXPECT_EQ(rs.pairs()[1], (Pair{0, 3}));
  EXPECT_EQ(rs.pairs()[2], (Pair{2, 1}));
}

TEST(ResultSet, EqualNormalizedIgnoresOrderAndDuplicates) {
  ResultSet a, b;
  a.add(1, 2);
  a.add(0, 0);
  b.add(0, 0);
  b.add(1, 2);
  b.add(1, 2);
  EXPECT_TRUE(ResultSet::equal_normalized(a, b));
  b.add(5, 5);
  EXPECT_FALSE(ResultSet::equal_normalized(a, b));
}

TEST(ResultSet, SymmetryDetection) {
  ResultSet rs;
  rs.add(0, 1);
  rs.add(1, 0);
  rs.add(2, 2);
  rs.normalize();
  EXPECT_TRUE(rs.is_symmetric());
  rs.add(3, 4);
  rs.normalize();
  EXPECT_FALSE(rs.is_symmetric());
}

TEST(ResultSet, CountsPerKey) {
  ResultSet rs;
  rs.add(0, 0);
  rs.add(0, 1);
  rs.add(2, 2);
  const auto counts = rs.counts_per_key(3);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(ResultSet, AvgNeighbors) {
  ResultSet rs;
  rs.add(0, 0);
  rs.add(0, 1);
  rs.add(1, 0);
  rs.add(1, 1);
  EXPECT_DOUBLE_EQ(rs.avg_neighbors(2), 2.0);
  EXPECT_DOUBLE_EQ(rs.avg_neighbors(0), 0.0);
}

TEST(ResultSet, AppendConcatenates) {
  ResultSet a, b;
  a.add(0, 1);
  b.add(2, 3);
  a.append(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(NeighborTable, CsrViewMatchesPairs) {
  ResultSet rs;
  rs.add(1, 0);
  rs.add(0, 0);
  rs.add(0, 1);
  rs.add(2, 2);
  rs.add(1, 1);
  NeighborTable nt(rs, 3);
  EXPECT_EQ(nt.num_points(), 3u);
  ASSERT_EQ(nt.degree(0), 2u);
  EXPECT_EQ(nt.begin(0)[0], 0u);
  EXPECT_EQ(nt.begin(0)[1], 1u);
  ASSERT_EQ(nt.degree(1), 2u);
  EXPECT_EQ(nt.begin(1)[0], 0u);
  EXPECT_EQ(nt.begin(1)[1], 1u);
  ASSERT_EQ(nt.degree(2), 1u);
  EXPECT_EQ(nt.begin(2)[0], 2u);
  EXPECT_EQ(nt.total_neighbors(), 5u);
}

TEST(NeighborTable, EmptyResult) {
  NeighborTable nt(ResultSet{}, 4);
  EXPECT_EQ(nt.num_points(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(nt.degree(i), 0u);
}

TEST(NeighborTable, DeduplicatesOnBuild) {
  ResultSet rs;
  rs.add(0, 1);
  rs.add(0, 1);
  NeighborTable nt(rs, 2);
  EXPECT_EQ(nt.degree(0), 1u);
}

}  // namespace
}  // namespace sj
