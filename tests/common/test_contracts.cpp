// Contract-layer tests: macro on/off behaviour, the failure-handler
// report format, the runtime-check switch, and — for every layer with a
// deep validator — a deliberately corrupted structure that must make the
// validator abort. The validators are always compiled, so these death
// tests fire in release builds too (the corrupted-input tests enable the
// runtime subset first); the SJ_VALIDATE CI leg additionally exercises
// the compiled-in macro branch.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "api/backend.hpp"
#include "common/contracts.hpp"
#include "common/datagen.hpp"
#include "common/dataset.hpp"
#include "core/batch_pipeline.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "core/shard_plan.hpp"
#include "core/validate.hpp"

namespace sj {
namespace {

/// Force the runtime-check subset on for one scope (death-test children
/// inherit the parent's flag state, so tests set it inside the statement
/// under test as well).
struct RuntimeChecksGuard {
  RuntimeChecksGuard() { contracts::set_runtime_checks(true); }
  ~RuntimeChecksGuard() { contracts::set_runtime_checks(false); }
};

// ------------------------------------------------------------- the macros

TEST(Contracts, CompiledStateMatchesMacroFlag) {
  EXPECT_EQ(contracts::kCompiledIn, SJ_CONTRACTS_ENABLED == 1);
}

TEST(Contracts, MacrosEvaluateOperandsOnlyWhenCompiledIn) {
  int calls = 0;
  auto observed = [&] {
    ++calls;
    return true;
  };
  SJ_EXPECT(observed(), "expect operand");
  SJ_ENSURE(observed(), "ensure operand");
  SJ_INVARIANT(observed(), "invariant operand");
#if SJ_CONTRACTS_ENABLED
  EXPECT_EQ(calls, 3);
#else
  // Compiled out: the condition must NOT be evaluated — contracts cost
  // nothing in release builds.
  EXPECT_EQ(calls, 0);
#endif
}

#if SJ_CONTRACTS_ENABLED
TEST(ContractsDeath, FailedExpectAborts) {
  EXPECT_DEATH(SJ_EXPECT(1 == 2, "a failing precondition"),
               "SJ_EXPECT violation: 1 == 2");
}
#else
TEST(Contracts, FailedConditionIsIgnoredWhenCompiledOut) {
  SJ_EXPECT(1 == 2, "never evaluated");
  SJ_ENSURE(false, "never evaluated");
  SJ_INVARIANT(false, "never evaluated");
}
#endif

TEST(ContractsDeath, FailureReportNamesExpressionSiteAndContext) {
  EXPECT_DEATH(
      contracts::fail("SJ_EXPECT", "a == b", "some_file.cpp", 42,
                      "context message"),
      "SJ_EXPECT violation: a == b\n  at some_file.cpp:42\n"
      "  context: context message");
}

TEST(Contracts, RuntimeSwitchTogglesActive) {
  if (!contracts::kCompiledIn) {
    EXPECT_FALSE(contracts::active());
  }
  {
    RuntimeChecksGuard guard;
    EXPECT_TRUE(contracts::active());
    EXPECT_TRUE(contracts::runtime_checks());
  }
  EXPECT_FALSE(contracts::runtime_checks());
}

TEST(Contracts, ValidationTimeAccumulates) {
  contracts::reset_validation_seconds();
  EXPECT_EQ(contracts::validation_seconds(), 0.0);
  const Dataset d = datagen::uniform(256, 2, 0.0, 100.0, /*seed=*/7);
  const GridIndex index(d, 0.1);
  validate::grid_index(index, d, "timer accumulation");
  EXPECT_GT(contracts::validation_seconds(), 0.0);
  contracts::reset_validation_seconds();
  EXPECT_EQ(contracts::validation_seconds(), 0.0);
}

// ------------------------------------------------- grid layer validators

TEST(Contracts, GridIndexValidatorAcceptsRealIndex) {
  const Dataset d = datagen::sdss_like(500, /*seed=*/11);
  const GridIndex index(d, 0.2);
  validate::grid_index(index, d, "well-formed index");
}

/// A minimal hand-built cell-major view: one non-empty cell owning all
/// four slots of a 1-d layout.
GridDeviceView tiny_cell_major_view(const std::vector<double>& points,
                                    const std::vector<std::uint64_t>& B,
                                    const std::vector<GridIndex::CellRange>& G,
                                    const std::vector<std::uint32_t>& orig) {
  GridDeviceView v;
  v.points = points.data();
  v.n = points.size();
  v.dim = 1;
  v.B = B.data();
  v.b_size = B.size();
  v.G = G.data();
  v.orig = orig.data();
  v.cell_major = true;
  return v;
}

TEST(ContractsDeath, DeviceGridValidatorRejectsBrokenOrigPermutation) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4};
  const std::vector<std::uint64_t> B{5};
  const std::vector<GridIndex::CellRange> G{{0, 3}};
  std::vector<std::uint32_t> orig{0, 1, 2, 3};
  GridDeviceView view = tiny_cell_major_view(points, B, G, orig);
  validate::device_grid(view, nullptr, "intact view");  // sanity: passes
  orig[3] = 2;  // slot 3 duplicates original id 2: no longer a bijection
  EXPECT_DEATH(validate::device_grid(view, nullptr, "corrupted orig map"),
               "SJ_CHECK violation.*corrupted orig map");
}

TEST(ContractsDeath, DeviceGridValidatorRejectsGapInCellRanges) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4};
  const std::vector<std::uint64_t> B{5, 9};
  // Cell ranges must tile [0, 4); {0,1} then {3,3} leaves slot 2 orphaned.
  const std::vector<GridIndex::CellRange> G{{0, 1}, {3, 3}};
  const std::vector<std::uint32_t> orig{0, 1, 2, 3};
  const GridDeviceView view = tiny_cell_major_view(points, B, G, orig);
  EXPECT_DEATH(validate::device_grid(view, nullptr, "cell range gap"),
               "SJ_CHECK violation.*cell range gap");
}

TEST(ContractsDeath, DeviceGridValidatorRejectsSoaPlaneDrift) {
  const std::vector<double> points{0.1, 0.2, 0.3, 0.4};
  const std::vector<std::uint64_t> B{5};
  const std::vector<GridIndex::CellRange> G{{0, 3}};
  const std::vector<std::uint32_t> orig{0, 1, 2, 3};
  GridDeviceView view = tiny_cell_major_view(points, B, G, orig);
  std::vector<double> plane{0.1, 0.2, 0.35, 0.4};  // slot 2 disagrees
  view.coord[0] = plane.data();
  EXPECT_DEATH(validate::device_grid(view, nullptr, "soa plane drift"),
               "SJ_CHECK violation.*soa plane drift");
}

// -------------------------------------------------- adjacency validators

TEST(Contracts, CellAdjacencyValidatorAcceptsWellFormedCsr) {
  CellAdjacencyHost adj;
  adj.ranges = {{0, 2, 0}, {2, 4, 1}};
  adj.offsets = {0, 2};
  adj.weights = {8};
  validate::cell_adjacency(adj, 1, 4, "well-formed cell adjacency");
}

TEST(ContractsDeath, CellAdjacencyValidatorRejectsOutOfBoundsRange) {
  CellAdjacencyHost adj;
  adj.ranges = {{0, 5, 0}};  // slot space has only 4 slots
  adj.offsets = {0, 1};
  adj.weights = {5};
  EXPECT_DEATH(
      validate::cell_adjacency(adj, 1, 4, "range past the slot space"),
      "SJ_CHECK violation.*range past the slot space");
}

TEST(ContractsDeath, CellAdjacencyValidatorRejectsOverlappingRanges) {
  CellAdjacencyHost adj;
  adj.ranges = {{0, 3, 0}, {2, 4, 0}};  // [0,3) and [2,4) overlap
  adj.offsets = {0, 2};
  adj.weights = {7};
  EXPECT_DEATH(
      validate::cell_adjacency(adj, 1, 4, "overlapping candidate ranges"),
      "SJ_CHECK violation.*overlapping candidate ranges");
}

TEST(ContractsDeath, CellAdjacencyValidatorRejectsNonMonotoneOffsets) {
  CellAdjacencyHost adj;
  adj.ranges = {{0, 2, 0}};
  adj.offsets = {0, 1, 0};  // CSR must be non-decreasing and end at size
  adj.weights = {2, 0};
  EXPECT_DEATH(validate::cell_adjacency(adj, 2, 4, "broken csr offsets"),
               "SJ_CHECK violation.*broken csr offsets");
}

TEST(ContractsDeath, JoinAdjacencyValidatorRejectsDuplicateQueryOrder) {
  JoinAdjacencyHost adj;
  adj.query_order = {0, 0};  // query 1 lost, query 0 doubled
  adj.group_offsets = {0, 2};
  adj.ranges = {{0, 2, 0}};
  adj.offsets = {0, 1};
  adj.weights = {4};
  EXPECT_DEATH(
      validate::join_adjacency(adj, 2, 4, "query order not a permutation"),
      "SJ_CHECK violation.*query order not a permutation");
}

TEST(ContractsDeath, JoinAdjacencyValidatorRejectsEmptyGroup) {
  JoinAdjacencyHost adj;
  adj.query_order = {0, 1};
  adj.group_offsets = {0, 2, 2};  // second group holds no queries
  adj.ranges = {{0, 2, 0}, {2, 3, 0}};
  adj.offsets = {0, 1, 2};
  adj.weights = {4, 1};
  EXPECT_DEATH(validate::join_adjacency(adj, 2, 4, "empty query group"),
               "SJ_CHECK violation.*empty query group");
}

// ------------------------------------------------- shard plan validators

TEST(Contracts, ShardBoundariesValidatorAcceptsRealPlan) {
  const std::vector<std::uint64_t> weights{4, 1, 1, 9, 2, 2};
  const std::vector<std::uint32_t> bounds = plan_shard_boundaries(weights, 3);
  validate::shard_boundaries(bounds, weights.size(), "planned boundaries");
}

TEST(ContractsDeath, ShardBoundariesValidatorRejectsEmptyShard) {
  const std::vector<std::uint32_t> bounds{0, 2, 2, 4};  // shard 1 owns nothing
  EXPECT_DEATH(validate::shard_boundaries(bounds, 4, "empty shard"),
               "SJ_CHECK violation.*empty shard");
}

TEST(ContractsDeath, ShardBoundariesValidatorRejectsUncoveredUnits) {
  const std::vector<std::uint32_t> bounds{0, 2, 3};  // unit 3 unowned
  EXPECT_DEATH(validate::shard_boundaries(bounds, 4, "uncovered units"),
               "SJ_CHECK violation.*uncovered units");
}

/// A two-unit slice over slots [0, 2) with one halo interval [2, 4).
ShardSlice tiny_slice() {
  const std::vector<CandidateRange> ranges{{0, 2, 0}, {1, 4, 0}};
  const std::vector<std::uint64_t> offsets{0, 1, 2};
  const std::vector<std::uint64_t> weights{3, 5};
  return make_shard_slice(ranges, offsets, weights, 0, 2, 0, 2);
}

TEST(Contracts, ShardSliceValidatorAcceptsRealSlice) {
  const ShardSlice slice = tiny_slice();
  validate::shard_slice(slice, 4, "well-formed slice");
}

TEST(ContractsDeath, ShardSliceValidatorRejectsBrokenHaloNumbering) {
  ShardSlice slice = tiny_slice();
  ASSERT_FALSE(slice.halo.empty());
  slice.halo[0].local_begin += 1;  // halo no longer follows the owned span
  EXPECT_DEATH(validate::shard_slice(slice, 4, "broken halo numbering"),
               "SJ_CHECK violation.*broken halo numbering");
}

TEST(ContractsDeath, ShardSliceValidatorRejectsHaloInsideOwnedSpan) {
  ShardSlice slice = tiny_slice();
  ASSERT_FALSE(slice.halo.empty());
  slice.halo[0].begin = 1;  // [1, 4) now overlaps the owned span [0, 2)
  EXPECT_DEATH(validate::shard_slice(slice, 4, "halo inside owned span"),
               "SJ_CHECK violation.*halo inside owned span");
}

TEST(ContractsDeath, ShardSliceValidatorRejectsRangePastLocalSlots) {
  ShardSlice slice = tiny_slice();
  ASSERT_FALSE(slice.ranges.empty());
  slice.ranges.back().end = slice.local_points() + 1;
  EXPECT_DEATH(validate::shard_slice(slice, 4, "range past local slots"),
               "SJ_CHECK violation.*range past local slots");
}

// --------------------------------------------------- pipeline validators

TEST(ContractsDeath, SegmentPoolRejectsDoubleRelease) {
  EXPECT_DEATH(
      {
        contracts::set_runtime_checks(true);
        SegmentPool pool;
        SegmentPool::Buffer b = pool.acquire(8);
        Pair* raw = b.data.get();
        pool.release(std::move(b));
        SegmentPool::Buffer dup;
        dup.data.reset(raw);  // a second owner of the same allocation
        dup.capacity = 8;
        pool.release(std::move(dup));  // aborts before the double free
      },
      "SJ_CHECK violation.*buffer released twice");
}

// ---------------------------------------------------- api finalize layer

TEST(ContractsDeath, FinalizeOutcomeRejectsKeyOutsideKeySpace) {
  EXPECT_DEATH(
      {
        contracts::set_runtime_checks(true);
        api::JoinOutcome out;
        ResultSet pairs;
        pairs.add(/*key=*/7, /*value=*/0);  // key space is [0, 4)
        api::finalize_outcome(out, std::move(pairs), api::RunConfig{}, 4);
      },
      "SJ_CHECK violation.*pair key must index the key space");
}

TEST(Contracts, FinalizeOutcomeHistogramCrossCheckPasses) {
  RuntimeChecksGuard guard;
  api::JoinOutcome out;
  ResultSet pairs;
  pairs.add(0, 1);
  pairs.add(1, 0);
  pairs.add(1, 1);
  api::RunConfig config;
  config.mode = ResultMode::kHistogram;
  api::finalize_outcome(out, std::move(pairs), config, 2);
  ASSERT_EQ(out.histogram.size(), 2u);
  EXPECT_EQ(out.histogram[0], 1u);
  EXPECT_EQ(out.histogram[1], 2u);
  EXPECT_EQ(out.total_pairs, 3u);
}

}  // namespace
}  // namespace sj
