#include "common/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace sj {
namespace {

TEST(NamedDatasets, TableOneHasSixteenEntries) {
  EXPECT_EQ(datasets::all().size(), 16u);
}

TEST(NamedDatasets, PaperSizesMatchTableOne) {
  EXPECT_EQ(datasets::info("Syn4D2M").paper_n, 2'000'000u);
  EXPECT_EQ(datasets::info("Syn6D10M").paper_n, 10'000'000u);
  EXPECT_EQ(datasets::info("SW2DA").paper_n, 1'864'620u);
  EXPECT_EQ(datasets::info("SW3DB").paper_n, 5'159'737u);
  EXPECT_EQ(datasets::info("SDSS2DB").paper_n, 15'228'633u);
}

TEST(NamedDatasets, DimsMatchTableOne) {
  EXPECT_EQ(datasets::info("Syn2D2M").dim, 2);
  EXPECT_EQ(datasets::info("Syn5D10M").dim, 5);
  EXPECT_EQ(datasets::info("SW3DA").dim, 3);
  EXPECT_EQ(datasets::info("SDSS2DA").dim, 2);
}

TEST(NamedDatasets, UnknownNameThrows) {
  EXPECT_THROW(datasets::info("Syn9D1B"), std::out_of_range);
}

TEST(NamedDatasets, MakeProducesDescribedShape) {
  for (const auto& info : datasets::all()) {
    const auto d = datasets::make(info.name, 0.1);  // small for speed
    EXPECT_EQ(d.dim(), info.dim) << info.name;
    const auto expected = static_cast<std::size_t>(
        std::llround(info.default_n * 0.1));
    EXPECT_EQ(d.size(), expected) << info.name;
    EXPECT_EQ(d.name(), info.name);
  }
}

TEST(NamedDatasets, SyntheticEpsRescalePreservesNeighborRegime) {
  // eps_bench = eps_paper * (N_paper / N_default)^(1/dim): the expected
  // neighbour count N * V(eps) / Vol is invariant under this rescale.
  const auto& info = datasets::info("Syn2D2M");
  const double ratio = static_cast<double>(info.paper_n) /
                       static_cast<double>(info.default_n);
  for (std::size_t i = 0; i < info.paper_eps.size(); ++i) {
    const double expected = info.paper_eps[i] * std::pow(ratio, 0.5);
    EXPECT_NEAR(info.bench_eps[i], expected, 1e-9);
  }
}

TEST(NamedDatasets, ScaleEpsIdentityAtDefaultSize) {
  const auto& info = datasets::info("Syn3D2M");
  EXPECT_DOUBLE_EQ(datasets::scale_eps(info, info.default_n, 1.5), 1.5);
}

TEST(NamedDatasets, ScaleEpsGrowsWhenShrinking) {
  const auto& info = datasets::info("Syn2D2M");
  // Half the points -> sqrt(2) larger eps in 2-D.
  const double e = datasets::scale_eps(info, info.default_n / 2, 1.0);
  EXPECT_NEAR(e, std::sqrt(2.0), 1e-9);
}

TEST(NamedDatasets, ScaledEpsVectorMatchesElementwise) {
  const auto& info = datasets::info("Syn5D2M");
  const auto v = datasets::scaled_eps(info, info.default_n / 4);
  ASSERT_EQ(v.size(), info.bench_eps.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], datasets::scale_eps(info, info.default_n / 4,
                                          info.bench_eps[i]),
                1e-12);
  }
}

TEST(NamedDatasets, EveryDatasetHasFiveEpsValues) {
  for (const auto& info : datasets::all()) {
    EXPECT_EQ(info.paper_eps.size(), 5u) << info.name;
    EXPECT_EQ(info.bench_eps.size(), 5u) << info.name;
  }
}

// --- SJ_DATASET_CACHE: generated datasets are persisted and reused,
// keyed by name / resolved size / seed.

/// Scoped SJ_DATASET_CACHE override (tests in this binary run serially).
class DatasetCache : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "sj_dataset_cache_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    ::setenv("SJ_DATASET_CACHE", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("SJ_DATASET_CACHE");
    std::filesystem::remove_all(dir_);
  }
  std::string dir_;
};

TEST_F(DatasetCache, SecondMakeIsServedFromDiskAndIdentical) {
  const auto first = datasets::make("Syn2D2M", 0.05);
  // Exactly one cache file appears, keyed by name/size/seed.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(e.path().filename().string().find("Syn2D2M-n1000-seed101-v"),
              std::string::npos);
    ++files;
  }
  ASSERT_EQ(files, 1u);
  const auto second = datasets::make("Syn2D2M", 0.05);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second.name(), "Syn2D2M");
}

TEST_F(DatasetCache, DifferentScalesGetDifferentEntries) {
  datasets::make("Syn3D2M", 0.05);
  datasets::make("Syn3D2M", 0.1);
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 2u);
}

TEST_F(DatasetCache, CorruptCacheEntryFallsBackToRegeneration) {
  const auto want = datasets::make("SW2DA", 0.05);
  // Truncate the cached file; the next make() must regenerate, not throw
  // or return garbage.
  std::string path;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    path = e.path().string();
  }
  ASSERT_FALSE(path.empty());
  std::ofstream(path, std::ios::trunc) << "junk";
  const auto got = datasets::make("SW2DA", 0.05);
  EXPECT_EQ(got, want);
}

TEST_F(DatasetCache, UnwritableCacheDirectoryIsNonFatal) {
  ::setenv("SJ_DATASET_CACHE", "/proc/definitely/not/writable", 1);
  const auto d = datasets::make("Syn2D2M", 0.05);
  EXPECT_EQ(d.size(), 1000u);
}

}  // namespace
}  // namespace sj
