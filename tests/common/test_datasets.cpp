#include "common/datasets.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace sj {
namespace {

TEST(NamedDatasets, TableOneHasSixteenEntries) {
  EXPECT_EQ(datasets::all().size(), 16u);
}

TEST(NamedDatasets, PaperSizesMatchTableOne) {
  EXPECT_EQ(datasets::info("Syn4D2M").paper_n, 2'000'000u);
  EXPECT_EQ(datasets::info("Syn6D10M").paper_n, 10'000'000u);
  EXPECT_EQ(datasets::info("SW2DA").paper_n, 1'864'620u);
  EXPECT_EQ(datasets::info("SW3DB").paper_n, 5'159'737u);
  EXPECT_EQ(datasets::info("SDSS2DB").paper_n, 15'228'633u);
}

TEST(NamedDatasets, DimsMatchTableOne) {
  EXPECT_EQ(datasets::info("Syn2D2M").dim, 2);
  EXPECT_EQ(datasets::info("Syn5D10M").dim, 5);
  EXPECT_EQ(datasets::info("SW3DA").dim, 3);
  EXPECT_EQ(datasets::info("SDSS2DA").dim, 2);
}

TEST(NamedDatasets, UnknownNameThrows) {
  EXPECT_THROW(datasets::info("Syn9D1B"), std::out_of_range);
}

TEST(NamedDatasets, MakeProducesDescribedShape) {
  for (const auto& info : datasets::all()) {
    const auto d = datasets::make(info.name, 0.1);  // small for speed
    EXPECT_EQ(d.dim(), info.dim) << info.name;
    const auto expected = static_cast<std::size_t>(
        std::llround(info.default_n * 0.1));
    EXPECT_EQ(d.size(), expected) << info.name;
    EXPECT_EQ(d.name(), info.name);
  }
}

TEST(NamedDatasets, SyntheticEpsRescalePreservesNeighborRegime) {
  // eps_bench = eps_paper * (N_paper / N_default)^(1/dim): the expected
  // neighbour count N * V(eps) / Vol is invariant under this rescale.
  const auto& info = datasets::info("Syn2D2M");
  const double ratio = static_cast<double>(info.paper_n) /
                       static_cast<double>(info.default_n);
  for (std::size_t i = 0; i < info.paper_eps.size(); ++i) {
    const double expected = info.paper_eps[i] * std::pow(ratio, 0.5);
    EXPECT_NEAR(info.bench_eps[i], expected, 1e-9);
  }
}

TEST(NamedDatasets, ScaleEpsIdentityAtDefaultSize) {
  const auto& info = datasets::info("Syn3D2M");
  EXPECT_DOUBLE_EQ(datasets::scale_eps(info, info.default_n, 1.5), 1.5);
}

TEST(NamedDatasets, ScaleEpsGrowsWhenShrinking) {
  const auto& info = datasets::info("Syn2D2M");
  // Half the points -> sqrt(2) larger eps in 2-D.
  const double e = datasets::scale_eps(info, info.default_n / 2, 1.0);
  EXPECT_NEAR(e, std::sqrt(2.0), 1e-9);
}

TEST(NamedDatasets, ScaledEpsVectorMatchesElementwise) {
  const auto& info = datasets::info("Syn5D2M");
  const auto v = datasets::scaled_eps(info, info.default_n / 4);
  ASSERT_EQ(v.size(), info.bench_eps.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i], datasets::scale_eps(info, info.default_n / 4,
                                          info.bench_eps[i]),
                1e-12);
  }
}

TEST(NamedDatasets, EveryDatasetHasFiveEpsValues) {
  for (const auto& info : datasets::all()) {
    EXPECT_EQ(info.paper_eps.size(), 5u) << info.name;
    EXPECT_EQ(info.bench_eps.size(), 5u) << info.name;
  }
}

}  // namespace
}  // namespace sj
