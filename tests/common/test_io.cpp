#include "common/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/datagen.hpp"

namespace sj {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sj_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, BinaryRoundTripIsExact) {
  const auto d = datagen::uniform(1234, 3, -50.0, 50.0, 7);
  io::save_binary(d, path("x.sjd"));
  const auto r = io::load_binary(path("x.sjd"));
  EXPECT_EQ(r.dim(), 3);
  EXPECT_EQ(r.size(), d.size());
  EXPECT_EQ(r.raw(), d.raw());  // bit-exact
  EXPECT_EQ(r.name(), "x");
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.sjd"), std::ios::binary);
  out << "NOPE1234";
  out.close();
  EXPECT_THROW(io::load_binary(path("bad.sjd")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const auto d = datagen::uniform(100, 2, 0.0, 1.0, 3);
  io::save_binary(d, path("t.sjd"));
  // Truncate the file in the middle of the coordinate block.
  std::filesystem::resize_file(path("t.sjd"), 100);
  EXPECT_THROW(io::load_binary(path("t.sjd")), std::runtime_error);
}

TEST_F(IoTest, BinaryMissingFileThrows) {
  EXPECT_THROW(io::load_binary(path("missing.sjd")), std::runtime_error);
}

TEST_F(IoTest, CsvRoundTrip) {
  const auto d = datagen::uniform(500, 4, 0.0, 100.0, 9);
  io::save_csv(d, path("x.csv"));
  const auto r = io::load_csv(path("x.csv"));
  ASSERT_EQ(r.dim(), 4);
  ASSERT_EQ(r.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(r.coord(i, j), d.coord(i, j));
    }
  }
}

TEST_F(IoTest, CsvSkipsHeaderLine) {
  std::ofstream out(path("h.csv"));
  out << "x,y\n1.0,2.0\n3.0,4.0\n";
  out.close();
  const auto d = io::load_csv(path("h.csv"));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.coord(1, 1), 4.0);
}

TEST_F(IoTest, CsvRejectsRaggedRows) {
  std::ofstream out(path("r.csv"));
  out << "1.0,2.0\n3.0\n";
  out.close();
  EXPECT_THROW(io::load_csv(path("r.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsEmptyFile) {
  std::ofstream out(path("e.csv"));
  out.close();
  EXPECT_THROW(io::load_csv(path("e.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsNonNumericBody) {
  std::ofstream out(path("n.csv"));
  out << "1.0,2.0\nfoo,bar\n";
  out.close();
  EXPECT_THROW(io::load_csv(path("n.csv")), std::runtime_error);
}

TEST_F(IoTest, EmptyDatasetBinaryRoundTrip) {
  Dataset d(2);
  io::save_binary(d, path("empty.sjd"));
  const auto r = io::load_binary(path("empty.sjd"));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.dim(), 2);
}

}  // namespace
}  // namespace sj
