#include "common/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "common/datagen.hpp"

namespace sj {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sj_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, BinaryRoundTripIsExact) {
  const auto d = datagen::uniform(1234, 3, -50.0, 50.0, 7);
  io::save_binary(d, path("x.sjd"));
  const auto r = io::load_binary(path("x.sjd"));
  EXPECT_EQ(r.dim(), 3);
  EXPECT_EQ(r.size(), d.size());
  EXPECT_EQ(r.raw(), d.raw());  // bit-exact
  EXPECT_EQ(r.name(), "x");
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.sjd"), std::ios::binary);
  out << "NOPE1234";
  out.close();
  EXPECT_THROW(io::load_binary(path("bad.sjd")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const auto d = datagen::uniform(100, 2, 0.0, 1.0, 3);
  io::save_binary(d, path("t.sjd"));
  // Truncate the file in the middle of the coordinate block.
  std::filesystem::resize_file(path("t.sjd"), 100);
  EXPECT_THROW(io::load_binary(path("t.sjd")), std::runtime_error);
}

TEST_F(IoTest, BinaryMissingFileThrows) {
  EXPECT_THROW(io::load_binary(path("missing.sjd")), std::runtime_error);
}

TEST_F(IoTest, CsvRoundTrip) {
  const auto d = datagen::uniform(500, 4, 0.0, 100.0, 9);
  io::save_csv(d, path("x.csv"));
  const auto r = io::load_csv(path("x.csv"));
  ASSERT_EQ(r.dim(), 4);
  ASSERT_EQ(r.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(r.coord(i, j), d.coord(i, j));
    }
  }
}

TEST_F(IoTest, CsvSkipsHeaderLine) {
  std::ofstream out(path("h.csv"));
  out << "x,y\n1.0,2.0\n3.0,4.0\n";
  out.close();
  const auto d = io::load_csv(path("h.csv"));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.coord(1, 1), 4.0);
}

TEST_F(IoTest, CsvRejectsRaggedRows) {
  std::ofstream out(path("r.csv"));
  out << "1.0,2.0\n3.0\n";
  out.close();
  EXPECT_THROW(io::load_csv(path("r.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsEmptyFile) {
  std::ofstream out(path("e.csv"));
  out.close();
  EXPECT_THROW(io::load_csv(path("e.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsNonNumericBody) {
  std::ofstream out(path("n.csv"));
  out << "1.0,2.0\nfoo,bar\n";
  out.close();
  EXPECT_THROW(io::load_csv(path("n.csv")), std::runtime_error);
}

TEST_F(IoTest, CsvRejectsNaNNamingFileAndLine) {
  // A NaN coordinate silently joins with nothing (NaN <= eps is false);
  // the loader must refuse it and say exactly where it is.
  std::ofstream out(path("nan.csv"));
  out << "1.0,2.0\n3.0,nan\n";
  out.close();
  try {
    (void)io::load_csv(path("nan.csv"));
    FAIL() << "expected rejection of NaN coordinate";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nan.csv:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NaN"), std::string::npos) << msg;
  }
}

TEST_F(IoTest, CsvRejectsInfNamingFileAndLine) {
  std::ofstream out(path("inf.csv"));
  out << "1.0,2.0\n-inf,4.0\n";
  out.close();
  try {
    (void)io::load_csv(path("inf.csv"));
    FAIL() << "expected rejection of Inf coordinate";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("inf.csv:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("Inf"), std::string::npos) << msg;
  }
}

TEST_F(IoTest, CsvNamesLineOfRaggedRow) {
  std::ofstream out(path("rag.csv"));
  out << "1.0,2.0\n3.0,4.0\n5.0\n";
  out.close();
  try {
    (void)io::load_csv(path("rag.csv"));
    FAIL() << "expected rejection of ragged row";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rag.csv:3"), std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, CsvRejectsPartiallyNumericCell) {
  // "1.5abc" has a numeric prefix; std::stod would accept it silently.
  std::ofstream out(path("p.csv"));
  out << "1.0,2.0\n1.5abc,3.0\n";
  out.close();
  EXPECT_THROW((void)io::load_csv(path("p.csv")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsNonFiniteCoordinates) {
  std::vector<double> coords = {1.0, 2.0,
                                std::numeric_limits<double>::quiet_NaN(), 4.0};
  io::save_binary(Dataset(2, std::move(coords)), path("nan.sjd"));
  try {
    (void)io::load_binary(path("nan.sjd"));
    FAIL() << "expected rejection of NaN coordinate";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nan.sjd"), std::string::npos) << msg;
    EXPECT_NE(msg.find("row 1"), std::string::npos) << msg;
  }
}

TEST_F(IoTest, BinaryBoundsHugeClaimedCountByFileSize) {
  // Corrupt the header to claim ~2^61 points: the loader must reject it
  // from the file size BEFORE any allocation (no OOM, no overflow).
  const auto d = datagen::uniform(50, 2, 0.0, 1.0, 5);
  io::save_binary(d, path("huge.sjd"));
  std::fstream f(path("huge.sjd"),
                 std::ios::binary | std::ios::in | std::ios::out);
  const std::uint64_t huge = 1ULL << 61;
  f.seekp(8);  // count sits after 4-byte magic + 4-byte dim
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  try {
    (void)io::load_binary(path("huge.sjd"));
    FAIL() << "expected truncation rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated or corrupt"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, AtomicWriteFilePublishesContentWithoutTempResidue) {
  const std::string p = path("out.txt");
  io::atomic_write_file(p, std::string("hello world"));
  std::ifstream in(p);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello world");
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));

  // Overwrite: the reader never sees a torn file, and the temp is gone.
  io::atomic_write_file(p, std::string("second"));
  std::ifstream in2(p);
  std::string content2((std::istreambuf_iterator<char>(in2)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(content2, "second");
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
}

TEST_F(IoTest, AtomicWriteFileCreatesParentDirectories) {
  const std::string p = (dir_ / "nested" / "deep" / "f.json").string();
  io::atomic_write_file(p, std::string("{}"));
  std::ifstream in(p);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "{}");
}

TEST_F(IoTest, AtomicWriteFileThrowsOnUnwritableTarget) {
  // The target path IS a directory: the temp-file open must fail with a
  // typed error, and no temp residue may remain.
  const std::string p = path("adir");
  std::filesystem::create_directories(p + ".tmp");
  EXPECT_THROW(io::atomic_write_file(p, std::string("x")),
               std::runtime_error);
}

TEST_F(IoTest, EmptyDatasetBinaryRoundTrip) {
  Dataset d(2);
  io::save_binary(d, path("empty.sjd"));
  const auto r = io::load_binary(path("empty.sjd"));
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.dim(), 2);
}

}  // namespace
}  // namespace sj
