// Strict CLI numeric parsing: whole-token consumption, finiteness,
// positivity, and the one-line errors naming the offending flag.
#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace sj::parse {
namespace {

TEST(ParseNumber, AcceptsPlainAndScientific) {
  EXPECT_DOUBLE_EQ(number("--eps", "2.5"), 2.5);
  EXPECT_DOUBLE_EQ(number("--eps", "-0.125"), -0.125);
  EXPECT_DOUBLE_EQ(number("--eps", "1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(number("--eps", "3"), 3.0);
}

TEST(ParseNumber, RejectsTrailingJunk) {
  // std::stod would silently parse "0.5x" as 0.5.
  EXPECT_THROW(number("--eps", "0.5x"), std::invalid_argument);
  EXPECT_THROW(number("--eps", "1.0 "), std::invalid_argument);
  EXPECT_THROW(number("--eps", "1,5"), std::invalid_argument);
}

TEST(ParseNumber, RejectsGarbageEmptyAndWhitespace) {
  EXPECT_THROW(number("--eps", "abc"), std::invalid_argument);
  EXPECT_THROW(number("--eps", ""), std::invalid_argument);
  EXPECT_THROW(number("--eps", " 1.0"), std::invalid_argument);
}

TEST(ParseNumber, RejectsNonFinite) {
  EXPECT_THROW(number("--eps", "inf"), std::invalid_argument);
  EXPECT_THROW(number("--eps", "-inf"), std::invalid_argument);
  EXPECT_THROW(number("--eps", "nan"), std::invalid_argument);
  EXPECT_THROW(number("--eps", "1e999"), std::invalid_argument);
}

TEST(ParseNumber, ErrorNamesTheFlag) {
  try {
    number("--scale", "bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--scale"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  }
}

TEST(ParsePositiveNumber, RejectsZeroAndNegative) {
  EXPECT_DOUBLE_EQ(positive_number("--eps", "0.25"), 0.25);
  EXPECT_THROW(positive_number("--eps", "0"), std::invalid_argument);
  EXPECT_THROW(positive_number("--eps", "0.0"), std::invalid_argument);
  EXPECT_THROW(positive_number("--eps", "-2"), std::invalid_argument);
}

TEST(ParseInteger, AcceptsSignedDecimal) {
  EXPECT_EQ(integer("--threads", "8"), 8);
  EXPECT_EQ(integer("--threads", "-1"), -1);  // "all hardware threads"
  EXPECT_EQ(integer("--threads", "0"), 0);
}

TEST(ParseInteger, RejectsJunkFloatsAndOverflow) {
  EXPECT_THROW(integer("--k", "8x"), std::invalid_argument);
  EXPECT_THROW(integer("--k", "2.5"), std::invalid_argument);
  EXPECT_THROW(integer("--k", ""), std::invalid_argument);
  EXPECT_THROW(integer("--k", "99999999999999999999"), std::invalid_argument);
}

TEST(ParsePositiveInteger, RejectsZeroAndNegative) {
  EXPECT_EQ(positive_integer("--k", "4"), 4);
  EXPECT_THROW(positive_integer("--k", "0"), std::invalid_argument);
  EXPECT_THROW(positive_integer("--k", "-3"), std::invalid_argument);
}

}  // namespace
}  // namespace sj::parse
