// The fault-injection module: spec parsing, the typed error taxonomy,
// deterministic draws, thread arming and the dead-device model.
//
// Everything here runs in BOTH build flavours. The hooks (the
// SJ_FAULT_POINT macros) compile out of a default build, but the
// injector machinery behind them — configure(), detail::check(),
// detail::check_batch() — is always built, so the determinism and
// taxonomy contracts are enforced even where the chaos CI job does not
// run. Only configure_from_text() distinguishes the flavours: it must
// REJECT a fault request in a compiled-out binary (a silently inert
// --faults flag would invalidate a chaos run).
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/arena.hpp"

namespace sj::fault {
namespace {

/// Every test leaves the process-wide injector disabled, whatever path
/// it exits through.
struct FaultGuard {
  FaultGuard() { disable(); }
  ~FaultGuard() { disable(); }
};

// ------------------------------------------------------------- parsing

TEST(FaultSpec, ParsesFullSpec) {
  const Spec s = parse_spec(
      "alloc:0.01,stream:0.005,sync:0.25,sort:1,seed:42,"
      "device:shard2@batch7");
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(Site::kAlloc)], 0.01);
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(Site::kStream)], 0.005);
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(Site::kSync)], 0.25);
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(Site::kSort)], 1.0);
  EXPECT_EQ(s.seed, 42u);
  ASSERT_TRUE(s.has_loss);
  EXPECT_EQ(s.loss.device, 2);
  EXPECT_EQ(s.loss.batch, 7u);
}

TEST(FaultSpec, DefaultsWhenEntriesOmitted) {
  const Spec s = parse_spec("stream:0.5");
  EXPECT_DOUBLE_EQ(s.rate[static_cast<int>(Site::kAlloc)], 0.0);
  EXPECT_EQ(s.seed, 1u);
  EXPECT_FALSE(s.has_loss);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const std::vector<std::string> bad = {
      "",                        // empty
      "alloc",                   // no colon
      "alloc:",                  // no value
      ":0.5",                    // no key
      "bogus:0.5",               // unknown site
      "alloc:2",                 // rate out of range
      "alloc:-0.1",              // rate out of range
      "alloc:x",                 // not a number
      "alloc:0.5zzz",            // trailing characters
      "seed:12x",                // trailing characters
      "device:foo",              // not shard<S>@batch<B>
      "device:shard2",           // missing @batch
      "device:shard64@batch1",   // shard index too large
      "device:shard1@batch0",    // batch ordinal is 1-based
      "alloc:0.1,,sort:0.1",     // empty entry
  };
  for (const auto& spec : bad) {
    EXPECT_THROW(parse_spec(spec), std::invalid_argument) << spec;
  }
  // Errors teach the grammar: the message embeds spec_grammar().
  try {
    parse_spec("bogus:0.5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(spec_grammar()), std::string::npos);
  }
}

TEST(FaultSpec, SiteNamesRoundTrip) {
  EXPECT_STREQ(site_name(Site::kAlloc), "alloc");
  EXPECT_STREQ(site_name(Site::kStream), "stream");
  EXPECT_STREQ(site_name(Site::kSync), "sync");
  EXPECT_STREQ(site_name(Site::kSort), "sort");
}

// ------------------------------------------------------------ taxonomy

TEST(FaultTaxonomy, HierarchyDispatchesAsDocumented) {
  // The retry layer catches FaultError subtypes in order; these is-a
  // relations are what that dispatch rests on.
  EXPECT_THROW(throw TransientDeviceError("t"), FaultError);
  EXPECT_THROW(throw DeviceLost(3, "d"), FaultError);
  EXPECT_THROW(throw ResourceExhausted("r"), FaultError);
  EXPECT_THROW(throw FaultError("f"), std::runtime_error);
  // A DeviceLost names its device so the shard engine can fail over the
  // right one even when the error crossed a pipeline boundary.
  try {
    throw DeviceLost(5, "gone");
  } catch (const DeviceLost& e) {
    EXPECT_EQ(e.device, 5);
  }
}

TEST(FaultTaxonomy, DeviceOutOfMemoryIsResourceExhausted) {
  // The pre-existing OOM type slots under ResourceExhausted, so the
  // pipeline's degrade-by-splitting path handles real arena exhaustion
  // and injected allocation faults identically.
  EXPECT_THROW(throw gpu::DeviceOutOfMemory(1024, 512), ResourceExhausted);
  EXPECT_THROW(throw gpu::DeviceOutOfMemory(1024, 512), FaultError);
  try {
    throw gpu::DeviceOutOfMemory(1024, 512);
  } catch (const gpu::DeviceOutOfMemory& e) {
    EXPECT_EQ(e.requested, 1024u);
    EXPECT_EQ(e.free_bytes, 512u);
  }
}

// --------------------------------------------------------- determinism

TEST(FaultDraws, Hash01IsDeterministicAndInRange) {
  for (std::uint64_t n = 0; n < 200; ++n) {
    const double a = detail::hash01(42, 1, n);
    const double b = detail::hash01(42, 1, n);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0.0);
    EXPECT_LT(a, 1.0);
  }
}

TEST(FaultDraws, SeedAndSiteDecorrelate) {
  int seed_diff = 0;
  int site_diff = 0;
  for (std::uint64_t n = 0; n < 64; ++n) {
    if (detail::hash01(1, 0, n) != detail::hash01(2, 0, n)) ++seed_diff;
    if (detail::hash01(1, 0, n) != detail::hash01(1, 1, n)) ++site_diff;
  }
  EXPECT_GT(seed_diff, 32);
  EXPECT_GT(site_diff, 32);
}

// -------------------------------------------------------------- arming

TEST(FaultArming, DeviceScopesNestAndRestore) {
  EXPECT_FALSE(detail::armed());
  {
    DeviceScope outer(3);
    EXPECT_TRUE(detail::armed());
    EXPECT_EQ(detail::scope_device(), 3);
    {
      DeviceScope inner(-1);
      EXPECT_TRUE(detail::armed());
      EXPECT_EQ(detail::scope_device(), -1);
    }
    EXPECT_EQ(detail::scope_device(), 3);
  }
  EXPECT_FALSE(detail::armed());
}

TEST(FaultArming, UnarmedThreadsNeverFault) {
  FaultGuard guard;
  Spec spec;
  spec.rate[static_cast<int>(Site::kStream)] = 1.0;  // would always fire
  configure(spec);
  EXPECT_NO_THROW(detail::check(Site::kStream));
  EXPECT_EQ(injected_total(), 0u);
}

// ----------------------------------------------------------- injection
//
// These drive detail::check()/check_batch() directly, which works in
// both build flavours: the macros compile out of a default build, but
// the machinery behind them does not.

TEST(FaultInject, RateOneAlwaysFiresWithTypedErrors) {
  FaultGuard guard;
  Spec spec;
  spec.rate[static_cast<int>(Site::kAlloc)] = 1.0;
  spec.rate[static_cast<int>(Site::kSort)] = 1.0;
  configure(spec);
  DeviceScope scope(-1);
  // Allocation faults degrade (ResourceExhausted); the rest retry.
  EXPECT_THROW(detail::check(Site::kAlloc), ResourceExhausted);
  EXPECT_THROW(detail::check(Site::kSort), TransientDeviceError);
  EXPECT_NO_THROW(detail::check(Site::kStream));  // rate 0
  EXPECT_EQ(injected(Site::kAlloc), 1u);
  EXPECT_EQ(injected(Site::kSort), 1u);
  EXPECT_EQ(injected_total(), 2u);
}

TEST(FaultInject, SequenceIsReproducibleAcrossReconfigures) {
  FaultGuard guard;
  const auto fire_pattern = [] {
    Spec spec;
    spec.rate[static_cast<int>(Site::kStream)] = 0.3;
    spec.seed = 99;
    configure(spec);  // resets the per-site hit counters
    DeviceScope scope(0);
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      try {
        detail::check(Site::kStream);
        fired.push_back(false);
      } catch (const TransientDeviceError&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto first = fire_pattern();
  const auto second = fire_pattern();
  EXPECT_EQ(first, second);
  // ~30 of 100 draws should fire; allow a wide deterministic margin.
  const auto fires = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 10u);
  EXPECT_LT(fires, 60u);
}

TEST(FaultInject, TargetedLossKillsDeviceAndStaysDead) {
  FaultGuard guard;
  Spec spec;
  spec.has_loss = true;
  spec.loss.device = 1;
  spec.loss.batch = 3;
  configure(spec);

  // Batches 1 and 2 on device 1 pass; batch 3 kills it.
  EXPECT_NO_THROW(detail::check_batch(1, 1));
  EXPECT_NO_THROW(detail::check_batch(1, 2));
  try {
    detail::check_batch(1, 3);
    FAIL() << "expected DeviceLost";
  } catch (const DeviceLost& e) {
    EXPECT_EQ(e.device, 1);
  }
  EXPECT_EQ(devices_lost(), 1u);

  // Dead is dead: every later operation on device 1 fails, including
  // batches that did not match the plan, while device 0 is untouched.
  EXPECT_THROW(detail::check_batch(1, 1), DeviceLost);
  {
    DeviceScope scope(1);
    EXPECT_THROW(detail::check(Site::kStream), DeviceLost);
  }
  EXPECT_NO_THROW(detail::check_batch(0, 3));

  // reset_devices() revives it (what a fresh sharded run does).
  reset_devices();
  EXPECT_NO_THROW(detail::check_batch(1, 1));
}

TEST(FaultInject, DisableDropsSpecAndCounters) {
  FaultGuard guard;
  Spec spec;
  spec.rate[static_cast<int>(Site::kSync)] = 1.0;
  configure(spec);
  EXPECT_TRUE(enabled());
  {
    DeviceScope scope(-1);
    EXPECT_THROW(detail::check(Site::kSync), TransientDeviceError);
  }
  disable();
  EXPECT_FALSE(enabled());
  EXPECT_EQ(injected_total(), 0u);
  DeviceScope scope(-1);
  EXPECT_NO_THROW(detail::check(Site::kSync));
}

// ------------------------------------------------- build-flavour gate

TEST(FaultConfig, ConfigureFromTextHonoursBuildFlavour) {
  FaultGuard guard;
  if (kFaultsCompiledIn) {
    configure_from_text("stream:0.5,seed:7");
    EXPECT_TRUE(enabled());
  } else {
    // A compiled-out binary must refuse, not silently no-op, and the
    // error must say how to get a chaos-capable build.
    try {
      configure_from_text("stream:0.5,seed:7");
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("-DSJ_FAULTS=ON"),
                std::string::npos);
    }
    EXPECT_FALSE(enabled());
  }
  // A malformed spec is rejected in either flavour (the compiled-out
  // rejection and the parse error are both std::invalid_argument).
  EXPECT_THROW(configure_from_text("bogus:1"), std::invalid_argument);
}

}  // namespace
}  // namespace sj::fault
