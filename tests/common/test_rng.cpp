#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sj {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 8.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, NormalMomentsAreStandard) {
  Xoshiro256 rng(2024);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(77);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(31);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
}

}  // namespace
}  // namespace sj
