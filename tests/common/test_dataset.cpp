#include "common/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/distance.hpp"

namespace sj {
namespace {

TEST(Dataset, EmptyDataset) {
  Dataset d(3);
  EXPECT_EQ(d.size(), 0u);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.dim(), 3);
}

TEST(Dataset, RejectsInvalidDim) {
  EXPECT_THROW(Dataset(0), std::invalid_argument);
  EXPECT_THROW(Dataset(kMaxDims + 1), std::invalid_argument);
}

TEST(Dataset, RejectsMisalignedFlatData) {
  EXPECT_THROW(Dataset(3, std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(Dataset, PushBackAndAccess) {
  Dataset d(2);
  const double p0[] = {1.0, 2.0};
  const double p1[] = {-3.0, 4.5};
  d.push_back(p0);
  d.push_back(p1);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.coord(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d.coord(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(d.coord(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(d.pt(1)[1], 4.5);
}

TEST(Dataset, Bounds) {
  Dataset d(2, {0.0, 5.0, -2.0, 7.0, 3.0, -1.0});
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  EXPECT_DOUBLE_EQ(lo[0], -2.0);
  EXPECT_DOUBLE_EQ(lo[1], -1.0);
  EXPECT_DOUBLE_EQ(hi[0], 3.0);
  EXPECT_DOUBLE_EQ(hi[1], 7.0);
}

TEST(Dataset, ScaleAll) {
  Dataset d(1, {1.0, -2.0});
  d.scale_all(3.0);
  EXPECT_DOUBLE_EQ(d.coord(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.coord(1, 0), -6.0);
}

TEST(Distance, SqDistMatchesByHand) {
  const double a[] = {0.0, 0.0, 0.0};
  const double b[] = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(sq_dist(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(euclidean_dist(a, b, 3), 3.0);
}

TEST(Distance, EarlyExitReturnsAboveThreshold) {
  const double a[] = {0.0, 0.0, 0.0, 0.0};
  const double b[] = {5.0, 5.0, 5.0, 5.0};
  // Threshold 1: exits after the first term; whatever it returns must be
  // strictly greater than the threshold.
  EXPECT_GT(sq_dist_early_exit(a, b, 4, 1.0), 1.0);
}

TEST(Distance, EarlyExitExactWhenWithin) {
  const double a[] = {1.0, 1.0};
  const double b[] = {2.0, 3.0};
  EXPECT_DOUBLE_EQ(sq_dist_early_exit(a, b, 2, 100.0), 5.0);
}

}  // namespace
}  // namespace sj
