#include "rtree/rtree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/datagen.hpp"
#include "rtree/mbr.hpp"

namespace sj::rtree {
namespace {

std::set<std::uint32_t> brute_window(const Dataset& d, const double* c,
                                     double eps) {
  std::set<std::uint32_t> out;
  for (std::size_t i = 0; i < d.size(); ++i) {
    bool in = true;
    for (int j = 0; j < d.dim(); ++j) {
      if (d.coord(i, j) < c[j] - eps || d.coord(i, j) > c[j] + eps) in = false;
    }
    if (in) out.insert(static_cast<std::uint32_t>(i));
  }
  return out;
}

TEST(Mbr, PointMbrAndExpand) {
  const double p[] = {1.0, 2.0};
  MBR m = MBR::of_point(p, 2);
  EXPECT_DOUBLE_EQ(m.area(2), 0.0);
  const double q[] = {3.0, 0.0};
  m.expand(MBR::of_point(q, 2), 2);
  EXPECT_DOUBLE_EQ(m.area(2), 4.0);  // [1,3] x [0,2]
}

TEST(Mbr, EnlargementZeroWhenContained) {
  const double p[] = {0.0, 0.0};
  const double q[] = {4.0, 4.0};
  MBR m = MBR::of_point(p, 2);
  m.expand(MBR::of_point(q, 2), 2);
  const double inner[] = {2.0, 2.0};
  EXPECT_DOUBLE_EQ(m.enlargement(MBR::of_point(inner, 2), 2), 0.0);
  const double outer[] = {6.0, 2.0};
  EXPECT_GT(m.enlargement(MBR::of_point(outer, 2), 2), 0.0);
}

TEST(Mbr, WindowIntersection) {
  const double p[] = {0.0, 0.0};
  const double q[] = {2.0, 2.0};
  MBR m = MBR::of_point(p, 2);
  m.expand(MBR::of_point(q, 2), 2);
  const double near[] = {3.0, 3.0};
  EXPECT_TRUE(m.intersects_window(near, 1.0, 2));
  const double far[] = {4.0, 4.0};
  EXPECT_FALSE(m.intersects_window(far, 1.0, 2));
}

TEST(Mbr, MinSqDist) {
  const double p[] = {0.0, 0.0};
  const double q[] = {2.0, 2.0};
  MBR m = MBR::of_point(p, 2);
  m.expand(MBR::of_point(q, 2), 2);
  const double inside[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(m.min_sq_dist(inside, 2), 0.0);
  const double outside[] = {5.0, 2.0};
  EXPECT_DOUBLE_EQ(m.min_sq_dist(outside, 2), 9.0);
}

TEST(RTree, RejectsBadConfig) {
  EXPECT_THROW(RTree(0), std::invalid_argument);
  Options bad;
  bad.min_entries = 10;
  bad.max_entries = 16;  // min > max/2
  EXPECT_THROW(RTree(2, bad), std::invalid_argument);
}

TEST(RTree, InsertMaintainsInvariants) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 3);
  RTree tree(2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(tree.size(), d.size());
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_GT(tree.height(), 1);
}

TEST(RTree, WindowCandidatesMatchBruteForce) {
  const auto d = datagen::uniform(1500, 3, 0.0, 100.0, 5);
  RTree tree(3);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  for (std::size_t q = 0; q < 50; ++q) {
    std::vector<std::uint32_t> got;
    tree.window_candidates(d.pt(q * 30), 5.0, got);
    EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()),
              brute_window(d, d.pt(q * 30), 5.0));
  }
}

TEST(RTree, RangeQueryRefinesExactly) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 7);
  RTree tree(2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  const double eps = 4.0;
  for (std::size_t q = 0; q < 20; ++q) {
    std::vector<std::uint32_t> got;
    tree.range_query(d, d.pt(q * 50), eps, got);
    std::set<std::uint32_t> want;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (sq_dist(d.pt(q * 50), d.pt(i), 2) <= eps * eps) {
        want.insert(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()), want);
  }
}

TEST(RTree, CandidatesSupersetOfResults) {
  // The search phase must never filter a true neighbour: window
  // candidates >= refined results.
  const auto d = datagen::uniform(800, 2, 0.0, 100.0, 9);
  RTree tree(2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  QueryStats stats;
  std::vector<std::uint32_t> refined;
  tree.range_query(d, d.pt(0), 3.0, refined, &stats);
  EXPECT_GE(stats.candidates, refined.size());
  EXPECT_GT(stats.nodes_visited, 0u);
}

TEST(RTree, StrBulkLoadInvariantsAndQueries) {
  const auto d = datagen::uniform(3000, 2, 0.0, 100.0, 11);
  RTree tree(2);
  tree.bulk_load_str(d);
  EXPECT_EQ(tree.size(), d.size());
  EXPECT_TRUE(tree.check_invariants());
  for (std::size_t q = 0; q < 30; ++q) {
    std::vector<std::uint32_t> got;
    tree.window_candidates(d.pt(q * 100), 3.0, got);
    EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()),
              brute_window(d, d.pt(q * 100), 3.0));
  }
}

TEST(RTree, StrBulkLoadHigherDims) {
  const auto d = datagen::uniform(2000, 5, 0.0, 100.0, 13);
  RTree tree(5);
  tree.bulk_load_str(d);
  EXPECT_TRUE(tree.check_invariants());
  std::vector<std::uint32_t> got;
  tree.window_candidates(d.pt(0), 20.0, got);
  EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()),
            brute_window(d, d.pt(0), 20.0));
}

TEST(RTree, EmptyTreeQueries) {
  RTree tree(2);
  std::vector<std::uint32_t> got;
  const double c[] = {0.0, 0.0};
  tree.window_candidates(c, 10.0, got);
  EXPECT_TRUE(got.empty());
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_EQ(tree.height(), 0);
}

TEST(RTree, DuplicatePointsAllRetrievable) {
  Dataset d(2, {5.0, 5.0, 5.0, 5.0, 5.0, 5.0});
  RTree tree(2);
  for (std::size_t i = 0; i < 3; ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> got;
  tree.window_candidates(d.pt(0), 0.5, got);
  EXPECT_EQ(got.size(), 3u);
}

}  // namespace
}  // namespace sj::rtree
