#include "rtree/rtree_self_join.hpp"

#include <gtest/gtest.h>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"

namespace sj::rtree {
namespace {

class RTreeSelfJoinEquality : public ::testing::TestWithParam<int> {};

TEST_P(RTreeSelfJoinEquality, MatchesBruteForce) {
  const int dim = GetParam();
  const double eps = 1.0 + 2.0 * (dim - 2);
  const auto d = datagen::uniform(1000, dim, 0.0, 100.0, 100 + dim);
  auto got = self_join(d, eps);
  const auto want = brute::self_join(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
      << "dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeSelfJoinEquality,
                         ::testing::Values(2, 3, 4, 5, 6));

TEST(RTreeSelfJoin, AllBuildModesAgree) {
  const auto d = datagen::uniform(1500, 2, 0.0, 100.0, 19);
  auto binned = self_join(d, 2.0, BuildMode::kBinnedInsert);
  auto str = self_join(d, 2.0, BuildMode::kStrBulkLoad);
  auto raw = self_join(d, 2.0, BuildMode::kRawInsert);
  EXPECT_TRUE(ResultSet::equal_normalized(binned.pairs, str.pairs));
  EXPECT_TRUE(ResultSet::equal_normalized(binned.pairs, raw.pairs));
}

TEST(RTreeSelfJoin, BinnedOrderSortsByUnitBins) {
  Dataset d(2, {5.7, 0.2,   // bin (5, 0)
                0.1, 0.9,   // bin (0, 0)
                0.5, 3.2,   // bin (0, 3)
                2.9, 0.0}); // bin (2, 0)
  const auto order = binned_insertion_order(d);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);  // (0,0)
  EXPECT_EQ(order[1], 2u);  // (0,3)
  EXPECT_EQ(order[2], 3u);  // (2,0)
  EXPECT_EQ(order[3], 0u);  // (5,0)
}

TEST(RTreeSelfJoin, StatsPopulated) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 21);
  const auto r = self_join(d, 2.0);
  EXPECT_GT(r.stats.build_seconds, 0.0);
  EXPECT_GT(r.stats.query_seconds, 0.0);
  EXPECT_GT(r.stats.nodes_visited, 0u);
  EXPECT_GE(r.stats.candidates, r.pairs.size());
  EXPECT_EQ(r.stats.distance_calcs, r.stats.candidates);
  EXPECT_GT(r.stats.tree_height, 1);
}

TEST(RTreeSelfJoin, SkewedDataMatchesBruteForce) {
  const auto d = datagen::sdss_like(2000, 23);
  auto got = self_join(d, 0.5);
  const auto want = brute::self_join(d, 0.5);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(RTreeSelfJoin, EmptyDataset) {
  const auto r = self_join(Dataset(2), 1.0);
  EXPECT_TRUE(r.pairs.empty());
}

TEST(RTreeSelfJoin, SelfPairsPresent) {
  const auto d = datagen::uniform(300, 2, 0.0, 100.0, 25);
  auto r = self_join(d, 0.01);
  r.pairs.normalize();
  EXPECT_GE(r.pairs.size(), d.size());
}

}  // namespace
}  // namespace sj::rtree
