// R-tree configuration sweeps: structural invariants and query
// equivalence must hold for every legal fanout and build mode.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/datagen.hpp"
#include "rtree/rtree.hpp"
#include "rtree/rtree_self_join.hpp"

namespace sj::rtree {
namespace {

class RTreeFanout
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // (max, min)

TEST_P(RTreeFanout, InvariantsHoldAfterInsertion) {
  const auto [max_e, min_e] = GetParam();
  Options opt;
  opt.max_entries = max_e;
  opt.min_entries = min_e;
  const auto d = datagen::uniform(1500, 2, 0.0, 100.0, 600 + max_e);
  RTree tree(2, opt);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  EXPECT_TRUE(tree.check_invariants());
  EXPECT_EQ(tree.size(), d.size());
}

TEST_P(RTreeFanout, QueriesIndependentOfFanout) {
  const auto [max_e, min_e] = GetParam();
  Options opt;
  opt.max_entries = max_e;
  opt.min_entries = min_e;
  const auto d = datagen::uniform(800, 3, 0.0, 100.0, 700 + max_e);
  RTree tree(3, opt);
  for (std::size_t i = 0; i < d.size(); ++i) {
    tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> got;
  tree.window_candidates(d.pt(0), 8.0, got);
  std::set<std::uint32_t> want;
  for (std::size_t i = 0; i < d.size(); ++i) {
    bool in = true;
    for (int j = 0; j < 3; ++j) {
      if (std::abs(d.coord(i, j) - d.coord(0, j)) > 8.0) in = false;
    }
    if (in) want.insert(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()), want);
}

INSTANTIATE_TEST_SUITE_P(
    Fanouts, RTreeFanout,
    ::testing::Values(std::make_tuple(4, 2), std::make_tuple(8, 3),
                      std::make_tuple(16, 6), std::make_tuple(64, 16)),
    [](const auto& info) {
      return "max" + std::to_string(std::get<0>(info.param)) + "_min" +
             std::to_string(std::get<1>(info.param));
    });

class RTreeBuildModes : public ::testing::TestWithParam<int> {};

TEST_P(RTreeBuildModes, SelfJoinEqualAcrossModesAndDims) {
  const int dim = GetParam();
  const double eps = 1.0 * (1 << (dim - 2));
  const auto d = datagen::gaussian_mixture(800, dim, 4, 5.0, 0.0, 100.0,
                                           900 + dim);
  auto binned = self_join(d, eps, BuildMode::kBinnedInsert);
  auto str = self_join(d, eps, BuildMode::kStrBulkLoad);
  auto raw = self_join(d, eps, BuildMode::kRawInsert);
  EXPECT_TRUE(ResultSet::equal_normalized(binned.pairs, str.pairs));
  EXPECT_TRUE(ResultSet::equal_normalized(binned.pairs, raw.pairs));
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeBuildModes, ::testing::Values(2, 3, 5));

TEST(RTreeStr, PackedTreeIsShallowerOrEqual) {
  const auto d = datagen::uniform(5000, 2, 0.0, 100.0, 950);
  RTree inserted(2);
  for (std::size_t i = 0; i < d.size(); ++i) {
    inserted.insert(d.pt(i), static_cast<std::uint32_t>(i));
  }
  RTree packed(2);
  packed.bulk_load_str(d);
  EXPECT_LE(packed.height(), inserted.height());
}

TEST(RTreeStr, VisitsFewerNodesThanRawInsertOnAverage) {
  const auto d = datagen::uniform(4000, 2, 0.0, 100.0, 960);
  const auto str = self_join(d, 2.0, BuildMode::kStrBulkLoad);
  const auto raw = self_join(d, 2.0, BuildMode::kRawInsert);
  EXPECT_LT(str.stats.nodes_visited, raw.stats.nodes_visited);
}

}  // namespace
}  // namespace sj::rtree
