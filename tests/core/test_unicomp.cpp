// UNICOMP properties (Section V-B):
//  * the selection rule evaluates every unordered pair of adjacent,
//    distinct cells exactly once (exhaustively verified on grids in
//    2-5 dimensions);
//  * the kernel with UNICOMP produces exactly the same pair set as the
//    kernel without it;
//  * the work (cells searched, distance calculations) drops by roughly 2x.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "core/self_join.hpp"

namespace sj {
namespace {

// Re-statement of the selection rule, independent of the kernel code:
// cell `a` evaluates cell `b` iff there is a dimension d with a[d] odd,
// b[d] != a[d], b[j] == a[j] for all j > d (and |a[j]-b[j]| <= 1
// everywhere). Used to cross-check the property the kernel relies on.
bool evaluates(const std::vector<int>& a, const std::vector<int>& b) {
  const int dim = static_cast<int>(a.size());
  for (int d = 0; d < dim; ++d) {
    if (a[d] % 2 == 0) continue;
    if (b[d] == a[d]) continue;
    bool suffix_equal = true;
    for (int j = d + 1; j < dim; ++j) {
      if (b[j] != a[j]) suffix_equal = false;
    }
    if (suffix_equal) return true;
  }
  return false;
}

void check_exactly_once(int dim, int side) {
  // Enumerate all cells of a [0, side)^dim grid and all adjacent pairs.
  std::vector<std::vector<int>> cells;
  std::vector<int> cur(dim, 0);
  for (;;) {
    cells.push_back(cur);
    int j = 0;
    while (j < dim && ++cur[j] == side) cur[j++] = 0;
    if (j == dim) break;
  }
  for (const auto& a : cells) {
    for (const auto& b : cells) {
      if (a == b) continue;
      bool adjacent = true;
      for (int j = 0; j < dim; ++j) {
        if (std::abs(a[j] - b[j]) > 1) adjacent = false;
      }
      if (!adjacent) continue;
      const int cnt = (evaluates(a, b) ? 1 : 0) + (evaluates(b, a) ? 1 : 0);
      ASSERT_EQ(cnt, 1) << "adjacent pair evaluated " << cnt
                        << " times in dim " << dim;
    }
  }
}

TEST(UnicompRule, ExactlyOncePerAdjacentPair2D) { check_exactly_once(2, 6); }
TEST(UnicompRule, ExactlyOncePerAdjacentPair3D) { check_exactly_once(3, 5); }
TEST(UnicompRule, ExactlyOncePerAdjacentPair4D) { check_exactly_once(4, 4); }
TEST(UnicompRule, ExactlyOncePerAdjacentPair5D) { check_exactly_once(5, 3); }

class UnicompEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(UnicompEquivalence, SamePairsAsBaseKernel) {
  const int dim = GetParam();
  const double eps = std::pow(2.4, dim - 2);
  const auto d = datagen::uniform(1500, dim, 0.0, 100.0, 500 + dim);

  GpuSelfJoinOptions base_opt;
  base_opt.unicomp = false;
  GpuSelfJoinOptions uni_opt;
  uni_opt.unicomp = true;

  auto base = GpuSelfJoin(base_opt).run(d, eps);
  auto uni = GpuSelfJoin(uni_opt).run(d, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(base.pairs, uni.pairs))
      << "dim=" << dim << " base=" << base.pairs.size()
      << " uni=" << uni.pairs.size();
}

TEST_P(UnicompEquivalence, RoughlyHalvesWork) {
  const int dim = GetParam();
  const double eps = std::pow(2.4, dim - 2);
  const auto d = datagen::uniform(4000, dim, 0.0, 100.0, 700 + dim);

  // The paper's ~2x work ratios are stated for the POINT-centric kernel,
  // where every point re-examines its adjacent cells. The cell-centric
  // kernel amortises cell examinations across each cell's points, which
  // reweights the ratio (it still drops well below 1x of base in absolute
  // terms); pin the legacy layout so the measured property matches the
  // claim under test.
  GpuSelfJoinOptions base_opt;
  base_opt.unicomp = false;
  base_opt.layout = GridLayout::kLegacy;
  GpuSelfJoinOptions uni_opt;
  uni_opt.unicomp = true;
  uni_opt.layout = GridLayout::kLegacy;

  const auto base = GpuSelfJoin(base_opt).run(d, eps);
  const auto uni = GpuSelfJoin(uni_opt).run(d, eps);

  // "UNICOMP reduces both the index search overhead (cell evaluations)
  // and Euclidean distance calculations roughly by a factor of two."
  const double cell_ratio =
      static_cast<double>(base.stats.metrics.cells_examined) /
      static_cast<double>(uni.stats.metrics.cells_examined);
  const double dist_ratio =
      static_cast<double>(base.stats.metrics.distance_calcs) /
      static_cast<double>(uni.stats.metrics.distance_calcs);
  EXPECT_GT(cell_ratio, 1.5) << "dim=" << dim;
  EXPECT_LT(cell_ratio, 3.0) << "dim=" << dim;
  // Distance calculations within the home cell are not halved by design
  // (each thread still scans its own cell), so at sparse cell occupancy
  // the distance ratio sits below the ~2x the neighbour-cell work shows.
  EXPECT_GT(dist_ratio, 1.25) << "dim=" << dim;
  EXPECT_LT(dist_ratio, 3.0) << "dim=" << dim;
  // Same number of result pairs despite half the work.
  EXPECT_EQ(base.stats.metrics.results, uni.stats.metrics.results);
}

INSTANTIATE_TEST_SUITE_P(Dims, UnicompEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Unicomp, MatchesBruteForceOnSkewedData) {
  const auto d = datagen::sw_like(3000, 3, 42);
  GpuSelfJoinOptions opt;
  opt.unicomp = true;
  auto got = GpuSelfJoin(opt).run(d, 0.4);
  auto want = brute::self_join(d, 0.4);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(Unicomp, MatchesBruteForceWithDuplicatePoints) {
  // Duplicate coordinates stress the home-cell single-direction logic.
  Dataset d(2);
  const auto base = datagen::uniform(300, 2, 0.0, 10.0, 3);
  for (std::size_t i = 0; i < base.size(); ++i) {
    d.push_back(base.pt(i));
    if (i % 3 == 0) d.push_back(base.pt(i));  // exact duplicate
  }
  GpuSelfJoinOptions opt;
  opt.unicomp = true;
  auto got = GpuSelfJoin(opt).run(d, 1.0);
  auto want = brute::self_join(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

}  // namespace
}  // namespace sj
