// Work counters and the Table II metrics-collection mode.
#include "core/work_counters.hpp"

#include <gtest/gtest.h>

#include "common/datagen.hpp"
#include "core/self_join.hpp"
#include "gpusim/kernel.hpp"

namespace sj {
namespace {

TEST(WorkCounters, FlushAggregatesExactly) {
  AtomicWork work;
  LocalWork a;
  a.cells_examined = 3;
  a.distance_calcs = 10;
  a.results = 2;
  LocalWork b;
  b.cells_examined = 4;
  b.global_loads = 7;
  b.global_load_bytes = 56;
  work.flush(a);
  work.flush(b);
  gpu::KernelMetrics m;
  work.add_to(m);
  EXPECT_EQ(m.cells_examined, 7u);
  EXPECT_EQ(m.distance_calcs, 10u);
  EXPECT_EQ(m.results, 2u);
  EXPECT_EQ(m.global_loads, 7u);
  EXPECT_EQ(m.global_load_bytes, 56u);
}

TEST(WorkCounters, ConcurrentFlushesAreExact) {
  AtomicWork work;
  gpu::launch(gpu::LaunchConfig::cover(10000, 128),
              [&](const gpu::ThreadCtx& ctx) {
                if (ctx.global_id() >= 10000) return;
                LocalWork w;
                w.distance_calcs = 1;
                work.flush(w);
              });
  gpu::KernelMetrics m;
  work.add_to(m);
  EXPECT_EQ(m.distance_calcs, 10000u);
}

TEST(KernelMetrics, PlusEqualsAccumulates) {
  gpu::KernelMetrics a, b;
  a.distance_calcs = 5;
  a.kernel_seconds = 1.5;
  b.distance_calcs = 7;
  b.kernel_seconds = 0.5;
  a += b;
  EXPECT_EQ(a.distance_calcs, 12u);
  EXPECT_DOUBLE_EQ(a.kernel_seconds, 2.0);
}

TEST(KernelMetrics, CacheHitRate) {
  gpu::KernelMetrics m;
  EXPECT_DOUBLE_EQ(m.cache_hit_rate(), 0.0);
  m.cache_hits = 3;
  m.cache_misses = 1;
  EXPECT_DOUBLE_EQ(m.cache_hit_rate(), 0.75);
}

TEST(MetricsMode, CollectsCacheCountersWithoutChangingResult) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 15);
  GpuSelfJoinOptions plain;
  plain.collect_metrics = false;
  GpuSelfJoinOptions metrics;
  metrics.collect_metrics = true;

  auto a = GpuSelfJoin(plain).run(d, 2.0);
  auto b = GpuSelfJoin(metrics).run(d, 2.0);
  EXPECT_TRUE(ResultSet::equal_normalized(a.pairs, b.pairs));

  EXPECT_EQ(a.stats.metrics.cache_hits + a.stats.metrics.cache_misses, 0u);
  EXPECT_GT(b.stats.metrics.cache_hits + b.stats.metrics.cache_misses, 0u);
  EXPECT_GT(b.stats.metrics.cache_bw_gbs, 0.0);
}

TEST(MetricsMode, OccupancyReportedInBothModes) {
  const auto d = datagen::uniform(500, 5, 0.0, 100.0, 17);
  GpuSelfJoinOptions opt;
  const auto r = GpuSelfJoin(opt).run(d, 10.0);
  EXPECT_DOUBLE_EQ(r.stats.occupancy, 0.5);  // 5-D with UNICOMP: Table II
  EXPECT_EQ(r.stats.regs_per_thread, 52);
}

TEST(MetricsMode, WorkCountersScaleWithEps) {
  const auto d = datagen::uniform(3000, 2, 0.0, 100.0, 19);
  GpuSelfJoinOptions opt;
  const auto small = GpuSelfJoin(opt).run(d, 0.5);
  const auto large = GpuSelfJoin(opt).run(d, 4.0);
  EXPECT_GT(large.stats.metrics.distance_calcs,
            small.stats.metrics.distance_calcs);
  EXPECT_GT(large.stats.metrics.results, small.stats.metrics.results);
  // Larger cells -> fewer non-empty cells -> fewer cells examined per
  // point, but far more distance calcs per cell.
  EXPECT_GT(small.stats.metrics.cells_examined,
            large.stats.metrics.cells_examined);
}

}  // namespace
}  // namespace sj
