#include "core/brute_force_gpu.hpp"

#include <gtest/gtest.h>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"

namespace sj {
namespace {

TEST(GpuBruteForce, CountMatchesCpuReference) {
  const auto d = datagen::uniform(1000, 3, 0.0, 100.0, 3);
  const auto gpu = gpu_brute_force(d, 5.0);
  auto cpu = brute::self_join(d, 5.0);
  EXPECT_EQ(gpu.num_pairs, cpu.pairs.size());
}

TEST(GpuBruteForce, MaterializedPairsMatchCpuReference) {
  const auto d = datagen::uniform(600, 2, 0.0, 50.0, 5);
  auto gpu = gpu_brute_force(d, 2.0, /*materialize=*/true);
  const auto cpu = brute::self_join(d, 2.0);
  EXPECT_TRUE(ResultSet::equal_normalized(gpu.pairs, cpu.pairs));
  EXPECT_EQ(gpu.num_pairs, gpu.pairs.size());
}

TEST(GpuBruteForce, DistanceCalcsAreQuadratic) {
  const auto d = datagen::uniform(500, 2, 0.0, 100.0, 7);
  const auto r = gpu_brute_force(d, 1.0);
  EXPECT_EQ(r.distance_calcs, d.size() * d.size());
}

TEST(GpuBruteForce, WorkIsIndependentOfEps) {
  const auto d = datagen::uniform(400, 4, 0.0, 100.0, 9);
  const auto small = gpu_brute_force(d, 0.01);
  const auto large = gpu_brute_force(d, 100.0);
  EXPECT_EQ(small.distance_calcs, large.distance_calcs);
  EXPECT_LT(small.num_pairs, large.num_pairs);
}

TEST(GpuBruteForce, EmptyDataset) {
  const auto r = gpu_brute_force(Dataset(2), 1.0);
  EXPECT_EQ(r.num_pairs, 0u);
}

TEST(GpuBruteForce, SelfPairsAlwaysPresent) {
  const auto d = datagen::uniform(100, 2, 0.0, 100.0, 11);
  const auto r = gpu_brute_force(d, 0.0);
  EXPECT_GE(r.num_pairs, d.size());  // at least the self pairs
}

TEST(GpuBruteForce, RejectsNegativeEps) {
  EXPECT_THROW(gpu_brute_force(Dataset(2), -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace sj
