// Cell-major layout + cell-centric kernel: the reorder itself (original
// ids preserved through the slot -> id map), exactness on the edge cases
// that break reorder logic, run-twice determinism under overflow stress,
// the per-cell work-estimate batch planner on skewed data, and the
// dim <= kMaxDims guard.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <stdexcept>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "core/batcher.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "core/self_join.hpp"
#include "gpusim/arena.hpp"

namespace sj {
namespace {

GpuSelfJoinOptions cell_opts() {
  GpuSelfJoinOptions opt;
  opt.unicomp = false;
  opt.layout = GridLayout::kCellMajor;
  return opt;
}

TEST(CellMajorLayout, ReorderMatchesIndexAndKeepsOriginalIds) {
  const auto d = datagen::uniform(500, 3, 0.0, 50.0, 21);
  GridIndex index(d, 2.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index, GridLayout::kCellMajor);
  const GridDeviceView& v = dev.view();

  EXPECT_TRUE(v.cell_major);
  EXPECT_EQ(v.A, nullptr);  // identity — the indirection is gone
  ASSERT_NE(v.orig, nullptr);

  // Slot k holds the coordinates of original point A[k], and orig maps
  // the slot back to that id.
  ASSERT_EQ(v.n, d.size());
  for (std::size_t k = 0; k < d.size(); ++k) {
    EXPECT_EQ(v.orig[k], index.A()[k]);
    EXPECT_EQ(std::memcmp(v.points + k * v.dim, d.pt(index.A()[k]),
                          v.dim * sizeof(double)),
              0)
        << "slot " << k;
  }

  // Every original id appears exactly once.
  std::vector<bool> seen(d.size(), false);
  for (std::size_t k = 0; k < d.size(); ++k) {
    ASSERT_LT(v.orig[k], d.size());
    EXPECT_FALSE(seen[v.orig[k]]);
    seen[v.orig[k]] = true;
  }

  // Within each cell the slots are exactly the G range, contiguous.
  for (std::size_t cell = 0; cell < index.num_nonempty_cells(); ++cell) {
    const auto range = index.G()[cell];
    for (std::uint32_t k = range.min; k <= range.max; ++k) {
      std::uint32_t coords[kMaxDims];
      index.cell_coords(v.points + k * v.dim, coords);
      EXPECT_EQ(index.linearize(coords), index.B()[cell]);
    }
  }
}

TEST(CellMajorLayout, LegacyViewIsUnchanged) {
  const auto d = datagen::uniform(200, 2, 0.0, 20.0, 23);
  GridIndex index(d, 1.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index, GridLayout::kLegacy);
  const GridDeviceView& v = dev.view();
  EXPECT_FALSE(v.cell_major);
  EXPECT_EQ(v.orig, nullptr);
  ASSERT_NE(v.A, nullptr);
  EXPECT_EQ(std::memcmp(v.points, d.raw().data(),
                        d.raw().size() * sizeof(double)),
            0);
}

TEST(CellMajorLayout, EdgeCasesMatchBruteForce) {
  // Empty.
  EXPECT_TRUE(GpuSelfJoin(cell_opts()).run(Dataset(2), 1.0).pairs.empty());

  // Single point: the lone self pair.
  Dataset one(3, {1.0, 2.0, 3.0});
  auto single = GpuSelfJoin(cell_opts()).run(one, 0.5);
  ASSERT_EQ(single.pairs.size(), 1u);
  EXPECT_EQ(single.pairs.pairs()[0], (Pair{0, 0}));

  // eps = 0: co-located points only.
  Dataset co(2, {1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0});
  auto got0 = GpuSelfJoin(cell_opts()).run(co, 0.0);
  auto want0 = brute::self_join(co, 0.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got0.pairs, want0.pairs));

  // All duplicates: one cell holding everything.
  Dataset dup(2);
  for (int i = 0; i < 40; ++i) {
    double p[2] = {7.0, -3.0};
    dup.push_back(p);
  }
  auto gotd = GpuSelfJoin(cell_opts()).run(dup, 0.5);
  EXPECT_EQ(gotd.pairs.size(), 40u * 40u);
  auto wantd = brute::self_join(dup, 0.5);
  EXPECT_TRUE(ResultSet::equal_normalized(gotd.pairs, wantd.pairs));
}

TEST(CellMajorLayout, RunTwiceIsByteIdenticalUnderOverflowStress) {
  const auto d = datagen::ippp(1500, 2, 32.0, 77);
  auto opt = cell_opts();
  opt.num_streams = 4;
  opt.max_buffer_pairs = 64;  // force overflow splits
  opt.safety = 0.01;          // sabotage the estimate too
  const auto first = GpuSelfJoin(opt).run(d, 1.0);
  const auto second = GpuSelfJoin(opt).run(d, 1.0);
  EXPECT_GT(first.stats.batch.overflow_retries, 0u);
  EXPECT_EQ(first.pairs.pairs(), second.pairs.pairs());
  const auto want = brute::self_join(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(first.pairs, want.pairs));
}

TEST(CellMajorLayout, OversizedSingleCellSplitsDownToPoints) {
  // One dense clump in a single cell: cell-level splitting bottoms out in
  // point-subrange splits, which must stay exact.
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    double p[2] = {5.0 + 1e-4 * i, 5.0};
    d.push_back(p);
  }
  auto opt = cell_opts();
  opt.max_buffer_pairs = 256;  // 200 points -> 40000 pairs >> buffer
  opt.safety = 0.01;
  const auto got = GpuSelfJoin(opt).run(d, 1.0);
  EXPECT_GT(got.stats.batch.overflow_retries, 0u);
  const auto want = brute::self_join(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(CellMajorLayout, MaxDimBoundaryWorks) {
  const auto d = datagen::uniform(120, kMaxDims, 0.0, 10.0, 31);
  const auto got = GpuSelfJoin(cell_opts()).run(d, 4.0);
  const auto want = brute::self_join(d, 4.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

// --- Per-cell work estimates + the weighted batch planner.

TEST(CellBatchPlanner, WeightsTrackSkewAndPartitionBalances) {
  // Strongly skewed data: a few cells carry most of the candidate volume.
  const auto d = datagen::ippp(2000, 2, 48.0, 91);
  const double eps = 1.0;
  GridIndex index(d, eps);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index, GridLayout::kCellMajor);

  const auto weights = per_cell_candidates(dev.view(), false);
  ASSERT_EQ(weights.size(), index.num_nonempty_cells());
  const std::uint64_t total =
      std::accumulate(weights.begin(), weights.end(), std::uint64_t{0});
  ASSERT_GT(total, 0u);
  const std::uint64_t max_w = *std::max_element(weights.begin(),
                                                weights.end());
  // Skew: the heaviest cell far exceeds the mean.
  EXPECT_GT(max_w, 4 * total / weights.size());

  const auto plan = plan_cell_batches(weights, total, /*min_batches=*/8,
                                      /*buffer_pairs=*/total / 4,
                                      /*safety=*/1.0);
  ASSERT_EQ(plan.num_batches(), 8u);
  // Boundaries are monotone, start at 0, end at the cell count.
  EXPECT_EQ(plan.boundaries.front(), 0u);
  EXPECT_EQ(plan.boundaries.back(), weights.size());
  for (std::size_t b = 0; b + 1 < plan.boundaries.size(); ++b) {
    ASSERT_LT(plan.boundaries[b], plan.boundaries[b + 1]);
  }
  // Work balance: no batch exceeds its fair share by more than one cell
  // (the greedy partition overshoots by at most the straddling cell).
  for (std::size_t b = 0; b + 1 < plan.boundaries.size(); ++b) {
    std::uint64_t batch_w = 0;
    for (std::uint32_t c = plan.boundaries[b]; c < plan.boundaries[b + 1];
         ++c) {
      batch_w += weights[c];
    }
    EXPECT_LE(batch_w, total / plan.num_batches() + max_w + 1)
        << "batch " << b;
  }
}

TEST(CellBatchPlanner, HonoursMinBatchesAndCellCap) {
  const std::vector<std::uint64_t> uniform_w(100, 10);
  const auto plan = plan_cell_batches(uniform_w, 1000, 3, 1 << 20, 1.25);
  EXPECT_EQ(plan.num_batches(), 3u);

  // Never more batches than cells.
  const std::vector<std::uint64_t> few(4, 1000);
  const auto capped = plan_cell_batches(few, 1'000'000, 3, 10, 1.0);
  EXPECT_EQ(capped.num_batches(), 4u);

  // No cells -> no batches.
  const auto empty = plan_cell_batches({}, 0, 3, 64, 1.25);
  EXPECT_EQ(empty.num_batches(), 0u);
}

TEST(CellBatchPlanner, SkewedIpppJoinStaysExactWithManyBatches) {
  const auto d = datagen::ippp(2500, 2, 64.0, 93);
  auto opt = cell_opts();
  opt.min_batches = 13;
  const auto got = GpuSelfJoin(opt).run(d, 1.5);
  EXPECT_GE(got.stats.batch.batches_run, 13u);
  const auto want = brute::self_join(d, 1.5);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

// --- The adjacency shared between planner and kernels.

TEST(CellAdjacencyBuild, RangesCoverExactlyTheKernelCandidates) {
  const auto d = datagen::uniform(400, 2, 0.0, 20.0, 37);
  GridIndex index(d, 1.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index, GridLayout::kCellMajor);
  const GridDeviceView& v = dev.view();

  for (bool unicomp : {false, true}) {
    const CellAdjacency adj = build_cell_adjacency(arena, v, unicomp);
    ASSERT_EQ(adj.weights.size(), index.num_nonempty_cells());
    EXPECT_GT(adj.cells_examined, 0u);
    // offsets is a valid monotone CSR over ranges.
    for (std::size_t c = 0; c < adj.weights.size(); ++c) {
      ASSERT_LE(adj.offsets[c], adj.offsets[c + 1]);
      std::uint64_t candidates = 0;
      for (std::uint64_t r = adj.offsets[c]; r < adj.offsets[c + 1]; ++r) {
        const CandidateRange& cr = adj.ranges[r];
        ASSERT_LT(cr.begin, cr.end);
        ASSERT_LE(cr.end, d.size());
        candidates += static_cast<std::uint64_t>(cr.end - cr.begin) *
                      (cr.both != 0 ? 2 : 1);
      }
      const auto g = index.G()[c];
      EXPECT_EQ(adj.weights[c], candidates * (g.max - g.min + 1u));
    }
  }
}

TEST(GridIndexGuards, SharedLinearizeMatchesBetweenHostAndView) {
  const auto d = datagen::uniform(300, 4, 0.0, 30.0, 41);
  GridIndex index(d, 2.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index, GridLayout::kCellMajor);
  std::uint32_t coords[kMaxDims] = {3, 1, 4, 1};
  EXPECT_EQ(dev.view().linearize(coords), index.linearize(coords));
  // Both call the one shared helper.
  std::uint64_t stride[kMaxDims];
  for (int j = 0; j < 4; ++j) stride[j] = index.stride(j);
  EXPECT_EQ(linearize_cell(coords, stride, 4), index.linearize(coords));
}

}  // namespace
}  // namespace sj
