#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "common/datagen.hpp"
#include "core/device_view.hpp"
#include "core/grid_index.hpp"
#include "core/self_join.hpp"
#include "gpusim/arena.hpp"

namespace sj {
namespace {

struct GridFixture {
  GridFixture(const Dataset& data, double eps)
      : arena(gpu::DeviceSpec::titan_x_pascal()),
        index(data, eps),
        dev(arena, data, index) {}
  gpu::GlobalMemoryArena arena;
  GridIndex index;
  DeviceGrid dev;
};

TEST(Estimator, FullSampleIsExact) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 3);
  GridFixture f(d, 2.0);
  const auto est = estimate_result_size(f.dev.view(), false, 1.0, 256);
  EXPECT_EQ(est.sample_size, d.size());

  GpuSelfJoinOptions opt;
  opt.unicomp = false;
  const auto r = GpuSelfJoin(opt).run(d, 2.0);
  EXPECT_EQ(est.estimated_total, r.pairs.size());
}

TEST(Estimator, SampledEstimateWithinTolerance) {
  const auto d = datagen::uniform(20000, 2, 0.0, 100.0, 5);
  GridFixture f(d, 2.0);
  const auto exact = estimate_result_size(f.dev.view(), false, 1.0, 256);
  const auto sampled = estimate_result_size(f.dev.view(), false, 0.05, 256);
  EXPECT_LT(sampled.sample_size, d.size());
  const double err =
      std::abs(static_cast<double>(sampled.estimated_total) -
               static_cast<double>(exact.estimated_total)) /
      static_cast<double>(exact.estimated_total);
  EXPECT_LT(err, 0.25) << "sampled=" << sampled.estimated_total
                       << " exact=" << exact.estimated_total;
}

TEST(Estimator, UnicompModeCountsItsOwnEmissions) {
  // UNICOMP emits the same total pairs as the base kernel over the full
  // dataset, so full-sample estimates must agree.
  const auto d = datagen::uniform(3000, 3, 0.0, 100.0, 7);
  GridFixture f(d, 4.0);
  const auto base = estimate_result_size(f.dev.view(), false, 1.0, 256);
  const auto uni = estimate_result_size(f.dev.view(), true, 1.0, 256);
  EXPECT_EQ(base.estimated_total, uni.estimated_total);
}

TEST(Estimator, EmptyGrid) {
  Dataset d(2);
  GridIndex index(d, 1.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);
  const auto est = estimate_result_size(dev.view(), false, 0.1, 256);
  EXPECT_EQ(est.estimated_total, 0u);
  EXPECT_EQ(est.sample_size, 0u);
}

TEST(Estimator, MinSampleFloorApplies) {
  const auto d = datagen::uniform(5000, 2, 0.0, 100.0, 9);
  GridFixture f(d, 1.0);
  // 0.0001 sample rate over 5000 points would be a single point; the
  // floor forces at least 1024.
  const auto est = estimate_result_size(f.dev.view(), false, 0.0001, 256);
  EXPECT_GE(est.sample_size, 1024u);
}

}  // namespace
}  // namespace sj
