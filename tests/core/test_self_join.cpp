// GPU-SJ correctness: exact pair-set equality against the CPU brute-force
// reference over a parameterised sweep of dimensionalities, eps values and
// data distributions.
#include "core/self_join.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"

namespace sj {
namespace {

Dataset make_distribution(const std::string& kind, std::size_t n, int dim,
                          std::uint64_t seed) {
  if (kind == "uniform") {
    return datagen::uniform(n, dim, 0.0, 100.0, seed);
  }
  if (kind == "clustered") {
    return datagen::gaussian_mixture(n, dim, 8, 3.0, 0.0, 100.0, seed);
  }
  return datagen::exponential_blob(n, dim, 0.08, seed);
}

class SelfJoinEquality
    : public ::testing::TestWithParam<std::tuple<int, double, std::string>> {};

TEST_P(SelfJoinEquality, MatchesBruteForce) {
  const auto [dim, eps_scale, kind] = GetParam();
  // eps chosen so the expected neighbour count is in a sensible band for
  // each dimension: unit density would explode in 2-D and starve in 6-D.
  const double eps = eps_scale * std::pow(2.2, dim - 2);
  const auto d = make_distribution(kind, 1200, dim, 1234 + dim);

  GpuSelfJoinOptions opt;
  opt.unicomp = false;
  GpuSelfJoin join(opt);
  auto got = join.run(d, eps);
  auto want = brute::self_join(d, eps);

  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
      << "dim=" << dim << " eps=" << eps << " kind=" << kind
      << " got=" << got.pairs.size() << " want=" << want.pairs.size();
}

TEST_P(SelfJoinEquality, UnicompMatchesBruteForce) {
  const auto [dim, eps_scale, kind] = GetParam();
  const double eps = eps_scale * std::pow(2.2, dim - 2);
  const auto d = make_distribution(kind, 1200, dim, 987 + dim);

  GpuSelfJoinOptions opt;
  opt.unicomp = true;
  GpuSelfJoin join(opt);
  auto got = join.run(d, eps);
  auto want = brute::self_join(d, eps);

  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs))
      << "dim=" << dim << " eps=" << eps << " kind=" << kind;
}

INSTANTIATE_TEST_SUITE_P(
    DimsEpsDistributions, SelfJoinEquality,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.5, 2.0),
                       ::testing::Values("uniform", "clustered",
                                         "exponential")),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "_" + std::get<2>(info.param);
    });

TEST(GpuSelfJoin, EmptyDataset) {
  Dataset d(2);
  GpuSelfJoin join;
  const auto r = join.run(d, 1.0);
  EXPECT_TRUE(r.pairs.empty());
}

TEST(GpuSelfJoin, SinglePointFindsItself) {
  Dataset d(3, {1.0, 2.0, 3.0});
  GpuSelfJoin join;
  auto r = join.run(d, 0.5);
  r.pairs.normalize();
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs.pairs()[0], (Pair{0, 0}));
}

TEST(GpuSelfJoin, ResultIsSymmetric) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 55);
  GpuSelfJoin join;
  auto r = join.run(d, 2.0);
  r.pairs.normalize();
  EXPECT_TRUE(r.pairs.is_symmetric());
}

TEST(GpuSelfJoin, EveryPointReportsItself) {
  const auto d = datagen::uniform(1000, 3, 0.0, 100.0, 66);
  GpuSelfJoin join;
  auto r = join.run(d, 1.0);
  const auto counts = r.pairs.counts_per_key(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_GE(counts[i], 1u) << "point " << i << " lost its self pair";
  }
}

TEST(GpuSelfJoin, EpsZeroFindsOnlyCoLocatedPoints) {
  Dataset d(2, {1.0, 1.0, 1.0, 1.0, 2.0, 2.0});
  GpuSelfJoin join;
  auto r = join.run(d, 0.0);
  r.pairs.normalize();
  // Pairs: (0,0),(0,1),(1,0),(1,1),(2,2).
  EXPECT_EQ(r.pairs.size(), 5u);
}

TEST(GpuSelfJoin, MonotoneInEps) {
  const auto d = datagen::uniform(1500, 2, 0.0, 100.0, 77);
  GpuSelfJoin join;
  std::size_t prev = 0;
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    auto r = join.run(d, eps);
    r.pairs.normalize();
    EXPECT_GE(r.pairs.size(), prev);
    prev = r.pairs.size();
  }
}

TEST(GpuSelfJoin, HugeEpsReturnsAllOrderedPairs) {
  const auto d = datagen::uniform(200, 2, 0.0, 10.0, 88);
  GpuSelfJoin join;
  auto r = join.run(d, 1000.0);
  r.pairs.normalize();
  EXPECT_EQ(r.pairs.size(), d.size() * d.size());
}

TEST(GpuSelfJoin, StatsArePopulated) {
  const auto d = datagen::uniform(3000, 3, 0.0, 100.0, 99);
  GpuSelfJoin join;
  const auto r = join.run(d, 2.0);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  EXPECT_GT(r.stats.grid_nonempty_cells, 0u);
  EXPECT_GE(r.stats.batch.batches_run, 3u);  // paper minimum
  EXPECT_GT(r.stats.metrics.distance_calcs, 0u);
  EXPECT_GT(r.stats.metrics.cells_examined, 0u);
  EXPECT_GT(r.stats.occupancy, 0.0);
  EXPECT_EQ(r.stats.metrics.results, r.pairs.size());
}

TEST(GpuSelfJoin, RejectsBadOptions) {
  GpuSelfJoinOptions opt;
  opt.block_size = 0;
  EXPECT_THROW(GpuSelfJoin{opt}, std::invalid_argument);
  opt = {};
  opt.sample_rate = 0.0;
  EXPECT_THROW(GpuSelfJoin{opt}, std::invalid_argument);
  opt = {};
  opt.num_streams = -1;
  EXPECT_THROW(GpuSelfJoin{opt}, std::invalid_argument);
}

TEST(GpuSelfJoin, RejectsNegativeEps) {
  GpuSelfJoin join;
  EXPECT_THROW(join.run(Dataset(2), -0.5), std::invalid_argument);
}

TEST(GpuSelfJoin, BlockSizeDoesNotChangeResult) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 111);
  ResultSet reference;
  for (int bs : {32, 128, 256, 512}) {
    GpuSelfJoinOptions opt;
    opt.block_size = bs;
    GpuSelfJoin join(opt);
    auto r = join.run(d, 3.0);
    r.pairs.normalize();
    if (bs == 32) {
      reference = std::move(r.pairs);
    } else {
      EXPECT_TRUE(ResultSet::equal_normalized(reference, r.pairs))
          << "block size " << bs;
    }
  }
}

}  // namespace
}  // namespace sj
