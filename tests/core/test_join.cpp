// General epsilon join (A join B): correctness against a brute-force
// reference, asymmetry semantics, batching behaviour.
#include "core/join.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/datagen.hpp"

namespace sj {
namespace {

ResultSet brute_join(const Dataset& a, const Dataset& b, double eps) {
  ResultSet out;
  const double eps2 = eps * eps;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (sq_dist(a.pt(i), b.pt(j), a.dim()) <= eps2) {
        out.add(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j));
      }
    }
  }
  return out;
}

class JoinEquality : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquality, MatchesBruteForce) {
  const int dim = GetParam();
  const double eps = std::pow(2.2, dim - 2);
  const auto a = datagen::uniform(700, dim, 0.0, 100.0, 60 + dim);
  const auto b = datagen::gaussian_mixture(900, dim, 6, 4.0, 0.0, 100.0,
                                           90 + dim);
  auto got = gpu_join(a, b, eps);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, brute_join(a, b, eps)))
      << "dim=" << dim;
}

TEST_P(JoinEquality, LayoutsReturnIdenticalNormalizedPairs) {
  // The cell-major indexed side + query-group kernel must agree with the
  // paper's point-centric path exactly, across dimensionalities.
  const int dim = GetParam();
  const double eps = std::pow(2.2, dim - 2);
  const auto a = datagen::uniform(500, dim, 0.0, 100.0, 160 + dim);
  const auto b = datagen::gaussian_mixture(700, dim, 6, 4.0, 0.0, 100.0,
                                           190 + dim);
  GpuJoinOptions legacy_opt;
  legacy_opt.layout = GridLayout::kLegacy;
  GpuJoinOptions cell_opt;
  cell_opt.layout = GridLayout::kCellMajor;
  auto legacy = gpu_join(a, b, eps, legacy_opt);
  auto cell = gpu_join(a, b, eps, cell_opt);
  legacy.pairs.normalize();
  cell.pairs.normalize();
  EXPECT_EQ(legacy.pairs.pairs(), cell.pairs.pairs()) << "dim=" << dim;
  EXPECT_EQ(legacy.stats.query_groups, 0u);
  EXPECT_GT(cell.stats.query_groups, 0u);
  EXPECT_LE(cell.stats.query_groups, a.size());
}

INSTANTIATE_TEST_SUITE_P(Dims, JoinEquality, ::testing::Values(1, 2, 3, 4, 6));

TEST(GpuJoin, CellLayoutSkewedQueriesManyBatchesStayExact) {
  // Skewed queries concentrate the result volume into few groups; force
  // many batches so the weighted group planner and the overflow-split
  // path are both exercised.
  const auto a = datagen::ippp(1200, 2, 32.0, 271);
  const auto b = datagen::uniform(1500, 2, 0.0, 32.0, 272);
  GpuJoinOptions opt;
  opt.min_batches = 9;
  opt.max_buffer_pairs = 512;  // undersized buffers -> overflow splits
  auto got = gpu_join(a, b, 1.0, opt);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, brute_join(a, b, 1.0)));
  EXPECT_GE(got.stats.batch.batches_run, 9u);
}

TEST(GpuJoin, CellLayoutRunTwiceIsDeterministic) {
  const auto a = datagen::uniform(800, 2, 0.0, 50.0, 281);
  const auto b = datagen::uniform(900, 2, 0.0, 50.0, 282);
  auto r1 = gpu_join(a, b, 2.0);
  auto r2 = gpu_join(a, b, 2.0);
  EXPECT_EQ(r1.pairs.pairs(), r2.pairs.pairs());  // raw order, not just set
}

TEST(GpuJoin, ValidationNamesTheArgument) {
  try {
    gpu_join(Dataset(2), Dataset(2), -1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("argument 'eps' of gpu_join"),
              std::string::npos)
        << e.what();
  }
  try {
    gpu_join(Dataset(2), Dataset(3), 1.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("argument 'queries' of gpu_join"),
              std::string::npos)
        << e.what();
  }
}

TEST(GpuJoin, AsymmetricIndicesAreQueryThenData) {
  Dataset a(2, {0.0, 0.0});
  Dataset b(2, {0.1, 0.0, 50.0, 50.0});
  auto r = gpu_join(a, b, 1.0);
  r.pairs.normalize();
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs.pairs()[0], (Pair{0, 0}));  // A[0] matches B[0] only
}

TEST(GpuJoin, SelfJoinAsTwoSetJoinMatchesSelfJoin) {
  const auto d = datagen::uniform(1500, 2, 0.0, 100.0, 77);
  auto two_set = gpu_join(d, d, 2.0);
  GpuSelfJoinOptions opt;
  opt.unicomp = true;
  auto self = GpuSelfJoin(opt).run(d, 2.0);
  EXPECT_TRUE(ResultSet::equal_normalized(two_set.pairs, self.pairs));
}

TEST(GpuJoin, EmptySidesProduceEmptyResult) {
  const auto d = datagen::uniform(100, 3, 0.0, 10.0, 5);
  EXPECT_TRUE(gpu_join(Dataset(3), d, 1.0).pairs.empty());
  EXPECT_TRUE(gpu_join(d, Dataset(3), 1.0).pairs.empty());
}

TEST(GpuJoin, DimensionMismatchThrows) {
  EXPECT_THROW(gpu_join(Dataset(2), Dataset(3), 1.0), std::invalid_argument);
}

TEST(GpuJoin, NegativeEpsThrows) {
  EXPECT_THROW(gpu_join(Dataset(2), Dataset(2), -1.0),
               std::invalid_argument);
}

TEST(GpuJoin, DisjointRegionsFindNothing) {
  const auto a = datagen::uniform(500, 2, 0.0, 10.0, 1);
  const auto b = datagen::uniform(500, 2, 50.0, 60.0, 2);
  EXPECT_TRUE(gpu_join(a, b, 1.0).pairs.empty());
}

TEST(GpuJoin, ManyBatchesStayExact) {
  const auto a = datagen::uniform(2000, 2, 0.0, 100.0, 3);
  const auto b = datagen::uniform(2500, 2, 0.0, 100.0, 4);
  GpuJoinOptions opt;
  opt.min_batches = 11;
  auto got = gpu_join(a, b, 3.0, opt);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, brute_join(a, b, 3.0)));
  EXPECT_GE(got.stats.batch.batches_run, 11u);
}

TEST(GpuJoin, StatsPopulated) {
  const auto a = datagen::uniform(1000, 2, 0.0, 100.0, 5);
  const auto b = datagen::uniform(1000, 2, 0.0, 100.0, 6);
  const auto r = gpu_join(a, b, 2.0);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  EXPECT_GT(r.stats.metrics.distance_calcs, 0u);
  EXPECT_EQ(r.stats.metrics.results, r.pairs.size());
}

TEST(GpuJoin, QuerySmallerAndLargerThanData) {
  const auto small = datagen::uniform(50, 2, 0.0, 100.0, 7);
  const auto large = datagen::uniform(3000, 2, 0.0, 100.0, 8);
  auto r1 = gpu_join(small, large, 2.0);
  EXPECT_TRUE(
      ResultSet::equal_normalized(r1.pairs, brute_join(small, large, 2.0)));
  auto r2 = gpu_join(large, small, 2.0);
  EXPECT_TRUE(
      ResultSet::equal_normalized(r2.pairs, brute_join(large, small, 2.0)));
}

}  // namespace
}  // namespace sj
