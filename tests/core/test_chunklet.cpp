// The over-decomposed chunklet plan and the work-stealing shard
// scheduler (gpu_shard, PR 9).
//
// Unit level: plan_chunklets must cover the unit range with disjoint
// contiguous chunklets, nest the device boundaries inside the chunklet
// boundaries, clamp M into [devices, units], and carry exact per-chunklet
// weight sums; plan_shard_boundaries must never emit a zero-weight part
// when any unit has weight (the giant-cell degenerate plan fix).
//
// End-to-end: the stealing scheduler must stay byte-identical to the
// single-device gpu backend for every schedule x shard-count x result
// mode, deterministic run-to-run even when stealing and overflow splits
// interleave, and actually steal on skewed data. plan=measured must
// round-trip per-cell pair counts through the plan cache and re-plan
// without changing the result. Suites are named Shard* so the
// ThreadSanitizer CI job's filter picks them up (the concurrent schedule
// races K device threads over the shared deques).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/fault.hpp"
#include "core/shard_engine.hpp"
#include "core/shard_plan.hpp"

namespace sj {
namespace {

// ------------------------------------------------------ chunklet planner

void expect_plan_invariants(const ChunkletPlan& plan,
                            const std::vector<std::uint64_t>& weights,
                            const std::string& label) {
  ASSERT_GE(plan.bounds.size(), 2u) << label;
  EXPECT_EQ(plan.bounds.front(), 0u) << label;
  EXPECT_EQ(plan.bounds.back(), weights.size()) << label;
  ASSERT_EQ(plan.weights.size(), plan.bounds.size() - 1) << label;
  for (std::size_t c = 0; c < plan.chunklets(); ++c) {
    EXPECT_LT(plan.bounds[c], plan.bounds[c + 1]) << label;  // disjoint cover
    std::uint64_t w = 0;
    for (std::uint32_t u = plan.bounds[c]; u < plan.bounds[c + 1]; ++u) {
      w += weights[u];
    }
    EXPECT_EQ(plan.weights[c], w) << label << " chunklet " << c;
  }
  ASSERT_GE(plan.device_bounds.size(), 2u) << label;
  EXPECT_EQ(plan.device_bounds.front(), 0u) << label;
  EXPECT_EQ(plan.device_bounds.back(), plan.chunklets()) << label;
  for (std::size_t d = 0; d + 1 < plan.device_bounds.size(); ++d) {
    EXPECT_LT(plan.device_bounds[d], plan.device_bounds[d + 1]) << label;
  }
}

TEST(ShardChunkletPlan, CoversDisjointlyAndNestsDeviceBounds) {
  std::vector<std::uint64_t> weights(53);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1 + (i * 7) % 13;  // varied, all positive
  }
  const ChunkletPlan plan = plan_chunklets(weights, 4);
  expect_plan_invariants(plan, weights, "default M");
  EXPECT_EQ(plan.devices(), 4u);
  // Default over-decomposition: 12 chunklets per device (clamped to the
  // unit count).
  EXPECT_EQ(plan.chunklets(), std::min<std::size_t>(
                                  kChunkletsPerDevice * 4, weights.size()));
}

TEST(ShardChunkletPlan, ChunkletCountClampsToDevicesAndUnits) {
  const std::vector<std::uint64_t> five(5, 2);
  // Fewer units than devices: both clamp to the unit count.
  const ChunkletPlan tiny = plan_chunklets(five, 8);
  expect_plan_invariants(tiny, five, "units < devices");
  EXPECT_EQ(tiny.devices(), 5u);
  EXPECT_EQ(tiny.chunklets(), 5u);

  // Explicit M below the device count clamps up to it; above the unit
  // count clamps down.
  const std::vector<std::uint64_t> ten(10, 3);
  EXPECT_EQ(plan_chunklets(ten, 4, 2).chunklets(), 4u);
  EXPECT_EQ(plan_chunklets(ten, 4, 100).chunklets(), 10u);
  const ChunkletPlan m7 = plan_chunklets(ten, 2, 7);
  expect_plan_invariants(m7, ten, "M=7");
  EXPECT_EQ(m7.chunklets(), 7u);
  EXPECT_EQ(m7.devices(), 2u);

  // No units at all: the degenerate empty plan.
  const ChunkletPlan empty = plan_chunklets({}, 4);
  EXPECT_EQ(empty.chunklets(), 0u);
  EXPECT_EQ(empty.devices(), 0u);
}

TEST(ShardChunkletPlan, ZeroWeightNeighboursCoalesceIntoNonEmptyParts) {
  // The giant-cell degenerate plan: one unit carries all the weight, so a
  // K-way forced partition used to emit K-1 adjacent zero-weight parts.
  // The planner must coalesce them away.
  for (const auto& weights :
       {std::vector<std::uint64_t>{100, 0, 0, 0},
        std::vector<std::uint64_t>{0, 0, 100, 0},
        std::vector<std::uint64_t>{0, 50, 0, 50, 0}}) {
    const auto bounds = plan_shard_boundaries(weights, 4);
    ASSERT_GE(bounds.size(), 2u);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), weights.size());
    for (std::size_t p = 0; p + 1 < bounds.size(); ++p) {
      std::uint64_t w = 0;
      for (std::uint32_t u = bounds[p]; u < bounds[p + 1]; ++u) {
        w += weights[u];
      }
      EXPECT_GT(w, 0u) << "zero-weight part " << p;
    }
  }
  // All-zero weights degrade to a single covering part, not an error.
  EXPECT_EQ(plan_shard_boundaries({0, 0, 0}, 4),
            (std::vector<std::uint32_t>{0, 3}));
}

// ----------------------------------------------------------- plan cache

TEST(ShardChunkletPlan, PlanCacheRoundTripsAndRejectsMismatchedKeys) {
  const std::string path = ::testing::TempDir() + "sj_plan_cache_test.txt";
  const PlanCacheKey key{1000, 2, 0.25, 5};
  const std::vector<std::uint64_t> weights{7, 0, 42, 9, 1};
  save_plan_cache(path, key, weights);
  EXPECT_EQ(load_plan_cache(path, key), weights);

  PlanCacheKey other = key;
  other.eps = 0.5;  // different join -> stale counts must not be reused
  EXPECT_TRUE(load_plan_cache(path, other).empty());
  other = key;
  other.n = 999;
  EXPECT_TRUE(load_plan_cache(path, other).empty());
  EXPECT_TRUE(load_plan_cache(path + ".missing", key).empty());
  std::remove(path.c_str());
}

// --------------------------------------------------- end-to-end parity

ResultSet run_gpu(const Dataset& d, double eps) {
  auto pairs = api::BackendRegistry::instance().at("gpu").run(d, eps).pairs;
  pairs.normalize();
  return pairs;
}

ShardedSelfJoinResult run_chunked(const Dataset& d, double eps, int shards,
                                  ShardSchedule schedule, int chunklets = 0,
                                  std::uint64_t max_buffer_pairs = 1ULL
                                                                   << 24) {
  ShardedSelfJoinOptions opt;
  opt.shards = shards;
  opt.schedule = schedule;
  opt.chunklets = chunklets;
  opt.max_buffer_pairs = max_buffer_pairs;
  return ShardedGpuSelfJoin(opt).run(d, eps);
}

class ShardStealParity : public ::testing::TestWithParam<int> {};

TEST_P(ShardStealParity, AllSchedulesMatchGpuByteExactly) {
  const auto d = datagen::ippp(1500, 2, 16.0, 967);
  const auto want = run_gpu(d, 0.4);
  for (const ShardSchedule schedule :
       {ShardSchedule::kStatic, ShardSchedule::kSerial,
        ShardSchedule::kConcurrent}) {
    auto r = run_chunked(d, 0.4, GetParam(), schedule);
    r.pairs.normalize();
    ASSERT_EQ(r.pairs.size(), want.size())
        << "shards=" << GetParam() << " schedule="
        << static_cast<int>(schedule);
    EXPECT_TRUE(r.pairs.pairs() == want.pairs())
        << "shards=" << GetParam() << " schedule="
        << static_cast<int>(schedule);
  }
}

TEST_P(ShardStealParity, StaticAndStealAgreeRawInEveryMode) {
  const auto d = datagen::uniform(900, 2, 0.0, 12.0, 971);
  // RAW outputs (no normalization): the chunklet-order merge must be
  // schedule- and assignment-independent.
  auto a = run_chunked(d, 0.8, GetParam(), ShardSchedule::kStatic);
  auto b = run_chunked(d, 0.8, GetParam(), ShardSchedule::kSerial);
  auto c = run_chunked(d, 0.8, GetParam(), ShardSchedule::kConcurrent);
  if (fault::enabled()) {
    // Ambient injection (the SJ_FAULTS chaos sweep): the injector's draw
    // counters advance across runs, so overflow splits land differently
    // per schedule and the raw batch order legitimately differs. Only
    // the content contract applies then.
    a.pairs.normalize();
    b.pairs.normalize();
    c.pairs.normalize();
  }
  EXPECT_TRUE(a.pairs.pairs() == b.pairs.pairs());
  EXPECT_TRUE(a.pairs.pairs() == c.pairs.pairs());

  // Count and histogram modes: same totals, element-identical histogram.
  ShardedSelfJoinOptions opt;
  opt.shards = GetParam();
  opt.chunklets = 4 * GetParam();
  opt.mode = ResultMode::kCountOnly;
  opt.schedule = ShardSchedule::kSerial;
  const auto count = ShardedGpuSelfJoin(opt).run(d, 0.8);
  EXPECT_EQ(count.total_pairs, a.pairs.size());
  opt.mode = ResultMode::kHistogram;
  const auto hist_steal = ShardedGpuSelfJoin(opt).run(d, 0.8);
  opt.schedule = ShardSchedule::kStatic;
  const auto hist_static = ShardedGpuSelfJoin(opt).run(d, 0.8);
  EXPECT_EQ(hist_steal.total_pairs, a.pairs.size());
  EXPECT_TRUE(hist_steal.histogram == hist_static.histogram);
  const std::uint64_t hist_sum =
      std::accumulate(hist_steal.histogram.begin(),
                      hist_steal.histogram.end(), std::uint64_t{0});
  EXPECT_EQ(hist_sum, a.pairs.size());
}

TEST_P(ShardStealParity, JoinFacetHonoursChunkletKnob) {
  const auto q = datagen::ippp(500, 2, 8.0, 977);
  const auto data = datagen::uniform(800, 2, 0.0, 8.0, 983);
  const auto& registry = api::BackendRegistry::instance();
  auto want = registry.at("gpu").join(q, data, 0.35).pairs;
  want.normalize();

  api::RunConfig config;
  config.extra["shards"] = std::to_string(GetParam());
  config.extra["schedule"] = "steal";
  config.extra["chunklets"] = std::to_string(6 * GetParam());
  auto got = registry.at("gpu_shard").join(q, data, 0.35, config).pairs;
  got.normalize();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(got.pairs() == want.pairs());
}

INSTANTIATE_TEST_SUITE_P(Counts, ShardStealParity,
                         ::testing::Values(1, 2, 3, 7));

// ---------------------------------------------------- stealing pressure

// Adversarial skew for the stealing scheduler: the population proxy
// prices a cell by its +-1 LINEARIZED neighbours, but true 2D work spans
// the 3x3 SPATIAL window. A 1D-like string of cells (linear neighbours
// == spatial neighbours, proxy accurate) next to a compact 2D block
// (proxy underprices ~3x) gives the device group seeded with the block
// ~3x the true work of its proxy share — a STRUCTURAL imbalance that
// survives any uniform slowdown (sanitizers, loaded machines), unlike
// timing jitter on near-balanced clocks.
Dataset proxy_blind_skew() {
  std::vector<double> pts;
  const double w = 0.6;  // one grid cell at eps = 0.6
  // 40 points per blob, compact (all within one cell): dense enough that
  // a chunklet's kernel work outweighs its fixed re-arm overhead, so the
  // imbalance shows through even when instrumentation (TSan) inflates
  // that overhead.
  auto blob = [&](double cx, double cy) {
    for (int i = 0; i < 40; ++i) {
      // Deterministic in-cell scatter, no two points coincident.
      pts.push_back(cx + 0.01 * (i % 5));
      pts.push_back(cy + 0.01 * (i / 5));
    }
  };
  // String: 60 cells along y = 0.
  for (int i = 0; i < 60; ++i) blob(i * w + 0.1, 0.1);
  // Block: 8 x 8 cells, far from the string. Same per-cell population as
  // the string — the proxy prices both identically — but each block cell
  // has 8 populated spatial neighbours to the string's 2, i.e. ~3x the
  // true candidate work per proxy unit.
  for (int bx = 0; bx < 8; ++bx) {
    for (int by = 0; by < 8; ++by) {
      blob(bx * w + 0.1, 50.0 + by * w + 0.1);
    }
  }
  return Dataset(2, std::move(pts), "proxy-blind-skew");
}

TEST(ShardSteal, SkewedDataForcesStealsAndStaysDeterministic) {
  // Proxy-blind skew with many tiny chunklets: the statically seeded
  // deques are structurally imbalanced, so the early finishers must
  // steal. A tiny result buffer keeps overflow splits interleaving with
  // the steals.
  const auto d = proxy_blind_skew();
  const auto want = run_gpu(d, 0.6);
  auto a = run_chunked(d, 0.6, 4, ShardSchedule::kSerial,
                       /*chunklets=*/48, /*max_buffer_pairs=*/4096);
  auto b = run_chunked(d, 0.6, 4, ShardSchedule::kSerial,
                       /*chunklets=*/48, /*max_buffer_pairs=*/4096);
  auto norm = a.pairs;
  norm.normalize();
  ASSERT_EQ(norm.size(), want.size());
  EXPECT_TRUE(norm.pairs() == want.pairs());
  // Determinism is a property of the OUTPUT, not the schedule: the two
  // runs may steal differently, but the merged bytes must match. (Under
  // the ambient SJ_FAULTS sweep the injector's draw counters advance
  // across runs, so split patterns — and the raw order — may differ;
  // only the content contract applies then.)
  if (fault::enabled()) {
    a.pairs.normalize();
    b.pairs.normalize();
  }
  EXPECT_TRUE(a.pairs.pairs() == b.pairs.pairs());

  EXPECT_EQ(a.shard.chunklets_total, 48u);
  std::uint64_t run_total = 0;
  std::uint64_t stolen_total = 0;
  for (const ShardStats& s : a.shard.per_shard) {
    run_total += s.chunklets;
    stolen_total += s.stolen;
    EXPECT_GE(s.seconds, s.steal_seconds);
  }
  EXPECT_EQ(run_total, a.shard.chunklets_total);
  EXPECT_EQ(stolen_total, a.shard.chunklets_stolen);

  // Stealing itself is a timing phenomenon: a device steals only when
  // its deque drains while another still holds work. On a heavily loaded
  // machine scheduler jitter can flatten the equal-weight chunklets into
  // a lockstep drain, so a single run may legitimately finish steal-free
  // — but across several runs on this skew the early finishers must
  // steal at least once, or the scheduler has stopped stealing.
  std::uint64_t stolen = a.shard.chunklets_stolen + b.shard.chunklets_stolen;
  for (int attempt = 0; attempt < 4 && stolen == 0; ++attempt) {
    stolen += run_chunked(d, 0.6, 4, ShardSchedule::kSerial,
                          /*chunklets=*/48, /*max_buffer_pairs=*/4096)
                  .shard.chunklets_stolen;
  }
  EXPECT_GT(stolen, 0u) << "no chunklet was ever stolen across 6 runs";
}

TEST(ShardSteal, BalanceStatsExposeChunkletCounters) {
  const auto d = datagen::uniform(600, 2, 0.0, 20.0, 997);
  const auto& backend = api::BackendRegistry::instance().at("gpu_shard");
  api::RunConfig config;
  config.extra["shards"] = "3";
  config.extra["schedule"] = "steal";
  config.extra["chunklets"] = "12";
  const auto r = backend.run(d, 1.0, config);
  EXPECT_EQ(r.stats.native_value("shards"), 3.0);
  EXPECT_EQ(r.stats.native_value("schedule_concurrent"), 0.0);
  EXPECT_EQ(r.stats.native_value("schedule_static"), 0.0);
  EXPECT_EQ(r.stats.native_value("chunklets"), 12.0);
  EXPECT_EQ(r.stats.native_value("plan_measured"), 0.0);
  double chunklets = 0.0;
  for (int s = 0; s < 3; ++s) {
    const std::string p = "shard" + std::to_string(s) + "_";
    chunklets += r.stats.native_value(p + "chunklets");
    EXPECT_GE(r.stats.native_value(p + "chunklets"),
              r.stats.native_value(p + "stolen"));
    EXPECT_GE(r.stats.native_value(p + "steal_seconds"), 0.0);
  }
  EXPECT_EQ(chunklets, 12.0);
}

// --------------------------------------------------------- measured plan

TEST(ShardSteal, MeasuredPlanRoundTripsThroughCacheWithIdenticalOutput) {
  const std::string path = ::testing::TempDir() + "sj_measured_plan.txt";
  std::remove(path.c_str());
  const auto d = datagen::ippp(1200, 2, 12.0, 1009);
  const auto want = run_gpu(d, 0.5);

  // First run plans from the proxy and persists measured per-cell counts.
  ShardedSelfJoinOptions opt;
  opt.shards = 3;
  opt.schedule = ShardSchedule::kSerial;
  opt.plan_cache = path;
  auto first = ShardedGpuSelfJoin(opt).run(d, 0.5);
  EXPECT_FALSE(first.shard.measured_plan);

  // Second run re-plans from the measured counts; the chunklet boundaries
  // move (so the raw merge order may legally differ) but the pair SET
  // must still match the single-device engine exactly.
  opt.plan = ShardPlanMode::kMeasured;
  auto second = ShardedGpuSelfJoin(opt).run(d, 0.5);
  EXPECT_TRUE(second.shard.measured_plan);
  first.pairs.normalize();
  second.pairs.normalize();
  EXPECT_TRUE(first.pairs.pairs() == second.pairs.pairs());
  EXPECT_TRUE(second.pairs.pairs() == want.pairs());

  // A different eps is a different join: the cache must miss and fall
  // back to the proxy.
  auto other = ShardedGpuSelfJoin(opt).run(d, 0.45);
  EXPECT_FALSE(other.shard.measured_plan);
  std::remove(path.c_str());
}

TEST(ShardSteal, MeasuredPlanWorksInCountMode) {
  // Count mode has no per-point counts to persist; the engine spreads
  // per-chunklet totals over the planning weights instead. The re-planned
  // run must still be exact.
  const std::string path = ::testing::TempDir() + "sj_measured_count.txt";
  std::remove(path.c_str());
  const auto d = datagen::uniform(700, 2, 0.0, 10.0, 1013);
  ShardedSelfJoinOptions opt;
  opt.shards = 3;
  opt.mode = ResultMode::kCountOnly;
  opt.schedule = ShardSchedule::kSerial;
  opt.plan_cache = path;
  const auto first = ShardedGpuSelfJoin(opt).run(d, 0.7);
  opt.plan = ShardPlanMode::kMeasured;
  const auto second = ShardedGpuSelfJoin(opt).run(d, 0.7);
  EXPECT_TRUE(second.shard.measured_plan);
  EXPECT_EQ(first.total_pairs, second.total_pairs);
  std::remove(path.c_str());
}

// --------------------------------------------------------------- knobs

TEST(ShardSteal, KnobValidation) {
  const auto& backend = api::BackendRegistry::instance().at("gpu_shard");
  const auto d = datagen::uniform(50, 2, 0.0, 5.0, 1019);

  api::RunConfig config;
  config.extra["chunklets"] = "-1";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.extra["plan"] = "psychic";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  // measured without a cache path cannot work; fail fast, not silently.
  config.extra["plan"] = "measured";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.extra["schedule"] = "static";
  config.extra["chunklets"] = "0";  // 0 = auto is valid
  EXPECT_EQ(backend.run(d, 1.0, config).pairs.size(),
            run_gpu(d, 1.0).size());
}

}  // namespace
}  // namespace sj
