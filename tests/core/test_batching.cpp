// Batching scheme (Section V-A): plan sizing, the >= 3 batch minimum,
// overflow splitting, and exactness under severe memory pressure.
#include "core/batcher.hpp"

#include <gtest/gtest.h>

#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "common/fault.hpp"
#include "core/device_view.hpp"
#include "core/grid_index.hpp"
#include "core/self_join.hpp"

namespace sj {
namespace {

TEST(BatchPlan, MinimumThreeBatches) {
  // Tiny estimate: volume alone would need 1 batch, the paper forces 3.
  const auto plan = plan_batches(100, 100000, 3, 1 << 20, 1.25);
  EXPECT_EQ(plan.num_batches, 3u);
}

TEST(BatchPlan, VolumeDrivenBatchCount) {
  // 10M estimated pairs, 1M-pair buffers, 1.25 safety -> ceil(12.5M/1M).
  const auto plan = plan_batches(10'000'000, 100000, 3, 1'000'000, 1.25);
  EXPECT_EQ(plan.num_batches, 13u);
}

TEST(BatchPlan, NeverMoreBatchesThanQueries) {
  const auto plan = plan_batches(1'000'000, 5, 3, 10, 1.0);
  EXPECT_EQ(plan.num_batches, 5u);
}

TEST(BatchPlan, SafetyFactorPadsEstimate) {
  const auto a = plan_batches(1000, 100000, 1, 100, 1.0);
  const auto b = plan_batches(1000, 100000, 1, 100, 2.0);
  EXPECT_EQ(a.num_batches, 10u);
  EXPECT_EQ(b.num_batches, 20u);
}

TEST(Batching, ManyBatchesProduceExactResult) {
  const auto d = datagen::uniform(3000, 2, 0.0, 100.0, 5);
  GpuSelfJoinOptions opt;
  opt.min_batches = 17;  // force an unusual batch count
  auto got = GpuSelfJoin(opt).run(d, 3.0);
  const auto want = brute::self_join(d, 3.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
  EXPECT_GE(got.stats.batch.batches_run, 17u);
}

TEST(Batching, TinyBuffersForceOverflowSplitsButStayExact) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 7);
  GpuSelfJoinOptions opt;
  // A deliberately absurd undersized buffer: ~64 pairs per stream. The
  // estimator will undershoot per-batch peaks and the overflow-split path
  // must recover exactly.
  opt.max_buffer_pairs = 64;
  opt.safety = 0.01;  // sabotage the estimate too
  auto got = GpuSelfJoin(opt).run(d, 2.0);
  const auto want = brute::self_join(d, 2.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(Batching, OverflowRetriesAreCounted) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 9);
  GpuSelfJoinOptions opt;
  opt.max_buffer_pairs = 64;
  opt.safety = 0.01;
  const auto r = GpuSelfJoin(opt).run(d, 2.0);
  EXPECT_GT(r.stats.batch.overflow_retries, 0u);
}

TEST(Batching, SmallDeviceMemoryStillExact) {
  // A 2 MiB device: data + index + buffers must all fit, exercising the
  // capacity-aware buffer sizing.
  const auto d = datagen::uniform(4000, 2, 0.0, 100.0, 11);
  GpuSelfJoinOptions opt;
  opt.device = gpu::DeviceSpec::tiny(2 << 20);
  auto got = GpuSelfJoin(opt).run(d, 1.0);
  const auto want = brute::self_join(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(Batching, ThrowsWhenDatasetItselfExceedsDevice) {
  const auto d = datagen::uniform(100000, 4, 0.0, 100.0, 13);
  GpuSelfJoinOptions opt;
  opt.device = gpu::DeviceSpec::tiny(1 << 20);  // 1 MiB: data cannot fit
  EXPECT_THROW(GpuSelfJoin(opt).run(d, 1.0), gpu::DeviceOutOfMemory);
}

TEST(Batching, TransferAccountingIsConsistent) {
  const auto d = datagen::uniform(3000, 2, 0.0, 100.0, 15);
  GpuSelfJoinOptions opt;
  auto r = GpuSelfJoin(opt).run(d, 2.0);
  // Every result pair crossed the link exactly once.
  EXPECT_EQ(r.stats.batch.bytes_to_host, r.pairs.size() * sizeof(Pair));
  EXPECT_GT(r.stats.batch.modeled_transfer_seconds, 0.0);
}

TEST(Batching, StreamCountDoesNotChangeResult) {
  const auto d = datagen::uniform(2000, 3, 0.0, 100.0, 17);
  ResultSet reference;
  for (int streams : {1, 2, 3, 6}) {
    GpuSelfJoinOptions opt;
    opt.num_streams = streams;
    auto r = GpuSelfJoin(opt).run(d, 3.0);
    r.pairs.normalize();
    if (streams == 1) {
      reference = std::move(r.pairs);
    } else {
      EXPECT_TRUE(ResultSet::equal_normalized(reference, r.pairs))
          << streams << " streams";
    }
  }
}

TEST(Batching, AssemblyOrderIsDeterministicAcrossRuns) {
  // Overflow splits used to be appended from whichever stream hit them
  // first, making the raw (non-normalized) result order nondeterministic.
  // Assembly now merges segments by batch key: two runs with overflow
  // retries on 4 streams must produce byte-identical raw pair vectors.
  const auto d = datagen::ippp(1500, 2, 32.0, 23);
  GpuSelfJoinOptions opt;
  opt.num_streams = 4;
  opt.max_buffer_pairs = 64;  // force overflow splits
  opt.safety = 0.01;
  auto first = GpuSelfJoin(opt).run(d, 1.0);
  auto second = GpuSelfJoin(opt).run(d, 1.0);
  EXPECT_GT(first.stats.batch.overflow_retries, 0u);
  if (fault::enabled()) {
    // Ambient injection (the SJ_FAULTS chaos sweep) gives the two runs
    // different fault placements — the injector's draw counters advance
    // across runs — so their split patterns, and hence the raw segment
    // order, legitimately differ. Only the content contract applies.
    first.pairs.normalize();
    second.pairs.normalize();
  }
  EXPECT_EQ(first.pairs.pairs(), second.pairs.pairs());
}

TEST(Batching, ZeroEstimateWithOnePairBufferStaysExact) {
  // Regression: estimator undershoot taken to the limit. A plan built
  // from estimated_total == 0 with a 1-pair buffer (the self pair of any
  // singleton barely fits) must recover through the overflow-split path
  // and stay exact — sparse isolated points first, a dense clump last so
  // the strided batches mix both regimes.
  Dataset d(2);
  for (int i = 0; i < 48; ++i) {
    double p[2] = {10.0 * i, 0.0};
    d.push_back(p);
  }
  const double eps = 1.0;
  const auto want = brute::self_join(d, eps);
  ASSERT_GT(want.pairs.size(), 0u);

  GpuSelfJoinOptions opt;
  opt.num_streams = 3;
  const BatchPlan plan = plan_batches(/*estimated_total=*/0, d.size(),
                                      opt.min_batches, /*buffer_pairs=*/1,
                                      opt.safety);
  GridIndex index(d, eps);
  gpu::GlobalMemoryArena arena(opt.device);
  DeviceGrid dev(arena, d, index);
  Batcher batcher(arena, opt.device, opt.num_streams, opt.block_size);
  AtomicWork work;
  BatchRunStats stats;
  auto got = batcher.run(dev.view(), false, plan, &work, &stats);

  EXPECT_GT(stats.overflow_retries, 0u);
  EXPECT_TRUE(ResultSet::equal_normalized(got, want.pairs));
}

TEST(Batching, FatalOverflowRequiresUnsplittableSinglePoint) {
  // fatal_overflow must only fire when a SINGLE point's neighbourhood
  // exceeds the buffer: add a duplicate pair so two singleton batches
  // each produce 2 pairs against a 1-pair buffer.
  Dataset d(2);
  for (int i = 0; i < 16; ++i) {
    double p[2] = {10.0 * i, 0.0};
    d.push_back(p);
  }
  double dup[2] = {0.0, 0.0};
  d.push_back(dup);
  const double eps = 1.0;
  GridIndex index(d, eps);
  GpuSelfJoinOptions opt;
  gpu::GlobalMemoryArena arena(opt.device);
  DeviceGrid dev(arena, d, index);
  Batcher batcher(arena, opt.device, opt.num_streams, opt.block_size);
  const BatchPlan plan = plan_batches(0, d.size(), opt.min_batches, 1,
                                      opt.safety);
  AtomicWork work;
  EXPECT_THROW(batcher.run(dev.view(), false, plan, &work, nullptr),
               gpu::DeviceOutOfMemory);
}

TEST(Batching, BatchResultsArriveSortedPerBatch) {
  // The paper sorts each batch's key/value pairs before transfer; with a
  // single batch-sized run the final buffer must be sorted.
  const auto d = datagen::uniform(500, 2, 0.0, 50.0, 19);
  GpuSelfJoinOptions opt;
  opt.min_batches = 3;
  const auto r = GpuSelfJoin(opt).run(d, 1.0);
  // Within the appended result, each batch segment is sorted; globally
  // normalising must not lose pairs.
  auto copy = r.pairs;
  copy.normalize();
  EXPECT_EQ(copy.size(), r.pairs.size());  // no duplicates across batches
}

}  // namespace
}  // namespace sj
