// The sharded multi-device engine (gpu_shard).
//
// Exactness rests on two invariants proved here at the unit level and
// end-to-end:
//   * the slice invariant — every candidate range of an owned cell
//     remaps into local slots that hold exactly the same global data
//     (owned span first, merged halo intervals after), and
//   * the ownership rule — each cell (query group) is owned by exactly
//     one shard, so shard outputs are disjoint and concatenate with no
//     dedup pass.
// End-to-end, gpu_shard must produce BYTE-IDENTICAL normalized pair sets
// to the single-device gpu backend for every shard count, including
// shard-boundary-straddling eps, overflow-stressed runs (run-twice
// determinism), a single giant cell, and the empty/eps=0/duplicate
// battery. Suites are named Shard* so the ThreadSanitizer CI job's
// filter picks them up (the concurrent schedule exercises K overlapped
// pipelines).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/fault.hpp"
#include "core/self_join.hpp"
#include "core/shard_engine.hpp"
#include "core/shard_plan.hpp"

namespace sj {
namespace {

// ------------------------------------------------------------- planning

TEST(ShardPlan, BoundariesBalanceWeights) {
  const std::vector<std::uint64_t> weights{1, 1, 1, 1, 100, 1, 1, 1};
  const auto bounds = plan_shard_boundaries(weights, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), weights.size());
  // The heavy cell must not share a shard with the whole tail: its shard
  // ends right after it.
  bool heavy_isolated = false;
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    if (bounds[s] <= 4 && 4 < bounds[s + 1]) {
      heavy_isolated = bounds[s + 1] == 5;
    }
  }
  EXPECT_TRUE(heavy_isolated);
}

TEST(ShardPlan, ShardCountClampsToUnits) {
  const std::vector<std::uint64_t> weights{3, 3};
  const auto bounds = plan_shard_boundaries(weights, 7);
  EXPECT_EQ(bounds.size(), 3u);  // 2 effective shards
  EXPECT_EQ(plan_shard_boundaries({}, 4), (std::vector<std::uint32_t>{0, 0}));
  EXPECT_EQ(plan_shard_boundaries({5}, 1),
            (std::vector<std::uint32_t>{0, 1}));
}

TEST(ShardPlan, SliceRemapsOwnedAndHaloRanges) {
  // Three cells with slots [0,2) [2,5) [5,9); cell 1 is owned. Its ranges
  // reference itself plus both neighbours (one range straddles the owned
  // boundary on each side).
  const std::vector<CandidateRange> ranges{{0, 5, 0}, {2, 9, 1}};
  const std::vector<std::uint64_t> offsets{0, 2};
  const std::vector<std::uint64_t> weights{42};
  const ShardSlice s =
      make_shard_slice(ranges, offsets, weights, 0, 1, /*owned=*/2, 5);

  EXPECT_EQ(s.owned_points(), 3u);
  ASSERT_EQ(s.halo.size(), 2u);  // [0,2) and [5,9)
  EXPECT_EQ(s.halo[0].begin, 0u);
  EXPECT_EQ(s.halo[0].end, 2u);
  EXPECT_EQ(s.halo[0].local_begin, 3u);
  EXPECT_EQ(s.halo[1].begin, 5u);
  EXPECT_EQ(s.halo[1].end, 9u);
  EXPECT_EQ(s.halo[1].local_begin, 5u);
  EXPECT_EQ(s.local_points(), 9u);
  EXPECT_EQ(s.weight, 42u);

  // Range {0,5} splits into the halo piece [0,2) -> local [3,5) and the
  // owned piece [2,5) -> local [0,3). Range {2,9} into owned [0,3) and
  // halo [5,9) -> local [5,9), keeping its both flag.
  ASSERT_EQ(s.offsets, (std::vector<std::uint64_t>{0, 4}));
  ASSERT_EQ(s.ranges.size(), 4u);
  EXPECT_EQ(s.ranges[0].begin, 3u);
  EXPECT_EQ(s.ranges[0].end, 5u);
  EXPECT_EQ(s.ranges[0].both, 0u);
  EXPECT_EQ(s.ranges[1].begin, 0u);
  EXPECT_EQ(s.ranges[1].end, 3u);
  EXPECT_EQ(s.ranges[2].begin, 0u);
  EXPECT_EQ(s.ranges[2].end, 3u);
  EXPECT_EQ(s.ranges[2].both, 1u);
  EXPECT_EQ(s.ranges[3].begin, 5u);
  EXPECT_EQ(s.ranges[3].end, 9u);
  EXPECT_EQ(s.ranges[3].both, 1u);

  // to_local round-trips every referenced slot.
  EXPECT_EQ(s.to_local(2), 0u);
  EXPECT_EQ(s.to_local(4), 2u);
  EXPECT_EQ(s.to_local(0), 3u);
  EXPECT_EQ(s.to_local(8), 8u);
  EXPECT_THROW(s.to_local(9), std::out_of_range);
}

TEST(ShardPlan, SliceWithEmptyOwnedSpanIsAllHalo) {
  // The join mode: groups own no data slots.
  const std::vector<CandidateRange> ranges{{4, 7, 0}, {6, 10, 0}};
  const std::vector<std::uint64_t> offsets{0, 1, 2};
  const std::vector<std::uint64_t> weights{1, 2};
  const ShardSlice s = make_shard_slice(ranges, offsets, weights, 0, 2, 0, 0);
  EXPECT_EQ(s.owned_points(), 0u);
  ASSERT_EQ(s.halo.size(), 1u);  // [4,7) and [6,10) merge into [4,10)
  EXPECT_EQ(s.halo[0].begin, 4u);
  EXPECT_EQ(s.halo[0].end, 10u);
  EXPECT_EQ(s.local_points(), 6u);
  EXPECT_EQ(s.ranges[0].begin, 0u);
  EXPECT_EQ(s.ranges[0].end, 3u);
  EXPECT_EQ(s.ranges[1].begin, 2u);
  EXPECT_EQ(s.ranges[1].end, 6u);
  EXPECT_EQ(s.weight, 3u);
}

// --------------------------------------------------- end-to-end parity

ResultSet run_gpu(const Dataset& d, double eps) {
  auto pairs = api::BackendRegistry::instance().at("gpu").run(d, eps).pairs;
  pairs.normalize();
  return pairs;
}

ResultSet run_shard(const Dataset& d, double eps, int shards,
                    ShardSchedule schedule = ShardSchedule::kConcurrent,
                    bool unicomp = false,
                    std::uint64_t max_buffer_pairs = 1ULL << 24) {
  ShardedSelfJoinOptions opt;
  opt.shards = shards;
  opt.schedule = schedule;
  opt.unicomp = unicomp;
  opt.max_buffer_pairs = max_buffer_pairs;
  auto r = ShardedGpuSelfJoin(opt).run(d, eps);
  r.pairs.normalize();
  return r.pairs;
}

/// Byte-identical normalized pair sets (stronger than set equality: the
/// exact vectors must match).
void expect_identical(const ResultSet& got, const ResultSet& want,
                      const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  EXPECT_TRUE(got.pairs() == want.pairs()) << label;
}

class ShardParity : public ::testing::TestWithParam<int> {};

TEST_P(ShardParity, MatchesGpuOnUniformData) {
  const auto d = datagen::uniform(600, 2, 0.0, 20.0, 901);
  const auto want = run_gpu(d, 1.1);
  expect_identical(run_shard(d, 1.1, GetParam()), want,
                   "uniform shards=" + std::to_string(GetParam()));
}

TEST_P(ShardParity, MatchesGpuOnClusteredSkew) {
  const auto d = datagen::ippp(1500, 2, 16.0, 907);
  const auto want = run_gpu(d, 0.4);
  expect_identical(run_shard(d, 0.4, GetParam()), want,
                   "ippp shards=" + std::to_string(GetParam()));
}

TEST_P(ShardParity, MatchesGpuUnicompAndHigherDims) {
  const auto d = datagen::uniform(400, 3, 0.0, 8.0, 913);
  const auto want = run_gpu(d, 0.9);
  expect_identical(run_shard(d, 0.9, GetParam(), ShardSchedule::kConcurrent,
                             /*unicomp=*/true),
                   want, "unicomp shards=" + std::to_string(GetParam()));
}

TEST_P(ShardParity, BoundaryStraddlingEpsKeepsCrossShardPairs) {
  // Points laid out on a line, one per grid cell, eps exactly reaching
  // the neighbours: EVERY pair crosses a cell boundary, so any shard
  // boundary splits neighbour pairs across devices — the halo must carry
  // them all.
  Dataset d(1);
  for (int i = 0; i < 64; ++i) {
    const double x = static_cast<double>(i);
    d.push_back(&x);
  }
  const auto want = run_gpu(d, 1.0);
  ASSERT_GE(want.size(), 64u + 2u * 63u);  // self pairs + both orders
  expect_identical(run_shard(d, 1.0, GetParam()), want,
                   "line shards=" + std::to_string(GetParam()));
}

TEST_P(ShardParity, JoinMatchesGpuBackend) {
  const auto q = datagen::ippp(500, 2, 8.0, 919);
  const auto data = datagen::uniform(800, 2, 0.0, 8.0, 921);
  const auto& registry = api::BackendRegistry::instance();
  auto want = registry.at("gpu").join(q, data, 0.35).pairs;
  want.normalize();

  api::RunConfig config;
  config.extra["shards"] = std::to_string(GetParam());
  auto got = registry.at("gpu_shard").join(q, data, 0.35, config).pairs;
  got.normalize();
  expect_identical(got, want, "join shards=" + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Counts, ShardParity, ::testing::Values(1, 2, 3, 7));

// ------------------------------------------------------- special shapes

TEST(ShardEngine, SingleGiantCellSplitsInsideOneShard) {
  // Every point in ONE grid cell: only one shard can own it; the others
  // stay idle and the owning shard's pipeline splits the oversized cell
  // by point subranges.
  const auto d = datagen::uniform(300, 2, 0.0, 0.5, 931);
  const auto want = run_gpu(d, 1.0);
  ShardedSelfJoinOptions opt;
  opt.shards = 4;
  auto r = ShardedGpuSelfJoin(opt).run(d, 1.0);
  EXPECT_EQ(r.shard.shards, 1u);  // clamped to the non-empty cell count
  r.pairs.normalize();
  expect_identical(r.pairs, want, "giant cell");
}

TEST(ShardEngine, EmptyAndTinyInputs) {
  ShardedSelfJoinOptions opt;
  opt.shards = 4;
  const ShardedGpuSelfJoin join(opt);
  EXPECT_TRUE(join.run(Dataset(2), 1.0).pairs.empty());

  Dataset one(2, {1.0, 2.0});
  auto r = join.run(one, 0.5);
  ASSERT_EQ(r.pairs.size(), 1u);
  EXPECT_EQ(r.pairs.pairs()[0], (Pair{0, 0}));
}

TEST(ShardEngine, EpsZeroAndAllDuplicates) {
  Dataset d(2);
  for (int i = 0; i < 40; ++i) {
    const double p[2] = {3.0, -1.0};
    d.push_back(p);
  }
  const auto want = run_gpu(d, 0.0);
  ASSERT_EQ(want.size(), 40u * 40u);
  expect_identical(run_shard(d, 0.0, 3), want, "duplicates eps=0");
}

TEST(ShardEngine, OverflowStressIsDeterministicRunTwice) {
  // A buffer far below the result volume forces overflow splits in every
  // shard pipeline; the output must be byte-identical across runs and
  // match the unsharded engine.
  const auto d = datagen::ippp(900, 2, 8.0, 937);
  const auto want = run_gpu(d, 0.6);
  const auto a = run_shard(d, 0.6, 3, ShardSchedule::kConcurrent, false,
                           /*max_buffer_pairs=*/256);
  const auto b = run_shard(d, 0.6, 3, ShardSchedule::kConcurrent, false,
                           /*max_buffer_pairs=*/256);
  expect_identical(a, want, "overflow stress vs gpu");
  EXPECT_TRUE(a.pairs() == b.pairs()) << "run-twice determinism";
}

TEST(ShardEngine, SerialAndConcurrentSchedulesAgreeByteExactly) {
  const auto d = datagen::ippp(1200, 2, 12.0, 941);
  ShardedSelfJoinOptions opt;
  opt.shards = 4;
  opt.schedule = ShardSchedule::kSerial;
  auto serial = ShardedGpuSelfJoin(opt).run(d, 0.5);
  opt.schedule = ShardSchedule::kConcurrent;
  auto conc = ShardedGpuSelfJoin(opt).run(d, 0.5);
  // RAW outputs (no normalization): the shard-order merge must be
  // schedule-independent. Under the ambient SJ_FAULTS sweep the
  // injector's draw counters advance across the two runs, so OOM splits
  // land differently and the raw batch order legitimately differs —
  // only the content contract applies then.
  if (fault::enabled()) {
    serial.pairs.normalize();
    conc.pairs.normalize();
  }
  EXPECT_TRUE(serial.pairs.pairs() == conc.pairs.pairs());
}

TEST(ShardEngine, BalanceAndHaloStatsAreReported) {
  const auto d = datagen::ippp(2000, 2, 16.0, 947);
  ShardedSelfJoinOptions opt;
  opt.shards = 4;
  opt.schedule = ShardSchedule::kSerial;
  const auto r = ShardedGpuSelfJoin(opt).run(d, 0.4);
  ASSERT_EQ(r.shard.shards, 4u);
  ASSERT_EQ(r.shard.per_shard.size(), 4u);
  std::uint64_t points = 0;
  std::uint64_t pairs = 0;
  std::uint64_t weight_total = 0;
  std::uint64_t weight_max = 0;
  for (const ShardStats& s : r.shard.per_shard) {
    EXPECT_GT(s.units, 0u);
    EXPECT_GT(s.owned_points, 0u);
    points += s.owned_points;
    pairs += s.pairs;
    weight_total += s.weight;
    weight_max = std::max(weight_max, s.weight);
  }
  EXPECT_EQ(points, d.size());          // owned spans partition the slots
  EXPECT_EQ(pairs, r.pairs.size());     // disjoint shard outputs
  // The weighted partition keeps the heaviest device under a 2x share of
  // the average even on strongly clustered data.
  EXPECT_LT(static_cast<double>(weight_max),
            2.0 * static_cast<double>(weight_total) / 4.0);
  EXPECT_GE(r.shard.makespan_seconds, r.shard.common_seconds);
}

// ------------------------------------------------------------- options

TEST(ShardOptions, InvalidKnobsAreRejected) {
  ShardedSelfJoinOptions opt;
  opt.shards = 0;
  EXPECT_THROW(ShardedGpuSelfJoin{opt}, std::invalid_argument);
  opt = {};
  opt.layout = GridLayout::kLegacy;
  EXPECT_THROW(ShardedGpuSelfJoin{opt}, std::invalid_argument);
  opt = {};
  EXPECT_THROW(ShardedGpuSelfJoin(opt).run(Dataset(2), -1.0),
               std::invalid_argument);
}

TEST(ShardOptions, BackendKnobValidation) {
  const auto& backend = api::BackendRegistry::instance().at("gpu_shard");
  const auto d = datagen::uniform(50, 2, 0.0, 5.0, 953);

  api::RunConfig config;
  config.extra["shards"] = "0";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.extra["layout"] = "legacy";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.extra["schedule"] = "sometimes";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.extra["no_such_knob"] = "1";
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);
  config.extra.clear();
  config.threads = 2;
  EXPECT_THROW(backend.run(d, 1.0, config), std::invalid_argument);

  // kNN stays capability-gated off.
  EXPECT_THROW(
      api::BackendRegistry::instance().at("gpu_shard", api::Operation::kKnn),
      std::invalid_argument);
}

TEST(ShardOptions, ShardKnobsSelectScheduleAndCount) {
  const auto& backend = api::BackendRegistry::instance().at("gpu_shard");
  const auto d = datagen::uniform(400, 2, 0.0, 20.0, 959);
  api::RunConfig config;
  config.extra["shards"] = "3";
  config.extra["schedule"] = "serial";
  config.extra["streams"] = "2";
  const auto r = backend.run(d, 1.0, config);
  EXPECT_EQ(r.stats.native_value("shards"), 3.0);
  EXPECT_EQ(r.stats.native_value("schedule_concurrent"), 0.0);
  EXPECT_GT(r.stats.native_value("makespan_seconds"), 0.0);
  EXPECT_GT(r.stats.native_value("shard2_pairs"), 0.0);
}

}  // namespace
}  // namespace sj
