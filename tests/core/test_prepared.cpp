// PreparedJoin (core/prepared.hpp): the staged-once data image must
// answer joins and self-joins byte-identically to the one-shot engines,
// across repeated and concurrent calls, and must honor the deadline /
// cancellation checkpoints.
#include "core/prepared.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/datagen.hpp"
#include "core/join.hpp"
#include "core/self_join.hpp"
#include "core/snapshot.hpp"

namespace sj {
namespace {

TEST(PreparedJoin, JoinMatchesOneShotGpuJoinExactly) {
  const auto data = datagen::gaussian_mixture(900, 2, 5, 5.0, 0.0, 80.0, 7);
  const auto queries = datagen::uniform(400, 2, 0.0, 80.0, 8);
  const double eps = 1.8;

  auto oneshot = gpu_join(queries, data, eps);
  PreparedJoin prepared(data, eps);
  auto warm = prepared.run(queries, {});

  oneshot.pairs.normalize();
  warm.pairs.normalize();
  EXPECT_EQ(oneshot.pairs.pairs(), warm.pairs.pairs());
  EXPECT_EQ(oneshot.total_pairs, warm.total_pairs);
  // The build cost is paid at construction, not per run.
  EXPECT_EQ(warm.stats.index_build_seconds, 0.0);
  EXPECT_GT(prepared.index_build_seconds(), 0.0);
}

TEST(PreparedJoin, SelfJoinMatchesOneShotAcrossRepeatedCalls) {
  const auto data = datagen::uniform(1000, 2, 0.0, 40.0, 17);
  const double eps = 1.1;
  GpuSelfJoinOptions opt;
  opt.unicomp = true;
  auto oneshot = GpuSelfJoin(opt).run(data, eps);
  oneshot.pairs.normalize();

  PreparedJoin prepared(data, eps);
  // Repeated calls exercise the cached adjacency/estimate path; every
  // call must match the one-shot engine exactly.
  for (int rep = 0; rep < 3; ++rep) {
    auto r = prepared.self_join(opt);
    r.pairs.normalize();
    EXPECT_EQ(oneshot.pairs.pairs(), r.pairs.pairs()) << "rep " << rep;
    EXPECT_EQ(oneshot.total_pairs, r.total_pairs) << "rep " << rep;
  }
  // Both unicomp settings share the image but cache separately.
  GpuSelfJoinOptions plain;
  plain.unicomp = false;
  auto plain_oneshot = GpuSelfJoin(plain).run(data, eps);
  auto plain_warm = prepared.self_join(plain);
  plain_oneshot.pairs.normalize();
  plain_warm.pairs.normalize();
  EXPECT_EQ(plain_oneshot.pairs.pairs(), plain_warm.pairs.pairs());
}

TEST(PreparedJoin, ConcurrentRunsFromManyThreadsAgree) {
  const auto data = datagen::uniform(800, 2, 0.0, 30.0, 27);
  const auto queries = datagen::uniform(300, 2, 0.0, 30.0, 28);
  const double eps = 1.0;
  PreparedJoin prepared(data, eps);
  auto expected = gpu_join(queries, data, eps);
  expected.pairs.normalize();

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<GpuJoinResult> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { results[static_cast<std::size_t>(t)] =
                                      prepared.run(queries, {}); });
  }
  for (auto& th : threads) th.join();
  for (auto& r : results) {
    r.pairs.normalize();
    EXPECT_EQ(expected.pairs.pairs(), r.pairs.pairs());
  }
}

TEST(PreparedJoin, RestoreConstructorMatchesColdBuild) {
  const auto data = datagen::uniform(600, 2, 0.0, 20.0, 37);
  const double eps = 0.9;
  GridIndex index(data, eps);
  PreparedJoin cold(data, eps);
  PreparedJoin warm(data, std::move(index));
  const auto queries = datagen::uniform(200, 2, 0.0, 20.0, 38);
  auto a = cold.run(queries, {});
  auto b = warm.run(queries, {});
  a.pairs.normalize();
  b.pairs.normalize();
  EXPECT_EQ(a.pairs.pairs(), b.pairs.pairs());
  EXPECT_EQ(warm.index_build_seconds(), 0.0);
}

TEST(PreparedJoin, RestoreConstructorRejectsMismatchedIndex) {
  const auto data = datagen::uniform(300, 2, 0.0, 20.0, 47);
  const auto other = datagen::uniform(200, 2, 0.0, 20.0, 48);
  GridIndex index(other, 1.0);
  EXPECT_THROW(PreparedJoin(data, std::move(index)), std::invalid_argument);
}

TEST(PreparedJoin, ExpiredDeadlineAbortsTypedAndImageStaysServable) {
  const auto data = datagen::uniform(700, 2, 0.0, 25.0, 57);
  const auto queries = datagen::uniform(250, 2, 0.0, 25.0, 58);
  PreparedJoin prepared(data, 1.0);

  exec::ExecControl ctl;
  ctl.deadline = exec::Deadline::after_ms(0.0);
  GpuJoinOptions opt;
  opt.control = &ctl;
  EXPECT_THROW((void)prepared.run(queries, opt), exec::DeadlineExceeded);

  GpuSelfJoinOptions sopt;
  sopt.control = &ctl;
  EXPECT_THROW((void)prepared.self_join(sopt), exec::DeadlineExceeded);

  // The aborted queries must not have poisoned the shared image.
  auto expected = gpu_join(queries, data, 1.0);
  auto after = prepared.run(queries, {});
  expected.pairs.normalize();
  after.pairs.normalize();
  EXPECT_EQ(expected.pairs.pairs(), after.pairs.pairs());
}

TEST(PreparedJoin, CancelledTokenAbortsTyped) {
  const auto data = datagen::uniform(500, 2, 0.0, 25.0, 67);
  PreparedJoin prepared(data, 1.0);
  exec::CancelToken token;
  token.cancel();
  exec::ExecControl ctl;
  ctl.cancel = &token;
  GpuSelfJoinOptions opt;
  opt.control = &ctl;
  EXPECT_THROW((void)prepared.self_join(opt), exec::Cancelled);
}

TEST(PreparedJoin, MidRunCancellationFromSinkAbortsBetweenBatches) {
  // Trip the token from inside the result sink: the current batch
  // completes (cooperative checkpoints, nothing torn mid-kernel) and the
  // next checkpoint aborts with the typed error.
  const auto data = datagen::gaussian_mixture(2500, 2, 4, 3.0, 0.0, 50.0, 77);
  PreparedJoin prepared(data, 2.0);
  exec::CancelToken token;
  exec::ExecControl ctl;
  ctl.cancel = &token;
  GpuSelfJoinOptions opt;
  opt.mode = ResultMode::kSink;
  opt.sink = [&token](const Pair*, std::size_t) { token.cancel(); };
  opt.control = &ctl;
  opt.min_batches = 4;  // guarantee work remains after the first batch
  EXPECT_THROW((void)prepared.self_join(opt), exec::Cancelled);

  // Untouched queries on the same image still answer correctly.
  GpuSelfJoinOptions plain;
  auto r = prepared.self_join(plain);
  EXPECT_GT(r.total_pairs, 0u);
}

}  // namespace
}  // namespace sj
