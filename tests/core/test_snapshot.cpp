// Crash-safe index snapshot/restore (core/snapshot.hpp): round-trip
// fidelity, and — the robustness contract — that NO corrupt input can
// crash, hang, over-allocate or restore an inconsistent index: every
// failure mode degrades to nullopt with a reason string.
#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/datagen.hpp"
#include "core/self_join.hpp"

namespace sj {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sj_snap_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::vector<char> read_all(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void write_all(const std::string& p, const std::vector<char>& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotTest, RoundTripRestoresDatasetAndIndexExactly) {
  const auto d = datagen::gaussian_mixture(1500, 2, 5, 6.0, 0.0, 100.0, 11);
  const GridIndex index(d, 2.5);
  snapshot::save(path("a.snap"), d, index);

  std::string why;
  auto restored = snapshot::try_load(path("a.snap"), &why);
  ASSERT_TRUE(restored.has_value()) << why;
  EXPECT_EQ(restored->data.raw(), d.raw());  // bit-exact coordinates
  EXPECT_EQ(restored->data.dim(), d.dim());
  EXPECT_EQ(restored->index.eps(), index.eps());
  EXPECT_EQ(restored->index.num_points(), index.num_points());
  EXPECT_EQ(restored->index.num_nonempty_cells(),
            index.num_nonempty_cells());
}

TEST_F(SnapshotTest, RestoredIndexAnswersByteIdenticalSelfJoin) {
  const auto d = datagen::uniform(1200, 2, 0.0, 50.0, 23);
  const GridIndex index(d, 1.5);
  snapshot::save(path("b.snap"), d, index);
  auto restored = snapshot::try_load(path("b.snap"), nullptr);
  ASSERT_TRUE(restored.has_value());

  GpuSelfJoin join;
  auto cold = join.run(d, 1.5);
  auto warm = join.run(restored->data, 1.5);
  cold.pairs.normalize();
  warm.pairs.normalize();
  EXPECT_EQ(cold.pairs.pairs(), warm.pairs.pairs());
  EXPECT_EQ(cold.total_pairs, warm.total_pairs);
}

TEST_F(SnapshotTest, MissingFileFailsSoftly) {
  std::string why;
  EXPECT_FALSE(snapshot::try_load(path("nope.snap"), &why).has_value());
  EXPECT_NE(why.find("missing"), std::string::npos);
}

TEST_F(SnapshotTest, BadMagicFailsSoftly) {
  write_all(path("m.snap"), {'N', 'O', 'P', 'E', '1', '2', '3', '4',
                             0, 0, 0, 0});
  std::string why;
  EXPECT_FALSE(snapshot::try_load(path("m.snap"), &why).has_value());
  EXPECT_NE(why.find("magic"), std::string::npos);
}

TEST_F(SnapshotTest, EveryTruncationPointFailsSoftly) {
  const auto d = datagen::uniform(400, 3, 0.0, 30.0, 31);
  snapshot::save(path("t.snap"), d, GridIndex(d, 2.0));
  const auto bytes = read_all(path("t.snap"));
  ASSERT_GT(bytes.size(), 64u);
  // Chop the file at a spread of prefixes — header-only, mid-parts,
  // mid-coordinates. None may crash; all must return nullopt.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{7}, std::size_t{20}, std::size_t{28},
        bytes.size() / 4, bytes.size() / 2, bytes.size() - 1}) {
    write_all(path("t_cut.snap"),
              std::vector<char>(bytes.begin(),
                                bytes.begin() + static_cast<std::ptrdiff_t>(
                                                    keep)));
    std::string why;
    EXPECT_FALSE(snapshot::try_load(path("t_cut.snap"), &why).has_value())
        << "kept " << keep << " bytes";
    EXPECT_FALSE(why.empty());
  }
}

TEST_F(SnapshotTest, BitFlipInPayloadIsCaughtByChecksum) {
  const auto d = datagen::uniform(300, 2, 0.0, 20.0, 41);
  snapshot::save(path("c.snap"), d, GridIndex(d, 1.0));
  auto bytes = read_all(path("c.snap"));
  bytes[bytes.size() - 9] ^= 0x40;  // flip one payload bit
  write_all(path("c.snap"), bytes);
  std::string why;
  EXPECT_FALSE(snapshot::try_load(path("c.snap"), &why).has_value());
  EXPECT_NE(why.find("checksum"), std::string::npos);
}

TEST_F(SnapshotTest, HugeClaimedPayloadIsBoundedByFileSize) {
  // A header that claims a multi-GB payload over a tiny file must be
  // rejected BEFORE any allocation happens.
  const auto d = datagen::uniform(100, 2, 0.0, 10.0, 51);
  snapshot::save(path("h.snap"), d, GridIndex(d, 1.0));
  auto bytes = read_all(path("h.snap"));
  const std::uint64_t huge = 1ULL << 40;
  // payload_size sits after the 8-byte magic + 4-byte version.
  std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
  write_all(path("h.snap"), bytes);
  std::string why;
  EXPECT_FALSE(snapshot::try_load(path("h.snap"), &why).has_value());
  EXPECT_NE(why.find("truncated"), std::string::npos);
}

TEST_F(SnapshotTest, ChecksummedButInconsistentPartsFailValidation) {
  // The checksum vouches for the BYTES, not their meaning: corrupt the
  // A permutation and re-checksum, so only the deep from_parts
  // validation can catch it.
  const auto d = datagen::uniform(500, 2, 0.0, 25.0, 61);
  const GridIndex index(d, 1.2);
  auto parts = index.to_parts();
  ASSERT_GE(parts.A.size(), 2u);
  parts.A[0] = parts.A[1];  // no longer a permutation
  EXPECT_THROW((void)GridIndex::from_parts(std::move(parts), d),
               std::runtime_error);
}

TEST_F(SnapshotTest, FromPartsRejectsForeignDataset) {
  const auto d = datagen::uniform(300, 2, 0.0, 25.0, 71);
  const auto other = datagen::uniform(300, 2, 0.0, 25.0, 72);
  auto parts = GridIndex(d, 1.0).to_parts();
  // Same sizes, different coordinates: the per-slot point re-hash must
  // notice the binding is wrong.
  EXPECT_THROW((void)GridIndex::from_parts(std::move(parts), other),
               std::runtime_error);
}

TEST_F(SnapshotTest, SaveReplacesExistingSnapshotAtomically) {
  const auto d1 = datagen::uniform(200, 2, 0.0, 10.0, 81);
  const auto d2 = datagen::uniform(300, 2, 0.0, 10.0, 82);
  snapshot::save(path("r.snap"), d1, GridIndex(d1, 1.0));
  snapshot::save(path("r.snap"), d2, GridIndex(d2, 1.0));  // overwrite
  auto restored = snapshot::try_load(path("r.snap"), nullptr);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->data.raw(), d2.raw());
  // No temp file left behind by the atomic publish.
  EXPECT_FALSE(std::filesystem::exists(path("r.snap.tmp")));
}

}  // namespace
}  // namespace sj
