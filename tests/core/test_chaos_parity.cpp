// Chaos parity: under seeded fault injection the engines must produce
// BYTE-IDENTICAL results to their fault-free runs — recovery (transient
// retries, OOM splits, shard failover) is never allowed to show in the
// output, only in the stats. Runs through the backend registry so the
// knob plumbing (--opt faults=/retries=/backoff_ms=) is covered too.
//
// The whole file skips in a default build (the hooks compile out); the
// chaos CI job builds -DSJ_FAULTS=ON and runs it, alongside an SJ_FAULTS
// environment sweep over the ordinary parity suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/datagen.hpp"
#include "common/fault.hpp"

namespace sj {
namespace {

struct FaultGuard {
  FaultGuard() { fault::disable(); }
  ~FaultGuard() { fault::disable(); }
};

#define SJ_REQUIRE_CHAOS_BUILD()                                      \
  do {                                                                \
    if (!fault::kFaultsCompiledIn)                                    \
      GTEST_SKIP() << "fault hooks compiled out (-DSJ_FAULTS=OFF)";   \
  } while (0)

/// Chaos knobs shared by every run here: generous retry budget, no
/// backoff (wall-clock does not matter, convergence does).
api::RunConfig chaos_config(const std::string& spec) {
  api::RunConfig config;
  config.extra["faults"] = spec;
  config.extra["retries"] = "20";
  config.extra["backoff_ms"] = "0";
  return config;
}

ResultSet run_pairs(const std::string& backend, const Dataset& d, double eps,
                    api::RunConfig config = {}) {
  auto pairs =
      api::BackendRegistry::instance().at(backend).run(d, eps, config).pairs;
  pairs.normalize();
  return pairs;
}

class ChaosParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ChaosParity, PairsSurviveInjectedFaults) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const std::string backend = GetParam();
  const auto d = datagen::ippp(900, 2, 10.0, 601);
  fault::disable();
  const auto want = run_pairs(backend, d, 0.5);

  const std::vector<std::string> specs = {
      "stream:0.3,sync:0.1,seed:5",
      "alloc:0.3,sort:0.1,seed:9",
      "alloc:0.1,stream:0.2,sync:0.1,sort:0.1,seed:23",
  };
  for (const auto& spec : specs) {
    const auto got = run_pairs(backend, d, 0.5, chaos_config(spec));
    ASSERT_EQ(got.size(), want.size()) << backend << " under " << spec;
    EXPECT_TRUE(got.pairs() == want.pairs()) << backend << " under " << spec;
  }
}

TEST_P(ChaosParity, CountAndHistogramModesSurviveToo) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const std::string backend = GetParam();
  const auto& registry = api::BackendRegistry::instance();
  const auto d = datagen::ippp(700, 2, 8.0, 607);
  fault::disable();
  api::RunConfig plain;
  plain.mode = ResultMode::kCountOnly;
  const auto want_count = registry.at(backend).run(d, 0.5, plain).total_pairs;
  plain.mode = ResultMode::kHistogram;
  const auto want_hist = registry.at(backend).run(d, 0.5, plain).histogram;

  auto config = chaos_config("stream:0.3,sync:0.1,seed:31");
  config.mode = ResultMode::kCountOnly;
  EXPECT_EQ(registry.at(backend).run(d, 0.5, config).total_pairs, want_count)
      << backend;
  config.mode = ResultMode::kHistogram;
  EXPECT_EQ(registry.at(backend).run(d, 0.5, config).histogram, want_hist)
      << backend;
}

INSTANTIATE_TEST_SUITE_P(Backends, ChaosParity,
                         ::testing::Values("gpu", "gpu_unicomp", "gpu_async",
                                           "gpu_shard"));

// ------------------------------------------------------------ failover

TEST(ChaosParityFailover, DeadDeviceShardFailsOverByteIdentical) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto& registry = api::BackendRegistry::instance();
  const auto d = datagen::ippp(1200, 2, 12.0, 613);
  fault::disable();
  api::RunConfig plain;
  plain.extra["shards"] = "4";
  auto want = registry.at("gpu_shard").run(d, 0.5, plain).pairs;
  want.normalize();

  // Device 2 dies at its 2nd batch, on top of ambient transient/alloc
  // noise; its shard must re-plan onto a surviving device and the merged
  // output must not change.
  auto config =
      chaos_config("alloc:0.1,stream:0.2,device:shard2@batch2,seed:13");
  config.extra["shards"] = "4";
  config.extra["min_batches"] = "8";
  auto outcome = registry.at("gpu_shard").run(d, 0.5, config);
  outcome.pairs.normalize();
  ASSERT_EQ(outcome.pairs.size(), want.size());
  EXPECT_TRUE(outcome.pairs.pairs() == want.pairs());
  EXPECT_GE(outcome.stats.native_value("shards_failed_over"), 1.0);
  EXPECT_GT(outcome.stats.native_value("recovery_seconds"), 0.0);
  // The balance table records which device ran shard 2 after failover.
  EXPECT_EQ(outcome.stats.native_value("shard2_failed_over"), 1.0);
  EXPECT_NE(outcome.stats.native_value("shard2_device"), 2.0);
}

TEST(ChaosParityFailover, JoinFacetFailsOverByteIdentical) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto& registry = api::BackendRegistry::instance();
  const auto q = datagen::ippp(500, 2, 8.0, 617);
  const auto data = datagen::uniform(800, 2, 0.0, 8.0, 619);
  fault::disable();
  api::RunConfig plain;
  plain.extra["shards"] = "4";
  auto want = registry.at("gpu_shard").join(q, data, 0.35, plain).pairs;
  want.normalize();

  auto config = chaos_config("stream:0.2,device:shard1@batch1,seed:29");
  config.extra["shards"] = "4";
  auto outcome = registry.at("gpu_shard").join(q, data, 0.35, config);
  outcome.pairs.normalize();
  EXPECT_TRUE(outcome.pairs.pairs() == want.pairs());
  EXPECT_GE(outcome.stats.native_value("shards_failed_over"), 1.0);
}

TEST(ChaosParityFailover, DeviceLossDuringStealingFailsOverByteIdentical) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto& registry = api::BackendRegistry::instance();
  const auto d = datagen::ippp(1500, 2, 10.0, 631);
  fault::disable();
  api::RunConfig plain;
  plain.extra["shards"] = "4";
  auto want = registry.at("gpu_shard").run(d, 0.5, plain).pairs;
  want.normalize();

  // Many tiny chunklets under the stealing drive, and device 1 dies at
  // its 4th batch — mid-queue, so both its IN-FLIGHT chunklet and the
  // chunklets still queued (or already stolen) behind it must land on
  // surviving devices without changing the merged bytes.
  auto config = chaos_config("stream:0.2,device:shard1@batch4,seed:37");
  config.extra["shards"] = "4";
  config.extra["schedule"] = "steal";
  config.extra["chunklets"] = "32";
  config.extra["min_batches"] = "4";
  auto outcome = registry.at("gpu_shard").run(d, 0.5, config);
  outcome.pairs.normalize();
  ASSERT_EQ(outcome.pairs.size(), want.size());
  EXPECT_TRUE(outcome.pairs.pairs() == want.pairs());
  EXPECT_GE(outcome.stats.native_value("shards_failed_over"), 1.0);
  EXPECT_EQ(outcome.stats.native_value("shard1_failed_over"), 1.0);
  EXPECT_NE(outcome.stats.native_value("shard1_device"), 1.0);
  // Every chunklet still ran exactly once, somewhere.
  double chunklets_run = 0.0;
  for (int s = 0; s < 4; ++s) {
    chunklets_run += outcome.stats.native_value(
        "shard" + std::to_string(s) + "_chunklets");
  }
  EXPECT_EQ(chunklets_run, outcome.stats.native_value("chunklets"));
}

TEST(ChaosParityFailover, NoSurvivingDeviceFailsTyped) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::uniform(300, 2, 0.0, 10.0, 623);
  auto config = chaos_config("device:shard0@batch1,seed:1");
  config.extra["shards"] = "1";
  try {
    api::BackendRegistry::instance().at("gpu_shard").run(d, 0.5, config);
    FAIL() << "expected DeviceLost";
  } catch (const fault::DeviceLost& e) {
    EXPECT_NE(std::string(e.what()).find("no surviving device"),
              std::string::npos)
        << e.what();
  }
}

TEST(ChaosParityExhaustion, RetryBudgetZeroFailsTypedThroughRegistry) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::uniform(300, 2, 0.0, 10.0, 627);
  api::RunConfig config;
  config.extra["faults"] = "stream:1,seed:1";
  config.extra["retries"] = "0";
  config.extra["backoff_ms"] = "0";
  config.mode = ResultMode::kCountOnly;  // skip the estimator's own retry
  EXPECT_THROW(
      api::BackendRegistry::instance().at("gpu").run(d, 0.5, config),
      fault::TransientDeviceError);
}

}  // namespace
}  // namespace sj
