// Parameterised grid-index property sweep: the structural invariants of
// Section IV must hold for every (dimension, eps, distribution)
// combination, not just the hand-picked cases of test_grid_index.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/datagen.hpp"
#include "core/grid_index.hpp"

namespace sj {
namespace {

class GridSweep
    : public ::testing::TestWithParam<std::tuple<int, double, std::string>> {
 protected:
  Dataset make() const {
    const auto [dim, eps_scale, kind] = GetParam();
    (void)eps_scale;
    if (kind == "uniform") {
      return datagen::uniform(1500, dim, 0.0, 100.0, 3000 + dim);
    }
    if (kind == "clustered") {
      return datagen::gaussian_mixture(1500, dim, 7, 3.0, 0.0, 100.0,
                                       3100 + dim);
    }
    return datagen::exponential_blob(1500, dim, 0.07, 3200 + dim);
  }
  double eps() const {
    const auto [dim, eps_scale, kind] = GetParam();
    (void)kind;
    return eps_scale * std::pow(2.0, dim - 2);
  }
};

TEST_P(GridSweep, StructuralInvariants) {
  const auto d = make();
  const GridIndex g(d, eps());

  // |A| = |D|, |B| = |G|, B strictly sorted, G partitions A.
  EXPECT_EQ(g.A().size(), d.size());
  EXPECT_EQ(g.B().size(), g.G().size());
  for (std::size_t i = 1; i < g.B().size(); ++i) {
    EXPECT_LT(g.B()[i - 1], g.B()[i]);
  }
  std::uint32_t next = 0;
  for (const auto& r : g.G()) {
    EXPECT_EQ(r.min, next);
    EXPECT_GE(r.max, r.min);
    next = r.max + 1;
  }
  EXPECT_EQ(next, g.A().size());
}

TEST_P(GridSweep, EveryPointResolvableThroughIndex) {
  const auto d = make();
  const GridIndex g(d, eps());
  std::uint32_t coords[kMaxDims];
  for (std::size_t i = 0; i < d.size(); i += 7) {
    g.cell_coords(d.pt(i), coords);
    EXPECT_GE(g.find_cell(g.linearize(coords)), 0);
  }
}

TEST_P(GridSweep, CellWidthCoversEps) {
  const auto d = make();
  const GridIndex g(d, eps());
  EXPECT_GE(g.cell_width(), g.eps());
  // Any two points within eps differ by at most one cell per dimension.
  std::uint32_t ca[kMaxDims], cb[kMaxDims];
  const double eps2 = eps() * eps();
  for (std::size_t i = 0; i < d.size(); i += 17) {
    for (std::size_t j = i + 1; j < std::min(d.size(), i + 40); ++j) {
      if (sq_dist(d.pt(i), d.pt(j), d.dim()) > eps2) continue;
      g.cell_coords(d.pt(i), ca);
      g.cell_coords(d.pt(j), cb);
      for (int k = 0; k < d.dim(); ++k) {
        EXPECT_LE(std::abs(static_cast<long>(ca[k]) -
                           static_cast<long>(cb[k])),
                  1);
      }
    }
  }
}

TEST_P(GridSweep, NonEmptyCellsBoundedByPoints) {
  const auto d = make();
  const GridIndex g(d, eps());
  EXPECT_LE(g.num_nonempty_cells(), d.size());
  EXPECT_GE(g.num_nonempty_cells(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    DimsEpsKinds, GridSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.5, 2.0, 8.0),
                       ::testing::Values("uniform", "clustered",
                                         "exponential")),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) +
             "_" + std::get<2>(info.param);
    });

}  // namespace
}  // namespace sj
