// BatchPipeline under failure: retry, graceful degradation, error
// context and clean drain.
//
// Two tiers:
//   * Always-on tests exercise the failure paths reachable in a default
//     build — a sink callback throwing mid-run, the unsplittable-
//     overflow fatal, retry-policy validation. The drain contract
//     (satellite of the fault-injection issue): ANY error must shut the
//     three stages down without deadlock or std::terminate, and run()
//     must rethrow the FIRST error with the failing batch named.
//   * Chaos tests (skipped unless built with -DSJ_FAULTS=ON) inject
//     seeded faults at the gpusim seams and assert the pipeline's
//     recovery is INVISIBLE in the output: byte-identical pairs with
//     nonzero retry/split counters, and typed errors once retries are
//     exhausted.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "common/datagen.hpp"
#include "common/fault.hpp"
#include "core/self_join.hpp"
#include "gpusim/arena.hpp"

namespace sj {
namespace {

struct FaultGuard {
  FaultGuard() { fault::disable(); }
  ~FaultGuard() { fault::disable(); }
};

ResultSet run_plain(const Dataset& d, double eps,
                    GpuSelfJoinOptions opt = {}) {
  auto r = GpuSelfJoin(opt).run(d, eps);
  r.pairs.normalize();
  return r.pairs;
}

// ----------------------------------------------------- default builds

TEST(PipelineFaults, RejectsNegativeRetryPolicy) {
  const auto d = datagen::uniform(50, 2, 0.0, 5.0, 11);
  GpuSelfJoinOptions opt;
  opt.retry.retries = -1;
  EXPECT_THROW(GpuSelfJoin(opt).run(d, 1.0), std::invalid_argument);
  GpuSelfJoinOptions opt2;
  opt2.retry.backoff_ms = -0.5;
  EXPECT_THROW(GpuSelfJoin(opt2).run(d, 1.0), std::invalid_argument);
}

TEST(PipelineFaults, SinkThrowMidRunDrainsAndRethrows) {
  // Regression for the first_error shutdown path: a sink callback that
  // throws used to risk std::terminate (throw escaping an assembly
  // thread) or a deadlock (stream callbacks blocked on the `done` queue
  // nobody drains). Now the error is recorded, every stage drains, and
  // run() rethrows it.
  const auto d = datagen::uniform(400, 2, 0.0, 10.0, 13);
  GpuSelfJoinOptions opt;
  opt.min_batches = 8;
  opt.mode = ResultMode::kSink;
  int calls = 0;
  opt.sink = [&calls](const Pair*, std::size_t) {
    ++calls;
    throw std::runtime_error("sink rejected the segment");
  };
  try {
    GpuSelfJoin(opt).run(d, 1.0);
    FAIL() << "expected the sink's error to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sink rejected the segment"),
              std::string::npos)
        << e.what();
  }
  EXPECT_GE(calls, 1);
}

TEST(PipelineFaults, UnsplittableOverflowNamesTheBatch) {
  // Every point in one spot: splitting bottoms out at a single query
  // whose neighbourhood alone exceeds the buffer. The error must stay
  // typed (DeviceOutOfMemory, so callers' catch clauses keep working)
  // and carry the batch context (satellite: errors name their batch).
  // 200 coincident points beat the sizing floor of 64 buffer pairs.
  Dataset d(2);
  for (int i = 0; i < 200; ++i) {
    const double p[2] = {1.0, 1.0};
    d.push_back(p);
  }
  GpuSelfJoinOptions opt;
  opt.max_buffer_pairs = 8;
  try {
    GpuSelfJoin(opt).run(d, 1.0);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const gpu::DeviceOutOfMemory& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("batch"), std::string::npos) << what;
    EXPECT_NE(what.find("neighbourhood overflows"), std::string::npos)
        << what;
  }
}

// ------------------------------------------------------- chaos builds

#define SJ_REQUIRE_CHAOS_BUILD()                                      \
  do {                                                                \
    if (!fault::kFaultsCompiledIn)                                    \
      GTEST_SKIP() << "fault hooks compiled out (-DSJ_FAULTS=OFF)";   \
  } while (0)

TEST(ChaosPipeline, TransientFaultsRetryToParity) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::ippp(800, 2, 10.0, 501);
  const auto want = run_plain(d, 0.5);

  fault::configure_from_text("stream:0.3,sync:0.1,sort:0.1,seed:5");
  GpuSelfJoinOptions opt;
  opt.min_batches = 8;
  opt.retry.retries = 20;
  opt.retry.backoff_ms = 0.0;
  auto r = GpuSelfJoin(opt).run(d, 0.5);
  r.pairs.normalize();
  EXPECT_TRUE(r.pairs.pairs() == want.pairs());
  EXPECT_GT(r.stats.batch.retries, 0u);
  EXPECT_GT(fault::injected_total(), 0u);
}

TEST(ChaosPipeline, AllocFaultsSplitToParity) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::ippp(800, 2, 10.0, 503);
  const auto want = run_plain(d, 0.5);

  // Allocation faults surface as ResourceExhausted; the pipeline
  // degrades by halving the batch through the overflow-split machinery
  // instead of failing the run.
  fault::configure_from_text("alloc:0.3,seed:11");
  GpuSelfJoinOptions opt;
  opt.min_batches = 16;
  opt.retry.retries = 20;
  opt.retry.backoff_ms = 0.0;
  auto r = GpuSelfJoin(opt).run(d, 0.5);
  r.pairs.normalize();
  EXPECT_TRUE(r.pairs.pairs() == want.pairs());
  EXPECT_GT(r.stats.batch.batches_split_on_oom, 0u);
}

TEST(ChaosPipeline, RetriesExhaustedFailTyped) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::uniform(200, 2, 0.0, 10.0, 505);
  // Count mode skips the estimator, so the first armed draw happens
  // inside a worker — the failure must surface as the pipeline's typed,
  // batch-annotated error rather than an estimator throw.
  fault::configure_from_text("stream:1,seed:1");
  GpuSelfJoinOptions opt;
  opt.mode = ResultMode::kCountOnly;
  opt.retry.retries = 2;
  opt.retry.backoff_ms = 0.0;
  try {
    GpuSelfJoin(opt).run(d, 1.0);
    FAIL() << "expected TransientDeviceError";
  } catch (const fault::TransientDeviceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("batch"), std::string::npos) << what;
    EXPECT_NE(what.find("retries exhausted"), std::string::npos) << what;
  }
}

TEST(ChaosPipeline, ZeroRetriesFailFastButDrainCleanly) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::uniform(400, 2, 0.0, 10.0, 507);
  // The first sort fault is fatal with retries=0 — the regression here
  // is that the OTHER streams and the assembly stage still drain (the
  // test completing at all is the assertion; a drain bug hangs it).
  fault::configure_from_text("sort:1,seed:1");
  GpuSelfJoinOptions opt;
  opt.min_batches = 8;
  opt.retry.retries = 0;
  EXPECT_THROW(GpuSelfJoin(opt).run(d, 1.0), fault::TransientDeviceError);
}

TEST(ChaosPipeline, CountAndHistogramModesRecoverToo) {
  SJ_REQUIRE_CHAOS_BUILD();
  FaultGuard guard;
  const auto d = datagen::ippp(600, 2, 8.0, 509);
  fault::disable();
  GpuSelfJoinOptions base;
  base.min_batches = 8;
  base.mode = ResultMode::kCountOnly;
  const auto want_count = GpuSelfJoin(base).run(d, 0.5).total_pairs;
  base.mode = ResultMode::kHistogram;
  const auto want_hist = GpuSelfJoin(base).run(d, 0.5).histogram;

  fault::configure_from_text("stream:0.3,seed:17");
  GpuSelfJoinOptions opt = base;
  opt.retry.retries = 20;
  opt.retry.backoff_ms = 0.0;
  opt.mode = ResultMode::kCountOnly;
  EXPECT_EQ(GpuSelfJoin(opt).run(d, 0.5).total_pairs, want_count);
  opt.mode = ResultMode::kHistogram;
  EXPECT_EQ(GpuSelfJoin(opt).run(d, 0.5).histogram, want_hist);
}

}  // namespace
}  // namespace sj
