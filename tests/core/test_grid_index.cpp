#include "core/grid_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/datagen.hpp"

namespace sj {
namespace {

Dataset small2d() {
  // Hand-placed 2-D points spanning a few cells at eps = 1.
  return Dataset(2, {0.5, 0.5,   //
                     0.6, 0.4,   //
                     2.5, 0.5,   //
                     0.5, 2.5,   //
                     5.0, 5.0},
                 "small2d");
}

TEST(GridIndex, RejectsNegativeEps) {
  EXPECT_THROW(GridIndex(small2d(), -1.0), std::invalid_argument);
}

TEST(GridIndex, EmptyDataset) {
  Dataset d(3);
  GridIndex g(d, 1.0);
  EXPECT_EQ(g.num_points(), 0u);
  EXPECT_EQ(g.num_nonempty_cells(), 0u);
}

TEST(GridIndex, SizesMatchPaperContract) {
  const auto d = datagen::uniform(2000, 3, 0.0, 100.0, 17);
  GridIndex g(d, 5.0);
  // |A| = |D| and |B| = |G| (Section IV-C).
  EXPECT_EQ(g.A().size(), d.size());
  EXPECT_EQ(g.B().size(), g.G().size());
  EXPECT_GT(g.num_nonempty_cells(), 0u);
  EXPECT_LE(g.num_nonempty_cells(), d.size());
}

TEST(GridIndex, AIsAPermutation) {
  const auto d = datagen::uniform(5000, 2, 0.0, 100.0, 3);
  GridIndex g(d, 2.0);
  std::vector<bool> seen(d.size(), false);
  for (std::uint32_t id : g.A()) {
    ASSERT_LT(id, d.size());
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(GridIndex, BIsStrictlySorted) {
  const auto d = datagen::uniform(5000, 4, 0.0, 100.0, 5);
  GridIndex g(d, 10.0);
  const auto& B = g.B();
  for (std::size_t i = 1; i < B.size(); ++i) EXPECT_LT(B[i - 1], B[i]);
}

TEST(GridIndex, GRangesPartitionA) {
  const auto d = datagen::uniform(3000, 2, 0.0, 100.0, 7);
  GridIndex g(d, 3.0);
  std::uint32_t expected_min = 0;
  for (const auto& range : g.G()) {
    EXPECT_EQ(range.min, expected_min);
    EXPECT_GE(range.max, range.min);
    expected_min = range.max + 1;
  }
  EXPECT_EQ(expected_min, g.A().size());
}

TEST(GridIndex, EveryPointMapsIntoItsCell) {
  const auto d = datagen::uniform(2000, 3, 0.0, 100.0, 11);
  GridIndex g(d, 4.0);
  std::uint32_t coords[kMaxDims];
  for (std::size_t i = 0; i < d.size(); ++i) {
    g.cell_coords(d.pt(i), coords);
    const auto lin = g.linearize(coords);
    const auto cell = g.find_cell(lin);
    ASSERT_GE(cell, 0) << "point's own cell must be non-empty";
    // The point id must appear within the cell's A-range.
    const auto range = g.G()[static_cast<std::size_t>(cell)];
    bool found = false;
    for (std::uint32_t k = range.min; k <= range.max; ++k) {
      if (g.A()[k] == i) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(GridIndex, MasksContainExactlyTheNonEmptyCoords) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 23);
  GridIndex g(d, 7.0);
  for (int j = 0; j < 2; ++j) {
    std::set<std::uint32_t> expected;
    for (std::uint64_t cell : g.B()) {
      expected.insert(
          static_cast<std::uint32_t>((cell / g.stride(j)) % g.cells_in_dim(j)));
    }
    const auto& m = g.mask(j);
    EXPECT_EQ(std::set<std::uint32_t>(m.begin(), m.end()), expected);
    EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
  }
}

TEST(GridIndex, PaddedRangeAvoidsBoundaryCells) {
  // gmin = min - eps means no in-data point can land in cell 0.
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 29);
  GridIndex g(d, 1.0);
  std::uint32_t coords[kMaxDims];
  for (std::size_t i = 0; i < d.size(); ++i) {
    g.cell_coords(d.pt(i), coords);
    for (int j = 0; j < 2; ++j) {
      EXPECT_GE(coords[j], 1u);
      EXPECT_LT(coords[j], g.cells_in_dim(j));
    }
  }
}

TEST(GridIndex, FindCellReturnsMinusOneForEmpty) {
  GridIndex g(small2d(), 1.0);
  // A linear id not in B.
  std::uint64_t absent = 0;
  while (g.find_cell(absent) >= 0) ++absent;
  EXPECT_EQ(g.find_cell(absent), -1);
}

TEST(GridIndex, FilteredAdjacentSubsetOfWindow) {
  const auto d = datagen::uniform(500, 2, 0.0, 100.0, 31);
  GridIndex g(d, 10.0);
  std::uint32_t coords[kMaxDims];
  std::uint32_t out[3];
  for (std::size_t i = 0; i < d.size(); ++i) {
    g.cell_coords(d.pt(i), coords);
    for (int j = 0; j < 2; ++j) {
      const int cnt = g.filtered_adjacent(j, coords[j], out);
      ASSERT_GE(cnt, 1);  // own coordinate is always present
      ASSERT_LE(cnt, 3);
      bool has_center = false;
      for (int k = 0; k < cnt; ++k) {
        EXPECT_LE(std::abs(static_cast<long>(out[k]) -
                           static_cast<long>(coords[j])),
                  1);
        if (out[k] == coords[j]) has_center = true;
      }
      EXPECT_TRUE(has_center);
    }
  }
}

TEST(GridIndex, EpsZeroUsesUnitWidth) {
  GridIndex g(small2d(), 0.0);
  EXPECT_DOUBLE_EQ(g.eps(), 0.0);
  EXPECT_DOUBLE_EQ(g.cell_width(), 1.0);
  EXPECT_GT(g.num_nonempty_cells(), 0u);
}

TEST(GridIndex, SpaceIsOofD) {
  // Non-empty cells never exceed |D| even when the full grid is huge.
  const auto d = datagen::uniform(1000, 6, 0.0, 100.0, 37);
  GridIndex g(d, 2.0);
  EXPECT_LE(g.num_nonempty_cells(), d.size());
  EXPECT_GT(g.total_cells(), g.num_nonempty_cells());
}

TEST(GridIndex, SkewedDataHasFewerNonEmptyCellsThanUniform) {
  // The paper's worst-case argument (Section VI-C): uniform data
  // maximises non-empty cells at equal |D| and eps.
  const auto uni = datagen::uniform(10000, 2, 0.0, 100.0, 41);
  const auto skew = datagen::sw_like(10000, 2, 41);
  GridIndex gu(uni, 1.0);
  GridIndex gs(skew, 1.0);
  EXPECT_GT(gu.num_nonempty_cells(), gs.num_nonempty_cells());
}

TEST(GridIndex, SinglePoint) {
  Dataset d(2, {1.0, 1.0});
  GridIndex g(d, 0.5);
  EXPECT_EQ(g.num_nonempty_cells(), 1u);
  EXPECT_EQ(g.A().size(), 1u);
  EXPECT_EQ(g.A()[0], 0u);
}

TEST(GridIndex, IdenticalPointsShareOneCell) {
  Dataset d(3, {5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0});
  GridIndex g(d, 1.0);
  EXPECT_EQ(g.num_nonempty_cells(), 1u);
  EXPECT_EQ(g.G()[0].min, 0u);
  EXPECT_EQ(g.G()[0].max, 2u);
}

}  // namespace
}  // namespace sj
