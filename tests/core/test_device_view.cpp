// DeviceGrid upload: buffer contents must mirror the host index exactly
// and the arena accounting must match the uploaded footprint.
#include "core/device_view.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/datagen.hpp"
#include "core/grid_index.hpp"
#include "gpusim/arena.hpp"

namespace sj {
namespace {

TEST(DeviceGrid, ViewMirrorsHostIndex) {
  const auto d = datagen::uniform(2000, 3, 0.0, 100.0, 5);
  GridIndex index(d, 4.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);
  const GridDeviceView& v = dev.view();

  EXPECT_EQ(v.n, d.size());
  EXPECT_EQ(v.dim, d.dim());
  EXPECT_EQ(v.b_size, index.B().size());
  EXPECT_DOUBLE_EQ(v.eps, index.eps());
  EXPECT_DOUBLE_EQ(v.width, index.cell_width());
  EXPECT_EQ(0, std::memcmp(v.points, d.raw().data(),
                           d.raw().size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(v.B, index.B().data(),
                           index.B().size() * sizeof(std::uint64_t)));
  EXPECT_EQ(0, std::memcmp(v.A, index.A().data(),
                           index.A().size() * sizeof(std::uint32_t)));
  for (int j = 0; j < d.dim(); ++j) {
    EXPECT_EQ(v.m_size[j], index.mask(j).size());
    EXPECT_EQ(0, std::memcmp(v.M[j], index.mask(j).data(),
                             index.mask(j).size() * sizeof(std::uint32_t)));
    EXPECT_DOUBLE_EQ(v.gmin[j], index.gmin(j));
    EXPECT_EQ(v.cells_per_dim[j], index.cells_in_dim(j));
    EXPECT_EQ(v.stride[j], index.stride(j));
  }
}

TEST(DeviceGrid, ArenaChargedAndReleased) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 7);
  GridIndex index(d, 2.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  const std::size_t expected =
      d.raw().size() * sizeof(double) +
      index.B().size() * sizeof(std::uint64_t) +
      index.G().size() * sizeof(GridIndex::CellRange) +
      index.A().size() * sizeof(std::uint32_t) +
      index.mask(0).size() * sizeof(std::uint32_t) +
      index.mask(1).size() * sizeof(std::uint32_t);
  {
    DeviceGrid dev(arena, d, index);
    EXPECT_EQ(arena.used(), expected);
  }
  EXPECT_EQ(arena.used(), 0u);
}

TEST(DeviceGrid, LinearizeMatchesHost) {
  const auto d = datagen::uniform(500, 4, 0.0, 100.0, 9);
  GridIndex index(d, 10.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);
  std::uint32_t coords[kMaxDims];
  for (std::size_t i = 0; i < d.size(); i += 13) {
    index.cell_coords(d.pt(i), coords);
    EXPECT_EQ(dev.view().linearize(coords), index.linearize(coords));
  }
}

TEST(DeviceGrid, QueryPointDefaultsToIndexedSet) {
  const auto d = datagen::uniform(100, 2, 0.0, 10.0, 11);
  GridIndex index(d, 1.0);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);
  GridDeviceView v = dev.view();
  EXPECT_EQ(v.num_queries(), d.size());
  EXPECT_EQ(v.query_point(7), v.points + 7 * 2);

  // With a distinct query set the accessors switch over.
  const auto q = datagen::uniform(10, 2, 0.0, 10.0, 12);
  v.qpoints = q.raw().data();
  v.qn = q.size();
  EXPECT_EQ(v.num_queries(), q.size());
  EXPECT_EQ(v.query_point(3), q.raw().data() + 3 * 2);
}

TEST(DeviceGrid, TooSmallDeviceThrows) {
  const auto d = datagen::uniform(50000, 4, 0.0, 100.0, 13);
  GridIndex index(d, 5.0);
  gpu::GlobalMemoryArena arena(1 << 20);  // 1 MiB
  EXPECT_THROW(DeviceGrid(arena, d, index), gpu::DeviceOutOfMemory);
}

}  // namespace
}  // namespace sj
