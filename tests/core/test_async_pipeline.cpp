// gpu_async / BatchPipeline: parity on skewed data, raw-output
// determinism across configs and runs, overflow-split feedback without
// barriers, fatal-overflow behaviour, and the registry adapter's knobs.
#include "core/async_self_join.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "api/registry.hpp"
#include "bruteforce/brute_force.hpp"
#include "common/datagen.hpp"
#include "common/fault.hpp"
#include "core/batch_pipeline.hpp"
#include "core/device_view.hpp"
#include "core/grid_index.hpp"
#include "core/self_join.hpp"
#include "gpusim/arena.hpp"

namespace sj {
namespace {

AsyncSelfJoinOptions async_opts(int streams, int assembly) {
  AsyncSelfJoinOptions opt;
  opt.unicomp = false;  // mirror the "gpu" backend
  opt.num_streams = streams;
  opt.assembly_threads = assembly;
  return opt;
}

TEST(AsyncPipeline, ParityWithBruteOnSkewedClusteredData) {
  struct Case {
    const char* name;
    Dataset data;
  };
  const Case cases[] = {
      {"ippp", datagen::ippp(1500, 2, 32.0, 71)},
      {"gaussian_x8", datagen::gaussian_mixture(1500, 2, 8, 2.0, 0.0, 100.0,
                                                72)},
      {"sw_stations", datagen::sw_like(1200, 2, 73)},
  };
  for (const auto& c : cases) {
    const auto want = brute::self_join(c.data, 1.0);
    auto got = AsyncGpuSelfJoin(async_opts(3, 2)).run(c.data, 1.0);
    EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs)) << c.name;
  }
}

TEST(AsyncPipeline, IdenticalSortedPairSetAsGpuBackend) {
  const auto d = datagen::ippp(1200, 2, 16.0, 5);
  const auto& registry = api::BackendRegistry::instance();
  for (double eps : {0.25, 1.0, 4.0}) {
    auto gpu = registry.at("gpu").run(d, eps).pairs;
    auto async = registry.at("gpu_async").run(d, eps).pairs;
    gpu.normalize();
    async.normalize();
    EXPECT_TRUE(ResultSet::equal_normalized(gpu, async)) << "eps=" << eps;
    EXPECT_EQ(gpu.pairs(), async.pairs()) << "eps=" << eps;
  }
}

// streams=1 / assembly_threads=1 must degenerate to the serial result —
// and because assembly merges by batch key, every other configuration
// must produce the same RAW pair order too (given an identical plan,
// pinned here via max_buffer_pairs).
TEST(AsyncPipeline, ConfigSweepDegeneratesToSerialRawOutput) {
  const auto d = datagen::ippp(1200, 2, 24.0, 11);
  const double eps = 1.5;

  GpuSelfJoinOptions serial_opt;
  serial_opt.unicomp = false;
  serial_opt.num_streams = 1;
  serial_opt.max_buffer_pairs = 2048;
  serial_opt.min_batches = 5;
  const auto serial = GpuSelfJoin(serial_opt).run(d, eps);

  for (int streams : {1, 2, 4}) {
    for (int assembly : {1, 2, 4}) {
      auto opt = async_opts(streams, assembly);
      opt.max_buffer_pairs = 2048;
      opt.min_batches = 5;
      const auto got = AsyncGpuSelfJoin(opt).run(d, eps);
      EXPECT_EQ(got.pairs.pairs(), serial.pairs.pairs())
          << streams << " streams, " << assembly << " assembly threads";
    }
  }
}

TEST(AsyncPipeline, DeterministicAcrossRunsUnderOverflowStress) {
  const auto d = datagen::ippp(1500, 2, 32.0, 23);
  auto opt = async_opts(4, 3);
  opt.max_buffer_pairs = 64;  // force overflow splits
  opt.safety = 0.01;          // sabotage the estimate too
  auto first = AsyncGpuSelfJoin(opt).run(d, 1.0);
  auto second = AsyncGpuSelfJoin(opt).run(d, 1.0);
  EXPECT_GT(first.stats.batch.overflow_retries, 0u);
  if (fault::enabled()) {
    // Under the SJ_FAULTS chaos sweep the two runs see different fault
    // placements (draw counters advance across runs), so split patterns
    // and raw segment order differ; compare the normalized content.
    first.pairs.normalize();
    second.pairs.normalize();
  }
  EXPECT_EQ(first.pairs.pairs(), second.pairs.pairs());

  const auto want = brute::self_join(d, 1.0);
  EXPECT_TRUE(ResultSet::equal_normalized(first.pairs, want.pairs));
}

TEST(AsyncPipeline, TinyBuffersStayExactOnSkewedData) {
  const auto d = datagen::ippp(1200, 2, 48.0, 31);
  auto opt = async_opts(3, 2);
  opt.max_buffer_pairs = 64;
  opt.safety = 0.01;
  const auto got = AsyncGpuSelfJoin(opt).run(d, 2.0);
  const auto want = brute::self_join(d, 2.0);
  EXPECT_TRUE(ResultSet::equal_normalized(got.pairs, want.pairs));
}

TEST(AsyncPipeline, EmptyAndSinglePointDatasets) {
  EXPECT_TRUE(AsyncGpuSelfJoin(async_opts(2, 2))
                  .run(Dataset(2), 1.0)
                  .pairs.empty());
  Dataset one(3, {1.0, 2.0, 3.0});
  auto got = AsyncGpuSelfJoin(async_opts(2, 2)).run(one, 0.5);
  ASSERT_EQ(got.pairs.size(), 1u);
  EXPECT_EQ(got.pairs.pairs()[0], (Pair{0, 0}));
}

TEST(AsyncPipeline, AssemblyStatsArePopulated) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 41);
  const auto r = AsyncGpuSelfJoin(async_opts(3, 2)).run(d, 2.0);
  EXPECT_GE(r.stats.batch.batches_run, 3u);  // paper minimum
  EXPECT_EQ(r.stats.batch.bytes_to_host, r.pairs.size() * sizeof(Pair));
  EXPECT_GT(r.stats.batch.modeled_transfer_seconds, 0.0);
}

TEST(AsyncPipeline, RejectsBadOptions) {
  EXPECT_THROW(AsyncGpuSelfJoin(async_opts(0, 1)), std::invalid_argument);
  EXPECT_THROW(AsyncGpuSelfJoin(async_opts(1, 0)), std::invalid_argument);
}

// --- Direct BatchPipeline coverage (the machinery both gpu and
// gpu_async run on).

// Isolated points: every point's only neighbour is itself.
Dataset isolated_points(std::size_t n, double spacing) {
  Dataset d(2);
  for (std::size_t i = 0; i < n; ++i) {
    double p[2] = {spacing * static_cast<double>(i), 0.0};
    d.push_back(p);
  }
  return d;
}

TEST(BatchPipelineDirect, OnePairBufferRecoversViaSplitsExactly) {
  // A zero estimate with nonzero true pairs and a 1-pair buffer: every
  // multi-point batch overflows and must split all the way down to
  // singletons, which then fit exactly (one self pair each).
  const auto d = isolated_points(64, 10.0);
  const double eps = 1.0;
  GridIndex index(d, eps);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);

  const BatchPlan plan = plan_batches(/*estimated_total=*/0, d.size(),
                                      /*min_batches=*/3, /*buffer_pairs=*/1,
                                      /*safety=*/1.25);
  ASSERT_EQ(plan.buffer_pairs, 1u);

  PipelineConfig config;
  config.streams = 3;
  config.assembly_threads = 2;
  BatchPipeline pipeline(arena, gpu::DeviceSpec::titan_x_pascal(), config);
  AtomicWork work;
  BatchRunStats stats;
  auto got = pipeline.run(dev.view(), /*unicomp=*/false, plan, &work, &stats);

  EXPECT_GT(stats.overflow_retries, 0u);
  got.normalize();
  ASSERT_EQ(got.size(), d.size());
  for (std::uint32_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(got.pairs()[i], (Pair{i, i}));
  }
}

TEST(BatchPipelineDirect, FatalOverflowOnlyOnUnsplittableSinglePoint) {
  // Two co-located points: each singleton batch produces TWO pairs, which
  // cannot fit a 1-pair buffer no matter how far the splits go.
  auto d = isolated_points(16, 10.0);
  double dup[2] = {0.0, 0.0};  // duplicates point 0
  d.push_back(dup);
  const double eps = 1.0;
  GridIndex index(d, eps);
  gpu::GlobalMemoryArena arena(gpu::DeviceSpec::titan_x_pascal());
  DeviceGrid dev(arena, d, index);

  const BatchPlan plan =
      plan_batches(0, d.size(), 3, /*buffer_pairs=*/1, 1.25);
  PipelineConfig config;
  config.streams = 2;
  BatchPipeline pipeline(arena, gpu::DeviceSpec::titan_x_pascal(), config);
  AtomicWork work;
  EXPECT_THROW(
      pipeline.run(dev.view(), false, plan, &work, nullptr),
      gpu::DeviceOutOfMemory);
}

TEST(GpuAsyncBackend, RegistryKnobsAndValidation) {
  const auto& registry = api::BackendRegistry::instance();
  const api::SelfJoinBackend* backend = registry.find("gpu_async");
  ASSERT_NE(backend, nullptr);
  EXPECT_TRUE(backend->capabilities().gpu);

  const auto d = datagen::uniform(300, 2, 0.0, 50.0, 55);

  api::RunConfig ok;
  ok.extra = {{"streams", "2"}, {"assembly_threads", "3"}, {"unicomp", "1"}};
  const auto outcome = backend->run(d, 1.0, ok);
  EXPECT_EQ(outcome.stats.native_value("streams"), 2.0);
  EXPECT_EQ(outcome.stats.native_value("assembly_threads"), 3.0);
  auto want = registry.at("gpu").run(d, 1.0).pairs;
  auto got = outcome.pairs;
  EXPECT_TRUE(ResultSet::equal_normalized(got, want));

  api::RunConfig junk;
  junk.extra = {{"streams", "2x"}};
  EXPECT_THROW(backend->run(d, 1.0, junk), std::invalid_argument);

  api::RunConfig zero;
  zero.extra = {{"assembly_threads", "0"}};
  EXPECT_THROW(backend->run(d, 1.0, zero), std::invalid_argument);

  // gpu's spelling of the stream knob is accepted as an alias, so
  // switching --algo does not require renaming options.
  api::RunConfig alias;
  alias.extra = {{"num_streams", "2"}};
  EXPECT_EQ(backend->run(d, 1.0, alias).stats.native_value("streams"), 2.0);

  api::RunConfig unknown;
  unknown.extra = {{"bogus_knob", "2"}};
  EXPECT_THROW(backend->run(d, 1.0, unknown), std::invalid_argument);

  api::RunConfig threads;
  threads.threads = 4;
  EXPECT_THROW(backend->run(d, 1.0, threads), std::invalid_argument);
}

}  // namespace
}  // namespace sj
