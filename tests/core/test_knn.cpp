// Grid-based kNN (the paper's future-work extension): exactness against a
// brute-force reference across dimensions, k values and distributions.
#include "core/knn.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/datagen.hpp"
#include "common/distance.hpp"
#include "core/grid_index.hpp"

namespace sj {
namespace {

/// Brute-force kNN distances (ascending), optionally excluding self.
std::vector<double> brute_knn_dists(const Dataset& data, const double* q,
                                    int k, std::int64_t skip_id) {
  std::vector<double> d2;
  d2.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (static_cast<std::int64_t>(i) == skip_id) continue;
    d2.push_back(sq_dist(q, data.pt(i), data.dim()));
  }
  std::sort(d2.begin(), d2.end());
  if (d2.size() > static_cast<std::size_t>(k)) d2.resize(k);
  for (double& v : d2) v = std::sqrt(v);
  return d2;
}

class KnnExactness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnExactness, DistancesMatchBruteForce) {
  const auto [dim, k] = GetParam();
  const auto d = datagen::uniform(1500, dim, 0.0, 100.0, 400 + dim);
  KnnOptions opt;
  opt.k = k;
  const auto r = gpu_knn(d, opt);
  ASSERT_EQ(r.num_queries(), d.size());
  for (std::size_t q = 0; q < d.size(); q += 37) {  // sampled queries
    const auto want = brute_knn_dists(d, d.pt(q), k,
                                      static_cast<std::int64_t>(q));
    ASSERT_EQ(static_cast<std::size_t>(r.count(q)), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_NEAR(r.distance(q, static_cast<int>(j)), want[j], 1e-9)
          << "query " << q << " neighbor " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsKs, KnnExactness,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6),
                       ::testing::Values(1, 4, 16)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Knn, SkewedDataExactness) {
  const auto d = datagen::sw_like(2000, 2, 42);
  KnnOptions opt;
  opt.k = 8;
  const auto r = gpu_knn(d, opt);
  for (std::size_t q = 0; q < d.size(); q += 101) {
    const auto want =
        brute_knn_dists(d, d.pt(q), 8, static_cast<std::int64_t>(q));
    ASSERT_EQ(static_cast<std::size_t>(r.count(q)), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_NEAR(r.distance(q, static_cast<int>(j)), want[j], 1e-9);
    }
  }
}

TEST(Knn, IncludeSelfPutsQueryFirst) {
  const auto d = datagen::uniform(500, 2, 0.0, 100.0, 9);
  KnnOptions opt;
  opt.k = 4;
  opt.include_self = true;
  const auto r = gpu_knn(d, opt);
  for (std::size_t q = 0; q < d.size(); q += 50) {
    EXPECT_EQ(r.neighbor(q, 0), q);
    EXPECT_DOUBLE_EQ(r.distance(q, 0), 0.0);
  }
}

TEST(Knn, ResultsSortedAscending) {
  const auto d = datagen::uniform(1000, 3, 0.0, 100.0, 11);
  KnnOptions opt;
  opt.k = 10;
  const auto r = gpu_knn(d, opt);
  for (std::size_t q = 0; q < d.size(); ++q) {
    for (int j = 1; j < r.count(q); ++j) {
      EXPECT_LE(r.distance(q, j - 1), r.distance(q, j));
    }
  }
}

TEST(Knn, KLargerThanDatasetReturnsAll) {
  const auto d = datagen::uniform(10, 2, 0.0, 10.0, 13);
  KnnOptions opt;
  opt.k = 50;
  const auto r = gpu_knn(d, opt);
  for (std::size_t q = 0; q < d.size(); ++q) {
    EXPECT_EQ(r.count(q), 9);  // everyone except self
  }
}

TEST(Knn, TwoSetKnnMatchesBruteForce) {
  const auto queries = datagen::uniform(300, 2, 0.0, 100.0, 15);
  const auto data = datagen::gaussian_mixture(1200, 2, 5, 5.0, 0.0, 100.0, 16);
  KnnOptions opt;
  opt.k = 6;
  const auto r = gpu_knn(queries, data, opt);
  ASSERT_EQ(r.num_queries(), queries.size());
  for (std::size_t q = 0; q < queries.size(); q += 17) {
    const auto want = brute_knn_dists(data, queries.pt(q), 6, -1);
    ASSERT_EQ(static_cast<std::size_t>(r.count(q)), want.size());
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_NEAR(r.distance(q, static_cast<int>(j)), want[j], 1e-9);
    }
  }
}

TEST(Knn, ExplicitCellWidthStillExact) {
  const auto d = datagen::uniform(800, 2, 0.0, 100.0, 17);
  for (double width : {0.5, 2.0, 25.0}) {
    KnnOptions opt;
    opt.k = 5;
    opt.cell_width = width;
    const auto r = gpu_knn(d, opt);
    const auto want = brute_knn_dists(d, d.pt(0), 5, 0);
    for (std::size_t j = 0; j < want.size(); ++j) {
      EXPECT_NEAR(r.distance(0, static_cast<int>(j)), want[j], 1e-9)
          << "width=" << width;
    }
  }
}

TEST(Knn, DuplicatePointsAreValidNeighbors) {
  Dataset d(2, {5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 9.0, 9.0});
  KnnOptions opt;
  opt.k = 2;
  const auto r = gpu_knn(d, opt);
  EXPECT_DOUBLE_EQ(r.distance(0, 0), 0.0);  // a co-located point
  EXPECT_DOUBLE_EQ(r.distance(0, 1), 0.0);
}

TEST(Knn, StatsPopulated) {
  const auto d = datagen::uniform(2000, 2, 0.0, 100.0, 19);
  const auto r = gpu_knn(d);
  EXPECT_GT(r.stats.total_seconds, 0.0);
  EXPECT_GT(r.stats.chosen_cell_width, 0.0);
  EXPECT_GT(r.stats.rings_expanded, 0u);
  EXPECT_GT(r.stats.metrics.distance_calcs, 0u);
}

TEST(Knn, RejectsBadK) {
  KnnOptions opt;
  opt.k = 0;
  EXPECT_THROW(gpu_knn(Dataset(2), opt), std::invalid_argument);
}

TEST(Knn, EmptyDataset) {
  const auto r = gpu_knn(Dataset(2));
  EXPECT_EQ(r.num_queries(), 0u);
}

TEST(Knn, SinglePointHasNoNeighbors) {
  Dataset d(2, {1.0, 1.0});
  const auto r = gpu_knn(d);
  EXPECT_EQ(r.count(0), 0);
}

TEST(Knn, GridPruningBeatsExhaustiveSearch) {
  // The ring search must examine far fewer candidates than n per query.
  const auto d = datagen::uniform(20000, 2, 0.0, 100.0, 21);
  KnnOptions opt;
  opt.k = 8;
  const auto r = gpu_knn(d, opt);
  const double per_query =
      static_cast<double>(r.stats.metrics.distance_calcs) /
      static_cast<double>(d.size());
  EXPECT_LT(per_query, 500.0);  // vs 20000 for brute force
}

TEST(GridRangeQuery, MatchesBruteForce) {
  const auto d = datagen::uniform(3000, 3, 0.0, 100.0, 23);
  GridIndex g(d, 4.0);
  for (std::size_t q = 0; q < d.size(); q += 211) {
    std::vector<std::uint32_t> got;
    g.range_query(d, d.pt(q), 4.0, got);
    std::vector<std::uint32_t> want;
    for (std::size_t i = 0; i < d.size(); ++i) {
      if (sq_dist(d.pt(q), d.pt(i), 3) <= 16.0) {
        want.push_back(static_cast<std::uint32_t>(i));
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

TEST(GridRangeQuery, SmallerEpsThanWidthAllowed) {
  const auto d = datagen::uniform(1000, 2, 0.0, 100.0, 25);
  GridIndex g(d, 5.0);
  std::vector<std::uint32_t> got;
  g.range_query(d, d.pt(0), 2.0, got);  // eps < width: still correct
  std::vector<std::uint32_t> want;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (sq_dist(d.pt(0), d.pt(i), 2) <= 4.0) {
      want.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

TEST(GridRangeQuery, EpsBeyondWidthThrows) {
  const auto d = datagen::uniform(100, 2, 0.0, 100.0, 27);
  GridIndex g(d, 1.0);
  std::vector<std::uint32_t> out;
  EXPECT_THROW(g.range_query(d, d.pt(0), 2.0, out), std::invalid_argument);
}

}  // namespace
}  // namespace sj
