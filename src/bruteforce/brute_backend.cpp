// Adapter shim exposing the CPU brute-force reference through the
// unified backend interface as "brute".
#include "bruteforce/brute_backend.hpp"

#include <memory>

#include "api/registry.hpp"
#include "bruteforce/brute_force.hpp"

namespace sj::backends {

namespace {

class BruteBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "brute"; }
  std::string_view description() const override {
    return "exact CPU nested-loop self-join, the O(|D|^2) validation "
           "reference";
  }

  api::Capabilities capabilities() const override { return {}; }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), "");
    // RunConfig: 0 = engine default (the serial reference), negative =
    // all hardware threads (brute::self_join's 0).
    int threads = config.threads;
    if (threads == 0) threads = 1;
    if (threads < 0) threads = 0;
    auto r = brute::self_join(d, eps, threads);
    api::JoinOutcome out;
    out.pairs = std::move(r.pairs);
    out.stats.seconds = r.stats.seconds;
    out.stats.total_seconds = r.stats.seconds;
    out.stats.distance_calcs = r.stats.distance_calcs;
    return out;
  }
};

}  // namespace

void register_brute(api::BackendRegistry& registry) {
  registry.add(std::make_unique<BruteBackend>());
}

}  // namespace sj::backends
