// Adapter shim exposing the CPU brute-force references through the
// unified backend interface as "brute" — every operation facet, so the
// parity suites have one exact oracle per operation.
#include "bruteforce/brute_backend.hpp"

#include <memory>

#include "api/registry.hpp"
#include "bruteforce/brute_force.hpp"

namespace sj::backends {

namespace {

/// RunConfig threads -> brute threads: 0 = engine default (the serial
/// reference), negative = all hardware threads (brute's 0).
int resolve_threads(const api::RunConfig& config) {
  if (config.threads == 0) return 1;
  return config.threads < 0 ? 0 : config.threads;
}

/// The oracle computes the full pair set regardless of mode;
/// finalize_outcome reduces it (count / histogram over `n_keys` keys /
/// one sink batch), so non-pairs modes save interface memory, not work.
api::JoinOutcome adapt(brute::BruteResult r, const api::RunConfig& config,
                       std::size_t n_keys) {
  api::JoinOutcome out;
  api::finalize_outcome(out, std::move(r.pairs), config, n_keys);
  out.stats.seconds = r.stats.seconds;
  out.stats.total_seconds = r.stats.seconds;
  out.stats.distance_calcs = r.stats.distance_calcs;
  return out;
}

class BruteBackend final : public api::Backend {
 public:
  std::string_view name() const override { return "brute"; }
  std::string_view description() const override {
    return "exact CPU nested-loop reference (self-join, join, kNN), the "
           "O(n^2) validation oracle";
  }

  api::Capabilities capabilities() const override {
    return {.supports_join = true, .supports_knn = true};
  }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), "");
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    return adapt(brute::self_join(d, eps, resolve_threads(config)), config,
                 d.size());
  }

  api::JoinOutcome join(const Dataset& queries, const Dataset& data,
                        double eps,
                        const api::RunConfig& config) const override {
    config.check_keys(name(), "");
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    return adapt(brute::join(queries, data, eps, resolve_threads(config)),
                 config, queries.size());
  }

  api::KnnOutcome knn(const Dataset& queries, const Dataset& data, int k,
                      const api::RunConfig& config) const override {
    config.check_keys(name(), "");
    return adapt_knn(brute::knn(queries, data, k, resolve_threads(config)));
  }

  api::KnnOutcome self_knn(const Dataset& d, int k,
                           const api::RunConfig& config) const override {
    config.check_keys(name(), "include_self");
    return adapt_knn(brute::self_knn(d, k,
                                     config.flag("include_self", false),
                                     resolve_threads(config)));
  }

 private:
  static api::KnnOutcome adapt_knn(brute::BruteKnnResult r) {
    api::KnnOutcome out;
    out.neighbors = std::move(r.neighbors);
    out.stats.seconds = r.stats.seconds;
    out.stats.total_seconds = r.stats.seconds;
    out.stats.distance_calcs = r.stats.distance_calcs;
    return out;
  }
};

}  // namespace

void register_brute(api::BackendRegistry& registry) {
  registry.add(std::make_unique<BruteBackend>());
}

}  // namespace sj::backends
