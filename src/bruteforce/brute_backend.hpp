// Registration hook for the CPU brute-force adapter ("brute"). Called
// once by BackendRegistry::instance().
#pragma once

namespace sj::api {
class BackendRegistry;
}

namespace sj::backends {

void register_brute(api::BackendRegistry& registry);

}  // namespace sj::backends
