#include "bruteforce/brute_force.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/distance.hpp"
#include "common/omp_compat.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"

namespace sj::brute {

namespace {

int resolve_threads(int threads) {
  return threads > 0 ? threads : std::max(1, omp_get_max_threads());
}

/// Shared kNN scan: for every query, the k nearest points of `data`
/// (skipping the query's own id in self mode), sorted ascending by
/// (distance, id) — the deterministic tie-break the parity suites rely
/// on. Distances are sqrt(sq_dist(...)), the exact float path the GPU
/// engine takes, so oracle comparisons can be bit-exact.
BruteKnnResult knn_scan(const Dataset& queries, const Dataset& data, int k,
                        bool self_mode, bool include_self, int threads) {
  parse::positive("argument 'k' of brute::knn", k);
  parse::matching_dims("argument 'queries' of brute::knn", queries.dim(),
                       "argument 'data'", data.dim());
  BruteKnnResult result;
  Timer t;
  result.neighbors = NeighborLists(queries.size(), k);
  const int nt = resolve_threads(threads);
  std::vector<std::uint64_t> calcs(static_cast<std::size_t>(nt), 0);
#pragma omp parallel for schedule(dynamic, 16) num_threads(nt)
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(queries.size());
       ++q) {
    auto& cc = calcs[static_cast<std::size_t>(omp_get_thread_num())];
    std::vector<std::pair<double, std::uint32_t>> best;
    best.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (self_mode && !include_self &&
          i == static_cast<std::size_t>(q)) {
        continue;
      }
      ++cc;
      best.emplace_back(
          sq_dist(queries.pt(static_cast<std::size_t>(q)), data.pt(i),
                  data.dim()),
          static_cast<std::uint32_t>(i));
    }
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(k), best.size());
    std::partial_sort(best.begin(),
                      best.begin() + static_cast<std::ptrdiff_t>(keep),
                      best.end());
    const auto uq = static_cast<std::size_t>(q);
    std::uint32_t* ids = result.neighbors.ids_row(uq);
    double* dists = result.neighbors.dists_row(uq);
    for (std::size_t j = 0; j < keep; ++j) {
      ids[j] = best[j].second;
      dists[j] = std::sqrt(best[j].first);
    }
    result.neighbors.set_count(uq, static_cast<int>(keep));
  }
  for (std::uint64_t c : calcs) result.stats.distance_calcs += c;
  result.stats.seconds = t.seconds();
  return result;
}

}  // namespace

BruteResult self_join(const Dataset& d, double eps, int threads) {
  if (eps < 0.0) throw std::invalid_argument("brute::self_join: eps >= 0");
  BruteResult result;
  Timer t;
  const std::size_t n = d.size();
  const int dim = d.dim();
  const double eps2 = eps * eps;
  const int nt = threads > 0 ? threads : std::max(1, omp_get_max_threads());

  // Upper-triangle sweep; both ordered pairs are emitted per find so the
  // output convention matches the other algorithms.
  std::vector<std::vector<Pair>> locals(static_cast<std::size_t>(nt));
  std::vector<std::uint64_t> calcs(static_cast<std::size_t>(nt), 0);
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    auto& out = locals[static_cast<std::size_t>(omp_get_thread_num())];
    auto& cc = calcs[static_cast<std::size_t>(omp_get_thread_num())];
    const auto ui = static_cast<std::uint32_t>(i);
    out.push_back({ui, ui});  // self pair
    for (std::size_t k = static_cast<std::size_t>(i) + 1; k < n; ++k) {
      ++cc;
      if (sq_dist_early_exit(d.pt(static_cast<std::size_t>(i)), d.pt(k), dim,
                             eps2) <= eps2) {
        const auto uk = static_cast<std::uint32_t>(k);
        out.push_back({ui, uk});
        out.push_back({uk, ui});
      }
    }
  }
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  result.pairs.pairs().reserve(total);
  for (auto& l : locals) {
    auto& out = result.pairs.pairs();
    out.insert(out.end(), l.begin(), l.end());
  }
  for (std::uint64_t c : calcs) result.stats.distance_calcs += c;
  result.stats.seconds = t.seconds();
  return result;
}

BruteResult join(const Dataset& queries, const Dataset& data, double eps,
                 int threads) {
  parse::non_negative("argument 'eps' of brute::join", eps);
  parse::matching_dims("argument 'queries' of brute::join", queries.dim(),
                       "argument 'data'", data.dim());
  BruteResult result;
  Timer t;
  const double eps2 = eps * eps;
  const int nt = resolve_threads(threads);
  std::vector<std::vector<Pair>> locals(static_cast<std::size_t>(nt));
  std::vector<std::uint64_t> calcs(static_cast<std::size_t>(nt), 0);
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt)
  for (std::int64_t q = 0; q < static_cast<std::int64_t>(queries.size());
       ++q) {
    auto& out = locals[static_cast<std::size_t>(omp_get_thread_num())];
    auto& cc = calcs[static_cast<std::size_t>(omp_get_thread_num())];
    const double* qt = queries.pt(static_cast<std::size_t>(q));
    for (std::size_t i = 0; i < data.size(); ++i) {
      ++cc;
      if (sq_dist_early_exit(qt, data.pt(i), data.dim(), eps2) <= eps2) {
        out.push_back({static_cast<std::uint32_t>(q),
                       static_cast<std::uint32_t>(i)});
      }
    }
  }
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  result.pairs.pairs().reserve(total);
  for (auto& l : locals) {
    auto& out = result.pairs.pairs();
    out.insert(out.end(), l.begin(), l.end());
  }
  for (std::uint64_t c : calcs) result.stats.distance_calcs += c;
  result.stats.seconds = t.seconds();
  return result;
}

BruteKnnResult knn(const Dataset& queries, const Dataset& data, int k,
                   int threads) {
  return knn_scan(queries, data, k, /*self_mode=*/false,
                  /*include_self=*/false, threads);
}

BruteKnnResult self_knn(const Dataset& d, int k, bool include_self,
                        int threads) {
  return knn_scan(d, d, k, /*self_mode=*/true, include_self, threads);
}

}  // namespace sj::brute
