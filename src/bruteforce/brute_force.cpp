#include "bruteforce/brute_force.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/distance.hpp"
#include "common/omp_compat.hpp"
#include "common/timer.hpp"

namespace sj::brute {

BruteResult self_join(const Dataset& d, double eps, int threads) {
  if (eps < 0.0) throw std::invalid_argument("brute::self_join: eps >= 0");
  BruteResult result;
  Timer t;
  const std::size_t n = d.size();
  const int dim = d.dim();
  const double eps2 = eps * eps;
  const int nt = threads > 0 ? threads : std::max(1, omp_get_max_threads());

  // Upper-triangle sweep; both ordered pairs are emitted per find so the
  // output convention matches the other algorithms.
  std::vector<std::vector<Pair>> locals(static_cast<std::size_t>(nt));
  std::vector<std::uint64_t> calcs(static_cast<std::size_t>(nt), 0);
#pragma omp parallel for schedule(dynamic, 64) num_threads(nt)
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(n); ++i) {
    auto& out = locals[static_cast<std::size_t>(omp_get_thread_num())];
    auto& cc = calcs[static_cast<std::size_t>(omp_get_thread_num())];
    const auto ui = static_cast<std::uint32_t>(i);
    out.push_back({ui, ui});  // self pair
    for (std::size_t k = static_cast<std::size_t>(i) + 1; k < n; ++k) {
      ++cc;
      if (sq_dist_early_exit(d.pt(static_cast<std::size_t>(i)), d.pt(k), dim,
                             eps2) <= eps2) {
        const auto uk = static_cast<std::uint32_t>(k);
        out.push_back({ui, uk});
        out.push_back({uk, ui});
      }
    }
  }
  std::size_t total = 0;
  for (const auto& l : locals) total += l.size();
  result.pairs.pairs().reserve(total);
  for (auto& l : locals) {
    auto& out = result.pairs.pairs();
    out.insert(out.end(), l.begin(), l.end());
  }
  for (std::uint64_t c : calcs) result.stats.distance_calcs += c;
  result.stats.seconds = t.seconds();
  return result;
}

}  // namespace sj::brute
