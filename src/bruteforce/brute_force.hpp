// CPU brute-force nested-loop references: the O(n^2) oracles that every
// other implementation is validated against, and the "index-free"
// baseline of the evaluation (cost independent of eps). All three
// operations are covered — self-join, query/data join and kNN — so every
// backend facet has an exact reference.
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/neighbors.hpp"
#include "common/result.hpp"

namespace sj::brute {

struct BruteStats {
  double seconds = 0.0;
  std::uint64_t distance_calcs = 0;
};

struct BruteResult {
  ResultSet pairs;
  BruteStats stats;
};

struct BruteKnnResult {
  NeighborLists neighbors;
  BruteStats stats;
};

/// Exact self-join by exhaustive comparison. `threads` = 0 uses all
/// hardware threads; 1 gives the serial reference.
BruteResult self_join(const Dataset& d, double eps, int threads = 1);

/// Exact query/data epsilon join: pairs (query index, data index) with
/// dist <= eps, by exhaustive comparison.
BruteResult join(const Dataset& queries, const Dataset& data, double eps,
                 int threads = 1);

/// Exact kNN of every query point in `data` by exhaustive scan; lists
/// ascending by distance, ties broken by data id.
BruteKnnResult knn(const Dataset& queries, const Dataset& data, int k,
                   int threads = 1);

/// Exact self-kNN: neighbours of every point of `d` within `d`, the
/// point's own id excluded unless `include_self`.
BruteKnnResult self_knn(const Dataset& d, int k, bool include_self = false,
                        int threads = 1);

}  // namespace sj::brute
