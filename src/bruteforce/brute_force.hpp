// CPU brute-force nested-loop self-join: the O(|D|^2) reference that
// every other implementation is validated against, and the "index-free"
// baseline of the evaluation (its cost is independent of eps).
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/result.hpp"

namespace sj::brute {

struct BruteStats {
  double seconds = 0.0;
  std::uint64_t distance_calcs = 0;
};

struct BruteResult {
  ResultSet pairs;
  BruteStats stats;
};

/// Exact self-join by exhaustive comparison. `threads` = 0 uses all
/// hardware threads; 1 gives the serial reference.
BruteResult self_join(const Dataset& d, double eps, int threads = 1);

}  // namespace sj::brute
