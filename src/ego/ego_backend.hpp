// Registration hook for the Super-EGO adapter ("ego", alias "superego").
// Called once by BackendRegistry::instance().
#pragma once

namespace sj::api {
class BackendRegistry;
}

namespace sj::backends {

void register_ego(api::BackendRegistry& registry);

}  // namespace sj::backends
