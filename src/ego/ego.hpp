// SUPEREGO — clean-room reimplementation of the Super-EGO similarity
// self-join (Kalashnikov, VLDB J. 22(4), 2013), the state-of-the-art CPU
// baseline of the paper (Section VI-B).
//
// Pipeline: normalise the data into [0, 1] (we translate per dimension
// and scale every dimension by one common factor so Euclidean distances
// are preserved exactly up to that factor — the paper pre-normalised its
// datasets the same way, reporting non-normalised eps), reorder the
// dimensions so the most selective come first (histogram-based failure
// probability, the Super-EGO twist that pays off on skewed data and does
// nothing on uniform data — exactly the behaviour the paper observes),
// EGO-sort the points (lexicographic on eps-grid cell coordinates), then
// recursively EGO-join sequence pairs, pruning pairs whose cell bounding
// boxes are more than one cell apart in any dimension, with a nested-loop
// "simple join" base case.
//
// The paper runs Super-EGO with 32-bit floats ("execution with 64-bit
// floats failed"); Options::use_float reproduces that configuration.
#pragma once

#include <array>
#include <cstdint>

#include "common/dataset.hpp"
#include "common/result.hpp"

namespace sj::ego {

struct Options {
  /// Worker threads for the parallel join phase (0 = all hardware
  /// threads; the paper uses 32).
  int threads = 0;

  /// Super-EGO's selectivity-based dimension reordering.
  bool reorder_dims = true;

  /// Sequences at most this long are joined with the nested-loop base
  /// case instead of recursing further.
  int simple_threshold = 32;

  /// Compute in 32-bit floats as the paper's Super-EGO runs did.
  bool use_float = false;
};

struct EgoStats {
  double sort_seconds = 0.0;  // normalise + reorder + EGO-sort
  double join_seconds = 0.0;
  /// The paper reports "the total time to ego-sort and join".
  double total_seconds() const { return sort_seconds + join_seconds; }

  std::uint64_t distance_calcs = 0;
  std::uint64_t sequence_pairs_pruned = 0;
  std::uint64_t simple_joins = 0;
  std::array<int, kMaxDims> dim_order{};  // chosen dimension permutation
};

struct EgoResult {
  ResultSet pairs;  // repo-wide pair convention, see api/backend.hpp
  EgoStats stats;
};

EgoResult self_join(const Dataset& d, double eps, Options opt = {});

}  // namespace sj::ego
