#include "ego/ego.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/distance.hpp"
#include "common/omp_compat.hpp"
#include "common/timer.hpp"

namespace sj::ego {

namespace {

/// A node of the sequence partition: a contiguous range of the EGO-sorted
/// points with its per-dimension cell bounding box. Ranges form a binary
/// segment tree so bounding boxes are computed once.
struct Seg {
  std::uint32_t lo, hi;  // [lo, hi) into the sorted order
  std::int32_t cmin[kMaxDims];
  std::int32_t cmax[kMaxDims];
  std::int32_t left = -1, right = -1;  // child segment indices, -1 = leaf
};

template <typename T>
struct EgoState {
  int dim = 0;
  T eps{};                     // normalised threshold
  T cell_width{};              // grid width (== eps unless eps == 0)
  std::vector<T> coords;       // reordered+normalised, EGO-sorted order
  std::vector<std::uint32_t> order;  // sorted position -> original id
  std::vector<std::int32_t> cells;   // per point, per dim cell coords
  std::vector<Seg> segs;
  int simple_threshold = 32;

  const T* pt(std::uint32_t s) const { return coords.data() + std::size_t(s) * dim; }
  const std::int32_t* cell(std::uint32_t s) const {
    return cells.data() + std::size_t(s) * dim;
  }
};

/// Per-thread join accumulators, merged at the end.
struct JoinLocal {
  std::vector<Pair> pairs;
  std::uint64_t distance_calcs = 0;
  std::uint64_t pruned = 0;
  std::uint64_t simple_joins = 0;
};

template <typename T>
int build_segment(EgoState<T>& st, std::uint32_t lo, std::uint32_t hi) {
  const int idx = static_cast<int>(st.segs.size());
  st.segs.push_back({});
  {
    Seg& s = st.segs.back();
    s.lo = lo;
    s.hi = hi;
    for (int j = 0; j < st.dim; ++j) {
      s.cmin[j] = std::numeric_limits<std::int32_t>::max();
      s.cmax[j] = std::numeric_limits<std::int32_t>::min();
    }
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::int32_t* c = st.cell(i);
      for (int j = 0; j < st.dim; ++j) {
        s.cmin[j] = std::min(s.cmin[j], c[j]);
        s.cmax[j] = std::max(s.cmax[j], c[j]);
      }
    }
  }
  if (hi - lo > static_cast<std::uint32_t>(st.simple_threshold)) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const int l = build_segment(st, lo, mid);
    const int r = build_segment(st, mid, hi);
    st.segs[idx].left = l;
    st.segs[idx].right = r;
  }
  return idx;
}

/// Cell bounding boxes more than one cell apart in any dimension cannot
/// contain a pair within eps (cells have side >= eps) — the EGO prune.
template <typename T>
bool prunable(const EgoState<T>& st, const Seg& a, const Seg& b) {
  for (int j = 0; j < st.dim; ++j) {
    if (a.cmin[j] > b.cmax[j] + 1 || b.cmin[j] > a.cmax[j] + 1) return true;
  }
  return false;
}

template <typename T>
void simple_join(const EgoState<T>& st, const Seg& a, const Seg& b,
                 JoinLocal& out) {
  const T eps2 = st.eps * st.eps;
  ++out.simple_joins;
  if (&a == &b || (a.lo == b.lo && a.hi == b.hi)) {
    for (std::uint32_t i = a.lo; i < a.hi; ++i) {
      const std::uint32_t oi = st.order[i];
      out.pairs.push_back({oi, oi});  // self pair
      for (std::uint32_t k = i + 1; k < a.hi; ++k) {
        ++out.distance_calcs;
        if (sq_dist_early_exit(st.pt(i), st.pt(k), st.dim, eps2) <= eps2) {
          const std::uint32_t ok = st.order[k];
          out.pairs.push_back({oi, ok});
          out.pairs.push_back({ok, oi});
        }
      }
    }
    return;
  }
  for (std::uint32_t i = a.lo; i < a.hi; ++i) {
    for (std::uint32_t k = b.lo; k < b.hi; ++k) {
      ++out.distance_calcs;
      if (sq_dist_early_exit(st.pt(i), st.pt(k), st.dim, eps2) <= eps2) {
        out.pairs.push_back({st.order[i], st.order[k]});
        out.pairs.push_back({st.order[k], st.order[i]});
      }
    }
  }
}

template <typename T>
void ego_join(const EgoState<T>& st, int ua, int ub, JoinLocal& out) {
  const Seg& a = st.segs[ua];
  const Seg& b = st.segs[ub];
  if (prunable(st, a, b)) {
    ++out.pruned;
    return;
  }
  const bool a_leaf = a.left < 0;
  const bool b_leaf = b.left < 0;
  if (a_leaf && b_leaf) {
    simple_join(st, a, b, out);
    return;
  }
  if (ua == ub) {
    ego_join(st, a.left, a.left, out);
    ego_join(st, a.left, a.right, out);
    ego_join(st, a.right, a.right, out);
    return;
  }
  // Split the longer sequence (both are recursed against the other).
  const bool split_a = !a_leaf && (b_leaf || (a.hi - a.lo) >= (b.hi - b.lo));
  if (split_a) {
    ego_join(st, a.left, ub, out);
    ego_join(st, a.right, ub, out);
  } else {
    ego_join(st, ua, b.left, out);
    ego_join(st, ua, b.right, out);
  }
}

/// Expand the recursion a few levels to produce independent tasks for the
/// parallel join phase.
template <typename T>
void expand_tasks(const EgoState<T>& st, int ua, int ub, int depth,
                  std::vector<std::pair<int, int>>& tasks,
                  std::uint64_t& pruned) {
  const Seg& a = st.segs[ua];
  const Seg& b = st.segs[ub];
  if (prunable(st, a, b)) {
    ++pruned;
    return;
  }
  const bool a_leaf = a.left < 0;
  const bool b_leaf = b.left < 0;
  if (depth == 0 || (a_leaf && b_leaf)) {
    tasks.emplace_back(ua, ub);
    return;
  }
  if (ua == ub) {
    expand_tasks(st, a.left, a.left, depth - 1, tasks, pruned);
    expand_tasks(st, a.left, a.right, depth - 1, tasks, pruned);
    expand_tasks(st, a.right, a.right, depth - 1, tasks, pruned);
    return;
  }
  const bool split_a = !a_leaf && (b_leaf || (a.hi - a.lo) >= (b.hi - b.lo));
  if (split_a) {
    expand_tasks(st, a.left, ub, depth - 1, tasks, pruned);
    expand_tasks(st, a.right, ub, depth - 1, tasks, pruned);
  } else {
    expand_tasks(st, ua, b.left, depth - 1, tasks, pruned);
    expand_tasks(st, ua, b.right, depth - 1, tasks, pruned);
  }
}

template <typename T>
EgoResult run(const Dataset& d, double eps, const Options& opt) {
  EgoResult result;
  EgoStats& stats = result.stats;
  const std::size_t n = d.size();
  const int dim = d.dim();
  for (int j = 0; j < dim; ++j) stats.dim_order[j] = j;
  if (n == 0) return result;

  Timer sort_timer;

  // --- Normalise: translate each dimension to zero, scale all by one
  // common factor so the data fits [0, 1] and distances are preserved.
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  double extent = 0.0;
  for (int j = 0; j < dim; ++j) extent = std::max(extent, hi[j] - lo[j]);
  const double factor = extent > 0.0 ? 1.0 / extent : 1.0;
  const T eps_n = static_cast<T>(eps * factor);
  // Cell width slightly above eps: points exactly eps apart must never
  // land more than one cell apart, even after normalisation round-off
  // (any width >= eps keeps the adjacent-cell search correct).
  const T width =
      eps_n > T(0) ? eps_n * (T(1) + T(4) * std::numeric_limits<T>::epsilon() *
                                          T(1024))
                   : T(1);

  std::vector<T> norm(n * static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      norm[i * dim + j] = static_cast<T>((d.coord(i, j) - lo[j]) * factor);
    }
  }

  // --- Dimension reordering by selectivity: estimate, per dimension, the
  // probability that two random points land within one cell of each
  // other; the most selective (lowest) dimensions go first so the EGO
  // prune fires early. On uniform data all dimensions tie and the order
  // stays as-is (Super-EGO's observed behaviour).
  std::array<int, kMaxDims> dim_order{};
  std::iota(dim_order.begin(), dim_order.begin() + dim, 0);
  if (opt.reorder_dims && dim > 1) {
    const std::size_t nbuckets = std::min<std::size_t>(
        static_cast<std::size_t>(std::ceil(1.0 / static_cast<double>(width))) + 2,
        1u << 20);
    const double bucket_w = 1.0 / static_cast<double>(nbuckets - 2);
    std::array<double, kMaxDims> failure{};
    for (int j = 0; j < dim; ++j) {
      std::vector<std::uint64_t> h(nbuckets, 0);
      for (std::size_t i = 0; i < n; ++i) {
        auto b = static_cast<std::size_t>(norm[i * dim + j] / bucket_w);
        b = std::min(b, nbuckets - 1);
        ++h[b];
      }
      double f = 0.0;
      for (std::size_t b = 0; b < nbuckets; ++b) {
        double neigh = static_cast<double>(h[b]);
        if (b > 0) neigh += static_cast<double>(h[b - 1]);
        if (b + 1 < nbuckets) neigh += static_cast<double>(h[b + 1]);
        f += static_cast<double>(h[b]) * neigh;
      }
      failure[j] = f;
    }
    std::stable_sort(dim_order.begin(), dim_order.begin() + dim,
                     [&](int a, int b) { return failure[a] < failure[b]; });
  }
  for (int j = 0; j < dim; ++j) stats.dim_order[j] = dim_order[j];

  // --- EGO-sort: cell coordinates in the reordered dimensions,
  // lexicographic order.
  EgoState<T> st;
  st.dim = dim;
  st.eps = static_cast<T>(eps);  // refinement threshold in raw coordinates
  st.cell_width = width;
  st.simple_threshold = std::max(1, opt.simple_threshold);

  std::vector<std::int32_t> cells_raw(n * static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      cells_raw[i * dim + j] = static_cast<std::int32_t>(
          std::floor(norm[i * dim + dim_order[j]] / width));
    }
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::int32_t* ca = cells_raw.data() + std::size_t(a) * dim;
              const std::int32_t* cb = cells_raw.data() + std::size_t(b) * dim;
              for (int j = 0; j < dim; ++j) {
                if (ca[j] != cb[j]) return ca[j] < cb[j];
              }
              return a < b;
            });

  st.order = order;
  st.coords.resize(n * static_cast<std::size_t>(dim));
  st.cells.resize(n * static_cast<std::size_t>(dim));
  for (std::size_t s = 0; s < n; ++s) {
    const std::uint32_t src = order[s];
    for (int j = 0; j < dim; ++j) {
      // Distances are refined in the ORIGINAL coordinates so the exact
      // dist <= eps decision is free of normalisation round-off; the
      // normalised values only drive cells, sort order and pruning.
      st.coords[s * dim + j] =
          static_cast<T>(d.coord(src, dim_order[j]));
      st.cells[s * dim + j] = cells_raw[std::size_t(src) * dim + j];
    }
  }

  const int root = build_segment(st, 0, static_cast<std::uint32_t>(n));
  stats.sort_seconds = sort_timer.seconds();

  // --- Parallel EGO-join.
  Timer join_timer;
  const int threads =
      opt.threads > 0 ? opt.threads : std::max(1, omp_get_max_threads());
  std::vector<std::pair<int, int>> tasks;
  std::uint64_t pruned_at_expand = 0;
  int depth = 0;
  while ((1 << depth) < threads * 8 && depth < 20) ++depth;
  expand_tasks(st, root, root, depth, tasks, pruned_at_expand);

  std::vector<JoinLocal> locals(static_cast<std::size_t>(threads));
#pragma omp parallel for schedule(dynamic, 1) num_threads(threads)
  for (std::int64_t t = 0; t < static_cast<std::int64_t>(tasks.size()); ++t) {
    JoinLocal& local = locals[static_cast<std::size_t>(omp_get_thread_num())];
    ego_join(st, tasks[static_cast<std::size_t>(t)].first,
             tasks[static_cast<std::size_t>(t)].second, local);
  }

  std::size_t total_pairs = 0;
  for (const JoinLocal& l : locals) total_pairs += l.pairs.size();
  result.pairs.pairs().reserve(total_pairs);
  for (JoinLocal& l : locals) {
    auto& out = result.pairs.pairs();
    out.insert(out.end(), l.pairs.begin(), l.pairs.end());
    stats.distance_calcs += l.distance_calcs;
    stats.sequence_pairs_pruned += l.pruned;
    stats.simple_joins += l.simple_joins;
  }
  stats.sequence_pairs_pruned += pruned_at_expand;
  stats.join_seconds = join_timer.seconds();
  return result;
}

}  // namespace

EgoResult self_join(const Dataset& d, double eps, Options opt) {
  if (eps < 0.0) throw std::invalid_argument("ego::self_join: eps >= 0");
  return opt.use_float ? run<float>(d, eps, opt) : run<double>(d, eps, opt);
}

}  // namespace sj::ego
