// Adapter shim exposing the Super-EGO reimplementation through the
// unified backend interface as "ego" (alias "superego", the paper's name
// for the algorithm).
#include "ego/ego_backend.hpp"

#include <memory>

#include "api/registry.hpp"
#include "ego/ego.hpp"

namespace sj::backends {

namespace {

class EgoBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "ego"; }
  std::string_view description() const override {
    return "Super-EGO CPU self-join (Kalashnikov 2013), the paper's "
           "state-of-the-art CPU baseline";
  }

  api::Capabilities capabilities() const override { return {}; }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), "use_float,reorder_dims,simple_threshold");
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    ego::Options opt;
    opt.threads = config.threads < 0 ? 0 : config.threads;
    opt.use_float = config.flag("use_float", opt.use_float);
    opt.reorder_dims = config.flag("reorder_dims", opt.reorder_dims);
    opt.simple_threshold =
        config.integer("simple_threshold", opt.simple_threshold);

    auto r = ego::self_join(d, eps, opt);

    api::JoinOutcome out;
    // Super-EGO materialises its pairs either way; non-pairs modes are a
    // reduction over them (finalize_outcome), not a cheaper join.
    api::finalize_outcome(out, std::move(r.pairs), config, d.size());
    const ego::EgoStats& s = r.stats;
    // Paper convention: "the total time to ego-sort and join".
    out.stats.seconds = s.total_seconds();
    out.stats.total_seconds = s.total_seconds();
    out.stats.build_seconds = s.sort_seconds;
    out.stats.distance_calcs = s.distance_calcs;
    out.stats.native = {
        {"sort_seconds", s.sort_seconds},
        {"join_seconds", s.join_seconds},
        {"sequence_pairs_pruned",
         static_cast<double>(s.sequence_pairs_pruned)},
        {"simple_joins", static_cast<double>(s.simple_joins)},
    };
    return out;
  }
};

}  // namespace

void register_ego(api::BackendRegistry& registry) {
  registry.add(std::make_unique<EgoBackend>());
  registry.add_alias("superego", "ego");
}

}  // namespace sj::backends
