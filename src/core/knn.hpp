// Grid-based k-nearest-neighbour search on the GPU substrate — the
// paper's stated future work ("applying this work to other spatial
// searches, such as kNN", Section VII).
//
// Each query thread expands Chebyshev rings of grid cells around its home
// cell, maintaining a bounded max-heap of the k best candidates. After
// finishing ring L, every unvisited point lies at distance >= L * cell
// width, so the search terminates as soon as the heap is full and its
// worst distance is within that bound — the kNN analogue of the
// self-join's bounded adjacent-cell search. Cells are still existence-
// checked through B and filtered per dimension through the masks M_j.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancel.hpp"
#include "common/dataset.hpp"
#include "common/neighbors.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"

namespace sj {

struct KnnOptions {
  int k = 8;

  /// Grid cell width; 0 picks a density-based width (expected k+1 points
  /// per cell volume).
  double cell_width = 0.0;

  /// Include the query point itself (distance 0) in its own result. Off
  /// by default — classification and outlier workloads want proper
  /// neighbours.
  bool include_self = false;

  int block_size = 256;
  gpu::DeviceSpec device = gpu::DeviceSpec::titan_x_pascal();

  /// Optional deadline/cancellation control (common/cancel.hpp),
  /// non-owning. kNN is a single launch, so the checkpoints are entry,
  /// pre-launch and completion — coarser than the batched joins but the
  /// same typed DeadlineExceeded/Cancelled contract.
  const exec::ExecControl* control = nullptr;
};

struct KnnStats {
  double total_seconds = 0.0;
  double index_build_seconds = 0.0;
  double chosen_cell_width = 0.0;
  std::uint64_t rings_expanded = 0;  // total rings over all queries
  gpu::KernelMetrics metrics;
};

/// The shared NeighborLists container (common/neighbors.hpp) plus the
/// GPU engine's stats block.
class KnnResult : public NeighborLists {
 public:
  KnnResult() = default;
  KnnResult(std::size_t nq, int k) : NeighborLists(nq, k) {}

  KnnStats stats;
};

/// Self-kNN: neighbours of every point of `d` within `d`.
KnnResult gpu_knn(const Dataset& d, KnnOptions opt = {});

/// General kNN: for every point of `queries`, its k nearest in `data`.
/// include_self is ignored (a query is never excluded from a distinct
/// data set; exact coordinate duplicates are legitimate neighbours).
KnnResult gpu_knn(const Dataset& queries, const Dataset& data,
                  KnnOptions opt = {});

}  // namespace sj
