// Adapter shims exposing the GPU engines through the unified backend
// interface: "gpu" (GPU-SJ, Algorithm 1), "gpu_unicomp" (GPU-SJ with the
// Section V-B duplicate-search removal), "gpu_async" (GPU-SJ with the
// estimate/kernel/assembly stages overlapped on a stream pool),
// "gpu_shard" (GPU-SJ partitioned across K simulated devices) and
// "gpu_bf" (the Section VI-B brute-force kernel lower bound).
#include "core/gpu_backend.hpp"

#include <memory>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "core/async_self_join.hpp"
#include "core/brute_force_gpu.hpp"
#include "core/join.hpp"
#include "core/knn.hpp"
#include "core/self_join.hpp"
#include "core/shard_engine.hpp"

namespace sj::backends {

namespace {

constexpr std::string_view kGpuKeys =
    "block_size,min_batches,num_streams,sample_rate,safety,max_buffer_pairs,"
    "layout,soa,faults,retries,backoff_ms,deadline_ms";

/// The "deadline_ms" knob (sjtool --deadline-ms): arms a function-local
/// ExecControl with an end-to-end deadline starting NOW, so the clock
/// covers the whole engine call (index build included). `ctl` must
/// outlive the run — callers keep it on their stack frame.
template <typename Options>
void apply_deadline(const api::RunConfig& config, Options& opt,
                    exec::ExecControl& ctl) {
  const double ms = config.number("deadline_ms", 0.0);
  if (ms < 0.0) {
    throw std::invalid_argument("option 'deadline_ms' must be >= 0");
  }
  if (ms > 0.0) {
    ctl.deadline = exec::Deadline::after_ms(ms);
    opt.control = &ctl;
  }
}

/// The "layout" knob shared by the GPU-SJ engines: cell (default) runs
/// the cell-major reorder + cell-centric kernel, legacy the paper's
/// point-centric kernel over the original point order.
GridLayout parse_layout(const api::RunConfig& config) {
  const std::string v = config.text("layout", "cell");
  if (v == "cell") return GridLayout::kCellMajor;
  if (v == "legacy") return GridLayout::kLegacy;
  throw std::invalid_argument("option 'layout' must be 'cell' or 'legacy'");
}

/// Knob values arrive from untrusted CLI input (--opt); reject anything
/// non-positive before it is cast to an unsigned engine option.
int positive_int(const api::RunConfig& config, const std::string& key,
                 int def) {
  const int v = config.integer(key, def);
  if (v <= 0) {
    throw std::invalid_argument("option '" + key +
                                "' must be a positive integer");
  }
  return v;
}

/// Retry counts may legitimately be zero (fail fast on the first
/// transient fault), so positive_int is too strict for them.
int non_negative_int(const api::RunConfig& config, const std::string& key,
                     int def) {
  const int v = config.integer(key, def);
  if (v < 0) {
    throw std::invalid_argument("option '" + key +
                                "' must be a non-negative integer");
  }
  return v;
}

void reject_threads(std::string_view backend, const api::RunConfig& config) {
  if (config.threads != 0) {
    throw std::invalid_argument(std::string(backend) +
                                ": --threads is not supported (the GPU "
                                "engine's parallelism is the device model)");
  }
}

/// The batching/estimation knobs every GPU join-shaped engine shares
/// (GpuSelfJoinOptions, GpuJoinOptions, AsyncSelfJoinOptions all carry
/// these members) — parsed in ONE place so validation cannot drift
/// between the self-join, join and async adapters.
template <typename Options>
void apply_gpu_batch_knobs(const api::RunConfig& config, Options& opt) {
  opt.block_size = positive_int(config, "block_size", opt.block_size);
  opt.min_batches = static_cast<std::size_t>(positive_int(
      config, "min_batches", static_cast<int>(opt.min_batches)));
  opt.num_streams = positive_int(config, "num_streams", opt.num_streams);
  opt.sample_rate = config.number("sample_rate", opt.sample_rate);
  opt.safety = config.number("safety", opt.safety);
  const double buffer_pairs = config.number(
      "max_buffer_pairs", static_cast<double>(opt.max_buffer_pairs));
  if (buffer_pairs <= 0.0) {
    throw std::invalid_argument("option 'max_buffer_pairs' must be > 0");
  }
  opt.max_buffer_pairs = static_cast<std::uint64_t>(buffer_pairs);
  // Fault-tolerance knobs. "faults" arms the process-wide injector (needs
  // a -DSJ_FAULTS=ON build; configure_from_text explains otherwise);
  // retries/backoff_ms shape the pipeline's transient-failure retry loop.
  const std::string faults = config.text("faults", "");
  if (!faults.empty()) fault::configure_from_text(faults);
  opt.retry.retries = non_negative_int(config, "retries", opt.retry.retries);
  opt.retry.backoff_ms = config.number("backoff_ms", opt.retry.backoff_ms);
  if (opt.retry.backoff_ms < 0.0) {
    throw std::invalid_argument("option 'backoff_ms' must be >= 0");
  }
}

/// The normalised + native stats block shared by the GPU-SJ engines
/// (sync and async run the same pipeline and report the same counters).
api::JoinOutcome make_gpu_outcome(SelfJoinResult r) {
  api::JoinOutcome out;
  out.pairs = std::move(r.pairs);
  out.total_pairs = r.total_pairs;
  out.histogram = std::move(r.histogram);
  const SelfJoinStats& s = r.stats;
  out.stats.seconds = s.total_seconds;
  out.stats.total_seconds = s.total_seconds;
  out.stats.build_seconds = s.index_build_seconds;
  out.stats.distance_calcs = s.metrics.distance_calcs;
  out.stats.native = {
      {"index_build_seconds", s.index_build_seconds},
      {"upload_seconds", s.upload_seconds},
      {"estimate_seconds", s.estimate_seconds},
      {"join_seconds", s.join_seconds},
      {"estimated_total", static_cast<double>(s.estimated_total)},
      {"batches_run", static_cast<double>(s.batch.batches_run)},
      {"overflow_retries", static_cast<double>(s.batch.overflow_retries)},
      {"retries", static_cast<double>(s.batch.retries)},
      {"batches_split_on_oom",
       static_cast<double>(s.batch.batches_split_on_oom)},
      {"kernel_seconds", s.batch.kernel_seconds},
      {"sort_seconds", s.batch.sort_seconds},
      {"assembly_seconds", s.batch.assembly_seconds},
      {"bytes_to_host", static_cast<double>(s.batch.bytes_to_host)},
      {"grid_nonempty_cells", static_cast<double>(s.grid_nonempty_cells)},
      {"grid_total_cells", static_cast<double>(s.grid_total_cells)},
      {"cells_examined", static_cast<double>(s.metrics.cells_examined)},
      {"cells_nonempty", static_cast<double>(s.metrics.cells_nonempty)},
      {"cache_hit_rate", s.metrics.cache_hit_rate()},
      {"cache_bw_gbs", s.metrics.cache_bw_gbs},
      {"occupancy", s.occupancy},
      {"regs_per_thread", static_cast<double>(s.regs_per_thread)},
  };
  return out;
}

class GpuBackend final : public api::SelfJoinBackend {
 public:
  GpuBackend(std::string name, std::string description, bool unicomp)
      : name_(std::move(name)),
        description_(std::move(description)),
        unicomp_(unicomp) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }

  api::Capabilities capabilities() const override {
    return {.supports_join = true, .supports_knn = true, .gpu = true};
  }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name_, kGpuKeys);
    reject_threads(name_, config);
    api::check_result_mode(name_, config, /*supports_sink=*/true);
    GpuSelfJoinOptions opt;
    opt.unicomp = unicomp_;
    opt.layout = parse_layout(config);
    opt.collect_metrics = config.collect_metrics;
    opt.mode = config.mode;
    opt.sink = config.sink;
    opt.soa = config.flag("soa", true);
    apply_gpu_batch_knobs(config, opt);
    exec::ExecControl ctl;
    apply_deadline(config, opt, ctl);

    auto out = make_gpu_outcome(GpuSelfJoin(opt).run(d, eps));
    out.stats.native["layout_cell_major"] =
        opt.layout == GridLayout::kCellMajor ? 1.0 : 0.0;
    return out;
  }

  api::JoinOutcome join(const Dataset& queries, const Dataset& data,
                        double eps,
                        const api::RunConfig& config) const override {
    config.check_keys(name_, kGpuKeys);
    reject_threads(name_, config);
    api::check_result_mode(name_, config, /*supports_sink=*/true);
    GpuJoinOptions opt;
    opt.layout = parse_layout(config);
    opt.mode = config.mode;
    opt.sink = config.sink;
    opt.soa = config.flag("soa", true);
    apply_gpu_batch_knobs(config, opt);
    exec::ExecControl ctl;
    apply_deadline(config, opt, ctl);

    auto r = gpu_join(queries, data, eps, opt);
    api::JoinOutcome out;
    out.pairs = std::move(r.pairs);
    out.total_pairs = r.total_pairs;
    out.histogram = std::move(r.histogram);
    const GpuJoinStats& s = r.stats;
    out.stats.seconds = s.total_seconds;
    out.stats.total_seconds = s.total_seconds;
    out.stats.build_seconds = s.index_build_seconds;
    out.stats.distance_calcs = s.metrics.distance_calcs;
    out.stats.native = {
        {"index_build_seconds", s.index_build_seconds},
        {"estimated_total", static_cast<double>(s.estimated_total)},
        {"query_groups", static_cast<double>(s.query_groups)},
        {"batches_run", static_cast<double>(s.batch.batches_run)},
        {"overflow_retries", static_cast<double>(s.batch.overflow_retries)},
        {"retries", static_cast<double>(s.batch.retries)},
        {"batches_split_on_oom",
         static_cast<double>(s.batch.batches_split_on_oom)},
        {"kernel_seconds", s.batch.kernel_seconds},
        {"cells_examined", static_cast<double>(s.metrics.cells_examined)},
        {"cells_nonempty", static_cast<double>(s.metrics.cells_nonempty)},
        {"layout_cell_major",
         opt.layout == GridLayout::kCellMajor ? 1.0 : 0.0},
    };
    return out;
  }

  api::KnnOutcome knn(const Dataset& queries, const Dataset& data, int k,
                      const api::RunConfig& config) const override {
    return run_knn_facet(&queries, data, k, config);
  }

  api::KnnOutcome self_knn(const Dataset& d, int k,
                           const api::RunConfig& config) const override {
    return run_knn_facet(nullptr, d, k, config);
  }

 private:
  api::KnnOutcome run_knn_facet(const Dataset* queries, const Dataset& data,
                                int k, const api::RunConfig& config) const {
    config.check_keys(name_, "block_size,cell_width,include_self,deadline_ms");
    reject_threads(name_, config);
    KnnOptions opt;
    opt.k = k;
    opt.block_size = positive_int(config, "block_size", opt.block_size);
    opt.cell_width = config.number("cell_width", opt.cell_width);
    if (opt.cell_width < 0.0) {
      throw std::invalid_argument(
          "option 'cell_width' must be >= 0 (0 picks a density-based "
          "width)");
    }
    // include_self only affects the self mode (gpu_knn ignores it for a
    // distinct query set, see core/knn.hpp).
    opt.include_self = config.flag("include_self", opt.include_self);
    exec::ExecControl ctl;
    apply_deadline(config, opt, ctl);

    KnnResult r = queries != nullptr ? gpu_knn(*queries, data, opt)
                                     : gpu_knn(data, opt);
    api::KnnOutcome out;
    const KnnStats& s = r.stats;
    out.neighbors = std::move(static_cast<NeighborLists&>(r));
    out.stats.seconds = s.total_seconds;
    out.stats.total_seconds = s.total_seconds;
    out.stats.build_seconds = s.index_build_seconds;
    out.stats.distance_calcs = s.metrics.distance_calcs;
    out.stats.native = {
        {"index_build_seconds", s.index_build_seconds},
        {"chosen_cell_width", s.chosen_cell_width},
        {"rings_expanded", static_cast<double>(s.rings_expanded)},
        {"kernel_seconds", s.metrics.kernel_seconds},
    };
    return out;
  }

  std::string name_;
  std::string description_;
  bool unicomp_;
};

class GpuAsyncBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "gpu_async"; }
  std::string_view description() const override {
    return "GPU-SJ with estimate, batch kernels and host assembly "
           "overlapped (work-queue batches on a stream pool, dedicated "
           "assembly threads)";
  }

  api::Capabilities capabilities() const override { return {.gpu = true}; }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(),
                      "block_size,min_batches,streams,num_streams,"
                      "assembly_threads,sample_rate,safety,max_buffer_pairs,"
                      "unicomp,layout,soa,faults,retries,backoff_ms,"
                      "deadline_ms");
    reject_threads(name(), config);
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    AsyncSelfJoinOptions opt;
    // Mirrors "gpu" (UNICOMP off) so the head-to-head bench and the
    // parity suite compare like with like; unicomp=1 opts in.
    opt.unicomp = config.flag("unicomp", false);
    opt.layout = parse_layout(config);
    opt.collect_metrics = config.collect_metrics;
    opt.mode = config.mode;
    opt.sink = config.sink;
    opt.soa = config.flag("soa", true);
    apply_gpu_batch_knobs(config, opt);
    // "streams" is this backend's spelling; "num_streams" (the sibling
    // gpu/gpu_unicomp knob, applied above) is accepted too so scripts
    // can switch --algo without renaming options.
    opt.num_streams = positive_int(config, "streams", opt.num_streams);
    opt.assembly_threads =
        positive_int(config, "assembly_threads", opt.assembly_threads);
    exec::ExecControl ctl;
    apply_deadline(config, opt, ctl);

    auto out = make_gpu_outcome(AsyncGpuSelfJoin(opt).run(d, eps));
    out.stats.native["streams"] = opt.num_streams;
    out.stats.native["assembly_threads"] = opt.assembly_threads;
    out.stats.native["layout_cell_major"] =
        opt.layout == GridLayout::kCellMajor ? 1.0 : 0.0;
    return out;
  }
};

class GpuShardBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "gpu_shard"; }
  std::string_view description() const override {
    return "GPU-SJ sharded across K simulated devices (over-decomposed "
           "cell-range chunklets with a one-cell halo, per-device stream "
           "pools, work-stealing chunklet scheduler)";
  }

  api::Capabilities capabilities() const override {
    // kNN stays gated off until the shard engine grows a kNN facet.
    return {.supports_join = true, .gpu = true};
  }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), kShardKeys);
    reject_threads(name(), config);
    // The shard pipelines run concurrently, so gpu_shard cannot stream
    // batches in the global deterministic order: no sink mode.
    api::check_result_mode(name(), config, /*supports_sink=*/false);
    ShardedSelfJoinOptions opt = parse_shard_options(config);
    opt.collect_metrics = config.collect_metrics;

    auto r = ShardedGpuSelfJoin(opt).run(d, eps);
    auto out = make_gpu_outcome(
        {std::move(r.pairs), r.total_pairs, std::move(r.histogram), r.stats});
    append_shard_stats(out.stats.native, r.shard, opt);
    return out;
  }

  api::JoinOutcome join(const Dataset& queries, const Dataset& data,
                        double eps,
                        const api::RunConfig& config) const override {
    config.check_keys(name(), kShardKeys);
    reject_threads(name(), config);
    api::check_result_mode(name(), config, /*supports_sink=*/false);
    const ShardedSelfJoinOptions opt = parse_shard_options(config);

    auto r = sharded_join(queries, data, eps, opt);
    api::JoinOutcome out;
    out.pairs = std::move(r.pairs);
    out.total_pairs = r.total_pairs;
    out.histogram = std::move(r.histogram);
    const GpuJoinStats& s = r.stats;
    out.stats.seconds = s.total_seconds;
    out.stats.total_seconds = s.total_seconds;
    out.stats.build_seconds = s.index_build_seconds;
    out.stats.distance_calcs = s.metrics.distance_calcs;
    out.stats.native = {
        {"index_build_seconds", s.index_build_seconds},
        {"estimated_total", static_cast<double>(s.estimated_total)},
        {"query_groups", static_cast<double>(s.query_groups)},
        {"batches_run", static_cast<double>(s.batch.batches_run)},
        {"overflow_retries", static_cast<double>(s.batch.overflow_retries)},
        {"retries", static_cast<double>(s.batch.retries)},
        {"batches_split_on_oom",
         static_cast<double>(s.batch.batches_split_on_oom)},
        {"kernel_seconds", s.batch.kernel_seconds},
        {"cells_examined", static_cast<double>(s.metrics.cells_examined)},
        {"cells_nonempty", static_cast<double>(s.metrics.cells_nonempty)},
    };
    append_shard_stats(out.stats.native, r.shard, opt);
    return out;
  }

 private:
  static constexpr std::string_view kShardKeys =
      "shards,schedule,chunklets,plan,plan_cache,streams,num_streams,"
      "assembly_threads,unicomp,block_size,min_batches,sample_rate,safety,"
      "max_buffer_pairs,layout,soa,faults,retries,backoff_ms";

  static ShardedSelfJoinOptions parse_shard_options(
      const api::RunConfig& config) {
    ShardedSelfJoinOptions opt;
    opt.unicomp = config.flag("unicomp", false);
    opt.mode = config.mode;
    opt.soa = config.flag("soa", true);
    // parse_layout rejects unknown values; the engine itself rejects
    // layout=legacy with an error explaining why sharding needs cell.
    opt.layout = parse_layout(config);
    apply_gpu_batch_knobs(config, opt);
    opt.shards = positive_int(config, "shards", opt.shards);
    // "streams" is the per-shard stream-pool spelling (as in gpu_async);
    // "num_streams" is accepted too so scripts can switch --algo.
    opt.num_streams = positive_int(config, "streams", opt.num_streams);
    opt.assembly_threads =
        positive_int(config, "assembly_threads", opt.assembly_threads);
    const std::string schedule = config.text("schedule", "concurrent");
    if (schedule == "concurrent") {
      opt.schedule = ShardSchedule::kConcurrent;
    } else if (schedule == "steal" || schedule == "serial") {
      // "serial" is the legacy spelling of the virtual-time stealing
      // drive, kept so existing scripts don't break.
      opt.schedule = ShardSchedule::kSerial;
    } else if (schedule == "static") {
      opt.schedule = ShardSchedule::kStatic;
    } else {
      throw std::invalid_argument(
          "option 'schedule' must be 'concurrent', 'steal', or 'static' "
          "('serial' is accepted as the legacy spelling of 'steal')");
    }
    opt.chunklets = config.integer("chunklets", opt.chunklets);
    if (opt.chunklets < 0) {
      throw std::invalid_argument(
          "option 'chunklets' must be >= 0 (0 = auto: 12 per device)");
    }
    const std::string plan = config.text("plan", "proxy");
    if (plan == "proxy") {
      opt.plan = ShardPlanMode::kProxy;
    } else if (plan == "measured") {
      opt.plan = ShardPlanMode::kMeasured;
    } else {
      throw std::invalid_argument(
          "option 'plan' must be 'proxy' or 'measured'");
    }
    opt.plan_cache = config.text("plan_cache", "");
    if (opt.plan == ShardPlanMode::kMeasured && opt.plan_cache.empty()) {
      throw std::invalid_argument(
          "option 'plan=measured' needs 'plan_cache=<path>' (the per-cell "
          "pair counts a prior run persisted)");
    }
    return opt;
  }

  /// The per-device balance block (what sjtool --stats renders as the
  /// shard balance table) plus the modelled multi-device timings.
  static void append_shard_stats(std::map<std::string, double>& native,
                                 const ShardedRunStats& shard,
                                 const ShardedSelfJoinOptions& opt) {
    native["shards"] = static_cast<double>(shard.shards);
    native["schedule_concurrent"] =
        opt.schedule == ShardSchedule::kConcurrent ? 1.0 : 0.0;
    native["schedule_static"] =
        opt.schedule == ShardSchedule::kStatic ? 1.0 : 0.0;
    native["chunklets"] = static_cast<double>(shard.chunklets_total);
    native["chunklets_stolen"] =
        static_cast<double>(shard.chunklets_stolen);
    native["plan_measured"] = shard.measured_plan ? 1.0 : 0.0;
    native["common_seconds"] = shard.common_seconds;
    native["makespan_seconds"] = shard.makespan_seconds;
    native["busy_sum_seconds"] = shard.busy_sum_seconds;
    native["shards_failed_over"] =
        static_cast<double>(shard.shards_failed_over);
    native["recovery_seconds"] = shard.recovery_seconds;
    for (std::size_t s = 0; s < shard.per_shard.size(); ++s) {
      const ShardStats& ss = shard.per_shard[s];
      const std::string p = "shard" + std::to_string(s) + "_";
      native[p + "cells"] = static_cast<double>(ss.units);
      native[p + "weight"] = static_cast<double>(ss.weight);
      native[p + "points"] = static_cast<double>(ss.owned_points);
      native[p + "halo_points"] = static_cast<double>(ss.halo_points);
      native[p + "pairs"] = static_cast<double>(ss.pairs);
      native[p + "chunklets"] = static_cast<double>(ss.chunklets);
      native[p + "stolen"] = static_cast<double>(ss.stolen);
      native[p + "steal_seconds"] = ss.steal_seconds;
      native[p + "seconds"] = ss.seconds;
      native[p + "device"] = static_cast<double>(ss.device);
      native[p + "failed_over"] = ss.failed_over ? 1.0 : 0.0;
    }
  }
};

class GpuBruteForceBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "gpu_bf"; }
  std::string_view description() const override {
    return "GPU brute-force nested-loop kernel (eps-independent lower "
           "bound, Section VI-B)";
  }

  api::Capabilities capabilities() const override { return {.gpu = true}; }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), "block_size,materialize");
    reject_threads(name(), config);
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    // materialize=0 keeps the paper's count-only lower-bound measurement
    // (no pair buffer in device memory); the count is still reported in
    // native["num_pairs"]. mode=count takes that same bufferless kernel;
    // histogram and sink reduce from the materialised pairs.
    const bool materialize =
        config.mode == ResultMode::kPairs
            ? config.flag("materialize", true)
            : config.mode != ResultMode::kCountOnly;
    auto r = gpu_brute_force(d, eps, materialize,
                             positive_int(config, "block_size", 256));
    api::JoinOutcome out;
    api::finalize_outcome(out, std::move(r.pairs), config, d.size());
    out.total_pairs = r.num_pairs;
    // Paper convention: the brute-force measurement is the kernel only.
    out.stats.seconds = r.kernel_seconds;
    out.stats.total_seconds = r.kernel_seconds;
    out.stats.distance_calcs = r.distance_calcs;
    out.stats.native = {
        {"kernel_seconds", r.kernel_seconds},
        {"num_pairs", static_cast<double>(r.num_pairs)},
    };
    return out;
  }
};

}  // namespace

void register_gpu(api::BackendRegistry& registry) {
  registry.add(std::make_unique<GpuBackend>(
      "gpu", "GPU-SJ grid-index self-join (Algorithm 1), UNICOMP off",
      /*unicomp=*/false));
  registry.add(std::make_unique<GpuBackend>(
      "gpu_unicomp",
      "GPU-SJ with the UNICOMP duplicate-search removal (Section V-B)",
      /*unicomp=*/true));
  registry.add(std::make_unique<GpuAsyncBackend>());
  registry.add(std::make_unique<GpuShardBackend>());
  registry.add(std::make_unique<GpuBruteForceBackend>());
}

}  // namespace sj::backends
