// The self-join GPU kernels.
//
// self_join_thread() is the per-thread body of GPUSELFJOINGLOBAL
// (Algorithm 1) generalised to n dimensions: the paper's nested loops over
// filtered per-dimension ranges (lines 8-9) become an odometer over the
// mask-filtered adjacent coordinates. With `unicomp` set it instead
// follows the UNICOMP access pattern (Algorithm 2): the home cell is
// evaluated in one direction, and for every dimension d whose cell
// coordinate is odd, the neighbour cells that differ in d (free in
// dimensions < d, pinned to the home coordinates in dimensions > d) are
// evaluated emitting BOTH ordered pairs.
//
// brute_force_thread() is the GPU brute-force nested-loop kernel used as
// the paper's index-free baseline (Section VI-B).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/result.hpp"
#include "core/device_view.hpp"
#include "core/work_counters.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/cachesim.hpp"
#include "gpusim/kernel.hpp"

namespace sj {

/// Where result pairs go. With `out == nullptr` the kernel only counts
/// (the estimator mode); otherwise pairs are appended through the atomic
/// cursor and `overflow` is raised when the buffer capacity is exceeded.
struct ResultBufferView {
  Pair* out = nullptr;
  std::uint64_t capacity = 0;
  gpu::DeviceCounter* cursor = nullptr;
  std::atomic<bool>* overflow = nullptr;
};

struct SelfJoinKernelParams {
  GridDeviceView grid;
  /// Point ids this launch processes (the batching scheme passes each
  /// batch's ids); nullptr means the identity mapping over all points.
  const std::uint32_t* query_ids = nullptr;
  std::uint64_t num_queries = 0;
  ResultBufferView result;
  bool unicomp = false;
  AtomicWork* work = nullptr;      // aggregated algorithmic work counters
  gpu::CacheSim* cache = nullptr;  // L1 model; only valid with serial exec
};

void self_join_thread(const gpu::ThreadCtx& ctx,
                      const SelfJoinKernelParams& p);

struct BruteForceKernelParams {
  const double* points = nullptr;
  std::uint64_t n = 0;
  int dim = 0;
  double eps = 0.0;
  ResultBufferView result;
  AtomicWork* work = nullptr;
};

void brute_force_thread(const gpu::ThreadCtx& ctx,
                        const BruteForceKernelParams& p);

}  // namespace sj
