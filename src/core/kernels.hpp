// The self-join GPU kernels.
//
// self_join_thread() is the per-thread body of GPUSELFJOINGLOBAL
// (Algorithm 1) generalised to n dimensions: the paper's nested loops over
// filtered per-dimension ranges (lines 8-9) become an odometer over the
// mask-filtered adjacent coordinates. With `unicomp` set it instead
// follows the UNICOMP access pattern (Algorithm 2): the home cell is
// evaluated in one direction, and for every dimension d whose cell
// coordinate is odd, the neighbour cells that differ in d (free in
// dimensions < d, pinned to the home coordinates in dimensions > d) are
// evaluated emitting BOTH ordered pairs. It works on either data layout
// (candidates are resolved through GridDeviceView's candidate helpers).
//
// self_join_cells_thread() is the CELL-CENTRIC kernel over the cell-major
// layout: one work unit is a (cell, point-subrange) item, the adjacent-
// cell range list — including the UNICOMP odd/even pattern — is computed
// ONCE per item, and all of the item's points then scan those contiguous
// slot ranges with a blocked, vectorisable inner loop. This amortises the
// per-point binary searches of Algorithm 1 across the cell and removes
// the A[] gather from the distance loop.
//
// brute_force_thread() is the GPU brute-force nested-loop kernel used as
// the paper's index-free baseline (Section VI-B).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "core/device_view.hpp"
#include "core/work_counters.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/cachesim.hpp"
#include "gpusim/kernel.hpp"

namespace sj {

/// Where results go — one struct covers all four result modes:
///
///   pairs      — `out` + `cursor` + `overflow` set: pairs are appended
///                through the atomic cursor, `overflow` raised when the
///                buffer capacity is exceeded. (Also the sink mode: the
///                host streams the filled buffers instead of keeping
///                them.)
///   count_only — `cursor` set, `out` null: finds bump the cursor only;
///                no buffer writes, no overflow possible.
///   histogram  — `counts` set (per-ORIGINAL-id neighbour counters,
///                incremented with relaxed atomics): no buffer traffic.
///   estimator  — everything null: finds land only in LocalWork.results.
struct ResultBufferView {
  Pair* out = nullptr;
  std::uint64_t capacity = 0;
  gpu::DeviceCounter* cursor = nullptr;
  std::atomic<bool>* overflow = nullptr;
  std::uint32_t* counts = nullptr;
};

struct SelfJoinKernelParams {
  GridDeviceView grid;
  /// Point ids this launch processes (the batching scheme passes each
  /// batch's ids); nullptr means the identity mapping over all points.
  /// On a cell-major grid these are point SLOTS, not original ids.
  const std::uint32_t* query_ids = nullptr;
  std::uint64_t num_queries = 0;
  ResultBufferView result;
  bool unicomp = false;
  AtomicWork* work = nullptr;      // aggregated algorithmic work counters
  gpu::CacheSim* cache = nullptr;  // L1 model; only valid with serial exec
};

void self_join_thread(const gpu::ThreadCtx& ctx,
                      const SelfJoinKernelParams& p);

/// One cell-centric work unit: the points in slots [begin, end) of the
/// non-empty cell with index `cell` into B/G. Root batches cover whole
/// cells (begin = G[cell].min, end = G[cell].max + 1); the overflow-split
/// path may narrow the slot range of a single oversized cell.
struct CellWorkItem {
  std::uint32_t cell;
  std::uint32_t begin;
  std::uint32_t end;
};

/// One contiguous slot range of cell-major candidates; `both` (0/1) marks
/// UNICOMP neighbour ranges whose finds emit both ordered pairs.
struct CandidateRange {
  std::uint32_t begin;
  std::uint32_t end;  // one past the last slot
  std::uint32_t both;
};

/// The per-cell adjacency, resolved ONCE per join: cell i's candidate
/// slot ranges are ranges[offsets[i], offsets[i+1]). Shared by the batch
/// planner (weights) and every batch kernel launch, so neither the
/// planning pass nor overflow retries repeat the odometer + binary
/// searches of B.
struct CellAdjacency {
  gpu::DeviceBuffer<CandidateRange> ranges;
  gpu::DeviceBuffer<std::uint64_t> offsets;  // b_size + 1 entries
  /// Host-side per-cell candidate-pair counts (cell population x
  /// candidate population, both-orders ranges twice) for the planner.
  std::vector<std::uint64_t> weights;

  /// Index-search work the build performed — the cell-mode equivalent of
  /// the point-centric kernel's cell counters (amortised: once per cell
  /// instead of once per point). Folded into the join metrics.
  std::uint64_t cells_examined = 0;
  std::uint64_t cells_nonempty = 0;
};

/// Host-resident form of CellAdjacency: the same CSR, weights and work
/// counters as plain vectors, with no device allocation. This is what the
/// shard planner slices per device — each shard uploads only its own
/// cells' remapped ranges — and what build_cell_adjacency uploads whole.
struct CellAdjacencyHost {
  std::vector<CandidateRange> ranges;
  std::vector<std::uint64_t> offsets;  // b_size + 1 entries
  std::vector<std::uint64_t> weights;
  std::uint64_t cells_examined = 0;
  std::uint64_t cells_nonempty = 0;
};

/// Build the adjacency of every non-empty cell of a cell-major grid on
/// the host with one enumeration pass (odometer or UNICOMP pattern +
/// find_cell each).
CellAdjacencyHost build_cell_adjacency_host(const GridDeviceView& grid,
                                            bool unicomp);

/// build_cell_adjacency_host restricted to cells [cell_begin, cell_end):
/// offsets/weights are indexed relative to cell_begin (offsets[0] == 0);
/// candidate ranges stay in GLOBAL slot coordinates. This is the
/// per-device form: each gpu_shard device resolves only its own cells'
/// adjacency, so the build parallelises across shards instead of sitting
/// in the unsharded common phase.
CellAdjacencyHost build_cell_adjacency_span(const GridDeviceView& grid,
                                            bool unicomp,
                                            std::uint32_t cell_begin,
                                            std::uint32_t cell_end);

/// build_cell_adjacency_host() + upload into `arena` — the single-device
/// form the gpu/gpu_unicomp/gpu_async engines consume.
CellAdjacency build_cell_adjacency(gpu::GlobalMemoryArena& arena,
                                   const GridDeviceView& grid, bool unicomp);

struct CellJoinKernelParams {
  GridDeviceView grid;  ///< must be cell-major
  const CellWorkItem* items = nullptr;
  std::uint64_t num_items = 0;
  /// Precomputed adjacency (build_cell_adjacency). When null the kernel
  /// enumerates each item's neighbourhood inline — the standalone mode
  /// the serial metrics pass uses, which also produces the Table II cell
  /// counters.
  const CandidateRange* ranges = nullptr;
  const std::uint64_t* range_offsets = nullptr;
  ResultBufferView result;
  bool unicomp = false;
  AtomicWork* work = nullptr;
  gpu::CacheSim* cache = nullptr;  // L1 model; only valid with serial exec
};

void self_join_cells_thread(const gpu::ThreadCtx& ctx,
                            const CellJoinKernelParams& p);

/// The query/data join analogue of CellAdjacency: queries are sorted by
/// the DATA grid cell they fall into, queries sharing a home cell form a
/// group, and each group's candidate slot ranges in the cell-major data
/// layout are resolved ONCE (the home cell need not be non-empty in the
/// data grid — groups are keyed by coordinates, not by B entries). Shared
/// by the batch planner (weights) and every kernel launch.
struct JoinAdjacency {
  /// All query ids, sorted by (home cell, id); group g covers
  /// query_order[group_offsets[g], group_offsets[g+1]).
  gpu::DeviceBuffer<std::uint32_t> query_order;
  std::vector<std::uint32_t> group_offsets;  // num_groups + 1 entries

  gpu::DeviceBuffer<CandidateRange> ranges;
  gpu::DeviceBuffer<std::uint64_t> offsets;  // num_groups + 1 entries

  /// Per-group candidate-pair counts (group population x candidate
  /// population) for the planner.
  std::vector<std::uint64_t> weights;

  std::uint64_t cells_examined = 0;
  std::uint64_t cells_nonempty = 0;

  std::size_t num_groups() const {
    return group_offsets.empty() ? 0 : group_offsets.size() - 1;
  }
};

/// Host-resident form of JoinAdjacency (see CellAdjacencyHost): what the
/// shard planner partitions into contiguous group ranges.
struct JoinAdjacencyHost {
  std::vector<std::uint32_t> query_order;
  std::vector<std::uint32_t> group_offsets;  // num_groups + 1 entries
  std::vector<CandidateRange> ranges;
  std::vector<std::uint64_t> offsets;  // num_groups + 1 entries
  std::vector<std::uint64_t> weights;
  std::uint64_t cells_examined = 0;
  std::uint64_t cells_nonempty = 0;

  std::size_t num_groups() const {
    return group_offsets.empty() ? 0 : group_offsets.size() - 1;
  }
};

/// Build the query-group adjacency for a query/data join on the host:
/// `grid` must be a cell-major view of the indexed data with qpoints/qn
/// describing the external query set.
JoinAdjacencyHost build_join_adjacency_host(const GridDeviceView& grid);

/// build_join_adjacency_host() + upload into `arena` — the single-device
/// form gpu_join consumes.
JoinAdjacency build_join_adjacency(gpu::GlobalMemoryArena& arena,
                                   const GridDeviceView& grid);

struct JoinCellsKernelParams {
  GridDeviceView grid;  ///< cell-major data side, qpoints/qn set
  const std::uint32_t* query_order = nullptr;
  /// Work items: `cell` is a GROUP index into range_offsets, [begin, end)
  /// a position range of query_order.
  const CellWorkItem* items = nullptr;
  std::uint64_t num_items = 0;
  const CandidateRange* ranges = nullptr;
  const std::uint64_t* range_offsets = nullptr;
  ResultBufferView result;
  AtomicWork* work = nullptr;
  gpu::CacheSim* cache = nullptr;  // L1 model; only valid with serial exec
};

/// Cell-centric query/data join kernel: one work unit is a query group
/// subrange; all of its queries scan the group's precomputed contiguous
/// candidate ranges with the blocked distance loop.
void join_cells_thread(const gpu::ThreadCtx& ctx,
                       const JoinCellsKernelParams& p);

struct BruteForceKernelParams {
  const double* points = nullptr;
  std::uint64_t n = 0;
  int dim = 0;
  double eps = 0.0;
  ResultBufferView result;
  AtomicWork* work = nullptr;
};

void brute_force_thread(const gpu::ThreadCtx& ctx,
                        const BruteForceKernelParams& p);

}  // namespace sj
