#include "core/snapshot.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/io.hpp"

namespace sj::snapshot {

namespace {

constexpr char kMagic[8] = {'S', 'J', 'S', 'N', 'A', 'P', '1', '\0'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const unsigned char* bytes, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append-only byte builder for the payload.
struct Writer {
  std::vector<unsigned char> bytes;

  void append(const unsigned char* p, std::size_t n) {
    const std::size_t off = bytes.size();
    bytes.resize(off + n);
    if (n != 0) std::memcpy(bytes.data() + off, p, n);
  }
  template <typename T>
  void pod(const T& v) {
    append(reinterpret_cast<const unsigned char*>(&v), sizeof(T));
  }
  template <typename T>
  void array(const T* data, std::size_t count) {
    append(reinterpret_cast<const unsigned char*>(data), count * sizeof(T));
  }
};

/// Bounds-checked sequential reader over the payload; sets `bad` instead
/// of running past the end, so a truncated payload that somehow passed
/// the checksum still cannot over-read.
struct Reader {
  const unsigned char* p;
  std::size_t left;
  bool bad = false;

  template <typename T>
  T pod() {
    T v{};
    if (left < sizeof(T)) {
      bad = true;
      return v;
    }
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return v;
  }
  template <typename T>
  bool array(T* out, std::size_t count) {
    if (left < count * sizeof(T)) {
      bad = true;
      return false;
    }
    std::memcpy(out, p, count * sizeof(T));
    p += count * sizeof(T);
    left -= count * sizeof(T);
    return true;
  }
};

std::optional<Restored> fail(std::string* why, const std::string& reason) {
  if (why != nullptr) *why = reason;
  return std::nullopt;
}

}  // namespace

void save(const std::string& path, const Dataset& d, const GridIndex& index) {
  const GridIndex::Parts parts = index.to_parts();
  Writer w;
  w.pod(static_cast<std::uint32_t>(parts.dim));
  w.pod(static_cast<std::uint64_t>(d.size()));
  w.pod(parts.eps);
  w.pod(parts.width);
  for (int j = 0; j < parts.dim; ++j) {
    w.pod(parts.gmin[j]);
    w.pod(parts.gmax[j]);
    w.pod(parts.cells_per_dim[j]);
    w.pod(parts.stride[j]);
  }
  w.pod(static_cast<std::uint64_t>(parts.B.size()));
  w.array(parts.B.data(), parts.B.size());
  w.array(parts.G.data(), parts.G.size());
  w.array(parts.A.data(), parts.A.size());
  for (int j = 0; j < parts.dim; ++j) {
    w.pod(static_cast<std::uint64_t>(parts.M[j].size()));
    w.array(parts.M[j].data(), parts.M[j].size());
  }
  w.array(d.raw().data(), d.raw().size());

  std::vector<unsigned char> file;
  file.reserve(sizeof(kMagic) + sizeof(std::uint32_t) +
               2 * sizeof(std::uint64_t) + w.bytes.size());
  Writer header;
  header.array(kMagic, sizeof(kMagic));
  header.pod(kVersion);
  header.pod(static_cast<std::uint64_t>(w.bytes.size()));
  header.pod(fnv1a(w.bytes.data(), w.bytes.size()));
  file = std::move(header.bytes);
  file.insert(file.end(), w.bytes.begin(), w.bytes.end());

  io::atomic_write_file(path, file.data(), file.size());
}

std::optional<Restored> try_load(const std::string& path, std::string* why) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(why, "snapshot file missing or unreadable: " + path);

  char magic[8];
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(why, "bad snapshot magic in " + path);
  }
  if (version != kVersion) {
    return fail(why, "snapshot version " + std::to_string(version) +
                         " unsupported (expected " + std::to_string(kVersion) +
                         ") in " + path);
  }
  // Bound the claimed payload by the real file size before allocating.
  std::error_code ec;
  const auto fsize = std::filesystem::file_size(path, ec);
  const std::size_t header_bytes = sizeof(kMagic) + sizeof(version) +
                                   sizeof(payload_size) + sizeof(checksum);
  if (ec || fsize < header_bytes ||
      payload_size > static_cast<std::uint64_t>(fsize) - header_bytes) {
    return fail(why, "snapshot truncated (header claims " +
                         std::to_string(payload_size) + " payload bytes): " +
                         path);
  }

  std::vector<unsigned char> payload(static_cast<std::size_t>(payload_size));
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  if (!in) return fail(why, "snapshot truncated mid-payload: " + path);
  if (fnv1a(payload.data(), payload.size()) != checksum) {
    return fail(why, "snapshot checksum mismatch (torn or bit-flipped "
                     "write): " + path);
  }

  Reader r{payload.data(), payload.size()};
  GridIndex::Parts parts;
  const auto dim = r.pod<std::uint32_t>();
  const auto n = r.pod<std::uint64_t>();
  if (r.bad || dim == 0 || dim > static_cast<std::uint32_t>(kMaxDims)) {
    return fail(why, "snapshot header has an unsupported dimensionality: " +
                         path);
  }
  parts.dim = static_cast<int>(dim);
  parts.eps = r.pod<double>();
  parts.width = r.pod<double>();
  for (int j = 0; j < parts.dim; ++j) {
    parts.gmin[j] = r.pod<double>();
    parts.gmax[j] = r.pod<double>();
    parts.cells_per_dim[j] = r.pod<std::uint32_t>();
    parts.stride[j] = r.pod<std::uint64_t>();
  }
  const auto b_size = r.pod<std::uint64_t>();
  // Every size field is bounded by the remaining payload before any
  // resize — a corrupt count cannot drive an over-allocation.
  if (r.bad || b_size > r.left / sizeof(std::uint64_t) || n > r.left) {
    return fail(why, "snapshot cell/point counts exceed the payload: " + path);
  }
  parts.B.resize(static_cast<std::size_t>(b_size));
  parts.G.resize(static_cast<std::size_t>(b_size));
  parts.A.resize(static_cast<std::size_t>(n));
  r.array(parts.B.data(), parts.B.size());
  r.array(parts.G.data(), parts.G.size());
  r.array(parts.A.data(), parts.A.size());
  for (int j = 0; j < parts.dim && !r.bad; ++j) {
    const auto m_size = r.pod<std::uint64_t>();
    if (r.bad || m_size > r.left / sizeof(std::uint32_t)) {
      return fail(why, "snapshot mask table exceeds the payload: " + path);
    }
    parts.M[j].resize(static_cast<std::size_t>(m_size));
    r.array(parts.M[j].data(), parts.M[j].size());
  }
  std::vector<double> coords(static_cast<std::size_t>(n) * parts.dim);
  r.array(coords.data(), coords.size());
  if (r.bad || r.left != 0) {
    return fail(why, "snapshot payload size disagrees with its contents: " +
                         path);
  }

  Restored out;
  out.data = Dataset(parts.dim, std::move(coords),
                     std::filesystem::path(path).stem().string());
  try {
    // Throwing deep validation (structure + point/cell binding) — the
    // checksum only vouches for the bytes, not for their consistency.
    out.index = GridIndex::from_parts(std::move(parts), out.data);
  } catch (const std::exception& e) {
    return fail(why, std::string("snapshot failed restore validation: ") +
                         e.what());
  }
  return out;
}

}  // namespace sj::snapshot
