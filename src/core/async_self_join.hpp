// The gpu_async engine: GPU-SJ with its three stages overlapped.
//
// Where GpuSelfJoin runs estimate -> batched kernels -> host assembly
// mostly back to back, AsyncGpuSelfJoin kicks the sampling estimator off
// on its own stream immediately after the upload (batch sizing still
// waits on its event, but in metrics mode the expensive serial Table II
// pass runs concurrently with it), then executes the batches through the
// BatchPipeline: a work queue feeding a pool of kernel streams whose
// completed, device-sorted batches are staged by dedicated host-assembly
// threads while further kernels run, with the final batch-key-ordered
// concatenation parallelised across those same workers. Overflow splits
// feed back into the same queue, so a skewed batch never stalls the
// other streams behind a retry barrier.
//
// Exactness and output order are identical to GpuSelfJoin by
// construction — both engines share the BatchPipeline and its
// deterministic batch-keyed merge.
#pragma once

#include "core/self_join.hpp"

namespace sj {

struct AsyncSelfJoinOptions : GpuSelfJoinOptions {
  /// Host-side assembly workers merging completed batch segments.
  int assembly_threads = 2;
};

class AsyncGpuSelfJoin {
 public:
  explicit AsyncGpuSelfJoin(AsyncSelfJoinOptions opt = {});

  /// Compute the full self-join of `d` with distance threshold eps >= 0.
  SelfJoinResult run(const Dataset& d, double eps) const;

  const AsyncSelfJoinOptions& options() const { return opt_; }

 private:
  AsyncSelfJoinOptions opt_;
};

}  // namespace sj
