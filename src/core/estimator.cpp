#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gpusim/arena.hpp"

#include "common/fault.hpp"
#include "common/timer.hpp"
#include "core/kernels.hpp"
#include "core/work_counters.hpp"
#include "gpusim/kernel.hpp"

namespace sj {

EstimateResult estimate_result_size(const GridDeviceView& grid, bool unicomp,
                                    double sample_rate, int block_size,
                                    std::uint64_t min_sample) {
  return estimate_query_span(grid, unicomp, sample_rate, block_size,
                             /*order=*/nullptr, 0, grid.num_queries(),
                             min_sample);
}

EstimateResult estimate_query_span(const GridDeviceView& grid, bool unicomp,
                                   double sample_rate, int block_size,
                                   const std::uint32_t* order,
                                   std::uint64_t first, std::uint64_t count,
                                   std::uint64_t min_sample) {
  Timer t;
  EstimateResult r;
  const std::uint64_t nq = count;
  if (nq == 0 || grid.n == 0) return r;

  std::uint64_t sample = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(nq) * sample_rate));
  sample = std::clamp<std::uint64_t>(sample,
                                     std::min<std::uint64_t>(min_sample, nq),
                                     nq);

  // Evenly strided sample so all density regimes are represented.
  std::vector<std::uint32_t> ids(sample);
  const double stride = static_cast<double>(nq) / static_cast<double>(sample);
  for (std::uint64_t i = 0; i < sample; ++i) {
    const std::uint64_t pos =
        first + std::min<std::uint64_t>(
                    static_cast<std::uint64_t>(static_cast<double>(i) * stride),
                    nq - 1);
    ids[i] = order != nullptr ? order[pos]
                              : static_cast<std::uint32_t>(pos);
  }

  AtomicWork work;
  SelfJoinKernelParams p;
  p.grid = grid;
  p.query_ids = ids.data();
  p.num_queries = sample;
  p.unicomp = unicomp;
  p.work = &work;
  // result.out stays null: count-only mode.

  {
    // The sampling launch sits outside the pipeline's retry loop, so it
    // carries its own bounded in-place retry against injected transient
    // faults. Safe to re-run: the launch-entry fault fires before any
    // kernel-thread body, so `work` holds nothing from a failed attempt.
    fault::DeviceScope fault_scope(-1);
    for (int attempt = 0;; ++attempt) {
      try {
        gpu::launch(
            gpu::LaunchConfig::cover(sample, block_size),
            [&p](const gpu::ThreadCtx& ctx) { self_join_thread(ctx, p); });
        break;
      } catch (const fault::TransientDeviceError&) {
        if (attempt >= 5) throw;
      }
    }
  }

  gpu::KernelMetrics m;
  work.add_to(m);
  r.sample_size = sample;
  r.sample_count = m.results;
  r.estimated_total = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(m.results) *
                (static_cast<double>(nq) / static_cast<double>(sample))));
  r.seconds = t.seconds();
  return r;
}

std::vector<std::uint64_t> per_cell_candidates(const GridDeviceView& grid,
                                               bool unicomp) {
  // Standalone wrapper over the adjacency build (tests, ad-hoc planning);
  // the join engines call build_cell_adjacency directly and keep the
  // range lists for the kernels.
  gpu::GlobalMemoryArena scratch(std::numeric_limits<std::size_t>::max() / 2);
  return build_cell_adjacency(scratch, grid, unicomp).weights;
}

}  // namespace sj
