#include "core/batch_pipeline.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/cancel.hpp"
#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "core/kernels.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/sort.hpp"
#include "gpusim/stream.hpp"

namespace sj {

namespace {

// One unit of kernel-stage work. Root batches are generated lazily inside
// the worker (the work list is recomputed from `root`); overflow splits
// carry their explicit halves.
struct Task {
  std::size_t root = 0;
  bool is_root = true;
  int attempts = 0;                  // transient-fault re-runs so far
  std::vector<std::uint32_t> ids;    // point mode
  std::vector<CellWorkItem> cells;   // cell mode
};

// A batch result handed from the stream pool to the assembly stage.
// `first_key` is the batch's smallest query slot — batches partition the
// query slots, so it is a unique, deterministic merge key. The pairs live
// in a pooled staging buffer recycled across batches.
struct Completed {
  std::uint32_t first_key = 0;
  SegmentPool::Buffer pairs;
};

/// Overflow split shared by the cell-shaped modes (CellMode,
/// JoinGroupMode): halve the item list; for a single oversized item,
/// halve its [begin, end) subrange instead — so the fatal condition stays
/// "one POINT's (or query's) neighbourhood exceeds the buffer", exactly
/// as in the point-centric scheme. False when unsplittable.
bool split_cell_items(const Task& t, Task& lo, Task& hi) {
  lo.is_root = hi.is_root = false;
  if (t.cells.size() > 1) {
    const std::size_t half = t.cells.size() / 2;
    lo.cells.assign(t.cells.begin(),
                    t.cells.begin() + static_cast<std::ptrdiff_t>(half));
    hi.cells.assign(t.cells.begin() + static_cast<std::ptrdiff_t>(half),
                    t.cells.end());
    return true;
  }
  const CellWorkItem item = t.cells.front();
  if (item.end - item.begin <= 1) return false;
  const std::uint32_t mid = item.begin + (item.end - item.begin) / 2;
  lo.cells.push_back(CellWorkItem{item.cell, item.begin, mid});
  hi.cells.push_back(CellWorkItem{item.cell, mid, item.end});
  return true;
}

/// Point-centric execution policy: a work unit is one query id, root
/// batch b is the strided set {i : i % nb == b} (spreads dense regions
/// evenly across batches), splits halve the id list.
class PointMode {
 public:
  PointMode(const GridDeviceView& grid, bool unicomp, std::size_t nb,
            int block_size)
      : grid_(grid), unicomp_(unicomp), nb_(nb), block_size_(block_size) {}

  void expand_root(Task& t) const {
    const std::uint64_t nq = grid_.num_queries();
    t.ids.reserve(static_cast<std::size_t>(nq / nb_) + 1);
    for (std::uint64_t i = t.root; i < nq; i += nb_) {
      t.ids.push_back(static_cast<std::uint32_t>(i));
    }
  }

  std::uint32_t first_key(const Task& t) const { return t.ids.front(); }

  /// first_key of root batch `root` without expanding it (the sink-mode
  /// watermark registers every root before any kernel runs).
  std::uint32_t root_first_key(std::size_t root) const {
    return static_cast<std::uint32_t>(root);  // ids start at the root index
  }

  /// Split in two; false when the task is a single point (unsplittable).
  bool split(const Task& t, Task& lo, Task& hi) const {
    if (t.ids.size() <= 1) return false;
    const std::size_t half = t.ids.size() / 2;
    lo.is_root = hi.is_root = false;
    lo.ids.assign(t.ids.begin(),
                  t.ids.begin() + static_cast<std::ptrdiff_t>(half));
    hi.ids.assign(t.ids.begin() + static_cast<std::ptrdiff_t>(half),
                  t.ids.end());
    return true;
  }

  gpu::KernelStats launch(gpu::GlobalMemoryArena& arena, const Task& t,
                          const ResultBufferView& result,
                          AtomicWork* work) const {
    // Ship this batch's query ids to the device.
    gpu::DeviceBuffer<std::uint32_t> qids(arena, t.ids.size());
    std::memcpy(qids.data(), t.ids.data(),
                t.ids.size() * sizeof(std::uint32_t));
    SelfJoinKernelParams p;
    p.grid = grid_;
    p.query_ids = qids.data();
    p.num_queries = t.ids.size();
    p.result = result;
    p.unicomp = unicomp_;
    p.work = work;
    return gpu::launch(
        gpu::LaunchConfig::cover(t.ids.size(), block_size_),
        [&p](const gpu::ThreadCtx& ctx) { self_join_thread(ctx, p); });
  }

 private:
  const GridDeviceView& grid_;
  bool unicomp_;
  std::size_t nb_;
  int block_size_;
};

/// Cell-centric execution policy: a work unit is a (cell, slot-subrange)
/// item, root batch b is the plan's contiguous cell range, splits halve
/// the item list and fall back to halving a single cell's slot range.
class CellMode {
 public:
  CellMode(const GridDeviceView& grid, bool unicomp,
           const CellBatchPlan& plan, const CellAdjacency* adjacency,
           int block_size)
      : grid_(grid), unicomp_(unicomp), plan_(plan), adjacency_(adjacency),
        block_size_(block_size) {}

  void expand_root(Task& t) const {
    const std::uint32_t begin = plan_.boundaries[t.root];
    const std::uint32_t end = plan_.boundaries[t.root + 1];
    t.cells.reserve(end - begin);
    for (std::uint32_t cell = begin; cell < end; ++cell) {
      const GridIndex::CellRange r = grid_.G[cell];
      t.cells.push_back(CellWorkItem{cell, r.min, r.max + 1});
    }
  }

  std::uint32_t first_key(const Task& t) const {
    return t.cells.front().begin;  // first point slot of the batch
  }

  std::uint32_t root_first_key(std::size_t root) const {
    return grid_.G[plan_.boundaries[root]].min;
  }

  bool split(const Task& t, Task& lo, Task& hi) const {
    return split_cell_items(t, lo, hi);
  }

  gpu::KernelStats launch(gpu::GlobalMemoryArena& arena, const Task& t,
                          const ResultBufferView& result,
                          AtomicWork* work) const {
    gpu::DeviceBuffer<CellWorkItem> items(arena, t.cells.size());
    std::memcpy(items.data(), t.cells.data(),
                t.cells.size() * sizeof(CellWorkItem));
    CellJoinKernelParams p;
    p.grid = grid_;
    p.items = items.data();
    p.num_items = t.cells.size();
    if (adjacency_ != nullptr) {
      p.ranges = adjacency_->ranges.data();
      p.range_offsets = adjacency_->offsets.data();
    }
    p.result = result;
    p.unicomp = unicomp_;
    p.work = work;
    // A cell-mode "thread" covers a whole cell, so batches hold far fewer
    // work units than point batches hold points; smaller blocks keep
    // enough blocks in flight for the block-level scheduler.
    return gpu::launch(
        gpu::LaunchConfig::cover(t.cells.size(),
                                 std::min(block_size_, 32)),
        [&p](const gpu::ThreadCtx& ctx) { self_join_cells_thread(ctx, p); });
  }

 private:
  const GridDeviceView& grid_;
  bool unicomp_;
  const CellBatchPlan& plan_;
  const CellAdjacency* adjacency_;
  int block_size_;
};

/// Query/data-join execution policy: a work unit is a (group, query-
/// position subrange) item over the adjacency's sorted query order; root
/// batch b is the plan's contiguous group range, splits mirror CellMode
/// (halve the item list, then a single oversized group's query range).
class JoinGroupMode {
 public:
  JoinGroupMode(const GridDeviceView& grid, const CellBatchPlan& plan,
                const JoinAdjacency& adjacency, int block_size)
      : grid_(grid), plan_(plan), adjacency_(adjacency),
        block_size_(block_size) {}

  void expand_root(Task& t) const {
    const std::uint32_t begin = plan_.boundaries[t.root];
    const std::uint32_t end = plan_.boundaries[t.root + 1];
    t.cells.reserve(end - begin);
    for (std::uint32_t group = begin; group < end; ++group) {
      t.cells.push_back(CellWorkItem{group,
                                     adjacency_.group_offsets[group],
                                     adjacency_.group_offsets[group + 1]});
    }
  }

  std::uint32_t first_key(const Task& t) const {
    return t.cells.front().begin;  // first query position of the batch
  }

  std::uint32_t root_first_key(std::size_t root) const {
    return adjacency_.group_offsets[plan_.boundaries[root]];
  }

  bool split(const Task& t, Task& lo, Task& hi) const {
    return split_cell_items(t, lo, hi);
  }

  gpu::KernelStats launch(gpu::GlobalMemoryArena& arena, const Task& t,
                          const ResultBufferView& result,
                          AtomicWork* work) const {
    gpu::DeviceBuffer<CellWorkItem> items(arena, t.cells.size());
    std::memcpy(items.data(), t.cells.data(),
                t.cells.size() * sizeof(CellWorkItem));
    JoinCellsKernelParams p;
    p.grid = grid_;
    p.query_order = adjacency_.query_order.data();
    p.items = items.data();
    p.num_items = t.cells.size();
    p.ranges = adjacency_.ranges.data();
    p.range_offsets = adjacency_.offsets.data();
    p.result = result;
    p.work = work;
    return gpu::launch(
        gpu::LaunchConfig::cover(t.cells.size(),
                                 std::min(block_size_, 32)),
        [&p](const gpu::ThreadCtx& ctx) { join_cells_thread(ctx, p); });
  }

 private:
  const GridDeviceView& grid_;
  const CellBatchPlan& plan_;
  const JoinAdjacency& adjacency_;
  int block_size_;
};

}  // namespace

std::exception_ptr annotate_exception(std::exception_ptr e,
                                      const std::string& context) {
  try {
    std::rethrow_exception(e);
  } catch (const gpu::DeviceOutOfMemory& oom) {
    return std::make_exception_ptr(gpu::DeviceOutOfMemory(
        oom.requested, oom.free_bytes, context + ": " + oom.what()));
  } catch (const fault::ResourceExhausted& ex) {
    return std::make_exception_ptr(
        fault::ResourceExhausted(context + ": " + ex.what()));
  } catch (const fault::TransientDeviceError& ex) {
    return std::make_exception_ptr(
        fault::TransientDeviceError(context + ": " + ex.what()));
  } catch (const fault::DeviceLost& ex) {
    return std::make_exception_ptr(
        fault::DeviceLost(ex.device, context + ": " + ex.what()));
  } catch (const exec::DeadlineExceeded& ex) {
    return std::make_exception_ptr(
        exec::DeadlineExceeded(context + ": " + ex.what()));
  } catch (const exec::Cancelled& ex) {
    return std::make_exception_ptr(
        exec::Cancelled(context + ": " + ex.what()));
  } catch (const exec::Overloaded& ex) {
    return std::make_exception_ptr(
        exec::Overloaded(context + ": " + ex.what()));
  } catch (const fault::FaultError& ex) {
    return std::make_exception_ptr(
        fault::FaultError(context + ": " + ex.what()));
  } catch (const std::invalid_argument& ex) {
    return std::make_exception_ptr(
        std::invalid_argument(context + ": " + ex.what()));
  } catch (const std::exception& ex) {
    return std::make_exception_ptr(
        std::runtime_error(context + ": " + ex.what()));
  } catch (...) {
    return std::make_exception_ptr(
        std::runtime_error(context + ": unknown error"));
  }
}

SegmentPool::Buffer SegmentPool::acquire(std::uint64_t count) {
  if (count == 0) return {};
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Best fit: the smallest pooled buffer that holds `count`.
    std::size_t best = free_.size();
    for (std::size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].capacity >= count &&
          (best == free_.size() || free_[i].capacity < free_[best].capacity)) {
        best = i;
      }
    }
    if (best != free_.size()) {
      Buffer b = std::move(free_[best]);
      free_[best] = std::move(free_.back());
      free_.pop_back();
      b.count = count;
      return b;
    }
  }
  Buffer b;
  // Intentionally not value-initialised: the device->host transfer
  // overwrites exactly `count` pairs.
  b.data = std::make_unique_for_overwrite<Pair[]>(
      static_cast<std::size_t>(count));
  b.capacity = count;
  b.count = count;
  return b;
}

void SegmentPool::release(Buffer b) {
  // A moved-from buffer keeps its stale capacity but owns no storage;
  // pooling it would hand a null allocation to a later acquire(). The
  // error-drain paths release defensively, so tolerate both shapes.
  if (b.data == nullptr || b.capacity == 0) return;
  b.count = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (contracts::active()) {
    // A buffer arriving twice means two owners were lent the same
    // allocation — the staging reuse would then corrupt a batch.
    for (const Buffer& f : free_) {
      SJ_CHECK(f.data.get() != b.data.get(),
               "SegmentPool: buffer released twice");
    }
  }
  free_.push_back(std::move(b));
}

BatchPipeline::BatchPipeline(gpu::GlobalMemoryArena& arena,
                             const gpu::DeviceSpec& spec,
                             const PipelineConfig& config)
    : arena_(arena), spec_(spec), config_(config) {
  if (config_.streams <= 0) {
    throw std::invalid_argument("BatchPipeline: streams must be positive");
  }
  if (config_.assembly_threads <= 0) {
    throw std::invalid_argument(
        "BatchPipeline: assembly_threads must be positive");
  }
  if (config_.block_size <= 0) {
    throw std::invalid_argument("BatchPipeline: block_size must be positive");
  }
  if (config_.retry.retries < 0) {
    throw std::invalid_argument(
        "BatchPipeline: retry.retries must be non-negative");
  }
  if (config_.retry.backoff_ms < 0.0) {
    throw std::invalid_argument(
        "BatchPipeline: retry.backoff_ms must be non-negative");
  }
}

namespace {

/// The empty-input result: histogram mode still owes a zero-filled
/// per-key vector.
PipelineOutput empty_output(const ResultRequest& req, BatchRunStats* stats) {
  PipelineOutput out;
  if (req.mode == ResultMode::kHistogram) {
    out.histogram.assign(static_cast<std::size_t>(req.histogram_keys), 0);
  }
  if (stats != nullptr) *stats = {};
  return out;
}

}  // namespace

ResultSet BatchPipeline::run(const GridDeviceView& grid, bool unicomp,
                             const BatchPlan& plan, AtomicWork* work,
                             BatchRunStats* stats) {
  return run(ResultRequest{}, grid, unicomp, plan, work, stats).pairs;
}

PipelineOutput BatchPipeline::run(const ResultRequest& req,
                                  const GridDeviceView& grid, bool unicomp,
                                  const BatchPlan& plan, AtomicWork* work,
                                  BatchRunStats* stats) {
  const std::uint64_t nq = grid.num_queries();
  if (nq == 0 || grid.n == 0) return empty_output(req, stats);
  // Clamp like plan_batches does: a batch needs at least one point, and a
  // root past nq would produce an empty id list.
  const std::size_t nb = std::min<std::size_t>(
      std::max<std::size_t>(plan.num_batches, 1),
      static_cast<std::size_t>(nq));
  const std::uint64_t buffer_pairs =
      std::max<std::uint64_t>(plan.buffer_pairs, 1);
  const PointMode mode(grid, unicomp, nb, config_.block_size);
  return run_impl(mode, nb, buffer_pairs, req, work, stats);
}

ResultSet BatchPipeline::run_cells(const GridDeviceView& grid, bool unicomp,
                                   const CellBatchPlan& plan,
                                   const CellAdjacency* adjacency,
                                   AtomicWork* work, BatchRunStats* stats) {
  return run_cells(ResultRequest{}, grid, unicomp, plan, adjacency, work,
                   stats)
      .pairs;
}

PipelineOutput BatchPipeline::run_cells(const ResultRequest& req,
                                        const GridDeviceView& grid,
                                        bool unicomp,
                                        const CellBatchPlan& plan,
                                        const CellAdjacency* adjacency,
                                        AtomicWork* work,
                                        BatchRunStats* stats) {
  if (grid.n == 0 || plan.num_batches() == 0) {
    return empty_output(req, stats);
  }
  if (!grid.cell_major) {
    throw std::invalid_argument(
        "BatchPipeline::run_cells: grid must use the cell-major layout");
  }
  const std::uint64_t buffer_pairs =
      std::max<std::uint64_t>(plan.buffer_pairs, 1);
  const CellMode mode(grid, unicomp, plan, adjacency, config_.block_size);
  return run_impl(mode, plan.num_batches(), buffer_pairs, req, work, stats);
}

ResultSet BatchPipeline::run_join_groups(const GridDeviceView& grid,
                                         const CellBatchPlan& plan,
                                         const JoinAdjacency& adjacency,
                                         AtomicWork* work,
                                         BatchRunStats* stats) {
  return run_join_groups(ResultRequest{}, grid, plan, adjacency, work, stats)
      .pairs;
}

PipelineOutput BatchPipeline::run_join_groups(const ResultRequest& req,
                                              const GridDeviceView& grid,
                                              const CellBatchPlan& plan,
                                              const JoinAdjacency& adjacency,
                                              AtomicWork* work,
                                              BatchRunStats* stats) {
  if (grid.n == 0 || grid.qn == 0 || plan.num_batches() == 0) {
    return empty_output(req, stats);
  }
  if (!grid.cell_major || grid.qpoints == nullptr) {
    throw std::invalid_argument(
        "BatchPipeline::run_join_groups: grid must be a cell-major data "
        "layout with an external query set");
  }
  const std::uint64_t buffer_pairs =
      std::max<std::uint64_t>(plan.buffer_pairs, 1);
  const JoinGroupMode mode(grid, plan, adjacency, config_.block_size);
  return run_impl(mode, plan.num_batches(), buffer_pairs, req, work, stats);
}

template <typename Mode>
PipelineOutput BatchPipeline::run_impl(const Mode& mode,
                                       std::size_t num_roots,
                                       std::uint64_t buffer_pairs,
                                       const ResultRequest& req,
                                       AtomicWork* work,
                                       BatchRunStats* stats) {
  PipelineOutput output;

  // Deadline/cancel checkpoint before any device allocation: a query
  // that spent its whole budget queued (admission, session backlog)
  // aborts here without touching the arena.
  const exec::ExecControl* ctl = req.control;
  if (ctl != nullptr) ctl->check("pipeline entry");

  // Count-only and histogram runs touch no pair buffers at all: no slot
  // allocations, no device sort, no transfers, no assembly stage — the
  // kernels write through an atomic counter / the O(n) count plane.
  const bool materialise =
      req.mode == ResultMode::kPairs || req.mode == ResultMode::kSink;
  const bool sinking = req.mode == ResultMode::kSink;

  // Double-buffered device allocations, owned by the caller thread so a
  // DeviceOutOfMemory propagates here instead of killing a worker.
  struct Slot {
    gpu::DeviceBuffer<Pair> buffer;
    gpu::DeviceBuffer<Pair> scratch;  // thrust-style O(n) sort storage
    gpu::Event transferred;           // signals this slot's buffer is free
  };
  std::vector<std::array<Slot, 2>> slots(
      materialise ? static_cast<std::size_t>(config_.streams) : 0);
  for (auto& pair_of_slots : slots) {
    for (Slot& s : pair_of_slots) {
      s.buffer = gpu::DeviceBuffer<Pair>(arena_, buffer_pairs);
      s.scratch = gpu::DeviceBuffer<Pair>(arena_, buffer_pairs);
    }
  }

  // Histogram mode: one zero-filled per-key count plane shared by every
  // batch (the kernels bump it with relaxed atomics).
  gpu::DeviceBuffer<std::uint32_t> counts;
  if (req.mode == ResultMode::kHistogram) {
    counts = gpu::DeviceBuffer<std::uint32_t>(arena_, req.histogram_keys);
    std::fill_n(counts.data(), counts.size(), 0u);
  }
  std::atomic<std::uint64_t> counted{0};  // count-only total

  const std::size_t task_cap =
      config_.task_queue_capacity != 0
          ? config_.task_queue_capacity
          : 2 * static_cast<std::size_t>(config_.streams);
  BoundedQueue<Task> tasks(task_cap);
  BoundedQueue<Completed> done(
      2 * static_cast<std::size_t>(config_.assembly_threads));

  // Tasks seeded or split but not yet terminally handled; the thread that
  // brings it to zero closes the task queue and ends the kernel stage.
  // A retried task stays outstanding (same task, re-queued); a split task
  // nets +1 (one became two). Every failure path calls complete_one, so
  // the queue always closes and the stages always drain — an error never
  // leaves run() deadlocked on a segment that will not arrive.
  std::atomic<std::size_t> outstanding{num_roots};
  std::atomic<bool> failed{false};

  std::mutex mu;  // protects acc, segments, the watermark and first_error
  BatchRunStats acc;
  std::map<std::uint32_t, SegmentPool::Buffer> segments;
  std::exception_ptr first_error;

  // Sink-mode watermark: the batch keys not yet streamed (registered for
  // every root up front, extended on splits BEFORE the halves run). A
  // completed segment flushes once it owns the smallest outstanding key,
  // so batches stream to the callback in exactly the order the kPairs
  // concatenation would emit them — and the staged memory stays bounded
  // by the pipeline's in-flight batch count instead of the result size.
  std::multiset<std::uint32_t> pending;
  if (sinking) {
    for (std::size_t b = 0; b < num_roots; ++b) {
      pending.insert(mode.root_first_key(b));
    }
  }
  std::uint64_t sink_flushed = 0;
  std::int64_t last_flushed_key = -1;

  // Flush every segment whose turn has come (callers hold `mu`). The
  // callback runs serially under the lock — sink consumers see ordered,
  // non-overlapping calls.
  auto flush_ready = [this, &req, &segments, &pending, &sink_flushed,
                      &last_flushed_key] {
    while (!segments.empty() && !pending.empty() &&
           segments.begin()->first == *pending.begin()) {
      const std::uint32_t key = segments.begin()->first;
      if (contracts::active()) {
        // The watermark must release batches in strictly increasing
        // first-key order — the order the kPairs concatenation defines.
        SJ_CHECK(static_cast<std::int64_t>(key) > last_flushed_key,
                 "BatchPipeline: sink flush keys must be strictly "
                 "increasing");
      }
      last_flushed_key = static_cast<std::int64_t>(key);
      SegmentPool::Buffer buf = std::move(segments.begin()->second);
      segments.erase(segments.begin());
      pending.erase(pending.begin());
      if (buf.count > 0) req.sink(buf.data.get(), buf.count);
      sink_flushed += buf.count;
      pool_.release(std::move(buf));
    }
  };

  auto complete_one = [&outstanding, &tasks] {
    if (outstanding.fetch_sub(1) == 1) tasks.close();
  };

  // "batch key=K (N queries [a..b]) on device D" — the context every
  // error surfacing from run() carries.
  auto describe_task = [this, &mode](const Task& t) {
    std::string d = "batch";
    if (!t.ids.empty()) {
      d += " key=" + std::to_string(mode.first_key(t)) + " (" +
           std::to_string(t.ids.size()) + " queries [" +
           std::to_string(t.ids.front()) + ".." +
           std::to_string(t.ids.back()) + "])";
    } else if (!t.cells.empty()) {
      d += " key=" + std::to_string(mode.first_key(t)) + " (" +
           std::to_string(t.cells.size()) + " items [" +
           std::to_string(t.cells.front().begin) + ".." +
           std::to_string(t.cells.back().end) + "))";
    } else {
      d += " root=" + std::to_string(t.root);
    }
    if (config_.device_id >= 0) {
      d += " on device " + std::to_string(config_.device_id);
    }
    return d;
  };

  // Unrecoverable: record the (annotated) error and retire the task so
  // the drain makes progress.
  auto record_failure = [&](const Task& task, std::exception_ptr e,
                            const std::string& note) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error == nullptr) {
        first_error = annotate_exception(e, describe_task(task) + note);
      }
    }
    failed.store(true);
    complete_one();
  };

  // Feed a split's halves back into the queue. Exception-safe: if a push
  // throws (allocation under the queue lock), the un-pushed halves are
  // retired so `outstanding` still reaches zero and the stages drain.
  auto push_split = [&](Task lo, Task hi) {
    outstanding.fetch_add(1);  // net effect of the split: 1 -> 2
    int pushed = 0;
    try {
      tasks.push_overflow(std::move(lo));
      ++pushed;
      tasks.push_overflow(std::move(hi));
      ++pushed;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (first_error == nullptr) first_error = std::current_exception();
      }
      failed.store(true);
      for (; pushed < 2; ++pushed) complete_one();
    }
  };

  // Transient-fault retry: same task, same `outstanding` charge, bounded
  // exponential backoff (doubling per attempt, capped at 32x).
  auto retry_task = [&](Task& task) {
    ++task.attempts;
    {
      std::lock_guard<std::mutex> lock(mu);
      ++acc.retries;
    }
    const int exponent = std::min(task.attempts - 1, 5);
    const double ms =
        config_.retry.backoff_ms * static_cast<double>(1 << exponent);
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
    try {
      tasks.push_overflow(std::move(task));
    } catch (...) {
      record_failure(task, std::current_exception(), " (requeue failed)");
    }
  };

  // Failure classification, the taxonomy's contract (common/fault.hpp):
  // transient -> bounded retry; resource exhaustion -> degrade by
  // splitting (retry when unsplittable, attempts permitting); device loss
  // and everything else -> fail the run with batch context attached.
  auto handle_worker_error = [&](Task& task, std::exception_ptr e) {
    try {
      std::rethrow_exception(e);
    } catch (const fault::TransientDeviceError&) {
      if (task.attempts < config_.retry.retries) {
        retry_task(task);
      } else {
        record_failure(task, e, " (transient-fault retries exhausted)");
      }
    } catch (const fault::DeviceLost&) {
      record_failure(task, e, "");
    } catch (const fault::ResourceExhausted&) {
      Task lo, hi;
      if (mode.split(task, lo, hi)) {
        {
          std::lock_guard<std::mutex> lock(mu);
          ++acc.batches_split_on_oom;
          if (sinking) pending.insert(mode.first_key(hi));
        }
        push_split(std::move(lo), std::move(hi));
      } else if (task.attempts < config_.retry.retries) {
        // Unsplittable, but the exhaustion may be spurious (injected, or
        // another stream's transient allocation spike): retry in place.
        retry_task(task);
      } else {
        record_failure(task, e, " (unsplittable after resource exhaustion)");
      }
    } catch (...) {
      record_failure(task, e, "");
    }
  };

  // --- Stage 3: host assembly. Completed segments are merged into the
  // deterministic batch-key order while further kernels run; in sink mode
  // each insert also advances the watermark.
  std::vector<std::thread> assemblers;
  const int n_assemblers = materialise ? config_.assembly_threads : 0;
  assemblers.reserve(static_cast<std::size_t>(n_assemblers));
  for (int a = 0; a < n_assemblers; ++a) {
    assemblers.emplace_back([&] {
      Completed c;
      while (done.pop(c)) {
        // A throw from the merge (map allocation) or from the sink
        // callback must not std::terminate the process or stall the
        // stream callbacks feeding `done`: record it, keep draining, and
        // let run() rethrow after the join.
        try {
          Timer merge_timer;
          std::lock_guard<std::mutex> lock(mu);
          if (failed.load(std::memory_order_relaxed)) {
            pool_.release(std::move(c.pairs));  // drain and discard
            continue;
          }
          if (contracts::active()) {
            // Batches partition the query slots, so two segments can
            // never share a first key; a duplicate would silently drop a
            // batch.
            SJ_CHECK(segments.find(c.first_key) == segments.end(),
                     "BatchPipeline: duplicate batch merge key");
          }
          segments[c.first_key] = std::move(c.pairs);
          if (sinking) flush_ready();
          acc.assembly_seconds += merge_timer.seconds();
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error == nullptr) {
              first_error = annotate_exception(
                  std::current_exception(),
                  "assembly of batch key=" + std::to_string(c.first_key));
            }
          }
          failed.store(true);
          pool_.release(std::move(c.pairs));  // no-op if already merged
        }
      }
    });
  }

  // --- Stage 2: kernel workers, one simulated stream each. The kernel and
  // the device sort run on the worker; the device->host result transfer
  // and the hand-off to assembly are enqueued on the stream, so the next
  // batch's kernel overlaps the previous batch's transfer (double
  // buffered per worker).
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config_.streams));
  for (int w = 0; w < config_.streams; ++w) {
    workers.emplace_back([&, w] {
      gpu::Stream stream(spec_);
      // Slot array is empty in the non-materialising modes.
      Slot* my_slots = materialise
                           ? slots[static_cast<std::size_t>(w)].data()
                           : nullptr;
      int flip = 0;
      Task task;
      while (tasks.pop(task)) {
        if (failed.load(std::memory_order_relaxed)) {
          complete_one();  // drain mode: shut down as fast as possible
          continue;
        }
        try {
          // Arm fault injection for exactly this batch's span: every
          // injected fault lands in this try block, classified and
          // recovered by handle_worker_error. All hooks fire BEFORE the
          // operation's side effects, so a retry re-runs a clean batch.
          fault::DeviceScope fault_scope(config_.device_id);
          SJ_FAULT_BATCH(
              config_.device_id,
              batch_ordinal_.fetch_add(1, std::memory_order_relaxed) + 1);
          // Checkpoint seam 1 (queue pop): the task was dequeued but no
          // work has started — the cheapest point to honour a deadline
          // or cancellation. The typed error flows through
          // handle_worker_error's terminal branch into the drain path.
          if (ctl != nullptr) ctl->check("queue pop");
          if (task.is_root) {
            // Root batches expand here, off the seeding thread's
            // critical path.
            mode.expand_root(task);
            task.is_root = false;  // a retry must not re-expand the ids
          }

          if (!materialise) {
            // Count-only / histogram: launch, fold the count, done — no
            // buffer, no overflow, no sort, no transfer.
            gpu::DeviceCounter cursor;
            ResultBufferView result;
            if (req.mode == ResultMode::kHistogram) {
              result.counts = counts.data();
            } else {
              result.cursor = &cursor;
            }
            // Checkpoint seam 2 (pre-launch): last exit before the
            // kernel runs; root expansion above may have taken a while.
            if (ctl != nullptr) ctl->check("pre-launch");
            const gpu::KernelStats ks =
                mode.launch(arena_, task, result, work);
            counted.fetch_add(cursor.load(), std::memory_order_relaxed);
            {
              std::lock_guard<std::mutex> lock(mu);
              acc.kernel_seconds += ks.seconds;
              ++acc.batches_run;
            }
            complete_one();
            continue;
          }

          Slot& slot = my_slots[static_cast<std::size_t>(flip)];
          flip ^= 1;
          slot.transferred.wait();  // slot's previous transfer has drained

          gpu::DeviceCounter cursor;
          std::atomic<bool> overflow{false};

          ResultBufferView result;
          result.out = slot.buffer.data();
          result.capacity = buffer_pairs;
          result.cursor = &cursor;
          result.overflow = &overflow;

          // Checkpoint seam 2 (pre-launch), materialising path.
          if (ctl != nullptr) ctl->check("pre-launch");
          const gpu::KernelStats ks =
              mode.launch(arena_, task, result, work);

          if (overflow.load()) {
            // The estimate undershot for this batch: split in two and feed
            // both halves back into the SAME queue — no barrier, the other
            // streams never notice.
            {
              std::lock_guard<std::mutex> lock(mu);
              acc.kernel_seconds += ks.seconds;
              ++acc.batches_run;
              ++acc.overflow_retries;
            }
            Task lo, hi;
            if (!mode.split(task, lo, hi)) {
              // A single point's neighbourhood exceeds the buffer —
              // cannot split further. Fail the run with the batch named.
              record_failure(
                  task,
                  std::make_exception_ptr(gpu::DeviceOutOfMemory(
                      buffer_pairs * sizeof(Pair) * 2,
                      buffer_pairs * sizeof(Pair))),
                  " (single query's neighbourhood overflows the result "
                  "buffer)");
              continue;
            }
            if (sinking) {
              // Register the new half's key before either half can run:
              // lo inherits the parent's first key, hi adds one.
              std::lock_guard<std::mutex> lock(mu);
              pending.insert(mode.first_key(hi));
            }
            push_split(std::move(lo), std::move(hi));
            continue;
          }

          const std::uint64_t nres = cursor.load();
          // Device key/value sort of the batch (the paper sorts each batch
          // before transferring it, Section IV-E) — this is also what
          // makes every segment's content deterministic.
          Timer sort_timer;
          gpu::sort_pairs_by_key(slot.buffer.data(), nres,
                                 slot.scratch.data());
          const double sort_s = sort_timer.seconds();

          // Async transfer + hand-off: enqueued on the stream so this
          // worker immediately starts the next kernel in the other slot.
          // The destination is a pooled staging buffer (uninitialised,
          // recycled) — see SegmentPool. shared_ptr because the stream's
          // std::function queue needs a copyable closure.
          // Checkpoint seam 3 (pre-transfer): the kernel and sort ran,
          // but the result has not been shipped or merged — abandoning
          // here discards only device-side work and the drain path
          // releases the staging buffer.
          if (ctl != nullptr) ctl->check("pre-transfer");
          auto host = std::make_shared<SegmentPool::Buffer>(
              pool_.acquire(nres));
          const std::uint32_t first_key = mode.first_key(task);
          if (nres > 0) {
            stream.memcpy_async(host->data.get(), slot.buffer.data(),
                                static_cast<std::size_t>(nres) * sizeof(Pair));
          }
          stream.enqueue([host, first_key, &done, &complete_one] {
            done.push(Completed{first_key, std::move(*host)});
            complete_one();
          });
          slot.transferred.record(stream);

          std::lock_guard<std::mutex> lock(mu);
          acc.kernel_seconds += ks.seconds;
          acc.sort_seconds += sort_s;
          ++acc.batches_run;
        } catch (...) {
          handle_worker_error(task, std::current_exception());
        }
      }
      stream.synchronize();  // pending transfers still read the slots
      std::lock_guard<std::mutex> lock(mu);
      acc.bytes_to_host += stream.bytes_copied();
      acc.modeled_transfer_seconds += stream.modeled_copy_seconds();
    });
  }

  // --- Stage 1: seed the root batches (bounded push: backpressure once
  // the pool is saturated). `outstanding` was pre-charged with all roots,
  // so the queue cannot close before the last root is seeded.
  for (std::size_t b = 0; b < num_roots; ++b) {
    Task t;
    t.root = b;
    tasks.push(std::move(t));
  }

  for (auto& w : workers) w.join();
  done.close();
  for (auto& a : assemblers) a.join();

  if (first_error != nullptr) std::rethrow_exception(first_error);

  if (req.mode == ResultMode::kCountOnly) {
    output.total_pairs = counted.load();
    if (stats != nullptr) *stats = acc;
    return output;
  }
  if (req.mode == ResultMode::kHistogram) {
    output.histogram.assign(counts.data(), counts.data() + counts.size());
    output.total_pairs =
        std::accumulate(output.histogram.begin(), output.histogram.end(),
                        std::uint64_t{0});
    if (stats != nullptr) *stats = acc;
    return output;
  }
  if (sinking) {
    // Every batch completed, so the watermark has streamed everything.
    flush_ready();
    if (contracts::active()) {
      SJ_CHECK(segments.empty() && pending.empty(),
               "BatchPipeline: sink watermark must drain every segment");
    }
    output.total_pairs = sink_flushed;
    if (stats != nullptr) *stats = acc;
    return output;
  }

  // Deterministic final assembly: segments in ascending first-key order,
  // each internally sorted by the device sort. Final offsets are only
  // known once every segment has landed, so this concatenation is the
  // pipeline's serial tail — the assembly workers parallelise it (each
  // copies an interleaved subset of segments to its precomputed offset),
  // which is where a multi-thread assembly config pays off on large
  // result sets.
  struct Placement {
    const SegmentPool::Buffer* segment;
    std::size_t offset;
  };
  std::vector<Placement> layout;
  layout.reserve(segments.size());
  std::size_t total = 0;
  for (const auto& [key, buffer] : segments) {
    layout.push_back({&buffer, total});
    total += static_cast<std::size_t>(buffer.count);
  }
  auto& out = output.pairs.pairs();
  const std::size_t copiers = std::min<std::size_t>(
      static_cast<std::size_t>(config_.assembly_threads), layout.size());
  Timer concat_timer;
  if (copiers <= 1) {
    out.reserve(total);
    for (const auto& p : layout) {
      out.insert(out.end(), p.segment->data.get(),
                 p.segment->data.get() + p.segment->count);
    }
  } else {
    out.resize(total);
    std::vector<std::thread> concat;
    concat.reserve(copiers);
    for (std::size_t t = 0; t < copiers; ++t) {
      concat.emplace_back([&layout, &out, t, copiers] {
        for (std::size_t i = t; i < layout.size(); i += copiers) {
          std::copy(layout[i].segment->data.get(),
                    layout[i].segment->data.get() + layout[i].segment->count,
                    out.begin() + static_cast<std::ptrdiff_t>(
                                      layout[i].offset));
        }
      });
    }
    for (auto& c : concat) c.join();
  }
  // The staged segments go back to the pool: the next run on this
  // pipeline (or the next overflow-heavy round) reuses the allocations.
  for (auto& [key, buffer] : segments) pool_.release(std::move(buffer));
  acc.assembly_seconds += concat_timer.seconds();

  output.total_pairs = out.size();
  if (stats != nullptr) *stats = acc;
  return output;
}

}  // namespace sj
