#include "core/batch_pipeline.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <exception>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "core/kernels.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/sort.hpp"
#include "gpusim/stream.hpp"

namespace sj {

namespace {

// One unit of kernel-stage work. Root batches are generated lazily inside
// the worker (ids empty, the strided assignment is recomputed from
// `root`); overflow splits carry their explicit id halves.
struct Task {
  std::size_t root = 0;
  std::vector<std::uint32_t> ids;
};

// A batch result handed from the stream pool to the assembly stage.
// `first_id` is the batch's smallest query id — batches partition the
// query ids, so it is a unique, deterministic merge key.
struct Completed {
  std::uint32_t first_id = 0;
  std::vector<Pair> pairs;
};

}  // namespace

BatchPipeline::BatchPipeline(gpu::GlobalMemoryArena& arena,
                             const gpu::DeviceSpec& spec,
                             const PipelineConfig& config)
    : arena_(arena), spec_(spec), config_(config) {
  if (config_.streams <= 0) {
    throw std::invalid_argument("BatchPipeline: streams must be positive");
  }
  if (config_.assembly_threads <= 0) {
    throw std::invalid_argument(
        "BatchPipeline: assembly_threads must be positive");
  }
  if (config_.block_size <= 0) {
    throw std::invalid_argument("BatchPipeline: block_size must be positive");
  }
}

ResultSet BatchPipeline::run(const GridDeviceView& grid, bool unicomp,
                             const BatchPlan& plan, AtomicWork* work,
                             BatchRunStats* stats) {
  ResultSet final_result;
  const std::uint64_t nq = grid.num_queries();
  if (nq == 0 || grid.n == 0) {
    if (stats != nullptr) *stats = {};
    return final_result;
  }
  // Clamp like plan_batches does: a batch needs at least one point, and a
  // root past nq would produce an empty id list.
  const std::size_t nb = std::min<std::size_t>(
      std::max<std::size_t>(plan.num_batches, 1),
      static_cast<std::size_t>(nq));
  const std::uint64_t buffer_pairs = std::max<std::uint64_t>(
      plan.buffer_pairs, 1);

  // Double-buffered device allocations, owned by the caller thread so a
  // DeviceOutOfMemory propagates here instead of killing a worker.
  struct Slot {
    gpu::DeviceBuffer<Pair> buffer;
    gpu::DeviceBuffer<Pair> scratch;  // thrust-style O(n) sort storage
    gpu::Event transferred;           // signals this slot's buffer is free
  };
  std::vector<std::array<Slot, 2>> slots(
      static_cast<std::size_t>(config_.streams));
  for (auto& pair_of_slots : slots) {
    for (Slot& s : pair_of_slots) {
      s.buffer = gpu::DeviceBuffer<Pair>(arena_, buffer_pairs);
      s.scratch = gpu::DeviceBuffer<Pair>(arena_, buffer_pairs);
    }
  }

  const std::size_t task_cap =
      config_.task_queue_capacity != 0
          ? config_.task_queue_capacity
          : 2 * static_cast<std::size_t>(config_.streams);
  BoundedQueue<Task> tasks(task_cap);
  BoundedQueue<Completed> done(
      2 * static_cast<std::size_t>(config_.assembly_threads));

  // Tasks seeded or split but not yet terminally handled; the thread that
  // brings it to zero closes the task queue and ends the kernel stage.
  std::atomic<std::size_t> outstanding{nb};
  std::atomic<bool> fatal_overflow{false};
  std::atomic<bool> failed{false};

  std::mutex mu;  // protects acc, segments and first_error
  BatchRunStats acc;
  std::map<std::uint32_t, std::vector<Pair>> segments;
  std::exception_ptr first_error;

  auto complete_one = [&outstanding, &tasks] {
    if (outstanding.fetch_sub(1) == 1) tasks.close();
  };

  // --- Stage 3: host assembly. Completed segments are merged into the
  // deterministic batch-key order while further kernels run.
  std::vector<std::thread> assemblers;
  assemblers.reserve(static_cast<std::size_t>(config_.assembly_threads));
  for (int a = 0; a < config_.assembly_threads; ++a) {
    assemblers.emplace_back([&done, &mu, &segments, &acc] {
      Completed c;
      while (done.pop(c)) {
        Timer merge_timer;
        std::lock_guard<std::mutex> lock(mu);
        segments[c.first_id] = std::move(c.pairs);
        acc.assembly_seconds += merge_timer.seconds();
      }
    });
  }

  // --- Stage 2: kernel workers, one simulated stream each. The kernel and
  // the device sort run on the worker; the device->host result transfer
  // and the hand-off to assembly are enqueued on the stream, so the next
  // batch's kernel overlaps the previous batch's transfer (double
  // buffered per worker).
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(config_.streams));
  for (int w = 0; w < config_.streams; ++w) {
    workers.emplace_back([&, w] {
      gpu::Stream stream(spec_);
      auto& my_slots = slots[static_cast<std::size_t>(w)];
      int flip = 0;
      Task task;
      while (tasks.pop(task)) {
        if (fatal_overflow.load(std::memory_order_relaxed) ||
            failed.load(std::memory_order_relaxed)) {
          complete_one();  // drain mode: shut down as fast as possible
          continue;
        }
        try {
          Slot& slot = my_slots[static_cast<std::size_t>(flip)];
          flip ^= 1;
          slot.transferred.wait();  // slot's previous transfer has drained

          if (task.ids.empty()) {
            // Strided root batch: {i : i % nb == root} spreads dense
            // regions evenly across batches. Generated here, off the
            // seeding thread's critical path.
            task.ids.reserve(static_cast<std::size_t>(nq / nb) + 1);
            for (std::uint64_t i = task.root; i < nq; i += nb) {
              task.ids.push_back(static_cast<std::uint32_t>(i));
            }
          }

          // Ship this batch's query ids to the device.
          gpu::DeviceBuffer<std::uint32_t> qids(arena_, task.ids.size());
          std::memcpy(qids.data(), task.ids.data(),
                      task.ids.size() * sizeof(std::uint32_t));

          gpu::DeviceCounter cursor;
          std::atomic<bool> overflow{false};

          SelfJoinKernelParams p;
          p.grid = grid;
          p.query_ids = qids.data();
          p.num_queries = task.ids.size();
          p.result.out = slot.buffer.data();
          p.result.capacity = buffer_pairs;
          p.result.cursor = &cursor;
          p.result.overflow = &overflow;
          p.unicomp = unicomp;
          p.work = work;

          const gpu::KernelStats ks = gpu::launch(
              gpu::LaunchConfig::cover(task.ids.size(), config_.block_size),
              [&p](const gpu::ThreadCtx& ctx) { self_join_thread(ctx, p); });

          if (overflow.load()) {
            // The estimate undershot for this batch: split in two and feed
            // both halves back into the SAME queue — no barrier, the other
            // streams never notice.
            {
              std::lock_guard<std::mutex> lock(mu);
              acc.kernel_seconds += ks.seconds;
              ++acc.batches_run;
              ++acc.overflow_retries;
            }
            if (task.ids.size() <= 1) {
              // A single point's neighbourhood exceeds the buffer —
              // cannot split further. Reported after the drain.
              fatal_overflow.store(true);
              complete_one();
              continue;
            }
            const std::size_t half = task.ids.size() / 2;
            Task lo, hi;
            lo.ids.assign(task.ids.begin(),
                          task.ids.begin() + static_cast<std::ptrdiff_t>(half));
            hi.ids.assign(task.ids.begin() + static_cast<std::ptrdiff_t>(half),
                          task.ids.end());
            outstanding.fetch_add(1);  // net effect of the split: 1 -> 2
            tasks.push_overflow(std::move(lo));
            tasks.push_overflow(std::move(hi));
            continue;
          }

          const std::uint64_t nres = cursor.load();
          // Device key/value sort of the batch (the paper sorts each batch
          // before transferring it, Section IV-E) — this is also what
          // makes every segment's content deterministic.
          Timer sort_timer;
          gpu::sort_pairs_by_key(slot.buffer.data(), nres,
                                 slot.scratch.data());
          const double sort_s = sort_timer.seconds();

          // Async transfer + hand-off: enqueued on the stream so this
          // worker immediately starts the next kernel in the other slot.
          auto host = std::make_shared<std::vector<Pair>>(
              static_cast<std::size_t>(nres));
          const std::uint32_t first_id = task.ids.front();
          if (nres > 0) {
            stream.memcpy_async(host->data(), slot.buffer.data(),
                                static_cast<std::size_t>(nres) * sizeof(Pair));
          }
          stream.enqueue([host, first_id, &done, &complete_one] {
            done.push(Completed{first_id, std::move(*host)});
            complete_one();
          });
          slot.transferred.record(stream);

          std::lock_guard<std::mutex> lock(mu);
          acc.kernel_seconds += ks.seconds;
          acc.sort_seconds += sort_s;
          ++acc.batches_run;
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            if (first_error == nullptr) first_error = std::current_exception();
          }
          failed.store(true);
          complete_one();
        }
      }
      stream.synchronize();  // pending transfers still read the slots
      std::lock_guard<std::mutex> lock(mu);
      acc.bytes_to_host += stream.bytes_copied();
      acc.modeled_transfer_seconds += stream.modeled_copy_seconds();
    });
  }

  // --- Stage 1: seed the root batches (bounded push: backpressure once
  // the pool is saturated). `outstanding` was pre-charged with all roots,
  // so the queue cannot close before the last root is seeded.
  for (std::size_t b = 0; b < nb; ++b) {
    Task t;
    t.root = b;
    tasks.push(std::move(t));
  }

  for (auto& w : workers) w.join();
  done.close();
  for (auto& a : assemblers) a.join();

  if (first_error != nullptr) std::rethrow_exception(first_error);
  if (fatal_overflow.load()) {
    throw gpu::DeviceOutOfMemory(buffer_pairs * sizeof(Pair) * 2,
                                 buffer_pairs * sizeof(Pair));
  }

  // Deterministic final assembly: segments in ascending first-query-id
  // order, each internally sorted by the device sort. Final offsets are
  // only known once every segment has landed, so this concatenation is
  // the pipeline's serial tail — the assembly workers parallelise it
  // (each copies an interleaved subset of segments to its precomputed
  // offset), which is where a multi-thread assembly config pays off on
  // large result sets.
  struct Placement {
    const std::vector<Pair>* segment;
    std::size_t offset;
  };
  std::vector<Placement> layout;
  layout.reserve(segments.size());
  std::size_t total = 0;
  for (const auto& [key, pairs] : segments) {
    layout.push_back({&pairs, total});
    total += pairs.size();
  }
  auto& out = final_result.pairs();
  const std::size_t copiers = std::min<std::size_t>(
      static_cast<std::size_t>(config_.assembly_threads), layout.size());
  Timer concat_timer;
  if (copiers <= 1) {
    out.reserve(total);
    for (const auto& p : layout) {
      out.insert(out.end(), p.segment->begin(), p.segment->end());
    }
  } else {
    out.resize(total);
    std::vector<std::thread> concat;
    concat.reserve(copiers);
    for (std::size_t t = 0; t < copiers; ++t) {
      concat.emplace_back([&layout, &out, t, copiers] {
        for (std::size_t i = t; i < layout.size(); i += copiers) {
          std::copy(layout[i].segment->begin(), layout[i].segment->end(),
                    out.begin() + static_cast<std::ptrdiff_t>(
                                      layout[i].offset));
        }
      });
    }
    for (auto& c : concat) c.join();
  }
  acc.assembly_seconds += concat_timer.seconds();

  if (stats != nullptr) *stats = acc;
  return final_result;
}

}  // namespace sj
