#include "core/prepared.hpp"

#include <cstring>
#include <stdexcept>

#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/batcher.hpp"

namespace sj {

PreparedJoin::PreparedJoin(const Dataset& data, double eps,
                           const gpu::DeviceSpec& device)
    : data_(&data), device_(device), arena_(device) {
  parse::non_negative("argument 'eps' of PreparedJoin", eps);
  Timer t;
  index_ = GridIndex(data, eps);
  index_build_seconds_ = t.seconds();
  t.reset();
  dev_ = std::make_unique<DeviceGrid>(arena_, data, index_,
                                      GridLayout::kCellMajor);
  upload_seconds_ = t.seconds();
}

PreparedJoin::PreparedJoin(const Dataset& data, GridIndex index,
                           const gpu::DeviceSpec& device)
    : data_(&data), index_(std::move(index)), device_(device), arena_(device) {
  if (index_.num_points() != data.size() || index_.dim() != data.dim()) {
    throw std::invalid_argument(
        "PreparedJoin: adopted index does not match the dataset");
  }
  Timer t;
  dev_ = std::make_unique<DeviceGrid>(arena_, data, index_,
                                      GridLayout::kCellMajor);
  upload_seconds_ = t.seconds();
}

GpuJoinResult PreparedJoin::run(const Dataset& queries,
                                const GpuJoinOptions& opt) const {
  parse::matching_dims("argument 'queries' of PreparedJoin::run",
                       queries.dim(), "the prepared dataset", data_->dim());
  if (opt.mode == ResultMode::kSink && !opt.sink) {
    throw std::invalid_argument(
        "PreparedJoin::run: result mode 'sink' needs a sink callback");
  }
  if (opt.control != nullptr) opt.control->check("prepared join entry");
  GpuJoinResult result;
  GpuJoinStats& st = result.stats;
  Timer total;
  st.index_build_seconds = 0.0;  // amortised into the PreparedJoin
  if (queries.empty() || data_->empty()) {
    if (opt.mode == ResultMode::kHistogram) {
      result.histogram.assign(queries.size(), 0);
    }
    st.total_seconds = total.seconds();
    return result;
  }

  // Per-call query upload into the shared arena (released on return).
  gpu::DeviceBuffer<double> qbuf(arena_, queries.raw().size());
  std::memcpy(qbuf.data(), queries.raw().data(),
              queries.raw().size() * sizeof(double));
  GridDeviceView grid = dev_->view();
  grid.qpoints = qbuf.data();
  grid.qn = queries.size();
  if (!opt.soa) {
    for (int j = 0; j < grid.dim; ++j) grid.coord[j] = nullptr;
  }

  const bool pairs_path =
      opt.mode == ResultMode::kPairs || opt.mode == ResultMode::kSink;
  EstimateResult est;
  if (pairs_path) {
    est = estimate_result_size(grid, /*unicomp=*/false, opt.sample_rate,
                               opt.block_size);
    st.estimated_total = est.estimated_total;
  }

  ResultRequest req;
  req.mode = opt.mode;
  req.sink = opt.sink;
  req.histogram_keys = queries.size();
  req.control = opt.control;

  AtomicWork work;
  Batcher batcher(arena_, device_, opt.num_streams, opt.block_size,
                  opt.retry);

  // Group the queries by their data-grid home cell and resolve each
  // group's candidate ranges once — the same per-call path as gpu_join's
  // cell-major branch (core/join.cpp).
  const JoinAdjacency adjacency = build_join_adjacency(arena_, grid);
  st.query_groups = adjacency.num_groups();

  const std::uint64_t buffer_pairs =
      pairs_path ? size_buffer_pairs(arena_, queries.size() * 3,
                                     est.estimated_total, opt.min_batches,
                                     opt.num_streams, opt.max_buffer_pairs,
                                     opt.safety)
                 : 1;
  const CellBatchPlan plan =
      plan_cell_batches(adjacency.weights, est.estimated_total,
                        opt.min_batches, buffer_pairs, opt.safety);
  PipelineOutput out = batcher.run_join_groups(req, grid, plan, adjacency,
                                               &work, &st.batch);
  work.add_to(st.metrics);
  st.metrics.cells_examined += adjacency.cells_examined;
  st.metrics.cells_nonempty += adjacency.cells_nonempty;

  result.pairs = std::move(out.pairs);
  result.total_pairs = out.total_pairs;
  result.histogram = std::move(out.histogram);
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  st.total_seconds = total.seconds();
  return result;
}

SelfJoinResult PreparedJoin::self_join(const GpuSelfJoinOptions& opt) const {
  if (opt.mode == ResultMode::kSink && !opt.sink) {
    throw std::invalid_argument(
        "PreparedJoin::self_join: result mode 'sink' needs a sink callback");
  }
  if (opt.control != nullptr) opt.control->check("prepared self-join entry");
  SelfJoinResult result;
  SelfJoinStats& st = result.stats;
  Timer total;
  st.grid_nonempty_cells = index_.num_nonempty_cells();
  st.grid_total_cells = index_.total_cells();
  if (data_->empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  GridDeviceView grid = dev_->view();
  if (!opt.soa) {
    for (int j = 0; j < grid.dim; ++j) grid.coord[j] = nullptr;
  }

  const bool pairs_path =
      opt.mode == ResultMode::kPairs || opt.mode == ResultMode::kSink;

  // Adjacency + estimate are query-independent for the self-join, so
  // they amortise across the session's calls (per unicomp flag).
  const CellAdjacency* adjacency = nullptr;
  EstimateResult est;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    SelfCache& cache = self_cache_[opt.unicomp ? 1 : 0];
    if (cache.adjacency == nullptr) {
      cache.adjacency = std::make_unique<CellAdjacency>(
          build_cell_adjacency(arena_, grid, opt.unicomp));
    }
    if (pairs_path && !cache.estimated) {
      Timer phase;
      cache.estimate = estimate_result_size(grid, opt.unicomp,
                                            opt.sample_rate, opt.block_size);
      cache.estimated = true;
      st.estimate_seconds = phase.seconds();
    }
    adjacency = cache.adjacency.get();
    est = cache.estimate;
  }
  if (pairs_path) st.estimated_total = est.estimated_total;

  std::uint64_t buffer_pairs = 1;
  if (pairs_path) {
    buffer_pairs = size_buffer_pairs(
        arena_, data_->size() * 3, est.estimated_total, opt.min_batches,
        opt.num_streams, opt.max_buffer_pairs, opt.safety);
  }

  ResultRequest req;
  req.mode = opt.mode;
  req.sink = opt.sink;
  req.histogram_keys = data_->size();
  req.control = opt.control;

  AtomicWork work;
  Timer phase;
  Batcher batcher(arena_, device_, opt.num_streams, opt.block_size,
                  opt.retry);
  const CellBatchPlan plan =
      plan_cell_batches(adjacency->weights, est.estimated_total,
                        opt.min_batches, buffer_pairs, opt.safety);
  PipelineOutput out = batcher.run_cells(req, grid, opt.unicomp, plan,
                                         adjacency, &work, &st.batch);
  result.pairs = std::move(out.pairs);
  result.total_pairs = out.total_pairs;
  result.histogram = std::move(out.histogram);
  st.join_seconds = phase.seconds();

  work.add_to(st.metrics);
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  collect_gpu_stats(grid, opt, st);
  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
