// Always-on algorithmic work counters. Each logical thread accumulates
// into a local struct and flushes once with relaxed atomics, so the hot
// path stays cheap and the totals are exact under parallel execution.
#pragma once

#include <atomic>
#include <cstdint>

#include "gpusim/metrics.hpp"

namespace sj {

struct LocalWork {
  std::uint64_t cells_examined = 0;
  std::uint64_t cells_nonempty = 0;
  std::uint64_t distance_calcs = 0;
  std::uint64_t results = 0;
  std::uint64_t global_loads = 0;
  std::uint64_t global_load_bytes = 0;
};

class AtomicWork {
 public:
  void flush(const LocalWork& w) {
    cells_examined_.fetch_add(w.cells_examined, std::memory_order_relaxed);
    cells_nonempty_.fetch_add(w.cells_nonempty, std::memory_order_relaxed);
    distance_calcs_.fetch_add(w.distance_calcs, std::memory_order_relaxed);
    results_.fetch_add(w.results, std::memory_order_relaxed);
    global_loads_.fetch_add(w.global_loads, std::memory_order_relaxed);
    global_load_bytes_.fetch_add(w.global_load_bytes,
                                 std::memory_order_relaxed);
  }

  /// Zero every counter. Used by the shard engine's failover path: a
  /// shard re-executed on a surviving device must not double-count the
  /// work its first attempt flushed before the device died.
  void reset() {
    cells_examined_.store(0, std::memory_order_relaxed);
    cells_nonempty_.store(0, std::memory_order_relaxed);
    distance_calcs_.store(0, std::memory_order_relaxed);
    results_.store(0, std::memory_order_relaxed);
    global_loads_.store(0, std::memory_order_relaxed);
    global_load_bytes_.store(0, std::memory_order_relaxed);
  }

  void add_to(gpu::KernelMetrics& m) const {
    m.cells_examined += cells_examined_.load(std::memory_order_relaxed);
    m.cells_nonempty += cells_nonempty_.load(std::memory_order_relaxed);
    m.distance_calcs += distance_calcs_.load(std::memory_order_relaxed);
    m.results += results_.load(std::memory_order_relaxed);
    m.global_loads += global_loads_.load(std::memory_order_relaxed);
    m.global_load_bytes += global_load_bytes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> cells_examined_{0};
  std::atomic<std::uint64_t> cells_nonempty_{0};
  std::atomic<std::uint64_t> distance_calcs_{0};
  std::atomic<std::uint64_t> results_{0};
  std::atomic<std::uint64_t> global_loads_{0};
  std::atomic<std::uint64_t> global_load_bytes_{0};
};

}  // namespace sj
