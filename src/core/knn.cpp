#include "core/knn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "common/distance.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/device_view.hpp"
#include "core/grid_index.hpp"
#include "core/work_counters.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/kernel.hpp"

namespace sj {

namespace {

/// Bounded max-heap of the k best (squared distance, id) candidates,
/// backed by caller-provided rows of the result matrix.
class BestK {
 public:
  BestK(double* dists, std::uint32_t* ids, int k)
      : d_(dists), id_(ids), k_(k) {}

  int size() const { return size_; }
  bool full() const { return size_ == k_; }
  double worst() const {
    return size_ == 0 ? std::numeric_limits<double>::infinity()
                      : (full() ? d_[0]
                                : std::numeric_limits<double>::infinity());
  }

  void offer(double dist2, std::uint32_t id) {
    if (!full()) {
      d_[size_] = dist2;
      id_[size_] = id;
      ++size_;
      sift_up(size_ - 1);
      return;
    }
    if (dist2 >= d_[0]) return;
    d_[0] = dist2;
    id_[0] = id;
    sift_down(0);
  }

  /// Heap -> ascending order (heapsort tail), converting squared
  /// distances to distances.
  void finalize() {
    int n = size_;
    while (n > 1) {
      --n;
      std::swap(d_[0], d_[n]);
      std::swap(id_[0], id_[n]);
      sift_down_n(0, n);
    }
    for (int i = 0; i < size_; ++i) d_[i] = std::sqrt(d_[i]);
  }

 private:
  void sift_up(int i) {
    while (i > 0) {
      const int parent = (i - 1) / 2;
      if (d_[parent] >= d_[i]) break;
      std::swap(d_[parent], d_[i]);
      std::swap(id_[parent], id_[i]);
      i = parent;
    }
  }
  void sift_down(int i) { sift_down_n(i, size_); }
  void sift_down_n(int i, int n) {
    for (;;) {
      const int l = 2 * i + 1;
      const int r = l + 1;
      int m = i;
      if (l < n && d_[l] > d_[m]) m = l;
      if (r < n && d_[r] > d_[m]) m = r;
      if (m == i) return;
      std::swap(d_[m], d_[i]);
      std::swap(id_[m], id_[i]);
      i = m;
    }
  }

  double* d_;
  std::uint32_t* id_;
  int k_;
  int size_ = 0;
};

struct KnnKernelParams {
  GridDeviceView grid;
  const GridIndex* index = nullptr;  // host-side helpers (masks etc.)
  KnnResult* out = nullptr;
  int k = 0;
  bool include_self = false;
  bool self_mode = false;  // query set == data set (skip own id)
  AtomicWork* work = nullptr;
  gpu::DeviceCounter* rings = nullptr;
};

/// Squared minimum distance from `pt` to the cell with coordinates `cc`.
double cell_min_sq_dist(const GridDeviceView& g, const double* pt,
                        const std::uint32_t* cc) {
  double acc = 0.0;
  for (int j = 0; j < g.dim; ++j) {
    const double lo = g.gmin[j] + cc[j] * g.width;
    const double hi = lo + g.width;
    double d = 0.0;
    if (pt[j] < lo) {
      d = lo - pt[j];
    } else if (pt[j] > hi) {
      d = pt[j] - hi;
    }
    acc += d * d;
  }
  return acc;
}

void knn_thread(const gpu::ThreadCtx& ctx, const KnnKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  const GridDeviceView& g = p.grid;
  if (gid >= g.num_queries()) return;
  const auto pid = static_cast<std::uint32_t>(gid);
  const double* pt = g.query_point(pid);

  LocalWork w;
  BestK best(p.out->dists_row(pid), p.out->ids_row(pid), p.k);

  // Home cell coordinates.
  std::int64_t ci[kMaxDims];
  for (int j = 0; j < g.dim; ++j) {
    const double rel = (pt[j] - g.gmin[j]) / g.width;
    std::int64_t cj = static_cast<std::int64_t>(std::floor(rel));
    cj = std::min<std::int64_t>(
        std::max<std::int64_t>(cj, 0),
        static_cast<std::int64_t>(g.cells_per_dim[j]) - 1);
    ci[j] = cj;
  }

  // Maximum useful ring: the grid's extent in cells.
  std::int64_t max_ring = 0;
  for (int j = 0; j < g.dim; ++j) {
    max_ring = std::max<std::int64_t>(
        max_ring, std::max<std::int64_t>(
                      ci[j], static_cast<std::int64_t>(g.cells_per_dim[j]) -
                                 1 - ci[j]));
  }

  std::uint64_t rings_used = 0;
  for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
    // Done when the heap is full and no unvisited point can beat its
    // worst entry: points beyond ring L are at least (L-1)*width away
    // (conservative; the per-cell min-distance prune below is exact).
    if (best.full() && ring > 1) {
      const double bound = static_cast<double>(ring - 1) * g.width;
      if (bound * bound >= best.worst()) break;
    }
    ++rings_used;

    // Per-dimension candidate coordinates for this ring from the masks.
    const std::uint32_t* mlo[kMaxDims];
    const std::uint32_t* mhi[kMaxDims];
    bool empty_dim = false;
    for (int j = 0; j < g.dim; ++j) {
      const std::uint32_t* m = g.M[j];
      const std::uint32_t* mend = m + g.m_size[j];
      const std::int64_t lo = ci[j] - ring;
      const std::int64_t hi = ci[j] + ring;
      mlo[j] = std::lower_bound(
          m, mend,
          static_cast<std::uint32_t>(std::max<std::int64_t>(lo, 0)));
      mhi[j] = std::upper_bound(
          m, mend,
          static_cast<std::uint32_t>(std::min<std::int64_t>(
              hi, static_cast<std::int64_t>(g.cells_per_dim[j]) - 1)));
      if (mlo[j] == mhi[j]) empty_dim = true;
    }
    if (empty_dim) continue;

    // Odometer over the per-dimension candidates, keeping cells whose
    // Chebyshev distance from home is exactly `ring`.
    const std::uint32_t* it[kMaxDims];
    for (int j = 0; j < g.dim; ++j) it[j] = mlo[j];
    std::uint32_t cc[kMaxDims];
    for (;;) {
      std::int64_t cheb = 0;
      for (int j = 0; j < g.dim; ++j) {
        cc[j] = *it[j];
        cheb = std::max<std::int64_t>(
            cheb, std::llabs(static_cast<std::int64_t>(cc[j]) - ci[j]));
      }
      if (cheb == ring) {
        const bool prune =
            best.full() && cell_min_sq_dist(g, pt, cc) >= best.worst();
        if (!prune) {
          const std::uint64_t lin = g.linearize(cc);
          ++w.cells_examined;
          const std::uint64_t* bend = g.B + g.b_size;
          const std::uint64_t* bit = std::lower_bound(g.B, bend, lin);
          if (bit != bend && *bit == lin) {
            ++w.cells_nonempty;
            const GridIndex::CellRange range = g.G[bit - g.B];
            for (std::uint32_t kk = range.min; kk <= range.max; ++kk) {
              const std::uint32_t q = g.A[kk];
              if (p.self_mode && !p.include_self && q == pid) continue;
              const double* qt =
                  g.points + static_cast<std::size_t>(q) * g.dim;
              ++w.distance_calcs;
              w.global_loads += static_cast<std::uint64_t>(g.dim);
              best.offer(sq_dist(pt, qt, g.dim), q);
            }
          }
        }
      }
      // Advance the odometer.
      int j = 0;
      while (j < g.dim) {
        if (++it[j] != mhi[j]) break;
        it[j] = mlo[j];
        ++j;
      }
      if (j == g.dim) break;
    }
  }

  best.finalize();
  p.out->set_count(pid, best.size());
  w.results += static_cast<std::uint64_t>(best.size());
  if (p.work != nullptr) p.work->flush(w);
  if (p.rings != nullptr) p.rings->fetch_add(rings_used);
}

double auto_cell_width(const Dataset& d, int k) {
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  double volume = 1.0;
  double max_range = 0.0;
  for (int j = 0; j < d.dim(); ++j) {
    const double range = std::max(hi[j] - lo[j], 1e-12);
    volume *= range;
    max_range = std::max(max_range, range);
  }
  const double per_point =
      volume * static_cast<double>(k + 1) /
      std::max<double>(1.0, static_cast<double>(d.size()));
  const double width = std::pow(per_point, 1.0 / d.dim());
  return std::clamp(width, 1e-9, max_range > 0 ? max_range : 1.0);
}

KnnResult run_knn(const Dataset* queries, const Dataset& data,
                  KnnOptions opt) {
  parse::positive("argument 'k' of gpu_knn", opt.k);
  if (opt.control != nullptr) opt.control->check("knn entry");
  const Dataset& qset = queries != nullptr ? *queries : data;
  parse::matching_dims("argument 'queries' of gpu_knn", qset.dim(),
                       "argument 'data'", data.dim());
  KnnResult result(qset.size(), opt.k);
  Timer total;
  if (data.empty() || qset.empty()) {
    result.stats.total_seconds = total.seconds();
    return result;
  }

  const double width =
      opt.cell_width > 0.0 ? opt.cell_width : auto_cell_width(data, opt.k);
  result.stats.chosen_cell_width = width;

  Timer phase;
  GridIndex index(data, width);
  result.stats.index_build_seconds = phase.seconds();

  gpu::GlobalMemoryArena arena(opt.device);
  DeviceGrid dev(arena, data, index);
  GridDeviceView grid = dev.view();
  // The grid's eps is the cell width here; kNN ignores it as a threshold.

  gpu::DeviceBuffer<double> qbuf;
  if (queries != nullptr) {
    qbuf = gpu::DeviceBuffer<double>(arena, qset.raw().size());
    std::memcpy(qbuf.data(), qset.raw().data(),
                qset.raw().size() * sizeof(double));
    grid.qpoints = qbuf.data();
    grid.qn = qset.size();
  }

  AtomicWork work;
  gpu::DeviceCounter rings;
  KnnKernelParams p;
  p.grid = grid;
  p.index = &index;
  p.out = &result;
  p.k = opt.k;
  p.include_self = opt.include_self;
  p.self_mode = queries == nullptr;
  p.work = &work;
  p.rings = &rings;

  if (opt.control != nullptr) opt.control->check("knn pre-launch");
  const auto ks = gpu::launch(
      gpu::LaunchConfig::cover(qset.size(), opt.block_size),
      [&p](const gpu::ThreadCtx& ctx) { knn_thread(ctx, p); });
  if (opt.control != nullptr) opt.control->check("knn completion");

  work.add_to(result.stats.metrics);
  result.stats.metrics.kernel_seconds = ks.seconds;
  result.stats.rings_expanded = rings.load();
  result.stats.total_seconds = total.seconds();
  return result;
}

}  // namespace

KnnResult gpu_knn(const Dataset& d, KnnOptions opt) {
  return run_knn(nullptr, d, opt);
}

KnnResult gpu_knn(const Dataset& queries, const Dataset& data,
                  KnnOptions opt) {
  return run_knn(&queries, data, opt);
}

}  // namespace sj
