// The amortisation unit of the always-on service (api/session.hpp):
// a dataset's grid index and cell-major device image, staged ONCE and
// reused across many queries. Every sjtool one-shot run pays the index
// build + upload per invocation; a PreparedJoin pays it per lifetime —
// the gap the ROADMAP's always-on-service item named between a
// benchmark harness and a system serving query traffic.
//
// Thread safety: after construction, run()/self_join() may be called
// concurrently from many threads. The shared arena's allocation is
// mutex-protected (gpusim/arena.hpp), the staged grid buffers are
// read-only, and each call runs its own stream pool — the only shared
// mutable state is the lazily-built self-join cache, guarded here.
#pragma once

#include <memory>
#include <mutex>

#include "common/dataset.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/join.hpp"
#include "core/kernels.hpp"
#include "core/self_join.hpp"
#include "gpusim/arena.hpp"

namespace sj {

class PreparedJoin {
 public:
  /// Build the data-side image: host grid index (radix-sort binning) +
  /// cell-major device staging. `data` is referenced, not copied, and
  /// must outlive the PreparedJoin. Only the cell-major layout is
  /// supported — it is what the grouped join and the cell-centric
  /// self-join consume.
  PreparedJoin(const Dataset& data, double eps,
               const gpu::DeviceSpec& device = gpu::DeviceSpec::titan_x_pascal());

  /// Restore path: adopt an already-validated index (snapshot restore,
  /// core/snapshot.hpp) instead of rebuilding it. The index must have
  /// been built over `data`.
  PreparedJoin(const Dataset& data, GridIndex index,
               const gpu::DeviceSpec& device = gpu::DeviceSpec::titan_x_pascal());

  const Dataset& data() const { return *data_; }
  const GridIndex& index() const { return index_; }
  double eps() const { return index_.eps(); }
  /// Seconds spent building the host index (0 on the restore path).
  double index_build_seconds() const { return index_build_seconds_; }
  /// Seconds staging the device image.
  double upload_seconds() const { return upload_seconds_; }

  /// Join `queries` against the prepared data grid: the per-call work is
  /// query upload + per-group adjacency + the batched pipeline; the
  /// index and data staging are amortised. Same semantics and output as
  /// gpu_join() with the cell-major layout. opt.layout/device are
  /// ignored (fixed at construction).
  GpuJoinResult run(const Dataset& queries, const GpuJoinOptions& opt) const;

  /// Self-join over the prepared grid at the index's eps. The cell
  /// adjacency and the result-size estimate are resolved once per
  /// unicomp flag and cached across calls (the estimate uses the FIRST
  /// caller's sample_rate/block_size; the session issues uniform
  /// options). Same output as GpuSelfJoin::run on the cell-major layout.
  SelfJoinResult self_join(const GpuSelfJoinOptions& opt) const;

 private:
  struct SelfCache {
    std::unique_ptr<CellAdjacency> adjacency;
    EstimateResult estimate;
    bool estimated = false;
  };

  const Dataset* data_;
  GridIndex index_;
  gpu::DeviceSpec device_;
  mutable gpu::GlobalMemoryArena arena_;
  std::unique_ptr<DeviceGrid> dev_;
  double index_build_seconds_ = 0.0;
  double upload_seconds_ = 0.0;

  mutable std::mutex cache_mu_;
  mutable SelfCache self_cache_[2];  // indexed by unicomp flag
};

}  // namespace sj
