#include "core/self_join.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/timer.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/cachesim.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/occupancy.hpp"

namespace sj {

GpuSelfJoin::GpuSelfJoin(GpuSelfJoinOptions opt) : opt_(opt) {
  if (opt_.block_size <= 0) {
    throw std::invalid_argument("GpuSelfJoin: block_size must be positive");
  }
  if (opt_.num_streams <= 0) {
    throw std::invalid_argument("GpuSelfJoin: num_streams must be positive");
  }
  if (opt_.sample_rate <= 0.0 || opt_.sample_rate > 1.0) {
    throw std::invalid_argument("GpuSelfJoin: sample_rate must be in (0, 1]");
  }
}

SelfJoinResult GpuSelfJoin::run(const Dataset& d, double eps) const {
  if (eps < 0.0) throw std::invalid_argument("GpuSelfJoin: eps must be >= 0");
  if (opt_.mode == ResultMode::kSink && !opt_.sink) {
    throw std::invalid_argument(
        "GpuSelfJoin: result mode 'sink' needs a sink callback");
  }
  // Entry checkpoint: a query that arrives already expired or cancelled
  // must not pay for the index build.
  if (opt_.control != nullptr) opt_.control->check("self-join entry");
  SelfJoinResult result;
  SelfJoinStats& st = result.stats;
  Timer total;

  // --- Host-side index construction (cheap relative to tree indexes).
  Timer phase;
  GridIndex index(d, eps);
  st.index_build_seconds = phase.seconds();
  st.grid_nonempty_cells = index.num_nonempty_cells();
  st.grid_total_cells = index.total_cells();

  if (d.empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  // --- Upload dataset + index to the (simulated) device.
  gpu::GlobalMemoryArena arena(opt_.device);
  phase.reset();
  DeviceGrid dev(arena, d, index, opt_.layout);
  st.upload_seconds = phase.seconds();
  GridDeviceView grid = dev.view();
  if (!opt_.soa) {
    // AoS ablation: drop the SoA planes from the kernels' view.
    for (int j = 0; j < grid.dim; ++j) grid.coord[j] = nullptr;
  }

  // Count-only and histogram runs materialise no pairs, so neither the
  // result-size estimator nor any pair buffer is needed — the batch count
  // falls back to min_batches.
  const bool pairs_path = opt_.mode == ResultMode::kPairs ||
                          opt_.mode == ResultMode::kSink;

  // --- Estimate total result size from a sample (count-only kernel).
  EstimateResult est;
  if (pairs_path) {
    phase.reset();
    est = estimate_result_size(grid, opt_.unicomp, opt_.sample_rate,
                               opt_.block_size);
    st.estimate_seconds = phase.seconds();
    st.estimated_total = est.estimated_total;
  }

  // --- Cell mode: resolve every cell's adjacency ONCE (shared by the
  // batch planner and all kernel launches, including overflow retries).
  // Built before buffer sizing so its device memory is accounted for.
  CellAdjacency adjacency;
  if (opt_.layout == GridLayout::kCellMajor) {
    adjacency = build_cell_adjacency(arena, grid, opt_.unicomp);
  }

  // --- Size the per-stream buffers within the device's free memory.
  // Cell-mode batches upload 12-byte work items instead of 4-byte query
  // ids; triple the reservation proxy so the uploads always fit.
  std::uint64_t buffer_pairs = 1;
  if (pairs_path) {
    const std::uint64_t upload_units =
        grid.cell_major ? d.size() * 3 : d.size();
    buffer_pairs = size_buffer_pairs(
        arena, upload_units, est.estimated_total, opt_.min_batches,
        opt_.num_streams, opt_.max_buffer_pairs, opt_.safety);
  }

  ResultRequest req;
  req.mode = opt_.mode;
  req.sink = opt_.sink;
  req.histogram_keys = d.size();
  req.control = opt_.control;

  // --- Batched, stream-pipelined join.
  AtomicWork work;
  phase.reset();
  Batcher batcher(arena, opt_.device, opt_.num_streams, opt_.block_size,
                  opt_.retry);
  PipelineOutput out;
  if (opt_.layout == GridLayout::kCellMajor) {
    // Per-cell work estimates -> weighted contiguous cell batches.
    const CellBatchPlan plan =
        plan_cell_batches(adjacency.weights, est.estimated_total,
                          opt_.min_batches, buffer_pairs, opt_.safety);
    out = batcher.run_cells(req, grid, opt_.unicomp, plan, &adjacency,
                            &work, &st.batch);
  } else {
    const BatchPlan plan = plan_batches(est.estimated_total, d.size(),
                                        opt_.min_batches, buffer_pairs,
                                        opt_.safety);
    out = batcher.run(req, grid, opt_.unicomp, plan, &work, &st.batch);
  }
  result.pairs = std::move(out.pairs);
  result.total_pairs = out.total_pairs;
  result.histogram = std::move(out.histogram);
  st.join_seconds = phase.seconds();

  work.add_to(st.metrics);
  // The adjacency build carries the cell-mode index-search work (resolved
  // once per cell rather than once per point).
  st.metrics.cells_examined += adjacency.cells_examined;
  st.metrics.cells_nonempty += adjacency.cells_nonempty;
  st.metrics.kernel_seconds = st.batch.kernel_seconds;

  collect_gpu_stats(grid, opt_, st);

  st.total_seconds = total.seconds();
  return result;
}

void collect_gpu_stats(const GridDeviceView& grid,
                       const GpuSelfJoinOptions& opt, SelfJoinStats& st) {
  // --- Occupancy model (Table II).
  st.regs_per_thread = gpu::self_join_regs_per_thread(grid.dim, opt.unicomp);
  const gpu::OccupancyResult occ = gpu::theoretical_occupancy(
      opt.device, opt.block_size, st.regs_per_thread);
  st.occupancy = occ.occupancy;
  st.metrics.occupancy = occ.occupancy;

  // --- Optional metrics pass: serial execution with the L1 cache model
  // (deterministic access order, as a profiler replay would see). Runs
  // the kernel matching the grid's layout so the cache counters reflect
  // the access pattern the join actually used.
  if (opt.collect_metrics) {
    gpu::CacheSim cache(opt.device);
    AtomicWork mwork;
    if (grid.cell_major) {
      std::vector<CellWorkItem> items;
      items.reserve(static_cast<std::size_t>(grid.b_size));
      for (std::uint64_t cell = 0; cell < grid.b_size; ++cell) {
        const GridIndex::CellRange r = grid.G[cell];
        items.push_back(CellWorkItem{static_cast<std::uint32_t>(cell),
                                     r.min, r.max + 1});
      }
      CellJoinKernelParams p;
      p.grid = grid;
      p.items = items.data();
      p.num_items = items.size();
      p.unicomp = opt.unicomp;
      p.work = &mwork;
      p.cache = &cache;
      gpu::launch(
          gpu::LaunchConfig::cover(items.size(), opt.block_size),
          [&p](const gpu::ThreadCtx& ctx) { self_join_cells_thread(ctx, p); },
          gpu::ExecMode::kSerial);
    } else {
      SelfJoinKernelParams p;
      p.grid = grid;
      p.num_queries = grid.n;
      p.unicomp = opt.unicomp;
      p.work = &mwork;
      p.cache = &cache;
      gpu::launch(
          gpu::LaunchConfig::cover(grid.n, opt.block_size),
          [&p](const gpu::ThreadCtx& ctx) { self_join_thread(ctx, p); },
          gpu::ExecMode::kSerial);
    }
    st.metrics.cache_hits = cache.hits();
    st.metrics.cache_misses = cache.misses();
    // Modelled unified-cache bandwidth: bytes served over modelled time
    // (hit/miss latencies at the device clock). The paper reports the
    // profiler's utilisation in GB/s; the ratio between kernel variants is
    // the quantity of interest (Table II).
    const double cycles =
        static_cast<double>(cache.hits()) *
            opt.device.l1_hit_latency_cycles +
        static_cast<double>(cache.misses()) * opt.device.mem_latency_cycles;
    if (cycles > 0.0) {
      gpu::KernelMetrics m;
      mwork.add_to(m);
      const double seconds = cycles / (opt.device.core_clock_ghz * 1e9);
      st.metrics.cache_bw_gbs =
          static_cast<double>(m.global_load_bytes) / seconds / 1e9;
    }
  }
}

}  // namespace sj
