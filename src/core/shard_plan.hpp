// Host-side planning for the sharded multi-device engine (gpu_shard).
//
// The cell-major layout makes multi-device partitioning natural: a shard
// is a CONTIGUOUS range of non-empty cells (self-join) or query groups
// (query/data join), so its owned point slots are one contiguous span.
// Boundaries are placed with the plan_cell_batches weight rule
// (weighted_partition), so skewed IPPP-style data does not serialise on
// one device.
//
// Each shard additionally needs the NEIGHBOUR data its kernels read — the
// one-cell halo. Rather than reasoning geometrically, the halo is derived
// from the already-resolved adjacency: every candidate slot range of an
// owned cell that falls outside the owned span is halo, and overlapping
// pieces merge into a few contiguous intervals (adjacent cells occupy
// adjacent slots, so the halo is compact). make_shard_slice() clips and
// remaps every candidate range into the shard-local slot space: owned
// slots first, halo intervals appended in ascending global order.
//
// Exactness needs no dedup pass: each cell (group) is owned by exactly
// one shard, and the cell-centric kernel emits a pair only from the scan
// of its home cell — so shard results are disjoint by construction and
// concatenate in shard order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/kernels.hpp"

namespace sj {

/// One contiguous global-slot interval of remote (halo) data a shard
/// reads, plus where that interval lands in the shard's local slot space.
struct HaloInterval {
  std::uint32_t begin = 0;        // global slot, inclusive
  std::uint32_t end = 0;          // global slot, one past the last
  std::uint32_t local_begin = 0;  // first local slot of the interval
};

/// One shard's slice of the cell-major layout: its contiguous range of
/// owned units (cells for the self-join, query groups for the join), the
/// owned global slot span, the merged halo intervals, and the shard-local
/// adjacency CSR with every candidate range remapped into local slots.
/// Owned slots occupy local [0, owned_points()); halo intervals follow in
/// ascending global order.
struct ShardSlice {
  std::uint32_t unit_begin = 0;   // first owned unit (global index)
  std::uint32_t unit_end = 0;     // one past the last owned unit
  std::uint32_t owned_begin = 0;  // owned global slot span [begin, end)
  std::uint32_t owned_end = 0;
  std::vector<HaloInterval> halo;
  std::vector<CandidateRange> ranges;  // remapped to local slots
  std::vector<std::uint64_t> offsets;  // per owned unit, rebased to 0
  std::uint64_t weight = 0;            // summed weight of the owned units

  std::uint32_t owned_points() const { return owned_end - owned_begin; }
  std::uint32_t halo_points() const {
    return halo.empty() ? 0
                        : halo.back().local_begin +
                              (halo.back().end - halo.back().begin) -
                              owned_points();
  }
  std::uint32_t local_points() const { return owned_points() + halo_points(); }

  /// Local slot of a global slot; the slot must lie in the owned span or
  /// in one of the halo intervals.
  std::uint32_t to_local(std::uint32_t global_slot) const;
};

/// Cheap per-cell partition weights for placing SHARD boundaries without
/// resolving any adjacency: cell population times a three-cell population
/// window over the B order (B-adjacent non-empty cells are usually the
/// last-dimension spatial neighbours, so the window tracks local density).
/// The exact plan_cell_batches weights are still used INSIDE each shard
/// for batch balance — each device resolves its own cells' adjacency —
/// but the boundary pass must not cost an unsharded global enumeration,
/// or it becomes the scale-out serial tail.
std::vector<std::uint64_t> proxy_cell_weights(const GridDeviceView& grid);

/// Partition units 0..weights.size() into `shards` contiguous ranges of
/// approximately equal total weight (the plan_cell_batches balance rule).
/// The shard count is clamped into [1, weights.size()] — fewer units than
/// requested devices means some devices stay idle. Returns K + 1
/// boundaries for the effective K.
std::vector<std::uint32_t> plan_shard_boundaries(
    const std::vector<std::uint64_t>& weights, std::size_t shards);

/// Slice the global adjacency CSR for owned units [unit_begin, unit_end):
/// clip every candidate range against the owned global slot span
/// [owned_begin, owned_end), merge the outside pieces into halo
/// intervals, and remap all ranges into the shard-local slot space. Pass
/// owned_begin == owned_end for the join mode, where query groups own no
/// data slots and every referenced slot is halo.
ShardSlice make_shard_slice(const std::vector<CandidateRange>& ranges,
                            const std::vector<std::uint64_t>& offsets,
                            const std::vector<std::uint64_t>& weights,
                            std::uint32_t unit_begin, std::uint32_t unit_end,
                            std::uint32_t owned_begin,
                            std::uint32_t owned_end);

}  // namespace sj
