// Host-side planning for the sharded multi-device engine (gpu_shard).
//
// The cell-major layout makes multi-device partitioning natural: a shard
// is a CONTIGUOUS range of non-empty cells (self-join) or query groups
// (query/data join), so its owned point slots are one contiguous span.
// Boundaries are placed with the plan_cell_batches weight rule
// (weighted_partition), so skewed IPPP-style data does not serialise on
// one device.
//
// Each shard additionally needs the NEIGHBOUR data its kernels read — the
// one-cell halo. Rather than reasoning geometrically, the halo is derived
// from the already-resolved adjacency: every candidate slot range of an
// owned cell that falls outside the owned span is halo, and overlapping
// pieces merge into a few contiguous intervals (adjacent cells occupy
// adjacent slots, so the halo is compact). make_shard_slice() clips and
// remaps every candidate range into the shard-local slot space: owned
// slots first, halo intervals appended in ascending global order.
//
// Exactness needs no dedup pass: each cell (group) is owned by exactly
// one shard, and the cell-centric kernel emits a pair only from the scan
// of its home cell — so shard results are disjoint by construction and
// concatenate in shard order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/kernels.hpp"

namespace sj {

/// One contiguous global-slot interval of remote (halo) data a shard
/// reads, plus where that interval lands in the shard's local slot space.
struct HaloInterval {
  std::uint32_t begin = 0;        // global slot, inclusive
  std::uint32_t end = 0;          // global slot, one past the last
  std::uint32_t local_begin = 0;  // first local slot of the interval
};

/// One shard's slice of the cell-major layout: its contiguous range of
/// owned units (cells for the self-join, query groups for the join), the
/// owned global slot span, the merged halo intervals, and the shard-local
/// adjacency CSR with every candidate range remapped into local slots.
/// Owned slots occupy local [0, owned_points()); halo intervals follow in
/// ascending global order.
struct ShardSlice {
  std::uint32_t unit_begin = 0;   // first owned unit (global index)
  std::uint32_t unit_end = 0;     // one past the last owned unit
  std::uint32_t owned_begin = 0;  // owned global slot span [begin, end)
  std::uint32_t owned_end = 0;
  std::vector<HaloInterval> halo;
  std::vector<CandidateRange> ranges;  // remapped to local slots
  std::vector<std::uint64_t> offsets;  // per owned unit, rebased to 0
  std::uint64_t weight = 0;            // summed weight of the owned units

  std::uint32_t owned_points() const { return owned_end - owned_begin; }
  std::uint32_t halo_points() const {
    return halo.empty() ? 0
                        : halo.back().local_begin +
                              (halo.back().end - halo.back().begin) -
                              owned_points();
  }
  std::uint32_t local_points() const { return owned_points() + halo_points(); }

  /// Local slot of a global slot; the slot must lie in the owned span or
  /// in one of the halo intervals.
  std::uint32_t to_local(std::uint32_t global_slot) const;
};

/// Cheap per-cell partition weights for placing SHARD boundaries without
/// resolving any adjacency: cell population times a three-cell population
/// window over the B order (B-adjacent non-empty cells are usually the
/// last-dimension spatial neighbours, so the window tracks local density).
/// The exact plan_cell_batches weights are still used INSIDE each shard
/// for batch balance — each device resolves its own cells' adjacency —
/// but the boundary pass must not cost an unsharded global enumeration,
/// or it becomes the scale-out serial tail.
std::vector<std::uint64_t> proxy_cell_weights(const GridDeviceView& grid);

/// Partition units 0..weights.size() into `shards` contiguous ranges of
/// approximately equal total weight (the plan_cell_batches balance rule).
/// The shard count is clamped into [1, weights.size()] — fewer units than
/// requested devices means some devices stay idle. Zero-weight parts (one
/// giant unit next to zero-weight tails forces weighted_partition's
/// one-unit-per-part floor to close weightless shards) are coalesced into
/// their predecessor, so every returned part carries weight unless the
/// total itself is zero. Returns K + 1 boundaries for the effective K.
std::vector<std::uint32_t> plan_shard_boundaries(
    const std::vector<std::uint64_t>& weights, std::size_t shards);

/// Over-decomposition plan for the work-stealing shard scheduler: the
/// unit range is split into M >> K contiguous chunklets (each becomes one
/// ShardSlice, exactly as a PR-5 shard did), and the chunklets are dealt
/// to the K devices as contiguous groups by the same weighted partition —
/// the static plan is the SEED, stealing corrects its mispredictions.
struct ChunkletPlan {
  std::vector<std::uint32_t> bounds;         ///< M + 1 unit boundaries
  std::vector<std::uint64_t> weights;        ///< per-chunklet summed weight
  std::vector<std::uint32_t> device_bounds;  ///< K + 1 chunklet boundaries

  std::size_t chunklets() const { return weights.size(); }
  std::size_t devices() const {
    return device_bounds.empty() ? 0 : device_bounds.size() - 1;
  }
};

/// Default over-decomposition factor: M = kChunkletsPerDevice * K keeps
/// the per-device chunklet overhead constant across device counts while
/// giving the stealing scheduler ~12 rebalancing opportunities per device.
inline constexpr std::size_t kChunkletsPerDevice = 12;

/// Build the chunklet plan over per-unit weights. `devices` is clamped
/// into [1, units]; `chunklets` of 0 means kChunkletsPerDevice * devices,
/// and any request is clamped into [devices, units] (one cell is the
/// finest ownable grain). Zero-weight chunklets coalesce away, so M may
/// come back smaller than requested on degenerate weight profiles.
ChunkletPlan plan_chunklets(const std::vector<std::uint64_t>& unit_weights,
                            std::size_t devices, std::size_t chunklets = 0);

/// Measured-plan persistence (plan=measured + plan_cache=): per-cell pair
/// counts fed back from a prior run, keyed to the exact join geometry so
/// a stale cache can never skew a different dataset's plan.
struct PlanCacheKey {
  std::uint64_t n = 0;          ///< dataset size
  int dim = 0;                  ///< dimensionality
  double eps = 0.0;             ///< join radius
  std::uint64_t num_cells = 0;  ///< non-empty grid cells
};

/// Read the cached per-cell weights; returns an empty vector when the
/// file is absent, malformed, or keyed to a different join (the caller
/// falls back to the proxy weights).
std::vector<std::uint64_t> load_plan_cache(const std::string& path,
                                           const PlanCacheKey& key);

/// Persist per-cell weights for the next run's plan=measured. Throws
/// std::runtime_error when the path cannot be written (a silently dropped
/// cache would make the follow-up run's plan source ambiguous).
void save_plan_cache(const std::string& path, const PlanCacheKey& key,
                     const std::vector<std::uint64_t>& weights);

/// Slice the global adjacency CSR for owned units [unit_begin, unit_end):
/// clip every candidate range against the owned global slot span
/// [owned_begin, owned_end), merge the outside pieces into halo
/// intervals, and remap all ranges into the shard-local slot space. Pass
/// owned_begin == owned_end for the join mode, where query groups own no
/// data slots and every referenced slot is halo.
ShardSlice make_shard_slice(const std::vector<CandidateRange>& ranges,
                            const std::vector<std::uint64_t>& offsets,
                            const std::vector<std::uint64_t>& weights,
                            std::uint32_t unit_begin, std::uint32_t unit_end,
                            std::uint32_t owned_begin,
                            std::uint32_t owned_end);

}  // namespace sj
