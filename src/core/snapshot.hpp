// Crash-safe index snapshots: serialize a dataset + its GridIndex to
// disk so an always-on session (api/session.hpp, `sjtool serve`)
// restarts warm in O(read) — the radix-sort binning, the dominant cost
// of a cold index build, is skipped entirely on restore.
//
// File layout (little-endian):
//
//   magic "SJSNAP1\0" (8 bytes)
//   u32 version
//   u64 payload_size
//   u64 checksum            FNV-1a 64 over the payload bytes
//   payload:
//     u32 dim, u64 n, f64 eps, f64 width
//     per dim j: f64 gmin_j, f64 gmax_j, u32 cells_j, u64 stride_j
//     u64 |B|; B (u64 each); G (u32 min, u32 max each)
//     A (u32 * n)
//     per dim j: u64 |M_j|; M_j (u32 each)
//     coordinates (f64 * n * dim, row-major)
//
// Robustness contract: save() publishes atomically (temp + fsync +
// rename, io::atomic_write_file), so a reader never sees a torn file.
// try_load() NEVER throws on a bad file and never exhibits UB — a
// missing, truncated, bit-flipped or logically-inconsistent snapshot
// (checksum intact but disagreeing with itself; the restore validators
// catch that) returns nullopt with a one-line reason, and the caller
// falls back to a cold rebuild with a warning.
#pragma once

#include <optional>
#include <string>

#include "common/dataset.hpp"
#include "core/grid_index.hpp"

namespace sj::snapshot {

struct Restored {
  Dataset data;
  GridIndex index;
};

/// Serialize `d` + `index` (which must have been built over `d`) and
/// atomically publish to `path`. Throws std::runtime_error on I/O
/// failure — the previous snapshot, if any, is left intact.
void save(const std::string& path, const Dataset& d, const GridIndex& index);

/// Restore a snapshot. Returns nullopt (with a human-readable reason in
/// `*why` when non-null) on ANY defect: missing file, bad magic or
/// version, truncation, checksum mismatch, or structural validation
/// failure. Never throws for bad file content.
std::optional<Restored> try_load(const std::string& path, std::string* why);

}  // namespace sj::snapshot
