#include "core/join.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/batcher.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "gpusim/arena.hpp"

namespace sj {

GpuJoinResult gpu_join(const Dataset& queries, const Dataset& data,
                       double eps, GpuJoinOptions opt) {
  parse::non_negative("argument 'eps' of gpu_join", eps);
  parse::matching_dims("argument 'queries' of gpu_join", queries.dim(),
                       "argument 'data'", data.dim());
  if (opt.mode == ResultMode::kSink && !opt.sink) {
    throw std::invalid_argument(
        "gpu_join: result mode 'sink' needs a sink callback");
  }
  // Entry checkpoint: an already-expired or cancelled query must not pay
  // for the index build.
  if (opt.control != nullptr) opt.control->check("join entry");
  GpuJoinResult result;
  GpuJoinStats& st = result.stats;
  Timer total;

  Timer phase;
  GridIndex index(data, eps);
  st.index_build_seconds = phase.seconds();
  if (queries.empty() || data.empty()) {
    if (opt.mode == ResultMode::kHistogram) {
      result.histogram.assign(queries.size(), 0);
    }
    st.total_seconds = total.seconds();
    return result;
  }

  gpu::GlobalMemoryArena arena(opt.device);
  DeviceGrid dev(arena, data, index, opt.layout);

  // Ship the query set to the device alongside the indexed data.
  gpu::DeviceBuffer<double> qbuf(arena, queries.raw().size());
  std::memcpy(qbuf.data(), queries.raw().data(),
              queries.raw().size() * sizeof(double));
  GridDeviceView grid = dev.view();
  grid.qpoints = qbuf.data();
  grid.qn = queries.size();
  if (!opt.soa) {
    for (int j = 0; j < grid.dim; ++j) grid.coord[j] = nullptr;
  }

  // Non-pairs modes (count/histogram) skip the estimator and every pair
  // buffer; the batch count falls back to min_batches.
  const bool pairs_path =
      opt.mode == ResultMode::kPairs || opt.mode == ResultMode::kSink;
  EstimateResult est;
  if (pairs_path) {
    est = estimate_result_size(grid, /*unicomp=*/false, opt.sample_rate,
                               opt.block_size);
    st.estimated_total = est.estimated_total;
  }

  ResultRequest req;
  req.mode = opt.mode;
  req.sink = opt.sink;
  req.histogram_keys = queries.size();
  req.control = opt.control;

  AtomicWork work;
  Batcher batcher(arena, opt.device, opt.num_streams, opt.block_size,
                  opt.retry);
  PipelineOutput out;
  if (opt.layout == GridLayout::kCellMajor) {
    // Group the queries by their data-grid home cell and resolve each
    // group's candidate ranges ONCE; built before buffer sizing so its
    // device memory is accounted for. Batches upload 12-byte work items
    // instead of 4-byte query ids; triple the reservation proxy.
    const JoinAdjacency adjacency = build_join_adjacency(arena, grid);
    st.query_groups = adjacency.num_groups();

    const std::uint64_t buffer_pairs =
        pairs_path ? size_buffer_pairs(arena, queries.size() * 3,
                                       est.estimated_total, opt.min_batches,
                                       opt.num_streams, opt.max_buffer_pairs,
                                       opt.safety)
                   : 1;
    const CellBatchPlan plan =
        plan_cell_batches(adjacency.weights, est.estimated_total,
                          opt.min_batches, buffer_pairs, opt.safety);
    out = batcher.run_join_groups(req, grid, plan, adjacency, &work,
                                  &st.batch);
    work.add_to(st.metrics);
    // The adjacency build carries the index-search work (resolved once
    // per query group rather than once per query).
    st.metrics.cells_examined += adjacency.cells_examined;
    st.metrics.cells_nonempty += adjacency.cells_nonempty;
  } else {
    const std::uint64_t buffer_pairs =
        pairs_path ? size_buffer_pairs(arena, queries.size(),
                                       est.estimated_total, opt.min_batches,
                                       opt.num_streams, opt.max_buffer_pairs,
                                       opt.safety)
                   : 1;
    const BatchPlan plan = plan_batches(est.estimated_total, queries.size(),
                                        opt.min_batches, buffer_pairs,
                                        opt.safety);
    out = batcher.run(req, grid, /*unicomp=*/false, plan, &work, &st.batch);
    work.add_to(st.metrics);
  }
  result.pairs = std::move(out.pairs);
  result.total_pairs = out.total_pairs;
  result.histogram = std::move(out.histogram);
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
