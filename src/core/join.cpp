#include "core/join.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/timer.hpp"
#include "core/batcher.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "gpusim/arena.hpp"

namespace sj {

GpuJoinResult gpu_join(const Dataset& queries, const Dataset& data,
                       double eps, GpuJoinOptions opt) {
  if (eps < 0.0) throw std::invalid_argument("gpu_join: eps must be >= 0");
  if (queries.dim() != data.dim()) {
    throw std::invalid_argument("gpu_join: dimensionality mismatch");
  }
  GpuJoinResult result;
  GpuJoinStats& st = result.stats;
  Timer total;

  Timer phase;
  GridIndex index(data, eps);
  st.index_build_seconds = phase.seconds();
  if (queries.empty() || data.empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  gpu::GlobalMemoryArena arena(opt.device);
  // The query/data join batches over the EXTERNAL query set, so the
  // cell-centric kernel (whose work units are the indexed set's cells)
  // does not apply; the indexed data keeps the legacy layout.
  DeviceGrid dev(arena, data, index, GridLayout::kLegacy);

  // Ship the query set to the device alongside the indexed data.
  gpu::DeviceBuffer<double> qbuf(arena, queries.raw().size());
  std::memcpy(qbuf.data(), queries.raw().data(),
              queries.raw().size() * sizeof(double));
  GridDeviceView grid = dev.view();
  grid.qpoints = qbuf.data();
  grid.qn = queries.size();

  const EstimateResult est = estimate_result_size(
      grid, /*unicomp=*/false, opt.sample_rate, opt.block_size);
  st.estimated_total = est.estimated_total;

  const std::uint64_t buffer_pairs = size_buffer_pairs(
      arena, queries.size(), est.estimated_total, opt.min_batches,
      opt.num_streams, opt.max_buffer_pairs, opt.safety);

  const BatchPlan plan = plan_batches(est.estimated_total, queries.size(),
                                      opt.min_batches, buffer_pairs,
                                      opt.safety);

  AtomicWork work;
  Batcher batcher(arena, opt.device, opt.num_streams, opt.block_size);
  result.pairs =
      batcher.run(grid, /*unicomp=*/false, plan, &work, &st.batch);
  work.add_to(st.metrics);
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
