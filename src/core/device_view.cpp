#include "core/device_view.hpp"

#include <cstring>

#include "common/contracts.hpp"
#include "core/validate.hpp"

namespace sj {

namespace {

/// memcpy tolerating the empty range: an empty vector's data() may be
/// null, and passing null to memcpy is UB even for zero bytes (UBSan
/// flags it on empty datasets).
void copy_bytes(void* dst, const void* src, std::size_t bytes) {
  if (bytes > 0) std::memcpy(dst, src, bytes);
}

}  // namespace

DeviceGrid::DeviceGrid(gpu::GlobalMemoryArena& arena, const Dataset& d,
                       const GridIndex& index, GridLayout layout)
    : points_(arena, d.raw().size()),
      b_(arena, index.B().size()),
      g_(arena, index.G().size()),
      a_(arena, index.A().size()) {
  const int dim = d.dim();
  if (layout == GridLayout::kCellMajor) {
    // Reorder the dataset into cell-major order: slot k holds the
    // coordinates of point A[k], so every cell's points are contiguous
    // and A becomes the identity. a_ holds the slot -> original-id map.
    // Alongside the AoS image (still consumed by the point-centric
    // kernel and query_point) stage a per-dimension SoA twin: plane j is
    // the contiguous stream coord[j][0..n) the vectorised scan reads.
    coords_ = gpu::DeviceBuffer<double>(arena, d.raw().size());
    const std::size_t slots = index.A().size();
    for (std::size_t k = 0; k < slots; ++k) {
      const double* src = d.pt(index.A()[k]);
      std::memcpy(points_.data() + k * dim, src, dim * sizeof(double));
      for (int j = 0; j < dim; ++j) coords_.data()[j * slots + k] = src[j];
    }
    for (int j = 0; j < dim; ++j) view_.coord[j] = coords_.data() + j * slots;
  } else {
    copy_bytes(points_.data(), d.raw().data(),
               d.raw().size() * sizeof(double));
  }
  copy_bytes(b_.data(), index.B().data(),
             index.B().size() * sizeof(std::uint64_t));
  copy_bytes(g_.data(), index.G().data(),
             index.G().size() * sizeof(GridIndex::CellRange));
  copy_bytes(a_.data(), index.A().data(),
             index.A().size() * sizeof(std::uint32_t));

  view_.points = points_.data();
  view_.n = d.size();
  view_.dim = dim;
  view_.B = b_.data();
  view_.b_size = b_.size();
  view_.G = g_.data();
  if (layout == GridLayout::kCellMajor) {
    view_.orig = a_.data();
    view_.cell_major = true;
  } else {
    view_.A = a_.data();
  }
  view_.width = index.cell_width();
  view_.eps = index.eps();
  for (int j = 0; j < dim; ++j) {
    m_[j] = gpu::DeviceBuffer<std::uint32_t>(arena, index.mask(j).size());
    copy_bytes(m_[j].data(), index.mask(j).data(),
               index.mask(j).size() * sizeof(std::uint32_t));
    view_.M[j] = m_[j].data();
    view_.m_size[j] = m_[j].size();
    view_.gmin[j] = index.gmin(j);
    view_.cells_per_dim[j] = index.cells_in_dim(j);
    view_.stride[j] = index.stride(j);
  }

  if (contracts::active()) validate::device_grid(view_, &d, "DeviceGrid(upload)");
}

}  // namespace sj
