#include "core/kernels.hpp"

#include <algorithm>

#include "common/distance.hpp"

namespace sj {

namespace {

/// Per-thread emission helper with local work accounting.
struct Emitter {
  const ResultBufferView& r;
  LocalWork& w;

  void emit(std::uint32_t key, std::uint32_t value) {
    ++w.results;
    if (r.out == nullptr) return;  // count-only mode
    const std::uint64_t idx = r.cursor->fetch_add(1);
    if (idx >= r.capacity) {
      r.overflow->store(true, std::memory_order_relaxed);
      return;
    }
    r.out[idx] = Pair{key, value};
  }

  /// UNICOMP emits both ordered pairs of a find with one atomic
  /// reservation.
  void emit_both(std::uint32_t a, std::uint32_t b) {
    w.results += 2;
    if (r.out == nullptr) return;
    const std::uint64_t idx = r.cursor->fetch_add(2);
    if (idx + 2 > r.capacity) {
      r.overflow->store(true, std::memory_order_relaxed);
      return;
    }
    r.out[idx] = Pair{a, b};
    r.out[idx + 1] = Pair{b, a};
  }
};

/// Evaluate one candidate cell: binary-search B for existence, then
/// compute distances to every point it contains (Algorithm 1, lines
/// 10-17). `both_orders` implements UNICOMP's "add both (p, q) and
/// (q, p)" rule for neighbour cells.
inline void eval_cell(const SelfJoinKernelParams& p, LocalWork& w,
                      Emitter& em, std::uint32_t pid, const double* pt,
                      const std::uint32_t* cc, bool both_orders) {
  const GridDeviceView& g = p.grid;
  const std::uint64_t lin = g.linearize(cc);
  ++w.cells_examined;
  const std::uint64_t* end = g.B + g.b_size;
  const std::uint64_t* it = std::lower_bound(g.B, end, lin);
  if (it == end || *it != lin) return;
  ++w.cells_nonempty;

  const GridIndex::CellRange range = g.G[it - g.B];
  const double eps2 = g.eps * g.eps;
  for (std::uint32_t k = range.min; k <= range.max; ++k) {
    const std::uint32_t q = g.A[k];
    const double* qt = g.points + static_cast<std::size_t>(q) * g.dim;
    w.global_loads += static_cast<std::uint64_t>(g.dim);
    w.global_load_bytes += static_cast<std::uint64_t>(g.dim) * sizeof(double);
    if (p.cache != nullptr) {
      p.cache->access(reinterpret_cast<std::uint64_t>(qt),
                      static_cast<unsigned>(g.dim) * sizeof(double));
    }
    ++w.distance_calcs;
    const double d2 = sq_dist_early_exit(pt, qt, g.dim, eps2);
    if (d2 <= eps2) {
      if (both_orders) {
        em.emit_both(pid, q);
      } else {
        em.emit(pid, q);
      }
    }
  }
}

/// Full-neighbourhood enumeration (Algorithm 1): the cartesian product of
/// the mask-filtered adjacent coordinates in every dimension, own cell
/// included.
void enumerate_all(const SelfJoinKernelParams& p, LocalWork& w, Emitter& em,
                   std::uint32_t pid, const double* pt,
                   const std::uint32_t adj[][3], const int* adjn) {
  const int dim = p.grid.dim;
  for (int j = 0; j < dim; ++j) {
    if (adjn[j] == 0) return;  // cannot happen for in-dataset queries
  }
  int idx[kMaxDims] = {};
  std::uint32_t cc[kMaxDims];
  for (;;) {
    for (int j = 0; j < dim; ++j) cc[j] = adj[j][idx[j]];
    eval_cell(p, w, em, pid, pt, cc, /*both_orders=*/false);
    int j = 0;
    while (j < dim) {
      if (++idx[j] < adjn[j]) break;
      idx[j] = 0;
      ++j;
    }
    if (j == dim) break;
  }
}

/// UNICOMP enumeration (Algorithm 2, generalised to n dimensions). For
/// each dimension d with an odd home coordinate: dimensions < d range over
/// all filtered adjacent coordinates, dimension d over the filtered
/// coordinates that differ from home, dimensions > d stay pinned to home.
void enumerate_unicomp(const SelfJoinKernelParams& p, LocalWork& w,
                       Emitter& em, std::uint32_t pid, const double* pt,
                       const std::uint32_t* c, const std::uint32_t adj[][3],
                       const int* adjn) {
  const int dim = p.grid.dim;
  std::uint32_t cc[kMaxDims];

  // Home cell, one direction only: over all points of the cell, every
  // ordered pair (including the self pair) is emitted exactly once.
  eval_cell(p, w, em, pid, pt, c, /*both_orders=*/false);

  for (int d = 0; d < dim; ++d) {
    if ((c[d] & 1u) == 0) continue;  // even coordinate: skip (Algorithm 2)

    // First coordinate of dimension d that differs from home.
    auto next_non_center = [&](int start) {
      int k = start;
      while (k < adjn[d] && adj[d][k] == c[d]) ++k;
      return k;
    };

    int idx[kMaxDims] = {};
    idx[d] = next_non_center(0);
    if (idx[d] >= adjn[d]) continue;  // no non-empty differing neighbour
    bool lower_dims_ok = true;
    for (int j = 0; j < d; ++j) {
      if (adjn[j] == 0) lower_dims_ok = false;
    }
    if (!lower_dims_ok) continue;

    for (;;) {
      for (int j = 0; j < d; ++j) cc[j] = adj[j][idx[j]];
      cc[d] = adj[d][idx[d]];
      for (int j = d + 1; j < dim; ++j) cc[j] = c[j];
      eval_cell(p, w, em, pid, pt, cc, /*both_orders=*/true);

      // Advance the odometer over positions 0..d (position d skips home).
      int j = 0;
      bool done = false;
      for (;;) {
        if (j < d) {
          if (++idx[j] < adjn[j]) break;
          idx[j] = 0;
          ++j;
        } else {  // j == d
          idx[d] = next_non_center(idx[d] + 1);
          if (idx[d] < adjn[d]) break;
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
}

}  // namespace

void self_join_thread(const gpu::ThreadCtx& ctx,
                      const SelfJoinKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.num_queries) return;  // Algorithm 1, line 3
  const std::uint32_t pid =
      p.query_ids != nullptr ? p.query_ids[gid]
                             : static_cast<std::uint32_t>(gid);

  const GridDeviceView& g = p.grid;
  const double* pt = g.query_point(pid);

  LocalWork w;
  Emitter em{p.result, w};
  w.global_loads += static_cast<std::uint64_t>(g.dim);
  w.global_load_bytes += static_cast<std::uint64_t>(g.dim) * sizeof(double);
  if (p.cache != nullptr) {
    p.cache->access(reinterpret_cast<std::uint64_t>(pt),
                    static_cast<unsigned>(g.dim) * sizeof(double));
  }

  // Home cell coordinates (register copy of the point, line 5, then
  // adjacent ranges, line 6).
  std::uint32_t c[kMaxDims];
  for (int j = 0; j < g.dim; ++j) {
    const double rel = (pt[j] - g.gmin[j]) / g.width;
    std::int64_t cj = static_cast<std::int64_t>(rel);  // rel >= 0 by padding
    cj = std::min<std::int64_t>(
        std::max<std::int64_t>(cj, 0),
        static_cast<std::int64_t>(g.cells_per_dim[j]) - 1);
    c[j] = static_cast<std::uint32_t>(cj);
  }

  // Mask-filtered adjacent coordinates per dimension (line 7): the
  // elements of {c_j - 1, c_j, c_j + 1} present in M_j.
  std::uint32_t adj[kMaxDims][3];
  int adjn[kMaxDims];
  for (int j = 0; j < g.dim; ++j) {
    const std::uint32_t* m = g.M[j];
    const std::uint32_t* mend = m + g.m_size[j];
    const std::uint32_t lo = c[j] == 0 ? 0 : c[j] - 1;
    const std::int64_t hi = static_cast<std::int64_t>(c[j]) + 1;
    int count = 0;
    const std::uint32_t* it = std::lower_bound(m, mend, lo);
    for (; it != mend && static_cast<std::int64_t>(*it) <= hi; ++it) {
      adj[j][count++] = *it;
    }
    adjn[j] = count;
  }

  if (p.unicomp) {
    enumerate_unicomp(p, w, em, pid, pt, c, adj, adjn);
  } else {
    enumerate_all(p, w, em, pid, pt, adj, adjn);
  }

  if (p.work != nullptr) p.work->flush(w);
}

void brute_force_thread(const gpu::ThreadCtx& ctx,
                        const BruteForceKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.n) return;
  const std::uint32_t pid = static_cast<std::uint32_t>(gid);
  const double* pt = p.points + static_cast<std::size_t>(pid) * p.dim;
  const double eps2 = p.eps * p.eps;

  LocalWork w;
  Emitter em{p.result, w};
  for (std::uint64_t q = 0; q < p.n; ++q) {
    const double* qt = p.points + static_cast<std::size_t>(q) * p.dim;
    ++w.distance_calcs;
    const double d2 = sq_dist(pt, qt, p.dim);
    if (d2 <= eps2) em.emit(pid, static_cast<std::uint32_t>(q));
  }
  if (p.work != nullptr) p.work->flush(w);
}

}  // namespace sj
