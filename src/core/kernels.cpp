#include "core/kernels.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/distance.hpp"
#include "core/validate.hpp"

// The blocked distance loops below are written so the per-dimension lane
// loop is a unit-stride load + FMA stream the compiler can vectorise.
// SJ_DISABLE_SIMD (CMake option, CI leg) drops the vectorisation pragma
// and keeps the identical scalar loop — the semantics-preserving fallback
// for toolchains where `omp simd` misbehaves.
#if defined(SJ_DISABLE_SIMD)
#define SJ_SIMD_LOOP
#else
#define SJ_SIMD_LOOP _Pragma("omp simd")
#endif

namespace sj {

namespace {

/// Per-thread emission helper with local work accounting. Dispatches on
/// the ResultBufferView mode (see its doc comment): pair buffer writes,
/// count-only cursor bumps, histogram counters, or estimator accounting.
struct Emitter {
  const ResultBufferView& r;
  LocalWork& w;

  void bump(std::uint32_t id, std::uint32_t by) const {
    std::atomic_ref<std::uint32_t>(r.counts[id])
        .fetch_add(by, std::memory_order_relaxed);
  }

  void emit(std::uint32_t key, std::uint32_t value) {
    ++w.results;
    if (r.counts != nullptr) {  // histogram mode
      bump(key, 1);
      return;
    }
    if (r.cursor == nullptr) return;  // estimator mode
    const std::uint64_t idx = r.cursor->fetch_add(1);
    if (r.out == nullptr) return;  // count-only mode
    if (idx >= r.capacity) {
      r.overflow->store(true, std::memory_order_relaxed);
      return;
    }
    r.out[idx] = Pair{key, value};
  }

  /// UNICOMP emits both ordered pairs of a find with one atomic
  /// reservation.
  void emit_both(std::uint32_t a, std::uint32_t b) {
    w.results += 2;
    if (r.counts != nullptr) {
      bump(a, 1);
      bump(b, 1);
      return;
    }
    if (r.cursor == nullptr) return;
    const std::uint64_t idx = r.cursor->fetch_add(2);
    if (r.out == nullptr) return;
    if (idx + 2 > r.capacity) {
      r.overflow->store(true, std::memory_order_relaxed);
      return;
    }
    r.out[idx] = Pair{a, b};
    r.out[idx + 1] = Pair{b, a};
  }

  /// Blocked emission for the cell-centric kernel: all of one scan
  /// block's finds are reserved with a SINGLE atomic (two slots per find
  /// when `both` — UNICOMP's "add both ordered pairs" rule).
  void emit_block(std::uint32_t key, const std::uint32_t* values, int count,
                  bool both) {
    const std::uint64_t slots =
        static_cast<std::uint64_t>(count) * (both ? 2 : 1);
    w.results += slots;
    if (r.counts != nullptr) {
      bump(key, static_cast<std::uint32_t>(count));
      if (both) {
        for (int v = 0; v < count; ++v) bump(values[v], 1);
      }
      return;
    }
    if (r.cursor == nullptr) return;
    const std::uint64_t idx = r.cursor->fetch_add(slots);
    if (r.out == nullptr) return;
    if (idx + slots > r.capacity) {
      r.overflow->store(true, std::memory_order_relaxed);
      return;
    }
    Pair* out = r.out + idx;
    if (both) {
      for (int v = 0; v < count; ++v) {
        out[2 * v] = Pair{key, values[v]};
        out[2 * v + 1] = Pair{values[v], key};
      }
    } else {
      for (int v = 0; v < count; ++v) out[v] = Pair{key, values[v]};
    }
  }
};

/// Mask-filtered adjacent coordinates per dimension (Algorithm 1,
/// line 7): the elements of {c_j - 1, c_j, c_j + 1} present in M_j.
inline void filter_adjacent(const GridDeviceView& g, const std::uint32_t* c,
                            std::uint32_t adj[][3], int* adjn) {
  for (int j = 0; j < g.dim; ++j) {
    const std::uint32_t* m = g.M[j];
    const std::uint32_t* mend = m + g.m_size[j];
    const std::uint32_t lo = c[j] == 0 ? 0 : c[j] - 1;
    const std::int64_t hi = static_cast<std::int64_t>(c[j]) + 1;
    int count = 0;
    const std::uint32_t* it = std::lower_bound(m, mend, lo);
    for (; it != mend && static_cast<std::int64_t>(*it) <= hi; ++it) {
      adj[j][count++] = *it;
    }
    adjn[j] = count;
  }
}

/// The neighbourhood enumeration shared by the point-centric and the
/// cell-centric kernels: visit(cc, both_orders) is called for every
/// candidate cell of a home cell at coordinates `c`.
///
/// Full mode (Algorithm 1): the cartesian product of the mask-filtered
/// adjacent coordinates in every dimension, own cell included, all with
/// both_orders = false.
///
/// UNICOMP mode (Algorithm 2, generalised to n dimensions): the home cell
/// in one direction, then for each dimension d with an odd home
/// coordinate the cells where dimensions < d range over all filtered
/// adjacent coordinates, dimension d over the filtered coordinates that
/// differ from home, and dimensions > d stay pinned to home — those with
/// both_orders = true.
template <typename F>
void enumerate_neighborhood(int dim, const std::uint32_t* c,
                            const std::uint32_t adj[][3], const int* adjn,
                            bool unicomp, F&& visit) {
  std::uint32_t cc[kMaxDims];
  if (!unicomp) {
    for (int j = 0; j < dim; ++j) {
      if (adjn[j] == 0) return;  // cannot happen for in-dataset queries
    }
    int idx[kMaxDims] = {};
    for (;;) {
      for (int j = 0; j < dim; ++j) cc[j] = adj[j][idx[j]];
      visit(static_cast<const std::uint32_t*>(cc), /*both_orders=*/false);
      int j = 0;
      while (j < dim) {
        if (++idx[j] < adjn[j]) break;
        idx[j] = 0;
        ++j;
      }
      if (j == dim) break;
    }
    return;
  }

  // Home cell, one direction only: over all points of the cell, every
  // ordered pair (including the self pair) is emitted exactly once.
  visit(c, /*both_orders=*/false);

  for (int d = 0; d < dim; ++d) {
    if ((c[d] & 1u) == 0) continue;  // even coordinate: skip (Algorithm 2)

    // First coordinate of dimension d that differs from home.
    auto next_non_center = [&](int start) {
      int k = start;
      while (k < adjn[d] && adj[d][k] == c[d]) ++k;
      return k;
    };

    int idx[kMaxDims] = {};
    idx[d] = next_non_center(0);
    if (idx[d] >= adjn[d]) continue;  // no non-empty differing neighbour
    bool lower_dims_ok = true;
    for (int j = 0; j < d; ++j) {
      if (adjn[j] == 0) lower_dims_ok = false;
    }
    if (!lower_dims_ok) continue;

    for (;;) {
      for (int j = 0; j < d; ++j) cc[j] = adj[j][idx[j]];
      cc[d] = adj[d][idx[d]];
      for (int j = d + 1; j < dim; ++j) cc[j] = c[j];
      visit(static_cast<const std::uint32_t*>(cc), /*both_orders=*/true);

      // Advance the odometer over positions 0..d (position d skips home).
      int j = 0;
      bool done = false;
      for (;;) {
        if (j < d) {
          if (++idx[j] < adjn[j]) break;
          idx[j] = 0;
          ++j;
        } else {  // j == d
          idx[d] = next_non_center(idx[d] + 1);
          if (idx[d] < adjn[d]) break;
          done = true;
          break;
        }
      }
      if (done) break;
    }
  }
}

/// Evaluate one candidate cell of a point-centric query: binary-search B
/// for existence, then compute distances to every point it contains
/// (Algorithm 1, lines 10-17). `both_orders` implements UNICOMP's "add
/// both (p, q) and (q, p)" rule for neighbour cells. `key` is the
/// ORIGINAL dataset id emitted for the query point.
inline void eval_cell(const SelfJoinKernelParams& p, LocalWork& w,
                      Emitter& em, std::uint32_t key, const double* pt,
                      const std::uint32_t* cc, bool both_orders) {
  const GridDeviceView& g = p.grid;
  const std::uint64_t lin = g.linearize(cc);
  ++w.cells_examined;
  const std::uint64_t* end = g.B + g.b_size;
  const std::uint64_t* it = std::lower_bound(g.B, end, lin);
  if (it == end || *it != lin) return;
  ++w.cells_nonempty;

  const GridIndex::CellRange range = g.G[it - g.B];
  SJ_INVARIANT(static_cast<std::uint64_t>(range.max) < g.n,
               "G cell range must stay inside the point count");
  const double eps2 = g.eps * g.eps;
  for (std::uint32_t k = range.min; k <= range.max; ++k) {
    const double* qt = g.candidate_point(k);
    w.global_loads += static_cast<std::uint64_t>(g.dim);
    w.global_load_bytes += static_cast<std::uint64_t>(g.dim) * sizeof(double);
    if (p.cache != nullptr) {
      p.cache->access(reinterpret_cast<std::uint64_t>(qt),
                      static_cast<unsigned>(g.dim) * sizeof(double));
    }
    ++w.distance_calcs;
    const double d2 = sq_dist_early_exit(pt, qt, g.dim, eps2);
    if (d2 <= eps2) {
      const std::uint32_t q = g.candidate_id(k);
      if (both_orders) {
        em.emit_both(key, q);
      } else {
        em.emit(key, q);
      }
    }
  }
}

/// Per-thread scratch for the cell-centric kernel's inline-enumeration
/// mode, reused across work items so the range list never reallocates on
/// the hot path.
thread_local std::vector<CandidateRange> t_ranges;

/// Build the candidate slot-range list of the cell at coordinates `c` —
/// mask-filtering the adjacency, enumerating the neighbourhood (full or
/// UNICOMP) and binary-searching B ONCE PER CELL instead of once per
/// point. Contiguous ranges with the same orientation are merged:
/// adjacent non-empty cells occupy adjacent slot ranges in the cell-major
/// layout, so the 3^n candidate cells frequently collapse into a few long
/// scans. `c` need not name a non-empty cell itself (a join query group's
/// home cell may hold no data points).
void collect_ranges_at(const GridDeviceView& g, const std::uint32_t* c,
                       bool unicomp, LocalWork& w,
                       std::vector<CandidateRange>& out) {
  const std::size_t first = out.size();
  std::uint32_t adj[kMaxDims][3];
  int adjn[kMaxDims];
  filter_adjacent(g, c, adj, adjn);
  enumerate_neighborhood(
      g.dim, c, adj, adjn, unicomp,
      [&](const std::uint32_t* cc, bool both) {
        ++w.cells_examined;
        const std::uint64_t id = g.linearize(cc);
        const std::uint64_t* bend = g.B + g.b_size;
        const std::uint64_t* it = std::lower_bound(g.B, bend, id);
        if (it == bend || *it != id) return;
        ++w.cells_nonempty;
        const GridIndex::CellRange r = g.G[it - g.B];
        const std::uint32_t flag = both ? 1 : 0;
        if (out.size() > first && out.back().end == r.min &&
            out.back().both == flag) {
          out.back().end = r.max + 1;
        } else {
          out.push_back({r.min, r.max + 1, flag});
        }
      });
}

/// collect_ranges_at() for a non-empty cell identified by its index into
/// B (the self-join's work unit), decoding the coordinates first.
void collect_cell_ranges(const GridDeviceView& g, std::uint32_t cell_idx,
                         bool unicomp, LocalWork& w,
                         std::vector<CandidateRange>& out) {
  std::uint32_t c[kMaxDims];
  const std::uint64_t lin = g.B[cell_idx];
  for (int j = 0; j < g.dim; ++j) {
    c[j] =
        static_cast<std::uint32_t>((lin / g.stride[j]) % g.cells_per_dim[j]);
  }
  collect_ranges_at(g, c, unicomp, w, out);
}

/// SoA block width: wide enough that a full AVX2/AVX-512 register set
/// covers the lane loop, small enough that a block of partial sums stays
/// in registers.
constexpr int kSoaScanBlock = 16;

/// Scan one contiguous candidate range for one query point over the SoA
/// coordinate planes: for each block of kSoaScanBlock candidates the
/// per-dimension lane loop reads coord[j][k0..k0+bw) — a unit-stride
/// stream with no index arithmetic or gather — and accumulates squared
/// differences branch-free, so the compiler turns it into packed FMAs.
/// The dimension loop still bails out at BLOCK granularity once every
/// lane's partial sum exceeds eps^2.
inline void scan_range_soa(const GridDeviceView& g, LocalWork& w, Emitter& em,
                           std::uint32_t key, const double* pt,
                           const CandidateRange& r, double eps2,
                           gpu::CacheSim* cache) {
  SJ_EXPECT(r.begin < r.end && r.end <= g.n,
            "SoA candidate range must stay inside the slot space");
  const int dim = g.dim;
  double acc[kSoaScanBlock];
  for (std::uint32_t k0 = r.begin; k0 < r.end; k0 += kSoaScanBlock) {
    const int bw = static_cast<int>(
        std::min<std::uint32_t>(kSoaScanBlock, r.end - k0));
    w.distance_calcs += static_cast<std::uint64_t>(bw);
    w.global_loads += static_cast<std::uint64_t>(bw) * dim;
    w.global_load_bytes +=
        static_cast<std::uint64_t>(bw) * dim * sizeof(double);
    if (cache != nullptr) {
      for (int j = 0; j < dim; ++j) {
        cache->access(reinterpret_cast<std::uint64_t>(g.coord[j] + k0),
                      static_cast<unsigned>(bw) * sizeof(double));
      }
    }
    // Fused single-pass loops for the common low dimensionalities: one
    // sweep writing acc[] directly (no zero-init pass, one loop overhead
    // instead of `dim`), still branch-free and unit-stride per plane.
    if (dim == 2) {
      const double* c0 = g.coord[0] + k0;
      const double* c1 = g.coord[1] + k0;
      const double p0 = pt[0], p1 = pt[1];
      SJ_SIMD_LOOP
      for (int v = 0; v < bw; ++v) {
        const double d0 = c0[v] - p0;
        const double d1 = c1[v] - p1;
        acc[v] = d0 * d0 + d1 * d1;
      }
    } else if (dim == 3) {
      const double* c0 = g.coord[0] + k0;
      const double* c1 = g.coord[1] + k0;
      const double* c2 = g.coord[2] + k0;
      const double p0 = pt[0], p1 = pt[1], p2 = pt[2];
      SJ_SIMD_LOOP
      for (int v = 0; v < bw; ++v) {
        const double d0 = c0[v] - p0;
        const double d1 = c1[v] - p1;
        const double d2 = c2[v] - p2;
        acc[v] = d0 * d0 + d1 * d1 + d2 * d2;
      }
    } else {
      for (int v = 0; v < bw; ++v) acc[v] = 0.0;
      bool block_pruned = false;
      for (int j = 0; j < dim; ++j) {
        const double* plane = g.coord[j] + k0;
        const double pj = pt[j];
        SJ_SIMD_LOOP
        for (int v = 0; v < bw; ++v) {
          const double diff = plane[v] - pj;
          acc[v] += diff * diff;
        }
        // Only bother with the per-block prune in higher dimensions,
        // where the remaining per-lane work it saves outweighs the
        // min-reduction.
        if (j + 1 < dim) {
          double m = acc[0];
          for (int v = 1; v < bw; ++v) m = std::min(m, acc[v]);
          if (m > eps2) {
            block_pruned = true;
            break;
          }
        }
      }
      if (block_pruned) continue;
    }
    // Branchless compaction: dense blocks match ~half their lanes, so a
    // data-dependent branch here mispredicts constantly; the unconditional
    // orig[] load per lane is far cheaper.
    std::uint32_t match[kSoaScanBlock];
    int m = 0;
    for (int v = 0; v < bw; ++v) {
      match[m] = g.orig[k0 + v];
      m += acc[v] <= eps2 ? 1 : 0;
    }
    if (m > 0) em.emit_block(key, match, m, r.both);
  }
}

/// Scan one contiguous candidate range for one query point with blocked
/// distance evaluation: each block of up to kScanBlock candidates is
/// evaluated with a branch-free lane loop (vectorisable — no per-
/// candidate early exit, no gather), and the dimension loop bails out at
/// BLOCK granularity once every lane's partial sum exceeds eps^2.
/// Dispatches to the SoA path when the view carries coordinate planes
/// (cell-major uploads; engines null them out under the soa=0 ablation
/// knob); the AoS body below is that ablation baseline.
inline void scan_range(const GridDeviceView& g, LocalWork& w, Emitter& em,
                       std::uint32_t key, const double* pt,
                       const CandidateRange& r, double eps2,
                       gpu::CacheSim* cache) {
  if (g.coord[0] != nullptr) {
    scan_range_soa(g, w, em, key, pt, r, eps2, cache);
    return;
  }
  SJ_EXPECT(r.begin < r.end && r.end <= g.n,
            "candidate range must stay inside the slot space");
  constexpr int kScanBlock = 8;
  const int dim = g.dim;
  double acc[kScanBlock];
  for (std::uint32_t k0 = r.begin; k0 < r.end; k0 += kScanBlock) {
    const int bw = static_cast<int>(
        std::min<std::uint32_t>(kScanBlock, r.end - k0));
    const double* base = g.points + static_cast<std::size_t>(k0) * dim;
    w.distance_calcs += static_cast<std::uint64_t>(bw);
    w.global_loads += static_cast<std::uint64_t>(bw) * dim;
    w.global_load_bytes +=
        static_cast<std::uint64_t>(bw) * dim * sizeof(double);
    if (cache != nullptr) {
      cache->access(reinterpret_cast<std::uint64_t>(base),
                    static_cast<unsigned>(bw * dim) * sizeof(double));
    }
    for (int v = 0; v < bw; ++v) acc[v] = 0.0;
    bool block_pruned = false;
    for (int j = 0; j < dim; ++j) {
      const double pj = pt[j];
      for (int v = 0; v < bw; ++v) {
        const double diff = base[v * dim + j] - pj;
        acc[v] += diff * diff;
      }
      // Only bother with the per-block prune in higher dimensions, where
      // the remaining per-lane work it saves outweighs the min-reduction.
      if (dim > 3 && j + 1 < dim) {
        double m = acc[0];
        for (int v = 1; v < bw; ++v) m = std::min(m, acc[v]);
        if (m > eps2) {
          block_pruned = true;
          break;
        }
      }
    }
    if (block_pruned) continue;
    std::uint32_t match[kScanBlock];
    int m = 0;
    for (int v = 0; v < bw; ++v) {
      if (acc[v] <= eps2) match[m++] = g.orig[k0 + v];
    }
    if (m > 0) em.emit_block(key, match, m, r.both);
  }
}

}  // namespace

void self_join_thread(const gpu::ThreadCtx& ctx,
                      const SelfJoinKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.num_queries) return;  // Algorithm 1, line 3
  const std::uint32_t pid =
      p.query_ids != nullptr ? p.query_ids[gid]
                             : static_cast<std::uint32_t>(gid);

  const GridDeviceView& g = p.grid;
  const double* pt = g.query_point(pid);
  const std::uint32_t key = g.query_id(pid);

  LocalWork w;
  Emitter em{p.result, w};
  w.global_loads += static_cast<std::uint64_t>(g.dim);
  w.global_load_bytes += static_cast<std::uint64_t>(g.dim) * sizeof(double);
  if (p.cache != nullptr) {
    p.cache->access(reinterpret_cast<std::uint64_t>(pt),
                    static_cast<unsigned>(g.dim) * sizeof(double));
  }

  // Home cell coordinates (register copy of the point, line 5, then
  // adjacent ranges, line 6).
  std::uint32_t c[kMaxDims];
  g.home_cell(pt, c);

  std::uint32_t adj[kMaxDims][3];
  int adjn[kMaxDims];
  filter_adjacent(g, c, adj, adjn);

  enumerate_neighborhood(g.dim, c, adj, adjn, p.unicomp,
                         [&](const std::uint32_t* cc, bool both) {
                           eval_cell(p, w, em, key, pt, cc, both);
                         });

  if (p.work != nullptr) p.work->flush(w);
}

void self_join_cells_thread(const gpu::ThreadCtx& ctx,
                            const CellJoinKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.num_items) return;
  const CellWorkItem item = p.items[gid];
  const GridDeviceView& g = p.grid;
  SJ_EXPECT(item.cell < g.b_size,
            "cell work item must name a non-empty cell index into B");
  SJ_EXPECT(item.begin <= item.end && item.end <= g.n,
            "cell work item slot range must stay inside the layout");

  LocalWork w;
  Emitter em{p.result, w};

  // The adjacent-cell range list is shared by the whole item — every
  // point of the cell has the same neighbourhood. With a precomputed
  // adjacency the lookup is free; the standalone mode (metrics pass)
  // enumerates it here, once per item.
  const CandidateRange* ranges;
  std::size_t num_ranges;
  if (p.ranges != nullptr) {
    ranges = p.ranges + p.range_offsets[item.cell];
    num_ranges = static_cast<std::size_t>(p.range_offsets[item.cell + 1] -
                                          p.range_offsets[item.cell]);
  } else {
    t_ranges.clear();
    collect_cell_ranges(g, item.cell, p.unicomp, w, t_ranges);
    ranges = t_ranges.data();
    num_ranges = t_ranges.size();
  }

  const double eps2 = g.eps * g.eps;
  for (std::uint32_t s = item.begin; s < item.end; ++s) {
    const double* pt = g.points + static_cast<std::size_t>(s) * g.dim;
    const std::uint32_t key = g.orig[s];
    w.global_loads += static_cast<std::uint64_t>(g.dim);
    w.global_load_bytes += static_cast<std::uint64_t>(g.dim) * sizeof(double);
    if (p.cache != nullptr) {
      p.cache->access(reinterpret_cast<std::uint64_t>(pt),
                      static_cast<unsigned>(g.dim) * sizeof(double));
    }
    for (std::size_t r = 0; r < num_ranges; ++r) {
      scan_range(g, w, em, key, pt, ranges[r], eps2, p.cache);
    }
  }

  if (p.work != nullptr) p.work->flush(w);
}

CellAdjacencyHost build_cell_adjacency_host(const GridDeviceView& grid,
                                            bool unicomp) {
  return build_cell_adjacency_span(grid, unicomp, 0,
                                   static_cast<std::uint32_t>(grid.b_size));
}

CellAdjacencyHost build_cell_adjacency_span(const GridDeviceView& grid,
                                            bool unicomp,
                                            std::uint32_t cell_begin,
                                            std::uint32_t cell_end) {
  CellAdjacencyHost adj;
  const std::size_t num_cells = cell_end - cell_begin;
  adj.weights.assign(num_cells, 0);
  adj.offsets.assign(num_cells + 1, 0);
  if (num_cells == 0) return adj;

  // One enumeration pass over the cells, accumulated on the host as a
  // CSR-style (offsets, ranges) pair. The pass is the same work one
  // point-centric query performs per POINT, so it amortises to a small
  // fraction of the legacy kernel's search overhead.
  adj.ranges.reserve(num_cells * 4);
  LocalWork w;  // planning work, not flushed into join counters
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    collect_cell_ranges(grid,
                        static_cast<std::uint32_t>(cell_begin + cell),
                        unicomp, w, adj.ranges);
    adj.offsets[cell + 1] = adj.ranges.size();
    std::uint64_t candidates = 0;
    for (std::size_t r = adj.offsets[cell]; r < adj.offsets[cell + 1]; ++r) {
      candidates += static_cast<std::uint64_t>(adj.ranges[r].end -
                                               adj.ranges[r].begin) *
                    (adj.ranges[r].both != 0 ? 2 : 1);
    }
    const GridIndex::CellRange cr = grid.G[cell_begin + cell];
    // candidates x population can exceed 64 bits for a pathological cell;
    // saturate so the planner's relative ordering survives instead of
    // wrapping a heavy cell down to a tiny weight.
    const unsigned __int128 weight =
        static_cast<unsigned __int128>(candidates) *
        (static_cast<std::uint64_t>(cr.max) - cr.min + 1);
    adj.weights[cell] = static_cast<std::uint64_t>(std::min<unsigned __int128>(
        weight, std::numeric_limits<std::uint64_t>::max()));
  }
  adj.cells_examined = w.cells_examined;
  adj.cells_nonempty = w.cells_nonempty;
  if (contracts::active()) {
    validate::cell_adjacency(adj, num_cells, grid.n,
                             "build_cell_adjacency_span");
  }
  return adj;
}

CellAdjacency build_cell_adjacency(gpu::GlobalMemoryArena& arena,
                                   const GridDeviceView& grid, bool unicomp) {
  CellAdjacencyHost host = build_cell_adjacency_host(grid, unicomp);
  CellAdjacency adj;
  adj.ranges = gpu::DeviceBuffer<CandidateRange>(arena, host.ranges.size());
  std::copy(host.ranges.begin(), host.ranges.end(), adj.ranges.data());
  adj.offsets = gpu::DeviceBuffer<std::uint64_t>(arena, host.offsets.size());
  std::copy(host.offsets.begin(), host.offsets.end(), adj.offsets.data());
  adj.weights = std::move(host.weights);
  adj.cells_examined = host.cells_examined;
  adj.cells_nonempty = host.cells_nonempty;
  return adj;
}

void join_cells_thread(const gpu::ThreadCtx& ctx,
                       const JoinCellsKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.num_items) return;
  const CellWorkItem item = p.items[gid];
  const GridDeviceView& g = p.grid;

  LocalWork w;
  Emitter em{p.result, w};

  // The candidate range list is shared by the whole group — every query
  // in it has the same data-grid home cell.
  const CandidateRange* ranges = p.ranges + p.range_offsets[item.cell];
  const std::size_t num_ranges = static_cast<std::size_t>(
      p.range_offsets[item.cell + 1] - p.range_offsets[item.cell]);

  const double eps2 = g.eps * g.eps;
  for (std::uint32_t s = item.begin; s < item.end; ++s) {
    const std::uint32_t qid = p.query_order[s];
    SJ_INVARIANT(qid < g.num_queries(),
                 "query order entry must name a valid query id");
    const double* pt = g.query_point(qid);
    w.global_loads += static_cast<std::uint64_t>(g.dim) + 1;  // pt + id
    w.global_load_bytes +=
        static_cast<std::uint64_t>(g.dim) * sizeof(double) +
        sizeof(std::uint32_t);
    if (p.cache != nullptr) {
      p.cache->access(reinterpret_cast<std::uint64_t>(pt),
                      static_cast<unsigned>(g.dim) * sizeof(double));
    }
    for (std::size_t r = 0; r < num_ranges; ++r) {
      scan_range(g, w, em, qid, pt, ranges[r], eps2, p.cache);
    }
  }

  if (p.work != nullptr) p.work->flush(w);
}

JoinAdjacencyHost build_join_adjacency_host(const GridDeviceView& grid) {
  JoinAdjacencyHost adj;
  const std::uint64_t nq = grid.qn;

  // Sort the queries by (home data-grid cell, id): groups become
  // contiguous position ranges and the within-group order is
  // deterministic.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed(
      static_cast<std::size_t>(nq));
  std::uint32_t c[kMaxDims];
  for (std::uint64_t q = 0; q < nq; ++q) {
    grid.home_cell(grid.query_point(q), c);
    keyed[static_cast<std::size_t>(q)] = {grid.linearize(c),
                                          static_cast<std::uint32_t>(q)};
  }
  std::sort(keyed.begin(), keyed.end());

  adj.query_order.resize(static_cast<std::size_t>(nq));
  for (std::uint64_t q = 0; q < nq; ++q) {
    adj.query_order[static_cast<std::size_t>(q)] =
        keyed[static_cast<std::size_t>(q)].second;
  }

  // One adjacency resolution per DISTINCT home cell, amortised over all
  // of its queries — the join analogue of the self-join's once-per-cell
  // enumeration.
  adj.offsets.push_back(0);
  adj.group_offsets.push_back(0);
  LocalWork w;
  std::size_t pos = 0;
  while (pos < keyed.size()) {
    const std::uint64_t key = keyed[pos].first;
    std::size_t end = pos + 1;
    while (end < keyed.size() && keyed[end].first == key) ++end;

    grid.home_cell(grid.query_point(adj.query_order[pos]), c);
    collect_ranges_at(grid, c, /*unicomp=*/false, w, adj.ranges);
    adj.offsets.push_back(adj.ranges.size());
    adj.group_offsets.push_back(static_cast<std::uint32_t>(end));

    std::uint64_t candidates = 0;
    for (std::size_t r = adj.offsets[adj.offsets.size() - 2];
         r < adj.ranges.size(); ++r) {
      candidates += adj.ranges[r].end - adj.ranges[r].begin;
    }
    const unsigned __int128 weight =
        static_cast<unsigned __int128>(candidates) *
        static_cast<std::uint64_t>(end - pos);
    adj.weights.push_back(static_cast<std::uint64_t>(
        std::min<unsigned __int128>(
            weight, std::numeric_limits<std::uint64_t>::max())));
    pos = end;
  }
  adj.cells_examined = w.cells_examined;
  adj.cells_nonempty = w.cells_nonempty;
  if (contracts::active()) {
    validate::join_adjacency(adj, nq, grid.n, "build_join_adjacency_host");
  }
  return adj;
}

JoinAdjacency build_join_adjacency(gpu::GlobalMemoryArena& arena,
                                   const GridDeviceView& grid) {
  JoinAdjacencyHost host = build_join_adjacency_host(grid);
  JoinAdjacency adj;
  adj.query_order =
      gpu::DeviceBuffer<std::uint32_t>(arena, host.query_order.size());
  std::copy(host.query_order.begin(), host.query_order.end(),
            adj.query_order.data());
  adj.ranges = gpu::DeviceBuffer<CandidateRange>(arena, host.ranges.size());
  std::copy(host.ranges.begin(), host.ranges.end(), adj.ranges.data());
  adj.offsets = gpu::DeviceBuffer<std::uint64_t>(arena, host.offsets.size());
  std::copy(host.offsets.begin(), host.offsets.end(), adj.offsets.data());
  adj.group_offsets = std::move(host.group_offsets);
  adj.weights = std::move(host.weights);
  adj.cells_examined = host.cells_examined;
  adj.cells_nonempty = host.cells_nonempty;
  return adj;
}

void brute_force_thread(const gpu::ThreadCtx& ctx,
                        const BruteForceKernelParams& p) {
  const std::uint64_t gid = ctx.global_id();
  if (gid >= p.n) return;
  const std::uint32_t pid = static_cast<std::uint32_t>(gid);
  const double* pt = p.points + static_cast<std::size_t>(pid) * p.dim;
  const double eps2 = p.eps * p.eps;

  LocalWork w;
  Emitter em{p.result, w};
  for (std::uint64_t q = 0; q < p.n; ++q) {
    const double* qt = p.points + static_cast<std::size_t>(q) * p.dim;
    ++w.distance_calcs;
    const double d2 = sq_dist(pt, qt, p.dim);
    if (d2 <= eps2) em.emit(pid, static_cast<std::uint32_t>(q));
  }
  if (p.work != nullptr) p.work->flush(w);
}

}  // namespace sj
