// GPU-SJ: the paper's GPU self-join algorithm — public API.
//
// Combines the grid index (Section IV), the GPUSELFJOINGLOBAL kernel
// (Algorithm 1), the UNICOMP duplicate-search-removal optimisation
// (Section V-B) and the result-set batching scheme (Section V-A).
//
//   sj::GpuSelfJoin join;                      // defaults: UNICOMP on,
//   auto r = join.run(dataset, eps);           // 256-thread blocks, >= 3
//   use(r.pairs); inspect(r.stats);            // batches over 3 streams
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/result.hpp"
#include "core/batcher.hpp"
#include "core/device_view.hpp"
#include "gpusim/device.hpp"
#include "gpusim/metrics.hpp"

namespace sj {

struct GpuSelfJoinOptions {
  /// Enable the UNICOMP uni-directional comparison pattern (Section V-B).
  bool unicomp = true;

  /// Data layout + kernel shape. kCellMajor (the default) reorders the
  /// dataset cell-by-cell at upload time and runs the cell-centric kernel
  /// (adjacency resolved once per cell, contiguous candidate scans);
  /// kLegacy keeps the paper's point-centric kernel over the original
  /// order, selectable for ablation and parity checks.
  GridLayout layout = GridLayout::kCellMajor;

  /// Threads per block ("configured to run with 256 threads per block",
  /// Section VI-B).
  int block_size = 256;

  /// "In all experiments, the minimum number of batches is set to 3"
  /// (Section V-A).
  std::size_t min_batches = 3;

  /// Streams pipelining kernel execution against host transfers.
  int num_streams = 3;

  /// Fraction of points sampled by the result-size estimator.
  double sample_rate = 0.01;

  /// Safety factor applied to the estimate when sizing batches.
  double safety = 1.25;

  /// Hard cap on the per-stream result buffer (pairs); the effective size
  /// also respects the device's free global memory.
  std::uint64_t max_buffer_pairs = 1ULL << 24;

  /// Collect Table II-style metrics (occupancy, unified-cache model).
  /// Runs one extra serial metrics pass — results are unaffected.
  bool collect_metrics = false;

  /// What to materialise (common/result.hpp). Non-pairs modes skip the
  /// result-size estimator and all pair-buffer allocation; kSink streams
  /// sorted batches through `sink`.
  ResultMode mode = ResultMode::kPairs;
  PairSink sink;

  /// Scan the SoA coordinate planes (cell-major layout only; the
  /// vectorised per-dimension loop). false reverts to the AoS blocked
  /// scan for ablation. Ignored under kLegacy, which has no planes.
  bool soa = true;

  /// Device resource model (defaults to the paper's TITAN X Pascal).
  gpu::DeviceSpec device = gpu::DeviceSpec::titan_x_pascal();

  /// Transient-fault response: batches hit by a TransientDeviceError are
  /// re-run up to retry.retries times with exponential backoff (see
  /// RetryPolicy, batcher.hpp). Retries never change the output.
  RetryPolicy retry;

  /// Optional deadline/cancellation control (common/cancel.hpp),
  /// non-owning; polled at the pipeline's checkpoint seams. A tripped
  /// control aborts the run with a typed exec:: error.
  const exec::ExecControl* control = nullptr;
};

struct SelfJoinStats {
  double total_seconds = 0.0;
  double index_build_seconds = 0.0;
  double upload_seconds = 0.0;
  double estimate_seconds = 0.0;
  double join_seconds = 0.0;  // batched kernel + sort + transfer phase

  std::uint64_t estimated_total = 0;
  BatchRunStats batch;

  std::size_t grid_nonempty_cells = 0;
  std::uint64_t grid_total_cells = 0;

  /// Work counters aggregated over every batch kernel; in metrics mode
  /// also the cache-model counters and modelled bandwidth.
  gpu::KernelMetrics metrics;

  /// Theoretical occupancy of the launched kernel (register model, see
  /// gpusim/occupancy.hpp).
  double occupancy = 0.0;
  int regs_per_thread = 0;
};

struct SelfJoinResult {
  ResultSet pairs;  // repo-wide pair convention, see api/backend.hpp
  /// Exact pair count in every result mode; histogram only in kHistogram.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  SelfJoinStats stats;
};

class GpuSelfJoin {
 public:
  explicit GpuSelfJoin(GpuSelfJoinOptions opt = {});

  /// Compute the full self-join of `d` with distance threshold eps >= 0.
  SelfJoinResult run(const Dataset& d, double eps) const;

  const GpuSelfJoinOptions& options() const { return opt_; }

 private:
  GpuSelfJoinOptions opt_;
};

/// Shared tail of the GPU engines' runs: the occupancy model plus the
/// optional serial metrics pass. Used by GpuSelfJoin and AsyncGpuSelfJoin.
void collect_gpu_stats(const GridDeviceView& grid,
                       const GpuSelfJoinOptions& opt, SelfJoinStats& st);

}  // namespace sj
