// Deep structural validators for the layered data structures the engines
// build: grid index / device grid, cell and query-group adjacency CSRs,
// and shard plans. Each validator is a one-shot O(n + ranges) walk that
// aborts with a contracts::fail report on the first violated invariant.
//
// The validators are ALWAYS compiled (tests corrupt a structure and call
// them directly in any build); engine call sites gate them on
// contracts::active() — true in -DSJ_VALIDATE=ON builds and under
// `sjtool --validate`. Time spent inside them accumulates into
// contracts::validation_seconds().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/dataset.hpp"
#include "core/device_view.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "core/shard_plan.hpp"

namespace sj::validate {

/// GridIndex invariants over the dataset it was built from:
///   - B strictly increasing (sorted non-empty cell ids)
///   - G ranges partition [0, n) in order (G[0].min == 0, contiguous,
///     G.back().max == n - 1)
///   - A is a permutation of [0, n)
///   - every point's home cell linearises to the B entry owning its slot
///   - per-dimension masks strictly increasing and within cells_in_dim
void grid_index(const GridIndex& index, const Dataset& d, const char* context);

/// GridDeviceView invariants (either layout):
///   - G ranges partition [0, n), B strictly increasing
///   - cell-major: `orig` is a permutation of [0, n); when SoA planes are
///     present, coord[j][k] mirrors points[k*dim + j] exactly
///   - when `d` is non-null, the (reordered) AoS coordinates match the
///     source dataset point-for-point
///   - masks strictly increasing and within cells_per_dim
void device_grid(const GridDeviceView& view, const Dataset* d,
                 const char* context);

/// Cell-adjacency CSR invariants for cells [0, num_cells) over a slot
/// space of size n_slots:
///   - offsets has num_cells + 1 entries, offsets[0] == 0, monotone
///     non-decreasing, ending at ranges.size()
///   - weights has num_cells entries
///   - every range non-empty, in [0, n_slots), both flag in {0, 1}
///   - each cell's merged ranges pairwise non-overlapping
void cell_adjacency(const CellAdjacencyHost& adj, std::size_t num_cells,
                    std::uint64_t n_slots, const char* context);

/// Query-group adjacency invariants over qn queries and n_slots data
/// slots:
///   - query_order is a permutation of [0, qn)
///   - group_offsets strictly increasing from 0 to qn (no empty groups)
///   - offsets a well-formed CSR over num_groups() ending at ranges.size()
///   - weights has num_groups() entries
///   - every range non-empty, in [0, n_slots), both flag in {0, 1}
///   - each group's merged ranges pairwise non-overlapping
void join_adjacency(const JoinAdjacencyHost& adj, std::uint64_t qn,
                    std::uint64_t n_slots, const char* context);

/// Shard boundary invariants: boundaries[0] == 0, strictly increasing,
/// ending at num_units — the shards are disjoint, non-empty, and cover
/// every unit. (The degenerate num_units == 0 plan is {0, 0}.)
void shard_boundaries(const std::vector<std::uint32_t>& boundaries,
                      std::size_t num_units, const char* context);

/// shard_boundaries plus the planner's coalescing guarantee: every part
/// carries nonzero summed unit weight unless the total weight itself is
/// zero (no degenerate empty shards next to a giant unit).
void shard_boundaries(const std::vector<std::uint32_t>& boundaries,
                      const std::vector<std::uint64_t>& unit_weights,
                      const char* context);

/// ChunkletPlan invariants over the unit weights it was planned from:
///   - bounds strictly cover [0, units) (shard_boundaries + nonzero
///     per-chunklet weight, i.e. disjoint owned spans with no weightless
///     chunklet unless the total is zero)
///   - weights mirror the per-chunklet unit-weight sums exactly
///   - device_bounds strictly cover [0, chunklets) with at most `devices`
///     groups (the contiguous stealing seed)
void chunklet_plan(const ChunkletPlan& plan,
                   const std::vector<std::uint64_t>& unit_weights,
                   std::size_t devices, const char* context);

/// ShardSlice invariants over a global slot space of size n_slots:
///   - owned span within [0, n_slots]
///   - halo intervals non-empty, sorted, pairwise disjoint, entirely
///     outside the owned span, with contiguous local numbering starting
///     at owned_points()
///   - to_local() round-trips the endpoints of the owned span and every
///     halo interval
///   - offsets a well-formed CSR over the owned units ending at
///     ranges.size()
///   - every remapped range non-empty and within [0, local_points())
void shard_slice(const ShardSlice& slice, std::uint64_t n_slots,
                 const char* context);

}  // namespace sj::validate
