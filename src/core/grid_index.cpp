#include "core/grid_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "core/validate.hpp"

namespace sj {

GridIndex::GridIndex(const Dataset& d, double eps) {
  if (eps < 0.0) throw std::invalid_argument("GridIndex: eps must be >= 0");
  if (d.dim() > kMaxDims) {
    throw std::invalid_argument(
        "GridIndex: dim " + std::to_string(d.dim()) + " exceeds kMaxDims=" +
        std::to_string(kMaxDims) + " (the fixed-size per-dimension arrays)");
  }
  if (d.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw std::invalid_argument("GridIndex: dataset too large for 32-bit ids");
  }
  dim_ = d.dim();
  eps_ = eps;
  // Width is padded by a tiny relative margin so that two points exactly
  // eps apart can never straddle more than one cell boundary after
  // floating-point division — the bounded adjacent-cell search stays
  // correct for any cell width >= eps.
  width_ = eps > 0.0 ? eps * (1.0 + 1e-12) : 1.0;

  const std::size_t n = d.size();
  if (n == 0) {
    // Degenerate but valid: no cells, queries find nothing.
    for (int j = 0; j < dim_; ++j) {
      cells_per_dim_[j] = 0;
      stride_[j] = (j == 0) ? 1 : 0;
    }
    return;
  }

  // Index range [gmin_j, gmax_j] appended by eps on both sides to avoid
  // boundary conditions in cell lookups (Section IV-B).
  const auto lo = d.min_bound();
  const auto hi = d.max_bound();
  for (int j = 0; j < dim_; ++j) {
    gmin_[j] = lo[j] - width_;
    gmax_[j] = hi[j] + width_;
  }

  // |g_j| = (gmax_j - gmin_j) / eps, rounded up so the grid always covers
  // the padded range (the paper assumes eps divides evenly; we do not).
  unsigned __int128 total = 1;
  for (int j = 0; j < dim_; ++j) {
    const double span = gmax_[j] - gmin_[j];
    const auto cells = static_cast<std::uint64_t>(std::ceil(span / width_));
    const std::uint64_t c = std::max<std::uint64_t>(cells, 1);
    if (c > std::numeric_limits<std::uint32_t>::max()) {
      throw std::overflow_error("GridIndex: too many cells in one dimension");
    }
    cells_per_dim_[j] = static_cast<std::uint32_t>(c);
    total *= c;
  }
  if (total > std::numeric_limits<std::uint64_t>::max()) {
    throw std::overflow_error(
        "GridIndex: linearised cell ids exceed 64 bits; increase eps");
  }
  stride_[0] = 1;
  for (int j = 1; j < dim_; ++j) {
    stride_[j] = stride_[j - 1] * cells_per_dim_[j - 1];
  }

  // Bin points: (linear cell id, point id), sorted by cell then id. The
  // sort groups each cell's points contiguously, giving A directly and
  // the unique cell ids giving B and G.
  struct Entry {
    std::uint64_t cell;
    std::uint32_t pid;
  };
  std::vector<Entry> entries(n);
  std::uint32_t coords[kMaxDims];
  std::uint64_t max_cell = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cell_coords(d.pt(i), coords);
    entries[i].cell = linearize(coords);
    entries[i].pid = static_cast<std::uint32_t>(i);
    max_cell = std::max(max_cell, entries[i].cell);
  }
  // Stable LSD radix sort on the cell id, 8 bits per pass, touching only
  // the bytes the largest cell id occupies (a near-square grid rarely
  // needs more than three). Pids enter in ascending input order and
  // stability preserves that within equal cells, so the (cell, pid)
  // order — and therefore A, B and G — is byte-identical to what a
  // comparison sort would produce, at O(n) per pass instead of
  // O(n log n): the index build is the serialized prefix of every
  // sharded run, so its constant factor directly caps multi-device
  // strong scaling.
  {
    std::vector<Entry> tmp(n);
    for (int shift = 0; shift < 64 && (max_cell >> shift) != 0; shift += 8) {
      std::size_t count[257] = {};
      for (const Entry& e : entries) ++count[((e.cell >> shift) & 0xFF) + 1];
      for (int b = 1; b <= 256; ++b) count[b] += count[b - 1];
      for (const Entry& e : entries) tmp[count[(e.cell >> shift) & 0xFF]++] = e;
      entries.swap(tmp);
    }
  }

  A_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    A_[i] = entries[i].pid;
    if (i == 0 || entries[i].cell != entries[i - 1].cell) {
      B_.push_back(entries[i].cell);
      G_.push_back({static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(i)});
    } else {
      G_.back().max = static_cast<std::uint32_t>(i);
    }
  }

  // Masking arrays: the non-empty coordinates per dimension.
  for (int j = 0; j < dim_; ++j) {
    std::vector<std::uint32_t>& m = M_[j];
    m.reserve(B_.size());
    for (std::uint64_t cell : B_) {
      m.push_back(static_cast<std::uint32_t>((cell / stride_[j]) %
                                             cells_per_dim_[j]));
    }
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
  }

  if (contracts::active()) validate::grid_index(*this, d, "GridIndex(build)");
}

GridIndex::Parts GridIndex::to_parts() const {
  Parts p;
  p.dim = dim_;
  p.eps = eps_;
  p.width = width_;
  for (int j = 0; j < kMaxDims; ++j) {
    p.gmin[j] = gmin_[j];
    p.gmax[j] = gmax_[j];
    p.cells_per_dim[j] = cells_per_dim_[j];
    p.stride[j] = stride_[j];
  }
  p.B = B_;
  p.G = G_;
  p.A = A_;
  for (int j = 0; j < kMaxDims; ++j) p.M[j] = M_[j];
  return p;
}

GridIndex GridIndex::from_parts(Parts parts, const Dataset& d) {
  // Disk-sourced structure is untrusted regardless of the build's
  // contracts setting, and the deep validators ABORT on violation
  // (internal-invariant semantics) — so this path re-does their checks
  // with THROW semantics, letting a caller fall back to a rebuild. The
  // abort-style validator still runs at the end under contracts builds,
  // keeping the two check sets from drifting apart.
  auto reject = [](const std::string& why) {
    throw std::runtime_error("GridIndex::from_parts: " + why);
  };
  const std::size_t n = d.size();
  if (parts.dim <= 0 || parts.dim > kMaxDims || parts.dim != d.dim()) {
    reject("dim " + std::to_string(parts.dim) +
           " is invalid or does not match the dataset's " +
           std::to_string(d.dim()));
  }
  if (parts.A.size() != n) {
    reject("index covers " + std::to_string(parts.A.size()) +
           " points but the dataset has " + std::to_string(n));
  }
  if (!(parts.eps >= 0.0) || !(parts.width > 0.0) ||
      !std::isfinite(parts.width) || parts.width < parts.eps) {
    reject("eps/cell-width fields are non-finite or inconsistent");
  }
  if (parts.G.size() != parts.B.size()) {
    reject("G and B disagree on the non-empty cell count");
  }
  if (n > 0 && parts.stride[0] != 1) reject("stride[0] must be 1");
  for (int j = 0; j < parts.dim; ++j) {
    if (n > 0 && parts.cells_per_dim[j] == 0) {
      reject("cells_per_dim has a zero entry for a non-empty dataset");
    }
  }
  for (int j = 1; j < parts.dim; ++j) {
    if (parts.stride[j] !=
        parts.stride[j - 1] * parts.cells_per_dim[j - 1]) {
      reject("stride table is not the row-major product of cells_per_dim");
    }
  }
  // B strictly increasing; G's ranges partition [0, n) in order.
  std::uint32_t next_slot = 0;
  for (std::size_t c = 0; c < parts.B.size(); ++c) {
    if (c > 0 && parts.B[c] <= parts.B[c - 1]) {
      reject("B is not strictly increasing");
    }
    if (parts.G[c].min != next_slot || parts.G[c].max < parts.G[c].min) {
      reject("G ranges do not partition the slot space");
    }
    next_slot = parts.G[c].max + 1;
  }
  if (parts.B.empty() ? n != 0 : next_slot != n) {
    reject("G ranges do not cover every point");
  }
  // A is a permutation of [0, n).
  std::vector<bool> seen(n, false);
  for (const std::uint32_t pid : parts.A) {
    if (pid >= n || seen[pid]) reject("A is not a permutation of the ids");
    seen[pid] = true;
  }

  GridIndex g;
  g.dim_ = parts.dim;
  g.eps_ = parts.eps;
  g.width_ = parts.width;
  for (int j = 0; j < kMaxDims; ++j) {
    g.gmin_[j] = parts.gmin[j];
    g.gmax_[j] = parts.gmax[j];
    g.cells_per_dim_[j] = parts.cells_per_dim[j];
    g.stride_[j] = parts.stride[j];
  }
  g.B_ = std::move(parts.B);
  g.G_ = std::move(parts.G);
  g.A_ = std::move(parts.A);
  for (int j = 0; j < kMaxDims; ++j) g.M_[j] = std::move(parts.M[j]);

  // Binding between the spatial hash and the slot ranges: every slot's
  // point re-hashes to the cell that owns the slot. Also recompute the
  // masks from B — cheaper to verify by reconstruction than by rule.
  std::uint32_t coords[kMaxDims];
  for (std::size_t c = 0; c < g.B_.size(); ++c) {
    for (std::uint32_t k = g.G_[c].min; k <= g.G_[c].max; ++k) {
      g.cell_coords(d.pt(g.A_[k]), coords);
      if (g.linearize(coords) != g.B_[c]) {
        reject("a point does not re-hash to the cell that owns its slot");
      }
    }
  }
  for (int j = 0; j < g.dim_; ++j) {
    std::vector<std::uint32_t> m;
    m.reserve(g.B_.size());
    for (const std::uint64_t cell : g.B_) {
      m.push_back(static_cast<std::uint32_t>((cell / g.stride_[j]) %
                                             g.cells_per_dim_[j]));
    }
    std::sort(m.begin(), m.end());
    m.erase(std::unique(m.begin(), m.end()), m.end());
    if (m != g.M_[j]) reject("mask arrays do not match B");
  }

  if (contracts::active()) {
    validate::grid_index(g, d, "GridIndex::from_parts(snapshot restore)");
  }
  return g;
}

std::uint64_t GridIndex::total_cells() const {
  unsigned __int128 total = 1;
  for (int j = 0; j < dim_; ++j) {
    total *= cells_per_dim_[j];
    if (total > std::numeric_limits<std::uint64_t>::max()) {
      return std::numeric_limits<std::uint64_t>::max();
    }
  }
  return static_cast<std::uint64_t>(total);
}

void GridIndex::cell_coords(const double* pt, std::uint32_t* out) const {
  for (int j = 0; j < dim_; ++j) {
    const double rel = (pt[j] - gmin_[j]) / width_;
    std::int64_t c = static_cast<std::int64_t>(std::floor(rel));
    c = std::max<std::int64_t>(c, 0);
    c = std::min<std::int64_t>(c, static_cast<std::int64_t>(cells_per_dim_[j]) - 1);
    out[j] = static_cast<std::uint32_t>(c);
  }
}

std::uint64_t GridIndex::linearize(const std::uint32_t* coords) const {
  return linearize_cell(coords, stride_, dim_);
}

std::int64_t GridIndex::find_cell(std::uint64_t linear_id) const {
  const auto it = std::lower_bound(B_.begin(), B_.end(), linear_id);
  if (it == B_.end() || *it != linear_id) return -1;
  return it - B_.begin();
}

void GridIndex::range_query(const Dataset& d, const double* center,
                            double eps,
                            std::vector<std::uint32_t>& out) const {
  if (eps > width_) {
    throw std::invalid_argument(
        "GridIndex::range_query: eps exceeds the cell width this index "
        "was built for");
  }
  if (A_.empty()) return;
  std::uint32_t c[kMaxDims];
  cell_coords(center, c);
  std::uint32_t adj[kMaxDims][3];
  int adjn[kMaxDims];
  for (int j = 0; j < dim_; ++j) {
    adjn[j] = filtered_adjacent(j, c[j], adj[j]);
    if (adjn[j] == 0) return;
  }
  const double eps2 = eps * eps;
  int idx[kMaxDims] = {};
  std::uint32_t cc[kMaxDims];
  for (;;) {
    for (int j = 0; j < dim_; ++j) cc[j] = adj[j][idx[j]];
    const std::int64_t cell = find_cell(linearize(cc));
    if (cell >= 0) {
      const CellRange range = G_[static_cast<std::size_t>(cell)];
      for (std::uint32_t k = range.min; k <= range.max; ++k) {
        const std::uint32_t q = A_[k];
        if (sq_dist(center, d.pt(q), dim_) <= eps2) out.push_back(q);
      }
    }
    int j = 0;
    while (j < dim_) {
      if (++idx[j] < adjn[j]) break;
      idx[j] = 0;
      ++j;
    }
    if (j == dim_) break;
  }
}

int GridIndex::filtered_adjacent(int j, std::uint32_t cj,
                                 std::uint32_t out[3]) const {
  const std::vector<std::uint32_t>& m = M_[j];
  int count = 0;
  const std::int64_t lo = static_cast<std::int64_t>(cj) - 1;
  const std::int64_t hi = static_cast<std::int64_t>(cj) + 1;
  // The candidates are at most {cj-1, cj, cj+1}; one lower_bound finds the
  // first in range, then we scan forward (m is sorted and unique).
  auto it = std::lower_bound(m.begin(), m.end(),
                             static_cast<std::uint32_t>(std::max<std::int64_t>(lo, 0)));
  for (; it != m.end() && static_cast<std::int64_t>(*it) <= hi; ++it) {
    out[count++] = *it;
  }
  return count;
}

}  // namespace sj
