#include "core/shard_plan.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/contracts.hpp"
#include "common/io.hpp"
#include "core/batcher.hpp"

namespace sj {

std::uint32_t ShardSlice::to_local(std::uint32_t global_slot) const {
  if (global_slot >= owned_begin && global_slot < owned_end) {
    return global_slot - owned_begin;
  }
  // Last interval with begin <= global_slot.
  const auto it = std::upper_bound(
      halo.begin(), halo.end(), global_slot,
      [](std::uint32_t slot, const HaloInterval& h) { return slot < h.begin; });
  if (it == halo.begin() || global_slot >= (it - 1)->end) {
    throw std::out_of_range("ShardSlice::to_local: slot " +
                            std::to_string(global_slot) +
                            " is neither owned nor halo");
  }
  return (it - 1)->local_begin + (global_slot - (it - 1)->begin);
}

std::vector<std::uint64_t> proxy_cell_weights(const GridDeviceView& grid) {
  const std::size_t num_cells = static_cast<std::size_t>(grid.b_size);
  std::vector<std::uint64_t> weights(num_cells, 0);
  auto pop = [&](std::size_t cell) -> std::uint64_t {
    return static_cast<std::uint64_t>(grid.G[cell].max) - grid.G[cell].min +
           1;
  };
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    std::uint64_t window = pop(cell);
    if (cell > 0) window += pop(cell - 1);
    if (cell + 1 < num_cells) window += pop(cell + 1);
    const unsigned __int128 w =
        static_cast<unsigned __int128>(pop(cell)) * window;
    weights[cell] = static_cast<std::uint64_t>(std::min<unsigned __int128>(
        w, std::numeric_limits<std::uint64_t>::max()));
  }
  return weights;
}

std::vector<std::uint32_t> plan_shard_boundaries(
    const std::vector<std::uint64_t>& weights, std::size_t shards) {
  const std::size_t k =
      std::clamp<std::size_t>(shards, 1, std::max<std::size_t>(weights.size(), 1));
  if (weights.empty()) return {0, 0};
  const std::vector<std::uint32_t> raw = weighted_partition(weights, k);
  SJ_ENSURE(raw.size() == k + 1 && raw.front() == 0 &&
                raw.back() == weights.size(),
            "shard boundaries must cover all units with K parts");
  // Coalesce zero-weight parts: weighted_partition's one-unit-per-part
  // floor can close weightless shards when a giant unit absorbs the total
  // (e.g. weights {100, 0, 0, 0} into 4 parts). A zero-weight part merges
  // into its predecessor; leading zeros ride forward into the first part
  // that carries weight. An all-zero total keeps the single full-range
  // part.
  std::vector<std::uint32_t> bounds;
  bounds.reserve(raw.size());
  bounds.push_back(0);
  unsigned __int128 part_weight = 0;
  for (std::size_t p = 0; p + 1 < raw.size(); ++p) {
    for (std::uint32_t u = raw[p]; u < raw[p + 1]; ++u) part_weight += weights[u];
    if (part_weight > 0) {
      bounds.push_back(raw[p + 1]);
      part_weight = 0;
    }
  }
  if (bounds.back() != weights.size()) {
    // Trailing zero-weight units fold into the last weighted part (or
    // form the single part of an all-zero plan).
    if (bounds.size() > 1) {
      bounds.back() = static_cast<std::uint32_t>(weights.size());
    } else {
      bounds.push_back(static_cast<std::uint32_t>(weights.size()));
    }
  }
  SJ_ENSURE(bounds.size() >= 2 && bounds.front() == 0 &&
                bounds.back() == weights.size(),
            "coalesced shard boundaries must still cover every unit");
  return bounds;
}

ChunkletPlan plan_chunklets(const std::vector<std::uint64_t>& unit_weights,
                            std::size_t devices, std::size_t chunklets) {
  ChunkletPlan plan;
  const std::size_t units = unit_weights.size();
  if (units == 0) {
    // Degenerate empty plan: no chunklets, no devices (mirrors
    // plan_shard_boundaries' {0, 0} convention for the unit bounds).
    plan.bounds = {0, 0};
    return plan;
  }
  const std::size_t k = std::clamp<std::size_t>(devices, 1, units);
  std::size_t m = chunklets == 0 ? kChunkletsPerDevice * k : chunklets;
  m = std::clamp(m, k, units);
  plan.bounds = plan_shard_boundaries(unit_weights, m);

  const std::size_t m_eff = plan.bounds.size() - 1;
  plan.weights.resize(m_eff);
  for (std::size_t c = 0; c < m_eff; ++c) {
    std::uint64_t w = 0;
    for (std::uint32_t u = plan.bounds[c]; u < plan.bounds[c + 1]; ++u) {
      w += unit_weights[u];
    }
    plan.weights[c] = w;
  }
  // Seed the devices with contiguous chunklet groups by the same balance
  // rule — the static PR-5 plan, which stealing then corrects.
  plan.device_bounds =
      plan_shard_boundaries(plan.weights, std::min(k, m_eff));
  return plan;
}

namespace {
constexpr char kPlanCacheMagic[] = "sjplancache";
constexpr int kPlanCacheVersion = 1;
}  // namespace

std::vector<std::uint64_t> load_plan_cache(const std::string& path,
                                           const PlanCacheKey& key) {
  std::ifstream in(path);
  if (!in) return {};
  std::string magic;
  int version = 0;
  std::uint64_t n = 0;
  int dim = 0;
  double eps = 0.0;
  std::uint64_t num_cells = 0;
  in >> magic >> version >> n >> dim >> eps >> num_cells;
  if (!in || magic != kPlanCacheMagic || version != kPlanCacheVersion ||
      n != key.n || dim != key.dim || eps != key.eps ||
      num_cells != key.num_cells) {
    return {};
  }
  std::vector<std::uint64_t> weights(num_cells, 0);
  for (std::uint64_t c = 0; c < num_cells; ++c) in >> weights[c];
  if (!in) return {};
  return weights;
}

void save_plan_cache(const std::string& path, const PlanCacheKey& key,
                     const std::vector<std::uint64_t>& weights) {
  SJ_EXPECT(weights.size() == key.num_cells,
            "plan cache must carry one weight per non-empty cell");
  std::ostringstream body;
  body.precision(17);
  body << kPlanCacheMagic << ' ' << kPlanCacheVersion << ' ' << key.n << ' '
       << key.dim << ' ' << key.eps << ' ' << key.num_cells << '\n';
  for (std::size_t c = 0; c < weights.size(); ++c) {
    body << weights[c] << (c + 1 == weights.size() ? '\n' : ' ');
  }
  // Atomic publish (temp + fsync + rename): load_plan_cache trusts an
  // exact-match key, so an interrupted plain write could leave a torn
  // file whose intact header vouches for garbage weights.
  try {
    io::atomic_write_file(path, body.str());
  } catch (const std::runtime_error& e) {
    throw std::runtime_error("plan_cache: cannot write '" + path +
                             "': " + e.what());
  }
}

ShardSlice make_shard_slice(const std::vector<CandidateRange>& ranges,
                            const std::vector<std::uint64_t>& offsets,
                            const std::vector<std::uint64_t>& weights,
                            std::uint32_t unit_begin, std::uint32_t unit_end,
                            std::uint32_t owned_begin,
                            std::uint32_t owned_end) {
  SJ_EXPECT(unit_begin <= unit_end &&
                static_cast<std::size_t>(unit_end) < offsets.size(),
            "make_shard_slice unit range must fit the adjacency CSR");
  SJ_EXPECT(owned_begin <= owned_end,
            "make_shard_slice owned span must be a valid interval");
  ShardSlice s;
  s.unit_begin = unit_begin;
  s.unit_end = unit_end;
  s.owned_begin = owned_begin;
  s.owned_end = owned_end;

  const std::size_t r0 = static_cast<std::size_t>(offsets[unit_begin]);
  const std::size_t r1 = static_cast<std::size_t>(offsets[unit_end]);

  // --- Pass 1: every piece of a candidate range outside the owned span
  // is halo; merge the pieces into maximal disjoint intervals. Adjacent
  // cells occupy adjacent slots in the cell-major layout, so the 3^n
  // neighbourhoods of a contiguous cell range collapse into few intervals.
  std::vector<HaloInterval> pieces;
  for (std::size_t r = r0; r < r1; ++r) {
    const std::uint32_t b = ranges[r].begin;
    const std::uint32_t e = ranges[r].end;
    if (b < owned_begin) {
      pieces.push_back({b, std::min(e, owned_begin), 0});
    }
    if (e > owned_end) {
      pieces.push_back({std::max(b, owned_end), e, 0});
    }
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const HaloInterval& a, const HaloInterval& b) {
              return a.begin != b.begin ? a.begin < b.begin : a.end < b.end;
            });
  std::uint32_t local = owned_end - owned_begin;  // halo follows owned slots
  for (const HaloInterval& p : pieces) {
    if (!s.halo.empty() && p.begin <= s.halo.back().end) {
      if (p.end > s.halo.back().end) {
        local += p.end - s.halo.back().end;
        s.halo.back().end = p.end;
      }
    } else {
      s.halo.push_back({p.begin, p.end, local});
      local += p.end - p.begin;
    }
  }

  // --- Pass 2: remap every candidate range into local slots. A range
  // straddling the owned boundary splits into up to three local ranges
  // (each outside piece lies wholly inside one merged halo interval, by
  // construction). The split preserves scan order and the UNICOMP
  // both-orders flag.
  s.offsets.reserve(static_cast<std::size_t>(unit_end - unit_begin) + 1);
  s.offsets.push_back(0);
  for (std::uint32_t unit = unit_begin; unit < unit_end; ++unit) {
    for (std::size_t r = static_cast<std::size_t>(offsets[unit]);
         r < static_cast<std::size_t>(offsets[unit + 1]); ++r) {
      const CandidateRange cr = ranges[r];
      auto emit = [&](std::uint32_t b, std::uint32_t e) {
        if (b >= e) return;
        const std::uint32_t lb = s.to_local(b);
        s.ranges.push_back({lb, lb + (e - b), cr.both});
      };
      emit(cr.begin, std::min(cr.end, owned_begin));
      emit(std::max(cr.begin, owned_begin), std::min(cr.end, owned_end));
      emit(std::max(cr.begin, owned_end), cr.end);
    }
    s.offsets.push_back(s.ranges.size());
    s.weight += weights[unit];
  }
  SJ_ENSURE(s.offsets.size() ==
                static_cast<std::size_t>(unit_end - unit_begin) + 1 &&
            s.offsets.back() == s.ranges.size(),
            "shard slice CSR must close over its remapped ranges");
  return s;
}

}  // namespace sj
