// Registration hook for the GPU-SJ adapters ("gpu", "gpu_unicomp", the
// async-pipelined "gpu_async") and the GPU brute-force lower bound
// ("gpu_bf"). Called once by
// BackendRegistry::instance(); external code never needs this directly.
#pragma once

namespace sj::api {
class BackendRegistry;
}

namespace sj::backends {

void register_gpu(api::BackendRegistry& registry);

}  // namespace sj::backends
