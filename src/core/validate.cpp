#include "core/validate.hpp"

#include <algorithm>

#include "common/contracts.hpp"

namespace sj::validate {

namespace {

/// `map[0..n)` holds each of 0..n-1 exactly once.
bool is_permutation_of_iota(const std::uint32_t* map, std::uint64_t n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (std::uint64_t k = 0; k < n; ++k) {
    const std::uint32_t v = map[k];
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

/// G ranges tile [0, n) in order: G[0].min == 0, each range follows the
/// previous one with no gap or overlap, and the last ends at n - 1.
void check_cell_ranges_partition(const GridIndex::CellRange* G,
                                 std::uint64_t num_cells, std::uint64_t n,
                                 const char* ctx) {
  if (n == 0) {
    SJ_CHECK(num_cells == 0, ctx);
    return;
  }
  SJ_CHECK(num_cells > 0, ctx);
  std::uint64_t next = 0;
  for (std::uint64_t i = 0; i < num_cells; ++i) {
    SJ_CHECK(G[i].min == next, ctx);
    SJ_CHECK(G[i].max >= G[i].min, ctx);
    next = static_cast<std::uint64_t>(G[i].max) + 1;
  }
  SJ_CHECK(next == n, ctx);
}

void check_strictly_increasing_u64(const std::uint64_t* v, std::uint64_t n,
                                   const char* ctx) {
  for (std::uint64_t i = 1; i < n; ++i) SJ_CHECK(v[i - 1] < v[i], ctx);
}

/// Shared CSR + range-shape checks for both adjacency forms. Ranges are
/// validated against [0, n_slots) and each unit's ranges must be pairwise
/// non-overlapping (they describe disjoint candidate cells, possibly
/// merged when contiguous).
void check_adjacency_csr(const std::vector<CandidateRange>& ranges,
                         const std::vector<std::uint64_t>& offsets,
                         const std::vector<std::uint64_t>& weights,
                         std::size_t num_units, std::uint64_t n_slots,
                         const char* ctx) {
  SJ_CHECK(offsets.size() == num_units + 1, ctx);
  SJ_CHECK(offsets.front() == 0, ctx);
  SJ_CHECK(offsets.back() == ranges.size(), ctx);
  SJ_CHECK(weights.size() == num_units, ctx);
  std::vector<CandidateRange> sorted;
  for (std::size_t u = 0; u < num_units; ++u) {
    SJ_CHECK(offsets[u] <= offsets[u + 1], ctx);
    sorted.assign(ranges.begin() + static_cast<std::ptrdiff_t>(offsets[u]),
                  ranges.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]));
    for (const CandidateRange& r : sorted) {
      SJ_CHECK(r.begin < r.end, ctx);
      SJ_CHECK(r.end <= n_slots, ctx);
      SJ_CHECK(r.both == 0 || r.both == 1, ctx);
    }
    // The enumeration visits cells in odometer order, not slot order;
    // sort a copy to test pairwise disjointness.
    std::sort(sorted.begin(), sorted.end(),
              [](const CandidateRange& a, const CandidateRange& b) {
                return a.begin < b.begin;
              });
    for (std::size_t r = 1; r < sorted.size(); ++r) {
      SJ_CHECK(sorted[r - 1].end <= sorted[r].begin, ctx);
    }
  }
}

void check_masks(const std::uint32_t* const* masks, const std::uint64_t* sizes,
                 const std::uint32_t* cells_per_dim, int dim,
                 const char* ctx) {
  for (int j = 0; j < dim; ++j) {
    for (std::uint64_t i = 0; i < sizes[j]; ++i) {
      SJ_CHECK(masks[j][i] < cells_per_dim[j], ctx);
      if (i > 0) SJ_CHECK(masks[j][i - 1] < masks[j][i], ctx);
    }
  }
}

}  // namespace

void grid_index(const GridIndex& index, const Dataset& d, const char* ctx) {
  contracts::ScopedTimer timer;
  const std::uint64_t n = d.size();
  SJ_CHECK(index.num_points() == n, ctx);
  SJ_CHECK(index.dim() == d.dim(), ctx);

  const std::vector<std::uint64_t>& B = index.B();
  const std::vector<GridIndex::CellRange>& G = index.G();
  const std::vector<std::uint32_t>& A = index.A();
  SJ_CHECK(G.size() == B.size(), ctx);
  check_strictly_increasing_u64(B.data(), B.size(), ctx);
  check_cell_ranges_partition(G.data(), G.size(), n, ctx);
  SJ_CHECK(is_permutation_of_iota(A.data(), n), ctx);

  const std::uint32_t* masks[kMaxDims] = {};
  std::uint64_t mask_sizes[kMaxDims] = {};
  std::uint32_t cells[kMaxDims] = {};
  for (int j = 0; j < index.dim(); ++j) {
    masks[j] = index.mask(j).data();
    mask_sizes[j] = index.mask(j).size();
    cells[j] = index.cells_in_dim(j);
  }
  check_masks(masks, mask_sizes, cells, index.dim(), ctx);

  // Every slot's point must fall in the cell that owns the slot: the
  // binding between the spatial hash and the A ranges.
  std::uint32_t coords[kMaxDims];
  for (std::size_t cell = 0; cell < B.size(); ++cell) {
    for (std::uint32_t k = G[cell].min; k <= G[cell].max; ++k) {
      index.cell_coords(d.pt(A[k]), coords);
      SJ_CHECK(index.linearize(coords) == B[cell], ctx);
    }
  }
}

void device_grid(const GridDeviceView& v, const Dataset* d, const char* ctx) {
  contracts::ScopedTimer timer;
  SJ_CHECK((v.dim >= 1 || v.n == 0) && v.dim <= kMaxDims, ctx);
  check_strictly_increasing_u64(v.B, v.b_size, ctx);
  check_cell_ranges_partition(v.G, v.b_size, v.n, ctx);
  check_masks(v.M, v.m_size, v.cells_per_dim, v.dim, ctx);

  if (v.cell_major) {
    SJ_CHECK(v.A == nullptr, ctx);
    SJ_CHECK(v.orig != nullptr || v.n == 0, ctx);
    if (v.n > 0) SJ_CHECK(is_permutation_of_iota(v.orig, v.n), ctx);
    if (v.coord[0] != nullptr) {
      // SoA planes are the exact twin of the reordered AoS coordinates.
      for (int j = 0; j < v.dim; ++j) {
        SJ_CHECK(v.coord[j] != nullptr, ctx);
        for (std::uint64_t k = 0; k < v.n; ++k) {
          SJ_CHECK(v.coord[j][k] ==
                       v.points[static_cast<std::size_t>(k) * v.dim + j],
                   ctx);
        }
      }
    }
  } else if (v.n > 0) {
    SJ_CHECK(v.A != nullptr, ctx);
    SJ_CHECK(is_permutation_of_iota(v.A, v.n), ctx);
  }

  if (d != nullptr) {
    SJ_CHECK(v.n == d->size(), ctx);
    SJ_CHECK(v.dim == d->dim(), ctx);
    // Slot k of the device copy holds the source point it claims to:
    // orig[k] in cell-major (points were reordered), k itself in legacy.
    for (std::uint64_t k = 0; k < v.n; ++k) {
      const std::size_t src = v.cell_major ? v.orig[k] : k;
      const double* got = v.points + static_cast<std::size_t>(k) * v.dim;
      const double* want = d->pt(src);
      for (int j = 0; j < v.dim; ++j) SJ_CHECK(got[j] == want[j], ctx);
    }
  }
}

void cell_adjacency(const CellAdjacencyHost& adj, std::size_t num_cells,
                    std::uint64_t n_slots, const char* ctx) {
  contracts::ScopedTimer timer;
  check_adjacency_csr(adj.ranges, adj.offsets, adj.weights, num_cells,
                      n_slots, ctx);
}

void join_adjacency(const JoinAdjacencyHost& adj, std::uint64_t qn,
                    std::uint64_t n_slots, const char* ctx) {
  contracts::ScopedTimer timer;
  SJ_CHECK(adj.query_order.size() == qn, ctx);
  SJ_CHECK(is_permutation_of_iota(adj.query_order.data(), qn), ctx);

  const std::size_t groups = adj.num_groups();
  SJ_CHECK(qn == 0 ? groups == 0 : !adj.group_offsets.empty(), ctx);
  if (qn > 0) {
    SJ_CHECK(adj.group_offsets.front() == 0, ctx);
    SJ_CHECK(adj.group_offsets.back() == qn, ctx);
    // Strictly increasing: groups are keyed by distinct home cells and
    // every group holds at least one query.
    for (std::size_t g = 1; g < adj.group_offsets.size(); ++g) {
      SJ_CHECK(adj.group_offsets[g - 1] < adj.group_offsets[g], ctx);
    }
  }
  check_adjacency_csr(adj.ranges, adj.offsets, adj.weights, groups, n_slots,
                      ctx);
}

void shard_boundaries(const std::vector<std::uint32_t>& boundaries,
                      std::size_t num_units, const char* ctx) {
  contracts::ScopedTimer timer;
  SJ_CHECK(boundaries.size() >= 2, ctx);
  SJ_CHECK(boundaries.front() == 0, ctx);
  SJ_CHECK(boundaries.back() == num_units, ctx);
  for (std::size_t i = 1; i < boundaries.size(); ++i) {
    // Strict: every shard owns at least one unit (disjoint cover with no
    // idle boundary), except the degenerate {0, 0} empty plan.
    if (num_units > 0) SJ_CHECK(boundaries[i - 1] < boundaries[i], ctx);
  }
}

void shard_boundaries(const std::vector<std::uint32_t>& boundaries,
                      const std::vector<std::uint64_t>& unit_weights,
                      const char* ctx) {
  shard_boundaries(boundaries, unit_weights.size(), ctx);
  contracts::ScopedTimer timer;
  unsigned __int128 total = 0;
  for (const std::uint64_t w : unit_weights) total += w;
  if (total == 0) return;  // an all-zero profile keeps its single part
  for (std::size_t p = 0; p + 1 < boundaries.size(); ++p) {
    unsigned __int128 part = 0;
    for (std::uint32_t u = boundaries[p]; u < boundaries[p + 1]; ++u) {
      part += unit_weights[u];
    }
    // The planner coalesces weightless parts, so none may survive.
    SJ_CHECK(part > 0, ctx);
  }
}

void chunklet_plan(const ChunkletPlan& plan,
                   const std::vector<std::uint64_t>& unit_weights,
                   std::size_t devices, const char* ctx) {
  shard_boundaries(plan.bounds, unit_weights, ctx);
  contracts::ScopedTimer timer;
  SJ_CHECK(plan.weights.size() == plan.bounds.size() - 1, ctx);
  for (std::size_t c = 0; c < plan.weights.size(); ++c) {
    std::uint64_t w = 0;
    for (std::uint32_t u = plan.bounds[c]; u < plan.bounds[c + 1]; ++u) {
      w += unit_weights[u];
    }
    SJ_CHECK(plan.weights[c] == w, ctx);
  }
  shard_boundaries(plan.device_bounds, plan.weights, ctx);
  SJ_CHECK(plan.devices() <= std::max<std::size_t>(devices, 1), ctx);
}

void shard_slice(const ShardSlice& s, std::uint64_t n_slots, const char* ctx) {
  contracts::ScopedTimer timer;
  SJ_CHECK(s.unit_begin <= s.unit_end, ctx);
  SJ_CHECK(s.owned_begin <= s.owned_end, ctx);
  SJ_CHECK(s.owned_end <= n_slots, ctx);

  std::uint32_t next_local = s.owned_points();
  for (std::size_t h = 0; h < s.halo.size(); ++h) {
    const HaloInterval& hi = s.halo[h];
    SJ_CHECK(hi.begin < hi.end, ctx);
    SJ_CHECK(hi.end <= n_slots, ctx);
    // Entirely outside the owned span.
    SJ_CHECK(hi.end <= s.owned_begin || hi.begin >= s.owned_end, ctx);
    // Sorted and disjoint (merged intervals never touch).
    if (h > 0) SJ_CHECK(s.halo[h - 1].end < hi.begin, ctx);
    // Local numbering is the contiguous chain after the owned span.
    SJ_CHECK(hi.local_begin == next_local, ctx);
    next_local += hi.end - hi.begin;
    // Remap round-trip over the interval endpoints.
    SJ_CHECK(s.to_local(hi.begin) == hi.local_begin, ctx);
    SJ_CHECK(s.to_local(hi.end - 1) == hi.local_begin + (hi.end - hi.begin) - 1,
             ctx);
  }
  SJ_CHECK(next_local == s.local_points(), ctx);
  if (s.owned_end > s.owned_begin) {
    SJ_CHECK(s.to_local(s.owned_begin) == 0, ctx);
    SJ_CHECK(s.to_local(s.owned_end - 1) == s.owned_points() - 1, ctx);
  }

  const std::size_t units = s.unit_end - s.unit_begin;
  SJ_CHECK(s.offsets.size() == units + 1, ctx);
  SJ_CHECK(s.offsets.front() == 0, ctx);
  SJ_CHECK(s.offsets.back() == s.ranges.size(), ctx);
  for (std::size_t u = 1; u < s.offsets.size(); ++u) {
    SJ_CHECK(s.offsets[u - 1] <= s.offsets[u], ctx);
  }
  for (const CandidateRange& r : s.ranges) {
    SJ_CHECK(r.begin < r.end, ctx);
    SJ_CHECK(r.end <= s.local_points(), ctx);
    SJ_CHECK(r.both == 0 || r.both == 1, ctx);
  }
}

}  // namespace sj::validate
