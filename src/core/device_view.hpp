// Device-resident copy of the dataset and grid index, plus the plain-
// pointer view the kernels consume (the analogue of the D, A, G, B, M
// kernel arguments of Algorithm 1).
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "core/grid_index.hpp"
#include "gpusim/arena.hpp"

namespace sj {

/// Raw-pointer view passed to kernels.
struct GridDeviceView {
  const double* points = nullptr;  // row-major coordinates (indexed set)
  std::uint64_t n = 0;
  int dim = 0;

  /// Query set for the general epsilon join. For the self-join this stays
  /// null and queries read from `points`; for an A-join-B the grid indexes
  /// B and `qpoints`/`qn` describe A.
  const double* qpoints = nullptr;
  std::uint64_t qn = 0;

  const double* query_point(std::uint64_t pid) const {
    const double* base = qpoints != nullptr ? qpoints : points;
    return base + static_cast<std::size_t>(pid) * dim;
  }
  std::uint64_t num_queries() const { return qpoints != nullptr ? qn : n; }

  const std::uint64_t* B = nullptr;
  std::uint64_t b_size = 0;
  const GridIndex::CellRange* G = nullptr;
  const std::uint32_t* A = nullptr;
  const std::uint32_t* M[kMaxDims] = {};
  std::uint64_t m_size[kMaxDims] = {};

  double gmin[kMaxDims] = {};
  double width = 0.0;
  double eps = 0.0;
  std::uint32_t cells_per_dim[kMaxDims] = {};
  std::uint64_t stride[kMaxDims] = {};

  std::uint64_t linearize(const std::uint32_t* coords) const {
    std::uint64_t id = 0;
    for (int j = 0; j < dim; ++j) {
      id += static_cast<std::uint64_t>(coords[j]) * stride[j];
    }
    return id;
  }
};

/// Owns the device buffers (charged against the arena, like cudaMalloc +
/// cudaMemcpy of the host-built index) and exposes the kernel view.
class DeviceGrid {
 public:
  DeviceGrid(gpu::GlobalMemoryArena& arena, const Dataset& d,
             const GridIndex& index);

  const GridDeviceView& view() const { return view_; }

 private:
  gpu::DeviceBuffer<double> points_;
  gpu::DeviceBuffer<std::uint64_t> b_;
  gpu::DeviceBuffer<GridIndex::CellRange> g_;
  gpu::DeviceBuffer<std::uint32_t> a_;
  gpu::DeviceBuffer<std::uint32_t> m_[kMaxDims];
  GridDeviceView view_;
};

}  // namespace sj
