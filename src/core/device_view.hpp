// Device-resident copy of the dataset and grid index, plus the plain-
// pointer view the kernels consume (the analogue of the D, A, G, B, M
// kernel arguments of Algorithm 1).
//
// Two data layouts are supported:
//
//   kLegacy    — the paper's layout: `points` holds the dataset in its
//                original order and every candidate coordinate is
//                gathered through the A[] indirection (a random access
//                per distance calculation).
//   kCellMajor — the dataset is reordered at upload time so that each
//                non-empty cell's points are CONTIGUOUS in `points`
//                (A-order). A[] becomes the identity and is not stored;
//                `orig` maps a point slot back to its original dataset
//                id so emitted pairs still carry original ids. Candidate
//                scans become contiguous range reads, which is what the
//                cell-centric kernel exploits.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/dataset.hpp"
#include "core/grid_index.hpp"
#include "gpusim/arena.hpp"

namespace sj {

/// How DeviceGrid lays the dataset out in device memory.
enum class GridLayout {
  kLegacy,    ///< original point order, candidates gathered through A[]
  kCellMajor  ///< points reordered cell-by-cell, A[] is the identity
};

/// Raw-pointer view passed to kernels.
struct GridDeviceView {
  const double* points = nullptr;  // row-major coordinates (indexed set)
  std::uint64_t n = 0;
  int dim = 0;

  /// Query set for the general epsilon join. For the self-join this stays
  /// null and queries read from `points`; for an A-join-B the grid indexes
  /// B and `qpoints`/`qn` describe A.
  const double* qpoints = nullptr;
  std::uint64_t qn = 0;

  const double* query_point(std::uint64_t pid) const {
    const double* base = qpoints != nullptr ? qpoints : points;
    return base + static_cast<std::size_t>(pid) * dim;
  }
  std::uint64_t num_queries() const { return qpoints != nullptr ? qn : n; }

  const std::uint64_t* B = nullptr;
  std::uint64_t b_size = 0;
  const GridIndex::CellRange* G = nullptr;

  /// Cell-major layout only: per-dimension coordinate planes, coord[j][k]
  /// = j-th coordinate of the point in slot k (structure-of-arrays twin of
  /// `points`). Contiguous per dimension so the blocked candidate scan
  /// reads unit-stride streams the compiler can vectorise. Null in the
  /// legacy layout.
  const double* coord[kMaxDims] = {};

  /// Legacy layout: slot -> point id (the paper's A). Null in cell-major
  /// layout, where the mapping is the identity.
  const std::uint32_t* A = nullptr;
  /// Cell-major layout: slot -> ORIGINAL dataset id (the reorder map).
  /// Null in the legacy layout, where slots already hold original ids
  /// through A.
  const std::uint32_t* orig = nullptr;
  bool cell_major = false;

  const std::uint32_t* M[kMaxDims] = {};
  std::uint64_t m_size[kMaxDims] = {};

  double gmin[kMaxDims] = {};
  double width = 0.0;
  double eps = 0.0;
  std::uint32_t cells_per_dim[kMaxDims] = {};
  std::uint64_t stride[kMaxDims] = {};

  /// Coordinates of the candidate at slot k of the A-range (legacy
  /// gathers through A, cell-major reads contiguously).
  const double* candidate_point(std::uint64_t k) const {
    const std::size_t idx =
        A != nullptr ? A[k] : static_cast<std::size_t>(k);
    return points + idx * dim;
  }

  /// Original dataset id of the candidate at slot k.
  std::uint32_t candidate_id(std::uint64_t k) const {
    return A != nullptr ? A[k] : orig[k];
  }

  /// Original dataset id of query `pid` (a point id in the legacy layout,
  /// a point slot in cell-major). External query sets always pass
  /// through: `orig` maps the INDEXED set's slots and must not be applied
  /// to a query id from a different set.
  std::uint32_t query_id(std::uint64_t pid) const {
    if (qpoints != nullptr) return static_cast<std::uint32_t>(pid);
    return orig != nullptr ? orig[pid] : static_cast<std::uint32_t>(pid);
  }

  /// Grid coordinates of the cell containing `pt`, clamped into the grid
  /// (external query points may lie outside the indexed set's bounds; the
  /// clamped cell's neighbourhood still covers every in-range candidate
  /// because the cell width is >= eps).
  void home_cell(const double* pt, std::uint32_t* c) const {
    for (int j = 0; j < dim; ++j) {
      const double rel = (pt[j] - gmin[j]) / width;
      std::int64_t cj = static_cast<std::int64_t>(rel);  // rel >= 0 in-grid
      cj = std::min<std::int64_t>(
          std::max<std::int64_t>(cj, 0),
          static_cast<std::int64_t>(cells_per_dim[j]) - 1);
      c[j] = static_cast<std::uint32_t>(cj);
    }
  }

  std::uint64_t linearize(const std::uint32_t* coords) const {
    return linearize_cell(coords, stride, dim);
  }
};

/// Owns the device buffers (charged against the arena, like cudaMalloc +
/// cudaMemcpy of the host-built index) and exposes the kernel view.
class DeviceGrid {
 public:
  DeviceGrid(gpu::GlobalMemoryArena& arena, const Dataset& d,
             const GridIndex& index, GridLayout layout = GridLayout::kLegacy);

  const GridDeviceView& view() const { return view_; }

 private:
  gpu::DeviceBuffer<double> points_;
  gpu::DeviceBuffer<double> coords_;  // cell-major only: dim planes of n
  gpu::DeviceBuffer<std::uint64_t> b_;
  gpu::DeviceBuffer<GridIndex::CellRange> g_;
  gpu::DeviceBuffer<std::uint32_t> a_;  // legacy: A; cell-major: orig map
  gpu::DeviceBuffer<std::uint32_t> m_[kMaxDims];
  GridDeviceView view_;
};

}  // namespace sj
