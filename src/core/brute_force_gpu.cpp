#include "core/brute_force_gpu.hpp"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "common/timer.hpp"
#include "core/kernels.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/kernel.hpp"

namespace sj {

GpuBruteForceResult gpu_brute_force(const Dataset& d, double eps,
                                    bool materialize, int block_size,
                                    const gpu::DeviceSpec& spec) {
  if (eps < 0.0) {
    throw std::invalid_argument("gpu_brute_force: eps must be >= 0");
  }
  GpuBruteForceResult r;
  if (d.empty()) return r;

  gpu::GlobalMemoryArena arena(spec);
  gpu::DeviceBuffer<double> points(arena, d.raw().size());
  std::memcpy(points.data(), d.raw().data(), d.raw().size() * sizeof(double));

  AtomicWork work;
  BruteForceKernelParams p;
  p.points = points.data();
  p.n = d.size();
  p.dim = d.dim();
  p.eps = eps;
  p.work = &work;

  gpu::DeviceCounter cursor;
  std::atomic<bool> overflow{false};
  gpu::DeviceBuffer<Pair> out;
  if (materialize) {
    // Size conservatively: count first, then materialise exactly.
    gpu::launch(gpu::LaunchConfig::cover(d.size(), block_size),
                [&p](const gpu::ThreadCtx& ctx) {
                  brute_force_thread(ctx, p);
                });
    gpu::KernelMetrics m;
    work.add_to(m);
    out = gpu::DeviceBuffer<Pair>(arena, m.results);
    p.result.out = out.data();
    p.result.capacity = m.results;
    p.result.cursor = &cursor;
    p.result.overflow = &overflow;
  }

  Timer t;
  const gpu::KernelStats ks = gpu::launch(
      gpu::LaunchConfig::cover(d.size(), block_size),
      [&p](const gpu::ThreadCtx& ctx) { brute_force_thread(ctx, p); });
  r.kernel_seconds = ks.seconds;
  (void)t;

  gpu::KernelMetrics m;
  work.add_to(m);
  if (materialize) {
    // The counting pass doubled the work counters; report the single-pass
    // numbers and collect the materialised pairs.
    r.num_pairs = cursor.load();
    r.distance_calcs = m.distance_calcs / 2;
    r.pairs.pairs().assign(out.data(), out.data() + r.num_pairs);
  } else {
    r.num_pairs = m.results;
    r.distance_calcs = m.distance_calcs;
  }
  return r;
}

}  // namespace sj
