#include "core/async_self_join.hpp"

#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.hpp"
#include "core/batch_pipeline.hpp"
#include "core/device_view.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/stream.hpp"

namespace sj {

AsyncGpuSelfJoin::AsyncGpuSelfJoin(AsyncSelfJoinOptions opt) : opt_(opt) {
  if (opt_.block_size <= 0) {
    throw std::invalid_argument("AsyncGpuSelfJoin: block_size must be positive");
  }
  if (opt_.num_streams <= 0) {
    throw std::invalid_argument(
        "AsyncGpuSelfJoin: num_streams must be positive");
  }
  if (opt_.assembly_threads <= 0) {
    throw std::invalid_argument(
        "AsyncGpuSelfJoin: assembly_threads must be positive");
  }
  if (opt_.sample_rate <= 0.0 || opt_.sample_rate > 1.0) {
    throw std::invalid_argument(
        "AsyncGpuSelfJoin: sample_rate must be in (0, 1]");
  }
}

SelfJoinResult AsyncGpuSelfJoin::run(const Dataset& d, double eps) const {
  if (eps < 0.0) {
    throw std::invalid_argument("AsyncGpuSelfJoin: eps must be >= 0");
  }
  if (opt_.mode == ResultMode::kSink && !opt_.sink) {
    throw std::invalid_argument(
        "AsyncGpuSelfJoin: result mode 'sink' needs a sink callback");
  }
  SelfJoinResult result;
  SelfJoinStats& st = result.stats;
  Timer total;

  // --- Host-side index construction (cheap relative to tree indexes).
  Timer phase;
  GridIndex index(d, eps);
  st.index_build_seconds = phase.seconds();
  st.grid_nonempty_cells = index.num_nonempty_cells();
  st.grid_total_cells = index.total_cells();

  if (d.empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  // --- Upload dataset + index to the (simulated) device.
  gpu::GlobalMemoryArena arena(opt_.device);
  phase.reset();
  DeviceGrid dev(arena, d, index, opt_.layout);
  st.upload_seconds = phase.seconds();
  GridDeviceView grid = dev.view();
  if (!opt_.soa) {
    // AoS ablation: drop the SoA planes from the kernels' view.
    for (int j = 0; j < grid.dim; ++j) grid.coord[j] = nullptr;
  }

  // Non-materialising modes never allocate pair buffers, so the sizing
  // estimate is dead weight — skip stage 0 entirely.
  const bool pairs_path = opt_.mode == ResultMode::kPairs ||
                          opt_.mode == ResultMode::kSink;

  // --- Stage 0: the sampling estimator kicks off immediately on its own
  // stream. Batch sizing depends on its result, so with default options
  // the host has little to overlap beyond pipeline setup; in metrics mode
  // the serial Table II cache/occupancy pass — which, like the estimator,
  // only reads the grid — runs concurrently instead of serially after the
  // join, and that one is expensive.
  EstimateResult est;
  gpu::Stream estimate_stream(opt_.device);
  gpu::Event estimate_done;
  if (pairs_path) {
    estimate_stream.enqueue([&] {
      est = estimate_result_size(grid, opt_.unicomp, opt_.sample_rate,
                                 opt_.block_size);
    });
  }
  estimate_done.record(estimate_stream);

  std::thread metrics_thread;
  if (opt_.collect_metrics) {
    // Writes only the occupancy/cache fields of st, disjoint from
    // everything the join path below touches.
    metrics_thread = std::thread([&] { collect_gpu_stats(grid, opt_, st); });
  }

  PipelineConfig config;
  config.streams = opt_.num_streams;
  config.assembly_threads = opt_.assembly_threads;
  config.block_size = opt_.block_size;
  config.retry = opt_.retry;
  BatchPipeline pipeline(arena, opt_.device, config);

  // Cell-mode planning pass overlaps the sampling estimator: both only
  // read the grid. The adjacency is built before buffer sizing so its
  // device memory is accounted for.
  CellAdjacency adjacency;
  if (opt_.layout == GridLayout::kCellMajor) {
    adjacency = build_cell_adjacency(arena, grid, opt_.unicomp);
  }

  estimate_done.wait();
  st.estimate_seconds = est.seconds;
  st.estimated_total = est.estimated_total;

  std::uint64_t buffer_pairs = 1;
  if (pairs_path) {
    const std::uint64_t upload_units =
        grid.cell_major ? d.size() * 3 : d.size();
    buffer_pairs = size_buffer_pairs(
        arena, upload_units, est.estimated_total, opt_.min_batches,
        opt_.num_streams, opt_.max_buffer_pairs, opt_.safety);
  }

  ResultRequest req;
  req.mode = opt_.mode;
  req.sink = opt_.sink;
  req.histogram_keys = d.size();
  req.control = opt_.control;

  // --- Stages 1-3: the overlapped batch pipeline.
  AtomicWork work;
  phase.reset();
  PipelineOutput out;
  try {
    if (opt_.layout == GridLayout::kCellMajor) {
      const CellBatchPlan plan =
          plan_cell_batches(adjacency.weights, est.estimated_total,
                            opt_.min_batches, buffer_pairs, opt_.safety);
      out = pipeline.run_cells(req, grid, opt_.unicomp, plan, &adjacency,
                               &work, &st.batch);
    } else {
      const BatchPlan plan = plan_batches(est.estimated_total, d.size(),
                                          opt_.min_batches, buffer_pairs,
                                          opt_.safety);
      out = pipeline.run(req, grid, opt_.unicomp, plan, &work, &st.batch);
    }
  } catch (...) {
    if (metrics_thread.joinable()) metrics_thread.join();
    throw;
  }
  result.pairs = std::move(out.pairs);
  result.total_pairs = out.total_pairs;
  result.histogram = std::move(out.histogram);
  st.join_seconds = phase.seconds();

  work.add_to(st.metrics);
  st.metrics.cells_examined += adjacency.cells_examined;
  st.metrics.cells_nonempty += adjacency.cells_nonempty;
  st.metrics.kernel_seconds = st.batch.kernel_seconds;

  if (metrics_thread.joinable()) {
    metrics_thread.join();
  } else {
    collect_gpu_stats(grid, opt_, st);
  }

  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
