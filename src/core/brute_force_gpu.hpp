// GPU brute-force nested-loop join (paper Section VI-B): |D| threads,
// each comparing its point against every other point. Independent of eps
// in cost; the paper runs a single kernel invocation and excludes the
// result transfer, making it a lower bound for the brute-force approach.
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/result.hpp"
#include "gpusim/device.hpp"

namespace sj {

struct GpuBruteForceResult {
  std::uint64_t num_pairs = 0;   // pairs with dist <= eps (self included)
  std::uint64_t distance_calcs = 0;
  double kernel_seconds = 0.0;
  ResultSet pairs;  // populated only when materialize == true
};

/// Count-only by default (mirrors the paper's lower-bound measurement);
/// with materialize == true the pairs are stored and returned, which the
/// tests use for cross-validation.
GpuBruteForceResult gpu_brute_force(
    const Dataset& d, double eps, bool materialize = false,
    int block_size = 256,
    const gpu::DeviceSpec& spec = gpu::DeviceSpec::titan_x_pascal());

}  // namespace sj
