#include "core/shard_engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/batch_pipeline.hpp"
#include "core/batcher.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "core/shard_plan.hpp"
#include "core/validate.hpp"
#include "gpusim/arena.hpp"

namespace sj {

namespace {

void validate_shard_options(const ShardedSelfJoinOptions& opt,
                            const char* who) {
  const std::string name(who);
  if (opt.shards <= 0) {
    throw std::invalid_argument(name + ": shards must be positive");
  }
  if (opt.chunklets < 0) {
    throw std::invalid_argument(name + ": chunklets must be >= 0 (0 = auto)");
  }
  if (opt.block_size <= 0) {
    throw std::invalid_argument(name + ": block_size must be positive");
  }
  if (opt.num_streams <= 0) {
    throw std::invalid_argument(name + ": num_streams must be positive");
  }
  if (opt.assembly_threads <= 0) {
    throw std::invalid_argument(name + ": assembly_threads must be positive");
  }
  if (opt.sample_rate <= 0.0 || opt.sample_rate > 1.0) {
    throw std::invalid_argument(name + ": sample_rate must be in (0, 1]");
  }
  if (opt.layout != GridLayout::kCellMajor) {
    throw std::invalid_argument(
        name + ": sharding requires the cell-major layout (the shard "
               "partition is a contiguous cell range; layout=legacy has no "
               "such structure)");
  }
  if (opt.mode == ResultMode::kSink) {
    throw std::invalid_argument(
        name + ": result mode 'sink' is not supported across shards (the "
               "shard pipelines run concurrently; use pairs, count, or "
               "histogram)");
  }
}

/// Host-resident cell-major image of the indexed dataset plus a kernel
/// view over it. No device memory is charged: the adjacency build, the
/// global estimate and the metrics replay run here ONCE, and each device
/// then uploads only its chunklets' slices of this staging into its own
/// arena.
struct HostStage {
  std::vector<double> points;
  std::vector<double> coords;  ///< SoA planes, coords[j * n + slot]
  GridDeviceView view;

  HostStage(const Dataset& d, const GridIndex& index) {
    const int dim = d.dim();
    const std::size_t slots = index.A().size();
    points.resize(d.raw().size());
    coords.resize(d.raw().size());
    for (std::size_t k = 0; k < slots; ++k) {
      const double* src = d.pt(index.A()[k]);
      std::memcpy(points.data() + k * static_cast<std::size_t>(dim), src,
                  static_cast<std::size_t>(dim) * sizeof(double));
      for (int j = 0; j < dim; ++j) coords[j * slots + k] = src[j];
    }
    view.points = points.data();
    for (int j = 0; j < dim; ++j) view.coord[j] = coords.data() + j * slots;
    view.n = d.size();
    view.dim = dim;
    view.B = index.B().data();
    view.b_size = index.B().size();
    view.G = index.G().data();
    view.orig = index.A().data();
    view.cell_major = true;
    view.width = index.cell_width();
    view.eps = index.eps();
    for (int j = 0; j < dim; ++j) {
      view.M[j] = index.mask(j).data();
      view.m_size[j] = index.mask(j).size();
      view.gmin[j] = index.gmin(j);
      view.cells_per_dim[j] = index.cells_in_dim(j);
      view.stride[j] = index.stride(j);
    }
    if (contracts::active()) {
      validate::device_grid(view, &d, "HostStage(stage)");
    }
  }
};

/// Copy a chunklet's owned slot span and halo intervals from the host
/// staging into the chunklet-local point/orig buffers (owned slots first,
/// halo intervals after, matching ShardSlice's local numbering).
void upload_slice(const GridDeviceView& hv, const ShardSlice& slice,
                  double* points, std::uint32_t* orig) {
  const std::size_t dim = static_cast<std::size_t>(hv.dim);
  auto copy_span = [&](std::uint32_t gbegin, std::uint32_t gend,
                       std::uint32_t lbegin) {
    const std::size_t count = gend - gbegin;
    std::memcpy(points + static_cast<std::size_t>(lbegin) * dim,
                hv.points + static_cast<std::size_t>(gbegin) * dim,
                count * dim * sizeof(double));
    std::memcpy(orig + lbegin, hv.orig + gbegin,
                count * sizeof(std::uint32_t));
  };
  if (slice.owned_points() > 0) {
    copy_span(slice.owned_begin, slice.owned_end, 0);
  }
  for (const HaloInterval& h : slice.halo) {
    copy_span(h.begin, h.end, h.local_begin);
  }
}

/// Transpose a chunklet's AoS point buffer into its per-dimension SoA
/// planes (coords[j * n + k] = points[k * dim + j]).
void fill_planes(const double* points, std::size_t n, int dim,
                 double* coords) {
  for (std::size_t k = 0; k < n; ++k) {
    for (int j = 0; j < dim; ++j) {
      coords[static_cast<std::size_t>(j) * n + k] =
          points[k * static_cast<std::size_t>(dim) + j];
    }
  }
}

/// Failover accounting surfaced into ShardedRunStats.
struct FailoverStats {
  std::size_t shards_failed_over = 0;
  double recovery_seconds = 0.0;
};

/// The shared chunklet scheduler. Per-device deques are seeded with the
/// static plan's contiguous chunklet groups; a device that drains its own
/// deque steals a whole chunklet from the BACK of the most-loaded
/// victim's deque (the piece the owner would reach last, so the steal
/// perturbs the owner's locality least). The ownership rule makes any
/// cell-to-device assignment exact, so no steal ever needs a dedup pass.
class ChunkletScheduler {
 public:
  explicit ChunkletScheduler(const ChunkletPlan& plan)
      : weights_(plan.weights) {
    const std::size_t k = plan.devices();
    queues_.resize(k);
    remaining_.assign(k, 0);
    for (std::size_t d = 0; d < k; ++d) {
      for (std::uint32_t c = plan.device_bounds[d];
           c < plan.device_bounds[d + 1]; ++c) {
        queues_[d].push_back(c);
        remaining_[d] += cost(c);
      }
    }
  }

  /// Next chunklet for device slot `d`: its own deque's front while any
  /// remains, else (when stealing is allowed) the most-loaded victim's
  /// back. Returns false when the slot has no work to take.
  bool pop(std::size_t d, bool allow_steal, std::uint32_t& chunklet,
           bool& stolen) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queues_[d].empty()) {
      chunklet = queues_[d].front();
      queues_[d].pop_front();
      remaining_[d] -= cost(chunklet);
      stolen = false;
      return true;
    }
    if (!allow_steal) return false;
    std::size_t victim = queues_.size();
    for (std::size_t v = 0; v < queues_.size(); ++v) {
      if (v == d || queues_[v].empty()) continue;
      if (victim == queues_.size() || remaining_[v] > remaining_[victim]) {
        victim = v;
      }
    }
    if (victim == queues_.size()) return false;
    chunklet = queues_[victim].back();
    queues_[victim].pop_back();
    remaining_[victim] -= cost(chunklet);
    stolen = true;
    return true;
  }

 private:
  /// Queued-weight bookkeeping for victim selection; the floor keeps a
  /// deque of zero-weight chunklets visible as remaining work.
  std::uint64_t cost(std::uint32_t chunklet) const {
    return std::max<std::uint64_t>(weights_[chunklet], 1);
  }

  mutable std::mutex mu_;
  const std::vector<std::uint64_t>& weights_;
  std::vector<std::deque<std::uint32_t>> queues_;
  std::vector<std::uint64_t> remaining_;
};

/// Driver-side per-device-slot record: which physical device serves the
/// slot, its accumulated busy clock, and the steal counters.
struct SlotState {
  int device = -1;
  bool failed_over = false;
  double busy_seconds = 0.0;
  std::uint64_t chunklets = 0;
  std::uint64_t stolen = 0;
  double steal_seconds = 0.0;
};

/// Drive the chunklet scheduler over K device slots according to the
/// schedule, collecting the first exception (a failure must not leak
/// threads or strand queued chunklets).
///
/// Failover: a job that throws fault::DeviceLost has lost its physical
/// device mid-chunklet. The dead device is retired (host-side bitmask)
/// and the SLOT re-homes onto the lowest-numbered surviving device —
/// `job` rebuilds the slot's arena and pipeline on the id change, the
/// in-flight chunklet is wound back via `reset` and re-run, and the
/// slot's queued chunklets simply drain on the replacement (or get stolen
/// by the other devices). The ownership rule makes the re-execution
/// exact, so the merged output is byte-identical to a fault-free run.
/// Only when no device survives does the loss fail the run. Any other
/// exception fails immediately, annotated with the chunklet id.
void run_chunklets(
    std::size_t k, ShardSchedule schedule, ChunkletScheduler& sched,
    const std::function<void(std::size_t, int, std::uint32_t)>& job,
    const std::function<void(std::uint32_t)>& reset,
    std::vector<SlotState>& slots, FailoverStats& failover) {
  std::exception_ptr first_error;
  std::mutex mu;  // guards first_error, dead_devices and failover
  std::uint64_t dead_devices = 0;
  std::atomic<bool> abort{false};
  for (std::size_t s = 0; s < k; ++s) slots[s].device = static_cast<int>(s);

  // One chunklet on slot `s`, with failover. Returns the slot's busy
  // seconds — failed attempts and re-runs included: they are real device
  // time the makespan model must see.
  auto run_one = [&](std::size_t s, std::uint32_t chunklet,
                     bool stolen) -> double {
    double busy = 0.0;
    bool recovering = false;
    for (;;) {
      Timer attempt;
      try {
        job(s, slots[s].device, chunklet);
        const double secs = attempt.seconds();
        busy += secs;
        slots[s].chunklets += 1;
        if (stolen) {
          slots[s].stolen += 1;
          slots[s].steal_seconds += busy;
        }
        if (recovering) {
          std::lock_guard<std::mutex> lock(mu);
          failover.recovery_seconds += secs;
        }
        return busy;
      } catch (const fault::DeviceLost& lost) {
        busy += attempt.seconds();
        std::lock_guard<std::mutex> lock(mu);
        const int dead = lost.device >= 0 ? lost.device : slots[s].device;
        if (dead >= 0 && dead < 64) dead_devices |= 1ULL << dead;
        int replacement = -1;
        for (std::size_t d = 0; d < std::min<std::size_t>(k, 64); ++d) {
          if ((dead_devices & (1ULL << d)) == 0) {
            replacement = static_cast<int>(d);
            break;
          }
        }
        if (replacement < 0) {
          if (first_error == nullptr) {
            first_error = annotate_exception(
                std::current_exception(),
                "chunklet " + std::to_string(chunklet) + " on device " +
                    std::to_string(slots[s].device) +
                    " (no surviving device)");
          }
          abort.store(true, std::memory_order_relaxed);
          return busy;
        }
        ++failover.shards_failed_over;
        slots[s].device = replacement;
        slots[s].failed_over = true;
        reset(chunklet);
        recovering = true;
      } catch (...) {
        busy += attempt.seconds();
        std::lock_guard<std::mutex> lock(mu);
        if (first_error == nullptr) {
          first_error = annotate_exception(
              std::current_exception(),
              "chunklet " + std::to_string(chunklet));
        }
        abort.store(true, std::memory_order_relaxed);
        return busy;
      }
    }
  };

  if (schedule == ShardSchedule::kConcurrent && k > 1) {
    // Real-idleness stealing: a device thread that drains its own deque
    // is genuinely idle and steals immediately.
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      threads.emplace_back([&, s] {
        std::uint32_t c = 0;
        bool stolen = false;
        while (!abort.load(std::memory_order_relaxed) &&
               sched.pop(s, /*allow_steal=*/true, c, stolen)) {
          slots[s].busy_seconds += run_one(s, c, stolen);
        }
      });
    }
    for (auto& t : threads) t.join();
  } else {
    // Virtual-time drive: the device with the earliest clock is the one
    // that would go idle first in real time — it takes the next chunklet,
    // stealing when its own deque is dry (schedule=steal) or retiring
    // (schedule=static). Chunklets run alone on the host core, so their
    // measured busy seconds are contention-free and the accumulated
    // clocks model true K-device execution.
    const bool allow_steal = schedule != ShardSchedule::kStatic;
    std::vector<char> done(k, 0);
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) break;
      std::size_t s = k;
      for (std::size_t d = 0; d < k; ++d) {
        if (done[d]) continue;
        if (s == k || slots[d].busy_seconds < slots[s].busy_seconds) s = d;
      }
      if (s == k) break;
      std::uint32_t c = 0;
      bool stolen = false;
      if (!sched.pop(s, allow_steal, c, stolen)) {
        done[s] = 1;
        continue;
      }
      slots[s].busy_seconds += run_one(s, c, stolen);
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

/// Per-device state reused across every chunklet the device runs: ONE
/// arena and ONE pipeline per slot, re-armed per chunklet (fresh
/// DeviceBuffers from the same arena, the pipeline's segment pool and
/// batch ordinal persisting) instead of rebuilt per slice. Rebuilt fresh
/// only when failover re-homes the slot onto a different physical device.
struct DeviceCtx {
  int device_id = -1;
  std::unique_ptr<gpu::GlobalMemoryArena> arena;
  std::unique_ptr<BatchPipeline> pipeline;
  gpu::DeviceBuffer<double> qbuf;  ///< join facet: the broadcast query set
};

/// Tear down and rebuild a slot's device state for physical device
/// `device`. Order matters: buffers referencing the old arena must
/// release into it before the arena itself goes.
void rearm_device(DeviceCtx& ctx, int device,
                  const ShardedSelfJoinOptions& opt) {
  ctx.qbuf = gpu::DeviceBuffer<double>();
  ctx.pipeline.reset();
  ctx.arena = std::make_unique<gpu::GlobalMemoryArena>(opt.device);
  PipelineConfig config;
  config.streams = opt.num_streams;
  config.assembly_threads = opt.assembly_threads;
  config.block_size = opt.block_size;
  config.retry = opt.retry;
  config.device_id = device;
  ctx.pipeline = std::make_unique<BatchPipeline>(*ctx.arena, opt.device,
                                                 config);
  ctx.device_id = device;
}

/// One chunklet's execution record. Outputs are indexed by CHUNKLET, not
/// by device: whichever device ran the chunklet (seeded, stolen, or
/// failed over), the merge walks chunklets in ascending index — ascending
/// first-slot key — so the result is byte-identical to `gpu` under any
/// assignment.
struct ChunkOutput {
  PipelineOutput out;
  BatchRunStats batch;
  std::uint32_t units = 0;
  std::uint64_t weight = 0;
  std::uint64_t owned_points = 0;
  std::uint64_t halo_points = 0;
  int slot = -1;  ///< device slot that ran it (stats attribution)
};

/// Slice the shared once-per-join estimate to one chunklet by its share
/// of the planner weight (exact per-chunklet sampling would pay the
/// estimator's min-sample floor M times over).
std::uint64_t slice_estimate(std::uint64_t estimated_total,
                             std::uint64_t chunk_weight,
                             std::uint64_t total_weight,
                             std::size_t chunklets) {
  if (total_weight == 0) {
    return estimated_total / std::max<std::size_t>(chunklets, 1);
  }
  const unsigned __int128 share =
      static_cast<unsigned __int128>(estimated_total) * chunk_weight /
      total_weight;
  return static_cast<std::uint64_t>(share);
}

/// Distribute the result-size sampling pass across the K device slots:
/// each slot estimates its own seeded chunklet group's span, and the span
/// totals sum into the ONE shared estimate that slice_estimate() prorates
/// per chunklet (the no-per-chunklet-estimator rule holds — M never pays
/// the min-sample floor). The sampling launch is device work, so it is
/// charged to the per-device busy clocks — and under schedule=concurrent
/// genuinely runs on K threads. Leaving it in the serialized common phase
/// would put an O(n) sampling prefix ahead of every device and cap
/// 8-device strong scaling well below the 0.9 target.
///
/// The per-span results are deterministic functions of the plan alone
/// (not of thread timing), so every schedule computes identical slices
/// and the byte-identical-across-schedules contract is unaffected.
EstimateResult estimate_on_devices(
    ShardSchedule schedule, std::vector<SlotState>& slots,
    const std::function<EstimateResult(std::size_t)>& sample_span) {
  const std::size_t k = slots.size();
  std::vector<EstimateResult> parts(k);
  std::exception_ptr first_error;
  std::mutex mu;
  auto one = [&](std::size_t s) {
    Timer t;
    try {
      parts[s] = sample_span(s);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      if (first_error == nullptr) first_error = std::current_exception();
    }
    slots[s].busy_seconds += t.seconds();
  };
  if (schedule == ShardSchedule::kConcurrent && k > 1) {
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (std::size_t s = 0; s < k; ++s) threads.emplace_back(one, s);
    for (auto& t : threads) t.join();
  } else {
    // Virtual-time schedules: each span samples alone on the host core,
    // so the measured seconds are contention-free per-device clock seeds
    // that the chunklet drive then extends.
    for (std::size_t s = 0; s < k; ++s) one(s);
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
  EstimateResult sum;
  for (const EstimateResult& p : parts) {
    sum.estimated_total += p.estimated_total;
    sum.sample_size += p.sample_size;
    sum.sample_count += p.sample_count;
    sum.seconds += p.seconds;
  }
  return sum;
}

/// Merge the per-chunklet results in chunklet order (deterministic: each
/// chunklet's output is already batch-key ordered, and chunklets are
/// disjoint ascending cell ranges) and fold the per-chunklet batch stats
/// into the aggregate. Pairs concatenate; counts sum; histograms sum
/// element-wise.
PipelineOutput merge_chunklets(std::vector<ChunkOutput>& outs,
                               std::vector<AtomicWork>& works,
                               gpu::KernelMetrics& metrics,
                               BatchRunStats& batch) {
  PipelineOutput merged;
  std::size_t total_pairs = 0;
  for (const ChunkOutput& o : outs) total_pairs += o.out.pairs.size();
  // One chunklet's output IS the result — steal it instead of copying.
  // For M > 1, release each chunklet's storage as it is appended so the
  // peak is total + one chunklet, not 2x total.
  if (outs.size() == 1) {
    merged.pairs = std::move(outs[0].out.pairs);
  } else {
    merged.pairs.pairs().reserve(total_pairs);
  }
  for (std::size_t c = 0; c < outs.size(); ++c) {
    if (outs.size() > 1) {
      merged.pairs.append(outs[c].out.pairs);
      outs[c].out.pairs = ResultSet{};
    }
    merged.total_pairs += outs[c].out.total_pairs;
    const std::vector<std::uint32_t>& h = outs[c].out.histogram;
    if (!h.empty()) {
      if (merged.histogram.empty()) merged.histogram.assign(h.size(), 0);
      for (std::size_t i = 0; i < h.size(); ++i) merged.histogram[i] += h[i];
    }
    works[c].add_to(metrics);
    const BatchRunStats& b = outs[c].batch;
    batch.batches_run += b.batches_run;
    batch.overflow_retries += b.overflow_retries;
    batch.retries += b.retries;
    batch.batches_split_on_oom += b.batches_split_on_oom;
    batch.kernel_seconds += b.kernel_seconds;
    batch.sort_seconds += b.sort_seconds;
    batch.assembly_seconds += b.assembly_seconds;
    batch.bytes_to_host += b.bytes_to_host;
    batch.modeled_transfer_seconds += b.modeled_transfer_seconds;
  }
  return merged;
}

/// Fold the driver's slot records plus the chunklet outputs into the
/// per-device balance rows and the run-level aggregates (makespan =
/// common + busiest device clock).
void fold_device_rows(const std::vector<SlotState>& slots,
                      const std::vector<ChunkOutput>& outs,
                      ShardedRunStats& shard) {
  shard.per_shard.assign(slots.size(), ShardStats{});
  double max_busy = 0.0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    ShardStats& row = shard.per_shard[s];
    row.device = slots[s].device;
    row.failed_over = slots[s].failed_over;
    row.seconds = slots[s].busy_seconds;
    row.chunklets = slots[s].chunklets;
    row.stolen = slots[s].stolen;
    row.steal_seconds = slots[s].steal_seconds;
    shard.busy_sum_seconds += slots[s].busy_seconds;
    shard.chunklets_stolen += slots[s].stolen;
    max_busy = std::max(max_busy, slots[s].busy_seconds);
  }
  for (const ChunkOutput& o : outs) {
    if (o.slot < 0) continue;  // never ran (failed run unwinding)
    ShardStats& row = shard.per_shard[static_cast<std::size_t>(o.slot)];
    row.units += o.units;
    row.weight += o.weight;
    row.owned_points += o.owned_points;
    row.halo_points += o.halo_points;
    row.pairs += o.out.total_pairs;
    const BatchRunStats& b = o.batch;
    row.batch.batches_run += b.batches_run;
    row.batch.overflow_retries += b.overflow_retries;
    row.batch.retries += b.retries;
    row.batch.batches_split_on_oom += b.batches_split_on_oom;
    row.batch.kernel_seconds += b.kernel_seconds;
    row.batch.sort_seconds += b.sort_seconds;
    row.batch.assembly_seconds += b.assembly_seconds;
    row.batch.bytes_to_host += b.bytes_to_host;
    row.batch.modeled_transfer_seconds += b.modeled_transfer_seconds;
  }
  shard.makespan_seconds = shard.common_seconds + max_busy;
}

/// Measured per-cell weights for the next run's plan=measured: exact
/// per-point neighbour counts when the mode materialised them (pairs /
/// histogram), per-chunklet pair totals spread by the planning weights in
/// count-only mode.
std::vector<std::uint64_t> measured_cell_weights(
    const GridDeviceView& hv, const ChunkletPlan& cplan,
    const std::vector<std::uint64_t>& cell_weights,
    const std::vector<ChunkOutput>& outs, const ResultSet& pairs,
    const std::vector<std::uint32_t>& histogram, ResultMode mode) {
  const std::size_t cells = static_cast<std::size_t>(hv.b_size);
  std::vector<std::uint64_t> measured(cells, 0);
  std::vector<std::uint32_t> counts;
  if (mode == ResultMode::kHistogram) {
    counts = histogram;
  } else if (mode == ResultMode::kPairs) {
    counts = pairs.counts_per_key(static_cast<std::size_t>(hv.n));
  }
  if (!counts.empty()) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      std::uint64_t w = 0;
      for (std::uint32_t k = hv.G[cell].min; k <= hv.G[cell].max; ++k) {
        w += counts[hv.orig[k]];
      }
      measured[cell] = w;
    }
    return measured;
  }
  // Count-only: the run measured per-CHUNKLET totals; spread each over
  // its cells proportionally to the planning weights (even split when a
  // chunklet's planned weight is zero).
  for (std::size_t c = 0; c < cplan.chunklets(); ++c) {
    const std::uint64_t total = outs[c].out.total_pairs;
    const std::uint32_t u0 = cplan.bounds[c];
    const std::uint32_t u1 = cplan.bounds[c + 1];
    for (std::uint32_t u = u0; u < u1; ++u) {
      if (cplan.weights[c] > 0) {
        measured[u] = static_cast<std::uint64_t>(
            static_cast<unsigned __int128>(total) * cell_weights[u] /
            cplan.weights[c]);
      } else {
        measured[u] = total / (u1 - u0);
      }
    }
  }
  return measured;
}

}  // namespace

ShardedGpuSelfJoin::ShardedGpuSelfJoin(ShardedSelfJoinOptions opt)
    : opt_(std::move(opt)) {
  validate_shard_options(opt_, "ShardedGpuSelfJoin");
}

ShardedSelfJoinResult ShardedGpuSelfJoin::run(const Dataset& d,
                                              double eps) const {
  if (eps < 0.0) {
    throw std::invalid_argument("ShardedGpuSelfJoin: eps must be >= 0");
  }
  ShardedSelfJoinResult result;
  SelfJoinStats& st = result.stats;
  Timer total;

  // --- Common host phases (done once, unsharded): grid index, cell-major
  // staging, chunklet plan, shared estimate.
  Timer phase;
  GridIndex index(d, eps);
  st.index_build_seconds = phase.seconds();
  st.grid_nonempty_cells = index.num_nonempty_cells();
  st.grid_total_cells = index.total_cells();
  if (d.empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  phase.reset();
  const HostStage stage(d, index);
  st.upload_seconds = phase.seconds();
  GridDeviceView hv = stage.view;
  if (!opt_.soa) {
    for (int j = 0; j < hv.dim; ++j) hv.coord[j] = nullptr;
  }
  const bool pairs_path = opt_.mode == ResultMode::kPairs;

  // Chunklet weights: the cheap population-window proxy by default (the
  // exact adjacency weights would cost a global enumeration — the very
  // pass each device resolves for ITS OWN cells below, in parallel);
  // plan=measured re-plans from the per-cell pair counts a prior run
  // persisted via plan_cache, falling back to the proxy on a miss.
  const PlanCacheKey cache_key{static_cast<std::uint64_t>(d.size()), d.dim(),
                               eps, static_cast<std::uint64_t>(hv.b_size)};
  std::vector<std::uint64_t> cell_weights;
  if (opt_.plan == ShardPlanMode::kMeasured && !opt_.plan_cache.empty()) {
    cell_weights = load_plan_cache(opt_.plan_cache, cache_key);
    result.shard.measured_plan = !cell_weights.empty();
  }
  if (cell_weights.empty()) cell_weights = proxy_cell_weights(hv);

  const ChunkletPlan cplan =
      plan_chunklets(cell_weights, static_cast<std::size_t>(opt_.shards),
                     static_cast<std::size_t>(opt_.chunklets));
  if (contracts::active()) {
    validate::chunklet_plan(cplan, cell_weights,
                            static_cast<std::size_t>(opt_.shards),
                            "ShardedGpuSelfJoin(plan)");
  }
  const std::size_t k = cplan.devices();
  const std::size_t m = cplan.chunklets();
  std::uint64_t total_weight = 0;
  for (const std::uint64_t w : cplan.weights) total_weight += w;

  result.shard.shards = k;
  result.shard.chunklets_total = m;
  result.shard.common_seconds = total.seconds();

  std::vector<ChunkOutput> outs(m);
  std::vector<AtomicWork> works(m);
  std::vector<DeviceCtx> devices(k);
  std::vector<SlotState> slots(k);

  // Shared once-per-join result-size estimate, sliced per chunklet by
  // planner weight below. Only the pair-materialising mode sizes buffers,
  // so only it pays for the sampling pass — and it pays on the DEVICES:
  // each slot samples its seeded chunklet group's contiguous cell span,
  // charged to its busy clock, keeping the serialized common phase to
  // host-side indexing and planning only.
  EstimateResult est;
  if (pairs_path) {
    est = estimate_on_devices(opt_.schedule, slots, [&](std::size_t s) {
      const std::uint32_t db0 = cplan.device_bounds[s];
      const std::uint32_t db1 = cplan.device_bounds[s + 1];
      if (db0 == db1) return EstimateResult{};
      const std::uint32_t c0 = cplan.bounds[db0];
      const std::uint32_t c1 = cplan.bounds[db1];
      const std::uint64_t first = hv.G[c0].min;
      const std::uint64_t end = hv.G[c1 - 1].max + 1;
      return estimate_query_span(hv, opt_.unicomp, opt_.sample_rate,
                                 opt_.block_size, /*order=*/nullptr, first,
                                 end - first);
    });
    st.estimate_seconds = est.seconds;
    st.estimated_total = est.estimated_total;
  }

  // --- Per-device execution over the shared chunklet scheduler: each
  // device re-arms its one arena + pipeline per chunklet, resolves the
  // chunklet's own adjacency, uploads its owned span + halo, and runs the
  // pipeline over it.
  phase.reset();
  // Each run observes at most one injected loss per plan entry; devices
  // killed by a previous run stay dead otherwise.
  fault::reset_devices();
  FailoverStats failover;
  ChunkletScheduler sched(cplan);
  run_chunklets(k, opt_.schedule, sched,
  [&](std::size_t s, int device, std::uint32_t c) {
    DeviceCtx& ctx = devices[s];
    if (ctx.pipeline == nullptr || ctx.device_id != device) {
      rearm_device(ctx, device, opt_);
    }
    gpu::GlobalMemoryArena& arena = *ctx.arena;
    const std::uint32_t c0 = cplan.bounds[c];
    const std::uint32_t c1 = cplan.bounds[c + 1];
    CellAdjacencyHost adj =
        build_cell_adjacency_span(hv, opt_.unicomp, c0, c1);
    const ShardSlice slice =
        make_shard_slice(adj.ranges, adj.offsets, adj.weights, 0, c1 - c0,
                         hv.G[c0].min, hv.G[c1 - 1].max + 1);
    if (contracts::active()) {
      validate::shard_slice(slice, hv.n, "ShardedGpuSelfJoin(slice)");
    }
    // The adjacency build carries the chunklet's index-search work
    // (resolved once per owned cell).
    LocalWork planning;
    planning.cells_examined = adj.cells_examined;
    planning.cells_nonempty = adj.cells_nonempty;
    works[c].flush(planning);

    const std::uint64_t est_c =
        pairs_path ? slice_estimate(est.estimated_total, cplan.weights[c],
                                    total_weight, m)
                   : 0;

    const std::uint32_t nlocal = slice.local_points();
    gpu::DeviceBuffer<double> points(
        arena, static_cast<std::size_t>(nlocal) * hv.dim);
    gpu::DeviceBuffer<std::uint32_t> orig(arena, nlocal);
    upload_slice(hv, slice, points.data(), orig.data());
    gpu::DeviceBuffer<double> coords;
    if (opt_.soa) {
      coords = gpu::DeviceBuffer<double>(
          arena, static_cast<std::size_t>(nlocal) * hv.dim);
      fill_planes(points.data(), nlocal, hv.dim, coords.data());
    }

    gpu::DeviceBuffer<GridIndex::CellRange> cells(arena, c1 - c0);
    for (std::uint32_t j = 0; j < c1 - c0; ++j) {
      cells[j] = {hv.G[c0 + j].min - slice.owned_begin,
                  hv.G[c0 + j].max - slice.owned_begin};
    }

    CellAdjacency local;
    local.ranges = gpu::DeviceBuffer<CandidateRange>(arena,
                                                     slice.ranges.size());
    std::copy(slice.ranges.begin(), slice.ranges.end(), local.ranges.data());
    local.offsets =
        gpu::DeviceBuffer<std::uint64_t>(arena, slice.offsets.size());
    std::copy(slice.offsets.begin(), slice.offsets.end(),
              local.offsets.data());
    local.weights = std::move(adj.weights);  // adj is dead past this point

    GridDeviceView grid;
    grid.points = points.data();
    grid.n = nlocal;
    grid.dim = hv.dim;
    grid.G = cells.data();
    grid.b_size = c1 - c0;
    grid.orig = orig.data();
    grid.cell_major = true;
    grid.width = hv.width;
    grid.eps = hv.eps;
    if (opt_.soa) {
      for (int j = 0; j < hv.dim; ++j) {
        grid.coord[j] = coords.data() + static_cast<std::size_t>(j) * nlocal;
      }
    }

    const std::uint64_t buffer_pairs =
        pairs_path ? size_buffer_pairs(
                         arena, static_cast<std::uint64_t>(nlocal) * 3, est_c,
                         opt_.min_batches, opt_.num_streams,
                         opt_.max_buffer_pairs, opt_.safety)
                   : 1;
    const CellBatchPlan plan = plan_cell_batches(
        local.weights, est_c, opt_.min_batches, buffer_pairs, opt_.safety);

    ResultRequest req;
    req.mode = opt_.mode;
    // Histogram keys are ORIGINAL point ids (the kernels emit through
    // orig[]), so every chunklet carries a full-length histogram and the
    // disjoint chunklet results sum element-wise in the merge.
    req.histogram_keys = d.size();

    outs[c].out = ctx.pipeline->run_cells(req, grid, opt_.unicomp, plan,
                                          &local, &works[c], &outs[c].batch);
    outs[c].units = c1 - c0;
    outs[c].weight = slice.weight;
    outs[c].owned_points = slice.owned_points();
    outs[c].halo_points = slice.halo_points();
    outs[c].slot = static_cast<int>(s);
  },
  // Failover reset: wind the chunklet's record back so the surviving
  // device's re-run neither double-counts nor duplicates.
  [&](std::uint32_t c) {
    works[c].reset();
    outs[c] = ChunkOutput{};
  },
  slots, failover);
  result.shard.shards_failed_over = failover.shards_failed_over;
  result.shard.recovery_seconds = failover.recovery_seconds;
  st.join_seconds = phase.seconds();

  PipelineOutput merged = merge_chunklets(outs, works, st.metrics, st.batch);
  fold_device_rows(slots, outs, result.shard);
  result.pairs = std::move(merged.pairs);
  result.total_pairs = merged.total_pairs;
  result.histogram = std::move(merged.histogram);
  if (opt_.mode == ResultMode::kHistogram && result.histogram.empty()) {
    result.histogram.assign(d.size(), 0);
  }
  st.metrics.kernel_seconds = st.batch.kernel_seconds;

  // Feed the measured per-cell pair counts forward for the next run's
  // plan=measured (written in every plan mode — a proxy-planned run is
  // exactly how the first measured plan gets seeded).
  if (!opt_.plan_cache.empty()) {
    save_plan_cache(opt_.plan_cache, cache_key,
                    measured_cell_weights(hv, cplan, cell_weights, outs,
                                          result.pairs, result.histogram,
                                          opt_.mode));
  }

  collect_gpu_stats(hv, opt_, st);
  st.total_seconds = total.seconds();
  return result;
}

ShardedJoinResult sharded_join(const Dataset& queries, const Dataset& data,
                               double eps,
                               const ShardedSelfJoinOptions& opt) {
  validate_shard_options(opt, "sharded_join");
  parse::non_negative("argument 'eps' of sharded_join", eps);
  parse::matching_dims("argument 'queries' of sharded_join", queries.dim(),
                       "argument 'data'", data.dim());
  ShardedJoinResult result;
  GpuJoinStats& st = result.stats;
  Timer total;

  Timer phase;
  GridIndex index(data, eps);
  st.index_build_seconds = phase.seconds();
  if (queries.empty() || data.empty()) {
    if (opt.mode == ResultMode::kHistogram) {
      result.histogram.assign(queries.size(), 0);
    }
    st.total_seconds = total.seconds();
    return result;
  }

  const HostStage stage(data, index);
  GridDeviceView hv = stage.view;
  hv.qpoints = queries.raw().data();
  hv.qn = queries.size();
  if (!opt.soa) {
    for (int j = 0; j < hv.dim; ++j) hv.coord[j] = nullptr;
  }
  const bool pairs_path = opt.mode == ResultMode::kPairs;

  const JoinAdjacencyHost adj = build_join_adjacency_host(hv);
  st.query_groups = adj.num_groups();

  // The sharded units are the query GROUPS; their adjacency weights are
  // already exact, so the join facet needs no measured plan.
  const ChunkletPlan cplan =
      plan_chunklets(adj.weights, static_cast<std::size_t>(opt.shards),
                     static_cast<std::size_t>(opt.chunklets));
  if (contracts::active()) {
    validate::chunklet_plan(cplan, adj.weights,
                            static_cast<std::size_t>(opt.shards),
                            "sharded_join(plan)");
  }
  const std::size_t k = cplan.devices();
  const std::size_t m = cplan.chunklets();
  std::uint64_t total_weight = 0;
  for (const std::uint64_t w : cplan.weights) total_weight += w;

  result.shard.shards = k;
  result.shard.chunklets_total = m;
  result.shard.common_seconds = total.seconds();

  std::vector<ChunkOutput> outs(m);
  std::vector<AtomicWork> works(m);
  std::vector<DeviceCtx> devices(k);
  std::vector<SlotState> slots(k);

  // Shared once-per-join estimate, sliced per chunklet by planner weight.
  // Sampled on the devices: each slot covers its seeded chunklet group's
  // query-group span (in the sorted group order), charged to its busy
  // clock.
  EstimateResult est;
  if (pairs_path) {
    est = estimate_on_devices(opt.schedule, slots, [&](std::size_t s) {
      const std::uint32_t db0 = cplan.device_bounds[s];
      const std::uint32_t db1 = cplan.device_bounds[s + 1];
      if (db0 == db1) return EstimateResult{};
      const std::uint32_t q0 = adj.group_offsets[cplan.bounds[db0]];
      const std::uint32_t q1 = adj.group_offsets[cplan.bounds[db1]];
      if (q0 >= q1) return EstimateResult{};
      return estimate_query_span(hv, /*unicomp=*/false, opt.sample_rate,
                                 opt.block_size, adj.query_order.data(), q0,
                                 q1 - q0);
    });
    st.estimated_total = est.estimated_total;
  }
  phase.reset();
  fault::reset_devices();
  FailoverStats failover;
  ChunkletScheduler sched(cplan);
  run_chunklets(k, opt.schedule, sched,
  [&](std::size_t s, int device, std::uint32_t c) {
    DeviceCtx& ctx = devices[s];
    if (ctx.pipeline == nullptr || ctx.device_id != device) {
      rearm_device(ctx, device, opt);
      // The query set is broadcast whole, ONCE per device: the kernel
      // reads queries by their GLOBAL index (which is also the emitted
      // pair key), so every chunklet's query_order slice indexes into the
      // same buffer.
      ctx.qbuf = gpu::DeviceBuffer<double>(*ctx.arena, queries.raw().size());
      std::memcpy(ctx.qbuf.data(), queries.raw().data(),
                  queries.raw().size() * sizeof(double));
    }
    gpu::GlobalMemoryArena& arena = *ctx.arena;
    const std::uint32_t g0 = cplan.bounds[c];
    const std::uint32_t g1 = cplan.bounds[c + 1];
    // Query groups own no data slots — the chunklet's data slice is
    // exactly the slots its groups' candidate ranges reference (all
    // "halo").
    const ShardSlice slice = make_shard_slice(adj.ranges, adj.offsets,
                                              adj.weights, g0, g1, 0, 0);
    if (contracts::active()) {
      validate::shard_slice(slice, hv.n, "sharded_join(slice)");
    }

    const std::uint32_t nlocal = slice.local_points();
    const std::uint32_t q0 = adj.group_offsets[g0];
    const std::uint32_t q1 = adj.group_offsets[g1];
    outs[c].units = g1 - g0;
    outs[c].weight = slice.weight;
    outs[c].owned_points = q0 < q1 ? q1 - q0 : 0;  // queries in the chunklet
    outs[c].halo_points = nlocal;  // data slots replicated for it
    outs[c].slot = static_cast<int>(s);
    if (nlocal == 0) return;  // no candidates anywhere in these groups

    gpu::DeviceBuffer<double> points(
        arena, static_cast<std::size_t>(nlocal) * hv.dim);
    gpu::DeviceBuffer<std::uint32_t> orig(arena, nlocal);
    upload_slice(hv, slice, points.data(), orig.data());
    gpu::DeviceBuffer<double> coords;
    if (opt.soa) {
      coords = gpu::DeviceBuffer<double>(
          arena, static_cast<std::size_t>(nlocal) * hv.dim);
      fill_planes(points.data(), nlocal, hv.dim, coords.data());
    }

    JoinAdjacency local;
    local.query_order = gpu::DeviceBuffer<std::uint32_t>(arena, q1 - q0);
    std::copy(adj.query_order.begin() + q0, adj.query_order.begin() + q1,
              local.query_order.data());
    local.group_offsets.reserve(static_cast<std::size_t>(g1 - g0) + 1);
    for (std::uint32_t g = g0; g <= g1; ++g) {
      local.group_offsets.push_back(adj.group_offsets[g] - q0);
    }
    local.ranges = gpu::DeviceBuffer<CandidateRange>(arena,
                                                     slice.ranges.size());
    std::copy(slice.ranges.begin(), slice.ranges.end(), local.ranges.data());
    local.offsets =
        gpu::DeviceBuffer<std::uint64_t>(arena, slice.offsets.size());
    std::copy(slice.offsets.begin(), slice.offsets.end(),
              local.offsets.data());
    local.weights.assign(adj.weights.begin() + g0, adj.weights.begin() + g1);

    GridDeviceView grid;
    grid.points = points.data();
    grid.n = nlocal;
    grid.dim = hv.dim;
    grid.orig = orig.data();
    grid.cell_major = true;
    grid.qpoints = ctx.qbuf.data();
    grid.qn = queries.size();
    grid.width = hv.width;
    grid.eps = hv.eps;
    if (opt.soa) {
      for (int j = 0; j < hv.dim; ++j) {
        grid.coord[j] = coords.data() + static_cast<std::size_t>(j) * nlocal;
      }
    }

    const std::uint64_t est_c =
        pairs_path ? slice_estimate(est.estimated_total, cplan.weights[c],
                                    total_weight, m)
                   : 0;
    const std::uint64_t buffer_pairs =
        pairs_path ? size_buffer_pairs(
                         arena, static_cast<std::uint64_t>(q1 - q0) * 3,
                         est_c, opt.min_batches, opt.num_streams,
                         opt.max_buffer_pairs, opt.safety)
                   : 1;
    const CellBatchPlan plan = plan_cell_batches(
        local.weights, est_c, opt.min_batches, buffer_pairs, opt.safety);

    ResultRequest req;
    req.mode = opt.mode;
    req.histogram_keys = queries.size();

    outs[c].out = ctx.pipeline->run_join_groups(req, grid, plan, local,
                                                &works[c], &outs[c].batch);
  },
  [&](std::uint32_t c) {
    works[c].reset();
    outs[c] = ChunkOutput{};
  },
  slots, failover);
  result.shard.shards_failed_over = failover.shards_failed_over;
  result.shard.recovery_seconds = failover.recovery_seconds;

  PipelineOutput merged = merge_chunklets(outs, works, st.metrics, st.batch);
  fold_device_rows(slots, outs, result.shard);
  result.pairs = std::move(merged.pairs);
  result.total_pairs = merged.total_pairs;
  result.histogram = std::move(merged.histogram);
  if (opt.mode == ResultMode::kHistogram && result.histogram.empty()) {
    result.histogram.assign(queries.size(), 0);
  }
  st.metrics.cells_examined += adj.cells_examined;
  st.metrics.cells_nonempty += adj.cells_nonempty;
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
