#include "core/shard_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/batch_pipeline.hpp"
#include "core/batcher.hpp"
#include "core/estimator.hpp"
#include "core/grid_index.hpp"
#include "core/kernels.hpp"
#include "core/shard_plan.hpp"
#include "core/validate.hpp"
#include "gpusim/arena.hpp"

namespace sj {

namespace {

void validate_shard_options(const ShardedSelfJoinOptions& opt,
                            const char* who) {
  const std::string name(who);
  if (opt.shards <= 0) {
    throw std::invalid_argument(name + ": shards must be positive");
  }
  if (opt.block_size <= 0) {
    throw std::invalid_argument(name + ": block_size must be positive");
  }
  if (opt.num_streams <= 0) {
    throw std::invalid_argument(name + ": num_streams must be positive");
  }
  if (opt.assembly_threads <= 0) {
    throw std::invalid_argument(name + ": assembly_threads must be positive");
  }
  if (opt.sample_rate <= 0.0 || opt.sample_rate > 1.0) {
    throw std::invalid_argument(name + ": sample_rate must be in (0, 1]");
  }
  if (opt.layout != GridLayout::kCellMajor) {
    throw std::invalid_argument(
        name + ": sharding requires the cell-major layout (the shard "
               "partition is a contiguous cell range; layout=legacy has no "
               "such structure)");
  }
  if (opt.mode == ResultMode::kSink) {
    throw std::invalid_argument(
        name + ": result mode 'sink' is not supported across shards (the "
               "shard pipelines run concurrently; use pairs, count, or "
               "histogram)");
  }
}

/// Host-resident cell-major image of the indexed dataset plus a kernel
/// view over it. No device memory is charged: the adjacency build, the
/// global estimate and the metrics replay run here ONCE, and each shard
/// then uploads only its slice of this staging into its own device arena.
struct HostStage {
  std::vector<double> points;
  std::vector<double> coords;  ///< SoA planes, coords[j * n + slot]
  GridDeviceView view;

  HostStage(const Dataset& d, const GridIndex& index) {
    const int dim = d.dim();
    const std::size_t slots = index.A().size();
    points.resize(d.raw().size());
    coords.resize(d.raw().size());
    for (std::size_t k = 0; k < slots; ++k) {
      const double* src = d.pt(index.A()[k]);
      std::memcpy(points.data() + k * static_cast<std::size_t>(dim), src,
                  static_cast<std::size_t>(dim) * sizeof(double));
      for (int j = 0; j < dim; ++j) coords[j * slots + k] = src[j];
    }
    view.points = points.data();
    for (int j = 0; j < dim; ++j) view.coord[j] = coords.data() + j * slots;
    view.n = d.size();
    view.dim = dim;
    view.B = index.B().data();
    view.b_size = index.B().size();
    view.G = index.G().data();
    view.orig = index.A().data();
    view.cell_major = true;
    view.width = index.cell_width();
    view.eps = index.eps();
    for (int j = 0; j < dim; ++j) {
      view.M[j] = index.mask(j).data();
      view.m_size[j] = index.mask(j).size();
      view.gmin[j] = index.gmin(j);
      view.cells_per_dim[j] = index.cells_in_dim(j);
      view.stride[j] = index.stride(j);
    }
    if (contracts::active()) {
      validate::device_grid(view, &d, "HostStage(stage)");
    }
  }
};

/// Copy the shard's owned slot span and halo intervals from the host
/// staging into the shard-local point/orig buffers (owned slots first,
/// halo intervals after, matching ShardSlice's local numbering).
void upload_slice(const GridDeviceView& hv, const ShardSlice& slice,
                  double* points, std::uint32_t* orig) {
  const std::size_t dim = static_cast<std::size_t>(hv.dim);
  auto copy_span = [&](std::uint32_t gbegin, std::uint32_t gend,
                       std::uint32_t lbegin) {
    const std::size_t count = gend - gbegin;
    std::memcpy(points + static_cast<std::size_t>(lbegin) * dim,
                hv.points + static_cast<std::size_t>(gbegin) * dim,
                count * dim * sizeof(double));
    std::memcpy(orig + lbegin, hv.orig + gbegin,
                count * sizeof(std::uint32_t));
  };
  if (slice.owned_points() > 0) {
    copy_span(slice.owned_begin, slice.owned_end, 0);
  }
  for (const HaloInterval& h : slice.halo) {
    copy_span(h.begin, h.end, h.local_begin);
  }
}

/// Transpose a shard's AoS point buffer into its per-dimension SoA planes
/// (coords[j * n + k] = points[k * dim + j]).
void fill_planes(const double* points, std::size_t n, int dim,
                 double* coords) {
  for (std::size_t k = 0; k < n; ++k) {
    for (int j = 0; j < dim; ++j) {
      coords[static_cast<std::size_t>(j) * n + k] =
          points[k * static_cast<std::size_t>(dim) + j];
    }
  }
}

/// Failover accounting surfaced into ShardedRunStats.
struct FailoverStats {
  std::size_t shards_failed_over = 0;
  double recovery_seconds = 0.0;
};

/// Drive the K shard jobs according to the schedule, collecting the first
/// exception (a shard failure must not leak threads).
///
/// Failover: a job that throws fault::DeviceLost has lost its simulated
/// device mid-run. The dead device is retired (host-side bitmask), the
/// shard's state is wound back via `reset`, and the whole shard re-runs
/// on the lowest-numbered surviving device — fresh arena and pipeline
/// inside `job`. The ownership rule makes the re-execution exact, so the
/// merged output is byte-identical to a fault-free run. Only when no
/// device survives does the loss fail the run. Any other exception fails
/// immediately, annotated with the shard id.
void run_shards(std::size_t k, ShardSchedule schedule,
                const std::function<void(std::size_t, int)>& job,
                const std::function<void(std::size_t)>& reset,
                FailoverStats& failover) {
  std::exception_ptr first_error;
  std::mutex err_mu;  // guards first_error, dead_devices and failover
  std::uint64_t dead_devices = 0;
  auto guarded = [&](std::size_t s) {
    int device = static_cast<int>(s);
    bool recovering = false;
    for (;;) {
      Timer attempt;
      try {
        if (recovering) reset(s);
        job(s, device);
        if (recovering) {
          std::lock_guard<std::mutex> lock(err_mu);
          failover.recovery_seconds += attempt.seconds();
        }
        return;
      } catch (const fault::DeviceLost& lost) {
        std::lock_guard<std::mutex> lock(err_mu);
        const int dead = lost.device >= 0 ? lost.device : device;
        if (dead >= 0 && dead < 64) dead_devices |= 1ULL << dead;
        int replacement = -1;
        for (std::size_t d = 0; d < std::min<std::size_t>(k, 64); ++d) {
          if ((dead_devices & (1ULL << d)) == 0) {
            replacement = static_cast<int>(d);
            break;
          }
        }
        if (replacement < 0) {
          if (first_error == nullptr) {
            first_error = annotate_exception(
                std::current_exception(),
                "shard " + std::to_string(s) + " (no surviving device)");
          }
          return;
        }
        ++failover.shards_failed_over;
        device = replacement;
        recovering = true;
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (first_error == nullptr) {
          first_error = annotate_exception(std::current_exception(),
                                           "shard " + std::to_string(s));
        }
        return;
      }
    }
  };
  if (schedule == ShardSchedule::kSerial || k == 1) {
    for (std::size_t s = 0; s < k; ++s) guarded(s);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (std::size_t s = 0; s < k; ++s) {
      threads.emplace_back([&guarded, s] { guarded(s); });
    }
    for (auto& t : threads) t.join();
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

struct ShardOutput {
  PipelineOutput out;
  ShardStats stats;
};

/// Merge the per-shard results in shard order (deterministic: each
/// shard's output is already batch-key ordered, and shards are disjoint)
/// and fold the per-shard stats into the aggregate + the ShardedRunStats
/// record. Pairs concatenate; counts sum; histograms sum element-wise.
PipelineOutput merge_shards(std::vector<ShardOutput>& outs,
                            std::vector<AtomicWork>& works,
                            gpu::KernelMetrics& metrics, BatchRunStats& batch,
                            ShardedRunStats& shard) {
  PipelineOutput merged;
  std::size_t total_pairs = 0;
  for (const ShardOutput& o : outs) total_pairs += o.out.pairs.size();
  // One shard's output IS the result — steal it instead of copying. For
  // K > 1, release each shard's storage as it is appended so the peak is
  // total + one shard, not 2x total.
  if (outs.size() == 1) {
    merged.pairs = std::move(outs[0].out.pairs);
  } else {
    merged.pairs.pairs().reserve(total_pairs);
  }
  double max_busy = 0.0;
  for (std::size_t s = 0; s < outs.size(); ++s) {
    if (outs.size() > 1) {
      merged.pairs.append(outs[s].out.pairs);
      outs[s].out.pairs = ResultSet{};
    }
    merged.total_pairs += outs[s].out.total_pairs;
    const std::vector<std::uint32_t>& h = outs[s].out.histogram;
    if (!h.empty()) {
      if (merged.histogram.empty()) merged.histogram.assign(h.size(), 0);
      for (std::size_t i = 0; i < h.size(); ++i) merged.histogram[i] += h[i];
    }
    works[s].add_to(metrics);
    const BatchRunStats& b = outs[s].stats.batch;
    batch.batches_run += b.batches_run;
    batch.overflow_retries += b.overflow_retries;
    batch.retries += b.retries;
    batch.batches_split_on_oom += b.batches_split_on_oom;
    batch.kernel_seconds += b.kernel_seconds;
    batch.sort_seconds += b.sort_seconds;
    batch.assembly_seconds += b.assembly_seconds;
    batch.bytes_to_host += b.bytes_to_host;
    batch.modeled_transfer_seconds += b.modeled_transfer_seconds;
    max_busy = std::max(max_busy, outs[s].stats.seconds);
    shard.busy_sum_seconds += outs[s].stats.seconds;
    shard.per_shard.push_back(outs[s].stats);
  }
  shard.makespan_seconds = shard.common_seconds + max_busy;
  return merged;
}

}  // namespace

ShardedGpuSelfJoin::ShardedGpuSelfJoin(ShardedSelfJoinOptions opt)
    : opt_(opt) {
  validate_shard_options(opt_, "ShardedGpuSelfJoin");
}

ShardedSelfJoinResult ShardedGpuSelfJoin::run(const Dataset& d,
                                              double eps) const {
  if (eps < 0.0) {
    throw std::invalid_argument("ShardedGpuSelfJoin: eps must be >= 0");
  }
  ShardedSelfJoinResult result;
  SelfJoinStats& st = result.stats;
  Timer total;

  // --- Common host phases (done once, unsharded): grid index, cell-major
  // staging, per-cell adjacency + weights, global estimate, partition.
  Timer phase;
  GridIndex index(d, eps);
  st.index_build_seconds = phase.seconds();
  st.grid_nonempty_cells = index.num_nonempty_cells();
  st.grid_total_cells = index.total_cells();
  if (d.empty()) {
    st.total_seconds = total.seconds();
    return result;
  }

  phase.reset();
  const HostStage stage(d, index);
  st.upload_seconds = phase.seconds();
  GridDeviceView hv = stage.view;
  if (!opt_.soa) {
    for (int j = 0; j < hv.dim; ++j) hv.coord[j] = nullptr;
  }
  const bool pairs_path = opt_.mode == ResultMode::kPairs;

  // Shard boundaries from the cheap population-window proxy: the exact
  // adjacency weights would cost a global enumeration — the very pass
  // each device resolves for ITS OWN cells below, in parallel.
  const std::vector<std::uint32_t> bounds = plan_shard_boundaries(
      proxy_cell_weights(hv), static_cast<std::size_t>(opt_.shards));
  if (contracts::active()) {
    validate::shard_boundaries(bounds, static_cast<std::size_t>(hv.b_size),
                               "ShardedGpuSelfJoin(plan)");
  }
  const std::size_t k = bounds.size() - 1;

  result.shard.shards = k;
  result.shard.common_seconds = total.seconds();

  // --- Per-device execution: each shard resolves its own cells'
  // adjacency, estimates its own slice of the result, uploads its owned
  // span + halo into its OWN arena, and runs its own pipeline.
  std::vector<ShardOutput> outs(k);
  std::vector<AtomicWork> works(k);
  std::vector<EstimateResult> ests(k);
  phase.reset();
  // Each run observes at most one injected loss per plan entry; devices
  // killed by a previous run stay dead otherwise.
  fault::reset_devices();
  FailoverStats failover;
  run_shards(k, opt_.schedule, [&](std::size_t s, int device) {
    Timer shard_t;
    const std::uint32_t c0 = bounds[s];
    const std::uint32_t c1 = bounds[s + 1];
    CellAdjacencyHost adj =
        build_cell_adjacency_span(hv, opt_.unicomp, c0, c1);
    const ShardSlice slice =
        make_shard_slice(adj.ranges, adj.offsets, adj.weights, 0, c1 - c0,
                         hv.G[c0].min, hv.G[c1 - 1].max + 1);
    if (contracts::active()) {
      validate::shard_slice(slice, hv.n, "ShardedGpuSelfJoin(slice)");
    }
    // The adjacency build carries the shard's index-search work (resolved
    // once per owned cell).
    LocalWork planning;
    planning.cells_examined = adj.cells_examined;
    planning.cells_nonempty = adj.cells_nonempty;
    works[s].flush(planning);

    // Only the pair-materialising mode sizes buffers, so only it pays for
    // the per-shard result-size estimate.
    EstimateResult est;
    if (pairs_path) {
      est = estimate_query_span(
          hv, opt_.unicomp, opt_.sample_rate, opt_.block_size,
          /*order=*/nullptr, slice.owned_begin, slice.owned_points());
      ests[s] = est;
    }

    gpu::GlobalMemoryArena arena(opt_.device);
    const std::uint32_t nlocal = slice.local_points();
    gpu::DeviceBuffer<double> points(
        arena, static_cast<std::size_t>(nlocal) * hv.dim);
    gpu::DeviceBuffer<std::uint32_t> orig(arena, nlocal);
    upload_slice(hv, slice, points.data(), orig.data());
    gpu::DeviceBuffer<double> coords;
    if (opt_.soa) {
      coords = gpu::DeviceBuffer<double>(
          arena, static_cast<std::size_t>(nlocal) * hv.dim);
      fill_planes(points.data(), nlocal, hv.dim, coords.data());
    }

    gpu::DeviceBuffer<GridIndex::CellRange> cells(arena, c1 - c0);
    for (std::uint32_t j = 0; j < c1 - c0; ++j) {
      cells[j] = {hv.G[c0 + j].min - slice.owned_begin,
                  hv.G[c0 + j].max - slice.owned_begin};
    }

    CellAdjacency local;
    local.ranges = gpu::DeviceBuffer<CandidateRange>(arena,
                                                     slice.ranges.size());
    std::copy(slice.ranges.begin(), slice.ranges.end(), local.ranges.data());
    local.offsets =
        gpu::DeviceBuffer<std::uint64_t>(arena, slice.offsets.size());
    std::copy(slice.offsets.begin(), slice.offsets.end(),
              local.offsets.data());
    local.weights = std::move(adj.weights);  // adj is dead past this point

    GridDeviceView grid;
    grid.points = points.data();
    grid.n = nlocal;
    grid.dim = hv.dim;
    grid.G = cells.data();
    grid.b_size = c1 - c0;
    grid.orig = orig.data();
    grid.cell_major = true;
    grid.width = hv.width;
    grid.eps = hv.eps;
    if (opt_.soa) {
      for (int j = 0; j < hv.dim; ++j) {
        grid.coord[j] = coords.data() + static_cast<std::size_t>(j) * nlocal;
      }
    }

    // The shard sized its own estimate, so no share apportioning: the
    // sampled slots are exactly the ones this device will run.
    const std::uint64_t est_k = est.estimated_total;
    const std::uint64_t buffer_pairs =
        pairs_path ? size_buffer_pairs(
                         arena, static_cast<std::uint64_t>(nlocal) * 3, est_k,
                         opt_.min_batches, opt_.num_streams,
                         opt_.max_buffer_pairs, opt_.safety)
                   : 1;
    const CellBatchPlan plan = plan_cell_batches(
        local.weights, est_k, opt_.min_batches, buffer_pairs, opt_.safety);

    ResultRequest req;
    req.mode = opt_.mode;
    // Histogram keys are ORIGINAL point ids (the kernels emit through
    // orig[]), so every shard carries a full-length histogram and the
    // disjoint shard results sum element-wise in merge_shards.
    req.histogram_keys = d.size();

    PipelineConfig config;
    config.streams = opt_.num_streams;
    config.assembly_threads = opt_.assembly_threads;
    config.block_size = opt_.block_size;
    config.retry = opt_.retry;
    config.device_id = device;
    BatchPipeline pipeline(arena, opt_.device, config);
    outs[s].out = pipeline.run_cells(req, grid, opt_.unicomp, plan, &local,
                                     &works[s], &outs[s].stats.batch);

    ShardStats& ss = outs[s].stats;
    ss.units = c1 - c0;
    ss.weight = slice.weight;
    ss.owned_points = slice.owned_points();
    ss.halo_points = slice.halo_points();
    ss.pairs = outs[s].out.total_pairs;
    ss.device = device;
    ss.failed_over = device != static_cast<int>(s);
    ss.seconds = shard_t.seconds();
  },
  // Failover reset: wind the shard's record back so the surviving
  // device's re-run neither double-counts nor duplicates.
  [&](std::size_t s) {
    works[s].reset();
    outs[s] = ShardOutput{};
    ests[s] = EstimateResult{};
  },
  failover);
  result.shard.shards_failed_over = failover.shards_failed_over;
  result.shard.recovery_seconds = failover.recovery_seconds;
  st.join_seconds = phase.seconds();
  for (const EstimateResult& e : ests) {
    st.estimate_seconds += e.seconds;
    st.estimated_total += e.estimated_total;
  }

  PipelineOutput merged = merge_shards(outs, works, st.metrics, st.batch,
                                       result.shard);
  result.pairs = std::move(merged.pairs);
  result.total_pairs = merged.total_pairs;
  result.histogram = std::move(merged.histogram);
  if (opt_.mode == ResultMode::kHistogram && result.histogram.empty()) {
    result.histogram.assign(d.size(), 0);
  }
  st.metrics.kernel_seconds = st.batch.kernel_seconds;

  collect_gpu_stats(hv, opt_, st);
  st.total_seconds = total.seconds();
  return result;
}

ShardedJoinResult sharded_join(const Dataset& queries, const Dataset& data,
                               double eps,
                               const ShardedSelfJoinOptions& opt) {
  validate_shard_options(opt, "sharded_join");
  parse::non_negative("argument 'eps' of sharded_join", eps);
  parse::matching_dims("argument 'queries' of sharded_join", queries.dim(),
                       "argument 'data'", data.dim());
  ShardedJoinResult result;
  GpuJoinStats& st = result.stats;
  Timer total;

  Timer phase;
  GridIndex index(data, eps);
  st.index_build_seconds = phase.seconds();
  if (queries.empty() || data.empty()) {
    if (opt.mode == ResultMode::kHistogram) {
      result.histogram.assign(queries.size(), 0);
    }
    st.total_seconds = total.seconds();
    return result;
  }

  const HostStage stage(data, index);
  GridDeviceView hv = stage.view;
  hv.qpoints = queries.raw().data();
  hv.qn = queries.size();
  if (!opt.soa) {
    for (int j = 0; j < hv.dim; ++j) hv.coord[j] = nullptr;
  }
  const bool pairs_path = opt.mode == ResultMode::kPairs;

  const JoinAdjacencyHost adj = build_join_adjacency_host(hv);
  st.query_groups = adj.num_groups();

  const std::vector<std::uint32_t> bounds = plan_shard_boundaries(
      adj.weights, static_cast<std::size_t>(opt.shards));
  if (contracts::active()) {
    validate::shard_boundaries(bounds, adj.num_groups(), "sharded_join(plan)");
  }
  const std::size_t k = bounds.size() - 1;

  result.shard.shards = k;
  result.shard.common_seconds = total.seconds();

  std::vector<ShardOutput> outs(k);
  std::vector<AtomicWork> works(k);
  std::vector<EstimateResult> ests(k);
  phase.reset();
  fault::reset_devices();
  FailoverStats failover;
  run_shards(k, opt.schedule, [&](std::size_t s, int device) {
    Timer shard_t;
    const std::uint32_t g0 = bounds[s];
    const std::uint32_t g1 = bounds[s + 1];
    // Query groups own no data slots — the shard's data slice is exactly
    // the slots its groups' candidate ranges reference (all "halo").
    const ShardSlice slice = make_shard_slice(adj.ranges, adj.offsets,
                                              adj.weights, g0, g1, 0, 0);
    if (contracts::active()) {
      validate::shard_slice(slice, hv.n, "sharded_join(slice)");
    }

    gpu::GlobalMemoryArena arena(opt.device);
    const std::uint32_t nlocal = slice.local_points();
    gpu::DeviceBuffer<double> points(
        arena, static_cast<std::size_t>(nlocal) * hv.dim);
    gpu::DeviceBuffer<std::uint32_t> orig(arena, nlocal);
    upload_slice(hv, slice, points.data(), orig.data());
    gpu::DeviceBuffer<double> coords;
    if (opt.soa) {
      coords = gpu::DeviceBuffer<double>(
          arena, static_cast<std::size_t>(nlocal) * hv.dim);
      fill_planes(points.data(), nlocal, hv.dim, coords.data());
    }

    // The query set is broadcast whole: the kernel reads queries by their
    // GLOBAL index (which is also the emitted pair key), so the shard's
    // query_order slice indexes into the full buffer.
    gpu::DeviceBuffer<double> qbuf(arena, queries.raw().size());
    std::memcpy(qbuf.data(), queries.raw().data(),
                queries.raw().size() * sizeof(double));

    const std::uint32_t q0 = adj.group_offsets[g0];
    const std::uint32_t q1 = adj.group_offsets[g1];
    JoinAdjacency local;
    local.query_order = gpu::DeviceBuffer<std::uint32_t>(arena, q1 - q0);
    std::copy(adj.query_order.begin() + q0, adj.query_order.begin() + q1,
              local.query_order.data());
    local.group_offsets.reserve(static_cast<std::size_t>(g1 - g0) + 1);
    for (std::uint32_t g = g0; g <= g1; ++g) {
      local.group_offsets.push_back(adj.group_offsets[g] - q0);
    }
    local.ranges = gpu::DeviceBuffer<CandidateRange>(arena,
                                                     slice.ranges.size());
    std::copy(slice.ranges.begin(), slice.ranges.end(), local.ranges.data());
    local.offsets =
        gpu::DeviceBuffer<std::uint64_t>(arena, slice.offsets.size());
    std::copy(slice.offsets.begin(), slice.offsets.end(),
              local.offsets.data());
    local.weights.assign(adj.weights.begin() + g0, adj.weights.begin() + g1);

    GridDeviceView grid;
    grid.points = points.data();
    grid.n = nlocal;
    grid.dim = hv.dim;
    grid.orig = orig.data();
    grid.cell_major = true;
    grid.qpoints = qbuf.data();
    grid.qn = queries.size();
    grid.width = hv.width;
    grid.eps = hv.eps;
    if (opt.soa) {
      for (int j = 0; j < hv.dim; ++j) {
        grid.coord[j] = coords.data() + static_cast<std::size_t>(j) * nlocal;
      }
    }

    ShardStats& ss = outs[s].stats;
    ss.units = g1 - g0;
    ss.weight = slice.weight;
    ss.owned_points = q1 - q0;     // queries assigned to this shard
    ss.halo_points = nlocal;       // data slots replicated to this shard
    ss.device = device;
    ss.failed_over = device != static_cast<int>(s);
    if (nlocal > 0) {
      // Per-device estimate over this shard's own queries (the sorted
      // group order), exactly like the self-join's owned-slot sampling;
      // skipped in the non-materialising modes, which size no buffers.
      EstimateResult est;
      if (pairs_path) {
        est = estimate_query_span(
            hv, /*unicomp=*/false, opt.sample_rate, opt.block_size,
            adj.query_order.data(), q0, q1 - q0);
        ests[s] = est;
      }
      const std::uint64_t est_k = est.estimated_total;
      const std::uint64_t buffer_pairs =
          pairs_path ? size_buffer_pairs(
                           arena, static_cast<std::uint64_t>(q1 - q0) * 3,
                           est_k, opt.min_batches, opt.num_streams,
                           opt.max_buffer_pairs, opt.safety)
                     : 1;
      const CellBatchPlan plan = plan_cell_batches(
          local.weights, est_k, opt.min_batches, buffer_pairs, opt.safety);

      ResultRequest req;
      req.mode = opt.mode;
      req.histogram_keys = queries.size();

      PipelineConfig config;
      config.streams = opt.num_streams;
      config.assembly_threads = opt.assembly_threads;
      config.block_size = opt.block_size;
      config.retry = opt.retry;
      config.device_id = device;
      BatchPipeline pipeline(arena, opt.device, config);
      outs[s].out = pipeline.run_join_groups(req, grid, plan, local,
                                             &works[s],
                                             &outs[s].stats.batch);
    }
    ss.pairs = outs[s].out.total_pairs;
    ss.seconds = shard_t.seconds();
  },
  [&](std::size_t s) {
    works[s].reset();
    outs[s] = ShardOutput{};
    ests[s] = EstimateResult{};
  },
  failover);
  result.shard.shards_failed_over = failover.shards_failed_over;
  result.shard.recovery_seconds = failover.recovery_seconds;
  for (const EstimateResult& e : ests) st.estimated_total += e.estimated_total;

  PipelineOutput merged = merge_shards(outs, works, st.metrics, st.batch,
                                       result.shard);
  result.pairs = std::move(merged.pairs);
  result.total_pairs = merged.total_pairs;
  result.histogram = std::move(merged.histogram);
  if (opt.mode == ResultMode::kHistogram && result.histogram.empty()) {
    result.histogram.assign(queries.size(), 0);
  }
  st.metrics.cells_examined += adj.cells_examined;
  st.metrics.cells_nonempty += adj.cells_nonempty;
  st.metrics.kernel_seconds = st.batch.kernel_seconds;
  st.total_seconds = total.seconds();
  return result;
}

}  // namespace sj
