// General epsilon join between two datasets — "the self-join problem is a
// special case of a join operation on two different sets of data points"
// (paper Section II). The inner set B is grid-indexed; each point of the
// outer set A searches its adjacent cells; the result pairs are
// (a_index, b_index) with dist(A[a], B[b]) <= eps.
//
// UNICOMP does not apply (its parity argument requires query and data
// cells to be the same set); batching and result-size estimation work
// exactly as in the self-join.
#pragma once

#include "common/dataset.hpp"
#include "common/result.hpp"
#include "core/self_join.hpp"

namespace sj {

struct GpuJoinOptions {
  int block_size = 256;
  std::size_t min_batches = 3;
  int num_streams = 3;
  double sample_rate = 0.01;
  double safety = 1.25;
  std::uint64_t max_buffer_pairs = 1ULL << 24;
  gpu::DeviceSpec device = gpu::DeviceSpec::titan_x_pascal();
};

struct GpuJoinStats {
  double total_seconds = 0.0;
  double index_build_seconds = 0.0;
  std::uint64_t estimated_total = 0;
  BatchRunStats batch;
  gpu::KernelMetrics metrics;
};

struct GpuJoinResult {
  /// Pairs are (query index into A, data index into B).
  ResultSet pairs;
  GpuJoinStats stats;
};

/// Epsilon join: every (a, b) with a in A, b in B, dist(a, b) <= eps.
/// Both datasets must share the same dimensionality.
GpuJoinResult gpu_join(const Dataset& queries, const Dataset& data,
                       double eps, GpuJoinOptions opt = {});

}  // namespace sj
