// General epsilon join between two datasets — "the self-join problem is a
// special case of a join operation on two different sets of data points"
// (paper Section II). The inner set B is grid-indexed; each point of the
// outer set A searches its adjacent cells; the result pairs are
// (a_index, b_index) with dist(A[a], B[b]) <= eps.
//
// UNICOMP does not apply (its parity argument requires query and data
// cells to be the same set); batching and result-size estimation work
// exactly as in the self-join.
//
// Two layouts for the INDEXED side, mirroring the self-join:
//   kCellMajor (default) — the data set is reordered cell-major at upload
//     and the queries are sorted and GROUPED by the data-grid cell they
//     fall into; each group's candidate slot ranges are resolved once
//     (build_join_adjacency) and scanned contiguously, and batches are
//     contiguous group ranges weighted by per-group work estimates.
//   kLegacy — the paper's point-centric search: every query re-runs the
//     mask filtering and binary searches of B, candidates gathered
//     through A[]. Kept for ablation (bench/ablation_join.cpp).
#pragma once

#include "common/dataset.hpp"
#include "common/result.hpp"
#include "core/self_join.hpp"

namespace sj {

struct GpuJoinOptions {
  GridLayout layout = GridLayout::kCellMajor;
  int block_size = 256;
  std::size_t min_batches = 3;
  int num_streams = 3;
  double sample_rate = 0.01;
  double safety = 1.25;
  std::uint64_t max_buffer_pairs = 1ULL << 24;
  /// Result mode (common/result.hpp); non-pairs modes skip the estimator
  /// and pair-buffer sizing, kSink streams batches through `sink`.
  /// Histogram keys are QUERY indices.
  ResultMode mode = ResultMode::kPairs;
  PairSink sink;
  /// SoA coordinate-plane scan (cell-major only); false = AoS ablation.
  bool soa = true;
  gpu::DeviceSpec device = gpu::DeviceSpec::titan_x_pascal();
  /// Transient-fault retry policy (batcher.hpp).
  RetryPolicy retry;
  /// Optional deadline/cancellation control (common/cancel.hpp),
  /// non-owning; polled at the pipeline's checkpoint seams.
  const exec::ExecControl* control = nullptr;
};

struct GpuJoinStats {
  double total_seconds = 0.0;
  double index_build_seconds = 0.0;
  std::uint64_t estimated_total = 0;
  /// Distinct data-grid home cells over the query set (cell-major layout
  /// only) — the number of adjacency resolutions the join amortises.
  std::uint64_t query_groups = 0;
  BatchRunStats batch;
  gpu::KernelMetrics metrics;
};

struct GpuJoinResult {
  /// Pairs are (query index into A, data index into B).
  ResultSet pairs;
  /// Exact pair count in every result mode; per-query histogram only in
  /// kHistogram.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  GpuJoinStats stats;
};

/// Epsilon join: every (a, b) with a in A, b in B, dist(a, b) <= eps.
/// Both datasets must share the same dimensionality.
GpuJoinResult gpu_join(const Dataset& queries, const Dataset& data,
                       double eps, GpuJoinOptions opt = {});

}  // namespace sj
