// Asynchronous batch pipeline — the Section V-A batching scheme
// restructured into three overlapped stages.
//
// The original Batcher ran kernel batches round by round with a barrier
// before every overflow retry, and appended results to the final set from
// whichever stream finished first. This file is the reusable replacement:
//
//   [bounded task queue] -> kernel workers (stream pool: per-batch kernel,
//   device key/value sort, async device->host transfer, double-buffered)
//   -> [bounded assembly queue] -> host assembly threads (merge segments
//   by batch key)
//
// A batch whose result buffer overflows is split in two and fed back into
// the SAME task queue — no barrier: the other streams keep executing
// while the halves are retried. The final output is deterministic no
// matter how streams and assembly threads interleave: batches own
// disjoint query-id sets, every segment is device-sorted before transfer,
// and segments are concatenated in ascending order of each batch's first
// query id.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/batcher.hpp"
#include "core/device_view.hpp"
#include "core/work_counters.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/device.hpp"

namespace sj {

struct CellAdjacency;  // kernels.hpp
struct JoinAdjacency;  // kernels.hpp

/// Bounded MPMC queue connecting pipeline stages. push() blocks while the
/// queue is full — backpressure on the seeding producer. push_overflow()
/// never blocks: the overflow-split feedback path pushes from the same
/// worker threads that pop, and blocking there could deadlock with every
/// worker waiting for queue space that only workers can free.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(std::max<std::size_t>(capacity, 1)) {}

  void push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      space_cv_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      if (closed_) return;  // shutting down; the item is dropped
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
  }

  void push_overflow(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return;
      items_.push_back(std::move(item));
    }
    item_cv_.notify_one();
  }

  /// Blocks until an item is available or the queue is closed; returns
  /// false only when closed AND drained.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    item_cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    space_cv_.notify_one();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    item_cv_.notify_all();
    space_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable item_cv_;
  std::condition_variable space_cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// Device allocations one pipeline stream worker holds: two double-
/// buffered slots, each a result buffer plus the O(n) sort scratch.
/// size_buffer_pairs() (batcher.hpp) divides free device memory by this.
inline constexpr std::uint64_t kDeviceBuffersPerStream = 4;

/// Recycled host-side staging buffers for completed batch segments.
/// Allocating a fresh std::vector<Pair> per segment value-initialises it —
/// a full O(result) zero-fill immediately overwritten by the device->host
/// transfer — and churns the allocator on every batch. The pool hands out
/// UNINITIALISED storage (cudaMallocHost semantics) and takes segments
/// back after the final concatenation, so repeated runs on the same
/// pipeline (and overflow-heavy runs) reuse the same allocations.
class SegmentPool {
 public:
  struct Buffer {
    std::unique_ptr<Pair[]> data;
    std::uint64_t capacity = 0;
    std::uint64_t count = 0;  ///< pairs actually staged (<= capacity)
  };

  /// A buffer with capacity >= `count` and undefined contents; `count` of
  /// 0 returns an empty buffer without touching the pool.
  Buffer acquire(std::uint64_t count);

  /// Return a buffer for reuse (empty buffers are dropped).
  void release(Buffer b);

 private:
  std::mutex mu_;
  std::vector<Buffer> free_;
};

struct PipelineConfig {
  int streams = 3;           ///< kernel-stage workers, one gpu::Stream each
  int assembly_threads = 1;  ///< host-side merge workers
  int block_size = 256;
  std::size_t task_queue_capacity = 0;  ///< 0 -> 2 * streams
  RetryPolicy retry;  ///< transient-fault response (batcher.hpp)
  int device_id = -1;  ///< simulated device id (gpu_shard); -1 = unsharded
};

/// Rebuild `e` with `context + ": "` prefixed to its message, preserving
/// the sj::fault taxonomy type (and DeviceOutOfMemory's byte counts /
/// DeviceLost's device id) so callers can still dispatch on it. Unknown
/// exception types degrade to std::runtime_error. Shared by the pipeline
/// (batch context) and the shard engine (shard context — annotations
/// compose, shard prefix outermost).
std::exception_ptr annotate_exception(std::exception_ptr e,
                                      const std::string& context);

/// The three-stage pipeline. Construct one per join run; run() spins up
/// the worker and assembly threads, executes the plan, and joins them.
class BatchPipeline {
 public:
  BatchPipeline(gpu::GlobalMemoryArena& arena, const gpu::DeviceSpec& spec,
                const PipelineConfig& config);

  /// Execute the full self-join over `grid` according to `plan`. Exact:
  /// overflowed batches are split and retried through the same queue;
  /// throws gpu::DeviceOutOfMemory when a single point's neighbourhood
  /// exceeds the buffer (unsplittable).
  ResultSet run(const GridDeviceView& grid, bool unicomp,
                const BatchPlan& plan, AtomicWork* work, BatchRunStats* stats);

  /// Mode-aware variants (see ResultRequest); the ResultSet-returning
  /// overloads above and below are the kPairs special case.
  PipelineOutput run(const ResultRequest& req, const GridDeviceView& grid,
                     bool unicomp, const BatchPlan& plan, AtomicWork* work,
                     BatchRunStats* stats);
  PipelineOutput run_cells(const ResultRequest& req,
                           const GridDeviceView& grid, bool unicomp,
                           const CellBatchPlan& plan,
                           const CellAdjacency* adjacency, AtomicWork* work,
                           BatchRunStats* stats);
  PipelineOutput run_join_groups(const ResultRequest& req,
                                 const GridDeviceView& grid,
                                 const CellBatchPlan& plan,
                                 const JoinAdjacency& adjacency,
                                 AtomicWork* work, BatchRunStats* stats);

  /// Cell-centric variant: `grid` must be cell-major and batches are the
  /// plan's contiguous cell ranges, executed by the cell-centric kernel
  /// through the same three-stage machinery. `adjacency` (from
  /// build_cell_adjacency) supplies the precomputed candidate ranges;
  /// when null each launch enumerates them inline. Overflowed batches
  /// split by cells first, then by point subranges of a single oversized
  /// cell, so the unsplittable-overflow condition is the same as run()'s:
  /// one point's neighbourhood exceeding the buffer.
  ResultSet run_cells(const GridDeviceView& grid, bool unicomp,
                      const CellBatchPlan& plan,
                      const CellAdjacency* adjacency, AtomicWork* work,
                      BatchRunStats* stats);

  /// Query/data-join variant over a cell-major data grid with an external
  /// query set (grid.qpoints): batches are the plan's contiguous QUERY
  /// GROUP ranges (queries sharing a data-grid home cell, see
  /// build_join_adjacency), executed by the cell-centric join kernel.
  /// Overflowed batches split by groups, then by query subranges of a
  /// single oversized group — the fatal condition is one QUERY's
  /// neighbourhood exceeding the buffer, as in run().
  ResultSet run_join_groups(const GridDeviceView& grid,
                            const CellBatchPlan& plan,
                            const JoinAdjacency& adjacency, AtomicWork* work,
                            BatchRunStats* stats);

 private:
  template <typename Mode>
  PipelineOutput run_impl(const Mode& mode, std::size_t num_roots,
                          std::uint64_t buffer_pairs,
                          const ResultRequest& req, AtomicWork* work,
                          BatchRunStats* stats);

  gpu::GlobalMemoryArena& arena_;
  gpu::DeviceSpec spec_;
  PipelineConfig config_;
  SegmentPool pool_;
  /// 1-based batch start ordinal, cumulative over every run on this
  /// pipeline — the trigger for targeted `device:shard<S>@batch<B>` loss
  /// injection. A pipeline re-armed across many chunklets (gpu_shard's
  /// stealing scheduler) counts the DEVICE's batches, not one chunklet's,
  /// matching the spec grammar's per-device wording.
  std::atomic<std::uint64_t> batch_ordinal_{0};
};

}  // namespace sj
