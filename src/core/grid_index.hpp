// The paper's GPU-efficient grid index (Section IV).
//
// The space is overlaid with an n-dimensional grid of cells of side eps
// (the query distance), extended by eps on each side to avoid boundary
// conditions. Only NON-EMPTY cells are stored (Section IV-B), making the
// space complexity O(|D|) regardless of the hypervolume:
//
//   B — sorted array of the linearised ids of the non-empty cells; cell
//       existence is decided by binary search (Section IV-D).
//   G — for each non-empty cell C_h, the inclusive range
//       [Amin_h, Amax_h] of its points inside A.
//   A — lookup array mapping those ranges to point ids; |A| = |D|.
//   M_j — per-dimension masking arrays holding the cell coordinates that
//       are non-empty in dimension j, used to filter the adjacent-cell
//       ranges O_j before any binary search of B.
#pragma once

#include <cstdint>
#include <vector>

#include "common/dataset.hpp"

namespace sj {

/// Row-major linearisation of n-dimensional cell coordinates. The single
/// implementation shared by the host index and the device view
/// (GridDeviceView), so the two layouts cannot drift.
inline std::uint64_t linearize_cell(const std::uint32_t* coords,
                                    const std::uint64_t* stride, int dim) {
  std::uint64_t id = 0;
  for (int j = 0; j < dim; ++j) {
    id += static_cast<std::uint64_t>(coords[j]) * stride[j];
  }
  return id;
}

class GridIndex {
 public:
  /// Inclusive range [min, max] into A for one non-empty cell (the
  /// paper's [Amin_h, Amax_h]).
  struct CellRange {
    std::uint32_t min;
    std::uint32_t max;
  };

  GridIndex() = default;

  /// Build the index over `d` with cell width eps. For eps == 0 (a legal
  /// query asking for co-located points) a unit cell width is used — the
  /// search is correct for any cell width >= eps.
  GridIndex(const Dataset& d, double eps);

  /// The serialisable fields of an index — what a snapshot persists and
  /// what from_parts() reconstructs without re-binning or re-sorting.
  struct Parts {
    int dim = 0;
    double eps = 0.0;
    double width = 0.0;
    double gmin[kMaxDims] = {};
    double gmax[kMaxDims] = {};
    std::uint32_t cells_per_dim[kMaxDims] = {};
    std::uint64_t stride[kMaxDims] = {};
    std::vector<std::uint64_t> B;
    std::vector<CellRange> G;
    std::vector<std::uint32_t> A;
    std::vector<std::uint32_t> M[kMaxDims];
  };

  /// Copy of this index's fields (snapshot save path).
  Parts to_parts() const;

  /// Rebuild an index from serialised parts in O(copy) — the snapshot
  /// restore path that skips the radix-sort binning. ALWAYS runs the
  /// deep structural validator against `d` (core/validate.hpp), not just
  /// under contracts: the parts come from disk, and a checksum only
  /// protects against torn bytes, not against a stale or hand-edited
  /// snapshot disagreeing with the dataset. Throws on any mismatch.
  static GridIndex from_parts(Parts parts, const Dataset& d);

  int dim() const { return dim_; }
  double eps() const { return eps_; }
  double cell_width() const { return width_; }
  std::size_t num_points() const { return A_.size(); }
  std::size_t num_nonempty_cells() const { return B_.size(); }

  double gmin(int j) const { return gmin_[j]; }
  double gmax(int j) const { return gmax_[j]; }
  std::uint32_t cells_in_dim(int j) const { return cells_per_dim_[j]; }
  std::uint64_t stride(int j) const { return stride_[j]; }

  /// Total cells of the full (mostly empty) grid — the intractable count
  /// the paper avoids storing. Saturates at UINT64_MAX.
  std::uint64_t total_cells() const;

  const std::vector<std::uint64_t>& B() const { return B_; }
  const std::vector<CellRange>& G() const { return G_; }
  const std::vector<std::uint32_t>& A() const { return A_; }
  const std::vector<std::uint32_t>& mask(int j) const { return M_[j]; }

  /// Grid coordinates of a point (clamped into the grid).
  void cell_coords(const double* pt, std::uint32_t* out) const;

  /// Row-major linearisation of n-dimensional cell coordinates.
  std::uint64_t linearize(const std::uint32_t* coords) const;

  /// Index into G()/B() of the cell with this linear id, or -1 when the
  /// cell is empty (binary search of B, Section IV-D).
  std::int64_t find_cell(std::uint64_t linear_id) const;

  /// The filtered adjacent coordinates in dimension j of a cell at
  /// coordinate cj: the elements of {cj-1, cj, cj+1} that are present in
  /// the masking array M_j (the paper's O_j intersect M_j). Writes at most
  /// 3 values to `out`; returns how many.
  int filtered_adjacent(int j, std::uint32_t cj, std::uint32_t out[3]) const;

  /// Host-side range query: ids of all points of `d` (the dataset this
  /// index was built over) within `eps` of `center`. Requires
  /// eps <= cell_width() — the adjacent-cell search bound. Appends to
  /// `out`.
  void range_query(const Dataset& d, const double* center, double eps,
                   std::vector<std::uint32_t>& out) const;

 private:
  int dim_ = 0;
  double eps_ = 0.0;
  double width_ = 0.0;
  double gmin_[kMaxDims] = {};
  double gmax_[kMaxDims] = {};
  std::uint32_t cells_per_dim_[kMaxDims] = {};
  std::uint64_t stride_[kMaxDims] = {};
  std::vector<std::uint64_t> B_;
  std::vector<CellRange> G_;
  std::vector<std::uint32_t> A_;
  std::vector<std::uint32_t> M_[kMaxDims];
};

}  // namespace sj
