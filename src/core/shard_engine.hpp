// gpu_shard: the paper's grid join scaled out across K simulated devices.
//
// The single-GPU engines are saturated by the cell-major layout; the next
// hardware axis is scale-out. ShardedGpuSelfJoin partitions the non-empty
// cells of the cell-major grid into K contiguous cell ranges (shard
// boundaries placed by the plan_cell_batches work weights, so skewed
// IPPP-style data balances), gives each shard its OWN simulated device —
// a gpu::GlobalMemoryArena of the full DeviceSpec plus a BatchPipeline
// with its own stream pool — and uploads to each device only its owned
// slots plus the one-cell halo of neighbour data its kernels read
// (derived from the precomputed adjacency, see shard_plan.hpp).
//
// Ownership rule: the cell-centric kernel emits a pair only from the scan
// of the pair's home cell, and every cell is owned by exactly one shard —
// so shard results are disjoint by construction, need no dedup pass, and
// concatenate in deterministic shard-key order (each shard's own output
// is already deterministic through the pipeline's batch-keyed merge).
// The result is byte-identical to the single-device engines'.
//
// sharded_join() runs the query/data join through the same machinery:
// the sharded units are the query GROUPS of build_join_adjacency (each
// group owned by one shard), and a shard's data slice is exactly the
// slots its groups' candidate ranges reference.
//
// Work distribution is OVER-DECOMPOSED: instead of one slice per device,
// plan_chunklets splits the cell range into M >> K contiguous chunklets
// (default ~12 per device, knob chunklets=), each carrying its own owned
// span, halo intervals and local remap exactly as a PR-5 shard did. A
// shared chunklet scheduler seeds per-device deques with contiguous
// chunklet groups by the static weighted plan, and a device that drains
// its own deque STEALS whole chunklets from the most-loaded victim — the
// ownership rule makes any cell-to-device assignment exact, so stealing
// needs no dedup and the merge stays deterministic by sorting on the
// chunklet index (ascending first-slot key), byte-identical to `gpu`
// regardless of which device ran what. Devices re-arm one arena and one
// BatchPipeline across their chunklets instead of rebuilding per slice.
//
// One host core serialises the simulated devices, so wall-clock alone
// cannot show scale-out. Each device therefore measures its own busy
// time, and the stats report the modelled multi-device MAKESPAN (common
// host phases + the busiest device) next to the true wall time — the
// same modelling stance as the PCIe transfer model. schedule=steal (alias
// serial) drives the devices in virtual time — each chunklet runs alone
// on the host core and its busy seconds advance its device's clock; the
// device with the earliest clock (i.e. the first to go idle) takes the
// next chunklet, stealing when its own deque is dry — giving clean
// deterministic makespans (what the ablation uses). schedule=static is
// the same drive with stealing off (the PR-5 plan, the ablation's
// baseline column). schedule=concurrent (the default) overlaps the
// devices on real host threads with real-idleness stealing, which is
// also what the ThreadSanitizer job exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "core/join.hpp"
#include "core/self_join.hpp"

namespace sj {

/// How the K device pipelines are driven on the host.
enum class ShardSchedule {
  kConcurrent,  ///< one host thread per device, real-idleness stealing
  kSerial,      ///< virtual-time serial drive WITH stealing (schedule=steal;
                ///< "serial" is the legacy spelling) — clean makespans
  kStatic       ///< virtual-time serial drive, stealing OFF (the PR-5
                ///< static plan, the ablation baseline)
};

/// Where the chunklet weights come from.
enum class ShardPlanMode {
  kProxy,    ///< population-window proxy (cheap boundary pass, default)
  kMeasured  ///< per-cell pair counts from a prior run via plan_cache=
};

struct ShardedSelfJoinOptions : GpuSelfJoinOptions {
  /// Simulated devices; clamped to the number of non-empty cells (query
  /// groups for the join facet).
  int shards = 4;
  /// Host assembly workers per shard pipeline.
  int assembly_threads = 1;
  ShardSchedule schedule = ShardSchedule::kConcurrent;
  /// Over-decomposition degree M (contiguous cell-range chunklets fed to
  /// the stealing scheduler); 0 = kChunkletsPerDevice * shards. Clamped
  /// into [devices, non-empty cells].
  int chunklets = 0;
  /// Chunklet weight source; kMeasured falls back to the proxy when
  /// plan_cache is unset, missing, or keyed to a different join.
  ShardPlanMode plan = ShardPlanMode::kProxy;
  /// Path persisting per-cell pair counts across runs (plan=measured
  /// reads it; every sharded self-join run writes it when set).
  std::string plan_cache;
};

/// Per-device execution record — the balance data sjtool --stats prints.
/// One row per device SLOT (the logical device; `device` names the
/// physical device that ended up serving it after any failover),
/// aggregated over every chunklet the device ran, stolen ones included.
struct ShardStats {
  std::uint32_t units = 0;          ///< cells (query groups) this device ran
  std::uint64_t weight = 0;         ///< summed planner weight it ran
  std::uint64_t owned_points = 0;   ///< slots owned by its chunklets
  std::uint64_t halo_points = 0;    ///< neighbour slots replicated to it
  std::uint64_t pairs = 0;          ///< pairs this device emitted
  std::uint64_t chunklets = 0;      ///< chunklets it executed in total
  std::uint64_t stolen = 0;         ///< of those, stolen from other deques
  double steal_seconds = 0.0;       ///< busy time spent on stolen chunklets
  double seconds = 0.0;             ///< device busy time (slice, upload,
                                    ///< plan, pipeline)
  int device = -1;                  ///< physical device that served the slot
                                    ///< (== the slot index unless failed
                                    ///< over)
  bool failed_over = false;         ///< re-homed onto a surviving device
  BatchRunStats batch;
};

struct ShardedRunStats {
  std::size_t shards = 0;  ///< effective device count after clamping
  std::size_t chunklets_total = 0;   ///< over-decomposition degree M
  std::size_t chunklets_stolen = 0;  ///< chunklets run off a foreign deque
  /// True when plan=measured actually used cached per-cell counts (false
  /// on a cache miss, which falls back to the proxy weights).
  bool measured_plan = false;
  /// Unsharded host work: index build, cell-major staging, chunklet
  /// planning, and the shared once-per-join result-size estimate.
  double common_seconds = 0.0;
  /// Modelled K-device response time: common_seconds + the busiest
  /// device's clock. Meaningful under the virtual-time serial drives
  /// (schedule=steal/static), where chunklet busy times do not contend
  /// for the host core.
  double makespan_seconds = 0.0;
  double busy_sum_seconds = 0.0;  ///< total device busy time
  /// Device slots whose physical device died (fault::DeviceLost) and that
  /// were re-homed onto a surviving device — fresh arena, fresh pipeline;
  /// the in-flight chunklet re-runs and the slot's queued chunklets drain
  /// on the replacement, output byte-identical to the fault-free run
  /// (ownership rule: re-execution is exact and dedup-free).
  std::size_t shards_failed_over = 0;
  double recovery_seconds = 0.0;  ///< busy time spent on failover re-runs
  std::vector<ShardStats> per_shard;
};

struct ShardedSelfJoinResult {
  ResultSet pairs;
  /// Exact pair count in every result mode; per-point histogram (original
  /// ids — shards are disjoint, so the per-shard histograms sum) only in
  /// kHistogram. Mode kSink is NOT supported by the sharded engines: the
  /// shard pipelines run concurrently, so streaming batches in the global
  /// deterministic order would serialise the devices.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  SelfJoinStats stats;  ///< aggregate, same shape as the other engines
  ShardedRunStats shard;
};

class ShardedGpuSelfJoin {
 public:
  explicit ShardedGpuSelfJoin(ShardedSelfJoinOptions opt = {});

  /// Compute the full self-join of `d` with distance threshold eps >= 0.
  ShardedSelfJoinResult run(const Dataset& d, double eps) const;

  const ShardedSelfJoinOptions& options() const { return opt_; }

 private:
  ShardedSelfJoinOptions opt_;
};

struct ShardedJoinResult {
  /// Pairs are (query index, data index), as in gpu_join.
  ResultSet pairs;
  /// As in ShardedSelfJoinResult; histogram keys are query indices.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  GpuJoinStats stats;
  ShardedRunStats shard;
};

/// Epsilon join of `queries` against grid-indexed `data` across K
/// simulated devices (query groups sharded; each shard's data slice is
/// the slots its groups reference).
ShardedJoinResult sharded_join(const Dataset& queries, const Dataset& data,
                               double eps, const ShardedSelfJoinOptions& opt);

}  // namespace sj
