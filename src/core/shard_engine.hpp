// gpu_shard: the paper's grid join scaled out across K simulated devices.
//
// The single-GPU engines are saturated by the cell-major layout; the next
// hardware axis is scale-out. ShardedGpuSelfJoin partitions the non-empty
// cells of the cell-major grid into K contiguous cell ranges (shard
// boundaries placed by the plan_cell_batches work weights, so skewed
// IPPP-style data balances), gives each shard its OWN simulated device —
// a gpu::GlobalMemoryArena of the full DeviceSpec plus a BatchPipeline
// with its own stream pool — and uploads to each device only its owned
// slots plus the one-cell halo of neighbour data its kernels read
// (derived from the precomputed adjacency, see shard_plan.hpp).
//
// Ownership rule: the cell-centric kernel emits a pair only from the scan
// of the pair's home cell, and every cell is owned by exactly one shard —
// so shard results are disjoint by construction, need no dedup pass, and
// concatenate in deterministic shard-key order (each shard's own output
// is already deterministic through the pipeline's batch-keyed merge).
// The result is byte-identical to the single-device engines'.
//
// sharded_join() runs the query/data join through the same machinery:
// the sharded units are the query GROUPS of build_join_adjacency (each
// group owned by one shard), and a shard's data slice is exactly the
// slots its groups' candidate ranges reference.
//
// One host core serialises the simulated devices, so wall-clock alone
// cannot show scale-out. Each shard therefore measures its own device
// busy time, and the stats report the modelled multi-device MAKESPAN
// (common host phases + the slowest shard) next to the true wall time —
// the same modelling stance as the PCIe transfer model. schedule=serial
// runs the shards back to back for clean per-device timings (what the
// ablation uses); schedule=concurrent (the default) overlaps them on
// host threads, which is also what the ThreadSanitizer job exercises.
#pragma once

#include <cstdint>
#include <vector>

#include "core/join.hpp"
#include "core/self_join.hpp"

namespace sj {

/// How the K shard pipelines are driven on the host.
enum class ShardSchedule {
  kConcurrent,  ///< one host thread per shard (overlapped pipelines)
  kSerial       ///< back to back (clean per-device busy timings)
};

struct ShardedSelfJoinOptions : GpuSelfJoinOptions {
  /// Simulated devices; clamped to the number of non-empty cells (query
  /// groups for the join facet).
  int shards = 4;
  /// Host assembly workers per shard pipeline.
  int assembly_threads = 1;
  ShardSchedule schedule = ShardSchedule::kConcurrent;
};

/// Per-device execution record — the balance data sjtool --stats prints.
struct ShardStats {
  std::uint32_t units = 0;          ///< owned cells (or query groups)
  std::uint64_t weight = 0;         ///< summed planner work weight
  std::uint64_t owned_points = 0;   ///< slots owned by this shard
  std::uint64_t halo_points = 0;    ///< neighbour slots replicated here
  std::uint64_t pairs = 0;          ///< pairs this shard emitted
  double seconds = 0.0;             ///< device busy time (slice, upload,
                                    ///< plan, pipeline)
  int device = -1;                  ///< device that ran the shard (== the
                                    ///< shard index unless failed over)
  bool failed_over = false;         ///< re-planned onto a surviving device
  BatchRunStats batch;
};

struct ShardedRunStats {
  std::size_t shards = 0;  ///< effective device count after clamping
  /// Unsharded host work: index build, cell-major staging, adjacency
  /// resolution, global estimate, shard boundary planning.
  double common_seconds = 0.0;
  /// Modelled K-device response time: common_seconds + the slowest
  /// shard's busy time. Meaningful under ShardSchedule::kSerial, where
  /// shard busy times do not contend for the host core.
  double makespan_seconds = 0.0;
  double busy_sum_seconds = 0.0;  ///< total device busy time
  /// Shards whose device died (fault::DeviceLost) and that were re-planned
  /// onto a surviving device — fresh arena, fresh pipeline, output
  /// byte-identical to the fault-free run (ownership rule: re-execution is
  /// exact and dedup-free).
  std::size_t shards_failed_over = 0;
  double recovery_seconds = 0.0;  ///< busy time spent on failover re-runs
  std::vector<ShardStats> per_shard;
};

struct ShardedSelfJoinResult {
  ResultSet pairs;
  /// Exact pair count in every result mode; per-point histogram (original
  /// ids — shards are disjoint, so the per-shard histograms sum) only in
  /// kHistogram. Mode kSink is NOT supported by the sharded engines: the
  /// shard pipelines run concurrently, so streaming batches in the global
  /// deterministic order would serialise the devices.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  SelfJoinStats stats;  ///< aggregate, same shape as the other engines
  ShardedRunStats shard;
};

class ShardedGpuSelfJoin {
 public:
  explicit ShardedGpuSelfJoin(ShardedSelfJoinOptions opt = {});

  /// Compute the full self-join of `d` with distance threshold eps >= 0.
  ShardedSelfJoinResult run(const Dataset& d, double eps) const;

  const ShardedSelfJoinOptions& options() const { return opt_; }

 private:
  ShardedSelfJoinOptions opt_;
};

struct ShardedJoinResult {
  /// Pairs are (query index, data index), as in gpu_join.
  ResultSet pairs;
  /// As in ShardedSelfJoinResult; histogram keys are query indices.
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  GpuJoinStats stats;
  ShardedRunStats shard;
};

/// Epsilon join of `queries` against grid-indexed `data` across K
/// simulated devices (query groups sharded; each shard's data slice is
/// the slots its groups reference).
ShardedJoinResult sharded_join(const Dataset& queries, const Dataset& data,
                               double eps, const ShardedSelfJoinOptions& opt);

}  // namespace sj
