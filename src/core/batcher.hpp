// The batching scheme (Section V-A).
//
// Low-dimensional self-joins produce result sets that can exceed the
// GPU's global memory; the total result size is estimated up front, the
// query points are split into >= 3 batches (the paper's minimum), and the
// batches are pipelined over multiple streams so kernel execution overlaps
// with bidirectional host-GPU transfers. A batch whose result overflows
// its buffer (the estimate is only an estimate) is split in two and
// retried — the scheme is exact, not best-effort.
//
// The execution machinery lives in batch_pipeline.hpp: a three-stage
// pipeline (task queue -> stream pool -> host assembly) with
// deterministic, batch-keyed result order. Batcher is the serial-friendly
// facade over it that GpuSelfJoin and the query/data join use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancel.hpp"
#include "common/result.hpp"
#include "core/device_view.hpp"
#include "core/work_counters.hpp"
#include "gpusim/arena.hpp"
#include "gpusim/device.hpp"

namespace sj {

struct CellAdjacency;  // kernels.hpp
struct JoinAdjacency;  // kernels.hpp

struct BatchPlan {
  std::size_t num_batches = 0;
  std::uint64_t buffer_pairs = 0;  // per-stream result buffer capacity
};

/// Size the batches: num_batches = max(min_batches,
/// ceil(estimated_total * safety / buffer_pairs)).
BatchPlan plan_batches(std::uint64_t estimated_total, std::uint64_t n_queries,
                       std::size_t min_batches, std::uint64_t buffer_pairs,
                       double safety);

/// Batch plan for the cell-centric kernel: batch b covers the non-empty
/// cells [boundaries[b], boundaries[b+1]). Contiguous cell ranges keep
/// every batch's point slots contiguous, which preserves the
/// deterministic first-slot merge key.
struct CellBatchPlan {
  std::vector<std::uint32_t> boundaries;  // size num_batches + 1
  std::uint64_t buffer_pairs = 0;

  std::size_t num_batches() const {
    return boundaries.empty() ? 0 : boundaries.size() - 1;
  }
};

/// Place `parts` contiguous boundaries over `weights` so each part takes
/// at least one entry and carries an approximately equal share of the
/// total weight. Returns parts + 1 boundaries (boundaries[p] ..
/// boundaries[p+1] is part p); `parts` must be in [1, weights.size()].
/// The balance rule shared by plan_cell_batches (batch volume balance)
/// and the gpu_shard planner (per-device work balance).
std::vector<std::uint32_t> weighted_partition(
    const std::vector<std::uint64_t>& weights, std::size_t parts);

/// Partition the non-empty cells into contiguous, WORK-BALANCED batches:
/// the batch count follows the plan_batches() volume rule (capped by the
/// cell count), and boundaries are placed so each batch carries an
/// approximately equal share of `cell_weights` (per_cell_candidates) —
/// the fix for load skew on clustered data, where uniform-cardinality
/// batches put most of the result volume into a handful of batches.
CellBatchPlan plan_cell_batches(const std::vector<std::uint64_t>& cell_weights,
                                std::uint64_t estimated_total,
                                std::size_t min_batches,
                                std::uint64_t buffer_pairs, double safety);

/// Size the per-stream result buffers within the device's free memory
/// (keeping room for the per-batch query-id uploads and accounting for
/// the pipeline's double-buffered slots), capped by `max_buffer_pairs`
/// and by what one batch is expected to produce. Shared by the self-join,
/// the query/data join and the async engine.
std::uint64_t size_buffer_pairs(const gpu::GlobalMemoryArena& arena,
                                std::uint64_t n_queries,
                                std::uint64_t estimated_total,
                                std::size_t min_batches, int num_streams,
                                std::uint64_t max_buffer_pairs, double safety);

/// What a pipeline/batcher run should materialise (ResultMode,
/// common/result.hpp).
///
///   kPairs     — the full ResultSet, as before.
///   kCountOnly — total pair count only: no result buffers, no device
///                sort, no transfers, no assembly stage.
///   kHistogram — per-key neighbour counts into one O(n) device array
///                (`histogram_keys` entries, keys as emitted by the
///                kernel: original ids for the self-join, query indices
///                for the join); same short-circuits as kCountOnly.
///   kSink      — identical kernel/sort/transfer path to kPairs, but
///                completed segments are streamed through `sink` in
///                ascending batch order AS SOON AS the order is settled
///                (a watermark over the outstanding batch keys) instead
///                of being concatenated — peak host memory drops from
///                O(pairs) to O(in-flight batches). The callback is
///                invoked serially; the concatenation of its batches is
///                byte-identical to the kPairs output.
struct ResultRequest {
  ResultMode mode = ResultMode::kPairs;
  PairSink sink;                     ///< consumer for kSink
  std::uint64_t histogram_keys = 0;  ///< key-space size for kHistogram

  /// Optional deadline/cancellation control (common/cancel.hpp),
  /// non-owning. The pipeline polls it at its checkpoint seams (task
  /// pop, pre-launch, pre-transfer); a tripped control aborts the run
  /// with the typed exec:: error through the normal drain path.
  const exec::ExecControl* control = nullptr;
};

/// What a pipeline/batcher run produced: `total_pairs` is exact in every
/// mode; `pairs` is non-empty only for kPairs, `histogram` only for
/// kHistogram.
struct PipelineOutput {
  ResultSet pairs;
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
};

struct BatchRunStats {
  std::size_t batches_run = 0;       // including overflow retries
  std::size_t overflow_retries = 0;  // batches that had to be split
  std::size_t retries = 0;           // batches re-run after transient faults
  std::size_t batches_split_on_oom = 0;  // halved after ResourceExhausted
  double kernel_seconds = 0.0;       // summed kernel wall-clock
  double sort_seconds = 0.0;         // per-batch key/value sorts
  double assembly_seconds = 0.0;     // host-side segment merging
  std::uint64_t bytes_to_host = 0;   // result transfer volume
  double modeled_transfer_seconds = 0.0;  // bytes / PCIe bandwidth
};

/// How the pipeline responds to fault::TransientDeviceError: re-run the
/// batch up to `retries` times with exponential backoff starting at
/// `backoff_ms` (doubling per attempt, capped at 32x). Retries never
/// change output — failed operations have no side effects (the injection
/// hooks and the gpusim seams fail BEFORE mutating anything) and the
/// assembly merge is keyed, not arrival-ordered.
struct RetryPolicy {
  int retries = 6;          ///< max re-runs per batch (0 = fail fast)
  double backoff_ms = 0.5;  ///< initial backoff; doubles per attempt
};

class Batcher {
 public:
  Batcher(gpu::GlobalMemoryArena& arena, const gpu::DeviceSpec& spec,
          int num_streams, int block_size, RetryPolicy retry = {});

  /// Execute the full self-join over all of `grid`'s points according to
  /// `plan`, returning the complete result set. Result order is
  /// deterministic (segments merged by batch key) regardless of the
  /// stream count or scheduling.
  ResultSet run(const GridDeviceView& grid, bool unicomp,
                const BatchPlan& plan, AtomicWork* work, BatchRunStats* stats);

  /// Cell-centric variant over a cell-major grid: batches are the plan's
  /// cell ranges, executed by the cell-centric kernel over the
  /// precomputed `adjacency` (nullable — launches then enumerate inline).
  /// Same exactness and determinism guarantees as run().
  ResultSet run_cells(const GridDeviceView& grid, bool unicomp,
                      const CellBatchPlan& plan,
                      const CellAdjacency* adjacency, AtomicWork* work,
                      BatchRunStats* stats);

  /// Query/data-join variant over a cell-major data grid: batches are the
  /// plan's query-group ranges (see build_join_adjacency). Same exactness
  /// and determinism guarantees as run().
  ResultSet run_join_groups(const GridDeviceView& grid,
                            const CellBatchPlan& plan,
                            const JoinAdjacency& adjacency, AtomicWork* work,
                            BatchRunStats* stats);

  /// Mode-aware variants (see ResultRequest); the ResultSet-returning
  /// entry points above are the kPairs special case.
  PipelineOutput run(const ResultRequest& req, const GridDeviceView& grid,
                     bool unicomp, const BatchPlan& plan, AtomicWork* work,
                     BatchRunStats* stats);
  PipelineOutput run_cells(const ResultRequest& req,
                           const GridDeviceView& grid, bool unicomp,
                           const CellBatchPlan& plan,
                           const CellAdjacency* adjacency, AtomicWork* work,
                           BatchRunStats* stats);
  PipelineOutput run_join_groups(const ResultRequest& req,
                                 const GridDeviceView& grid,
                                 const CellBatchPlan& plan,
                                 const JoinAdjacency& adjacency,
                                 AtomicWork* work, BatchRunStats* stats);

 private:
  gpu::GlobalMemoryArena& arena_;
  gpu::DeviceSpec spec_;
  int num_streams_;
  int block_size_;
  RetryPolicy retry_;
};

}  // namespace sj
