// Result-set size estimator for the batching scheme (Section V-A).
//
// Before any result buffer is sized, a count-only pass of the self-join
// kernel runs over a sample of the points; the sampled neighbour count is
// scaled to the full dataset. Following the approach of Gowanlock et al.
// 2017 [29], which the paper leverages for its batching scheme.
#pragma once

#include <cstdint>
#include <vector>

#include "core/device_view.hpp"

namespace sj {

struct EstimateResult {
  std::uint64_t estimated_total = 0;  // estimated pairs for the full join
  std::uint64_t sample_size = 0;      // points actually sampled
  std::uint64_t sample_count = 0;     // pairs counted over the sample
  double seconds = 0.0;
};

/// Estimate the total number of result pairs the kernel would emit over
/// all points (in the given unicomp mode — UNICOMP emits two pairs per
/// neighbour-cell find, so its totals match its own output volume).
/// `sample_rate` in (0, 1]; at least min_sample points (or all of them)
/// are evaluated.
EstimateResult estimate_result_size(const GridDeviceView& grid, bool unicomp,
                                    double sample_rate, int block_size,
                                    std::uint64_t min_sample = 1024);

/// estimate_result_size restricted to the `count` queries starting at
/// position `first` — of the identity id sequence when `order` is null,
/// or of the given query-id array otherwise. The estimate is scaled to
/// those `count` queries' emission only. This is gpu_shard's per-device
/// estimator: each shard sizes its buffers from a sample of its OWN
/// queries (owned slots, or its query groups' sorted order), so the
/// sampling pass distributes across devices instead of running as one
/// unsharded prefix.
EstimateResult estimate_query_span(const GridDeviceView& grid, bool unicomp,
                                   double sample_rate, int block_size,
                                   const std::uint32_t* order,
                                   std::uint64_t first, std::uint64_t count,
                                   std::uint64_t min_sample = 1024);

/// Per-cell work estimates for the cell-centric batch planner: for every
/// non-empty cell, the number of candidate pairs the cell-centric kernel
/// will evaluate (cell population x adjacent population, UNICOMP
/// neighbour finds counted twice). A count-only planning pass — no
/// distance calculations — costing one adjacency enumeration per CELL
/// rather than per point. Relative weights drive the batch partition,
/// which is what fixes load skew on clustered data. (The join engines get
/// the same weights from build_cell_adjacency and keep the range lists.)
std::vector<std::uint64_t> per_cell_candidates(const GridDeviceView& grid,
                                               bool unicomp);

}  // namespace sj
