#include "core/batcher.hpp"

#include <algorithm>
#include <cmath>

#include "common/contracts.hpp"
#include "core/batch_pipeline.hpp"

namespace sj {

BatchPlan plan_batches(std::uint64_t estimated_total, std::uint64_t n_queries,
                       std::size_t min_batches, std::uint64_t buffer_pairs,
                       double safety) {
  BatchPlan plan;
  plan.buffer_pairs = std::max<std::uint64_t>(buffer_pairs, 1);
  const auto padded = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(estimated_total) * safety));
  std::size_t by_volume = static_cast<std::size_t>(
      (padded + plan.buffer_pairs - 1) / plan.buffer_pairs);
  plan.num_batches = std::max(min_batches, std::max<std::size_t>(by_volume, 1));
  // Never more batches than queries (each batch needs at least one point).
  if (n_queries > 0) {
    plan.num_batches =
        std::min<std::size_t>(plan.num_batches, static_cast<std::size_t>(n_queries));
  }
  return plan;
}

std::vector<std::uint32_t> weighted_partition(
    const std::vector<std::uint64_t>& weights, std::size_t parts) {
  const std::size_t num_units = weights.size();
  // max_end below underflows if a part cannot take its one guaranteed
  // unit; every caller clamps parts into [1, num_units] first.
  SJ_EXPECT(parts >= 1 && parts <= num_units,
            "weighted_partition: parts must be clamped into [1, num_units]");
  // Weights are per-cell candidate-pair counts and can sum past 64 bits
  // in adversarial cases; accumulate in 128 bits.
  unsigned __int128 total = 0;
  for (const std::uint64_t w : weights) total += w;

  std::vector<std::uint32_t> boundaries;
  boundaries.reserve(parts + 1);
  boundaries.push_back(0);
  std::size_t pos = 0;
  unsigned __int128 cum = 0;
  for (std::size_t b = 0; b + 1 < parts; ++b) {
    // Close part b where the cumulative weight reaches its equal share,
    // taking at least one unit and leaving one for every later part.
    const unsigned __int128 target =
        total * static_cast<unsigned __int128>(b + 1) / parts;
    const std::size_t max_end = num_units - (parts - 1 - b);
    do {
      cum += weights[pos];
      ++pos;
    } while (pos < max_end && cum < target);
    boundaries.push_back(static_cast<std::uint32_t>(pos));
  }
  boundaries.push_back(static_cast<std::uint32_t>(num_units));
  SJ_ENSURE(boundaries.size() == parts + 1 && boundaries.front() == 0 &&
                boundaries.back() == num_units,
            "weighted_partition: boundaries must cover every unit");
  return boundaries;
}

CellBatchPlan plan_cell_batches(const std::vector<std::uint64_t>& cell_weights,
                                std::uint64_t estimated_total,
                                std::size_t min_batches,
                                std::uint64_t buffer_pairs, double safety) {
  CellBatchPlan plan;
  plan.buffer_pairs = std::max<std::uint64_t>(buffer_pairs, 1);
  const std::size_t num_cells = cell_weights.size();
  if (num_cells == 0) return plan;  // no batches

  const auto padded = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(estimated_total) * safety));
  const std::size_t by_volume = static_cast<std::size_t>(
      (padded + plan.buffer_pairs - 1) / plan.buffer_pairs);
  std::size_t nb = std::max(min_batches, std::max<std::size_t>(by_volume, 1));
  // Never more batches than cells (each batch needs at least one cell).
  nb = std::min(nb, num_cells);

  plan.boundaries = weighted_partition(cell_weights, nb);
  SJ_ENSURE(plan.boundaries.size() == nb + 1,
            "plan_cell_batches: one boundary pair per batch");
  return plan;
}

std::uint64_t size_buffer_pairs(const gpu::GlobalMemoryArena& arena,
                                std::uint64_t n_queries,
                                std::uint64_t estimated_total,
                                std::size_t min_batches, int num_streams,
                                std::uint64_t max_buffer_pairs, double safety) {
  // Keep room for the per-batch query-id uploads.
  const std::uint64_t reserve_bytes =
      n_queries * sizeof(std::uint32_t) + (16u << 10);
  const std::uint64_t free_bytes =
      arena.free_bytes() > reserve_bytes ? arena.free_bytes() - reserve_bytes
                                         : 0;
  std::uint64_t buffer_pairs =
      free_bytes /
      (sizeof(Pair) * kDeviceBuffersPerStream *
       static_cast<std::uint64_t>(std::max(1, num_streams)));
  buffer_pairs = std::min(buffer_pairs, max_buffer_pairs);
  // No point allocating beyond what one batch is expected to produce
  // (padded by the safety factor and a floor); the overflow-split path
  // recovers from any underestimate.
  const std::uint64_t desired =
      static_cast<std::uint64_t>(std::ceil(
          static_cast<double>(estimated_total) * safety /
          static_cast<double>(std::max<std::size_t>(min_batches, 1)))) +
      1024;
  buffer_pairs = std::min(buffer_pairs, desired);
  return std::max<std::uint64_t>(buffer_pairs, 64);
}

ResultSet Batcher::run(const GridDeviceView& grid, bool unicomp,
                       const BatchPlan& plan, AtomicWork* work,
                       BatchRunStats* stats) {
  return run(ResultRequest{}, grid, unicomp, plan, work, stats).pairs;
}

PipelineOutput Batcher::run(const ResultRequest& req,
                            const GridDeviceView& grid, bool unicomp,
                            const BatchPlan& plan, AtomicWork* work,
                            BatchRunStats* stats) {
  PipelineConfig config;
  config.streams = std::max(1, num_streams_);
  config.assembly_threads = 1;
  config.block_size = block_size_;
  config.retry = retry_;
  BatchPipeline pipeline(arena_, spec_, config);
  return pipeline.run(req, grid, unicomp, plan, work, stats);
}

ResultSet Batcher::run_cells(const GridDeviceView& grid, bool unicomp,
                             const CellBatchPlan& plan,
                             const CellAdjacency* adjacency, AtomicWork* work,
                             BatchRunStats* stats) {
  return run_cells(ResultRequest{}, grid, unicomp, plan, adjacency, work,
                   stats)
      .pairs;
}

PipelineOutput Batcher::run_cells(const ResultRequest& req,
                                  const GridDeviceView& grid, bool unicomp,
                                  const CellBatchPlan& plan,
                                  const CellAdjacency* adjacency,
                                  AtomicWork* work, BatchRunStats* stats) {
  PipelineConfig config;
  config.streams = std::max(1, num_streams_);
  config.assembly_threads = 1;
  config.block_size = block_size_;
  config.retry = retry_;
  BatchPipeline pipeline(arena_, spec_, config);
  return pipeline.run_cells(req, grid, unicomp, plan, adjacency, work, stats);
}

ResultSet Batcher::run_join_groups(const GridDeviceView& grid,
                                   const CellBatchPlan& plan,
                                   const JoinAdjacency& adjacency,
                                   AtomicWork* work, BatchRunStats* stats) {
  return run_join_groups(ResultRequest{}, grid, plan, adjacency, work, stats)
      .pairs;
}

PipelineOutput Batcher::run_join_groups(const ResultRequest& req,
                                        const GridDeviceView& grid,
                                        const CellBatchPlan& plan,
                                        const JoinAdjacency& adjacency,
                                        AtomicWork* work,
                                        BatchRunStats* stats) {
  PipelineConfig config;
  config.streams = std::max(1, num_streams_);
  config.assembly_threads = 1;
  config.block_size = block_size_;
  config.retry = retry_;
  BatchPipeline pipeline(arena_, spec_, config);
  return pipeline.run_join_groups(req, grid, plan, adjacency, work, stats);
}

Batcher::Batcher(gpu::GlobalMemoryArena& arena, const gpu::DeviceSpec& spec,
                 int num_streams, int block_size, RetryPolicy retry)
    : arena_(arena),
      spec_(spec),
      num_streams_(num_streams),
      block_size_(block_size),
      retry_(retry) {}

}  // namespace sj
