#include "core/batcher.hpp"

#include <algorithm>
#include <cmath>

#include "core/batch_pipeline.hpp"

namespace sj {

BatchPlan plan_batches(std::uint64_t estimated_total, std::uint64_t n_queries,
                       std::size_t min_batches, std::uint64_t buffer_pairs,
                       double safety) {
  BatchPlan plan;
  plan.buffer_pairs = std::max<std::uint64_t>(buffer_pairs, 1);
  const auto padded = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(estimated_total) * safety));
  std::size_t by_volume = static_cast<std::size_t>(
      (padded + plan.buffer_pairs - 1) / plan.buffer_pairs);
  plan.num_batches = std::max(min_batches, std::max<std::size_t>(by_volume, 1));
  // Never more batches than queries (each batch needs at least one point).
  if (n_queries > 0) {
    plan.num_batches =
        std::min<std::size_t>(plan.num_batches, static_cast<std::size_t>(n_queries));
  }
  return plan;
}

std::uint64_t size_buffer_pairs(const gpu::GlobalMemoryArena& arena,
                                std::uint64_t n_queries,
                                std::uint64_t estimated_total,
                                std::size_t min_batches, int num_streams,
                                std::uint64_t max_buffer_pairs, double safety) {
  // Keep room for the per-batch query-id uploads.
  const std::uint64_t reserve_bytes =
      n_queries * sizeof(std::uint32_t) + (16u << 10);
  const std::uint64_t free_bytes =
      arena.free_bytes() > reserve_bytes ? arena.free_bytes() - reserve_bytes
                                         : 0;
  std::uint64_t buffer_pairs =
      free_bytes /
      (sizeof(Pair) * kDeviceBuffersPerStream *
       static_cast<std::uint64_t>(std::max(1, num_streams)));
  buffer_pairs = std::min(buffer_pairs, max_buffer_pairs);
  // No point allocating beyond what one batch is expected to produce
  // (padded by the safety factor and a floor); the overflow-split path
  // recovers from any underestimate.
  const std::uint64_t desired =
      static_cast<std::uint64_t>(std::ceil(
          static_cast<double>(estimated_total) * safety /
          static_cast<double>(std::max<std::size_t>(min_batches, 1)))) +
      1024;
  buffer_pairs = std::min(buffer_pairs, desired);
  return std::max<std::uint64_t>(buffer_pairs, 64);
}

ResultSet Batcher::run(const GridDeviceView& grid, bool unicomp,
                       const BatchPlan& plan, AtomicWork* work,
                       BatchRunStats* stats) {
  PipelineConfig config;
  config.streams = std::max(1, num_streams_);
  config.assembly_threads = 1;
  config.block_size = block_size_;
  BatchPipeline pipeline(arena_, spec_, config);
  return pipeline.run(grid, unicomp, plan, work, stats);
}

Batcher::Batcher(gpu::GlobalMemoryArena& arena, const gpu::DeviceSpec& spec,
                 int num_streams, int block_size)
    : arena_(arena),
      spec_(spec),
      num_streams_(num_streams),
      block_size_(block_size) {}

}  // namespace sj
