#include "core/batcher.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <mutex>

#include "common/timer.hpp"
#include "core/kernels.hpp"
#include "gpusim/atomic.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/sort.hpp"
#include "gpusim/stream.hpp"

namespace sj {

BatchPlan plan_batches(std::uint64_t estimated_total, std::uint64_t n_queries,
                       std::size_t min_batches, std::uint64_t buffer_pairs,
                       double safety) {
  BatchPlan plan;
  plan.buffer_pairs = std::max<std::uint64_t>(buffer_pairs, 1);
  const auto padded = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(estimated_total) * safety));
  std::size_t by_volume = static_cast<std::size_t>(
      (padded + plan.buffer_pairs - 1) / plan.buffer_pairs);
  plan.num_batches = std::max(min_batches, std::max<std::size_t>(by_volume, 1));
  // Never more batches than queries (each batch needs at least one point).
  if (n_queries > 0) {
    plan.num_batches =
        std::min<std::size_t>(plan.num_batches, static_cast<std::size_t>(n_queries));
  }
  return plan;
}

ResultSet Batcher::run(const GridDeviceView& grid, bool unicomp,
                       const BatchPlan& plan, AtomicWork* work,
                       BatchRunStats* stats) {
  ResultSet final_result;
  const std::uint64_t nq = grid.num_queries();
  if (nq == 0 || grid.n == 0) return final_result;

  // Strided batch assignment: batch b owns the queries {i : i % nb == b},
  // spreading dense regions evenly across batches.
  std::vector<std::vector<std::uint32_t>> pending(plan.num_batches);
  for (std::uint64_t i = 0; i < nq; ++i) {
    pending[i % plan.num_batches].push_back(static_cast<std::uint32_t>(i));
  }

  // Per-stream device result buffers (allocated once, reused by every
  // batch scheduled on that stream — FIFO ordering makes this safe).
  const int nstreams = std::max(1, num_streams_);
  std::vector<gpu::DeviceBuffer<Pair>> buffers;
  std::vector<gpu::DeviceBuffer<Pair>> sort_tmp;  // thrust-style O(n) scratch
  std::vector<std::unique_ptr<gpu::Stream>> streams;
  buffers.reserve(nstreams);
  sort_tmp.reserve(nstreams);
  streams.reserve(nstreams);
  for (int s = 0; s < nstreams; ++s) {
    buffers.emplace_back(arena_, plan.buffer_pairs);
    sort_tmp.emplace_back(arena_, plan.buffer_pairs);
    streams.emplace_back(std::make_unique<gpu::Stream>(spec_));
  }

  std::mutex mu;  // protects final_result, stats, and the overflow list
  std::vector<std::vector<std::uint32_t>> overflowed;
  BatchRunStats local_stats;
  bool fatal_overflow = false;

  while (!pending.empty()) {
    for (std::size_t b = 0; b < pending.size(); ++b) {
      const int s = static_cast<int>(b % nstreams);
      std::vector<std::uint32_t>* ids = &pending[b];
      Pair* buffer = buffers[static_cast<std::size_t>(s)].data();
      Pair* scratch = sort_tmp[static_cast<std::size_t>(s)].data();
      streams[static_cast<std::size_t>(s)]->enqueue([this, &grid, unicomp,
                                                     &plan, work, ids, buffer,
                                                     scratch, &mu, &overflowed,
                                                     &local_stats,
                                                     &final_result,
                                                     &fatal_overflow] {
        // Ship this batch's query ids to the device.
        gpu::DeviceBuffer<std::uint32_t> qids(arena_, ids->size());
        std::memcpy(qids.data(), ids->data(),
                    ids->size() * sizeof(std::uint32_t));

        gpu::DeviceCounter cursor;
        std::atomic<bool> overflow{false};

        SelfJoinKernelParams p;
        p.grid = grid;
        p.query_ids = qids.data();
        p.num_queries = ids->size();
        p.result.out = buffer;
        p.result.capacity = plan.buffer_pairs;
        p.result.cursor = &cursor;
        p.result.overflow = &overflow;
        p.unicomp = unicomp;
        p.work = work;

        const gpu::KernelStats ks = gpu::launch(
            gpu::LaunchConfig::cover(ids->size(), block_size_),
            [&p](const gpu::ThreadCtx& ctx) { self_join_thread(ctx, p); });

        if (overflow.load()) {
          // The estimate undershot for this batch: split and retry.
          std::lock_guard<std::mutex> lock(mu);
          local_stats.kernel_seconds += ks.seconds;
          ++local_stats.batches_run;
          ++local_stats.overflow_retries;
          if (ids->size() <= 1) {
            // A single point's neighbourhood exceeds the buffer — cannot
            // split further. Flagged and reported after synchronisation.
            fatal_overflow = true;
            return;
          }
          const std::size_t half = ids->size() / 2;
          overflowed.emplace_back(ids->begin(), ids->begin() + half);
          overflowed.emplace_back(ids->begin() + half, ids->end());
          return;
        }

        const std::uint64_t nres = cursor.load();
        // Key/value sort of the batch result (the paper sorts the pairs
        // before transferring them to the host, Section IV-E; thrust
        // radix-sorts integer keys).
        Timer sort_timer;
        gpu::sort_pairs_by_key(buffer, nres, scratch);
        const double sort_s = sort_timer.seconds();

        // Transfer to host (the real copy plus the modelled PCIe time the
        // stream overlap is hiding).
        const std::uint64_t bytes = nres * sizeof(Pair);
        std::lock_guard<std::mutex> lock(mu);
        local_stats.kernel_seconds += ks.seconds;
        local_stats.sort_seconds += sort_s;
        ++local_stats.batches_run;
        local_stats.bytes_to_host += bytes;
        local_stats.modeled_transfer_seconds +=
            static_cast<double>(bytes) / (spec_.pcie_bandwidth_gbs * 1e9);
        auto& out = final_result.pairs();
        out.insert(out.end(), buffer, buffer + nres);
      });
    }
    for (auto& s : streams) s->synchronize();

    std::lock_guard<std::mutex> lock(mu);
    if (fatal_overflow) {
      throw gpu::DeviceOutOfMemory(plan.buffer_pairs * sizeof(Pair) * 2,
                                   plan.buffer_pairs * sizeof(Pair));
    }
    pending = std::move(overflowed);
    overflowed.clear();
  }

  if (stats != nullptr) *stats = local_stats;
  return final_result;
}

Batcher::Batcher(gpu::GlobalMemoryArena& arena, const gpu::DeviceSpec& spec,
                 int num_streams, int block_size)
    : arena_(arena),
      spec_(spec),
      num_streams_(num_streams),
      block_size_(block_size) {}

}  // namespace sj
