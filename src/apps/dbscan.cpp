#include "apps/dbscan.hpp"

#include <algorithm>

#include "api/registry.hpp"
#include "common/timer.hpp"

namespace sj::apps {

std::vector<std::size_t> DbscanResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(static_cast<std::size_t>(num_clusters), 0);
  for (int l : labels) {
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  }
  return sizes;
}

DbscanResult dbscan(const Dataset& d, const DbscanOptions& opt) {
  DbscanResult result;
  result.labels.assign(d.size(), DbscanResult::kNoise);
  if (d.empty()) return result;

  Timer join_timer;
  const auto& backend = api::BackendRegistry::instance().at(opt.algo);
  auto sj_result = backend.run(d, opt.eps, opt.join_config);
  const NeighborTable nt(std::move(sj_result.pairs), d.size());
  result.join_seconds = join_timer.seconds();

  Timer traversal;
  constexpr int kUnvisited = -2;
  std::vector<int>& label = result.labels;
  std::fill(label.begin(), label.end(), kUnvisited);

  auto is_core = [&](std::size_t i) { return nt.degree(i) >= opt.min_pts; };
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (is_core(i)) ++result.num_core;
  }

  int cluster = 0;
  std::vector<std::uint32_t> frontier;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (label[i] != kUnvisited) continue;
    if (!is_core(i)) {
      label[i] = DbscanResult::kNoise;  // may later become a border point
      continue;
    }
    label[i] = cluster;
    frontier.assign(nt.begin(i), nt.end(i));
    while (!frontier.empty()) {
      const std::uint32_t q = frontier.back();
      frontier.pop_back();
      if (label[q] == DbscanResult::kNoise) {
        label[q] = cluster;  // border point adopted by this cluster
        continue;
      }
      if (label[q] != kUnvisited) continue;
      label[q] = cluster;
      if (is_core(q)) {
        frontier.insert(frontier.end(), nt.begin(q), nt.end(q));
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  for (int l : label) {
    if (l == DbscanResult::kNoise) ++result.num_noise;
  }
  result.traversal_seconds = traversal.seconds();
  return result;
}

}  // namespace sj::apps
