#include "apps/dbscan.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/contracts.hpp"
#include "common/timer.hpp"

namespace sj::apps {

namespace {

constexpr std::uint32_t kUnset = 0xffffffffu;

/// Union-find over point ids with path halving. Union order does not
/// matter for the final partition, and clusters are numbered afterwards
/// by their minimal core point, so the labelling is deterministic.
struct UnionFind {
  std::vector<std::uint32_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

}  // namespace

std::vector<std::size_t> DbscanResult::cluster_sizes() const {
  std::vector<std::size_t> sizes(static_cast<std::size_t>(num_clusters), 0);
  for (int l : labels) {
    if (l >= 0) ++sizes[static_cast<std::size_t>(l)];
  }
  return sizes;
}

DbscanResult dbscan(const Dataset& d, const DbscanOptions& opt) {
  DbscanResult result;
  result.labels.assign(d.size(), DbscanResult::kNoise);
  if (d.empty()) return result;
  const std::size_t n = d.size();

  const auto& backend = api::BackendRegistry::instance().at(opt.algo);

  // --- Pass 1: per-point eps-neighbourhood sizes, no pairs materialised.
  Timer join_timer;
  api::RunConfig config = opt.join_config;
  config.mode = ResultMode::kHistogram;
  const auto hist = backend.run(d, opt.eps, config);
  SJ_EXPECT(hist.histogram.size() == n,
            "dbscan: pass-1 histogram must cover every point");
  result.join_seconds = join_timer.seconds();
  result.total_pairs = hist.total_pairs;

  Timer traversal;
  std::vector<bool> core(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    // Degrees include the self pair, matching min_pts' "self included".
    if (hist.histogram[i] >= opt.min_pts) {
      core[i] = true;
      ++result.num_core;
    }
  }
  result.traversal_seconds = traversal.seconds();

  // --- Pass 2: stream the sorted pair batches through the clustering
  // reducer. Core-core pairs merge clusters; a core-border pair records
  // the border point's adopting core (first one in stream order, mirroring
  // the classic traversal's "first cluster that reaches it").
  UnionFind uf(n);
  std::vector<std::uint32_t> border_parent(n, kUnset);
  auto reduce = [&](const Pair* pairs, std::size_t count) {
    result.peak_batch_pairs =
        std::max<std::uint64_t>(result.peak_batch_pairs, count);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t a = pairs[i].key;
      const std::uint32_t b = pairs[i].value;
      SJ_INVARIANT(a < n && b < n, "dbscan: pair ids must index the dataset");
      if (!core[a]) continue;  // the symmetric twin handles (border, core)
      if (core[b]) {
        uf.unite(a, b);
      } else if (border_parent[b] == kUnset) {
        border_parent[b] = a;
      }
    }
  };

  join_timer.reset();
  config.mode = ResultMode::kSink;
  config.sink = reduce;
  try {
    backend.run(d, opt.eps, config);
  } catch (const std::invalid_argument&) {
    // Pass 1 already validated every config key, so the only rejection
    // left is a backend without sink support (e.g. gpu_shard, whose shard
    // pipelines cannot stream in global order): materialise once and feed
    // the same reducer.
    config.mode = ResultMode::kPairs;
    config.sink = nullptr;
    const auto full = backend.run(d, opt.eps, config);
    reduce(full.pairs.pairs().data(), full.pairs.size());
  }
  result.join_seconds += join_timer.seconds();

  // --- Label: clusters numbered by their minimal core point (the same
  // ids the seed-order traversal produces), border points adopting their
  // recorded core's cluster, everything else noise.
  traversal.reset();
  std::vector<int>& label = result.labels;
  std::vector<int> root_cluster(n, -1);
  int cluster = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    const std::uint32_t r = uf.find(static_cast<std::uint32_t>(i));
    if (root_cluster[r] < 0) root_cluster[r] = cluster++;
    label[i] = root_cluster[r];
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (core[i]) continue;
    if (border_parent[i] != kUnset) {
      label[i] = root_cluster[uf.find(border_parent[i])];
    } else {
      label[i] = DbscanResult::kNoise;
      ++result.num_noise;
    }
  }
  result.num_clusters = cluster;
  if (contracts::active()) {
    // Structural post-check: every core point landed in a cluster and no
    // label escapes [kNoise, num_clusters).
    contracts::ScopedTimer timer;
    for (std::size_t i = 0; i < n; ++i) {
      if (core[i]) {
        SJ_CHECK(label[i] >= 0, "dbscan: every core point must be clustered");
      }
      SJ_CHECK(label[i] >= DbscanResult::kNoise && label[i] < cluster,
               "dbscan: labels must index the cluster set");
    }
  }
  result.traversal_seconds += traversal.seconds();
  return result;
}

}  // namespace sj::apps
