// DBSCAN built on the GPU self-join — the paper's motivating application
// (Section I cites DBSCAN's range queries as the canonical self-join
// consumer, and the batching scheme originates from GPU-accelerated
// DBSCAN [29]; [6] shows clustering on a precomputed self-join beats
// iterative range queries).
//
// Uses the result modes instead of a materialised pair set: a histogram
// self-join yields every point's eps-neighbourhood SIZE (core flags), and
// a second, sink-mode join streams the sorted pair batches through a
// union-find that connects core points and adopts border points — so the
// peak host-side result memory is O(n) + one in-flight batch, never the
// O(|result|) neighbour table (the full self-join result of Syn2D2M at
// the bench eps is ~100x the dataset itself). Backends without sink
// support fall back to one materialised pass through the same reducer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "common/dataset.hpp"

namespace sj::apps {

struct DbscanOptions {
  double eps = 1.0;
  std::size_t min_pts = 4;  // core-point threshold, self included
  /// Registry name of the self-join backend computing the neighbourhoods.
  std::string algo = "gpu_unicomp";
  api::RunConfig join_config;  // forwarded to the backend
};

struct DbscanResult {
  /// Cluster id per point; kNoise (-1) marks noise.
  std::vector<int> labels;
  int num_clusters = 0;
  std::size_t num_noise = 0;
  std::size_t num_core = 0;

  double join_seconds = 0.0;      // neighbourhood computation (GPU-SJ)
  double traversal_seconds = 0.0; // host-side expansion

  /// Exact pair count of the underlying self-join.
  std::uint64_t total_pairs = 0;
  /// Largest single result batch the clustering pass held at once — the
  /// peak host-side pair residency. Streaming (sink) backends keep this
  /// at one pipeline buffer; the materialised fallback reports the full
  /// result size.
  std::uint64_t peak_batch_pairs = 0;

  static constexpr int kNoise = -1;

  /// Cluster sizes indexed by cluster id.
  std::vector<std::size_t> cluster_sizes() const;
};

/// Run DBSCAN over `d`. Labels follow the standard semantics: core points
/// (|N_eps| >= min_pts, self included) expand clusters, border points
/// adopt the first cluster that reaches them, everything else is noise.
DbscanResult dbscan(const Dataset& d, const DbscanOptions& opt);

}  // namespace sj::apps
