// DBSCAN built on the GPU self-join — the paper's motivating application
// (Section I cites DBSCAN's range queries as the canonical self-join
// consumer, and the batching scheme originates from GPU-accelerated
// DBSCAN [29]; [6] shows clustering on a precomputed self-join beats
// iterative range queries).
//
// The eps-neighbourhood of every point comes from one self-join through
// the unified backend registry (default: the batched GPU engine); the
// clustering itself is a host-side traversal of the resulting neighbour
// table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/backend.hpp"
#include "common/dataset.hpp"

namespace sj::apps {

struct DbscanOptions {
  double eps = 1.0;
  std::size_t min_pts = 4;  // core-point threshold, self included
  /// Registry name of the self-join backend computing the neighbourhoods.
  std::string algo = "gpu_unicomp";
  api::RunConfig join_config;  // forwarded to the backend
};

struct DbscanResult {
  /// Cluster id per point; kNoise (-1) marks noise.
  std::vector<int> labels;
  int num_clusters = 0;
  std::size_t num_noise = 0;
  std::size_t num_core = 0;

  double join_seconds = 0.0;      // neighbourhood computation (GPU-SJ)
  double traversal_seconds = 0.0; // host-side expansion

  static constexpr int kNoise = -1;

  /// Cluster sizes indexed by cluster id.
  std::vector<std::size_t> cluster_sizes() const;
};

/// Run DBSCAN over `d`. Labels follow the standard semantics: core points
/// (|N_eps| >= min_pts, self included) expand clusters, border points
/// adopt the first cluster that reaches them, everything else is noise.
DbscanResult dbscan(const Dataset& d, const DbscanOptions& opt);

}  // namespace sj::apps
