// Unified, operation-generic backend interface.
//
// Every engine in this repo (the paper's GPU-SJ with and without UNICOMP,
// the Super-EGO and R-tree CPU baselines, and the brute-force references)
// is exposed through one abstract interface so that callers — sjtool, the
// bench harness, the examples, DBSCAN — dispatch by registry name instead
// of hard-coding engine types. Beyond the mandatory self-join, a backend
// may implement the two optional operation facets it advertises through
// Capabilities: the query/data epsilon join and grid-based kNN.
//
// Self-join pair convention (uniform across ALL backends, asserted once
// by the backend-parity test suite): the result is the set of ORDERED
// pairs (a, b) with dist(a, b) <= eps, INCLUDING self pairs (a, a). Every
// correct result is therefore symmetric and has size >= |D|.
//
// Query/data join convention: pairs are (query index into `queries`,
// data index into `data`) with dist <= eps — NOT symmetric, no implicit
// self pairs (a query coinciding with a data point matches it like any
// other point within eps).
//
// kNN convention: lists are in query order, ascending by distance, and
// may be shorter than k when fewer candidates exist. Self-kNN excludes
// each point from its own list unless the backend's include_self knob is
// set; two-set kNN never excludes anything (an exact coordinate duplicate
// is a legitimate neighbour).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/dataset.hpp"
#include "common/neighbors.hpp"
#include "common/result.hpp"

namespace sj::api {

/// The operations a backend may serve. kSelfJoin is mandatory; the other
/// facets are gated by Capabilities and fail with a one-line error
/// listing the capable backends when invoked on an engine without them.
enum class Operation { kSelfJoin, kJoin, kKnn };

/// Lowercase human name of an operation ("self-join", "join", "knn").
std::string_view operation_name(Operation op);

/// What a backend can do beyond the mandatory self-join.
struct Capabilities {
  bool supports_join = false;  ///< two-dataset (query vs data) join
  bool supports_knn = false;   ///< grid-based kNN extension
  bool gpu = false;            ///< runs on the (simulated) GPU

  bool supports(Operation op) const {
    switch (op) {
      case Operation::kJoin: return supports_join;
      case Operation::kKnn: return supports_knn;
      case Operation::kSelfJoin: return true;
    }
    return false;
  }
};

/// Compact capability tag list for --help style output and error
/// messages, e.g. "self-join, join, knn, gpu".
std::string capability_summary(const Capabilities& caps);

/// The one-line "backend 'x' does not support OP; backends with OP: ..."
/// message — shared by the default facet implementations and
/// BackendRegistry::at(name, op) so the two gating paths cannot drift.
std::string unsupported_operation_message(std::string_view backend_name,
                                          Operation op);

/// Engine-agnostic run configuration. Common knobs are typed; anything
/// engine-specific travels in `extra` as string key/values (e.g.
/// {"use_float", "1"} for the Super-EGO 32-bit mode or {"block_size",
/// "128"} for the GPU kernel). Backends reject unknown keys so typos
/// surface instead of silently running defaults.
struct RunConfig {
  /// Worker threads for CPU engines; 0 keeps the engine default, a
  /// negative value requests all hardware threads. Backends without host
  /// threading (gpu, gpu_unicomp, gpu_bf, rtree) reject non-zero values
  /// rather than silently ignoring them.
  int threads = 0;

  /// Collect the expensive Table II-style kernel metrics (GPU engines).
  bool collect_metrics = false;

  /// What to materialise (see ResultMode). kPairs fills JoinOutcome::pairs
  /// as before; kCountOnly/kHistogram skip pair buffers entirely and fill
  /// only total_pairs / histogram; kSink streams sorted batches through
  /// `sink`. Every backend honors kPairs/kCountOnly/kHistogram; kSink is
  /// gated per backend and throws a one-line error where unsupported.
  ResultMode mode = ResultMode::kPairs;

  /// Batch consumer for ResultMode::kSink (required in that mode).
  PairSink sink;

  /// Engine-specific knobs; see each backend's adapter for its key set.
  std::map<std::string, std::string> extra;

  // Typed accessors for `extra` (missing key -> `def`).
  bool flag(const std::string& key, bool def) const;
  int integer(const std::string& key, int def) const;
  double number(const std::string& key, double def) const;
  std::string text(const std::string& key, std::string def) const;

  /// Throws std::invalid_argument if `extra` contains a key outside
  /// `allowed` (a comma-separated list), naming the offending key and the
  /// backend. Adapters call this first.
  void check_keys(std::string_view backend, std::string_view allowed) const;
};

/// Normalised execution statistics. The typed fields mean the same thing
/// for every backend; `native` preserves each engine's own stats block
/// (flattened to name -> value) so nothing the engines report is lost in
/// the adaptation.
struct BackendStats {
  /// The time the paper reports for this engine: total response time for
  /// GPU-SJ, query phase only for the R-tree, ego-sort + join for
  /// Super-EGO, kernel time for the GPU brute force.
  double seconds = 0.0;

  /// End-to-end time including index/sort construction.
  double total_seconds = 0.0;

  /// Index build / sort phase, when the engine has one.
  double build_seconds = 0.0;

  /// Candidate distance evaluations — the hardware-independent work count.
  std::uint64_t distance_calcs = 0;

  /// Engine-native stats, e.g. "occupancy" or "batches_run" for GPU-SJ,
  /// "tree_height" for the R-tree, "sequence_pairs_pruned" for Super-EGO.
  std::map<std::string, double> native;

  /// Lookup in `native` with a default for absent entries.
  double native_value(const std::string& key, double def = 0.0) const {
    const auto it = native.find(key);
    return it == native.end() ? def : it->second;
  }
};

/// What a join-shaped run produces. `pairs` is filled only in
/// ResultMode::kPairs; `total_pairs` is the exact pair count in EVERY
/// mode; `histogram` (per-point neighbour counts, self pairs included) is
/// filled only in kHistogram. In kSink the pairs travel through
/// RunConfig::sink instead.
struct JoinOutcome {
  ResultSet pairs;
  std::uint64_t total_pairs = 0;
  std::vector<std::uint32_t> histogram;
  BackendStats stats;
};

/// Validates RunConfig::mode for a backend: rejects kSink when the
/// backend does not stream (one-line error naming the backend, mirroring
/// the operation-gating style) and rejects kSink without a sink callback.
void check_result_mode(std::string_view backend, const RunConfig& config,
                       bool supports_sink);

/// Reduces a fully materialised pair set into the requested mode: sets
/// total_pairs in every mode, moves the pairs in only in kPairs, builds
/// the per-point histogram (ids < n_keys) in kHistogram, and streams the
/// whole set as one batch in kSink. The CPU baselines use this — they
/// compute the pairs anyway, so non-pairs modes save interface memory,
/// not work.
void finalize_outcome(JoinOutcome& out, ResultSet pairs,
                      const RunConfig& config, std::size_t n_keys);

/// What a kNN run produces: the neighbour lists plus the normalised
/// stats (engine-native counters like rings_expanded travel in native).
struct KnnOutcome {
  NeighborLists neighbors;
  BackendStats stats;
};

/// Abstract engine. Implementations are stateless adapters over the
/// concrete engines; register them via BackendRegistry (registry.hpp).
/// The self-join is mandatory; join/knn/self_knn have default
/// implementations that throw the capability error, so engines override
/// exactly the facets their Capabilities advertise.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry key, e.g. "gpu_unicomp". Lowercase, stable.
  virtual std::string_view name() const = 0;

  /// One-line human description for --help style listings.
  virtual std::string_view description() const = 0;

  virtual Capabilities capabilities() const = 0;

  /// Compute the full self-join of `d` with threshold eps >= 0.
  virtual JoinOutcome run(const Dataset& d, double eps,
                          const RunConfig& config) const = 0;

  /// Query/data epsilon join: every (a, b) with a in `queries`, b in
  /// `data`, dist <= eps, as (query index, data index) pairs. Gated by
  /// Capabilities::supports_join; the default throws the one-line
  /// capability error listing the backends that can serve it.
  virtual JoinOutcome join(const Dataset& queries, const Dataset& data,
                           double eps, const RunConfig& config) const;

  /// For every point of `queries`, its k nearest neighbours in `data`.
  /// Gated by Capabilities::supports_knn.
  virtual KnnOutcome knn(const Dataset& queries, const Dataset& data, int k,
                         const RunConfig& config) const;

  /// Self-kNN: neighbours of every point of `d` within `d`, the point
  /// itself excluded (backends may offer an include_self knob). Gated by
  /// Capabilities::supports_knn.
  virtual KnnOutcome self_knn(const Dataset& d, int k,
                              const RunConfig& config) const;

  JoinOutcome run(const Dataset& d, double eps) const {
    return run(d, eps, RunConfig{});
  }
  JoinOutcome join(const Dataset& queries, const Dataset& data,
                   double eps) const {
    return join(queries, data, eps, RunConfig{});
  }
  KnnOutcome knn(const Dataset& queries, const Dataset& data, int k) const {
    return knn(queries, data, k, RunConfig{});
  }
  KnnOutcome self_knn(const Dataset& d, int k) const {
    return self_knn(d, k, RunConfig{});
  }
};

/// The pre-facet name, kept so out-of-tree self-join-only backends keep
/// compiling; new code should say Backend.
using SelfJoinBackend = Backend;

}  // namespace sj::api
