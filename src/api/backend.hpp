// Unified self-join backend interface.
//
// Every engine in this repo (the paper's GPU-SJ with and without UNICOMP,
// the Super-EGO and R-tree CPU baselines, and the brute-force references)
// is exposed through one abstract interface so that callers — sjtool, the
// bench harness, the examples, DBSCAN — dispatch by registry name instead
// of hard-coding engine types.
//
// Pair convention (uniform across ALL backends, asserted once by the
// backend-parity test suite): the result is the set of ORDERED pairs
// (a, b) with dist(a, b) <= eps, INCLUDING self pairs (a, a). Every
// correct result is therefore symmetric and has size >= |D|.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/dataset.hpp"
#include "common/result.hpp"

namespace sj::api {

/// What a backend can do beyond the mandatory self-join. Callers may use
/// these to pick engines for workloads the unified API does not cover yet
/// (e.g. the kNN extension or query/data joins).
struct Capabilities {
  bool supports_join = false;  ///< two-dataset (query vs data) join
  bool supports_knn = false;   ///< grid-based kNN extension
  bool gpu = false;            ///< runs on the (simulated) GPU
};

/// Engine-agnostic run configuration. Common knobs are typed; anything
/// engine-specific travels in `extra` as string key/values (e.g.
/// {"use_float", "1"} for the Super-EGO 32-bit mode or {"block_size",
/// "128"} for the GPU kernel). Backends reject unknown keys so typos
/// surface instead of silently running defaults.
struct RunConfig {
  /// Worker threads for CPU engines; 0 keeps the engine default, a
  /// negative value requests all hardware threads. Backends without host
  /// threading (gpu, gpu_unicomp, gpu_bf, rtree) reject non-zero values
  /// rather than silently ignoring them.
  int threads = 0;

  /// Collect the expensive Table II-style kernel metrics (GPU engines).
  bool collect_metrics = false;

  /// Engine-specific knobs; see each backend's adapter for its key set.
  std::map<std::string, std::string> extra;

  // Typed accessors for `extra` (missing key -> `def`).
  bool flag(const std::string& key, bool def) const;
  int integer(const std::string& key, int def) const;
  double number(const std::string& key, double def) const;
  std::string text(const std::string& key, std::string def) const;

  /// Throws std::invalid_argument if `extra` contains a key outside
  /// `allowed` (a comma-separated list), naming the offending key and the
  /// backend. Adapters call this first.
  void check_keys(std::string_view backend, std::string_view allowed) const;
};

/// Normalised execution statistics. The typed fields mean the same thing
/// for every backend; `native` preserves each engine's own stats block
/// (flattened to name -> value) so nothing the engines report is lost in
/// the adaptation.
struct BackendStats {
  /// The time the paper reports for this engine: total response time for
  /// GPU-SJ, query phase only for the R-tree, ego-sort + join for
  /// Super-EGO, kernel time for the GPU brute force.
  double seconds = 0.0;

  /// End-to-end time including index/sort construction.
  double total_seconds = 0.0;

  /// Index build / sort phase, when the engine has one.
  double build_seconds = 0.0;

  /// Candidate distance evaluations — the hardware-independent work count.
  std::uint64_t distance_calcs = 0;

  /// Engine-native stats, e.g. "occupancy" or "batches_run" for GPU-SJ,
  /// "tree_height" for the R-tree, "sequence_pairs_pruned" for Super-EGO.
  std::map<std::string, double> native;

  /// Lookup in `native` with a default for absent entries.
  double native_value(const std::string& key, double def = 0.0) const {
    const auto it = native.find(key);
    return it == native.end() ? def : it->second;
  }
};

/// What a backend run produces: the pair set (see the convention above)
/// plus the normalised stats.
struct JoinOutcome {
  ResultSet pairs;
  BackendStats stats;
};

/// Abstract self-join engine. Implementations are stateless adapters over
/// the concrete engines; register them via BackendRegistry (registry.hpp).
class SelfJoinBackend {
 public:
  virtual ~SelfJoinBackend() = default;

  /// Registry key, e.g. "gpu_unicomp". Lowercase, stable.
  virtual std::string_view name() const = 0;

  /// One-line human description for --help style listings.
  virtual std::string_view description() const = 0;

  virtual Capabilities capabilities() const = 0;

  /// Compute the full self-join of `d` with threshold eps >= 0.
  virtual JoinOutcome run(const Dataset& d, double eps,
                          const RunConfig& config) const = 0;

  JoinOutcome run(const Dataset& d, double eps) const {
    return run(d, eps, RunConfig{});
  }
};

}  // namespace sj::api
