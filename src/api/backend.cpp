// Default implementations of the optional operation facets: every one
// fails with the single-line capability error that names the offending
// backend and lists the engines that CAN serve the operation — the error
// sjtool surfaces when --algo picks an engine without the capability.
#include "api/backend.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "api/registry.hpp"
#include "common/contracts.hpp"

namespace sj::api {

std::string unsupported_operation_message(std::string_view backend_name,
                                          Operation op) {
  std::ostringstream os;
  os << "backend '" << backend_name << "' does not support "
     << operation_name(op) << "; backends with " << operation_name(op)
     << ": ";
  const auto capable = BackendRegistry::instance().names_supporting(op);
  if (capable.empty()) {
    os << "(none)";
  } else {
    for (std::size_t i = 0; i < capable.size(); ++i) {
      os << (i > 0 ? ", " : "") << capable[i];
    }
  }
  return os.str();
}

namespace {

[[noreturn]] void throw_unsupported(const Backend& backend, Operation op) {
  throw std::invalid_argument(
      unsupported_operation_message(backend.name(), op));
}

}  // namespace

std::string_view operation_name(Operation op) {
  switch (op) {
    case Operation::kSelfJoin: return "self-join";
    case Operation::kJoin: return "join";
    case Operation::kKnn: return "knn";
  }
  return "?";
}

std::string capability_summary(const Capabilities& caps) {
  std::string out = "self-join";
  if (caps.supports_join) out += ", join";
  if (caps.supports_knn) out += ", knn";
  if (caps.gpu) out += ", gpu";
  return out;
}

void check_result_mode(std::string_view backend, const RunConfig& config,
                       bool supports_sink) {
  if (config.mode == ResultMode::kSink) {
    if (!supports_sink) {
      std::ostringstream os;
      os << "backend '" << backend
         << "' does not support result mode 'sink'; use pairs, count, or "
            "histogram";
      throw std::invalid_argument(os.str());
    }
    if (!config.sink) {
      throw std::invalid_argument(std::string("backend '") +
                                  std::string(backend) +
                                  "': result mode 'sink' needs a sink "
                                  "callback in RunConfig::sink");
    }
  }
}

void finalize_outcome(JoinOutcome& out, ResultSet pairs,
                      const RunConfig& config, std::size_t n_keys) {
  out.total_pairs = pairs.size();
  if (contracts::active()) {
    // Cross-check the materialised pairs against the per-mode totals:
    // every key must index the histogram plane, so count/histogram
    // outputs derived from this set cannot drift from the pair count.
    contracts::ScopedTimer timer;
    for (const Pair& p : pairs.pairs()) {
      SJ_CHECK(p.key < n_keys,
               "finalize_outcome: pair key must index the key space");
    }
  }
  switch (config.mode) {
    case ResultMode::kPairs:
      out.pairs = std::move(pairs);
      break;
    case ResultMode::kCountOnly:
      break;
    case ResultMode::kHistogram: {
      out.histogram = pairs.counts_per_key(n_keys);
      if (contracts::active()) {
        contracts::ScopedTimer timer;
        std::uint64_t total = 0;
        for (const std::uint32_t c : out.histogram) total += c;
        SJ_CHECK(total == pairs.size(),
                 "finalize_outcome: histogram total must equal the pair "
                 "count");
      }
      break;
    }
    case ResultMode::kSink:
      if (!pairs.empty()) {
        config.sink(pairs.pairs().data(), pairs.size());
      }
      break;
  }
}

JoinOutcome Backend::join(const Dataset&, const Dataset&, double,
                          const RunConfig&) const {
  throw_unsupported(*this, Operation::kJoin);
}

KnnOutcome Backend::knn(const Dataset&, const Dataset&, int,
                        const RunConfig&) const {
  throw_unsupported(*this, Operation::kKnn);
}

KnnOutcome Backend::self_knn(const Dataset&, int, const RunConfig&) const {
  throw_unsupported(*this, Operation::kKnn);
}

}  // namespace sj::api
