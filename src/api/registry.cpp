#include "api/registry.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "bruteforce/brute_backend.hpp"
#include "common/parse.hpp"
#include "core/gpu_backend.hpp"
#include "ego/ego_backend.hpp"
#include "rtree/rtree_backend.hpp"

namespace sj::api {

bool RunConfig::flag(const std::string& key, bool def) const {
  const auto it = extra.find(key);
  if (it == extra.end()) return def;
  return it->second != "0" && it->second != "false" && it->second != "off";
}

int RunConfig::integer(const std::string& key, int def) const {
  const auto it = extra.find(key);
  if (it == extra.end()) return def;
  // Strict: trailing junk ("2x") is rejected, not silently truncated.
  return parse::integer("option '" + key + "'", it->second);
}

double RunConfig::number(const std::string& key, double def) const {
  const auto it = extra.find(key);
  if (it == extra.end()) return def;
  return parse::number("option '" + key + "'", it->second);
}

std::string RunConfig::text(const std::string& key, std::string def) const {
  const auto it = extra.find(key);
  return it == extra.end() ? std::move(def) : it->second;
}

void RunConfig::check_keys(std::string_view backend,
                           std::string_view allowed) const {
  for (const auto& [key, value] : extra) {
    const std::string needle = key;
    bool known = false;
    std::size_t pos = 0;
    while (pos <= allowed.size() && !known) {
      const std::size_t comma = allowed.find(',', pos);
      const auto token = allowed.substr(
          pos, comma == std::string_view::npos ? allowed.size() - pos
                                               : comma - pos);
      known = token == needle;
      if (comma == std::string_view::npos) break;
      pos = comma + 1;
    }
    if (!known) {
      throw std::invalid_argument(
          "backend '" + std::string(backend) + "' does not understand option '" +
          key + "' (known: " + std::string(allowed) + ")");
    }
  }
}

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    backends::register_gpu(*r);
    backends::register_ego(*r);
    backends::register_rtree(*r);
    backends::register_brute(*r);
    return r;
  }();
  return *registry;
}

void BackendRegistry::add(std::unique_ptr<Backend> backend) {
  if (backend == nullptr) {
    throw std::invalid_argument("BackendRegistry::add: null backend");
  }
  const std::string name(backend->name());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (name == e.backend->name() ||
        std::find(e.aliases.begin(), e.aliases.end(), name) !=
            e.aliases.end()) {
      throw std::invalid_argument("backend '" + name + "' already registered");
    }
  }
  entries_.push_back({std::move(backend), {}});
}

void BackendRegistry::add_alias(std::string alias, const std::string& target) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* target_entry = nullptr;
  for (auto& e : entries_) {
    if (alias == e.backend->name() ||
        std::find(e.aliases.begin(), e.aliases.end(), alias) !=
            e.aliases.end()) {
      throw std::invalid_argument("backend alias '" + alias +
                                  "' already registered");
    }
    if (target == e.backend->name()) target_entry = &e;
  }
  if (target_entry == nullptr) {
    throw std::invalid_argument("backend alias target '" + target +
                                "' is not registered");
  }
  target_entry->aliases.push_back(std::move(alias));
}

const Backend* BackendRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (name == e.backend->name()) return e.backend.get();
    for (const auto& alias : e.aliases) {
      if (name == alias) return e.backend.get();
    }
  }
  return nullptr;
}

const Backend& BackendRegistry::at(std::string_view name) const {
  const Backend* backend = find(name);
  if (backend == nullptr) {
    // Each name carries its capability tags so a caller picking an engine
    // for join/knn sees at a glance which ones qualify.
    std::ostringstream os;
    os << "unknown backend '" << name << "'; registered backends: ";
    const auto all = names();
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Backend* b = find(all[i]);
      os << (i > 0 ? ", " : "") << all[i] << " ["
         << capability_summary(b->capabilities()) << "]";
    }
    throw std::invalid_argument(os.str());
  }
  return *backend;
}

const Backend& BackendRegistry::at(std::string_view name, Operation op) const {
  const Backend& backend = at(name);
  if (!backend.capabilities().supports(op)) {
    throw std::invalid_argument(
        unsupported_operation_message(backend.name(), op));
  }
  return backend;
}

std::vector<std::string> BackendRegistry::names() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.emplace_back(e.backend->name());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> BackendRegistry::names_supporting(Operation op) const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) {
      if (e.backend->capabilities().supports(op)) {
        out.emplace_back(e.backend->name());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> BackendRegistry::aliases() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) {
      for (const auto& alias : e.aliases) {
        out.push_back(alias + " -> " + std::string(e.backend->name()));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sj::api
