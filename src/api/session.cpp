#include "api/session.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "common/parse.hpp"
#include "common/timer.hpp"
#include "core/snapshot.hpp"

namespace sj::api {

namespace {

constexpr std::size_t kLatencyWindow = 4096;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

/// One admitted query. The four promises mirror the four result types;
/// exactly one (selected by `kind`) is ever touched.
struct QuerySession::Request {
  enum class Kind { kRange, kJoin, kSelfJoin, kKnn };

  Kind kind = Kind::kRange;
  std::vector<double> point;  // kRange
  bool count_only = false;    // kRange
  Dataset queries;            // kJoin / kKnn
  int k = 0;                  // kKnn

  exec::Deadline deadline;
  const exec::CancelToken* cancel = nullptr;
  std::chrono::steady_clock::time_point enqueued{};

  std::promise<RangeResult> range_promise;
  std::promise<GpuJoinResult> join_promise;
  std::promise<SelfJoinResult> self_promise;
  std::promise<KnnResult> knn_promise;

  exec::ExecControl control() const { return {deadline, cancel}; }

  void set_exception(std::exception_ptr e) {
    switch (kind) {
      case Kind::kRange: range_promise.set_exception(std::move(e)); return;
      case Kind::kJoin: join_promise.set_exception(std::move(e)); return;
      case Kind::kSelfJoin: self_promise.set_exception(std::move(e)); return;
      case Kind::kKnn: knn_promise.set_exception(std::move(e)); return;
    }
  }
};

QuerySession::QuerySession(Dataset data, double eps, SessionOptions opt)
    : data_(std::move(data)), opt_(std::move(opt)) {
  Timer t;
  if (!opt_.snapshot.empty() && std::filesystem::exists(opt_.snapshot)) {
    std::string why;
    auto restored = snapshot::try_load(opt_.snapshot, &why);
    if (!restored) {
      // Never UB, never abort: a torn or corrupt snapshot degrades to a
      // cold build and the file is rewritten below.
      std::fprintf(stderr, "[session] %s; rebuilding the index cold\n",
                   why.c_str());
    } else if (restored->index.eps() != eps || restored->data.dim() != data_.dim() ||
               restored->data.raw() != data_.raw()) {
      std::fprintf(stderr,
                   "[session] snapshot '%s' was built for a different "
                   "dataset or eps; rebuilding the index cold\n",
                   opt_.snapshot.c_str());
    } else {
      prepared_ = std::make_unique<PreparedJoin>(
          data_, std::move(restored->index), opt_.device);
      restored_ = true;
    }
  }
  if (prepared_ == nullptr) {
    prepared_ = std::make_unique<PreparedJoin>(data_, eps, opt_.device);
    if (!opt_.snapshot.empty()) {
      try {
        snapshot::save(opt_.snapshot, data_, prepared_->index());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[session] cannot write snapshot: %s\n",
                     e.what());
      }
    }
  }
  startup_seconds_ = t.seconds();

  const int n = std::max(1, opt_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QuerySession::~QuerySession() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Whatever the workers did not reach is shed, typed — a client blocked
  // on one of these futures unblocks with Overloaded instead of hanging.
  for (const std::shared_ptr<Request>& req : queue_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    req->set_exception(std::make_exception_ptr(
        exec::Overloaded("query shed: session is shutting down")));
  }
  queue_.clear();
}

void QuerySession::submit(std::shared_ptr<Request> req) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      throw exec::Overloaded("query rejected: session is shutting down");
    }
    if (queue_.size() >= opt_.max_queue_depth) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      throw exec::Overloaded(
          "query shed: admission queue full (depth " +
          std::to_string(opt_.max_queue_depth) + ")");
    }
    req->enqueued = std::chrono::steady_clock::now();
    admitted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
}

std::future<RangeResult> QuerySession::range(std::vector<double> point,
                                             QueryOptions q) {
  if (static_cast<int>(point.size()) != data_.dim()) {
    throw std::invalid_argument(
        "QuerySession::range: query point has " +
        std::to_string(point.size()) + " coordinates, the data has " +
        std::to_string(data_.dim()));
  }
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kRange;
  req->point = std::move(point);
  req->count_only = q.count_only;
  if (q.deadline_ms > 0.0) req->deadline = exec::Deadline::after_ms(q.deadline_ms);
  req->cancel = q.cancel;
  auto fut = req->range_promise.get_future();
  submit(std::move(req));
  return fut;
}

std::future<GpuJoinResult> QuerySession::join(Dataset queries,
                                              QueryOptions q) {
  parse::matching_dims("argument 'queries' of QuerySession::join",
                       queries.dim(), "the session dataset", data_.dim());
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kJoin;
  req->queries = std::move(queries);
  if (q.deadline_ms > 0.0) req->deadline = exec::Deadline::after_ms(q.deadline_ms);
  req->cancel = q.cancel;
  auto fut = req->join_promise.get_future();
  submit(std::move(req));
  return fut;
}

std::future<SelfJoinResult> QuerySession::self_join(QueryOptions q) {
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kSelfJoin;
  if (q.deadline_ms > 0.0) req->deadline = exec::Deadline::after_ms(q.deadline_ms);
  req->cancel = q.cancel;
  auto fut = req->self_promise.get_future();
  submit(std::move(req));
  return fut;
}

std::future<KnnResult> QuerySession::knn(Dataset queries, int k,
                                         QueryOptions q) {
  parse::positive("argument 'k' of QuerySession::knn", k);
  parse::matching_dims("argument 'queries' of QuerySession::knn",
                       queries.dim(), "the session dataset", data_.dim());
  auto req = std::make_shared<Request>();
  req->kind = Request::Kind::kKnn;
  req->queries = std::move(queries);
  req->k = k;
  if (q.deadline_ms > 0.0) req->deadline = exec::Deadline::after_ms(q.deadline_ms);
  req->cancel = q.cancel;
  auto fut = req->knn_promise.get_future();
  submit(std::move(req));
  return fut;
}

void QuerySession::worker_loop() {
  for (;;) {
    std::vector<std::shared_ptr<Request>> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return closed_ || !queue_.empty(); });
      if (closed_) return;  // the destructor sheds what is left
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalesce a run of compatible single-point range queries into one
      // grouped-join launch: the admission queue is the batching seam.
      if (batch.front()->kind == Request::Kind::kRange) {
        while (batch.size() < opt_.coalesce_limit && !queue_.empty() &&
               queue_.front()->kind == Request::Kind::kRange &&
               queue_.front()->count_only == batch.front()->count_only) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    execute(std::move(batch));
  }
}

/// Resolve a query's own verdict: its cancel token, then its deadline,
/// then (for batch members) whatever stopped the shared launch.
static std::exception_ptr member_verdict(const exec::ExecControl& ctl,
                                         const char* where,
                                         std::exception_ptr batch_error) {
  try {
    ctl.check(where);
  } catch (...) {
    return std::current_exception();
  }
  return batch_error;
}

void QuerySession::fail_one(Request& req, std::exception_ptr e) {
  try {
    std::rethrow_exception(e);
  } catch (const exec::DeadlineExceeded&) {
    expired_.fetch_add(1, std::memory_order_relaxed);
  } catch (const exec::Cancelled&) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  } catch (const exec::Overloaded&) {
    shed_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  req.set_exception(std::move(e));
}

void QuerySession::record_latency(const Request& req) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  const double ms = ms_since(req.enqueued);
  std::lock_guard<std::mutex> lk(latency_mu_);
  if (latency_ms_.size() < kLatencyWindow) {
    latency_ms_.push_back(ms);
  } else {
    latency_ms_[latency_next_ % kLatencyWindow] = ms;
  }
  ++latency_next_;
}

void QuerySession::execute(std::vector<std::shared_ptr<Request>> batch) {
  // Admission-control tail: shed what went stale in the queue, resolve
  // what was cancelled or expired before it ever reached the device.
  std::vector<std::shared_ptr<Request>> live;
  live.reserve(batch.size());
  for (std::shared_ptr<Request>& sp : batch) {
    Request& req = *sp;
    if (opt_.max_queue_age_ms > 0.0 &&
        ms_since(req.enqueued) > opt_.max_queue_age_ms) {
      fail_one(req, std::make_exception_ptr(exec::Overloaded(
                        "query shed: queued longer than the admission age "
                        "limit")));
      continue;
    }
    const exec::ExecControl ctl = req.control();
    std::exception_ptr e = member_verdict(ctl, "admission", nullptr);
    if (e != nullptr) {
      fail_one(req, std::move(e));
      continue;
    }
    live.push_back(std::move(sp));
  }
  if (live.empty()) return;

  if (live.front()->kind == Request::Kind::kRange) {
    run_range_batch(live);
    return;
  }

  // join / self-join / kNN run singly; their control (deadline AND
  // cancel token) rides straight into the engine's checkpoint seams.
  Request& req = *live.front();
  const exec::ExecControl ctl = req.control();
  try {
    switch (req.kind) {
      case Request::Kind::kJoin: {
        GpuJoinOptions o;
        o.block_size = opt_.block_size;
        o.num_streams = opt_.num_streams;
        o.min_batches = opt_.min_batches;
        o.sample_rate = opt_.sample_rate;
        o.safety = opt_.safety;
        o.max_buffer_pairs = opt_.max_buffer_pairs;
        o.retry = opt_.retry;
        o.control = &ctl;
        GpuJoinResult r = prepared_->run(req.queries, o);
        record_latency(req);
        req.join_promise.set_value(std::move(r));
        return;
      }
      case Request::Kind::kSelfJoin: {
        GpuSelfJoinOptions o;
        o.unicomp = opt_.unicomp;
        o.block_size = opt_.block_size;
        o.num_streams = opt_.num_streams;
        o.min_batches = opt_.min_batches;
        o.sample_rate = opt_.sample_rate;
        o.safety = opt_.safety;
        o.max_buffer_pairs = opt_.max_buffer_pairs;
        o.retry = opt_.retry;
        o.control = &ctl;
        SelfJoinResult r = prepared_->self_join(o);
        record_latency(req);
        req.self_promise.set_value(std::move(r));
        return;
      }
      case Request::Kind::kKnn: {
        KnnOptions o;
        o.k = req.k;
        o.block_size = opt_.block_size;
        o.device = opt_.device;
        o.control = &ctl;
        KnnResult r = gpu_knn(req.queries, data_, o);
        record_latency(req);
        req.knn_promise.set_value(std::move(r));
        return;
      }
      case Request::Kind::kRange: break;  // handled above
    }
  } catch (...) {
    fail_one(req, std::current_exception());
  }
}

void QuerySession::run_range_batch(
    const std::vector<std::shared_ptr<Request>>& batch) {
  const bool count_only = batch.front()->count_only;
  if (batch.size() > 1) {
    coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
    coalesced_queries_.fetch_add(batch.size(), std::memory_order_relaxed);
  }

  // The batch control: a singleton query keeps its own cancel token and
  // deadline; a coalesced launch runs under the LATEST member deadline
  // (members that expire mid-launch are resolved individually at split
  // time) and no shared cancel token, so one client's cancel cannot
  // tear down its neighbours' work.
  exec::ExecControl batch_ctl;
  if (batch.size() == 1) {
    batch_ctl = batch.front()->control();
  } else {
    exec::Deadline latest;
    bool all_finite = true;
    for (const auto& sp : batch) {
      if (!sp->deadline.finite()) {
        all_finite = false;
        break;
      }
      if (!latest.finite() ||
          sp->deadline.remaining_ms() > latest.remaining_ms()) {
        latest = sp->deadline;
      }
    }
    if (all_finite) batch_ctl.deadline = latest;
  }

  Dataset queries(data_.dim());
  queries.reserve(batch.size());
  for (const auto& sp : batch) queries.push_back(sp->point.data());

  GpuJoinOptions o;
  o.block_size = opt_.block_size;
  o.num_streams = opt_.num_streams;
  o.min_batches = opt_.min_batches;
  o.sample_rate = opt_.sample_rate;
  o.safety = opt_.safety;
  o.max_buffer_pairs = opt_.max_buffer_pairs;
  o.retry = opt_.retry;
  o.mode = count_only ? ResultMode::kHistogram : ResultMode::kPairs;
  o.control = &batch_ctl;

  GpuJoinResult result;
  std::exception_ptr batch_error;
  try {
    result = prepared_->run(queries, o);
  } catch (...) {
    batch_error = std::current_exception();
  }

  if (batch_error != nullptr) {
    // Each member gets ITS verdict: own cancel, own deadline, then the
    // shared failure. (Under the latest-deadline rule, a batch-level
    // DeadlineExceeded implies every member deadline has passed too.)
    for (const auto& sp : batch) {
      fail_one(*sp, member_verdict(sp->control(), "batched launch",
                                   batch_error));
    }
    return;
  }

  // Split the grouped result back per query. Pairs are (query index,
  // data index); sort each member's ids ascending so the answer is
  // byte-identical whether the query ran alone or coalesced.
  std::vector<RangeResult> per_query(batch.size());
  if (count_only) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      per_query[i].count = result.histogram[i];
    }
  } else {
    for (const Pair& p : result.pairs.pairs()) {
      per_query[p.key].neighbors.push_back(p.value);
    }
    for (RangeResult& r : per_query) {
      std::sort(r.neighbors.begin(), r.neighbors.end());
      r.count = r.neighbors.size();
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& req = *batch[i];
    std::exception_ptr e =
        member_verdict(req.control(), "result split", nullptr);
    if (e != nullptr) {
      fail_one(req, std::move(e));  // partial answer discarded, typed
      continue;
    }
    record_latency(req);
    req.range_promise.set_value(std::move(per_query[i]));
  }
}

SessionStats QuerySession::stats() const {
  SessionStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  s.coalesced_queries = coalesced_queries_.load(std::memory_order_relaxed);
  s.restored_from_snapshot = restored_;
  s.startup_seconds = startup_seconds_;

  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lk(latency_mu_);
    lat = latency_ms_;
  }
  s.latency_samples = lat.size();
  if (!lat.empty()) {
    const auto at = [&lat](double q) {
      const auto idx = static_cast<std::size_t>(
          q * static_cast<double>(lat.size() - 1));
      std::nth_element(lat.begin(),
                       lat.begin() + static_cast<std::ptrdiff_t>(idx),
                       lat.end());
      return lat[idx];
    };
    s.p50_ms = at(0.50);
    s.p99_ms = at(0.99);
  }
  return s;
}

void QuerySession::save_snapshot(const std::string& path) const {
  snapshot::save(path, data_, prepared_->index());
}

}  // namespace sj::api
