// Always-on query service over a prepared self-join image.
//
// Every sjtool invocation so far has been one-shot: build the grid
// index, stage the device image, answer ONE query, tear it all down.
// A QuerySession inverts that lifecycle — the expensive data-side state
// (host GridIndex + cell-major device staging, held in a PreparedJoin)
// is built once, and many client threads then submit range / join /
// self-join / kNN queries against it concurrently. The session is the
// admission scheduler in front of the batched query-group machinery:
// single-point range queries are coalesced into one grouped-join launch
// and split back per query, so concurrent small queries ride the same
// amortisation path the paper's batching scheme gives large ones.
//
// Robustness contract:
//   - End-to-end deadlines + cooperative cancellation: each query may
//     carry a deadline (measured from admission, queue wait included)
//     and a CancelToken. Both are polled at the pipeline's checkpoint
//     seams; a tripped query fails with a typed exec::DeadlineExceeded /
//     exec::Cancelled through its future, partial segments are
//     discarded by the pipeline's drain path, and the session stays
//     healthy — neighbouring in-flight queries are unaffected.
//   - Admission control: the submit queue is bounded by depth and by
//     queued age. A query that does not fit (or that went stale before
//     a worker picked it up) is shed with a typed exec::Overloaded; it
//     never reaches the device.
//   - Fault composition: device faults injected under SJ_FAULTS keep
//     their PR-8 semantics inside the session — transient errors are
//     retried per RetryPolicy, terminal ones fail only the query that
//     hit them.
//   - Crash-safe warm start: construct with SessionOptions::snapshot to
//     restore the index from a checksummed snapshot (core/snapshot.hpp)
//     in O(read) instead of rebuilding; a missing, truncated or corrupt
//     snapshot falls back to a cold build (with a stderr warning) and
//     atomically rewrites the snapshot for the next boot.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/dataset.hpp"
#include "core/join.hpp"
#include "core/knn.hpp"
#include "core/prepared.hpp"
#include "core/self_join.hpp"

namespace sj::api {

/// Per-query knobs at submission. The deadline clock starts at submit —
/// it bounds the END-TO-END latency (queue wait + execution), because a
/// client with a 50 ms budget does not care which side of the queue the
/// time went to.
struct QueryOptions {
  /// End-to-end deadline in milliseconds; <= 0 means none.
  double deadline_ms = 0.0;

  /// Optional cancellation token, non-owning. The token must outlive
  /// the query's future.
  const exec::CancelToken* cancel = nullptr;

  /// Range queries only: skip materialising neighbour ids and return
  /// just the count (served from the histogram path — no pair buffers).
  bool count_only = false;
};

/// Session-wide configuration.
struct SessionOptions {
  /// Worker threads draining the admission queue — the concurrency cap.
  /// Each in-flight query (or coalesced batch) occupies one worker.
  int workers = 2;

  /// Admission-queue depth bound; a submit against a full queue throws
  /// exec::Overloaded immediately.
  std::size_t max_queue_depth = 256;

  /// Shed queries that waited in the queue longer than this before a
  /// worker picked them up (exec::Overloaded through the future);
  /// <= 0 disables age shedding.
  double max_queue_age_ms = 0.0;

  /// Upper bound on how many single-point range queries one worker may
  /// coalesce into a single grouped-join launch.
  std::size_t coalesce_limit = 64;

  /// UNICOMP for self-join queries (range/join queries never use it —
  /// its parity argument needs query cells == data cells).
  bool unicomp = true;

  /// Engine knobs shared by every query the session runs.
  int block_size = 256;
  int num_streams = 3;
  std::size_t min_batches = 3;
  double sample_rate = 0.01;
  double safety = 1.25;
  std::uint64_t max_buffer_pairs = 1ULL << 24;
  RetryPolicy retry;
  gpu::DeviceSpec device = gpu::DeviceSpec::titan_x_pascal();

  /// Snapshot path for warm starts; empty disables snapshotting. See the
  /// class comment for the restore-or-rebuild semantics.
  std::string snapshot;
};

/// One range query's answer: the data-point ids within eps of the query
/// point, ascending (deterministic across runs and coalescing layouts).
/// In count_only mode `neighbors` stays empty and only `count` is set.
struct RangeResult {
  std::vector<std::uint32_t> neighbors;
  std::uint64_t count = 0;
};

/// Monotonic service counters plus latency percentiles. Latency samples
/// cover completed queries only (end-to-end, admission to result).
struct SessionStats {
  std::uint64_t admitted = 0;   ///< accepted into the queue
  std::uint64_t shed = 0;       ///< rejected by depth/age admission control
  std::uint64_t expired = 0;    ///< failed with DeadlineExceeded
  std::uint64_t cancelled = 0;  ///< failed with Cancelled
  std::uint64_t completed = 0;  ///< finished with a result
  std::uint64_t failed = 0;     ///< failed with any other error
  std::uint64_t coalesced_batches = 0;  ///< multi-query launches
  std::uint64_t coalesced_queries = 0;  ///< range queries inside them
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t latency_samples = 0;
  bool restored_from_snapshot = false;
  double startup_seconds = 0.0;  ///< index restore-or-build + staging
};

/// The always-on service. Construction stages the data image (cold
/// build or snapshot restore) and starts the worker pool; destruction
/// closes admission, fails queued work with exec::Overloaded, lets
/// in-flight queries finish, and joins the workers.
///
/// Thread safety: every public method may be called from any thread.
class QuerySession {
 public:
  /// The session owns a copy of `data` (the prepared image references
  /// it for its lifetime). Throws on invalid eps; snapshot problems
  /// never throw — they degrade to a cold build with a stderr warning.
  QuerySession(Dataset data, double eps, SessionOptions opt = {});
  ~QuerySession();

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Epsilon range query around one point (dim must match the data).
  /// Throws exec::Overloaded NOW if the queue is full; every later
  /// failure (deadline, cancel, device fault) arrives typed through the
  /// future.
  std::future<RangeResult> range(std::vector<double> point,
                                 QueryOptions q = {});

  /// Epsilon join of a whole query set against the prepared data, the
  /// session analogue of gpu_join (pairs are query-index, data-index).
  std::future<GpuJoinResult> join(Dataset queries, QueryOptions q = {});

  /// Full self-join of the prepared dataset at the session eps.
  std::future<SelfJoinResult> self_join(QueryOptions q = {});

  /// k nearest data neighbours for every query point. kNN builds its
  /// own width-adapted grid per call (the eps grid is usually too fine),
  /// so only admission and checkpointing are amortised, not the index.
  std::future<KnnResult> knn(Dataset queries, int k, QueryOptions q = {});

  /// Point-in-time counters + percentiles.
  SessionStats stats() const;

  /// Atomically (re)write the index snapshot; throws on I/O failure.
  void save_snapshot(const std::string& path) const;

  const Dataset& data() const { return data_; }
  double eps() const { return prepared_->eps(); }
  const PreparedJoin& prepared() const { return *prepared_; }
  bool restored_from_snapshot() const { return restored_; }

 private:
  struct Request;

  void submit(std::shared_ptr<Request> req);
  void worker_loop();
  void execute(std::vector<std::shared_ptr<Request>> batch);
  void run_range_batch(const std::vector<std::shared_ptr<Request>>& batch);
  void fail_one(Request& req, std::exception_ptr e);
  void record_latency(const Request& req);

  Dataset data_;
  SessionOptions opt_;
  std::unique_ptr<PreparedJoin> prepared_;
  bool restored_ = false;
  double startup_seconds_ = 0.0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Request>> queue_;
  bool closed_ = false;
  std::vector<std::thread> workers_;

  // Counters are independent and monotonic; latency samples share mu_.
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> coalesced_batches_{0};
  std::atomic<std::uint64_t> coalesced_queries_{0};
  mutable std::mutex latency_mu_;
  std::vector<double> latency_ms_;  // bounded ring of recent samples
  std::size_t latency_next_ = 0;
};

}  // namespace sj::api
