// String-keyed registry of backends — the single dispatch point for every
// caller in the repo, covering all three operations (self-join, query/data
// join, kNN).
//
//   const auto& b = sj::api::BackendRegistry::instance().at("gpu_unicomp");
//   auto outcome = b.run(dataset, eps);
//   // operation-gated lookup (throws a one-line error naming the capable
//   // backends when `algo` cannot serve the operation):
//   const auto& j = registry.at(algo, sj::api::Operation::kJoin);
//   auto join_out = j.join(queries, data, eps);
//
// The five built-in engines (gpu, gpu_unicomp, ego, rtree, brute — plus
// the gpu_bf lower-bound reference) self-register on first access.
// External code extends the system by registering further backends, or a
// static BackendRegistrar at namespace scope in a translation unit that is
// guaranteed to be linked:
//
//   static sj::api::BackendRegistrar reg{
//       std::make_unique<MyShardedBackend>()};
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/backend.hpp"

namespace sj::api {

class BackendRegistry {
 public:
  /// The process-wide registry, with the built-in backends registered.
  static BackendRegistry& instance();

  /// Register `backend` under its name(). Throws std::invalid_argument on
  /// a duplicate name or alias.
  void add(std::unique_ptr<Backend> backend);

  /// Register an alternative name for an existing backend (e.g.
  /// "superego" -> "ego"). Throws if `alias` is taken or `target` unknown.
  void add_alias(std::string alias, const std::string& target);

  /// Lookup by primary name or alias; nullptr when absent.
  const Backend* find(std::string_view name) const;

  /// Lookup that throws std::invalid_argument with a message listing every
  /// registered name and its capabilities — the error sjtool surfaces for
  /// a bad --algo.
  const Backend& at(std::string_view name) const;

  /// Operation-gated lookup: like at(name), and additionally throws a
  /// one-line std::invalid_argument listing the capable backends when the
  /// named backend does not advertise `op`.
  const Backend& at(std::string_view name, Operation op) const;

  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Sorted primary names (aliases excluded).
  std::vector<std::string> names() const;

  /// Sorted primary names of the backends whose capabilities advertise
  /// `op` (every backend, for Operation::kSelfJoin).
  std::vector<std::string> names_supporting(Operation op) const;

  /// Sorted "alias -> target" descriptions.
  std::vector<std::string> aliases() const;

 private:
  struct Entry {
    std::unique_ptr<Backend> backend;
    std::vector<std::string> aliases;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

/// RAII self-registration helper for out-of-tree backends.
struct BackendRegistrar {
  explicit BackendRegistrar(std::unique_ptr<Backend> backend) {
    BackendRegistry::instance().add(std::move(backend));
  }
};

}  // namespace sj::api
