// String-keyed registry of self-join backends — the single dispatch point
// for every caller in the repo.
//
//   const auto& b = sj::api::BackendRegistry::instance().at("gpu_unicomp");
//   auto outcome = b.run(dataset, eps);
//
// The five built-in engines (gpu, gpu_unicomp, ego, rtree, brute — plus
// the gpu_bf lower-bound reference) self-register on first access.
// External code extends the system by registering further backends, or a
// static BackendRegistrar at namespace scope in a translation unit that is
// guaranteed to be linked:
//
//   static sj::api::BackendRegistrar reg{
//       std::make_unique<MyShardedBackend>()};
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/backend.hpp"

namespace sj::api {

class BackendRegistry {
 public:
  /// The process-wide registry, with the built-in backends registered.
  static BackendRegistry& instance();

  /// Register `backend` under its name(). Throws std::invalid_argument on
  /// a duplicate name or alias.
  void add(std::unique_ptr<SelfJoinBackend> backend);

  /// Register an alternative name for an existing backend (e.g.
  /// "superego" -> "ego"). Throws if `alias` is taken or `target` unknown.
  void add_alias(std::string alias, const std::string& target);

  /// Lookup by primary name or alias; nullptr when absent.
  const SelfJoinBackend* find(std::string_view name) const;

  /// Lookup that throws std::invalid_argument with a message listing every
  /// registered name — the error sjtool surfaces for a bad --algo.
  const SelfJoinBackend& at(std::string_view name) const;

  bool contains(std::string_view name) const { return find(name) != nullptr; }

  /// Sorted primary names (aliases excluded).
  std::vector<std::string> names() const;

  /// Sorted "alias -> target" descriptions.
  std::vector<std::string> aliases() const;

 private:
  struct Entry {
    std::unique_ptr<SelfJoinBackend> backend;
    std::vector<std::string> aliases;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // registration order
};

/// RAII self-registration helper for out-of-tree backends.
struct BackendRegistrar {
  explicit BackendRegistrar(std::unique_ptr<SelfJoinBackend> backend) {
    BackendRegistry::instance().add(std::move(backend));
  }
};

}  // namespace sj::api
