#include "gpusim/stream.hpp"

#include "common/fault.hpp"

namespace sj::gpu {

Stream::Stream(const DeviceSpec& spec) : spec_(spec) {
  worker_ = std::thread([this] { worker_loop(); });
}

Stream::~Stream() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void Stream::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void Stream::memcpy_async(void* dst, const void* src, std::size_t bytes) {
  SJ_FAULT_POINT(kStream);  // before enqueue: a failed transfer copies nothing
  enqueue([this, dst, src, bytes] {
    std::memcpy(dst, src, bytes);
    // Accounting happens on the worker thread; synchronize() establishes
    // the happens-before edge for readers.
    bytes_copied_ += bytes;
    modeled_copy_seconds_ +=
        static_cast<double>(bytes) / (spec_.pcie_bandwidth_gbs * 1e9);
  });
}

void Stream::synchronize() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void Stream::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }
}

void Event::record(Stream& s) {
  auto st = std::make_shared<State>();
  state_ = st;
  s.enqueue([st] {
    std::lock_guard<std::mutex> lock(st->mu);
    st->done = true;
    st->cv.notify_all();
  });
}

void Event::wait() const {
  SJ_FAULT_POINT(kSync);  // wait() is idempotent, so a retry re-waits safely
  if (state_ == nullptr) return;
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool Event::query() const {
  if (state_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

}  // namespace sj::gpu
