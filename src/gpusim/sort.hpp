// Device key/value sort — the stand-in for thrust::sort_by_key, which the
// paper applies to each batch's (query id, neighbour id) pairs before
// transferring them to the host (Section IV-E). Thrust dispatches integer
// keys to a radix sort; this is the serial equivalent (LSD radix over the
// packed 64-bit (key, value), 16 bits per pass), far cheaper than a
// comparison sort at the result-set sizes the self-join produces.
#pragma once

#include <cstddef>

#include "common/result.hpp"

namespace sj::gpu {

/// Sort pairs lexicographically by (key, value). `tmp` must hold at least
/// `n` elements (the analogue of thrust's O(n) temporary device storage).
void sort_pairs_by_key(Pair* data, std::size_t n, Pair* tmp);

}  // namespace sj::gpu
