#include "gpusim/cachesim.hpp"

#include <limits>
#include <stdexcept>

namespace sj::gpu {

CacheSim::CacheSim(std::size_t capacity_bytes, int line_bytes, int ways)
    : line_bytes_(line_bytes), ways_(ways) {
  if (line_bytes <= 0 || ways <= 0 || capacity_bytes == 0) {
    throw std::invalid_argument("CacheSim: invalid geometry");
  }
  sets_ = capacity_bytes / (static_cast<std::size_t>(line_bytes) * ways);
  if (sets_ == 0) sets_ = 1;
  tags_.assign(sets_ * ways_, std::numeric_limits<std::uint64_t>::max());
  lru_.assign(sets_ * ways_, 0);
}

bool CacheSim::access(std::uint64_t addr, unsigned bytes) {
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + (bytes == 0 ? 0 : bytes - 1)) / line_bytes_;
  bool all_hit = true;
  for (std::uint64_t line = first; line <= last; ++line) {
    all_hit = access_line(line) && all_hit;
  }
  return all_hit;
}

bool CacheSim::access_line(std::uint64_t line_addr) {
  const std::size_t set = line_addr % sets_;
  const std::size_t base = set * ways_;
  ++clock_;
  for (int w = 0; w < ways_; ++w) {
    if (tags_[base + w] == line_addr) {
      lru_[base + w] = clock_;
      ++hits_;
      return true;
    }
  }
  // Miss: evict LRU way.
  std::size_t victim = base;
  for (int w = 1; w < ways_; ++w) {
    if (lru_[base + w] < lru_[victim]) victim = base + w;
  }
  tags_[victim] = line_addr;
  lru_[victim] = clock_;
  ++misses_;
  return false;
}

}  // namespace sj::gpu
