#include "gpusim/device.hpp"

namespace sj::gpu {

DeviceSpec DeviceSpec::titan_x_pascal() { return DeviceSpec{}; }

DeviceSpec DeviceSpec::tiny(std::size_t global_bytes) {
  DeviceSpec s;
  s.name = "Simulated tiny device";
  s.global_mem_bytes = global_bytes;
  return s;
}

}  // namespace sj::gpu
