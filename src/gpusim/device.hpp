// Device model for the simulated GPU.
//
// The paper's experiments ran on an NVIDIA TITAN X (Pascal, GP102) with
// 12 GiB of global memory (Section VI-B). This substrate reproduces the
// *resource model* of that device — SM count, threads/blocks/registers per
// SM, global-memory capacity, unified (L1) cache geometry, and PCIe
// transfer bandwidth — so that the capacity constraint that motivates the
// batching scheme and the occupancy/cache metrics of Table II can be
// regenerated without CUDA hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace sj::gpu {

struct DeviceSpec {
  std::string name = "Simulated TITAN X (Pascal)";

  // Streaming-multiprocessor resources (GP102).
  int sm_count = 28;
  int warp_size = 32;
  int max_threads_per_sm = 2048;
  int max_blocks_per_sm = 32;
  int max_threads_per_block = 1024;
  std::uint32_t regs_per_sm = 65536;
  std::uint32_t reg_alloc_granularity = 256;  // per-warp register allocation
  int max_regs_per_thread = 255;
  std::size_t shared_mem_per_sm = 98304;
  std::size_t shared_mem_per_block = 49152;

  // Memory system.
  std::size_t global_mem_bytes = 12ULL * 1024 * 1024 * 1024;  // 12 GiB
  std::size_t l1_bytes = 49152;  // unified L1/texture cache per SM
  int l1_line_bytes = 128;
  int l1_ways = 4;
  double core_clock_ghz = 1.417;
  int l1_hit_latency_cycles = 28;
  int mem_latency_cycles = 350;

  // Host link (PCIe 3.0 x16 effective).
  double pcie_bandwidth_gbs = 12.0;

  /// The paper's evaluation device.
  static DeviceSpec titan_x_pascal();

  /// A tiny device used by tests to force out-of-memory and batching
  /// paths without allocating much host RAM.
  static DeviceSpec tiny(std::size_t global_bytes);
};

}  // namespace sj::gpu
