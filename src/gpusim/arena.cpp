#include "gpusim/arena.hpp"

#include <algorithm>

namespace sj::gpu {

void GlobalMemoryArena::allocate(std::size_t bytes) {
  SJ_FAULT_POINT(kAlloc);  // before accounting: a retry sees a clean arena
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > capacity_ - used_) {
    throw DeviceOutOfMemory(bytes, capacity_ - used_);
  }
  used_ += bytes;
  peak_ = std::max(peak_, used_);
}

void GlobalMemoryArena::release(std::size_t bytes) noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  used_ -= std::min(bytes, used_);
}

}  // namespace sj::gpu
