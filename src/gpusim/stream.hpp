// CUDA-style streams: FIFO queues of work executed by a dedicated worker
// thread, enabling the batching scheme's overlap of kernel execution with
// bidirectional host-device transfers (paper Section V-A). Transfer times
// are additionally *modelled* against the device's PCIe bandwidth so the
// harness can report how much transfer the overlap hides.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "gpusim/device.hpp"

namespace sj::gpu {

class Stream {
 public:
  explicit Stream(const DeviceSpec& spec);
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Enqueue arbitrary work (kernel launches, callbacks).
  void enqueue(std::function<void()> fn);

  /// Enqueue an asynchronous memcpy of `bytes` from src to dst; the
  /// modelled PCIe transfer time is accumulated in modeled_copy_seconds().
  void memcpy_async(void* dst, const void* src, std::size_t bytes);

  /// Block until every enqueued operation has completed.
  void synchronize();

  /// Total bytes copied through this stream.
  std::size_t bytes_copied() const { return bytes_copied_; }

  /// Modelled PCIe transfer time for those bytes (seconds).
  double modeled_copy_seconds() const { return modeled_copy_seconds_; }

 private:
  void worker_loop();

  DeviceSpec spec_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  bool busy_ = false;
  std::size_t bytes_copied_ = 0;
  double modeled_copy_seconds_ = 0.0;
  std::thread worker_;
};

/// CUDA-event analogue: marks a point in a stream's FIFO that other host
/// threads can wait on without draining the whole stream the way
/// synchronize() does. This is what lets a pipeline stage hand work to a
/// stream and move on, with a later stage blocking only on the specific
/// operations it depends on.
class Event {
 public:
  /// Capture the work enqueued on `s` so far; the event signals once that
  /// work has executed. Re-recording replaces the previous capture.
  void record(Stream& s);

  /// Block until the recorded point has been reached. A never-recorded
  /// event is immediately ready.
  void wait() const;

  /// Non-blocking completion check (cudaEventQuery).
  bool query() const;

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  std::shared_ptr<State> state_;
};

}  // namespace sj::gpu
