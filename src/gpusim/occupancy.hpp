// Theoretical occupancy calculator (the CUDA occupancy model for Pascal).
//
// Table II of the paper reports theoretical occupancy for the self-join
// kernels with and without UNICOMP (100%/75% in 2-D, 62.5%/50% in 5-6-D)
// and attributes the drop to register pressure. This module reproduces
// the CUDA occupancy calculation: blocks per SM are limited by threads,
// registers (allocated per warp at a fixed granularity), shared memory,
// and the hardware block limit; occupancy is active threads over the SM's
// maximum.
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"

namespace sj::gpu {

struct OccupancyResult {
  int blocks_per_sm = 0;
  int active_threads_per_sm = 0;
  double occupancy = 0.0;  // in [0, 1]
  // The individual limits (useful for "what is the bottleneck" queries).
  int limit_threads = 0;
  int limit_regs = 0;
  int limit_smem = 0;
  int limit_blocks = 0;
};

/// Theoretical occupancy of a kernel with `regs_per_thread` registers and
/// `smem_per_block` bytes of shared memory at the given block size.
OccupancyResult theoretical_occupancy(const DeviceSpec& spec, int block_size,
                                      int regs_per_thread,
                                      std::size_t smem_per_block = 0);

/// Register-usage model for the self-join kernels. Derived from the
/// occupancies the paper reports in Table II: the base kernel uses
/// 24 + 4*dim registers per thread and UNICOMP adds 8 (its extra loop
/// state and parity bookkeeping). Reproduces 100%/75% at 2-D and
/// 62.5%/50% at 5-6-D with 256-thread blocks on the Pascal spec.
int self_join_regs_per_thread(int dim, bool unicomp);

}  // namespace sj::gpu
