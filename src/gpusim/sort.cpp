#include "gpusim/sort.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/fault.hpp"

namespace sj::gpu {

namespace {

inline std::uint64_t packed(const Pair& p) {
  return (static_cast<std::uint64_t>(p.key) << 32) | p.value;
}

}  // namespace

void sort_pairs_by_key(Pair* data, std::size_t n, Pair* tmp) {
  SJ_FAULT_POINT(kSort);  // before any pass: data is untouched on failure
  if (n < 2) return;
  constexpr int kBits = 16;
  constexpr std::size_t kBuckets = std::size_t{1} << kBits;
  std::vector<std::size_t> count(kBuckets);

  Pair* src = data;
  Pair* dst = tmp;
  for (int shift = 0; shift < 64; shift += kBits) {
    std::fill(count.begin(), count.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++count[(packed(src[i]) >> shift) & (kBuckets - 1)];
    }
    // Pass elision: if every element shares one digit the pass is the
    // identity (common for the high key/value bits).
    if (count[(packed(src[0]) >> shift) & (kBuckets - 1)] == n) continue;

    std::size_t sum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      const std::size_t c = count[b];
      count[b] = sum;
      sum += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[count[(packed(src[i]) >> shift) & (kBuckets - 1)]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::memcpy(data, src, n * sizeof(Pair));
}

}  // namespace sj::gpu
