// Kernel profiling counters — the simulated analogue of the nVIDIA Visual
// Profiler metrics the paper collects for Table II (occupancy and unified
// cache utilisation), plus algorithmic work counters (cells searched,
// distance calculations) used by the EXPERIMENTS.md work-count analysis.
#pragma once

#include <cstdint>

namespace sj::gpu {

struct KernelMetrics {
  // Algorithmic work.
  std::uint64_t cells_examined = 0;    // adjacent cells enumerated
  std::uint64_t cells_nonempty = 0;    // cells found in B (binary search hit)
  std::uint64_t distance_calcs = 0;    // point-point distance evaluations
  std::uint64_t results = 0;           // pairs emitted

  // Memory behaviour (metrics mode only).
  std::uint64_t global_loads = 0;      // point-coordinate loads
  std::uint64_t global_load_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Derived/modelled.
  double kernel_seconds = 0.0;         // wall-clock kernel time
  double occupancy = 0.0;              // theoretical occupancy [0, 1]
  double cache_bw_gbs = 0.0;           // modelled unified-cache bandwidth

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  KernelMetrics& operator+=(const KernelMetrics& o) {
    cells_examined += o.cells_examined;
    cells_nonempty += o.cells_nonempty;
    distance_calcs += o.distance_calcs;
    results += o.results;
    global_loads += o.global_loads;
    global_load_bytes += o.global_load_bytes;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    kernel_seconds += o.kernel_seconds;
    return *this;
  }
};

}  // namespace sj::gpu
