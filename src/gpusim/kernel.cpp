#include "gpusim/kernel.hpp"

// launch() is a header template; this translation unit exists so the
// library has a home for future non-template launch plumbing and keeps
// the target's source list honest.

namespace sj::gpu {}  // namespace sj::gpu
