#include "gpusim/occupancy.hpp"

#include <algorithm>

namespace sj::gpu {

namespace {

std::uint32_t round_up(std::uint32_t v, std::uint32_t granularity) {
  return (v + granularity - 1) / granularity * granularity;
}

}  // namespace

OccupancyResult theoretical_occupancy(const DeviceSpec& spec, int block_size,
                                      int regs_per_thread,
                                      std::size_t smem_per_block) {
  OccupancyResult r;
  if (block_size <= 0 || block_size > spec.max_threads_per_block) return r;

  r.limit_threads = spec.max_threads_per_sm / block_size;

  const int warps_per_block =
      (block_size + spec.warp_size - 1) / spec.warp_size;
  if (regs_per_thread > 0) {
    const std::uint32_t regs_per_warp =
        round_up(static_cast<std::uint32_t>(regs_per_thread) *
                     static_cast<std::uint32_t>(spec.warp_size),
                 spec.reg_alloc_granularity);
    const std::uint32_t regs_per_block =
        regs_per_warp * static_cast<std::uint32_t>(warps_per_block);
    r.limit_regs = static_cast<int>(spec.regs_per_sm / regs_per_block);
  } else {
    r.limit_regs = spec.max_blocks_per_sm;
  }

  r.limit_smem = smem_per_block == 0
                     ? spec.max_blocks_per_sm
                     : static_cast<int>(spec.shared_mem_per_sm /
                                        smem_per_block);
  r.limit_blocks = spec.max_blocks_per_sm;

  r.blocks_per_sm = std::min({r.limit_threads, r.limit_regs, r.limit_smem,
                              r.limit_blocks});
  r.blocks_per_sm = std::max(r.blocks_per_sm, 0);
  r.active_threads_per_sm = r.blocks_per_sm * block_size;
  r.occupancy = static_cast<double>(r.active_threads_per_sm) /
                static_cast<double>(spec.max_threads_per_sm);
  return r;
}

int self_join_regs_per_thread(int dim, bool unicomp) {
  return 24 + 4 * dim + (unicomp ? 8 : 0);
}

}  // namespace sj::gpu
