// Set-associative LRU cache simulator modelling the Pascal unified (L1)
// cache — "on the nVIDIA Maxwell and Pascal GPUs, the unified (L1) cache
// is a coalescing buffer for memory accesses" (paper Section VI-C,
// Table II discussion). Used in metrics mode to measure how UNICOMP
// changes temporal locality, the effect the paper identifies as the cause
// of its >2x speedups in 5-6 dimensions.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/device.hpp"

namespace sj::gpu {

class CacheSim {
 public:
  /// Geometry from the device spec (capacity, line size, associativity).
  explicit CacheSim(const DeviceSpec& spec)
      : CacheSim(spec.l1_bytes, spec.l1_line_bytes, spec.l1_ways) {}
  CacheSim(std::size_t capacity_bytes, int line_bytes, int ways);

  /// Simulate a load of `bytes` at byte address `addr`; returns true on a
  /// full hit (every touched line present). Not thread safe — metrics
  /// runs execute kernels serially (ExecMode::kSerial).
  bool access(std::uint64_t addr, unsigned bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double hit_rate() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(hits_) /
                                 static_cast<double>(accesses());
  }
  void reset_counters() { hits_ = misses_ = 0; }

  int line_bytes() const { return line_bytes_; }

 private:
  bool access_line(std::uint64_t line_addr);

  int line_bytes_;
  int ways_;
  std::size_t sets_;
  std::vector<std::uint64_t> tags_;  // sets_ * ways_, ~0 = invalid
  std::vector<std::uint64_t> lru_;   // per-entry last-use stamp
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace sj::gpu
