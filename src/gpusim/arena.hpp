// Global-memory arena: enforces the device's memory capacity.
//
// Device buffers live in host RAM (this is a simulation) but every
// allocation is accounted against the modelled global-memory capacity;
// exceeding it throws DeviceOutOfMemory, exactly the constraint that
// forces the paper's batching scheme (Section V-A).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/fault.hpp"
#include "gpusim/device.hpp"

namespace sj::gpu {

/// Device memory exhausted. Part of the sj::fault taxonomy: IS-A
/// fault::ResourceExhausted, so the pipeline's graceful-degradation path
/// (halve the batch) catches real arena exhaustion and injected
/// allocation faults the same way.
class DeviceOutOfMemory : public fault::ResourceExhausted {
 public:
  DeviceOutOfMemory(std::size_t requested, std::size_t free_bytes)
      : fault::ResourceExhausted("device out of memory: requested " +
                                 std::to_string(requested) + " bytes, " +
                                 std::to_string(free_bytes) + " free"),
        requested(requested),
        free_bytes(free_bytes) {}

  /// Rebuild with an explicit message (error-context annotation).
  DeviceOutOfMemory(std::size_t requested, std::size_t free_bytes,
                    const std::string& message)
      : fault::ResourceExhausted(message),
        requested(requested),
        free_bytes(free_bytes) {}

  std::size_t requested;
  std::size_t free_bytes;
};

class GlobalMemoryArena {
 public:
  explicit GlobalMemoryArena(const DeviceSpec& spec)
      : capacity_(spec.global_mem_bytes) {}
  explicit GlobalMemoryArena(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  GlobalMemoryArena(const GlobalMemoryArena&) = delete;
  GlobalMemoryArena& operator=(const GlobalMemoryArena&) = delete;

  /// Reserve `bytes`; throws DeviceOutOfMemory when it does not fit.
  void allocate(std::size_t bytes);
  /// Release `bytes` previously allocated.
  void release(std::size_t bytes) noexcept;

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  std::size_t free_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_ - used_;
  }
  std::size_t peak_used() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::size_t peak_ = 0;
};

/// Typed device allocation (the analogue of cudaMalloc'd memory). Storage
/// is host RAM; capacity accounting goes through the arena. Movable,
/// non-copyable (like a device pointer with unique ownership).
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  /// Storage is intentionally NOT value-initialised (cudaMalloc semantics:
  /// device memory starts undefined) — large result buffers would
  /// otherwise pay a full memset before every join.
  DeviceBuffer(GlobalMemoryArena& arena, std::size_t count)
      : arena_(&arena), bytes_(count * sizeof(T)) {
    arena_->allocate(bytes_);
    try {
      storage_ = std::make_unique_for_overwrite<T[]>(count);
      count_ = count;
    } catch (...) {
      arena_->release(bytes_);
      throw;
    }
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { reset(); }

  void reset() {
    if (arena_ != nullptr) {
      arena_->release(bytes_);
      arena_ = nullptr;
    }
    storage_.reset();
    count_ = 0;
    bytes_ = 0;
  }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  T* data() { return storage_.get(); }
  const T* data() const { return storage_.get(); }
  T& operator[](std::size_t i) { return storage_[i]; }
  const T& operator[](std::size_t i) const { return storage_[i]; }

 private:
  void swap(DeviceBuffer& other) noexcept {
    std::swap(arena_, other.arena_);
    std::swap(bytes_, other.bytes_);
    std::swap(count_, other.count_);
    storage_.swap(other.storage_);
  }

  GlobalMemoryArena* arena_ = nullptr;
  std::size_t bytes_ = 0;
  std::size_t count_ = 0;
  std::unique_ptr<T[]> storage_;
};

}  // namespace sj::gpu
