// Device atomics. Result pairs are appended through an atomic cursor,
// mirroring the paper's "atomic: resultSet <- resultSet U result"
// (Algorithm 1, line 17).
#pragma once

#include <atomic>
#include <cstdint>

namespace sj::gpu {

/// Analogue of CUDA atomicAdd on an unsigned 64-bit counter.
class DeviceCounter {
 public:
  DeviceCounter() : v_(0) {}

  /// Returns the value before the addition (CUDA atomicAdd semantics).
  std::uint64_t fetch_add(std::uint64_t n) {
    return v_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_;
};

}  // namespace sj::gpu
