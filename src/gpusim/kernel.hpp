// Kernel launch engine: the CUDA grid/block/thread execution model on CPU
// threads.
//
// A kernel is any callable taking a ThreadCtx. launch() executes it for
// every logical thread of the grid. Blocks are distributed across OpenMP
// worker threads (dynamic schedule, mirroring how a GPU scheduler assigns
// thread blocks to SMs in arbitrary order); threads within a block run
// sequentially. The paper's kernels (Algorithms 1 and 2) use no intra-
// block synchronisation or shared memory ("Threads do not utilize shared
// memory in this kernel", Section IV-E), so this execution order is
// semantically indistinguishable from the CUDA one.
#pragma once

#include <cstdint>
#include <functional>

#include "common/contracts.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"

namespace sj::gpu {

struct LaunchConfig {
  std::uint64_t grid_dim = 0;  // number of blocks
  int block_dim = 256;         // threads per block (paper default: 256)

  /// Blocks needed to cover `n` logical threads.
  static LaunchConfig cover(std::uint64_t n, int block_dim = 256) {
    SJ_EXPECT(block_dim >= 1, "LaunchConfig::cover: block_dim must be >= 1");
    LaunchConfig cfg;
    cfg.block_dim = block_dim;
    cfg.grid_dim = (n + static_cast<std::uint64_t>(block_dim) - 1) /
                   static_cast<std::uint64_t>(block_dim);
    SJ_ENSURE(cfg.grid_dim * static_cast<std::uint64_t>(block_dim) >= n,
              "LaunchConfig::cover: grid must cover every logical thread");
    return cfg;
  }
};

/// Per-thread coordinates, the analogue of (blockIdx, threadIdx).
struct ThreadCtx {
  std::uint64_t block_idx;
  int thread_idx;
  int block_dim;
  std::uint64_t grid_dim;

  /// blockIdx.x * blockDim.x + threadIdx.x (Algorithm 1, line 2).
  std::uint64_t global_id() const {
    return block_idx * static_cast<std::uint64_t>(block_dim) +
           static_cast<std::uint64_t>(thread_idx);
  }
};

struct KernelStats {
  double seconds = 0.0;          // wall-clock execution time
  std::uint64_t threads_run = 0;  // logical threads executed
};

enum class ExecMode {
  kParallel,  // blocks across OpenMP workers (default)
  kSerial,    // deterministic single-threaded order (metrics/cache-sim runs)
};

/// Execute `body(ctx)` for every logical thread of the grid.
template <typename F>
KernelStats launch(const LaunchConfig& cfg, F&& body,
                   ExecMode mode = ExecMode::kParallel) {
  SJ_EXPECT(cfg.block_dim >= 1, "launch: block_dim must be >= 1");
  // Launch-entry fault: thrown before any kernel-thread body runs, so no
  // partial side effects (counters, result writes) reach device memory.
  SJ_FAULT_POINT(kStream);
  Timer t;
  const std::int64_t grid = static_cast<std::int64_t>(cfg.grid_dim);
  if (mode == ExecMode::kParallel) {
#pragma omp parallel for schedule(dynamic, 8)
    for (std::int64_t b = 0; b < grid; ++b) {
      ThreadCtx ctx{static_cast<std::uint64_t>(b), 0, cfg.block_dim,
                    cfg.grid_dim};
      for (int tIdx = 0; tIdx < cfg.block_dim; ++tIdx) {
        ctx.thread_idx = tIdx;
        body(ctx);
      }
    }
  } else {
    for (std::int64_t b = 0; b < grid; ++b) {
      ThreadCtx ctx{static_cast<std::uint64_t>(b), 0, cfg.block_dim,
                    cfg.grid_dim};
      for (int tIdx = 0; tIdx < cfg.block_dim; ++tIdx) {
        ctx.thread_idx = tIdx;
        body(ctx);
      }
    }
  }
  KernelStats stats;
  stats.seconds = t.seconds();
  stats.threads_run = cfg.grid_dim * static_cast<std::uint64_t>(cfg.block_dim);
  return stats;
}

}  // namespace sj::gpu
