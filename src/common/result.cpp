#include "common/result.hpp"

#include <algorithm>

namespace sj {

void ResultSet::normalize() {
  std::sort(pairs_.begin(), pairs_.end());
  pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
}

bool ResultSet::equal_normalized(ResultSet a, ResultSet b) {
  a.normalize();
  b.normalize();
  return a.pairs_ == b.pairs_;
}

bool ResultSet::is_symmetric() const {
  for (const Pair& p : pairs_) {
    if (!std::binary_search(pairs_.begin(), pairs_.end(),
                            Pair{p.value, p.key})) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint32_t> ResultSet::counts_per_key(std::size_t n) const {
  std::vector<std::uint32_t> counts(n, 0);
  for (const Pair& p : pairs_) ++counts[p.key];
  return counts;
}

NeighborTable::NeighborTable(ResultSet rs, std::size_t n) {
  rs.normalize();
  offsets_.assign(n + 1, 0);
  for (const Pair& p : rs.pairs()) ++offsets_[p.key + 1];
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  neighbors_.reserve(rs.size());
  for (const Pair& p : rs.pairs()) neighbors_.push_back(p.value);
}

}  // namespace sj
