// Strict numeric parsing for untrusted CLI input.
//
// std::stod / std::stoi silently accept trailing junk ("0.5x" parses as
// 0.5) and surface garbage as a bare "stod" exception message. These
// helpers consume the ENTIRE token, reject non-finite values, and name
// the offending flag in a one-line std::invalid_argument so tools can
// fail fast with something actionable.
#pragma once

#include <string>

namespace sj::parse {

/// Parse `text` as a double. The whole string must be consumed and the
/// value finite; otherwise throws std::invalid_argument whose message
/// starts with `what` (e.g. "--eps expects a finite number, got '0.5x'").
double number(const std::string& what, const std::string& text);

/// number() restricted to values > 0 (e.g. --eps, --scale).
double positive_number(const std::string& what, const std::string& text);

/// Parse `text` as an int (whole string consumed, in int range).
int integer(const std::string& what, const std::string& text);

/// integer() restricted to values > 0 (e.g. --k).
int positive_integer(const std::string& what, const std::string& text);

// Validators for values that arrive already parsed (library entry points
// whose arguments come from code rather than a CLI string). They fail in
// the SAME style as the parsers above — one std::invalid_argument line
// naming the flag/argument — so an sjtool user sees "argument 'eps' of
// gpu_join must be >= 0" instead of a bare engine message.

/// Require `value` to be finite and >= 0 (e.g. an eps threshold).
double non_negative(const std::string& what, double value);

/// Require `value` > 0 (e.g. a k neighbour count).
int positive(const std::string& what, int value);

/// Require two datasets' dimensionalities to match; `what_a`/`what_b`
/// name the arguments (e.g. "argument 'queries' of gpu_join").
void matching_dims(const std::string& what_a, int dim_a,
                   const std::string& what_b, int dim_b);

}  // namespace sj::parse
