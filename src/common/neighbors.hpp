// Fixed-k neighbour lists — the result container shared by every kNN
// implementation (the GPU grid search, the brute-force reference, and the
// unified backend facet), so callers consume one shape regardless of the
// engine that produced it.
//
// Lists are in query order; each query's neighbours are sorted by
// ascending distance and may be shorter than k when the data set (minus
// the query itself, in self mode) is smaller.
#pragma once

#include <cstdint>
#include <vector>

namespace sj {

class NeighborLists {
 public:
  NeighborLists() = default;
  NeighborLists(std::size_t nq, int k)
      : nq_(nq), k_(k), ids_(nq * k), dists_(nq * k), counts_(nq, 0) {}

  std::size_t num_queries() const { return nq_; }
  int k() const { return k_; }
  int count(std::size_t q) const { return counts_[q]; }
  std::uint32_t neighbor(std::size_t q, int j) const {
    return ids_[q * k_ + j];
  }
  double distance(std::size_t q, int j) const { return dists_[q * k_ + j]; }

  std::uint32_t* ids_row(std::size_t q) { return ids_.data() + q * k_; }
  double* dists_row(std::size_t q) { return dists_.data() + q * k_; }
  void set_count(std::size_t q, int c) { counts_[q] = c; }

 private:
  std::size_t nq_ = 0;
  int k_ = 0;
  std::vector<std::uint32_t> ids_;
  std::vector<double> dists_;
  std::vector<int> counts_;
};

}  // namespace sj
