// In-memory point database D (paper Section III): |D| points in n
// dimensions, stored row-major for cache-friendly per-point access.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/distance.hpp"

namespace sj {

/// A dataset of |D| points in `dim` dimensions (1 <= dim <= kMaxDims).
/// Coordinates are 64-bit doubles, matching the paper's GPU configuration
/// ("uses 64-bit double precision floats", Section VI-B).
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(int dim);

  /// Construct from flat row-major coordinates; data.size() % dim == 0.
  Dataset(int dim, std::vector<double> data, std::string name = {});

  int dim() const { return dim_; }
  std::size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const { return data_.empty(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const double* pt(std::size_t i) const { return data_.data() + i * dim_; }
  double* pt(std::size_t i) { return data_.data() + i * dim_; }
  double coord(std::size_t i, int j) const { return data_[i * dim_ + j]; }

  const std::vector<double>& raw() const { return data_; }
  std::vector<double>& raw() { return data_; }

  void reserve(std::size_t n) { data_.reserve(n * dim_); }

  /// Append one point; `coords` must hold `dim()` values.
  void push_back(const double* coords);

  /// Per-dimension minimum/maximum over all points. Empty datasets return
  /// zero-filled bounds.
  std::array<double, kMaxDims> min_bound() const;
  std::array<double, kMaxDims> max_bound() const;

  /// Scale every coordinate by a single common factor (distance-preserving
  /// up to that factor). Used for the Super-EGO normalisation contract.
  void scale_all(double factor);

  bool operator==(const Dataset& other) const {
    return dim_ == other.dim_ && data_ == other.data_;
  }

 private:
  int dim_ = 0;
  std::vector<double> data_;
  std::string name_;
};

}  // namespace sj
