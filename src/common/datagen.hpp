// Synthetic data generators for the paper's evaluation (Section VI-A).
//
// * uniform()      — the paper's Syn- datasets: i.i.d. uniform per dimension
//                    in [0, 100] (worst case for the GPU grid index because
//                    it maximises the number of non-empty cells).
// * sw_like()      — stands in for the SW- ionosphere datasets (lat/lon of
//                    ground stations, optional total-electron-content third
//                    dimension). Real stations repeat the same coordinates
//                    across time, so the data is extremely skewed: a modest
//                    set of "station" locations with jitter dominates.
// * sdss_like()    — stands in for the SDSS DR12 galaxy catalogue: a
//                    Neyman–Scott cluster process (galaxy clusters plus a
//                    uniform field population) in 2-D.
// * gaussian_mixture(), exponential_blob(), ippp() — extra distributions
//                    used by tests, the skew ablation and the async
//                    pipeline stress bench.
//
// All generators are fully deterministic in (n, seed).
#pragma once

#include <cstdint>

#include "common/dataset.hpp"

namespace sj::datagen {

/// Uniform i.i.d. points in [lo, hi]^dim (paper default domain: [0, 100]).
Dataset uniform(std::size_t n, int dim, double lo, double hi,
                std::uint64_t seed);

/// Mixture of `k` isotropic Gaussians with means drawn uniformly in
/// [lo, hi]^dim and the given standard deviation. Points falling outside
/// [lo, hi] are clamped so the domain stays bounded.
Dataset gaussian_mixture(std::size_t n, int dim, int k, double stddev,
                         double lo, double hi, std::uint64_t seed);

/// Ionosphere-monitoring stand-in. `dim` must be 2 or 3.
/// 2-D: (lon, lat)-like coordinates concentrated at `stations` jittered
/// sites arranged along latitude chains (GPS receiver networks).
/// 3-D: adds a smooth large-scale TEC-like value plus noise.
/// Domain is rescaled to approximately [0, 100] per dimension.
Dataset sw_like(std::size_t n, int dim, std::uint64_t seed,
                int stations = 600);

/// Galaxy-survey stand-in (2-D): Neyman–Scott cluster process. A fraction
/// `field_frac` of points is uniform "field" population; the rest belong
/// to clusters with sizes drawn geometrically and Gaussian radial profiles.
/// Domain approximately [0, 100]^2.
Dataset sdss_like(std::size_t n, std::uint64_t seed, double field_frac = 0.35);

/// Exponentially distributed coordinates (sharp density gradient); used by
/// the skew ablation bench and robustness tests.
Dataset exponential_blob(std::size_t n, int dim, double lambda,
                         std::uint64_t seed);

/// Inhomogeneous Poisson point process (IPPP) stand-in, after the point-
/// process simulation workloads of Hohmann 2019: a homogeneous candidate
/// stream over [0, 100]^dim thinned against a smooth multi-bump intensity
/// field whose peak-to-background ratio is `contrast` (>= 1). Large
/// contrasts give strongly skewed data — a few very dense cores over a
/// sparse background — which is the stress case for batch load balance.
Dataset ippp(std::size_t n, int dim, double contrast, std::uint64_t seed);

}  // namespace sj::datagen
