// Small statistics helpers for the bench harness and EXPERIMENTS tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace sj::stats {

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += std::log(x);
  return std::exp(s / static_cast<double>(v.size()));
}

inline double min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

inline double max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

}  // namespace sj::stats
