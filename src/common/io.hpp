// Dataset persistence: a compact binary format (.sjd) for exact
// round-trips and a plain CSV reader/writer for interchange with other
// tools, so downstream users can run the joins on their own data.
//
// .sjd layout (little-endian): magic "SJD1" (4 bytes), uint32 dim,
// uint64 count, then count*dim IEEE-754 doubles, row-major.
#pragma once

#include <cstddef>
#include <string>

#include "common/dataset.hpp"

namespace sj::io {

/// Crash-safe file write: the content lands in a temp file in the same
/// directory, is flushed to stable storage (fsync), then renamed over
/// `path`. Readers never observe a torn or partially-written file — they
/// see either the old content or the new, which is what lets loaders
/// trust an exact-match cache key or a snapshot checksum. Creates parent
/// directories; throws std::runtime_error on any failure (the temp file
/// is removed).
void atomic_write_file(const std::string& path, const void* bytes,
                       std::size_t size);
void atomic_write_file(const std::string& path, const std::string& text);

/// Write `d` in the binary .sjd format (creates parent directories).
void save_binary(const Dataset& d, const std::string& path);

/// Read an .sjd file; throws std::runtime_error on malformed input
/// (bad magic/header, truncation, header larger than the file could
/// hold, or non-finite coordinates — the error names the file and the
/// offending row).
Dataset load_binary(const std::string& path);

/// Write one point per line, coordinates comma-separated, no header.
void save_csv(const Dataset& d, const std::string& path);

/// Read comma-separated points (one per line, optional header line is
/// auto-detected and skipped); all rows must share the same width.
/// Rejects non-numeric cells, NaN/Inf coordinates, ragged rows and
/// truncated trailing rows with an error naming the file and line.
Dataset load_csv(const std::string& path);

}  // namespace sj::io
