// Dataset persistence: a compact binary format (.sjd) for exact
// round-trips and a plain CSV reader/writer for interchange with other
// tools, so downstream users can run the joins on their own data.
//
// .sjd layout (little-endian): magic "SJD1" (4 bytes), uint32 dim,
// uint64 count, then count*dim IEEE-754 doubles, row-major.
#pragma once

#include <string>

#include "common/dataset.hpp"

namespace sj::io {

/// Write `d` in the binary .sjd format (creates parent directories).
void save_binary(const Dataset& d, const std::string& path);

/// Read an .sjd file; throws std::runtime_error on malformed input.
Dataset load_binary(const std::string& path);

/// Write one point per line, coordinates comma-separated, no header.
void save_csv(const Dataset& d, const std::string& path);

/// Read comma-separated points (one per line, optional header line is
/// auto-detected and skipped); all rows must share the same width.
Dataset load_csv(const std::string& path);

}  // namespace sj::io
