#include "common/contracts.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace sj::contracts {

namespace {

std::atomic<bool> g_runtime_checks{false};
std::atomic<std::uint64_t> g_validation_ns{0};

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void set_runtime_checks(bool on) noexcept {
  g_runtime_checks.store(on, std::memory_order_relaxed);
}

bool runtime_checks() noexcept {
  return g_runtime_checks.load(std::memory_order_relaxed);
}

bool active() noexcept { return kCompiledIn || runtime_checks(); }

void fail(const char* kind, const char* expr, const char* file, int line,
          const char* context) noexcept {
  // One stderr line per field, flushed before abort, so death tests can
  // match the report and a truncated log still identifies the site.
  std::fprintf(stderr,
               "%s violation: %s\n  at %s:%d\n  context: %s\n",
               kind, expr, file, line, context);
  std::fflush(stderr);
  std::abort();
}

double validation_seconds() noexcept {
  return static_cast<double>(g_validation_ns.load(std::memory_order_relaxed)) *
         1e-9;
}

void reset_validation_seconds() noexcept {
  g_validation_ns.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer() noexcept : start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
  g_validation_ns.fetch_add(now_ns() - start_ns_, std::memory_order_relaxed);
}

}  // namespace sj::contracts
