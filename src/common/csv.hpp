// Minimal CSV reading/writing. The figure benches write their measured
// series to bench_results/*.csv; the derived figures (7-9) re-read those
// files instead of re-running the sweeps.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sj::csv {

/// A parsed CSV table with a header row. Cells are kept as strings;
/// numeric access converts on demand.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  const std::vector<std::string>& header() const { return header_; }
  std::size_t rows() const { return cells_.size(); }
  std::size_t cols() const { return header_.size(); }

  void add_row(std::vector<std::string> row);
  const std::string& cell(std::size_t row, const std::string& col) const;
  double num(std::size_t row, const std::string& col) const;

  /// Serialise to a file; creates parent directories if needed.
  void write(const std::string& path) const;

  /// Parse a file written by write(). Returns false on missing file;
  /// throws std::invalid_argument naming the file and line on a
  /// truncated or ragged row.
  static bool read(const std::string& path, Table& out);

 private:
  std::size_t col_index(const std::string& col) const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format a double compactly ("0.3", "12.5", "1.2e-05").
std::string fmt(double v);

}  // namespace sj::csv
