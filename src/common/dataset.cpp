#include "common/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace sj {

Dataset::Dataset(int dim) : dim_(dim) {
  if (dim < 1 || dim > kMaxDims) {
    throw std::invalid_argument("Dataset: dim must be in [1, kMaxDims]");
  }
}

Dataset::Dataset(int dim, std::vector<double> data, std::string name)
    : dim_(dim), data_(std::move(data)), name_(std::move(name)) {
  if (dim < 1 || dim > kMaxDims) {
    throw std::invalid_argument("Dataset: dim must be in [1, kMaxDims]");
  }
  if (data_.size() % static_cast<std::size_t>(dim) != 0) {
    throw std::invalid_argument("Dataset: data size not a multiple of dim");
  }
}

void Dataset::push_back(const double* coords) {
  data_.insert(data_.end(), coords, coords + dim_);
}

std::array<double, kMaxDims> Dataset::min_bound() const {
  std::array<double, kMaxDims> b{};
  if (empty()) return b;
  for (int j = 0; j < dim_; ++j) b[j] = coord(0, j);
  for (std::size_t i = 1; i < size(); ++i) {
    for (int j = 0; j < dim_; ++j) b[j] = std::min(b[j], coord(i, j));
  }
  return b;
}

std::array<double, kMaxDims> Dataset::max_bound() const {
  std::array<double, kMaxDims> b{};
  if (empty()) return b;
  for (int j = 0; j < dim_; ++j) b[j] = coord(0, j);
  for (std::size_t i = 1; i < size(); ++i) {
    for (int j = 0; j < dim_; ++j) b[j] = std::max(b[j], coord(i, j));
  }
  return b;
}

void Dataset::scale_all(double factor) {
  for (double& v : data_) v *= factor;
}

}  // namespace sj
