#include "common/datagen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace sj::datagen {

namespace {

double clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

Dataset uniform(std::size_t n, int dim, double lo, double hi,
                std::uint64_t seed) {
  Dataset d(dim);
  d.reserve(n);
  Xoshiro256 rng(seed);
  double row[kMaxDims];
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) row[j] = rng.uniform(lo, hi);
    d.push_back(row);
  }
  return d;
}

Dataset gaussian_mixture(std::size_t n, int dim, int k, double stddev,
                         double lo, double hi, std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("gaussian_mixture: k must be >= 1");
  Dataset d(dim);
  d.reserve(n);
  Xoshiro256 rng(seed);
  std::vector<double> means(static_cast<std::size_t>(k) * dim);
  for (double& m : means) m = rng.uniform(lo, hi);
  double row[kMaxDims];
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.below(k);
    for (int j = 0; j < dim; ++j) {
      row[j] = clamp(means[c * dim + j] + rng.normal(0.0, stddev), lo, hi);
    }
    d.push_back(row);
  }
  return d;
}

Dataset sw_like(std::size_t n, int dim, std::uint64_t seed, int stations) {
  if (dim != 2 && dim != 3) {
    throw std::invalid_argument("sw_like: dim must be 2 or 3");
  }
  Dataset d(dim);
  d.reserve(n);
  Xoshiro256 rng(seed);

  // Station sites: chains along a few latitude bands (receiver networks
  // cluster geographically), with per-station weights so that a small
  // number of stations contribute most observations — the property that
  // makes the real SW data heavily skewed.
  struct Station {
    double x, y, w;
  };
  std::vector<Station> sites;
  sites.reserve(stations);
  const int chains = std::max(3, stations / 80);
  double total_w = 0.0;
  for (int s = 0; s < stations; ++s) {
    const int chain = static_cast<int>(rng.below(chains));
    const double band_y = 10.0 + 80.0 * chain / std::max(1, chains - 1);
    Station st;
    st.x = rng.uniform(0.0, 100.0);
    st.y = clamp(band_y + rng.normal(0.0, 4.0), 0.0, 100.0);
    st.w = rng.exponential(1.0);  // heavy-ish weight spread
    total_w += st.w;
    sites.push_back(st);
  }
  // Cumulative weights for sampling.
  std::vector<double> cum(sites.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    acc += sites[s].w / total_w;
    cum[s] = acc;
  }

  double row[kMaxDims];
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cum.begin(), cum.end(), u);
    const std::size_t s =
        std::min(static_cast<std::size_t>(it - cum.begin()), sites.size() - 1);
    // Observations jitter tightly around their station.
    row[0] = clamp(sites[s].x + rng.normal(0.0, 0.15), 0.0, 100.0);
    row[1] = clamp(sites[s].y + rng.normal(0.0, 0.15), 0.0, 100.0);
    if (dim == 3) {
      // TEC-like value: smooth large-scale field over (x, y) plus noise,
      // rescaled to ~[0, 100].
      const double field =
          50.0 + 30.0 * std::sin(row[0] * 0.06) * std::cos(row[1] * 0.045);
      row[2] = clamp(field + rng.normal(0.0, 6.0), 0.0, 100.0);
    }
    d.push_back(row);
  }
  return d;
}

Dataset sdss_like(std::size_t n, std::uint64_t seed, double field_frac) {
  Dataset d(2);
  d.reserve(n);
  Xoshiro256 rng(seed);

  const std::size_t n_field =
      static_cast<std::size_t>(static_cast<double>(n) * field_frac);
  double row[kMaxDims];
  for (std::size_t i = 0; i < n_field; ++i) {
    row[0] = rng.uniform(0.0, 100.0);
    row[1] = rng.uniform(0.0, 100.0);
    d.push_back(row);
  }

  // Clustered population: parents uniform, offspring Gaussian around the
  // parent with cluster-specific radius; cluster sizes geometric.
  while (d.size() < n) {
    const double cx = rng.uniform(0.0, 100.0);
    const double cy = rng.uniform(0.0, 100.0);
    const double radius = 0.2 + rng.exponential(2.0);  // mostly compact
    // Geometric cluster size with mean ~20.
    std::size_t members = 1;
    while (rng.uniform() > 0.05 && members < 200) ++members;
    for (std::size_t m = 0; m < members && d.size() < n; ++m) {
      row[0] = clamp(cx + rng.normal(0.0, radius), 0.0, 100.0);
      row[1] = clamp(cy + rng.normal(0.0, radius), 0.0, 100.0);
      d.push_back(row);
    }
  }
  return d;
}

Dataset ippp(std::size_t n, int dim, double contrast, std::uint64_t seed) {
  if (dim < 1 || dim > kMaxDims) {
    throw std::invalid_argument("ippp: dim out of range");
  }
  if (contrast < 1.0) {
    throw std::invalid_argument("ippp: contrast must be >= 1");
  }
  Dataset d(dim);
  d.reserve(n);
  Xoshiro256 rng(seed);

  // Intensity field: background 1 plus a few Gaussian bumps that together
  // peak at `contrast`. lambda(x) in [1, contrast] by construction.
  constexpr int kBumps = 6;
  double centers[kBumps][kMaxDims];
  double sigma[kBumps];
  for (int b = 0; b < kBumps; ++b) {
    for (int j = 0; j < dim; ++j) centers[b][j] = rng.uniform(5.0, 95.0);
    sigma[b] = rng.uniform(2.0, 8.0);
  }

  double row[kMaxDims];
  while (d.size() < n) {
    for (int j = 0; j < dim; ++j) row[j] = rng.uniform(0.0, 100.0);
    double intensity = 1.0;
    for (int b = 0; b < kBumps; ++b) {
      double q = 0.0;
      for (int j = 0; j < dim; ++j) {
        const double t = (row[j] - centers[b][j]) / sigma[b];
        q += t * t;
      }
      intensity += (contrast - 1.0) * std::exp(-0.5 * q) / kBumps;
    }
    // Thinning: accept with probability lambda(x) / lambda_max.
    if (rng.uniform() * contrast <= intensity) d.push_back(row);
  }
  return d;
}

Dataset exponential_blob(std::size_t n, int dim, double lambda,
                         std::uint64_t seed) {
  Dataset d(dim);
  d.reserve(n);
  Xoshiro256 rng(seed);
  double row[kMaxDims];
  for (std::size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      row[j] = clamp(rng.exponential(lambda), 0.0, 100.0);
    }
    d.push_back(row);
  }
  return d;
}

}  // namespace sj::datagen
