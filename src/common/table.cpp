#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace sj {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: wrong column count");
  }
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      for (std::size_t p = row[i].size(); p < width[i] + 2; ++p) os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

}  // namespace sj
