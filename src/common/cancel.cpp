#include "common/cancel.hpp"

#include <cstdio>

namespace sj::exec {

std::string ExecControl::format_overrun() const {
  const double over = -deadline.remaining_ms();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1fms", over < 0.0 ? 0.0 : over);
  return std::string(buf);
}

}  // namespace sj::exec
