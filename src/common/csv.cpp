#include "common/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/parse.hpp"

namespace sj::csv {

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("csv::Table::add_row: wrong column count");
  }
  cells_.push_back(std::move(row));
}

std::size_t Table::col_index(const std::string& col) const {
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (header_[i] == col) return i;
  }
  throw std::out_of_range("csv::Table: no column " + col);
}

const std::string& Table::cell(std::size_t row, const std::string& col) const {
  return cells_.at(row)[col_index(col)];
}

double Table::num(std::size_t row, const std::string& col) const {
  // Strict parse (whole token, finite): a truncated or corrupted table
  // cell fails with the row/column named instead of std::stod silently
  // accepting a numeric prefix.
  return parse::number(
      "csv::Table cell [row " + std::to_string(row) + ", col '" + col + "']",
      cell(row, col));
}

void Table::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path);
  if (!out) throw std::runtime_error("csv::Table::write: cannot open " + path);
  for (std::size_t i = 0; i < header_.size(); ++i) {
    out << header_[i] << (i + 1 < header_.size() ? "," : "\n");
  }
  for (const auto& row : cells_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i] << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

bool Table::read(const std::string& path, Table& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  auto split = [](const std::string& s) {
    std::vector<std::string> cols;
    std::stringstream ss(s);
    std::string cell;
    while (std::getline(ss, cell, ',')) cols.push_back(cell);
    return cols;
  };
  if (!std::getline(in, line)) return false;
  out = Table(split(line));
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> row = split(line);
    if (row.size() != out.cols()) {
      // Truncated/ragged row: name the file and line so a torn results
      // file is diagnosable, instead of the bare column-count error.
      throw std::invalid_argument(
          "csv::Table::read: " + path + ":" + std::to_string(lineno) +
          ": row has " + std::to_string(row.size()) + " columns, expected " +
          std::to_string(out.cols()));
    }
    out.add_row(std::move(row));
  }
  return true;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace sj::csv
