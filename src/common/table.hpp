// Fixed-width console table printer used by the bench harness to emit
// paper-style rows ("the same rows/series the paper reports").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sj {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sj
