// Deterministic pseudo-random number generation used by every data
// generator in the repository. All experiment datasets are derived from
// fixed seeds so that tests and benchmarks are exactly reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace sj {

/// SplitMix64 — used to expand a single 64-bit seed into a stream of
/// well-mixed words (recommended seeding procedure for xoshiro).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality generator for bulk data generation.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Standard normal via Box–Muller (uses two uniforms; caches nothing so
  /// the stream stays position-independent and easy to reason about).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with rate lambda.
  double exponential(double lambda) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -std::log(u) / lambda;
  }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace sj
