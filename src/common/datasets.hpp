// Named dataset factory reproducing Table I of the paper, with size and
// eps scaling so the evaluation can run on modest hardware while staying
// in the same average-neighbour regime as the published experiments.
//
// Scaling contract (documented in DESIGN.md §5): for a dataset whose paper
// size is N_paper and whose local size is N_ours, every eps of the paper's
// sweep is multiplied by (N_paper / N_ours)^(1/dim) for the uniform
// synthetic datasets, which keeps the expected neighbour count per point
// unchanged. The real-world stand-ins use hand-calibrated sweeps (their
// generators do not share the original data's absolute units).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.hpp"

namespace sj::datasets {

enum class Kind { kUniform, kSW, kSDSS };

/// Static description of one Table I dataset.
struct Info {
  std::string name;                // e.g. "Syn3D2M", "SW2DA", "SDSS2DB"
  std::size_t paper_n;             // |D| in the paper's Table I
  int dim;                         // n in the paper's Table I
  std::size_t default_n;           // scaled default size for this machine
  Kind kind;                       // generator family
  std::vector<double> paper_eps;   // eps sweep used in the paper's figures
  std::vector<double> bench_eps;   // eps sweep used by our benches at
                                   // default_n (synthetic: rescaled from
                                   // paper_eps; real-world: calibrated)
  std::uint64_t seed;              // deterministic generator seed
};

/// All sixteen Table I datasets.
const std::vector<Info>& all();

/// Lookup by name; throws std::out_of_range for unknown names.
const Info& info(const std::string& name);

/// Materialise a dataset. `scale` multiplies the default size (the
/// SJ_SCALE environment variable is applied by the bench harness, not
/// here). The result's name() is the dataset name.
Dataset make(const std::string& name, double scale = 1.0);

/// Rescale one eps from the default-size sweep to an actual size, keeping
/// the expected neighbour count fixed: eps * (default_n / actual_n)^(1/dim).
double scale_eps(const Info& info, std::size_t actual_n, double bench_eps);

/// The full bench sweep rescaled for an actual dataset size.
std::vector<double> scaled_eps(const Info& info, std::size_t actual_n);

}  // namespace sj::datasets
