#include "common/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace sj::parse {

namespace {

[[noreturn]] void fail(const std::string& what, const char* kind,
                       const std::string& text) {
  throw std::invalid_argument(what + " expects " + kind + ", got '" + text +
                              "'");
}

// strtod/strtol skip leading whitespace, which would defeat the
// whole-string check below ("  1" would parse while "1  " would not).
bool bad_lead(const std::string& text) {
  return text.empty() ||
         std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

}  // namespace

double number(const std::string& what, const std::string& text) {
  if (bad_lead(text)) fail(what, "a finite number", text);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    fail(what, "a finite number", text);
  }
  return v;
}

double positive_number(const std::string& what, const std::string& text) {
  const double v = number(what, text);
  if (v <= 0.0) {
    throw std::invalid_argument(what + " must be > 0, got '" + text + "'");
  }
  return v;
}

int integer(const std::string& what, const std::string& text) {
  if (bad_lead(text)) fail(what, "an integer", text);
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    fail(what, "an integer", text);
  }
  return static_cast<int>(v);
}

int positive_integer(const std::string& what, const std::string& text) {
  const int v = integer(what, text);
  if (v <= 0) {
    throw std::invalid_argument(what + " must be a positive integer, got '" +
                                text + "'");
  }
  return v;
}

double non_negative(const std::string& what, double value) {
  if (!std::isfinite(value) || value < 0.0) {
    throw std::invalid_argument(what + " must be >= 0, got '" +
                                std::to_string(value) + "'");
  }
  return value;
}

int positive(const std::string& what, int value) {
  if (value <= 0) {
    throw std::invalid_argument(what + " must be a positive integer, got '" +
                                std::to_string(value) + "'");
  }
  return value;
}

void matching_dims(const std::string& what_a, int dim_a,
                   const std::string& what_b, int dim_b) {
  if (dim_a != dim_b) {
    throw std::invalid_argument(
        what_a + " must match " + what_b + " in dimensionality, got " +
        std::to_string(dim_a) + "-D vs " + std::to_string(dim_b) + "-D");
  }
}

}  // namespace sj::parse
