// Typed failure taxonomy + deterministic fault injection for the
// simulated-GPU pipeline.
//
// The error hierarchy is what the retry/failover layers dispatch on:
//
//   FaultError
//   ├── TransientDeviceError   retry the batch (bounded backoff)
//   ├── DeviceLost             fail the device; gpu_shard re-plans the
//   │                          shard onto a surviving device
//   └── ResourceExhausted      degrade: halve the batch through the
//       └── gpu::DeviceOutOfMemory (gpusim/arena.hpp)   overflow-split
//
// The injector is seeded and deterministic: whether hit #n at a site
// fires depends only on (seed, site, n), never on wall clock or
// scheduling. Hooks are placed at the gpusim seams — arena allocation,
// kernel launch, stream transfer, event sync, device sort — and ALWAYS
// BEFORE the operation's side effects, so an injected failure leaves the
// batch untouched and a retry is exact. Hooks only fire on threads armed
// with a DeviceScope (the pipeline arms exactly the span of one batch),
// which keeps every injected fault attributable to a batch and therefore
// recoverable; setup phases (upload, adjacency, estimator) run unarmed.
//
// Spec grammar (SJ_FAULTS env var, sjtool --faults, --opt faults=):
//
//   alloc:0.01,stream:0.005,device:shard2@batch7,seed:42
//
//   <site>:<rate>           inject at `site` with probability `rate`
//                           (site: alloc | stream | sync | sort)
//   device:shard<S>@batch<B> kill device S when it starts its B-th batch
//                           (1-based); later work on S throws DeviceLost
//   seed:<N>                decorrelate runs (default 1)
//
// The hooks compile to nothing unless the build sets -DSJ_FAULTS=ON
// (compile definition SJ_FAULTS_ENABLED); the taxonomy, the parser and
// the runtime configuration API are always built, so release binaries
// can reject a --faults request with a clear error.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace sj::fault {

/// Root of the typed failure taxonomy.
class FaultError : public std::runtime_error {
 public:
  explicit FaultError(const std::string& what) : std::runtime_error(what) {}
};

/// A failure expected to succeed on re-execution (spurious launch/
/// transfer/sync/sort faults). The pipeline retries the batch.
class TransientDeviceError : public FaultError {
 public:
  explicit TransientDeviceError(const std::string& what) : FaultError(what) {}
};

/// A simulated device died; everything it was running is gone. The shard
/// engine re-plans the device's shard onto a surviving device.
class DeviceLost : public FaultError {
 public:
  DeviceLost(int device, const std::string& what)
      : FaultError(what), device(device) {}

  int device;  ///< the dead device's id (shard index), -1 if unknown
};

/// A resource limit was hit (device memory, buffers). The pipeline
/// degrades gracefully: the batch is halved through the overflow-split
/// machinery instead of failing the run.
class ResourceExhausted : public FaultError {
 public:
  explicit ResourceExhausted(const std::string& what) : FaultError(what) {}
};

/// Injection sites, one per gpusim seam.
enum class Site : int {
  kAlloc = 0,   ///< GlobalMemoryArena::allocate -> ResourceExhausted
  kStream = 1,  ///< kernel launch / stream transfer -> TransientDeviceError
  kSync = 2,    ///< Event::wait -> TransientDeviceError
  kSort = 3,    ///< sort_pairs_by_key -> TransientDeviceError
};
inline constexpr int kNumSites = 4;

const char* site_name(Site site);

/// Parsed `device:shard<S>@batch<B>` entry.
struct DeviceLossPlan {
  int device = -1;          ///< simulated device (shard index), < 64
  std::uint64_t batch = 0;  ///< 1-based batch ordinal on that device
};

struct Spec {
  double rate[kNumSites] = {0.0, 0.0, 0.0, 0.0};
  std::uint64_t seed = 1;
  bool has_loss = false;
  DeviceLossPlan loss;
};

/// One-line description of the spec grammar, embedded in parse errors.
std::string spec_grammar();

/// Parse a fault spec; throws std::invalid_argument (quoting the
/// offending entry and the grammar) on malformed input. Always
/// available, even when the hooks are compiled out.
Spec parse_spec(const std::string& text);

#ifdef SJ_FAULTS_ENABLED
inline constexpr bool kFaultsCompiledIn = true;
#else
inline constexpr bool kFaultsCompiledIn = false;
#endif

/// Install `spec` and reset all injection counters and dead devices.
void configure(const Spec& spec);

/// parse_spec + configure, but first rejects the request with a clear
/// std::invalid_argument when the binary compiled the hooks out — a
/// silently inert --faults flag would invalidate a chaos run.
void configure_from_text(const std::string& text);

/// Turn injection off (installed spec is discarded).
void disable();

/// True when a spec is installed (explicitly or lazily from the
/// SJ_FAULTS environment variable on first query).
bool enabled();

/// Revive all dead devices. The shard engines call this at run entry so
/// each run observes exactly one deterministic loss per plan entry.
void reset_devices();

/// Injection counters (cumulative since the last configure()).
std::uint64_t injected(Site site);
std::uint64_t injected_total();
std::uint64_t devices_lost();

/// RAII arming of the calling thread: hooks fire only between
/// construction and destruction, attributed to simulated device
/// `device` (-1 for the unsharded engines). Scopes nest; the previous
/// arming is restored on destruction.
class DeviceScope {
 public:
  explicit DeviceScope(int device);
  ~DeviceScope();

  DeviceScope(const DeviceScope&) = delete;
  DeviceScope& operator=(const DeviceScope&) = delete;

 private:
  int prev_device_;
  bool prev_armed_;
};

namespace detail {

/// Deterministic per-hit draw in [0, 1): depends only on (seed, site, n).
double hash01(std::uint64_t seed, int site, std::uint64_t n);

/// Hook slow path: no-op unless the thread is armed and a spec is
/// enabled; throws the site's error type when the seeded draw fires, and
/// DeviceLost when the scope's device is already dead.
void check(Site site);

/// Targeted device loss: called once per batch with the pipeline's
/// device id and 1-based batch ordinal; marks the device dead and throws
/// DeviceLost when the installed loss plan matches.
void check_batch(int device, std::uint64_t ordinal);

/// Introspection for tests.
bool armed();
int scope_device();

}  // namespace detail

}  // namespace sj::fault

// The hooks themselves: statements that compile to nothing unless the
// build opts in. Arguments are NOT evaluated in compiled-out builds.
#ifdef SJ_FAULTS_ENABLED
#define SJ_FAULT_POINT(site) ::sj::fault::detail::check(::sj::fault::Site::site)
#define SJ_FAULT_BATCH(device, ordinal) \
  ::sj::fault::detail::check_batch((device), (ordinal))
#else
#define SJ_FAULT_POINT(site) ((void)0)
#define SJ_FAULT_BATCH(device, ordinal) ((void)0)
#endif
