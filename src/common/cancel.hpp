// Deadlines, cooperative cancellation and admission-control errors for
// the service layer (api/session.hpp) and the batch pipeline.
//
// The three error types extend the fault taxonomy (common/fault.hpp) so
// they flow through the pipeline's existing failure path — first error
// recorded, queue closed, in-flight segments drained — but they are
// DELIBERATELY not subclasses of TransientDeviceError / DeviceLost /
// ResourceExhausted: an expired deadline must not be retried, failed
// over or split; it aborts the one query that carried it and leaves the
// session healthy.
//
//   FaultError
//   ├── ... (fault.hpp taxonomy: retry / failover / degrade)
//   ├── DeadlineExceeded   the query's end-to-end deadline passed
//   ├── Cancelled          the client revoked the query mid-flight
//   └── Overloaded         admission control shed the query (queue
//                          depth/age limit) — it never started
//
// ExecControl is the per-query handle threaded from the service boundary
// down through ResultRequest into the BatchPipeline's checkpoint seams
// (task pop, pre-launch, pre-transfer). Checks are cooperative: a batch
// already launched completes, the next checkpoint aborts. CancelToken is
// a monotonic atomic flag safe to trip from any thread.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <string>

#include "common/fault.hpp"

namespace sj::exec {

/// The query's end-to-end deadline passed before it finished. Not
/// retryable — retrying cannot make the clock run backwards.
class DeadlineExceeded : public fault::FaultError {
 public:
  explicit DeadlineExceeded(const std::string& what)
      : fault::FaultError(what) {}
};

/// The client cancelled the query; partial work is discarded.
class Cancelled : public fault::FaultError {
 public:
  explicit Cancelled(const std::string& what) : fault::FaultError(what) {}
};

/// Admission control rejected the query before it started (bounded queue
/// full, queued too long, or the session is shutting down). The caller
/// may retry against a less-loaded session.
class Overloaded : public fault::FaultError {
 public:
  explicit Overloaded(const std::string& what) : fault::FaultError(what) {}
};

/// Monotonic cancellation flag: once cancelled, always cancelled. Shared
/// by the client (who trips it) and the execution threads (who poll it at
/// checkpoints); trivially thread-safe.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// A point on the steady clock by which the query must complete.
/// Default-constructed deadlines are infinite (never expire) so
/// unconfigured paths cost one branch per checkpoint.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // infinite

  static Deadline after_ms(double ms) {
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  bool finite() const noexcept { return finite_; }
  bool expired() const noexcept { return finite_ && Clock::now() >= at_; }

  /// Milliseconds until expiry; negative once expired, +infinity when
  /// the deadline is infinite.
  double remaining_ms() const noexcept {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(at_ - Clock::now())
        .count();
  }

 private:
  Clock::time_point at_{};
  bool finite_ = false;
};

/// The per-query control block: checked at every checkpoint seam.
/// Copyable and cheap; `cancel` is non-owning (the token outlives the
/// run — the session holds it in the request record).
struct ExecControl {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  bool armed() const noexcept {
    return deadline.finite() || cancel != nullptr;
  }

  /// Throws Cancelled / DeadlineExceeded when tripped; `where` names the
  /// checkpoint in the error message (queue pop, pre-launch, ...).
  /// Cancellation wins over expiry when both hold — the client asked
  /// first.
  void check(const char* where) const {
    if (cancel != nullptr && cancel->cancelled()) {
      throw Cancelled(std::string("query cancelled at ") + where);
    }
    if (deadline.expired()) {
      throw DeadlineExceeded(std::string("deadline exceeded at ") + where +
                             " (" + format_overrun() + " past deadline)");
    }
  }

 private:
  std::string format_overrun() const;
};

}  // namespace sj::exec
