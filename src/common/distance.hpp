// Euclidean distance kernels shared by every join implementation.
//
// All algorithms in this repository compare *squared* distances against
// eps^2 so that no square root is taken on the hot path; the public API
// still speaks in terms of the plain Euclidean distance eps, matching the
// paper's problem statement (Section III).
#pragma once

#include <cmath>
#include <cstddef>

namespace sj {

/// Maximum supported dimensionality. The paper evaluates 2-6 dimensions;
/// we leave headroom for the "future work: higher dimensions" extension.
inline constexpr int kMaxDims = 8;

/// Squared Euclidean distance between two n-dimensional points stored as
/// contiguous coordinate arrays.
template <typename T>
inline T sq_dist(const T* a, const T* b, int dim) {
  T acc = T(0);
  for (int j = 0; j < dim; ++j) {
    const T d = a[j] - b[j];
    acc += d * d;
  }
  return acc;
}

/// Squared Euclidean distance with early termination once the partial sum
/// exceeds the threshold. Pays off when candidate sets are large relative
/// to true neighbours (high dimensions, big eps).
template <typename T>
inline T sq_dist_early_exit(const T* a, const T* b, int dim, T threshold) {
  T acc = T(0);
  for (int j = 0; j < dim; ++j) {
    const T d = a[j] - b[j];
    acc += d * d;
    if (acc > threshold) return acc;
  }
  return acc;
}

template <typename T>
inline T euclidean_dist(const T* a, const T* b, int dim) {
  return std::sqrt(sq_dist(a, b, dim));
}

}  // namespace sj
