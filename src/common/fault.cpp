#include "common/fault.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

namespace sj::fault {
namespace {

// Injection mode: lazily initialised from the SJ_FAULTS environment
// variable on first query, then overridable via configure()/disable().
enum : int { kUninit = 0, kDisabled = 1, kEnabled = 2 };

std::mutex g_mu;                      // guards g_spec + init
Spec g_spec;                          // installed spec (valid when enabled)
std::atomic<int> g_mode{kUninit};
std::atomic<std::uint64_t> g_dead{0};  // bitmask of dead devices (< 64)
std::atomic<std::uint64_t> g_losses{0};
std::array<std::atomic<std::uint64_t>, kNumSites> g_hits = {};      // draws
std::array<std::atomic<std::uint64_t>, kNumSites> g_injected = {};  // fires

thread_local int t_device = -1;
thread_local bool t_armed = false;

// splitmix64 finalizer: a high-quality 64-bit mix, cheap and stateless.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_entry(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("fault spec entry \"" + entry + "\": " + why +
                              "\n" + spec_grammar());
}

double parse_rate(const std::string& entry, const std::string& value) {
  std::size_t pos = 0;
  double rate = 0.0;
  try {
    rate = std::stod(value, &pos);
  } catch (const std::exception&) {
    bad_entry(entry, "rate is not a number");
  }
  if (pos != value.size()) bad_entry(entry, "trailing characters after rate");
  if (!(rate >= 0.0 && rate <= 1.0)) bad_entry(entry, "rate must be in [0, 1]");
  return rate;
}

std::uint64_t parse_u64(const std::string& entry, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long n = 0;
  try {
    n = std::stoull(value, &pos);
  } catch (const std::exception&) {
    bad_entry(entry, "expected an unsigned integer");
  }
  if (pos != value.size())
    bad_entry(entry, "trailing characters after integer");
  return static_cast<std::uint64_t>(n);
}

// "shard<S>@batch<B>" -> DeviceLossPlan.
DeviceLossPlan parse_loss(const std::string& entry, const std::string& value) {
  const std::string shard_tag = "shard";
  const std::string batch_tag = "batch";
  const std::size_t at = value.find('@');
  if (at == std::string::npos || value.compare(0, shard_tag.size(), shard_tag) != 0 ||
      value.compare(at + 1, batch_tag.size(), batch_tag) != 0) {
    bad_entry(entry, "expected device:shard<S>@batch<B>");
  }
  const std::uint64_t shard =
      parse_u64(entry, value.substr(shard_tag.size(), at - shard_tag.size()));
  const std::uint64_t batch =
      parse_u64(entry, value.substr(at + 1 + batch_tag.size()));
  if (shard >= 64) bad_entry(entry, "shard index must be < 64");
  if (batch == 0) bad_entry(entry, "batch ordinal is 1-based; must be >= 1");
  DeviceLossPlan plan;
  plan.device = static_cast<int>(shard);
  plan.batch = batch;
  return plan;
}

void reset_counters() {
  g_dead.store(0, std::memory_order_relaxed);
  g_losses.store(0, std::memory_order_relaxed);
  for (auto& c : g_hits) c.store(0, std::memory_order_relaxed);
  for (auto& c : g_injected) c.store(0, std::memory_order_relaxed);
}

// Lazy env init: the first enabled()/hook query in a process reads
// SJ_FAULTS. A malformed env spec must not crash an unrelated binary, so
// it warns to stderr and disables injection instead of throwing.
void ensure_init() {
  if (g_mode.load(std::memory_order_acquire) != kUninit) return;
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_mode.load(std::memory_order_relaxed) != kUninit) return;
  const char* env = std::getenv("SJ_FAULTS");
  if (env == nullptr || *env == '\0' || !kFaultsCompiledIn) {
    g_mode.store(kDisabled, std::memory_order_release);
    return;
  }
  try {
    g_spec = parse_spec(env);
    reset_counters();
    g_mode.store(kEnabled, std::memory_order_release);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sj::fault: ignoring SJ_FAULTS: %s\n", e.what());
    g_mode.store(kDisabled, std::memory_order_release);
  }
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kAlloc:
      return "alloc";
    case Site::kStream:
      return "stream";
    case Site::kSync:
      return "sync";
    case Site::kSort:
      return "sort";
  }
  return "?";
}

std::string spec_grammar() {
  return "spec grammar: comma-separated entries of "
         "<site>:<rate> (site: alloc|stream|sync|sort, rate in [0,1]), "
         "device:shard<S>@batch<B> (S < 64, B >= 1), seed:<N> — "
         "e.g. \"alloc:0.01,stream:0.005,device:shard2@batch7,seed:42\"";
}

Spec parse_spec(const std::string& text) {
  Spec spec;
  if (text.empty())
    throw std::invalid_argument("fault spec is empty\n" + spec_grammar());
  std::stringstream ss(text);
  std::string entry;
  bool any = false;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) bad_entry(entry, "empty entry");
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size())
      bad_entry(entry, "expected <key>:<value>");
    const std::string key = entry.substr(0, colon);
    const std::string value = entry.substr(colon + 1);
    if (key == "alloc") {
      spec.rate[static_cast<int>(Site::kAlloc)] = parse_rate(entry, value);
    } else if (key == "stream") {
      spec.rate[static_cast<int>(Site::kStream)] = parse_rate(entry, value);
    } else if (key == "sync") {
      spec.rate[static_cast<int>(Site::kSync)] = parse_rate(entry, value);
    } else if (key == "sort") {
      spec.rate[static_cast<int>(Site::kSort)] = parse_rate(entry, value);
    } else if (key == "seed") {
      spec.seed = parse_u64(entry, value);
    } else if (key == "device") {
      spec.loss = parse_loss(entry, value);
      spec.has_loss = true;
    } else {
      bad_entry(entry, "unknown site \"" + key + "\"");
    }
    any = true;
  }
  if (!any)
    throw std::invalid_argument("fault spec is empty\n" + spec_grammar());
  return spec;
}

void configure(const Spec& spec) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_spec = spec;
  reset_counters();
  g_mode.store(kEnabled, std::memory_order_release);
}

void configure_from_text(const std::string& text) {
  if (!kFaultsCompiledIn) {
    throw std::invalid_argument(
        "fault injection requested (\"" + text +
        "\") but the hooks are compiled out of this binary; rebuild with "
        "-DSJ_FAULTS=ON");
  }
  configure(parse_spec(text));
}

void disable() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_spec = Spec{};
  reset_counters();
  g_mode.store(kDisabled, std::memory_order_release);
}

bool enabled() {
  ensure_init();
  return g_mode.load(std::memory_order_acquire) == kEnabled;
}

void reset_devices() { g_dead.store(0, std::memory_order_relaxed); }

std::uint64_t injected(Site site) {
  return g_injected[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t injected_total() {
  std::uint64_t total = 0;
  for (const auto& c : g_injected) total += c.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t devices_lost() { return g_losses.load(std::memory_order_relaxed); }

DeviceScope::DeviceScope(int device)
    : prev_device_(t_device), prev_armed_(t_armed) {
  t_device = device;
  t_armed = true;
}

DeviceScope::~DeviceScope() {
  t_device = prev_device_;
  t_armed = prev_armed_;
}

namespace detail {

double hash01(std::uint64_t seed, int site, std::uint64_t n) {
  const std::uint64_t h = mix64(seed ^ mix64(n * static_cast<std::uint64_t>(
                                                     kNumSites) +
                                             static_cast<std::uint64_t>(site)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void check(Site site) {
  if (!t_armed) return;
  if (!enabled()) return;
  double rate = 0.0;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    rate = g_spec.rate[static_cast<std::size_t>(site)];
    seed = g_spec.seed;
  }
  // A dead device fails everything thrown at it, rates aside.
  if (t_device >= 0 && t_device < 64 &&
      (g_dead.load(std::memory_order_acquire) & (1ULL << t_device)) != 0) {
    throw DeviceLost(t_device, "device " + std::to_string(t_device) +
                                   " is lost (operation: " +
                                   site_name(site) + ")");
  }
  if (rate <= 0.0) return;
  const std::uint64_t n = g_hits[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  if (hash01(seed, static_cast<int>(site), n) >= rate) return;
  g_injected[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  const std::string where = std::string(site_name(site)) + " (hit " +
                            std::to_string(n) + ", device " +
                            std::to_string(t_device) + ")";
  if (site == Site::kAlloc) {
    throw ResourceExhausted("injected allocation failure at " + where);
  }
  throw TransientDeviceError("injected transient fault at " + where);
}

void check_batch(int device, std::uint64_t ordinal) {
  if (!enabled()) return;
  if (device < 0 || device >= 64) return;
  if ((g_dead.load(std::memory_order_acquire) & (1ULL << device)) != 0) {
    throw DeviceLost(device,
                     "device " + std::to_string(device) + " is lost");
  }
  bool match = false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    match = g_spec.has_loss && g_spec.loss.device == device &&
            g_spec.loss.batch == ordinal;
  }
  if (!match) return;
  g_dead.fetch_or(1ULL << device, std::memory_order_acq_rel);
  g_losses.fetch_add(1, std::memory_order_relaxed);
  throw DeviceLost(device, "device " + std::to_string(device) +
                               " lost (injected at batch " +
                               std::to_string(ordinal) + ")");
}

bool armed() { return t_armed; }

int scope_device() { return t_device; }

}  // namespace detail

}  // namespace sj::fault
