// Self-join result representations.
//
// The GPU kernel emits key/value pairs (query id, neighbour id) — paper
// Section IV-E — which are then sorted by key (the paper uses a key/value
// sort before transferring each batch). ResultSet is that pair store with
// helpers to normalise and compare results across the five algorithm
// implementations; NeighborTable is the CSR view that downstream
// applications (e.g. DBSCAN, example apps) consume.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sj {

struct Pair;

/// What a join/self-join call materialises for the caller. The expensive
/// part of a large join is the output path — writing, sorting, and
/// transferring Pair records — so callers that only need aggregate
/// information can opt out of it entirely.
enum class ResultMode {
  kPairs,      ///< materialise the flat (key, value) pair vector (default)
  kCountOnly,  ///< total pair count only; no result buffers at all
  kHistogram,  ///< per-point neighbour counts (includes self pairs)
  kSink,       ///< stream sorted batches through a callback, O(batch) memory
};

/// Consumer for ResultMode::kSink. Invoked with sorted-by-key batches in
/// ascending key order; the concatenation of all batches equals the
/// pairs-mode output byte for byte. The pointer is only valid during the
/// call.
using PairSink = std::function<void(const Pair* pairs, std::size_t count)>;

/// Strict parser for the user-facing mode names ("pairs", "count",
/// "histogram", "sink"). Throws std::invalid_argument listing the known
/// modes on anything else.
inline ResultMode parse_result_mode(const std::string& s) {
  if (s == "pairs") return ResultMode::kPairs;
  if (s == "count") return ResultMode::kCountOnly;
  if (s == "histogram") return ResultMode::kHistogram;
  if (s == "sink") return ResultMode::kSink;
  throw std::invalid_argument("unknown result mode '" + s +
                              "' (known: pairs, count, histogram, sink)");
}

/// Inverse of parse_result_mode, for error messages and stats output.
inline const char* result_mode_name(ResultMode m) {
  switch (m) {
    case ResultMode::kPairs: return "pairs";
    case ResultMode::kCountOnly: return "count";
    case ResultMode::kHistogram: return "histogram";
    case ResultMode::kSink: return "sink";
  }
  return "?";
}

/// One ordered result pair: point `key` has neighbour `value`
/// (dist(key, value) <= eps). Self pairs (key == value) are included by
/// every implementation (dist = 0 <= eps), matching the convention of the
/// authors' implementation.
struct Pair {
  std::uint32_t key;
  std::uint32_t value;

  friend bool operator==(const Pair&, const Pair&) = default;
  friend auto operator<=>(const Pair&, const Pair&) = default;
};

/// A set of ordered pairs. Not automatically deduplicated or sorted; call
/// normalize() before comparisons.
class ResultSet {
 public:
  ResultSet() = default;
  explicit ResultSet(std::vector<Pair> pairs) : pairs_(std::move(pairs)) {}

  void add(std::uint32_t key, std::uint32_t value) {
    pairs_.push_back({key, value});
  }
  void append(const ResultSet& other) {
    pairs_.insert(pairs_.end(), other.pairs_.begin(), other.pairs_.end());
  }

  std::size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }
  const std::vector<Pair>& pairs() const { return pairs_; }
  std::vector<Pair>& pairs() { return pairs_; }

  /// Sort lexicographically and drop duplicates.
  void normalize();

  /// Exact pair-set equality after normalisation of both sides.
  static bool equal_normalized(ResultSet a, ResultSet b);

  /// True iff for every pair (k, v) the pair (v, k) is also present.
  /// All correct self-join results are symmetric. Expects normalized input.
  bool is_symmetric() const;

  /// Neighbour count per key (requires ids < n). Includes self pairs.
  std::vector<std::uint32_t> counts_per_key(std::size_t n) const;

  /// Total neighbours / n (paper's "avg. neighbors" metric, Fig. 1).
  double avg_neighbors(std::size_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(pairs_.size()) / static_cast<double>(n);
  }

 private:
  std::vector<Pair> pairs_;
};

/// CSR adjacency view of a normalised result set: neighbors(i) is the
/// contiguous, ascending list of neighbour ids of point i.
class NeighborTable {
 public:
  NeighborTable() = default;
  /// Builds from a result set (normalised internally) for n points.
  NeighborTable(ResultSet rs, std::size_t n);

  std::size_t num_points() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t degree(std::size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }
  const std::uint32_t* begin(std::size_t i) const {
    return neighbors_.data() + offsets_[i];
  }
  const std::uint32_t* end(std::size_t i) const {
    return neighbors_.data() + offsets_[i + 1];
  }
  std::size_t total_neighbors() const { return neighbors_.size(); }

 private:
  std::vector<std::size_t> offsets_;      // size n + 1
  std::vector<std::uint32_t> neighbors_;  // size = total pairs
};

}  // namespace sj
