// Serial fallbacks for the handful of omp_* runtime calls the engines
// make, so builds without OpenMP (e.g. the ThreadSanitizer CI job, where
// libgomp's uninstrumented runtime would flood the report) still link.
// The parallel-for pragmas are inert without -fopenmp; these inline stubs
// cover the explicit API uses.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#else
inline int omp_get_max_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
#endif
