// Wall-clock timing used uniformly across benches and algorithm internals.
#pragma once

#include <chrono>

namespace sj {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sj
