#include "common/datasets.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "common/datagen.hpp"
#include "common/io.hpp"

namespace sj::datasets {

namespace {

/// Generator-version component of the cache key. BUMP THIS whenever any
/// datagen:: generator or the datasets::make wiring changes output bytes
/// — the key otherwise cannot tell a stale cached file from a fresh one.
constexpr const char* kCacheVersion = "v1";

/// Cache path for a generated dataset, or "" when caching is off. Keyed
/// by generator version / name / resolved size / seed (the size folds
/// the scale factor in, so a default_n change can never serve a stale
/// file); the directory comes from SJ_DATASET_CACHE. Generation of the
/// Table I datasets dominates bench start-up, so sjtool, the benches and
/// the tests all reuse the cached .sjd files.
std::string cache_path(const Info& i, std::size_t n) {
  const char* dir = std::getenv("SJ_DATASET_CACHE");
  if (dir == nullptr || *dir == '\0') return {};
  return std::string(dir) + "/" + i.name + "-n" + std::to_string(n) +
         "-seed" + std::to_string(i.seed) + "-" + kCacheVersion + ".sjd";
}

/// Load a cached dataset; empty optional-style Dataset on any miss or
/// mismatch (a corrupt or stale file falls back to regeneration).
bool load_cached(const std::string& path, const Info& i, std::size_t n,
                 Dataset& out) {
  try {
    Dataset d = io::load_binary(path);
    if (d.dim() != i.dim || d.size() != n) return false;
    out = std::move(d);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::vector<double> rescaled(const std::vector<double>& paper_eps,
                             std::size_t paper_n, std::size_t default_n,
                             int dim) {
  // eps * (N_paper / N_ours)^(1/dim) keeps N * V(eps) / domain constant.
  const double f = std::pow(static_cast<double>(paper_n) /
                                static_cast<double>(default_n),
                            1.0 / dim);
  std::vector<double> out;
  out.reserve(paper_eps.size());
  for (double e : paper_eps) out.push_back(e * f);
  return out;
}

Info syn(const std::string& name, std::size_t paper_n, int dim,
         std::size_t default_n, std::vector<double> paper_eps,
         std::uint64_t seed) {
  Info i;
  i.name = name;
  i.paper_n = paper_n;
  i.dim = dim;
  i.default_n = default_n;
  i.kind = Kind::kUniform;
  i.bench_eps = rescaled(paper_eps, paper_n, default_n, dim);
  i.paper_eps = std::move(paper_eps);
  i.seed = seed;
  return i;
}

Info real(const std::string& name, std::size_t paper_n, int dim,
          std::size_t default_n, Kind kind, std::vector<double> paper_eps,
          std::vector<double> bench_eps, std::uint64_t seed) {
  Info i;
  i.name = name;
  i.paper_n = paper_n;
  i.dim = dim;
  i.default_n = default_n;
  i.kind = kind;
  i.paper_eps = std::move(paper_eps);
  i.bench_eps = std::move(bench_eps);
  i.seed = seed;
  return i;
}

std::vector<Info> build_all() {
  std::vector<Info> v;
  const std::size_t kTwoM = 2'000'000;
  const std::size_t kTenM = 10'000'000;
  // Scaled defaults: "2M"-class -> 20k, "10M"-class -> 50k (DESIGN.md §5).
  v.push_back(syn("Syn2D2M", kTwoM, 2, 20'000, {0.2, 0.4, 0.6, 0.8, 1.0}, 101));
  v.push_back(syn("Syn3D2M", kTwoM, 3, 20'000, {0.2, 0.4, 0.6, 0.8, 1.0}, 102));
  v.push_back(syn("Syn4D2M", kTwoM, 4, 20'000, {2, 4, 6, 8, 10}, 103));
  v.push_back(syn("Syn5D2M", kTwoM, 5, 20'000, {2, 4, 6, 8, 10}, 104));
  v.push_back(syn("Syn6D2M", kTwoM, 6, 20'000, {2, 4, 6, 8, 10}, 105));
  v.push_back(syn("Syn2D10M", kTenM, 2, 50'000, {0.1, 0.2, 0.3, 0.4, 0.5}, 111));
  v.push_back(syn("Syn3D10M", kTenM, 3, 50'000, {0.1, 0.2, 0.3, 0.4, 0.5}, 112));
  v.push_back(syn("Syn4D10M", kTenM, 4, 50'000, {1, 2, 3, 4, 5}, 113));
  v.push_back(syn("Syn5D10M", kTenM, 5, 50'000, {1, 2, 3, 4, 5}, 114));
  v.push_back(syn("Syn6D10M", kTenM, 6, 50'000, {1, 2, 3, 4, 5}, 115));
  // Real-world stand-ins. bench_eps hand-calibrated for the generators'
  // [0, 100]-scaled domains (see datagen.hpp); paper_eps kept for the
  // EXPERIMENTS.md paper-vs-measured tables.
  v.push_back(real("SW2DA", 1'864'620, 2, 20'000, Kind::kSW,
                   {0.3, 0.6, 0.9, 1.2, 1.5}, {0.3, 0.6, 0.9, 1.2, 1.5}, 201));
  v.push_back(real("SW2DB", 5'159'737, 2, 35'000, Kind::kSW,
                   {0.1, 0.2, 0.3, 0.4, 0.5}, {0.1, 0.2, 0.3, 0.4, 0.5}, 202));
  v.push_back(real("SW3DA", 1'864'620, 3, 20'000, Kind::kSW,
                   {0.6, 1.2, 1.8, 2.4, 3.0}, {0.6, 1.2, 1.8, 2.4, 3.0}, 203));
  v.push_back(real("SW3DB", 5'159'737, 3, 35'000, Kind::kSW,
                   {0.2, 0.4, 0.6, 0.8, 1.0}, {0.2, 0.4, 0.6, 0.8, 1.0}, 204));
  v.push_back(real("SDSS2DA", 2'000'000, 2, 20'000, Kind::kSDSS,
                   {0.3, 0.6, 0.9, 1.2, 1.5}, {0.3, 0.6, 0.9, 1.2, 1.5}, 205));
  v.push_back(real("SDSS2DB", 15'228'633, 2, 60'000, Kind::kSDSS,
                   {0.02, 0.04, 0.06, 0.08, 0.10},
                   {0.05, 0.10, 0.15, 0.20, 0.25}, 206));
  return v;
}

}  // namespace

const std::vector<Info>& all() {
  static const std::vector<Info> kAll = build_all();
  return kAll;
}

const Info& info(const std::string& name) {
  for (const Info& i : all()) {
    if (i.name == name) return i;
  }
  throw std::out_of_range("datasets::info: unknown dataset " + name);
}

Dataset make(const std::string& name, double scale) {
  const Info& i = info(name);
  const auto n = static_cast<std::size_t>(
      std::llround(static_cast<double>(i.default_n) * scale));
  const std::string cached = cache_path(i, n);
  Dataset d;
  if (!cached.empty() && load_cached(cached, i, n, d)) {
    d.set_name(i.name);
    return d;
  }
  switch (i.kind) {
    case Kind::kUniform:
      d = datagen::uniform(n, i.dim, 0.0, 100.0, i.seed);
      break;
    case Kind::kSW:
      d = datagen::sw_like(n, i.dim, i.seed);
      break;
    case Kind::kSDSS:
      d = datagen::sdss_like(n, i.seed);
      break;
  }
  d.set_name(i.name);
  if (!cached.empty()) {
    try {
      io::save_binary(d, cached);
    } catch (const std::exception&) {
      // An unwritable cache directory is not an error — next run
      // regenerates.
    }
  }
  return d;
}

double scale_eps(const Info& info, std::size_t actual_n, double bench_eps) {
  if (actual_n == 0 || actual_n == info.default_n) return bench_eps;
  const double f = std::pow(static_cast<double>(info.default_n) /
                                static_cast<double>(actual_n),
                            1.0 / info.dim);
  return bench_eps * f;
}

std::vector<double> scaled_eps(const Info& info, std::size_t actual_n) {
  std::vector<double> out;
  out.reserve(info.bench_eps.size());
  for (double e : info.bench_eps) out.push_back(scale_eps(info, actual_n, e));
  return out;
}

}  // namespace sj::datasets
