#pragma once

/// Runtime contract checking (SJ_EXPECT / SJ_ENSURE / SJ_INVARIANT) and
/// the switchboard for the deep structural validators in
/// core/validate.hpp.
///
/// Two tiers:
///
///  * The macros below are per-item hot-path contracts (preconditions,
///    postconditions, loop invariants). They compile to NOTHING unless
///    the build sets -DSJ_VALIDATE=ON (which defines SJ_VALIDATE=1) —
///    the condition expression is never evaluated, so side effects and
///    cost both vanish in release builds.
///
///  * The structural validators (one-shot O(n) walks over a built
///    index / adjacency / shard plan) are ALWAYS compiled into the
///    libraries so tests can invoke them directly in any build. Engine
///    call sites gate them on contracts::active(), which is true when
///    the build compiled contracts in OR when the cheap runtime subset
///    was force-enabled (sjtool --validate).
///
/// A failed contract prints the violated expression, file:line, and the
/// caller-supplied context string to stderr, then aborts — the format
/// is stable and covered by death tests in tests/common.

#include <cstdint>

namespace sj::contracts {

/// True when the build compiled the contract macros in (-DSJ_VALIDATE=ON).
#if defined(SJ_VALIDATE) && SJ_VALIDATE
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

/// Force-enable the cheap runtime-check subset (the structural
/// validators) in builds that compiled the macros out. Used by
/// `sjtool --validate`.
void set_runtime_checks(bool on) noexcept;
bool runtime_checks() noexcept;

/// Should engine call sites run the structural validators?
bool active() noexcept;

/// Report a violated contract and abort. `kind` is the macro name
/// ("SJ_EXPECT", ...), `context` the caller-supplied explanation.
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const char* context) noexcept;

/// Total wall-clock seconds spent inside structural validators in this
/// process (accumulated by ScopedTimer; reported by sjtool --stats).
double validation_seconds() noexcept;
void reset_validation_seconds() noexcept;

/// RAII accumulator for validation_seconds().
class ScopedTimer {
 public:
  ScopedTimer() noexcept;
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t start_ns_;
};

/// Always-on check used INSIDE validators: unlike the macros it is a
/// real function call, so a validator fires in every build the moment
/// an engine (or a test) invokes it.
inline void check(bool ok, const char* expr, const char* file, int line,
                  const char* context) {
  if (!ok) fail("SJ_CHECK", expr, file, line, context);
}

}  // namespace sj::contracts

/// Validator-internal contract: always evaluated, aborts with the
/// standard report on failure. Use only inside validate.cpp-style
/// one-shot walks, never on per-point hot paths.
#define SJ_CHECK(cond, ctx) \
  ::sj::contracts::check((cond), #cond, __FILE__, __LINE__, (ctx))

#if defined(SJ_VALIDATE) && SJ_VALIDATE

#define SJ_CONTRACTS_ENABLED 1

#define SJ_CONTRACT_IMPL(kind, cond, ctx)                            \
  ((cond) ? (void)0                                                  \
          : ::sj::contracts::fail(kind, #cond, __FILE__, __LINE__, (ctx)))

/// Precondition: argument/state requirements at function entry.
#define SJ_EXPECT(cond, ctx) SJ_CONTRACT_IMPL("SJ_EXPECT", cond, ctx)
/// Postcondition: guarantees on results/state at function exit.
#define SJ_ENSURE(cond, ctx) SJ_CONTRACT_IMPL("SJ_ENSURE", cond, ctx)
/// Invariant: relations that must hold mid-algorithm.
#define SJ_INVARIANT(cond, ctx) SJ_CONTRACT_IMPL("SJ_INVARIANT", cond, ctx)

#else

#define SJ_CONTRACTS_ENABLED 0

// Compiled out: the condition and context are NOT evaluated (the
// operands sit behind a short-circuiting `true`), but they still parse,
// so contract expressions cannot rot and variables used only in
// contracts do not trip -Wunused.
#define SJ_CONTRACT_NOOP(cond, ctx) \
  (true ? (void)0 : ((void)(cond), (void)(ctx)))

#define SJ_EXPECT(cond, ctx) SJ_CONTRACT_NOOP(cond, ctx)
#define SJ_ENSURE(cond, ctx) SJ_CONTRACT_NOOP(cond, ctx)
#define SJ_INVARIANT(cond, ctx) SJ_CONTRACT_NOOP(cond, ctx)

#endif
