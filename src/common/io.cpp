#include "common/io.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sj::io {

namespace {

constexpr char kMagic[4] = {'S', 'J', 'D', '1'};

void ensure_parent(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
}

}  // namespace

void save_binary(const Dataset& d, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("io::save_binary: cannot open " + path);
  out.write(kMagic, 4);
  const auto dim = static_cast<std::uint32_t>(d.dim());
  const auto count = static_cast<std::uint64_t>(d.size());
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(d.raw().data()),
            static_cast<std::streamsize>(d.raw().size() * sizeof(double)));
  if (!out) throw std::runtime_error("io::save_binary: write failed");
}

Dataset load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("io::load_binary: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("io::load_binary: bad magic in " + path);
  }
  std::uint32_t dim = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || dim == 0 || dim > static_cast<std::uint32_t>(kMaxDims)) {
    throw std::runtime_error("io::load_binary: bad header in " + path);
  }
  std::vector<double> data(count * dim);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!in) throw std::runtime_error("io::load_binary: truncated " + path);
  return Dataset(static_cast<int>(dim), std::move(data),
                 std::filesystem::path(path).stem().string());
}

void save_csv(const Dataset& d, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("io::save_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (int j = 0; j < d.dim(); ++j) {
      out << d.coord(i, j) << (j + 1 < d.dim() ? "," : "\n");
    }
  }
}

Dataset load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("io::load_csv: cannot open " + path);
  std::vector<double> data;
  int dim = 0;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::vector<double> row;
    std::string cell;
    bool numeric = true;
    while (std::getline(ss, cell, ',')) {
      try {
        std::size_t used = 0;
        row.push_back(std::stod(cell, &used));
        if (used == 0) numeric = false;
      } catch (const std::exception&) {
        numeric = false;
        break;
      }
    }
    if (first && !numeric) {
      first = false;  // header line — skip
      continue;
    }
    first = false;
    if (!numeric) {
      throw std::runtime_error("io::load_csv: non-numeric row in " + path);
    }
    if (dim == 0) {
      dim = static_cast<int>(row.size());
      if (dim < 1 || dim > kMaxDims) {
        throw std::runtime_error("io::load_csv: unsupported width");
      }
    } else if (static_cast<int>(row.size()) != dim) {
      throw std::runtime_error("io::load_csv: ragged rows in " + path);
    }
    data.insert(data.end(), row.begin(), row.end());
  }
  if (dim == 0) throw std::runtime_error("io::load_csv: empty file " + path);
  return Dataset(dim, std::move(data),
                 std::filesystem::path(path).stem().string());
}

}  // namespace sj::io
