#include "common/io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace sj::io {

namespace {

constexpr char kMagic[4] = {'S', 'J', 'D', '1'};

void ensure_parent(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
}

/// Every loaded coordinate must be finite: a NaN poisons every distance
/// comparison it touches (NaN <= eps2 is false, so the point silently
/// joins with nothing) and an Inf overflows the grid extent — both stage
/// garbage that only surfaces as wrong answers much later.
void require_finite(double v, const std::string& path, std::size_t row,
                    const char* loader) {
  if (std::isfinite(v)) return;
  throw std::runtime_error(std::string(loader) + ": " + path + ": row " +
                           std::to_string(row) +
                           " has a non-finite coordinate (" +
                           (std::isnan(v) ? "NaN" : "Inf") +
                           "); refusing to stage it");
}

}  // namespace

void atomic_write_file(const std::string& path, const void* bytes,
                       std::size_t size) {
  ensure_parent(path);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("io::atomic_write_file: cannot open " + tmp);
  }
  bool ok = size == 0 || std::fwrite(bytes, 1, size, f) == size;
  ok = std::fflush(f) == 0 && ok;
#ifndef _WIN32
  // Flush file content to stable storage BEFORE the rename publishes it;
  // otherwise a crash can leave the new name pointing at zero-length or
  // partially-persisted data — exactly the torn file this helper exists
  // to rule out.
  ok = fsync(fileno(f)) == 0 && ok;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("io::atomic_write_file: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("io::atomic_write_file: rename to " + path +
                             " failed: " + ec.message());
  }
}

void atomic_write_file(const std::string& path, const std::string& text) {
  atomic_write_file(path, text.data(), text.size());
}

void save_binary(const Dataset& d, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("io::save_binary: cannot open " + path);
  out.write(kMagic, 4);
  const auto dim = static_cast<std::uint32_t>(d.dim());
  const auto count = static_cast<std::uint64_t>(d.size());
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(d.raw().data()),
            static_cast<std::streamsize>(d.raw().size() * sizeof(double)));
  if (!out) throw std::runtime_error("io::save_binary: write failed");
}

Dataset load_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("io::load_binary: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("io::load_binary: bad magic in " + path);
  }
  std::uint32_t dim = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || dim == 0 || dim > static_cast<std::uint32_t>(kMaxDims)) {
    throw std::runtime_error("io::load_binary: bad header in " + path);
  }
  // Bound the claimed size by the actual file size before allocating:
  // a corrupt header must fail with a clear error, not an OOM or a
  // count*dim multiplication overflow.
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(std::filesystem::file_size(path)) -
      (4 + sizeof(dim) + sizeof(count));
  if (count > payload_bytes / sizeof(double) / dim) {
    throw std::runtime_error(
        "io::load_binary: " + path + ": header claims " +
        std::to_string(count) + " points of dim " + std::to_string(dim) +
        " but the file holds only " + std::to_string(payload_bytes) +
        " payload bytes (truncated or corrupt)");
  }
  std::vector<double> data(count * dim);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(data.size() * sizeof(double)));
  if (!in) throw std::runtime_error("io::load_binary: truncated " + path);
  for (std::size_t i = 0; i < data.size(); ++i) {
    require_finite(data[i], path, i / dim, "io::load_binary");
  }
  return Dataset(static_cast<int>(dim), std::move(data),
                 std::filesystem::path(path).stem().string());
}

void save_csv(const Dataset& d, const std::string& path) {
  ensure_parent(path);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("io::save_csv: cannot open " + path);
  out.precision(17);
  for (std::size_t i = 0; i < d.size(); ++i) {
    for (int j = 0; j < d.dim(); ++j) {
      out << d.coord(i, j) << (j + 1 < d.dim() ? "," : "\n");
    }
  }
}

Dataset load_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("io::load_csv: cannot open " + path);
  std::vector<double> data;
  int dim = 0;
  std::string line;
  bool first = true;
  std::size_t lineno = 0;
  auto where = [&path, &lineno] {
    return path + ":" + std::to_string(lineno);
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF files
    if (line.empty()) continue;
    std::stringstream ss(line);
    std::vector<double> row;
    std::string cell;
    bool numeric = true;
    std::string bad_cell;
    while (std::getline(ss, cell, ',')) {
      // Lenient syntax probe first (is this a number at all?) so header
      // detection still works; "nan"/"inf" ARE numbers syntactically and
      // must reach the strict check below, not be mistaken for a header.
      try {
        std::size_t used = 0;
        row.push_back(std::stod(cell, &used));
        if (used != cell.size() || cell.empty()) {
          numeric = false;
          bad_cell = cell;
          break;
        }
      } catch (const std::exception&) {
        numeric = false;
        bad_cell = cell;
        break;
      }
    }
    if (first && !numeric) {
      first = false;  // header line — skip
      continue;
    }
    first = false;
    if (!numeric) {
      throw std::runtime_error("io::load_csv: " + where() +
                               ": non-numeric value '" + bad_cell + "'");
    }
    // Strict pass: a NaN/Inf coordinate fails HERE with the file and
    // line named instead of silently joining with nothing later.
    for (const double v : row) {
      if (!std::isfinite(v)) {
        throw std::runtime_error(
            "io::load_csv: " + where() + ": non-finite coordinate (" +
            (std::isnan(v) ? "NaN" : "Inf") + "); refusing to stage it");
      }
    }
    if (dim == 0) {
      dim = static_cast<int>(row.size());
      if (dim < 1 || dim > kMaxDims) {
        throw std::runtime_error(
            "io::load_csv: " + where() + ": unsupported row width " +
            std::to_string(row.size()) + " (supported: 1.." +
            std::to_string(kMaxDims) + ")");
      }
    } else if (static_cast<int>(row.size()) != dim) {
      throw std::runtime_error(
          "io::load_csv: " + where() + ": row has " +
          std::to_string(row.size()) + " values, expected " +
          std::to_string(dim) + " (truncated or ragged row)");
    }
    data.insert(data.end(), row.begin(), row.end());
  }
  if (dim == 0) throw std::runtime_error("io::load_csv: empty file " + path);
  return Dataset(dim, std::move(data),
                 std::filesystem::path(path).stem().string());
}

}  // namespace sj::io
