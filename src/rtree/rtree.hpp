// Guttman R-tree (1984) — the reference index for the CPU-RTREE
// search-and-refine baseline (paper Section VI-B).
//
// Supports one-at-a-time insertion with quadratic split (the classic
// construction the paper references via [9]) and STR bulk loading
// (sort-tile-recursive), which the ablation bench compares against the
// paper's "sort into unit bins, then insert" preparation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dataset.hpp"
#include "rtree/mbr.hpp"

namespace sj::rtree {

struct Options {
  int max_entries = 16;
  int min_entries = 6;  // Guttman recommends m <= M/2
};

struct QueryStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t candidates = 0;  // points reaching the refine step
};

class RTree {
 public:
  explicit RTree(int dim, Options opt = {});
  ~RTree();
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void insert(const double* pt, std::uint32_t id);

  /// STR bulk load: replaces the current content with a packed tree over
  /// the dataset. Far cheaper to build and better clustered than repeated
  /// insertion.
  void bulk_load_str(const Dataset& d);

  /// Search phase: ids of all points whose coordinates fall inside the
  /// window [center - eps, center + eps]; the caller refines with the
  /// exact distance. `out` is appended to.
  void window_candidates(const double* center, double eps,
                         std::vector<std::uint32_t>& out,
                         QueryStats* stats = nullptr) const;

  /// Convenience: full search-and-refine range query (exact distances).
  void range_query(const Dataset& d, const double* center, double eps,
                   std::vector<std::uint32_t>& out,
                   QueryStats* stats = nullptr) const;

  std::size_t size() const { return size_; }
  int height() const;

  /// Structural invariants (tests): every child MBR is contained in its
  /// parent entry, and entry counts respect [min_entries, max_entries]
  /// (root exempt).
  bool check_invariants() const;

 private:
  struct Node;

  Node* choose_leaf(Node* node, const MBR& mbr);
  void split_node(Node* node);
  void adjust_upwards(Node* node);
  std::unique_ptr<Node> build_str_level(std::vector<std::unique_ptr<Node>> nodes);

  int dim_;
  Options opt_;
  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace sj::rtree
