// Adapter shim exposing the sequential R-tree search-and-refine baseline
// through the unified backend interface as "rtree".
#include "rtree/rtree_backend.hpp"

#include <memory>
#include <stdexcept>

#include "api/registry.hpp"
#include "rtree/rtree_self_join.hpp"

namespace sj::backends {

namespace {

rtree::BuildMode parse_build_mode(const std::string& mode) {
  if (mode == "binned") return rtree::BuildMode::kBinnedInsert;
  if (mode == "str") return rtree::BuildMode::kStrBulkLoad;
  if (mode == "raw") return rtree::BuildMode::kRawInsert;
  throw std::invalid_argument(
      "rtree: unknown build_mode '" + mode + "' (known: binned, str, raw)");
}

class RtreeBackend final : public api::Backend {
 public:
  std::string_view name() const override { return "rtree"; }
  std::string_view description() const override {
    return "sequential CPU R-tree search-and-refine (Section VI-B "
           "baseline); also serves the query/data join";
  }

  api::Capabilities capabilities() const override {
    return {.supports_join = true};
  }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    return adapt(rtree::self_join(d, eps, parse_mode(config),
                                  parse_options(config)),
                 config, d.size());
  }

  api::JoinOutcome join(const Dataset& queries, const Dataset& data,
                        double eps,
                        const api::RunConfig& config) const override {
    api::check_result_mode(name(), config, /*supports_sink=*/true);
    return adapt(rtree::join(queries, data, eps, parse_mode(config),
                             parse_options(config)),
                 config, queries.size());
  }

 private:
  rtree::BuildMode parse_mode(const api::RunConfig& config) const {
    config.check_keys(name(), "build_mode,max_entries,min_entries");
    if (config.threads != 0) {
      throw std::invalid_argument(
          "rtree: --threads is not supported (the baseline is the paper's "
          "sequential search-and-refine)");
    }
    return parse_build_mode(config.text("build_mode", "binned"));
  }

  static rtree::Options parse_options(const api::RunConfig& config) {
    rtree::Options opt;
    opt.max_entries = config.integer("max_entries", opt.max_entries);
    opt.min_entries = config.integer("min_entries", opt.min_entries);
    return opt;
  }

  static api::JoinOutcome adapt(rtree::RTreeSelfJoinResult r,
                                const api::RunConfig& config,
                                std::size_t n_keys) {
    api::JoinOutcome out;
    // The tree walk materialises every pair either way; the modes are a
    // reduction over them (finalize_outcome).
    api::finalize_outcome(out, std::move(r.pairs), config, n_keys);
    const rtree::RTreeSelfJoinStats& s = r.stats;
    // Paper convention: construction is excluded from the reported time.
    out.stats.seconds = s.query_seconds;
    out.stats.total_seconds = s.build_seconds + s.query_seconds;
    out.stats.build_seconds = s.build_seconds;
    out.stats.distance_calcs = s.distance_calcs;
    out.stats.native = {
        {"build_seconds", s.build_seconds},
        {"query_seconds", s.query_seconds},
        {"nodes_visited", static_cast<double>(s.nodes_visited)},
        {"candidates", static_cast<double>(s.candidates)},
        {"tree_height", static_cast<double>(s.tree_height)},
    };
    return out;
  }
};

}  // namespace

void register_rtree(api::BackendRegistry& registry) {
  registry.add(std::make_unique<RtreeBackend>());
}

}  // namespace sj::backends
