// Adapter shim exposing the sequential R-tree search-and-refine baseline
// through the unified backend interface as "rtree".
#include "rtree/rtree_backend.hpp"

#include <memory>
#include <stdexcept>

#include "api/registry.hpp"
#include "rtree/rtree_self_join.hpp"

namespace sj::backends {

namespace {

rtree::BuildMode parse_build_mode(const std::string& mode) {
  if (mode == "binned") return rtree::BuildMode::kBinnedInsert;
  if (mode == "str") return rtree::BuildMode::kStrBulkLoad;
  if (mode == "raw") return rtree::BuildMode::kRawInsert;
  throw std::invalid_argument(
      "rtree: unknown build_mode '" + mode + "' (known: binned, str, raw)");
}

class RtreeBackend final : public api::SelfJoinBackend {
 public:
  std::string_view name() const override { return "rtree"; }
  std::string_view description() const override {
    return "sequential CPU R-tree search-and-refine self-join (Section "
           "VI-B baseline)";
  }

  api::Capabilities capabilities() const override { return {}; }

  api::JoinOutcome run(const Dataset& d, double eps,
                       const api::RunConfig& config) const override {
    config.check_keys(name(), "build_mode,max_entries,min_entries");
    if (config.threads != 0) {
      throw std::invalid_argument(
          "rtree: --threads is not supported (the baseline is the paper's "
          "sequential search-and-refine)");
    }
    const rtree::BuildMode mode =
        parse_build_mode(config.text("build_mode", "binned"));
    rtree::Options opt;
    opt.max_entries = config.integer("max_entries", opt.max_entries);
    opt.min_entries = config.integer("min_entries", opt.min_entries);

    auto r = rtree::self_join(d, eps, mode, opt);

    api::JoinOutcome out;
    out.pairs = std::move(r.pairs);
    const rtree::RTreeSelfJoinStats& s = r.stats;
    // Paper convention: construction is excluded from the reported time.
    out.stats.seconds = s.query_seconds;
    out.stats.total_seconds = s.build_seconds + s.query_seconds;
    out.stats.build_seconds = s.build_seconds;
    out.stats.distance_calcs = s.distance_calcs;
    out.stats.native = {
        {"build_seconds", s.build_seconds},
        {"query_seconds", s.query_seconds},
        {"nodes_visited", static_cast<double>(s.nodes_visited)},
        {"candidates", static_cast<double>(s.candidates)},
        {"tree_height", static_cast<double>(s.tree_height)},
    };
    return out;
  }
};

}  // namespace

void register_rtree(api::BackendRegistry& registry) {
  registry.add(std::make_unique<RtreeBackend>());
}

}  // namespace sj::backends
