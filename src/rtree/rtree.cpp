#include "rtree/rtree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sj::rtree {

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<MBR> entry_mbrs;
  std::vector<std::unique_ptr<Node>> children;  // internal nodes
  std::vector<std::uint32_t> ids;               // leaf nodes

  std::size_t count() const {
    return leaf ? ids.size() : children.size();
  }

  MBR bounding(int dim) const {
    MBR m = entry_mbrs.front();
    for (std::size_t i = 1; i < entry_mbrs.size(); ++i) {
      m.expand(entry_mbrs[i], dim);
    }
    return m;
  }
};

RTree::RTree(int dim, Options opt) : dim_(dim), opt_(opt) {
  if (dim < 1 || dim > kMaxDims) {
    throw std::invalid_argument("RTree: dim out of range");
  }
  if (opt_.min_entries < 1 || opt_.min_entries > opt_.max_entries / 2) {
    throw std::invalid_argument("RTree: need 1 <= min_entries <= max/2");
  }
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree::Node* RTree::choose_leaf(Node* node, const MBR& mbr) {
  while (!node->leaf) {
    std::size_t best = 0;
    double best_enl = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < node->entry_mbrs.size(); ++i) {
      const double enl = node->entry_mbrs[i].enlargement(mbr, dim_);
      const double area = node->entry_mbrs[i].area(dim_);
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = i;
        best_enl = enl;
        best_area = area;
      }
    }
    node->entry_mbrs[best].expand(mbr, dim_);
    node = node->children[best].get();
  }
  return node;
}

void RTree::insert(const double* pt, std::uint32_t id) {
  const MBR mbr = MBR::of_point(pt, dim_);
  if (!root_) {
    root_ = std::make_unique<Node>();
  }
  Node* leaf = choose_leaf(root_.get(), mbr);
  leaf->entry_mbrs.push_back(mbr);
  leaf->ids.push_back(id);
  ++size_;
  if (leaf->count() > static_cast<std::size_t>(opt_.max_entries)) {
    split_node(leaf);
  } else {
    adjust_upwards(leaf);
  }
}

void RTree::split_node(Node* node) {
  // Collect the node's entries.
  const std::size_t n = node->count();
  std::vector<MBR> mbrs = std::move(node->entry_mbrs);
  std::vector<std::unique_ptr<Node>> children = std::move(node->children);
  std::vector<std::uint32_t> ids = std::move(node->ids);
  node->entry_mbrs.clear();
  node->children.clear();
  node->ids.clear();

  // Quadratic PickSeeds: the pair wasting the most area.
  std::size_t seed1 = 0, seed2 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      MBR u = mbrs[i];
      u.expand(mbrs[j], dim_);
      const double waste = u.area(dim_) - mbrs[i].area(dim_) - mbrs[j].area(dim_);
      if (waste > worst) {
        worst = waste;
        seed1 = i;
        seed2 = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  std::vector<bool> assigned(n, false);
  MBR box1 = mbrs[seed1];
  MBR box2 = mbrs[seed2];
  auto put = [&](Node* dst, std::size_t i) {
    dst->entry_mbrs.push_back(mbrs[i]);
    if (node->leaf) {
      dst->ids.push_back(ids[i]);
    } else {
      children[i]->parent = dst;
      dst->children.push_back(std::move(children[i]));
    }
    assigned[i] = true;
  };
  put(node, seed1);
  put(sibling.get(), seed2);

  std::size_t remaining = n - 2;
  while (remaining > 0) {
    const std::size_t need1 =
        static_cast<std::size_t>(opt_.min_entries) > node->count()
            ? opt_.min_entries - node->count()
            : 0;
    const std::size_t need2 =
        static_cast<std::size_t>(opt_.min_entries) > sibling->count()
            ? opt_.min_entries - sibling->count()
            : 0;
    // If one group must absorb all remaining entries to reach the
    // minimum, assign them wholesale (Guttman's QS2).
    if (need1 == remaining || need2 == remaining) {
      Node* dst = need1 == remaining ? node : sibling.get();
      MBR* box = need1 == remaining ? &box1 : &box2;
      for (std::size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          box->expand(mbrs[i], dim_);
          put(dst, i);
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: entry with the greatest preference for one group.
    std::size_t pick = n;
    double best_diff = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double d1 = box1.enlargement(mbrs[i], dim_);
      const double d2 = box2.enlargement(mbrs[i], dim_);
      const double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    const double d1 = box1.enlargement(mbrs[pick], dim_);
    const double d2 = box2.enlargement(mbrs[pick], dim_);
    bool to_first;
    if (d1 != d2) {
      to_first = d1 < d2;
    } else if (box1.area(dim_) != box2.area(dim_)) {
      to_first = box1.area(dim_) < box2.area(dim_);
    } else {
      to_first = node->count() <= sibling->count();
    }
    if (to_first) {
      box1.expand(mbrs[pick], dim_);
      put(node, pick);
    } else {
      box2.expand(mbrs[pick], dim_);
      put(sibling.get(), pick);
    }
    --remaining;
  }

  // Attach the sibling to the parent (creating a new root if needed).
  if (node->parent == nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Node* old = root_.release();
    old->parent = new_root.get();
    sibling->parent = new_root.get();
    new_root->entry_mbrs.push_back(old->bounding(dim_));
    new_root->children.emplace_back(old);
    new_root->entry_mbrs.push_back(sibling->bounding(dim_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  // Refresh this node's entry MBR in the parent.
  for (std::size_t i = 0; i < parent->children.size(); ++i) {
    if (parent->children[i].get() == node) {
      parent->entry_mbrs[i] = node->bounding(dim_);
      break;
    }
  }
  sibling->parent = parent;
  parent->entry_mbrs.push_back(sibling->bounding(dim_));
  parent->children.push_back(std::move(sibling));
  if (parent->count() > static_cast<std::size_t>(opt_.max_entries)) {
    split_node(parent);
  } else {
    adjust_upwards(parent);
  }
}

void RTree::adjust_upwards(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (std::size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == node) {
        parent->entry_mbrs[i] = node->bounding(dim_);
        break;
      }
    }
    node = parent;
  }
}

void RTree::bulk_load_str(const Dataset& d) {
  root_.reset();
  size_ = d.size();
  if (d.empty()) return;

  const std::size_t M = static_cast<std::size_t>(opt_.max_entries);

  // Recursive sort-tile partition of point ids into leaf-sized runs.
  std::vector<std::uint32_t> ids(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    ids[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::unique_ptr<Node>> leaves;

  // tile(first, last, axis): slab-partition on `axis`, recursing until the
  // final axis, where leaf runs are emitted.
  auto tile = [&](auto&& self, std::size_t first, std::size_t last,
                  int axis) -> void {
    const std::size_t n = last - first;
    std::sort(ids.begin() + first, ids.begin() + last,
              [&](std::uint32_t a, std::uint32_t b) {
                return d.coord(a, axis) < d.coord(b, axis);
              });
    if (axis == dim_ - 1 || n <= M) {
      for (std::size_t i = first; i < last; i += M) {
        const std::size_t end = std::min(i + M, last);
        auto leaf = std::make_unique<Node>();
        for (std::size_t k = i; k < end; ++k) {
          leaf->entry_mbrs.push_back(MBR::of_point(d.pt(ids[k]), dim_));
          leaf->ids.push_back(ids[k]);
        }
        leaves.push_back(std::move(leaf));
      }
      return;
    }
    const std::size_t num_leaves = (n + M - 1) / M;
    const auto slabs = static_cast<std::size_t>(std::ceil(
        std::pow(static_cast<double>(num_leaves),
                 1.0 / static_cast<double>(dim_ - axis))));
    const std::size_t per_slab = (n + slabs - 1) / slabs;
    for (std::size_t i = first; i < last; i += per_slab) {
      self(self, i, std::min(i + per_slab, last), axis + 1);
    }
  };
  tile(tile, 0, d.size(), 0);

  root_ = build_str_level(std::move(leaves));
}

std::unique_ptr<RTree::Node> RTree::build_str_level(
    std::vector<std::unique_ptr<Node>> nodes) {
  const std::size_t M = static_cast<std::size_t>(opt_.max_entries);
  while (nodes.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (std::size_t i = 0; i < nodes.size(); i += M) {
      const std::size_t end = std::min(i + M, nodes.size());
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (std::size_t k = i; k < end; ++k) {
        parent->entry_mbrs.push_back(nodes[k]->bounding(dim_));
        nodes[k]->parent = parent.get();
        parent->children.push_back(std::move(nodes[k]));
      }
      parents.push_back(std::move(parent));
    }
    nodes = std::move(parents);
  }
  return std::move(nodes.front());
}

void RTree::window_candidates(const double* center, double eps,
                              std::vector<std::uint32_t>& out,
                              QueryStats* stats) const {
  if (!root_) return;
  // Explicit stack; tree depth is O(log n) but candidates can be many.
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (stats != nullptr) ++stats->nodes_visited;
    for (std::size_t i = 0; i < node->entry_mbrs.size(); ++i) {
      if (!node->entry_mbrs[i].intersects_window(center, eps, dim_)) continue;
      if (node->leaf) {
        out.push_back(node->ids[i]);
        if (stats != nullptr) ++stats->candidates;
      } else {
        stack.push_back(node->children[i].get());
      }
    }
  }
}

void RTree::range_query(const Dataset& d, const double* center, double eps,
                        std::vector<std::uint32_t>& out,
                        QueryStats* stats) const {
  std::vector<std::uint32_t> candidates;
  window_candidates(center, eps, candidates, stats);
  const double eps2 = eps * eps;
  for (std::uint32_t id : candidates) {
    if (sq_dist(center, d.pt(id), dim_) <= eps2) out.push_back(id);
  }
}

int RTree::height() const {
  int h = 0;
  const Node* node = root_.get();
  while (node != nullptr) {
    ++h;
    node = node->leaf ? nullptr : node->children.front().get();
  }
  return h;
}

bool RTree::check_invariants() const {
  if (!root_) return size_ == 0;
  int leaf_depth = -1;
  std::size_t points = 0;
  bool ok = true;

  auto visit = [&](auto&& self, const Node* node, int depth,
                   bool is_root) -> void {
    const std::size_t c = node->count();
    if (!is_root && (c < static_cast<std::size_t>(opt_.min_entries) ||
                     c > static_cast<std::size_t>(opt_.max_entries))) {
      // STR packing can legally leave underfull rightmost nodes; only an
      // overflow is a hard violation.
      if (c > static_cast<std::size_t>(opt_.max_entries)) ok = false;
    }
    if (node->leaf) {
      if (leaf_depth == -1) leaf_depth = depth;
      if (leaf_depth != depth) ok = false;  // unbalanced
      points += node->ids.size();
      return;
    }
    for (std::size_t i = 0; i < node->children.size(); ++i) {
      const MBR child_box = node->children[i]->bounding(dim_);
      if (!node->entry_mbrs[i].contains(child_box, dim_)) ok = false;
      if (node->children[i]->parent != node) ok = false;
      self(self, node->children[i].get(), depth + 1, false);
    }
  };
  visit(visit, root_.get(), 0, true);
  return ok && points == size_;
}

}  // namespace sj::rtree
