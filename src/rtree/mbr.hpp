// Minimum bounding rectangles for the R-tree (Guttman 1984), in runtime
// dimensionality up to kMaxDims.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/distance.hpp"

namespace sj::rtree {

struct MBR {
  double lo[kMaxDims];
  double hi[kMaxDims];

  static MBR of_point(const double* pt, int dim) {
    MBR m;
    for (int j = 0; j < dim; ++j) {
      m.lo[j] = pt[j];
      m.hi[j] = pt[j];
    }
    return m;
  }

  void expand(const MBR& o, int dim) {
    for (int j = 0; j < dim; ++j) {
      lo[j] = std::min(lo[j], o.lo[j]);
      hi[j] = std::max(hi[j], o.hi[j]);
    }
  }

  double area(int dim) const {
    double a = 1.0;
    for (int j = 0; j < dim; ++j) a *= hi[j] - lo[j];
    return a;
  }

  /// Area increase if `o` were merged in (Guttman's ChooseLeaf metric).
  double enlargement(const MBR& o, int dim) const {
    double merged = 1.0;
    for (int j = 0; j < dim; ++j) {
      merged *= std::max(hi[j], o.hi[j]) - std::min(lo[j], o.lo[j]);
    }
    return merged - area(dim);
  }

  bool contains(const MBR& o, int dim) const {
    for (int j = 0; j < dim; ++j) {
      if (o.lo[j] < lo[j] || o.hi[j] > hi[j]) return false;
    }
    return true;
  }

  /// Intersection with the axis-aligned query window
  /// [center - eps, center + eps]^dim — the search phase of
  /// search-and-refine generates candidates through this window.
  bool intersects_window(const double* center, double eps, int dim) const {
    for (int j = 0; j < dim; ++j) {
      if (hi[j] < center[j] - eps || lo[j] > center[j] + eps) return false;
    }
    return true;
  }

  /// Squared minimum distance from a point to this rectangle.
  double min_sq_dist(const double* pt, int dim) const {
    double acc = 0.0;
    for (int j = 0; j < dim; ++j) {
      double d = 0.0;
      if (pt[j] < lo[j]) {
        d = lo[j] - pt[j];
      } else if (pt[j] > hi[j]) {
        d = pt[j] - hi[j];
      }
      acc += d * d;
    }
    return acc;
  }
};

}  // namespace sj::rtree
