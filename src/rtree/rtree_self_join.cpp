#include "rtree/rtree_self_join.hpp"

#include <algorithm>
#include <cmath>

#include "common/parse.hpp"
#include "common/timer.hpp"

namespace sj::rtree {

namespace {

/// Index construction shared by the self-join and the query/data join.
void build_tree(RTree& tree, const Dataset& d, BuildMode mode) {
  switch (mode) {
    case BuildMode::kBinnedInsert: {
      const auto order = binned_insertion_order(d);
      for (std::uint32_t id : order) tree.insert(d.pt(id), id);
      break;
    }
    case BuildMode::kStrBulkLoad:
      tree.bulk_load_str(d);
      break;
    case BuildMode::kRawInsert:
      for (std::size_t i = 0; i < d.size(); ++i) {
        tree.insert(d.pt(i), static_cast<std::uint32_t>(i));
      }
      break;
  }
}

}  // namespace

std::vector<std::uint32_t> binned_insertion_order(const Dataset& d) {
  std::vector<std::uint32_t> order(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              for (int j = 0; j < d.dim(); ++j) {
                const double ba = std::floor(d.coord(a, j));
                const double bb = std::floor(d.coord(b, j));
                if (ba != bb) return ba < bb;
              }
              return a < b;
            });
  return order;
}

RTreeSelfJoinResult self_join(const Dataset& d, double eps, BuildMode mode,
                              Options opt) {
  RTreeSelfJoinResult result;
  if (d.empty()) return result;

  Timer build_timer;
  RTree tree(d.dim(), opt);
  build_tree(tree, d, mode);
  result.stats.build_seconds = build_timer.seconds();
  result.stats.tree_height = tree.height();

  Timer query_timer;
  QueryStats qs;
  const double eps2 = eps * eps;
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < d.size(); ++i) {
    candidates.clear();
    tree.window_candidates(d.pt(i), eps, candidates, &qs);
    result.stats.distance_calcs += candidates.size();
    for (std::uint32_t q : candidates) {
      if (sq_dist(d.pt(i), d.pt(q), d.dim()) <= eps2) {
        result.pairs.add(static_cast<std::uint32_t>(i), q);
      }
    }
  }
  result.stats.query_seconds = query_timer.seconds();
  result.stats.nodes_visited = qs.nodes_visited;
  result.stats.candidates = qs.candidates;
  return result;
}

RTreeSelfJoinResult join(const Dataset& queries, const Dataset& data,
                         double eps, BuildMode mode, Options opt) {
  parse::non_negative("argument 'eps' of rtree::join", eps);
  parse::matching_dims("argument 'queries' of rtree::join", queries.dim(),
                       "argument 'data'", data.dim());
  RTreeSelfJoinResult result;
  if (queries.empty() || data.empty()) return result;

  Timer build_timer;
  RTree tree(data.dim(), opt);
  build_tree(tree, data, mode);
  result.stats.build_seconds = build_timer.seconds();
  result.stats.tree_height = tree.height();

  Timer query_timer;
  QueryStats qs;
  const double eps2 = eps * eps;
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    candidates.clear();
    tree.window_candidates(queries.pt(i), eps, candidates, &qs);
    result.stats.distance_calcs += candidates.size();
    for (std::uint32_t q : candidates) {
      if (sq_dist(queries.pt(i), data.pt(q), data.dim()) <= eps2) {
        result.pairs.add(static_cast<std::uint32_t>(i), q);
      }
    }
  }
  result.stats.query_seconds = query_timer.seconds();
  result.stats.nodes_visited = qs.nodes_visited;
  result.stats.candidates = qs.candidates;
  return result;
}

}  // namespace sj::rtree
