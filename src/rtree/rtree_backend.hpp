// Registration hook for the CPU R-tree adapter ("rtree"). Called once by
// BackendRegistry::instance().
#pragma once

namespace sj::api {
class BackendRegistry;
}

namespace sj::backends {

void register_rtree(api::BackendRegistry& registry);

}  // namespace sj::backends
