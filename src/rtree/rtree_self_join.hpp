// CPU-RTREE: the sequential search-and-refine self-join baseline
// (paper Section VI-B): one range query per point against an R-tree.
//
// As in the paper, the data is first sorted into unit-length bins in each
// dimension before insertion, "so internal nodes of the R-tree do not
// encompass too much empty space"; index construction time is reported
// separately (the paper's timings exclude it).
#pragma once

#include <cstdint>

#include "common/dataset.hpp"
#include "common/result.hpp"
#include "rtree/rtree.hpp"

namespace sj::rtree {

enum class BuildMode {
  kBinnedInsert,  // the paper's preparation: unit-bin sort, then insert
  kStrBulkLoad,   // ablation: sort-tile-recursive packing
  kRawInsert,     // ablation: insertion in dataset order
};

struct RTreeSelfJoinStats {
  double build_seconds = 0.0;
  double query_seconds = 0.0;  // what the paper reports
  std::uint64_t nodes_visited = 0;
  std::uint64_t candidates = 0;      // search-phase output volume
  std::uint64_t distance_calcs = 0;  // refine-phase work
  int tree_height = 0;
};

struct RTreeSelfJoinResult {
  ResultSet pairs;
  RTreeSelfJoinStats stats;
};

/// Build the index (per `mode`), then run one range query per point.
RTreeSelfJoinResult self_join(const Dataset& d, double eps,
                              BuildMode mode = BuildMode::kBinnedInsert,
                              Options opt = {});

/// Query/data epsilon join over the same search-and-refine machinery:
/// the tree indexes `data`, one window query per query point, pairs are
/// (query index, data index).
RTreeSelfJoinResult join(const Dataset& queries, const Dataset& data,
                         double eps, BuildMode mode = BuildMode::kBinnedInsert,
                         Options opt = {});

/// The insertion order the paper uses: ids sorted by unit-length bin
/// (lexicographic over floor(x_j)). Exposed for tests and the ablation.
std::vector<std::uint32_t> binned_insertion_order(const Dataset& d);

}  // namespace sj::rtree
