// The always-on service ablation: what does keeping the grid index and
// device image resident buy over the one-shot lifecycle?
//
// For each workload the same stream of single-point range queries is
// answered two ways:
//   * one-shot — every query pays the full gpu_join lifecycle (index
//     build, cell-major upload, adjacency, pipeline, teardown), the way
//     every sjtool invocation before the QuerySession did;
//   * session  — a QuerySession stages the image once and concurrent
//     client threads submit through the bounded admission queue, with
//     compatible range queries coalesced into shared grouped launches.
//
// A burst phase then floods a deliberately tiny admission queue to show
// overload shedding doing its job (typed exec::Overloaded, no crash,
// survivors still answered); its shed/expired counters and the session
// latency percentiles are recorded in the rows.
//
// Output: ablation_serve.csv under SJ_RESULTS_DIR plus BENCH_serve.json
// (path overridable via SJ_BENCH_JSON). With SJ_SMOKE_CHECK=1 the
// process exits non-zero when the geometric-mean throughput speedup of
// session over one-shot falls below 1.0x — if keeping the index warm is
// not faster than rebuilding it per query, the service layer regressed.
#include <atomic>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/join.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  std::size_t n = 0;
  double eps = 0.0;
  double oneshot_qps = 0.0;
  double session_qps = 0.0;
  double speedup = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t coalesced = 0;
  std::uint64_t burst_shed = 0;
};

std::vector<std::vector<double>> pick_queries(const sj::Dataset& d,
                                              std::size_t count) {
  std::vector<std::vector<double>> out;
  out.reserve(count);
  for (std::size_t q = 0; q < count; ++q) {
    const std::size_t idx = (q * 2654435761ULL + 17) % d.size();
    out.emplace_back(d.pt(idx), d.pt(idx) + d.dim());
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    {
      const auto n = static_cast<std::size_t>(2'000'000 * scale);
      workloads.push_back(
          {"Uni2D", datagen::uniform(n, 2, 0.0, 1000.0, 6001), 1.0});
      workloads.push_back({"Ippp2D", datagen::ippp(n, 2, 64.0, 6002), 0.15});
    }

    // Few one-shot repetitions (each rebuilds the whole index), many
    // session queries (the build is amortised away) — both report qps.
    constexpr std::size_t kOneShot = 8;
    constexpr std::size_t kSession = 256;
    constexpr int kClients = 4;

    TextTable t({"workload", "n", "eps", "one-shot q/s", "session q/s",
                 "speedup", "p50 ms", "p99 ms", "coalesced", "burst shed"});
    csv::Table out({"workload", "n", "eps", "oneshot_qps", "session_qps",
                    "speedup", "p50_ms", "p99_ms", "coalesced",
                    "burst_shed"});
    for (auto& w : workloads) {
      Row row;
      row.workload = w.name;
      row.n = w.data.size();
      row.eps = w.eps;

      const auto queries = pick_queries(w.data, kSession);

      {
        Timer t0;
        for (std::size_t q = 0; q < kOneShot; ++q) {
          Dataset one(w.data.dim(),
                      std::vector<double>(queries[q].begin(),
                                          queries[q].end()));
          (void)gpu_join(one, w.data, w.eps);
        }
        const double s = t0.seconds();
        row.oneshot_qps = s > 0.0 ? static_cast<double>(kOneShot) / s : 0.0;
      }

      {
        api::QuerySession session(w.data, w.eps, {});
        Timer t0;
        std::vector<std::thread> clients;
        std::atomic<std::size_t> next{0};
        for (int c = 0; c < kClients; ++c) {
          clients.emplace_back([&] {
            for (;;) {
              const std::size_t q =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (q >= kSession) return;
              session.range(queries[q]).get();
            }
          });
        }
        for (auto& th : clients) th.join();
        const double s = t0.seconds();
        row.session_qps = s > 0.0 ? static_cast<double>(kSession) / s : 0.0;
        const api::SessionStats st = session.stats();
        row.p50_ms = st.p50_ms;
        row.p99_ms = st.p99_ms;
        row.coalesced = st.coalesced_queries;
      }

      {
        // Overload burst: a 1-worker session with a 4-deep queue cannot
        // absorb an 8-client flood; admission control must shed (typed),
        // and everything it admitted must still be answered.
        api::SessionOptions so;
        so.workers = 1;
        so.max_queue_depth = 4;
        api::QuerySession session(w.data, w.eps, so);
        std::vector<std::thread> clients;
        std::atomic<std::uint64_t> ok{0}, shed{0}, other{0};
        for (int c = 0; c < 8; ++c) {
          clients.emplace_back([&, c] {
            for (int q = 0; q < 16; ++q) {
              try {
                session.range(queries[static_cast<std::size_t>(c * 16 + q) %
                                      queries.size()])
                    .get();
                ok.fetch_add(1, std::memory_order_relaxed);
              } catch (const exec::Overloaded&) {
                shed.fetch_add(1, std::memory_order_relaxed);
              } catch (const std::exception&) {
                other.fetch_add(1, std::memory_order_relaxed);
              }
            }
          });
        }
        for (auto& th : clients) th.join();
        row.burst_shed = shed.load();
        if (other.load() != 0 || ok.load() + shed.load() != 8 * 16) {
          std::cerr << "FATAL: burst lost queries on " << w.name << ": ok="
                    << ok.load() << " shed=" << shed.load()
                    << " other=" << other.load() << "\n";
          std::exit(1);
        }
      }

      row.speedup = row.oneshot_qps > 0.0
                        ? row.session_qps / row.oneshot_qps
                        : 0.0;
      t.add_row({row.workload, std::to_string(row.n), csv::fmt(row.eps),
                 csv::fmt(row.oneshot_qps), csv::fmt(row.session_qps),
                 csv::fmt(row.speedup), csv::fmt(row.p50_ms),
                 csv::fmt(row.p99_ms), std::to_string(row.coalesced),
                 std::to_string(row.burst_shed)});
      out.add_row({row.workload, std::to_string(row.n), csv::fmt(row.eps),
                   csv::fmt(row.oneshot_qps), csv::fmt(row.session_qps),
                   csv::fmt(row.speedup), csv::fmt(row.p50_ms),
                   csv::fmt(row.p99_ms), std::to_string(row.coalesced),
                   std::to_string(row.burst_shed)});
      rows.push_back(row);
    }
    std::cout << "\n== ablation: always-on session vs one-shot lifecycle "
                 "==\n";
    t.print(std::cout);
    std::cout << "(every burst query resolves typed — Overloaded or a "
                 "result — asserted above)\n";
    out.write(Collector::results_dir() + "/ablation_serve.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_serve.json + the CI smoke gate (session slower than
  // one-shot fails).
  std::vector<double> speedups;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    speedups.push_back(r.speedup);
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("n", static_cast<std::uint64_t>(r.n))
                           .field("eps", r.eps)
                           .field("oneshot_qps", r.oneshot_qps)
                           .field("session_qps", r.session_qps)
                           .field("speedup", r.speedup)
                           .field("p50_ms", r.p50_ms)
                           .field("p99_ms", r.p99_ms)
                           .field("coalesced", r.coalesced)
                           .field("burst_shed", r.burst_shed)
                           .str());
  }
  const double g = geomean(speedups);
  write_bench_json("ablation_serve", "BENCH_serve.json", g, row_json,
                   "geomean_speedup_session_vs_oneshot");
  return smoke_check("ablation_serve", g, 1.0,
                     "session-vs-oneshot geomean throughput speedup");
}
