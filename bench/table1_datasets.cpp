// Table I: the dataset inventory — paper sizes and dimensions alongside
// the locally generated scaled sizes, grid statistics at the mid-sweep
// eps, and the eps sweeps used by the figure benches.
#include <iostream>

#include "common/csv.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "core/grid_index.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    TextTable t({"dataset", "|D| (paper)", "n", "|D| (bench)",
                 "nonempty cells @eps_mid", "bench eps sweep"});
    csv::Table out({"dataset", "paper_n", "dim", "bench_n",
                    "nonempty_cells", "eps_sweep"});
    const double scale = env_scale();
    for (const auto& info : datasets::all()) {
      const Dataset d = datasets::make(info.name, scale);
      const auto sweep = datasets::scaled_eps(info, d.size());
      const GridIndex grid(d, sweep[sweep.size() / 2]);
      std::string eps_list;
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        eps_list += (i > 0 ? " " : "") + csv::fmt(sweep[i]);
      }
      t.add_row({info.name, std::to_string(info.paper_n),
                 std::to_string(info.dim), std::to_string(d.size()),
                 std::to_string(grid.num_nonempty_cells()), eps_list});
      out.add_row({info.name, std::to_string(info.paper_n),
                   std::to_string(info.dim), std::to_string(d.size()),
                   std::to_string(grid.num_nonempty_cells()), eps_list});
    }
    std::cout << "\n== Table I: datasets ==\n";
    t.print(std::cout);
    out.write(Collector::results_dir() + "/table1.csv");
  });
}
