// Figure 8: speedup of GPU-SJ with UNICOMP over SUPEREGO across every
// dataset and eps of Figures 4-6, with the all-dataset and real-world
// averages (paper: 2.38x overall, ~2x on real-world data).
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/figure_sweep.hpp"

namespace {

bool is_real_world(const std::string& dataset) {
  return dataset.rfind("SW", 0) == 0 || dataset.rfind("SDSS", 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    std::vector<Measurement> rows;
    for (auto& m : load_or_run_sweep("fig4", fig4_datasets(), "fig4.csv")) {
      rows.push_back(m);
    }
    for (auto& m : load_or_run_sweep("fig5", fig5_datasets(), "fig5.csv")) {
      rows.push_back(m);
    }
    for (auto& m : load_or_run_sweep("fig6", fig6_datasets(), "fig6.csv")) {
      rows.push_back(m);
    }

    std::map<std::pair<std::string, double>, const Measurement*> ego_m, gpu_m;
    for (const auto& m : rows) {
      // "superego" covers CSVs cached before the registry rename to "ego".
      if (m.algo == "ego" || m.algo == "superego") {
        ego_m[{m.dataset, m.eps}] = &m;
      }
      if (m.algo == "gpu_unicomp") gpu_m[{m.dataset, m.eps}] = &m;
    }

    TextTable t({"dataset", "eps", "superego (s)", "gpu+unicomp (s)",
                 "speedup", "work ratio (dist calcs)"});
    csv::Table out({"dataset", "eps", "superego_seconds", "gpu_seconds",
                    "speedup", "work_ratio"});
    std::vector<double> all, real, work;
    std::size_t slower = 0;
    for (const auto& [key, eg] : ego_m) {
      const auto it = gpu_m.find(key);
      if (it == gpu_m.end() || it->second->seconds <= 0.0) continue;
      const double sp = eg->seconds / it->second->seconds;
      const double wr = it->second->distance_calcs > 0
                            ? static_cast<double>(eg->distance_calcs) /
                                  static_cast<double>(
                                      it->second->distance_calcs)
                            : 0.0;
      all.push_back(sp);
      if (wr > 0.0) work.push_back(wr);
      if (is_real_world(key.first)) real.push_back(sp);
      if (sp < 1.0) ++slower;
      t.add_row({key.first, csv::fmt(key.second), csv::fmt(eg->seconds),
                 csv::fmt(it->second->seconds), csv::fmt(sp), csv::fmt(wr)});
      out.add_row({key.first, csv::fmt(key.second), csv::fmt(eg->seconds),
                   csv::fmt(it->second->seconds), csv::fmt(sp),
                   csv::fmt(wr)});
    }
    std::cout << "\n== fig8: speedup of GPU-SJ (UNICOMP) over SUPEREGO ==\n";
    t.print(std::cout);
    std::cout << "Average speedup (all datasets):   " << csv::fmt(stats::mean(all))
              << "x   (paper, 3584-core GPU vs 32-core host: 2.38x)\n";
    std::cout << "Average speedup (real-world):     "
              << csv::fmt(stats::mean(real)) << "x   (paper: ~2x)\n";
    std::cout << "Average work ratio (EGO/GPU dist calcs): "
              << csv::fmt(stats::geomean(work)) << "x\n";
    std::cout << "Scenarios where SUPEREGO wins on time: " << slower << " of "
              << all.size()
              << "  (this host serialises the GPU's parallel work onto one\n"
                 "   core — see EXPERIMENTS.md for the work-count analysis)\n";
    out.write(Collector::results_dir() + "/fig8.csv");
  });
}
