// Figure 9: impact of UNICOMP — the ratio of GPU-SJ response times
// without / with the optimisation, split into the paper's three panels:
// (a) real-world, (b) synthetic 2M-class, (c) synthetic 10M-class.
// Ratios above 1 mean UNICOMP wins; the paper sees <= 1.5x on real data
// and >= 2x on higher-dimensional synthetic data.
#include <iostream>
#include <map>

#include "common/csv.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/figure_sweep.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    struct Panel {
      const char* title;
      std::vector<std::string> datasets;
      const char* csv;
    };
    const std::vector<Panel> panels{
        {"fig9a_real_world", fig4_datasets(), "fig4.csv"},
        {"fig9b_synthetic_2M", fig5_datasets(), "fig5.csv"},
        {"fig9c_synthetic_10M", fig6_datasets(), "fig6.csv"},
    };

    csv::Table out({"panel", "dataset", "eps", "without_s", "with_s",
                    "ratio"});
    for (const auto& panel : panels) {
      const auto rows = load_or_run_sweep(
          std::string(panel.csv).substr(0, 4), panel.datasets, panel.csv);
      std::map<std::pair<std::string, double>, double> base_s, uni_s;
      for (const auto& m : rows) {
        if (m.algo == "gpu") base_s[{m.dataset, m.eps}] = m.seconds;
        if (m.algo == "gpu_unicomp") uni_s[{m.dataset, m.eps}] = m.seconds;
      }
      TextTable t({"dataset", "eps", "without (s)", "with (s)", "ratio"});
      std::vector<double> ratios;
      for (const auto& [key, bs] : base_s) {
        const auto it = uni_s.find(key);
        if (it == uni_s.end() || it->second <= 0.0) continue;
        const double ratio = bs / it->second;
        ratios.push_back(ratio);
        t.add_row({key.first, csv::fmt(key.second), csv::fmt(bs),
                   csv::fmt(it->second), csv::fmt(ratio)});
        out.add_row({panel.title, key.first, csv::fmt(key.second),
                     csv::fmt(bs), csv::fmt(it->second), csv::fmt(ratio)});
      }
      std::cout << "\n== " << panel.title
                << " : response-time ratio without/with UNICOMP ==\n";
      t.print(std::cout);
      std::cout << "Mean ratio: " << csv::fmt(stats::mean(ratios)) << "\n";
    }
    out.write(Collector::results_dir() + "/fig9.csv");
  });
}
