// Head-to-head for the two kernel-level optimisations of this series:
//
//   1. AoS vs SoA coordinate layout inside the cell-major staging — the
//      SoA planes turn the per-dimension distance accumulation into
//      contiguous unit-stride loops the compiler autovectorises (checked
//      with -fopt-info-vec; the `soa` knob flips back to the interleaved
//      AoS path on the SAME grid and batching).
//   2. pairs vs count-only result mode — count mode skips the result
//      buffers, the key/value sort and the batch transfers entirely, so
//      it measures the pure kernel + atomics cost of the join.
//
// Workloads: Syn{2..6}D2M (mid eps of each dataset's bench sweep) and the
// skewed IPPP2D2M dataset, matching the layout ablation.
//
// Output: CSV under SJ_RESULTS_DIR plus BENCH_kernel.json (path
// overridable via SJ_BENCH_JSON) — the perf-trajectory artefact CI
// uploads. With SJ_SMOKE_CHECK=1 the process exits non-zero when the
// geometric-mean SoA-over-AoS speedup falls below 0.9x (a >10%
// regression), the CI bench-smoke gate.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/datasets.hpp"
#include "common/table.hpp"
#include "harness/bench_common.hpp"

namespace {

struct Row {
  std::string workload;
  int dim = 0;
  std::size_t n = 0;
  double eps = 0.0;
  std::string algo;
  double aos_seconds = 0.0;
  double soa_seconds = 0.0;
  double count_seconds = 0.0;
  std::uint64_t pairs = 0;
  double soa_speedup = 0.0;    // AoS pairs / SoA pairs
  double count_speedup = 0.0;  // SoA pairs / SoA count-only
};

double run_kernel(const sj::Dataset& d, double eps, const std::string& algo,
                  bool soa, sj::ResultMode mode, std::uint64_t& pairs_out) {
  sj::api::RunConfig config;
  config.extra["soa"] = soa ? "1" : "0";
  config.mode = mode;
  const auto r =
      sj::api::BackendRegistry::instance().at(algo).run(d, eps, config);
  pairs_out = r.total_pairs;
  return r.stats.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  std::vector<Row> rows;
  const int rc = bench_main(argc, argv, [&rows] {
    const double scale = env_scale();

    struct Workload {
      std::string name;
      Dataset data;
      double eps;
    };
    std::vector<Workload> workloads;
    for (int dim = 2; dim <= 6; ++dim) {
      const std::string name = "Syn" + std::to_string(dim) + "D2M";
      const auto& info = datasets::info(name);
      Dataset d = datasets::make(name, scale);
      const double eps = datasets::scaled_eps(info, d.size())[2];  // mid
      workloads.push_back({name, std::move(d), eps});
    }
    {
      const auto n = static_cast<std::size_t>(2'000'000 * scale);
      Dataset d = datagen::ippp(n, 2, 64.0, 4242);
      d.set_name("IPPP2D2M");
      workloads.push_back({"IPPP2D2M", std::move(d), 0.15});
    }

    TextTable t({"workload", "dim", "algo", "eps", "aos (s)", "soa (s)",
                 "count (s)", "soa x", "count x", "pairs"});
    csv::Table out({"workload", "dim", "n", "eps", "algo", "aos_seconds",
                    "soa_seconds", "count_seconds", "soa_speedup",
                    "count_speedup", "pairs"});
    for (const auto& w : workloads) {
      for (const std::string algo : {"gpu", "gpu_unicomp"}) {
        Row row;
        row.workload = w.name;
        row.dim = w.data.dim();
        row.n = w.data.size();
        row.eps = w.eps;
        row.algo = algo;
        std::uint64_t aos_pairs = 0, count_pairs = 0;
        row.aos_seconds = run_kernel(w.data, w.eps, algo, /*soa=*/false,
                                     ResultMode::kPairs, aos_pairs);
        row.soa_seconds = run_kernel(w.data, w.eps, algo, /*soa=*/true,
                                     ResultMode::kPairs, row.pairs);
        row.count_seconds = run_kernel(w.data, w.eps, algo, /*soa=*/true,
                                       ResultMode::kCountOnly, count_pairs);
        if (row.pairs != aos_pairs || row.pairs != count_pairs) {
          std::cerr << "FATAL: pair counts disagree on " << w.name << "/"
                    << algo << ": aos=" << aos_pairs << " soa=" << row.pairs
                    << " count_only=" << count_pairs << "\n";
          std::exit(1);
        }
        row.soa_speedup = row.soa_seconds > 0.0
                              ? row.aos_seconds / row.soa_seconds
                              : 0.0;
        row.count_speedup = row.count_seconds > 0.0
                                ? row.soa_seconds / row.count_seconds
                                : 0.0;
        t.add_row({row.workload, std::to_string(row.dim), row.algo,
                   csv::fmt(row.eps), csv::fmt(row.aos_seconds),
                   csv::fmt(row.soa_seconds), csv::fmt(row.count_seconds),
                   csv::fmt(row.soa_speedup), csv::fmt(row.count_speedup),
                   std::to_string(row.pairs)});
        out.add_row({row.workload, std::to_string(row.dim),
                     std::to_string(row.n), csv::fmt(row.eps), row.algo,
                     csv::fmt(row.aos_seconds), csv::fmt(row.soa_seconds),
                     csv::fmt(row.count_seconds), csv::fmt(row.soa_speedup),
                     csv::fmt(row.count_speedup), std::to_string(row.pairs)});
        rows.push_back(row);
      }
    }
    std::cout << "\n== ablation: AoS vs SoA kernel / pairs vs count-only ==\n";
    t.print(std::cout);
    std::cout << "(all three paths return the same exact pair count; "
                 "asserted above and by tests/api/test_operation_parity.cpp)\n";
    out.write(Collector::results_dir() + "/ablation_kernel.csv");
  });
  if (rc != 0) return rc;

  // --- BENCH_kernel.json + the CI smoke gate (>10% regression fails).
  std::vector<double> soa_speedups, count_speedups;
  std::vector<std::string> row_json;
  for (const Row& r : rows) {
    soa_speedups.push_back(r.soa_speedup);
    count_speedups.push_back(r.count_speedup);
    row_json.push_back(JsonRow()
                           .field("workload", r.workload)
                           .field("dim", r.dim)
                           .field("n", static_cast<std::uint64_t>(r.n))
                           .field("eps", r.eps)
                           .field("algo", r.algo)
                           .field("aos_seconds", r.aos_seconds)
                           .field("soa_seconds", r.soa_seconds)
                           .field("count_seconds", r.count_seconds)
                           .field("soa_speedup", r.soa_speedup)
                           .field("count_speedup", r.count_speedup)
                           .field("pairs", r.pairs)
                           .str());
  }
  const double g = geomean(soa_speedups);
  std::cout << "geomean SoA-over-AoS speedup:       " << g << "x\n";
  std::cout << "geomean count-over-pairs speedup:   " << geomean(count_speedups)
            << "x\n";
  write_bench_json("ablation_kernel", "BENCH_kernel.json", g, row_json,
                   "geomean_speedup_soa_vs_aos");
  return smoke_check("ablation_kernel", g, 0.9, "SoA geomean speedup");
}
