// Skew ablation (paper Section VI-C): uniformly distributed data is the
// WORST case for the grid index because it maximises non-empty cells.
// This bench holds |D|, dim and expected result size fixed while varying
// the distribution, and reports non-empty cells, cells searched, and the
// GPU-SJ / SUPEREGO response times — the data-distribution study the
// paper leaves as "future work includes examining skewed data in greater
// detail".
#include <iostream>

#include "api/registry.hpp"
#include "common/csv.hpp"
#include "common/datagen.hpp"
#include "common/table.hpp"
#include "core/grid_index.hpp"
#include "harness/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace sj;
  using namespace sj::bench;
  return bench_main(argc, argv, [] {
    const auto scale = env_scale();
    const auto n = static_cast<std::size_t>(20000 * scale);
    const double eps = 1.0;

    struct Config {
      const char* name;
      Dataset data;
    };
    std::vector<Config> configs;
    configs.push_back({"uniform", datagen::uniform(n, 2, 0.0, 100.0, 900)});
    configs.push_back({"gaussian_x8",
                       datagen::gaussian_mixture(n, 2, 8, 4.0, 0.0, 100.0,
                                                 901)});
    configs.push_back({"gaussian_x64",
                       datagen::gaussian_mixture(n, 2, 64, 1.5, 0.0, 100.0,
                                                 902)});
    configs.push_back({"exponential", datagen::exponential_blob(n, 2, 0.05,
                                                                903)});
    configs.push_back({"sw_stations", datagen::sw_like(n, 2, 904)});
    configs.push_back({"sdss_clusters", datagen::sdss_like(n, 905)});

    TextTable t({"distribution", "nonempty cells", "cells searched",
                 "pairs", "gpu+unicomp (s)", "superego (s)"});
    csv::Table out({"distribution", "nonempty_cells", "cells_searched",
                    "pairs", "gpu_seconds", "ego_seconds"});
    const auto& registry = api::BackendRegistry::instance();
    for (auto& cfg : configs) {
      cfg.data.set_name(cfg.name);
      const GridIndex grid(cfg.data, eps);

      const auto gpu = registry.at("gpu_unicomp").run(cfg.data, eps);

      api::RunConfig ego_config;
      ego_config.extra["use_float"] = "1";
      const auto eg = registry.at("ego").run(cfg.data, eps, ego_config);

      const auto cells_searched = std::to_string(static_cast<std::uint64_t>(
          gpu.stats.native_value("cells_examined")));
      t.add_row({cfg.name, std::to_string(grid.num_nonempty_cells()),
                 cells_searched, std::to_string(gpu.pairs.size()),
                 csv::fmt(gpu.stats.seconds), csv::fmt(eg.stats.seconds)});
      out.add_row({cfg.name, std::to_string(grid.num_nonempty_cells()),
                   cells_searched, std::to_string(gpu.pairs.size()),
                   csv::fmt(gpu.stats.seconds), csv::fmt(eg.stats.seconds)});
    }
    std::cout << "\n== ablation: data-distribution skew at fixed |D|, eps ==\n";
    t.print(std::cout);
    std::cout << "(uniform maximises non-empty cells — the paper's "
                 "worst-case argument, Section VI-C)\n";
    out.write(Collector::results_dir() + "/ablation_skew.csv");
  });
}
